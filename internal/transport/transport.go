// Package transport provides the in-process interconnect under the MPI
// substrate.
//
// The network connects n endpoints (one per rank). Delivery is reliable and
// FIFO per (source, destination) pair, which is exactly the guarantee the MPI
// layer needs to implement non-overtaking message matching. Cross-pair
// ordering is unspecified, as on a real interconnect.
//
// A LatencyModel can inject per-message and per-byte delays so that
// benchmarks can emulate interconnects with different characteristics (the
// paper evaluates on a Quadrics cluster and a Gigabit Ethernet cluster).
// With zero latency, sends enqueue directly into the destination inbox;
// with nonzero latency, each destination has a delivery goroutine that
// imposes the delay while preserving per-pair FIFO order.
//
// Endpoints can be killed (fail-stop) — a killed endpoint's blocking
// receives return ErrDown and messages addressed to it are dropped, which
// models a crashed cluster node.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"c3/internal/trace"
)

// ErrDown is returned by receive operations on a killed or shut-down
// endpoint, and by Send when the network has been shut down.
var ErrDown = errors.New("transport: endpoint down")

// Class distinguishes payload classes. The checkpointing layer uses Control
// for protocol coordination messages; everything else is Data.
type Class uint8

// Message classes.
const (
	Data Class = iota
	Control
)

func (c Class) String() string {
	switch c {
	case Data:
		return "data"
	case Control:
		return "control"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Message is one unit of delivery. Payload is opaque to the transport.
//
// Trace is the causal tracing context stamped by the interconnect's send
// path: the flight-recorder edge span id plus the sender's Lamport clock.
// It travels with the message (in memory by value, on TCP frames as 16
// extra header bytes) so the receive path can merge the Lamport clock and
// record a recv event that cmd/c3trace stitches to the matching send.
type Message struct {
	From    int
	To      int
	Class   Class
	Payload any
	Trace   trace.Ctx
}

// payloadSize reports the payload's transport size when it exposes one.
func payloadSize(msg Message) int {
	if s, ok := msg.Payload.(Sizer); ok {
		return s.TransportSize()
	}
	return 0
}

// traceRecv records the message-edge delivery on the local recorder.
func traceRecv(rank int, msg Message) {
	trace.Default().Recv(int32(rank), int32(msg.From), msg.Trace, uint64(payloadSize(msg)))
}

// LatencyModel computes the artificial delivery delay for a message of the
// given size in bytes. A nil model means zero delay.
type LatencyModel func(from, to int, bytes int) time.Duration

// ConstantLatency returns a model with a fixed per-message delay plus a
// per-byte cost derived from the given bandwidth (bytes/second).
// bandwidth <= 0 means infinite bandwidth.
func ConstantLatency(perMessage time.Duration, bandwidth float64) LatencyModel {
	return func(_, _ int, bytes int) time.Duration {
		d := perMessage
		if bandwidth > 0 {
			d += time.Duration(float64(bytes) / bandwidth * float64(time.Second))
		}
		return d
	}
}

// Stats aggregates delivery counters for the whole network.
type Stats struct {
	MessagesSent     uint64
	MessagesDropped  uint64 // addressed to killed endpoints
	ControlMessages  uint64
	DataMessages     uint64
	DeliveredPayload uint64 // bytes, when the payload exposes a size
}

// Sizer lets payloads report their size for Stats and latency computation.
type Sizer interface{ TransportSize() int }

// Port is one rank's receive attachment on an interconnect. Receive
// operations must be called from a single goroutine (the rank's).
type Port interface {
	// Rank returns the port's rank.
	Rank() int
	// Recv blocks until a message is available or the port is killed.
	Recv() (Message, error)
	// TryRecv returns the next message without blocking; ok reports whether
	// a message was available.
	TryRecv() (msg Message, ok bool, err error)
	// Pending reports the number of queued, undelivered messages.
	Pending() int
	// Killed reports whether the port has been killed.
	Killed() bool
}

// Interconnect is the abstraction the MPI substrate and the replicated
// stable store program against. Three implementations exist: the in-memory
// Network (real OS scheduling), the same Network under a virtual Scheduler
// (deterministic logical scheduling), and the tcp.Mesh (real sockets, one
// OS process per rank).
//
// Delivery is reliable and FIFO per (source, destination) pair while both
// ends are up; messages addressed to a dead or unreachable rank are dropped
// (counted in Stats.MessagesDropped), which models a fail-stop node crash.
type Interconnect interface {
	// Size returns the number of ranks.
	Size() int
	// Send delivers msg toward its destination. It never blocks on the
	// destination's consumption and returns ErrDown only when the local
	// side has been shut down.
	Send(msg Message) error
	// Endpoint returns the receive port for a rank. Implementations backed
	// by one process per rank return a dead port for non-local ranks.
	Endpoint(rank int) Port
	// Kill fail-stops a rank (a no-op for ranks not hosted locally).
	Kill(rank int)
	// Shutdown tears the local side of the interconnect down; all blocked
	// receives return ErrDown.
	Shutdown()
	// Stats returns a snapshot of the delivery counters.
	Stats() Stats
	// Scheduler returns the virtual schedule engine, nil under real (OS or
	// socket) scheduling.
	Scheduler() *Scheduler
}

// Network is the interconnect among n endpoints.
type Network struct {
	n       int
	eps     []*Endpoint
	latency LatencyModel
	sched   *Scheduler // non-nil: virtual deterministic scheduling

	down atomic.Bool

	statMu sync.Mutex
	stats  Stats

	// Partition fault model: directed pairs currently severed. Severed
	// messages are dropped (blackhole) or, with hold semantics, buffered
	// for delivery at the next heal. Rules are installed manually
	// (Partition/Heal) or by armed scheduler events (WithPartitionPlan).
	partMu      sync.Mutex
	partBlocked map[[2]int]bool
	partHold    bool
	partHeld    []Message
	partPlan    []SchedPartitionEvent
}

// Option configures a Network.
type Option func(*Network)

// WithLatency installs a latency model.
func WithLatency(m LatencyModel) Option {
	return func(nw *Network) { nw.latency = m }
}

// WithPartitionPlan arms a sequence of partition/heal events on the
// network's virtual scheduler: each fires at a seeded trigger step and is
// recorded in the decision trace, so partitioned executions replay and
// shrink exactly like any other schedule. Requires WithScheduler; ignored
// under real scheduling (use Partition/Heal directly there).
func WithPartitionPlan(events []SchedPartitionEvent) Option {
	return func(nw *Network) { nw.partPlan = append([]SchedPartitionEvent(nil), events...) }
}

// NewNetwork creates a network with n endpoints, numbered 0..n-1.
func NewNetwork(n int, opts ...Option) *Network {
	if n <= 0 {
		panic("transport: network size must be positive")
	}
	nw := &Network{n: n}
	for _, o := range opts {
		o(nw)
	}
	nw.eps = make([]*Endpoint, n)
	for i := range nw.eps {
		nw.eps[i] = newEndpoint(nw, i)
	}
	if nw.sched != nil && len(nw.partPlan) > 0 {
		nw.sched.ArmPartitions(nw.partPlan, nw.applyPartitionEvent)
	}
	if nw.sched != nil {
		// Virtual worlds timestamp flight-recorder events with the
		// scheduler's logical clock, so two replays of the same decision
		// trace record byte-identical per-rank timelines.
		s := nw.sched
		trace.SetClock(func() int64 { return s.Now().UnixNano() })
	}
	return nw
}

// Partition severs the given directed (from, to) pairs. With hold, severed
// messages are buffered and delivered in order at the next Heal (a short
// split bridged by retransmission); without it they are silently dropped
// (a blackhole), counted in Stats.MessagesDropped. Replaces any active
// rule set.
func (nw *Network) Partition(block [][2]int, hold bool) {
	nw.applyPartitionEvent(SchedPartitionEvent{Block: block, Hold: hold})
}

// Heal clears the active partition and delivers every held message.
func (nw *Network) Heal() {
	nw.applyPartitionEvent(SchedPartitionEvent{Heal: true})
}

// applyPartitionEvent is the rule installer shared by the manual API and
// the scheduler's armed events.
func (nw *Network) applyPartitionEvent(ev SchedPartitionEvent) {
	nw.partMu.Lock()
	if !ev.Heal {
		blocked := make(map[[2]int]bool, len(ev.Block))
		for _, p := range ev.Block {
			blocked[p] = true
		}
		nw.partBlocked = blocked
		nw.partHold = ev.Hold
		nw.partMu.Unlock()
		return
	}
	nw.partBlocked = nil
	held := nw.partHeld
	nw.partHeld = nil
	nw.partMu.Unlock()
	for _, m := range held {
		if !nw.eps[m.To].push(m) {
			nw.noteDropped()
		}
	}
}

// sever consults the active partition rules for one message. It reports
// true when the message must not be delivered now (held or dropped).
func (nw *Network) sever(msg Message) (severed, held bool) {
	nw.partMu.Lock()
	defer nw.partMu.Unlock()
	if !nw.partBlocked[[2]int{msg.From, msg.To}] {
		return false, false
	}
	if nw.partHold {
		nw.partHeld = append(nw.partHeld, msg)
		return true, true
	}
	return true, false
}

// Size returns the number of endpoints.
func (nw *Network) Size() int { return nw.n }

// Scheduler returns the installed virtual schedule engine, or nil when the
// network runs under real (OS) scheduling.
func (nw *Network) Scheduler() *Scheduler { return nw.sched }

// Endpoint returns the endpoint for the given rank.
func (nw *Network) Endpoint(rank int) Port { return nw.eps[rank] }

var _ Interconnect = (*Network)(nil)

// Stats returns a snapshot of the delivery counters.
func (nw *Network) Stats() Stats {
	nw.statMu.Lock()
	defer nw.statMu.Unlock()
	return nw.stats
}

// Send delivers msg to its destination endpoint. It never blocks: queues are
// unbounded (the MPI layer above implements eager buffered sends).
func (nw *Network) Send(msg Message) error {
	if nw.down.Load() {
		return ErrDown
	}
	if msg.To < 0 || msg.To >= nw.n {
		return fmt.Errorf("transport: destination %d out of range [0,%d)", msg.To, nw.n)
	}
	dst := nw.eps[msg.To]

	size := 0
	if s, ok := msg.Payload.(Sizer); ok {
		size = s.TransportSize()
	}
	nw.statMu.Lock()
	nw.stats.MessagesSent++
	if msg.Class == Control {
		nw.stats.ControlMessages++
	} else {
		nw.stats.DataMessages++
	}
	nw.stats.DeliveredPayload += uint64(size)
	nw.statMu.Unlock()

	if msg.Trace.Span == 0 {
		msg.Trace = trace.Default().Send(int32(msg.From), int32(msg.To), uint64(size))
	}

	if nw.sched != nil {
		// Virtual mode: the send is a scheduling point, delivery is
		// instantaneous under the token (latency models are ignored; time
		// is logical). Per-pair FIFO holds because pushes are serialized.
		nw.sched.point(msg.From)
		if severed, heldMsg := nw.sever(msg); severed {
			if !heldMsg {
				nw.noteDropped()
			}
			return nil
		}
		if !dst.push(msg) {
			nw.noteDropped()
		}
		return nil
	}
	if severed, heldMsg := nw.sever(msg); severed {
		if !heldMsg {
			nw.noteDropped()
		}
		return nil
	}
	if nw.latency == nil {
		if !dst.push(msg) {
			nw.noteDropped()
		}
		return nil
	}
	delay := nw.latency(msg.From, msg.To, size)
	dst.pushDelayed(msg, delay)
	return nil
}

func (nw *Network) noteDropped() {
	nw.statMu.Lock()
	nw.stats.MessagesDropped++
	nw.statMu.Unlock()
}

// Kill marks the endpoint as failed: pending and future receives return
// ErrDown and messages addressed to it are dropped. Kill models a fail-stop
// node crash and is irreversible for this network instance.
func (nw *Network) Kill(rank int) { nw.eps[rank].kill() }

// Shutdown kills every endpoint and refuses further sends. It is used to
// tear down the world after a failure so that all ranks unblock.
func (nw *Network) Shutdown() {
	nw.down.Store(true)
	for _, ep := range nw.eps {
		ep.kill()
	}
}

// Endpoint is one rank's attachment point. Receive operations must be called
// from a single goroutine (the rank's); push may be called from any.
type Endpoint struct {
	nw   *Network
	rank int

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	killed bool

	// delay holds the delayed-delivery worker state; created lazily on the
	// first delayed push so zero-latency networks pay nothing.
	delayOnce sync.Once
	delayCh   chan delayed
}

type delayed struct {
	msg Message
	due time.Time
}

func newEndpoint(nw *Network, rank int) *Endpoint {
	ep := &Endpoint{nw: nw, rank: rank}
	ep.cond = sync.NewCond(&ep.mu)
	return ep
}

// Rank returns the endpoint's rank.
func (ep *Endpoint) Rank() int { return ep.rank }

// push enqueues directly. It reports false if the endpoint is killed.
func (ep *Endpoint) push(msg Message) bool {
	ep.mu.Lock()
	if ep.killed {
		ep.mu.Unlock()
		return false
	}
	ep.queue = append(ep.queue, msg)
	ep.cond.Signal()
	ep.mu.Unlock()
	if s := ep.nw.sched; s != nil {
		s.wake(ep.rank)
	}
	return true
}

// pushDelayed routes the message through the delivery worker, which imposes
// the latency while preserving arrival order at this endpoint.
func (ep *Endpoint) pushDelayed(msg Message, delay time.Duration) {
	ep.delayOnce.Do(func() {
		ep.delayCh = make(chan delayed, 1024)
		go ep.deliveryLoop()
	})
	// The latency model is wall-clock by definition and is only installed
	// by real-time tests and benches; scheduled (replayable) runs install
	// no LatencyModel, so none of this executes under the schedule engine.
	select {
	case ep.delayCh <- delayed{msg: msg, due: time.Now().Add(delay)}: //c3lint:allow determinism wall-clock latency injection; never active under the scheduler
	default:
		// Channel full: fall back to blocking send from a helper goroutine so
		// the sender never blocks. Order is still preserved because only this
		// path runs when the channel is full and the channel itself is FIFO.
		ep.delayCh <- delayed{msg: msg, due: time.Now().Add(delay)} //c3lint:allow determinism wall-clock latency injection; never active under the scheduler
	}
}

func (ep *Endpoint) deliveryLoop() {
	for d := range ep.delayCh {
		if wait := time.Until(d.due); wait > 0 { //c3lint:allow determinism wall-clock latency worker; never active under the scheduler
			time.Sleep(wait)
		}
		if !ep.push(d.msg) {
			ep.nw.noteDropped()
		}
		ep.mu.Lock()
		dead := ep.killed
		ep.mu.Unlock()
		if dead {
			return
		}
	}
}

// Recv blocks until a message is available or the endpoint is killed.
func (ep *Endpoint) Recv() (Message, error) {
	if s := ep.nw.sched; s != nil {
		return ep.recvVirtual(s)
	}
	ep.mu.Lock()
	for len(ep.queue) == 0 {
		if ep.killed {
			ep.mu.Unlock()
			return Message{}, ErrDown
		}
		ep.cond.Wait()
	}
	msg := ep.queue[0]
	ep.queue = ep.queue[1:]
	ep.mu.Unlock()
	traceRecv(ep.rank, msg)
	return msg, nil
}

// recvVirtual is Recv under the virtual schedule engine: an empty queue
// yields the token instead of waiting on the condition variable, so the
// engine decides which rank's progress makes the message arrive.
func (ep *Endpoint) recvVirtual(s *Scheduler) (Message, error) {
	s.point(ep.rank)
	for {
		ep.mu.Lock()
		if len(ep.queue) > 0 {
			msg := ep.queue[0]
			ep.queue = ep.queue[1:]
			ep.mu.Unlock()
			traceRecv(ep.rank, msg)
			return msg, nil
		}
		killed := ep.killed
		ep.mu.Unlock()
		if killed {
			return Message{}, ErrDown
		}
		if err := s.block(ep.rank); err != nil {
			return Message{}, err
		}
	}
}

// TryRecv returns the next message without blocking. ok reports whether a
// message was available.
func (ep *Endpoint) TryRecv() (msg Message, ok bool, err error) {
	if s := ep.nw.sched; s != nil {
		s.point(ep.rank)
	}
	ep.mu.Lock()
	if ep.killed {
		ep.mu.Unlock()
		return Message{}, false, ErrDown
	}
	if len(ep.queue) == 0 {
		ep.mu.Unlock()
		return Message{}, false, nil
	}
	msg = ep.queue[0]
	ep.queue = ep.queue[1:]
	ep.mu.Unlock()
	traceRecv(ep.rank, msg)
	return msg, true, nil
}

// Pending reports the number of queued, undelivered messages.
func (ep *Endpoint) Pending() int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return len(ep.queue)
}

func (ep *Endpoint) kill() {
	ep.mu.Lock()
	ep.killed = true
	ep.queue = nil
	ep.mu.Unlock()
	ep.cond.Broadcast()
	if s := ep.nw.sched; s != nil {
		s.wake(ep.rank)
	}
}

// Killed reports whether the endpoint has been killed.
func (ep *Endpoint) Killed() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.killed
}
