package apps

import (
	"sort"

	"c3/internal/cluster"
	"c3/internal/mpi"
)

// IS mirrors the NAS IS benchmark: iterative parallel bucket sort of
// integer keys. Each iteration counts keys per bucket, exchanges counts
// with an Alltoall, and redistributes the keys with an Alltoallv — the
// benchmark's signature all-to-all personalized communication.
func init() {
	Register(&Kernel{
		Name:        "IS",
		Description: "integer bucket sort: alltoall counts + alltoallv key redistribution",
		Defaults: func(c Class) Params {
			n, _ := sized(Params{Class: c}, map[Class]int{ClassS: 1 << 10, ClassW: 1 << 15, ClassA: 1 << 18}, nil)
			_, it := sized(Params{Class: c}, nil, map[Class]int{ClassS: 4, ClassW: 10, ClassA: 16})
			return Params{Class: c, N: n, Iters: it}
		},
		App: isApp,
	})
}

func isApp(p Params, out *Output) func(cluster.Env) error {
	return func(env cluster.Env) error {
		n, iters := sized(p,
			map[Class]int{ClassS: 1 << 10, ClassW: 1 << 15, ClassA: 1 << 18},
			map[Class]int{ClassS: 4, ClassW: 10, ClassA: 16})
		st := env.State()
		r, size := env.Rank(), env.Size()
		local := n / size
		if local == 0 {
			local = 1
		}
		const keyRange = 1 << 16

		it := st.Int("it")
		seed := st.Int("seed")
		keys := st.Bytes("keys")

		if seed.Get() == 0 {
			seed.Set(314159*(r+1) + 271)
		}

		restored, err := env.Restore()
		if err != nil {
			return err
		}
		w := env.World()

		if !restored && it.Get() == 0 {
			ks := make([]int64, local)
			v := seed.Get()
			for i := range ks {
				v = (v*1103515245 + 12345) & 0x7fffffff
				ks[i] = int64(v % keyRange)
			}
			seed.Set(v)
			keys.SetData(mpi.Int64Bytes(ks))
		}

		for it.Get() < iters {
			ks := mpi.BytesInt64s(keys.Data())
			// Bucket keys by destination rank.
			per := keyRange / size
			buckets := make([][]int64, size)
			for _, k := range ks {
				d := int(k) / per
				if d >= size {
					d = size - 1
				}
				buckets[d] = append(buckets[d], k)
			}
			sendCounts := make([]int, size)
			sendDispls := make([]int, size)
			total := 0
			for q := 0; q < size; q++ {
				sendCounts[q] = 8 * len(buckets[q])
				sendDispls[q] = total
				total += sendCounts[q]
			}
			sendBuf := make([]byte, total)
			for q := 0; q < size; q++ {
				mpi.PutInt64s(sendBuf[sendDispls[q]:], buckets[q])
			}
			// Exchange counts, then the keys themselves.
			countsIn := make([]byte, 8*size)
			countsOut := make([]byte, 8*size)
			cs := make([]int64, size)
			for q := range cs {
				cs[q] = int64(sendCounts[q])
			}
			mpi.PutInt64s(countsIn, cs)
			if err := w.Alltoall(countsIn, 1, mpi.TypeInt64, countsOut); err != nil {
				return err
			}
			recvCounts64 := mpi.BytesInt64s(countsOut)
			recvCounts := make([]int, size)
			recvDispls := make([]int, size)
			rtotal := 0
			for q := 0; q < size; q++ {
				recvCounts[q] = int(recvCounts64[q])
				recvDispls[q] = rtotal
				rtotal += recvCounts[q]
			}
			recvBuf := make([]byte, rtotal)
			if err := w.Alltoallv(sendBuf, sendCounts, sendDispls, recvBuf, recvCounts, recvDispls); err != nil {
				return err
			}
			got := mpi.BytesInt64s(recvBuf)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			// Perturb the keys so every iteration re-communicates, keeping
			// values inside this rank's range most of the time.
			for i := range got {
				got[i] = (got[i]*31 + int64(i)) % keyRange
			}
			keys.SetData(mpi.Int64Bytes(got))
			it.Add(1)
			if err := env.Checkpoint(); err != nil {
				return err
			}
		}
		ks := mpi.BytesInt64s(keys.Data())
		sum := 0.0
		for i, k := range ks {
			sum += float64(k) * float64(i%13+1) * 1e-4
		}
		out.Report(r, sum)
		return nil
	}
}
