package trace

import (
	"fmt"
	"os"
	"path/filepath"

	"c3/internal/wire"
)

// Dump file format (all little-endian, via internal/wire):
//
//	u32 magic   "C3TR" (0x52544333)
//	u32 version (1)
//	i64 rank    (recording rank; -1 if the recorder was shared in-process)
//	u32 count   (events, Count-clamped against eventWireSize on decode)
//	count × event:
//	    u64 seq | u64 span | u64 parent | u8 kind | u8 phase |
//	    u32 rank | u32 peer | u64 clock | i64 time | u64 arg
//
// The event array is flat and fixed-width so decoding clamps the count
// against the remaining bytes before any allocation (the PR 3
// deserializer-hardening rule) — a truncated or corrupt dump fails
// cleanly instead of allocating from a hostile length prefix.

// DumpMagic identifies a flight-recorder dump file.
const DumpMagic = 0x52544333 // "C3TR"

// DumpVersion is the current dump format version.
const DumpVersion = 1

// eventWireSize is the encoded size of one event in bytes.
const eventWireSize = 8 + 8 + 8 + 1 + 1 + 4 + 4 + 8 + 8 + 8

// Dump is a decoded flight-recorder dump.
type Dump struct {
	Rank   int // recording rank, -1 if shared
	Events []Event
}

// EncodeDump serializes events into the dump format.
func EncodeDump(rank int, events []Event) []byte {
	w := wire.NewWriter(16 + len(events)*eventWireSize)
	w.U32(DumpMagic)
	w.U32(DumpVersion)
	w.I64(int64(rank))
	w.U32(uint32(len(events)))
	for _, ev := range events {
		w.U64(ev.Seq)
		w.U64(ev.Span)
		w.U64(ev.Parent)
		w.U8(uint8(ev.Kind))
		w.U8(uint8(ev.Phase))
		w.U32(uint32(ev.Rank))
		w.U32(uint32(ev.Peer))
		w.U64(ev.Clock)
		w.I64(ev.Time)
		w.U64(ev.Arg)
	}
	return w.Bytes()
}

// DecodeDump parses a dump, validating magic, version, and the event
// count against the available bytes.
func DecodeDump(b []byte) (*Dump, error) {
	r := wire.NewReader(b)
	if magic := r.U32(); magic != DumpMagic {
		if r.Err() != nil {
			return nil, fmt.Errorf("trace: dump header: %w", r.Err())
		}
		return nil, fmt.Errorf("trace: bad dump magic %#x", magic)
	}
	if v := r.U32(); v != DumpVersion {
		if r.Err() != nil {
			return nil, fmt.Errorf("trace: dump header: %w", r.Err())
		}
		return nil, fmt.Errorf("trace: unsupported dump version %d", v)
	}
	rank := r.I64()
	n := r.Count(eventWireSize)
	if r.Err() != nil {
		return nil, fmt.Errorf("trace: dump header: %w", r.Err())
	}
	events := make([]Event, n)
	for i := range events {
		ev := &events[i]
		ev.Seq = r.U64()
		ev.Span = r.U64()
		ev.Parent = r.U64()
		ev.Kind = Kind(r.U8())
		ev.Phase = Phase(r.U8())
		ev.Rank = int32(r.U32())
		ev.Peer = int32(r.U32())
		ev.Clock = r.U64()
		ev.Time = r.I64()
		ev.Arg = r.U64()
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("trace: dump events: %w", r.Err())
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("trace: %d trailing bytes after event array", r.Remaining())
	}
	for i := range events {
		if events[i].Kind >= KindCount {
			return nil, fmt.Errorf("trace: event %d: invalid kind %d", i, events[i].Kind)
		}
		if events[i].Phase > PhaseRecv {
			return nil, fmt.Errorf("trace: event %d: invalid phase %d", i, events[i].Phase)
		}
	}
	return &Dump{Rank: int(rank), Events: events}, nil
}

// DumpFileName is the conventional per-rank dump file name inside a
// trace directory.
func DumpFileName(rank int) string {
	return fmt.Sprintf("rank%d.c3tr", rank)
}

// WriteDump snapshots the recorder and writes a dump file for rank into
// dir (created if missing). It returns the file path.
func (r *Recorder) WriteDump(dir string, rank int) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, DumpFileName(rank))
	if err := os.WriteFile(path, EncodeDump(rank, r.Snapshot()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadDump loads and decodes a dump file.
func ReadDump(path string) (*Dump, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeDump(b)
}
