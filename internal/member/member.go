// Package member makes the world size a runtime variable. A Set is an
// epoch-versioned view of the node slots currently participating in the
// world: the failure detector's agreement protocol stamps membership
// changes into epoch transitions, the stable store derives shard placement
// from the member ring, and the cluster runtime sizes quorums against the
// current membership instead of the launch-time world.
//
// Two ideas keep every layer honest:
//
//   - Members are identified by their launch-assigned slot rank, but all
//     ring math (successors, shard holders) runs over the member *ring* —
//     the sorted member list treated as a cycle. When the members are
//     exactly 0..n-1 the ring math reduces to the fixed-world formulas the
//     earlier layers were built on, so growing the world is a strict
//     generalization, not a migration.
//
//   - A Set is immutable. Deriving the next membership (WithJoined,
//     WithRemoved) returns a new value stamped with the epoch that commits
//     it, so concurrent readers never observe a half-applied change.
package member

import (
	"fmt"
	"sort"
	"strings"
)

// Set is one epoch's membership: the sorted set of live node slots. The
// zero value is an empty membership at epoch 0; real worlds start from
// Launch.
type Set struct {
	epoch   uint64
	members []int // sorted ascending, no duplicates; never aliased out
}

// Launch is the boot membership: slots 0..n-1 at epoch 1 (the failure
// detector's first epoch, before any agreement has run).
func Launch(n int) Set {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return Set{epoch: 1, members: m}
}

// New builds a membership from an explicit slot list (copied, sorted,
// deduplicated) at the given epoch.
func New(epoch uint64, members []int) Set {
	m := append([]int(nil), members...)
	sort.Ints(m)
	out := m[:0]
	for i, r := range m {
		if i > 0 && r == m[i-1] {
			continue
		}
		out = append(out, r)
	}
	return Set{epoch: epoch, members: out}
}

// Epoch returns the epoch that committed this membership.
func (s Set) Epoch() uint64 { return s.epoch }

// Size returns the number of members.
func (s Set) Size() int { return len(s.members) }

// Members returns the sorted member slots (a copy).
func (s Set) Members() []int {
	return append([]int(nil), s.members...)
}

// Contains reports whether slot r is a member.
func (s Set) Contains(r int) bool {
	_, ok := s.Index(r)
	return ok
}

// Index returns r's position in the sorted member ring.
func (s Set) Index(r int) (int, bool) {
	i := sort.SearchInts(s.members, r)
	if i < len(s.members) && s.members[i] == r {
		return i, true
	}
	return 0, false
}

// Quorum is the strict majority of the current membership — the vote
// count an epoch agreement needs. It generalizes the fixed-world n/2+1:
// after a committed grow or shrink, the majority is of the *new* world,
// so a fenced minority of the old world can never outvote it.
func (s Set) Quorum() int { return len(s.members)/2 + 1 }

// ringIndex maps a slot to a position on the member ring. Non-members map
// to their insertion point, so placement math stays total for slots that
// were members when a line committed but have since drained.
func (s Set) ringIndex(r int) int {
	if len(s.members) == 0 {
		return 0
	}
	i := sort.SearchInts(s.members, r)
	return i % len(s.members)
}

// Successors returns up to k distinct members after r on the ring,
// excluding r itself. For a non-member r the walk starts at r's insertion
// point, so a joining slot can locate the members it must talk to.
func (s Set) Successors(r, k int) []int {
	return s.walk(r, k, +1)
}

// Predecessors returns up to k distinct members before r on the ring,
// excluding r itself.
func (s Set) Predecessors(r, k int) []int {
	return s.walk(r, k, -1)
}

func (s Set) walk(r, k, dir int) []int {
	n := len(s.members)
	if n == 0 || k <= 0 {
		return nil
	}
	start, isMember := s.Index(r)
	if !isMember {
		start = s.ringIndex(r)
		if dir > 0 {
			// The insertion point is already the first slot after r.
			start--
		}
	}
	out := make([]int, 0, k)
	for d := 1; d <= n && len(out) < k; d++ {
		i := ((start+d*dir)%n + n) % n
		m := s.members[i]
		if m == r {
			continue
		}
		out = append(out, m)
	}
	return out
}

// ShardHolder places shard idx of owner's lines on the member ring: the
// k+m shards land on distinct ring successors starting after the owner,
// with the assignment rotated by the owner's ring position so parity
// shards cycle around the ring, and no member ever holds a shard of its
// own line. Rings smaller than shards+1 wrap (a successor holds several
// shards, with correspondingly reduced loss tolerance). With members
// 0..n-1 this is exactly the fixed-world formula
// (owner+1+((idx+owner)%shards%span))%n used since the codec PR, so
// committed lines keep their placement until the membership changes.
func (s Set) ShardHolder(owner, idx, shards int) int {
	n := len(s.members)
	if n == 0 {
		return owner
	}
	oi := s.ringIndex(owner)
	span := shards
	if span > n-1 {
		span = n - 1
	}
	if span <= 0 {
		return s.members[oi]
	}
	pos := (idx + oi) % shards % span
	return s.members[(oi+1+pos)%n]
}

// ShardPlan maps every shard index of one commit to its holder slot and
// returns the distinct holder set (ring order from the owner's successor).
func (s Set) ShardPlan(owner, shards int) (holderOf []int, holders []int) {
	holderOf = make([]int, shards)
	seen := make(map[int]bool, shards)
	for idx := 0; idx < shards; idx++ {
		h := s.ShardHolder(owner, idx, shards)
		holderOf[idx] = h
		if !seen[h] {
			seen[h] = true
			holders = append(holders, h)
		}
	}
	return holderOf, holders
}

// WithJoined derives the membership after the given slots join, stamped
// with the committing epoch. Joining an existing member is a no-op.
func (s Set) WithJoined(epoch uint64, ranks ...int) Set {
	m := append(append([]int(nil), s.members...), ranks...)
	n := New(epoch, m)
	return n
}

// WithRemoved derives the membership after the given slots leave (drain
// or permanent eviction), stamped with the committing epoch.
func (s Set) WithRemoved(epoch uint64, ranks ...int) Set {
	drop := make(map[int]bool, len(ranks))
	for _, r := range ranks {
		drop[r] = true
	}
	m := make([]int, 0, len(s.members))
	for _, r := range s.members {
		if !drop[r] {
			m = append(m, r)
		}
	}
	return Set{epoch: epoch, members: m}
}

// WithEpoch returns the same member set stamped with a different epoch —
// used when an epoch transition (a death) commits without changing who
// belongs to the world.
func (s Set) WithEpoch(epoch uint64) Set {
	return Set{epoch: epoch, members: s.members}
}

// SameMembers reports whether two sets contain the same slots, ignoring
// the epoch stamp.
func (s Set) SameMembers(o Set) bool {
	if len(s.members) != len(o.members) {
		return false
	}
	for i, r := range s.members {
		if o.members[i] != r {
			return false
		}
	}
	return true
}

// Equal reports whether two sets are identical, epoch included.
func (s Set) Equal(o Set) bool {
	return s.epoch == o.epoch && s.SameMembers(o)
}

// Max returns the highest member slot, or -1 for an empty set. The
// launcher sizes address tables to cover every member it may hear from.
func (s Set) Max() int {
	if len(s.members) == 0 {
		return -1
	}
	return s.members[len(s.members)-1]
}

// String renders the membership for logs: "epoch 3 members [0 1 2 5]".
func (s Set) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch %d members %v", s.epoch, s.members)
	return b.String()
}
