package baseline

import (
	"fmt"

	"c3/internal/cluster"
	"c3/internal/stable"
)

// BlockingEnv wraps a direct (non-C3) environment with classic blocking
// coordinated checkpointing: at a firing pragma, all processes synchronize
// at a global barrier, save their state, and synchronize again before
// resuming. This is the scheme the paper contrasts its non-blocking
// protocol with — it is simple (no late/early message handling, because the
// barriers ensure no application messages are in flight at the line for
// bulk-synchronous codes), but it serializes every process through two
// barriers per checkpoint and cannot be used at all when the application
// has no globally consistent barrier points (HPL and most NAS codes,
// Section 1).
type BlockingEnv struct {
	cluster.Env
	store   stable.Store
	every   int
	pragmas int
	version int
}

// WrapBlocking decorates an application so its pragmas perform blocking
// coordinated checkpoints every n-th call into the given store. The inner
// run must be Direct (the protocol layer would be redundant).
func WrapBlocking(store stable.Store, every int, app func(cluster.Env) error) func(cluster.Env) error {
	return func(env cluster.Env) error {
		benv := &BlockingEnv{Env: env, store: store, every: every}
		return app(benv)
	}
}

// Checkpoint implements the blocking scheme.
func (b *BlockingEnv) Checkpoint() error {
	b.pragmas++
	if b.every <= 0 || b.pragmas%b.every != 0 {
		return nil
	}
	return b.CheckpointNow()
}

// CheckpointNow takes an unconditional blocking checkpoint.
func (b *BlockingEnv) CheckpointNow() error {
	w := b.World()
	// Entry barrier: every process must be at its line before anyone
	// saves, so no process state can reflect a message from beyond the
	// line (for bulk-synchronous communication patterns).
	if err := w.Barrier(); err != nil {
		return err
	}
	b.version++
	ck, err := b.store.Begin(b.Rank(), b.version)
	if err != nil {
		return err
	}
	if err := ck.WriteSection("app", b.State().Save()); err != nil {
		return err
	}
	if err := ck.Commit(); err != nil {
		return err
	}
	// Exit barrier: nobody resumes until every checkpoint is durable.
	return w.Barrier()
}

// Restore loads the last committed version on this rank. Blocking
// checkpoints are globally consistent by construction, so no cross-rank
// reduction or message replay is needed — which is exactly the property the
// scheme pays two global barriers per checkpoint for.
func (b *BlockingEnv) Restore() (bool, error) {
	v, ok, err := b.store.LastCommitted(b.Rank())
	if err != nil || !ok {
		return false, err
	}
	snap, err := b.store.Open(b.Rank(), v)
	if err != nil {
		return false, err
	}
	defer snap.Close()
	img, err := snap.ReadSection("app")
	if err != nil {
		return false, err
	}
	if err := b.State().Load(img); err != nil {
		return false, fmt.Errorf("baseline: restore version %d: %w", v, err)
	}
	b.version = v
	return true, nil
}
