package sched

import (
	"reflect"
	"testing"

	"c3/internal/cluster"
	"c3/internal/transport"
)

func TestScheduleMarshalRoundtrip(t *testing.T) {
	s := &cluster.Schedule{
		Seed: 42,
		Attempts: []*transport.Trace{
			{Seed: 7, Decisions: []transport.Decision{
				{Step: 1, Kind: transport.DecisionStart, Rank: -1, Next: 2},
				{Step: 50, Kind: transport.DecisionPreempt, Rank: 0, Next: 4},
				{Step: 92, Kind: transport.DecisionBlock, Rank: 3, Next: 1},
				{Step: 130, Kind: transport.DecisionExit, Rank: 4, Next: -1},
			}},
			{Seed: -3},
		},
	}
	got, err := UnmarshalSchedule(MarshalSchedule(s))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("roundtrip mismatch:\n  in:  %+v\n  out: %+v", s, got)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"not a schedule",
		"c3sched-schedule v1\nseed x\n",
		"c3sched-schedule v1\nd 1 start -1 0\n", // decision before attempt
		"c3sched-schedule v1\nattempt 0 seed 1\nd 1 bogus -1 0\n",
	} {
		if _, err := UnmarshalSchedule([]byte(bad)); err == nil {
			t.Errorf("UnmarshalSchedule(%q) succeeded, want error", bad)
		}
	}
}

func TestScenarioRegistry(t *testing.T) {
	if len(Scenarios) == 0 {
		t.Fatal("no scenarios registered")
	}
	seen := map[string]bool{}
	for _, sc := range Scenarios {
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if _, ok := ScenarioByName(sc.Name); !ok {
			t.Fatalf("ScenarioByName(%q) not found", sc.Name)
		}
	}
	if _, ok := ScenarioByName("no-such-scenario"); ok {
		t.Fatal("ScenarioByName invented a scenario")
	}
}

// TestSweepAndShrinkContract runs a tiny sweep on the two-failures scenario
// (which must be clean after the protocol fixes) and verifies Shrink
// rejects a passing schedule with ErrNotReproducible.
func TestSweepAndShrinkContract(t *testing.T) {
	sc, ok := ScenarioByName("two-failures")
	if !ok {
		t.Fatal("two-failures scenario missing")
	}
	ref, err := Reference(sc)
	if err != nil {
		t.Fatal(err)
	}
	res := Sweep(sc, ref, 1, 3, false)
	if res.Ran != 3 {
		t.Fatalf("ran %d seeds, want 3", res.Ran)
	}
	for _, o := range res.Failures {
		t.Errorf("seed %d failed: %s (divergent=%v)", o.Seed, o.Reason, o.Divergent)
	}

	o := RunSeed(sc, ref, 1)
	if o.Failed {
		t.Fatalf("seed 1 failed: %s", o.Reason)
	}
	if o.Schedule == nil {
		t.Fatal("outcome has no recorded schedule")
	}
	if _, _, err := Shrink(sc, ref, o.Schedule, 10); err != ErrNotReproducible {
		t.Fatalf("Shrink on a passing schedule: err = %v, want ErrNotReproducible", err)
	}
}

// TestDualFailureScenario sweeps a few seeds of the same-attempt
// two-victim scenario: whichever subset of the two scheduled failures the
// interleaving lets fire, recovery must converge to the reference sums.
func TestDualFailureScenario(t *testing.T) {
	sc, ok := ScenarioByName("dual-failure-sync")
	if !ok {
		t.Fatal("dual-failure-sync scenario missing")
	}
	ref, err := Reference(sc)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	res := Sweep(sc, ref, 1, 5, false)
	if len(res.Failures) != 0 {
		t.Fatalf("dual-failure sweep failed: %+v", res.Failures[0])
	}
}

// TestFailureDuringRecoveryScenario: the second victim dies at the first
// pragma of the restore attempt.
func TestFailureDuringRecoveryScenario(t *testing.T) {
	sc, ok := ScenarioByName("failure-in-restore-sync")
	if !ok {
		t.Fatal("failure-in-restore-sync scenario missing")
	}
	ref, err := Reference(sc)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	res := Sweep(sc, ref, 1, 5, false)
	if len(res.Failures) != 0 {
		t.Fatalf("failure-in-restore sweep failed: %+v", res.Failures[0])
	}
}
