package apps

import (
	"math"

	"c3/internal/cluster"
	"c3/internal/mpi"
)

// EP mirrors the NAS EP benchmark: embarrassingly parallel generation of
// pseudo-random pairs with an acceptance test, tallied into annulus bins,
// combined with a single reduction at the end. Its live state is tiny — the
// bins and the generator state — which is why the paper's Table 1 shows C3
// checkpoints of ~1 MB against Condor's full process image: a system-level
// checkpointer must save the whole heap including scratch memory that the
// application has already freed. To exercise exactly that effect, the
// kernel allocates (and frees) a large scratch block from the
// checkpointable heap during initialization.
func init() {
	Register(&Kernel{
		Name:        "EP",
		Description: "embarrassingly parallel random pairs; one reduction at the end",
		Defaults: func(c Class) Params {
			n, _ := sized(Params{Class: c}, map[Class]int{ClassS: 1 << 12, ClassW: 1 << 18, ClassA: 1 << 21}, nil)
			_, it := sized(Params{Class: c}, nil, map[Class]int{ClassS: 4, ClassW: 8, ClassA: 16})
			return Params{Class: c, N: n, Iters: it}
		},
		App: epApp,
	})
}

func epApp(p Params, out *Output) func(cluster.Env) error {
	return func(env cluster.Env) error {
		n, iters := sized(p,
			map[Class]int{ClassS: 1 << 12, ClassW: 1 << 18, ClassA: 1 << 21},
			map[Class]int{ClassS: 4, ClassW: 8, ClassA: 16})
		st := env.State()
		r := env.Rank()

		it := st.Int("it")
		seed := st.Int("seed")
		bins := st.Int64s("bins", 10).Data()
		count := st.Int("count")

		if seed.Get() == 0 {
			seed.Set(271828183 ^ (r << 16))
		}

		// Large scratch block freed after initialization: live data drops,
		// but a system-level checkpoint's process image would keep paying
		// for it (the heap never shrinks).
		if it.Get() == 0 {
			scratch := env.Heap().Alloc("ep-scratch", 8*n)
			data := scratch.Data()
			s := uint64(12345 + r)
			for i := range data {
				s = s*6364136223846793005 + 1442695040888963407
				data[i] = byte(s >> 56)
			}
			env.Heap().Free(scratch)
		}

		restored, err := env.Restore()
		if err != nil {
			return err
		}
		_ = restored
		w := env.World()

		next := func() float64 {
			v := seed.Get()
			v = (v*1103515245 + 12345) & 0x7fffffff
			seed.Set(v)
			return float64(v) / float64(0x7fffffff)
		}

		for it.Get() < iters {
			for k := 0; k < n/iters; k++ {
				x := 2*next() - 1
				y := 2*next() - 1
				t := x*x + y*y
				if t <= 1.0 && t > 0 {
					f := math.Sqrt(-2 * math.Log(t) / t)
					gx, gy := x*f, y*f
					m := int(math.Max(math.Abs(gx), math.Abs(gy)))
					if m >= 0 && m < 10 {
						bins[m]++
						count.Add(1)
					}
				}
			}
			it.Add(1)
			if err := env.Checkpoint(); err != nil {
				return err
			}
		}
		// Single combining reduction, as in EP's epilogue.
		in := mpi.Int64Bytes(bins)
		outb := make([]byte, 8*len(bins))
		if err := w.Allreduce(in, outb, len(bins), mpi.TypeInt64, mpi.OpSum); err != nil {
			return err
		}
		total := mpi.BytesInt64s(outb)
		sum := 0.0
		for i, v := range total {
			sum += float64(v) * float64(i+1)
		}
		out.Report(r, sum)
		return nil
	}
}
