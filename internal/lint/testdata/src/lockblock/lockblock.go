// Fixture for c3lockblock. write/redial reconstruct the PR 4 incident: the
// per-peer connection lock held across a TCP redial, so every sender to the
// peer — heartbeats included — queued behind the dial stall. The dial sits
// one call below the lock, which is exactly what the package-local
// transitive may-block propagation exists to catch.
package lockblock

import (
	"net"
	"sync"
	"time"
)

type peer struct {
	mu   sync.Mutex
	conn net.Conn
	ch   chan int
}

// write is the historical redialBackoff shape (PR 4).
func (p *peer) write(frame []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		p.redial() // want `call to redial while p\.mu is held .*redial may block: net\.Dial`
	}
}

func (p *peer) redial() {
	for i := 0; i < 3; i++ {
		c, err := net.Dial("tcp", "127.0.0.1:0")
		if err == nil {
			p.conn = c
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Direct blocking operations under the lock; the same operations after the
// Unlock are fine.
func (p *peer) direct() {
	p.mu.Lock()
	c, _ := net.Dial("tcp", "127.0.0.1:0") // want `net\.Dial while p\.mu is held`
	_ = c
	p.mu.Unlock()
	c2, _ := net.Dial("tcp", "127.0.0.1:0")
	_ = c2
}

func (p *peer) send() {
	p.mu.Lock()
	p.ch <- 1 // want `channel send while p\.mu is held`
	p.mu.Unlock()
}

func (p *peer) wait(wg *sync.WaitGroup) {
	p.mu.Lock()
	wg.Wait() // want `sync\.WaitGroup\.Wait while p\.mu is held`
	p.mu.Unlock()
}

func (p *peer) connWrite(frame []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conn.Write(frame) // want `Write on net\.Conn p\.conn while p\.mu is held`
}

func (p *peer) selectBlocks() {
	p.mu.Lock()
	select { // want `blocking select while p\.mu is held`
	case v := <-p.ch:
		_ = v
	}
	p.mu.Unlock()
}

// A select with a default case polls instead of blocking.
func (p *peer) pollOK() {
	p.mu.Lock()
	select {
	case v := <-p.ch:
		_ = v
	default:
	}
	p.mu.Unlock()
}

// sync.Cond.Wait is the one sanctioned wait-under-lock: the protocol
// requires holding L and Wait releases it while parked.
func (p *peer) condOK(c *sync.Cond) {
	p.mu.Lock()
	c.Wait()
	p.mu.Unlock()
}

// A goroutine launched under the lock runs concurrently, not under it.
func (p *peer) goStmtOK() {
	p.mu.Lock()
	go func() {
		p.ch <- 1
	}()
	p.mu.Unlock()
}

// The escape hatch for deliberate block-under-lock sites (tcp.Mesh's
// per-peer FIFO framing); the harness asserts this lands in Suppressed.
func (p *peer) framed(frame []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conn.Write(frame) //c3lint:allow lockblock fixture: per-peer FIFO framing requires the write under the lock
}
