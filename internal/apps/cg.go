package apps

import (
	"math"

	"c3/internal/cluster"
	"c3/internal/mpi"
)

// CG is a conjugate-gradient solve on a 1D Laplacian, row-block
// partitioned: each iteration does one sparse matrix-vector product with a
// nearest-neighbor halo exchange plus two dot-product Allreduces — the NAS
// CG communication shape. The paper places the checkpoint location "at the
// bottom of the main loop in the routine conj_grad".
func init() {
	Register(&Kernel{
		Name:        "CG",
		Description: "conjugate gradient: halo exchange + dot-product allreduces per iteration",
		Defaults: func(c Class) Params {
			n, _ := sized(Params{Class: c}, map[Class]int{ClassS: 512, ClassW: 262144, ClassA: 1048576}, nil)
			_, it := sized(Params{Class: c}, nil, map[Class]int{ClassS: 12, ClassW: 30, ClassA: 60})
			return Params{Class: c, N: n, Iters: it}
		},
		App: cgApp,
	})
}

func cgApp(p Params, out *Output) func(cluster.Env) error {
	return func(env cluster.Env) error {
		n, iters := sized(p,
			map[Class]int{ClassS: 512, ClassW: 262144, ClassA: 1048576},
			map[Class]int{ClassS: 12, ClassW: 30, ClassA: 60})
		st := env.State()
		r, size := env.Rank(), env.Size()
		lo, hi := blockRange(n, size, r)
		local := hi - lo

		it := st.Int("it")
		x := st.Float64s("x", local).Data()
		rv := st.Float64s("r", local).Data()
		pv := st.Float64s("p", local).Data()
		ap := st.Float64s("ap", local).Data()
		rho := st.Float64("rho")

		restored, err := env.Restore()
		if err != nil {
			return err
		}
		w := env.World()

		matvec := func(in, outv []float64) error {
			// Halo exchange of the boundary elements with both neighbors.
			// Send and receive buffers must be distinct (MPI forbids
			// overlapping Sendrecv buffers).
			leftGhost, rightGhost := 0.0, 0.0
			var sbuf, rbuf [8]byte
			if r > 0 {
				mpi.PutFloat64s(sbuf[:], in[:1])
				if _, err := w.Sendrecv(sbuf[:], 1, mpi.TypeFloat64, r-1, 21,
					rbuf[:], 1, mpi.TypeFloat64, r-1, 22); err != nil {
					return err
				}
				var v [1]float64
				mpi.GetFloat64s(v[:], rbuf[:])
				leftGhost = v[0]
			}
			if r < size-1 {
				mpi.PutFloat64s(sbuf[:], in[local-1:])
				if _, err := w.Sendrecv(sbuf[:], 1, mpi.TypeFloat64, r+1, 22,
					rbuf[:], 1, mpi.TypeFloat64, r+1, 21); err != nil {
					return err
				}
				var v [1]float64
				mpi.GetFloat64s(v[:], rbuf[:])
				rightGhost = v[0]
			}
			for i := 0; i < local; i++ {
				left := leftGhost
				if i > 0 {
					left = in[i-1]
				}
				right := rightGhost
				if i < local-1 {
					right = in[i+1]
				}
				outv[i] = 2*in[i] - left - right + in[i]*1e-3
			}
			return nil
		}

		dot := func(a, b []float64) (float64, error) {
			s := 0.0
			for i := range a {
				s += a[i] * b[i]
			}
			in := mpi.Float64Bytes([]float64{s})
			outb := make([]byte, 8)
			if err := w.Allreduce(in, outb, 1, mpi.TypeFloat64, mpi.OpSum); err != nil {
				return 0, err
			}
			return mpi.BytesFloat64s(outb)[0], nil
		}

		if !restored && it.Get() == 0 {
			for i := 0; i < local; i++ {
				gi := lo + i
				rv[i] = 1.0 + float64(gi%7)*0.125
				pv[i] = rv[i]
				x[i] = 0
			}
			rr, err := dot(rv, rv)
			if err != nil {
				return err
			}
			rho.Set(rr)
		}

		for it.Get() < iters {
			if err := matvec(pv, ap); err != nil {
				return err
			}
			pap, err := dot(pv, ap)
			if err != nil {
				return err
			}
			alpha := rho.Get() / pap
			for i := 0; i < local; i++ {
				x[i] += alpha * pv[i]
				rv[i] -= alpha * ap[i]
			}
			rr, err := dot(rv, rv)
			if err != nil {
				return err
			}
			beta := rr / rho.Get()
			rho.Set(rr)
			for i := 0; i < local; i++ {
				pv[i] = rv[i] + beta*pv[i]
			}
			it.Add(1)
			if err := env.Checkpoint(); err != nil { // bottom of conj_grad loop
				return err
			}
		}
		sum := 0.0
		for i := 0; i < local; i++ {
			sum += x[i] * float64(lo+i+1)
		}
		if math.IsNaN(sum) {
			sum = -1
		}
		out.Report(r, sum)
		return nil
	}
}
