package ckpt

import (
	"encoding/binary"
	"fmt"
)

// Header is the protocol information piggybacked on every application
// message (paper Section 3.2). The receiver uses it to answer two
// questions: is the message late, intra-epoch, or early; and has the sender
// stopped logging non-deterministic events.
type Header struct {
	// Color is the sender's 2-bit epoch color.
	Color uint8
	// StoppedLogging reports that the sender is no longer in NonDet-Log
	// mode.
	StoppedLogging bool
	// Epoch is the sender's full epoch. Only the wide codec transmits it;
	// with the narrow codec it is zero on the receive side.
	Epoch uint64
	// HasEpoch reports whether Epoch is meaningful.
	HasEpoch bool
}

// Codec encodes piggyback headers. The paper notes that "it is sufficient to
// piggyback three bits on each outgoing message" and that the piggybacking
// implementation is separated from the rest of the protocol so it can be
// swapped; both codecs below implement the same interface so the ablation
// benchmark can compare them.
type Codec interface {
	// Width returns the fixed encoded size in bytes.
	Width() int
	// Encode appends the header to dst.
	Encode(dst []byte, h Header) []byte
	// Decode reads a header from the start of src.
	Decode(src []byte) (Header, error)
}

// NarrowCodec packs the epoch color (2 bits) and the stopped-logging flag
// (1 bit) into a single byte: the paper's minimal 3-bit piggyback, rounded
// up to the byte the transport can carry.
type NarrowCodec struct{}

// Width implements Codec.
func (NarrowCodec) Width() int { return 1 }

// Encode implements Codec.
func (NarrowCodec) Encode(dst []byte, h Header) []byte {
	b := h.Color & 0x3
	if h.StoppedLogging {
		b |= 0x4
	}
	return append(dst, b)
}

// Decode implements Codec.
func (NarrowCodec) Decode(src []byte) (Header, error) {
	if len(src) < 1 {
		return Header{}, fmt.Errorf("ckpt: short message: no piggyback header")
	}
	return Header{Color: src[0] & 0x3, StoppedLogging: src[0]&0x4 != 0}, nil
}

// WideCodec transmits the full 64-bit epoch plus a flag byte (9 bytes per
// message). It exists as the ablation baseline the paper's 3-bit
// optimization is measured against, and lets tests cross-check the color
// arithmetic against exact epoch arithmetic.
type WideCodec struct{}

// Width implements Codec.
func (WideCodec) Width() int { return 9 }

// Encode implements Codec.
func (WideCodec) Encode(dst []byte, h Header) []byte {
	var tmp [9]byte
	binary.LittleEndian.PutUint64(tmp[:8], h.Epoch)
	tmp[8] = h.Color & 0x3
	if h.StoppedLogging {
		tmp[8] |= 0x4
	}
	return append(dst, tmp[:]...)
}

// Decode implements Codec.
func (WideCodec) Decode(src []byte) (Header, error) {
	if len(src) < 9 {
		return Header{}, fmt.Errorf("ckpt: short message: truncated wide header")
	}
	return Header{
		Epoch:          binary.LittleEndian.Uint64(src[:8]),
		HasEpoch:       true,
		Color:          src[8] & 0x3,
		StoppedLogging: src[8]&0x4 != 0,
	}, nil
}
