package trace

import (
	"bytes"
	"testing"
)

// FuzzTraceDecode throws arbitrary bytes at the dump decoder. The decoder
// feeds on files read off disk in c3trace and on operator-supplied paths,
// so it must never panic or over-allocate on hostile input (the count
// field is clamped against the actual payload size). Any dump it does
// accept must survive a re-encode round trip.
func FuzzTraceDecode(f *testing.F) {
	f.Add(EncodeDump(0, nil))
	f.Add(EncodeDump(3, sampleEvents()))
	f.Add([]byte{})
	f.Add([]byte{0x33, 0x54, 0x52, 0x43}) // magic alone, no header
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDump(data)
		if err != nil {
			return
		}
		for i, ev := range d.Events {
			if ev.Kind >= KindCount || ev.Phase > PhaseRecv {
				t.Fatalf("accepted event %d with invalid kind=%d phase=%d", i, ev.Kind, ev.Phase)
			}
		}
		re := EncodeDump(d.Rank, d.Events)
		d2, err := DecodeDump(re)
		if err != nil {
			t.Fatalf("re-encode of accepted dump does not decode: %v", err)
		}
		if d2.Rank != d.Rank || len(d2.Events) != len(d.Events) {
			t.Fatalf("round trip drift: rank %d/%d, events %d/%d",
				d.Rank, d2.Rank, len(d.Events), len(d2.Events))
		}
		for i := range d.Events {
			if d.Events[i] != d2.Events[i] {
				t.Fatalf("round trip drift at event %d", i)
			}
		}
	})
}
