package statesave

import (
	"testing"
	"testing/quick"

	"c3/internal/wire"
)

func TestRegistryCellsRoundTrip(t *testing.T) {
	g := NewRegistry()
	it := g.Int("it")
	x := g.Float64("x")
	ok := g.Bool("ok")
	fs := g.Float64s("fs", 4)
	is := g.Int64s("is", 3)
	bs := g.Bytes("bs")

	it.Set(42)
	x.Set(2.5)
	ok.Set(true)
	copy(fs.Data(), []float64{1, 2, 3, 4})
	copy(is.Data(), []int64{-1, 0, 1})
	bs.SetData([]byte("hello"))

	img := g.Save()

	// A "restarted" program re-registers the same cells, then loads.
	g2 := NewRegistry()
	it2 := g2.Int("it")
	x2 := g2.Float64("x")
	ok2 := g2.Bool("ok")
	fs2 := g2.Float64s("fs", 4)
	is2 := g2.Int64s("is", 3)
	bs2 := g2.Bytes("bs")
	if err := g2.Load(img); err != nil {
		t.Fatal(err)
	}
	if it2.Get() != 42 || x2.Get() != 2.5 || !ok2.Get() {
		t.Fatalf("scalars: %d %v %v", it2.Get(), x2.Get(), ok2.Get())
	}
	if fs2.Data()[3] != 4 || is2.Data()[0] != -1 || string(bs2.Data()) != "hello" {
		t.Fatal("slices not restored")
	}
}

func TestLoadKeepsSliceIdentity(t *testing.T) {
	g := NewRegistry()
	fs := g.Float64s("v", 3)
	copy(fs.Data(), []float64{7, 8, 9})
	img := g.Save()

	g2 := NewRegistry()
	fs2 := g2.Float64s("v", 3)
	alias := fs2.Data() // the application's live view
	if err := g2.Load(img); err != nil {
		t.Fatal(err)
	}
	// Restoration must land in the same backing array the app holds.
	if alias[0] != 7 || alias[2] != 9 {
		t.Fatalf("restore did not preserve slice identity: %v", alias)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate registration")
		}
	}()
	g := NewRegistry()
	g.Register(g.Int("a")) // Int registers; Register again must panic
}

func TestLoadRejectsUnknownSection(t *testing.T) {
	g := NewRegistry()
	g.Int("known")
	img := g.Save()

	g2 := NewRegistry() // nothing registered
	if err := g2.Load(img); err == nil {
		t.Fatal("unknown section accepted")
	}
}

func TestLiveBytesAccounting(t *testing.T) {
	g := NewRegistry()
	g.Int("a")           // 8
	g.Float64s("f", 100) // 800
	g.Bytes("b").SetData(make([]byte, 50))
	if got := g.LiveBytes(); got != 8+800+50 {
		t.Fatalf("live bytes %d", got)
	}
}

func TestCustomSection(t *testing.T) {
	val := 0
	g := NewRegistry()
	g.Register(NewCustom("c", func() int { return 8 },
		func(w *wire.Writer) { w.Int(val) },
		func(r *wire.Reader) error { val = r.Int(); return r.Err() }))
	val = 99
	img := g.Save()
	val = 0
	if err := g.Load(img); err != nil {
		t.Fatal(err)
	}
	if val != 99 {
		t.Fatalf("custom value %d", val)
	}
}

func TestHeapLiveAndHighWater(t *testing.T) {
	h := NewHeap()
	a := h.Alloc("a", 100)
	b := h.Alloc("b", 200)
	if h.LiveBytes() != 300 || h.HighWater() != 300 {
		t.Fatalf("live=%d hw=%d", h.LiveBytes(), h.HighWater())
	}
	h.Free(a)
	if h.LiveBytes() != 200 {
		t.Fatalf("live after free %d", h.LiveBytes())
	}
	if h.HighWater() != 300 {
		t.Fatalf("high water dropped to %d", h.HighWater())
	}
	if h.FreedBytes() != 100 {
		t.Fatalf("freed %d", h.FreedBytes())
	}
	c := h.Alloc("c", 250)
	if h.HighWater() != 450 {
		t.Fatalf("high water %d", h.HighWater())
	}
	_ = b
	_ = c
}

func TestHeapRestoreBothOrders(t *testing.T) {
	h := NewHeap()
	blk := h.Alloc("data", 4)
	copy(blk.Data(), []byte{1, 2, 3, 4})
	img := h.Save()

	// Alloc before Load: contents copied into the existing block.
	h2 := NewHeap()
	b2 := h2.Alloc("data", 4)
	if err := h2.Load(img); err != nil {
		t.Fatal(err)
	}
	if b2.Data()[3] != 4 {
		t.Fatal("load-after-alloc failed")
	}

	// Load before Alloc: contents parked and claimed by the allocation.
	h3 := NewHeap()
	if err := h3.Load(img); err != nil {
		t.Fatal(err)
	}
	b3 := h3.Alloc("data", 4)
	if b3.Data()[0] != 1 {
		t.Fatal("alloc-after-load failed")
	}
}

func TestHeapDoubleAllocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate allocation name")
		}
	}()
	h := NewHeap()
	h.Alloc("x", 1)
	h.Alloc("x", 1)
}

func TestHeapSectionIntegration(t *testing.T) {
	g := NewRegistry()
	h := NewHeap()
	g.Register(h.Section())
	blk := h.Alloc("grid", 16)
	blk.Data()[0] = 42
	img := g.Save()

	g2 := NewRegistry()
	h2 := NewHeap()
	g2.Register(h2.Section())
	b2 := h2.Alloc("grid", 16)
	if err := g2.Load(img); err != nil {
		t.Fatal(err)
	}
	if b2.Data()[0] != 42 {
		t.Fatal("heap section restore failed")
	}
}

func TestRegistrySaveLoadProperty(t *testing.T) {
	f := func(vals []float64, n uint8) bool {
		g := NewRegistry()
		fs := g.Float64s("v", len(vals))
		copy(fs.Data(), vals)
		c := g.Int("n")
		c.Set(int(n))
		img := g.Save()

		g2 := NewRegistry()
		fs2 := g2.Float64s("v", len(vals))
		c2 := g2.Int("n")
		if err := g2.Load(img); err != nil {
			return false
		}
		if c2.Get() != int(n) {
			return false
		}
		for i, v := range vals {
			got := fs2.Data()[i]
			if got != v && !(v != v && got != got) { // NaN-safe
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
