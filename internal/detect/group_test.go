package detect

import (
	"testing"
	"time"

	"c3/internal/member"
	"c3/internal/transport"
)

// newGroupedWorld is newWorld with a two-level topology of the given group
// size (and, optionally, a per-rank demux + relay wired under each
// detector when relayed is true).
func newGroupedWorld(t *testing.T, n, g int, hb time.Duration, phi float64, relayed bool) *world {
	t.Helper()
	w := &world{nw: transport.NewNetwork(n), dets: make([]*Detector, n)}
	var closers []func()
	for r := 0; r < n; r++ {
		opts := Options{
			Self: r, Ranks: n, Net: w.nw, GroupSize: g,
			HeartbeatInterval: hb, PhiThreshold: phi,
			Logf: func(format string, args ...any) { t.Logf("detect: "+format, args...) },
		}
		if relayed {
			dm := transport.NewDemux(w.nw, r)
			opts.Net = dm.Plane(transport.WireKindDetect)
			rl := transport.NewRelay(dm)
			opts.Relay = rl
			dm.Start()
			rl.Start()
			closers = append(closers, rl.Close, dm.Close)
		}
		d, err := New(opts)
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		w.dets[r] = d
		d.Start()
	}
	t.Cleanup(func() {
		for _, d := range w.dets {
			if d != nil {
				d.Close()
			}
		}
		for _, c := range closers {
			c()
		}
	})
	return w
}

func TestGroupedCodecRoundtrips(t *testing.T) {
	e, groups, live, err := decodeReport(encodeReport(3, []int{2, 3, 0}, []int{4, 5}))
	if err != nil || e != 3 || !equalInts(groups, []int{2, 3, 0}) || !equalInts(live, []int{4, 5}) {
		t.Fatalf("report roundtrip: epoch=%d groups=%v live=%v err=%v", e, groups, live, err)
	}
	e, s, origin, hops, dead, members, err := decodeProposeRly(encodeProposeRly(4, 9, 2, 1, []int{7}, []int{0, 1, 2}))
	if err != nil || e != 4 || s != 9 || origin != 2 || hops != 1 ||
		!equalInts(dead, []int{7}) || !equalInts(members, []int{0, 1, 2}) {
		t.Fatalf("propose-rly roundtrip: epoch=%d seq=%d origin=%d hops=%d dead=%v members=%v err=%v",
			e, s, origin, hops, dead, members, err)
	}
	var ranks []int
	e, s, ranks, err = decodeAckAgg(encodeAckAgg(4, 9, []int{3, 4, 5}))
	if err != nil || e != 4 || s != 9 || !equalInts(ranks, []int{3, 4, 5}) {
		t.Fatalf("ack-agg roundtrip: epoch=%d seq=%d ranks=%v err=%v", e, s, ranks, err)
	}
	e, dead, members, err = decodeCommitRly(encodeCommitRly(5, []int{2}, []int{0, 1, 3}))
	if err != nil || e != 5 || !equalInts(dead, []int{2}) || !equalInts(members, []int{0, 1, 3}) {
		t.Fatalf("commit-rly roundtrip: epoch=%d dead=%v members=%v err=%v", e, dead, members, err)
	}
}

// TestGroupedFailureFreeStaysAtEpochOne: a grouped world with every rank
// alive commits no epochs and fences nobody — the report plumbing must be
// as quiet as the flat detector's heartbeats.
func TestGroupedFailureFreeStaysAtEpochOne(t *testing.T) {
	hb, phi := tuned(5*time.Millisecond, 8)
	w := newGroupedWorld(t, 9, 3, hb, phi, false)
	time.Sleep(80 * hb)
	for r, d := range w.dets {
		if e := d.Epoch(); e != 1 {
			t.Errorf("rank %d epoch = %d, want 1", r, e)
		}
		if d.Fenced() {
			t.Errorf("rank %d fenced in a failure-free grouped world", r)
		}
		if s := d.Suspected(); len(s) != 0 {
			t.Errorf("rank %d suspects %v", r, s)
		}
	}
}

// TestGroupedFailureDetection: one death in a 9-rank, 3-group world is
// agreed by every survivor — the intra-group ring detects it, the delegate
// relays carry the agreement.
func TestGroupedFailureDetection(t *testing.T) {
	hb, phi := tuned(5*time.Millisecond, 8)
	w := newGroupedWorld(t, 9, 3, hb, phi, false)
	time.Sleep(20 * hb)
	w.kill(4)
	survivors := []int{0, 1, 2, 3, 5, 6, 7, 8}
	w.awaitEpoch(t, survivors, 2, 30*time.Second)
	for _, r := range survivors {
		if dead := w.dets[r].Dead(); !equalInts(dead, []int{4}) {
			t.Errorf("rank %d dead = %v, want [4]", r, dead)
		}
	}
}

// TestGroupedWholeGroupLoss: a correlated whole-group failure (the fault
// the cross-group parity shard exists for) is detected by the OTHER
// groups' delegates via report staleness — no surviving rank monitored the
// dead group's interior — and committed while quorum holds (6 of 9).
func TestGroupedWholeGroupLoss(t *testing.T) {
	hb, phi := tuned(5*time.Millisecond, 8)
	w := newGroupedWorld(t, 9, 3, hb, phi, false)
	time.Sleep(20 * hb)
	for _, r := range []int{3, 4, 5} {
		w.kill(r)
	}
	survivors := []int{0, 1, 2, 6, 7, 8}
	w.awaitEpoch(t, survivors, 2, 30*time.Second)
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := true
		for _, r := range survivors {
			if !equalInts(w.dets[r].Dead(), []int{3, 4, 5}) {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			for _, r := range survivors {
				t.Logf("rank %d: epoch=%d dead=%v", r, w.dets[r].Epoch(), w.dets[r].Dead())
			}
			t.Fatal("survivors never agreed on the whole dead group")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, r := range survivors {
		if w.dets[r].Fenced() {
			t.Errorf("rank %d fenced after a committed whole-group loss", r)
		}
	}
}

// TestGroupedDelegateDeathDuringAgree: the delegate relaying an in-flight
// agreement dies mid-round. The per-tick retransmission recomputes runtime
// delegates, so the group's next member takes over the relay and the
// agreement still converges.
func TestGroupedDelegateDeathDuringAgree(t *testing.T) {
	hb, phi := tuned(5*time.Millisecond, 8)
	w := newGroupedWorld(t, 12, 3, hb, phi, false)
	time.Sleep(20 * hb)
	// Group 2 is {6,7,8}; 6 is its designated delegate. Kill an interior
	// member first, then the delegate while the agreement is in flight.
	w.kill(7)
	time.Sleep(4 * hb)
	w.kill(6)
	survivors := []int{0, 1, 2, 3, 4, 5, 8, 9, 10, 11}
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := true
		for _, r := range survivors {
			dead := w.dets[r].Dead()
			if !equalInts(dead, []int{6, 7}) {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			for _, r := range survivors {
				t.Logf("rank %d: epoch=%d dead=%v suspected=%v",
					r, w.dets[r].Epoch(), w.dets[r].Dead(), w.dets[r].Suspected())
			}
			t.Fatal("agreement never converged on {6,7} after the delegate died mid-round")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGroupedDetectionWithRelay: the full two-level wiring — demux, relay
// router, grouped detector — detects and agrees a failure, with the
// detector's cross-group unicasts routed through delegates.
func TestGroupedDetectionWithRelay(t *testing.T) {
	hb, phi := tuned(5*time.Millisecond, 8)
	w := newGroupedWorld(t, 9, 3, hb, phi, true)
	time.Sleep(20 * hb)
	w.kill(4)
	survivors := []int{0, 1, 2, 3, 5, 6, 7, 8}
	w.awaitEpoch(t, survivors, 2, 30*time.Second)
	for _, r := range survivors {
		if dead := w.dets[r].Dead(); !equalInts(dead, []int{4}) {
			t.Errorf("rank %d dead = %v, want [4]", r, dead)
		}
	}
}

// TestGroupedGossipFanOutBounded is the satellite message-bound regression:
// in a grouped world each suspicion gossips to at most (g-1) + (ng-1)
// targets — the live group plus the other delegates — and every target is
// inside that set, while the flat detector gossips to all n-1. The O(g +
// world/g) fan-out is the load bound the two-level refactor exists for.
func TestGroupedGossipFanOutBounded(t *testing.T) {
	const n, g = 64, 8
	nw := transport.NewNetwork(n)
	defer nw.Shutdown()
	d, err := New(Options{Self: 9, Ranks: n, Net: nw, GroupSize: g})
	if err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	targets := d.gossipTargetsLocked(nil)
	topo := d.topo
	d.mu.Unlock()
	bound := (g - 1) + (n/g - 1)
	if len(targets) > bound {
		t.Fatalf("grouped gossip fan-out %d exceeds (g-1)+(ng-1) = %d", len(targets), bound)
	}
	allowed := make(map[int]bool)
	for _, r := range topo.GroupMembers(topo.GroupOf(9)) {
		allowed[r] = true
	}
	for gid := 0; gid < topo.NumGroups(); gid++ {
		allowed[topo.Delegate(gid)] = true
	}
	for _, tr := range targets {
		if !allowed[tr] {
			t.Errorf("gossip target %d is neither in rank 9's group nor a delegate", tr)
		}
	}

	flat, err := New(Options{Self: 9, Ranks: n, Net: nw})
	if err != nil {
		t.Fatal(err)
	}
	flat.mu.Lock()
	flatTargets := flat.liveExceptLocked(nil)
	flat.mu.Unlock()
	if len(flatTargets) != n-1 {
		t.Fatalf("flat gossip fan-out = %d, want %d", len(flatTargets), n-1)
	}
	if len(targets) >= len(flatTargets)/3 {
		t.Fatalf("grouped fan-out %d is not materially below flat %d", len(targets), len(flatTargets))
	}
}

// TestGroupedSteadyStateMessageBound pins the O(g) steady-state send rate:
// a grouped rank's per-tick contact surface (heartbeat predecessors + its
// lease-ping pool) stays within its own group regardless of world size.
func TestGroupedSteadyStateMessageBound(t *testing.T) {
	const n, g = 128, 8
	nw := transport.NewNetwork(n)
	defer nw.Shutdown()
	d, err := New(Options{Self: 17, Ranks: n, Net: nw, GroupSize: g})
	if err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	own := d.topo.GroupOf(17)
	inGroup := make(map[int]bool)
	for _, r := range d.topo.GroupMembers(own) {
		inGroup[r] = true
	}
	if len(inGroup) != g {
		t.Fatalf("group size = %d, want %d", len(inGroup), g)
	}
	hb := d.hbTargetsLocked()
	if len(hb) != 2 {
		t.Fatalf("heartbeat targets = %v, want 2", hb)
	}
	for _, r := range hb {
		if !inGroup[r] {
			t.Errorf("heartbeat target %d outside own group", r)
		}
	}
	for _, r := range d.monitorWantedLocked() {
		if !inGroup[r] {
			t.Errorf("monitored rank %d outside own group", r)
		}
	}
}

// TestGroupedTopologyAccessor: the detector exposes its current topology,
// and re-derives it when an epoch changes the membership.
func TestGroupedTopologyAccessor(t *testing.T) {
	hb, phi := tuned(5*time.Millisecond, 8)
	w := newGroupedWorld(t, 6, 3, hb, phi, false)
	topo := w.dets[0].Topology()
	if topo.NumGroups() != 2 || topo.GroupSize() != 3 {
		t.Fatalf("boot topology = %s, want 2 groups of 3", topo.String())
	}
	w.kill(5)
	w.awaitEpoch(t, []int{0, 1, 2, 3, 4}, 2, 30*time.Second)
	topo = w.dets[0].Topology()
	if got := topo.Epoch(); got < 2 {
		t.Fatalf("topology epoch after commit = %d, want >= 2", got)
	}
	if !member.NewTopology(w.dets[0].Members(), 3).SameGroups(topo) {
		t.Fatalf("topology out of sync with membership: %s", topo.String())
	}
}
