package mpi

import "fmt"

type reqKind uint8

const (
	reqSend reqKind = iota
	reqRecv
)

// Request represents an in-flight non-blocking operation. Send requests
// complete immediately (sends are eager); receive requests complete when a
// matching message is dispatched to them.
type Request struct {
	proc *Proc
	kind reqKind
	done bool

	// Receive parameters.
	buf   []byte
	count int
	dt    *Datatype
	src   int // comm rank or AnySource
	tag   int // or AnyTag
	comm  *Comm
	ctx   uint32

	status Status
	err    error
}

// Done reports whether the request has completed. It does not progress the
// engine; use Test for that.
func (r *Request) Done() bool { return r.done }

// IsRecv reports whether this is a receive request.
func (r *Request) IsRecv() bool { return r.kind == reqRecv }

func (r *Request) matches(env *Envelope) bool {
	if r.done || r.kind != reqRecv {
		return false
	}
	if env.Ctx != r.ctx {
		return false
	}
	commSrc, ok := r.comm.worldToComm(env.SrcWorld)
	if !ok {
		return false
	}
	if r.src != AnySource && r.src != commSrc {
		return false
	}
	if r.tag != AnyTag && r.tag != env.Tag {
		return false
	}
	return true
}

// complete unpacks the payload into the request's buffer and records status.
func (r *Request) complete(env *Envelope) {
	r.done = true
	commSrc, _ := r.comm.worldToComm(env.SrcWorld)
	r.status = Status{Source: commSrc, Tag: env.Tag, Bytes: len(env.Data)}
	r.proc.stats.Recvs++
	r.proc.stats.BytesRecvd += uint64(len(env.Data))

	maxBytes := r.count * r.dt.Size()
	if len(env.Data) > maxBytes {
		r.err = fmt.Errorf("%w: %d bytes into %d-byte buffer", ErrTruncate, len(env.Data), maxBytes)
		return
	}
	if r.dt.Size() == 0 {
		return
	}
	n := len(env.Data) / r.dt.Size()
	if _, err := r.dt.Unpack(env.Data, r.buf, n); err != nil {
		r.err = err
	}
}

// Isend starts a non-blocking send. Because sends are eager, the returned
// request is already complete; it exists so code written against the
// non-blocking API (and the checkpoint layer's request table) works
// uniformly.
func (c *Comm) Isend(buf []byte, count int, dt *Datatype, dest, tag int) (*Request, error) {
	if err := checkUserTag(tag); err != nil {
		return nil, err
	}
	if err := c.sendInternal(buf, count, dt, dest, tag, c.ctx); err != nil {
		return nil, err
	}
	return &Request{proc: c.proc, kind: reqSend, done: true}, nil
}

// Irecv posts a non-blocking receive. The buffer must not be read until the
// request completes (via Wait or a successful Test).
func (c *Comm) Irecv(buf []byte, count int, dt *Datatype, src, tag int) (*Request, error) {
	if count < 0 {
		return nil, fmt.Errorf("%w: count %d", ErrInvalid, count)
	}
	if src != AnySource {
		if _, err := c.WorldRank(src); err != nil {
			return nil, err
		}
	}
	req := &Request{
		proc: c.proc, kind: reqRecv,
		buf: buf, count: count, dt: dt,
		src: src, tag: tag, comm: c, ctx: c.ctx,
	}
	if env := c.proc.takeUnexpected(req); env != nil {
		req.complete(env)
	} else {
		c.proc.posted = append(c.proc.posted, req)
	}
	return req, nil
}

// Wait blocks until the request completes and returns its status.
func (r *Request) Wait() (Status, error) {
	for !r.done {
		if _, err := r.proc.drainOne(true); err != nil {
			return Status{}, err
		}
	}
	return r.status, r.err
}

// Test progresses the engine without blocking and reports whether the
// request has completed. When it has, the status is valid.
func (r *Request) Test() (st Status, ok bool, err error) {
	for !r.done {
		got, err := r.proc.drainOne(false)
		if err != nil {
			return Status{}, false, err
		}
		if !got {
			return Status{}, false, nil
		}
	}
	return r.status, true, r.err
}

// Cancel removes a pending receive request from the posted queue. Completed
// requests are unaffected. It mirrors MPI_Cancel for receives.
func (r *Request) Cancel() {
	if r.done || r.kind != reqRecv {
		return
	}
	posted := r.proc.posted
	for i, req := range posted {
		if req == r {
			r.proc.posted = append(posted[:i], posted[i+1:]...)
			return
		}
	}
}

// Waitall blocks until every request has completed. The first error is
// returned, but all requests are progressed regardless.
func Waitall(reqs []*Request) ([]Status, error) {
	sts := make([]Status, len(reqs))
	var first error
	for i, r := range reqs {
		st, err := r.Wait()
		sts[i] = st
		if err != nil && first == nil {
			first = err
		}
	}
	return sts, first
}

// Waitany blocks until at least one request completes and returns its index
// and status. Completed requests that were already consumed may be passed;
// indices of nil requests are skipped. If all requests are nil, it returns
// index -1.
func Waitany(reqs []*Request) (int, Status, error) {
	var proc *Proc
	for _, r := range reqs {
		if r != nil {
			proc = r.proc
			break
		}
	}
	if proc == nil {
		return -1, Status{}, nil
	}
	for {
		for i, r := range reqs {
			if r != nil && r.done {
				return i, r.status, r.err
			}
		}
		if _, err := proc.drainOne(true); err != nil {
			return -1, Status{}, err
		}
	}
}

// Waitsome blocks until at least one request completes, then returns the
// indices and statuses of all currently completed requests.
func Waitsome(reqs []*Request) ([]int, []Status, error) {
	idx, st, err := Waitany(reqs)
	if err != nil {
		return nil, nil, err
	}
	if idx < 0 {
		return nil, nil, nil
	}
	indices := []int{idx}
	statuses := []Status{st}
	for i, r := range reqs {
		if i != idx && r != nil && r.done {
			indices = append(indices, i)
			statuses = append(statuses, r.status)
		}
	}
	return indices, statuses, nil
}

// Testall progresses the engine and reports whether all requests have
// completed.
func Testall(reqs []*Request) (bool, error) {
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, ok, err := r.Test(); err != nil {
			return false, err
		} else if !ok {
			return false, nil
		}
	}
	return true, nil
}
