package stable

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"c3/internal/transport"
)

// distWorld builds n DistStores sharing one in-memory network, the
// single-process stand-in for n processes on a TCP mesh.
func distWorld(t *testing.T, n int, opts ...DistOption) []*DistStore {
	t.Helper()
	nw := transport.NewNetwork(n)
	stores := make([]*DistStore, n)
	for r := 0; r < n; r++ {
		stores[r] = NewDistStore(r, n, &sharedNet{Interconnect: nw}, opts...)
	}
	t.Cleanup(func() {
		nw.Shutdown()
		for _, s := range stores {
			s.wg.Wait()
		}
	})
	return stores
}

// sharedNet lets n DistStores share one in-memory Network: Shutdown is
// deferred to the test cleanup so closing one store does not sever the
// others.
type sharedNet struct{ transport.Interconnect }

func (s *sharedNet) Shutdown() {}

func writeDistCommitted(t *testing.T, s *DistStore, rank, version int, sections map[string][]byte) {
	t.Helper()
	ck, err := s.Begin(rank, version)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	for name, data := range sections {
		if err := ck.WriteSection(name, data); err != nil {
			t.Fatalf("WriteSection: %v", err)
		}
	}
	if err := ck.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func TestDistStoreCommitAndLocalRead(t *testing.T) {
	stores := distWorld(t, 4)
	sections := map[string][]byte{"app": []byte("state-1"), "mpi": []byte("tables")}
	writeDistCommitted(t, stores[1], 1, 1, sections)

	v, ok, err := stores[1].LastCommitted(1)
	if err != nil || !ok || v != 1 {
		t.Fatalf("LastCommitted = %d,%v,%v; want 1,true,nil", v, ok, err)
	}
	snap, err := stores[1].Open(1, 1)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer snap.Close()
	got, err := snap.ReadSection("app")
	if err != nil || !bytes.Equal(got, sections["app"]) {
		t.Fatalf("ReadSection = %q, %v", got, err)
	}
	if r := stores[1].Reassemblies(); r != 0 {
		t.Fatalf("local read counted %d reassemblies", r)
	}
}

// TestDistStoreRecoversAfterRestart models the real lifecycle on one
// network: the owner's replacement is a brand-new DistStore with empty
// memory, while peers retain theirs.
func TestDistStoreRecoversAfterRestart(t *testing.T) {
	nw := transport.NewNetwork(4)
	shared := &sharedNet{Interconnect: nw}
	stores := make([]*DistStore, 4)
	for r := 0; r < 4; r++ {
		stores[r] = NewDistStore(r, 4, shared)
	}
	defer func() {
		nw.Shutdown()
		for _, s := range stores {
			s.wg.Wait()
		}
	}()

	sections := map[string][]byte{"app": []byte("the quick brown fox"), "late": {1, 2, 3}}
	writeDistCommitted(t, stores[1], 1, 1, sections)

	// The owner's memory is wiped in place (the in-memory analogue of the
	// process dying and a replacement starting empty: same daemon, no
	// state). Endpoint queues can't be swapped mid-test, so wipe the maps.
	s1 := stores[1]
	s1.mu.Lock()
	s1.node = newReplNode()
	s1.mu.Unlock()

	v, ok, err := s1.LastCommitted(1)
	if err != nil {
		t.Fatalf("LastCommitted: %v", err)
	}
	if !ok || v != 1 {
		t.Fatalf("LastCommitted = %d,%v; want 1,true (from peers)", v, ok)
	}
	snap, err := s1.Open(1, 1)
	if err != nil {
		t.Fatalf("Open after wipe: %v", err)
	}
	defer snap.Close()
	got, err := snap.ReadSection("app")
	if err != nil || !bytes.Equal(got, sections["app"]) {
		t.Fatalf("reassembled section = %q, %v", got, err)
	}
	if r := s1.Reassemblies(); r != 1 {
		t.Fatalf("Reassemblies = %d, want 1", r)
	}
}

func TestDistStoreTruncatePrunesPeers(t *testing.T) {
	stores := distWorld(t, 4)
	writeDistCommitted(t, stores[2], 2, 1, map[string][]byte{"a": {1}})
	writeDistCommitted(t, stores[2], 2, 2, map[string][]byte{"a": {2}})
	writeDistCommitted(t, stores[2], 2, 3, map[string][]byte{"a": {3}})

	if err := stores[2].Truncate(2, 1); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	// Prune messages are async; wait for the peers to apply them.
	deadline := time.Now().Add(2 * time.Second)
	for {
		stores[3].mu.Lock()
		_, has2 := stores[3].node.commits[replCommitKey{owner: 2, version: 2}]
		_, has3 := stores[3].node.commits[replCommitKey{owner: 2, version: 3}]
		stores[3].mu.Unlock()
		if !has2 && !has3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("peers did not apply the truncate")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// After wiping the owner, only version 1 must be recoverable.
	s2 := stores[2]
	s2.mu.Lock()
	s2.node = newReplNode()
	s2.mu.Unlock()
	v, ok, err := s2.LastCommitted(2)
	if err != nil || !ok || v != 1 {
		t.Fatalf("LastCommitted after truncate = %d,%v,%v; want 1,true,nil", v, ok, err)
	}
}

func TestDistStoreCommitExcusesDeadNeighbor(t *testing.T) {
	stores := distWorld(t, 3, WithAckTimeout(200*time.Millisecond))
	// Kill rank 1's endpoint so its daemon never acks: rank 0's commit
	// replicates to ranks 1 and 2 and must not block forever.
	stores[1].net.Kill(1)

	start := time.Now()
	writeDistCommitted(t, stores[0], 0, 1, map[string][]byte{"a": {9}})
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("commit blocked %v despite ack timeout", d)
	}
	v, ok, _ := stores[0].LastCommitted(0)
	if !ok || v != 1 {
		t.Fatalf("LastCommitted = %d,%v after excused commit", v, ok)
	}
}

// TestDistStoreEpochReleasesBlockedCommit: a commit stuck waiting for a
// dead neighbor's acknowledgment must be released the moment the recovery
// epoch advances (the detector's agreement), long before the ack timeout.
func TestDistStoreEpochReleasesBlockedCommit(t *testing.T) {
	stores := distWorld(t, 3, WithAckTimeout(time.Hour))
	stores[1].net.Kill(1) // rank 1 is dead: it will never ack

	released := make(chan time.Duration, 1)
	start := time.Now()
	go func() {
		writeDistCommitted(t, stores[0], 0, 1, map[string][]byte{"a": {7}})
		released <- time.Since(start)
	}()
	time.Sleep(100 * time.Millisecond)
	select {
	case d := <-released:
		t.Fatalf("commit returned after %v without an epoch advance (rank 2 alone cannot satisfy it)", d)
	default:
	}
	stores[0].AdvanceEpoch(2)
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("AdvanceEpoch did not release the blocked commit")
	}
	if got := stores[0].Epoch(); got != 2 {
		t.Fatalf("Epoch = %d, want 2", got)
	}
	// The local copy still committed (recovery can use it).
	v, ok, _ := stores[0].LastCommitted(0)
	if !ok || v != 1 {
		t.Fatalf("LastCommitted = %d,%v after epoch release", v, ok)
	}
	// A commit started under the NEW epoch blocks again (one neighbor is
	// still dead and the timeout is an hour) until the next advance — the
	// release is per-epoch, not a permanent interrupt.
	released2 := make(chan struct{})
	go func() {
		writeDistCommitted(t, stores[0], 0, 2, map[string][]byte{"a": {8}})
		close(released2)
	}()
	time.Sleep(100 * time.Millisecond)
	select {
	case <-released2:
		t.Fatal("new-epoch commit returned without waiting for acks")
	default:
	}
	stores[0].AdvanceEpoch(3)
	select {
	case <-released2:
	case <-time.After(5 * time.Second):
		t.Fatal("second AdvanceEpoch did not release the commit")
	}
}

// TestDistStoreAdvanceEpochMonotonic: stale (lower) epochs are ignored.
func TestDistStoreAdvanceEpochMonotonic(t *testing.T) {
	stores := distWorld(t, 2)
	stores[0].AdvanceEpoch(5)
	stores[0].AdvanceEpoch(3)
	if got := stores[0].Epoch(); got != 5 {
		t.Fatalf("Epoch = %d after stale advance, want 5", got)
	}
}

// TestDistStoreCommitHook: the hook fires once per committed version with
// the version number.
func TestDistStoreCommitHook(t *testing.T) {
	var mu sync.Mutex
	var got []int
	hook := func(v int) {
		mu.Lock()
		got = append(got, v)
		mu.Unlock()
	}
	nw := transport.NewNetwork(3)
	stores := make([]*DistStore, 3)
	for r := 0; r < 3; r++ {
		opts := []DistOption{}
		if r == 0 {
			opts = append(opts, WithCommitHook(hook))
		}
		stores[r] = NewDistStore(r, 3, &sharedNet{Interconnect: nw}, opts...)
	}
	t.Cleanup(func() {
		nw.Shutdown()
		for _, s := range stores {
			s.wg.Wait()
		}
	})
	writeDistCommitted(t, stores[0], 0, 1, map[string][]byte{"a": {1}})
	writeDistCommitted(t, stores[0], 0, 2, map[string][]byte{"a": {2}})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("commit hook saw %v, want [1 2]", got)
	}
}

// TestDistStoreQueryRetries: reassembly still works with a short query
// timeout when retry sweeps are configured — the timeout can expire on a
// slow peer without failing the fragment for good.
func TestDistStoreQueryRetries(t *testing.T) {
	stores := distWorld(t, 4,
		WithQueryTimeout(50*time.Millisecond), WithQueryRetries(3))
	writeDistCommitted(t, stores[1], 1, 1, map[string][]byte{"app": []byte("retry me")})

	// Wipe the owner, as in the restart test.
	s1 := stores[1]
	s1.mu.Lock()
	s1.node = newReplNode()
	s1.mu.Unlock()

	snap, err := s1.Open(1, 1)
	if err != nil {
		t.Fatalf("Open with retries: %v", err)
	}
	defer snap.Close()
	if got, err := snap.ReadSection("app"); err != nil || string(got) != "retry me" {
		t.Fatalf("ReadSection = %q, %v", got, err)
	}
}

// TestDistStoreRSCodecRecoversAfterDualWipe: the multi-process store under
// rs k=3,m=2 — the owner AND one shard holder lose their memory (the
// in-memory analogue of two simultaneous SIGKILLs) and the restarted owner
// still reassembles its line over the query protocol.
func TestDistStoreRSCodecRecoversAfterDualWipe(t *testing.T) {
	rs, err := NewCodec("rs", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	stores := distWorld(t, 6, WithDistCodec(rs))
	payload := make([]byte, 10_000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	writeDistCommitted(t, stores[1], 1, 1, map[string][]byte{"app": payload})

	// The owner keeps no full local copy under an erasure codec.
	stores[1].mu.Lock()
	if len(stores[1].node.local) != 0 {
		stores[1].mu.Unlock()
		t.Fatal("erasure-coded commit left a full local copy")
	}
	stores[1].mu.Unlock()

	// Wipe the owner and one shard holder (two simultaneous deaths).
	for _, r := range []int{1, 3} {
		stores[r].mu.Lock()
		stores[r].node = newReplNode()
		stores[r].mu.Unlock()
	}

	v, ok, err := stores[1].LastCommitted(1)
	if err != nil || !ok || v != 1 {
		t.Fatalf("LastCommitted after dual wipe = %d,%v,%v; want 1,true,nil", v, ok, err)
	}
	snap, err := stores[1].Open(1, 1)
	if err != nil {
		t.Fatalf("Open after dual wipe: %v", err)
	}
	defer snap.Close()
	got, err := snap.ReadSection("app")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("reassembled %d bytes, err %v", len(got), err)
	}
	if stores[1].Reassemblies() != 1 {
		t.Fatalf("Reassemblies = %d", stores[1].Reassemblies())
	}
}

// TestDistStoreCodecStoredBytes: per-process stored bytes under rs stay a
// fraction of the dup footprint for the same checkpoints.
func TestDistStoreCodecStoredBytes(t *testing.T) {
	payload := make([]byte, 32*1024)
	measure := func(opts ...DistOption) int64 {
		stores := distWorld(t, 6, opts...)
		for r := 0; r < 6; r++ {
			writeDistCommitted(t, stores[r], r, 1, map[string][]byte{"app": payload})
		}
		var total int64
		for _, s := range stores {
			total += s.StoredBytes()
		}
		return total
	}
	dup := measure()
	rs, err := NewCodec("rs", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	coded := measure(WithDistCodec(rs))
	ratio := float64(coded) / float64(dup)
	t.Logf("dist stored bytes: dup=%d rs=%d ratio=%.3f", dup, coded, ratio)
	if ratio > 0.6 {
		t.Fatalf("rs/dup stored ratio %.3f > 0.6", ratio)
	}
}

// TestDistStoreCodedCommitFailsWithoutQuorum: under an erasure codec the
// ack-timeout excusal has a floor — when the silent holders account for
// more shards than the parity budget, Commit must fail instead of
// reporting a line that exists nowhere (there is no local copy to fall
// back on, and success would let the protocol retire the previous line).
func TestDistStoreCodedCommitFailsWithoutQuorum(t *testing.T) {
	rs, err := NewCodec("rs", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	stores := distWorld(t, 5, WithDistCodec(rs), WithAckTimeout(200*time.Millisecond), WithQueryTimeout(200*time.Millisecond))
	// Rank 0's four shards land on successors 1..4; kill three of them.
	for _, r := range []int{1, 2, 3} {
		stores[r].net.Kill(r)
	}
	ck, err := stores[0].Begin(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.WriteSection("app", []byte("needs two shards")); err != nil {
		t.Fatal(err)
	}
	if err := ck.Commit(); err == nil {
		t.Fatal("coded commit with 3 of 4 shard holders dead reported success")
	}
	if _, ok, _ := stores[0].LastCommitted(0); ok {
		t.Fatal("failed commit visible to LastCommitted")
	}

	// Losing exactly the parity budget is excused: the line still exists.
	stores2 := distWorld(t, 5, WithDistCodec(rs), WithAckTimeout(200*time.Millisecond), WithQueryTimeout(200*time.Millisecond))
	for _, r := range []int{1, 2} {
		stores2[r].net.Kill(r)
	}
	writeDistCommitted(t, stores2[0], 0, 1, map[string][]byte{"app": []byte("two shards suffice")})
	if v, ok, _ := stores2[0].LastCommitted(0); !ok || v != 1 {
		t.Fatalf("LastCommitted = %d,%v after excusable losses", v, ok)
	}
}
