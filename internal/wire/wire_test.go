package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.U8(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xDEADBEEF)
	w.U64(1 << 63)
	w.I64(-42)
	w.Int(-7)
	w.F64(math.Pi)
	if w.Err() != nil {
		t.Fatal(w.Err())
	}

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0xAB {
		t.Fatalf("u8 = %x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bools")
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Fatalf("u32 = %x", got)
	}
	if got := r.U64(); got != 1<<63 {
		t.Fatalf("u64 = %x", got)
	}
	if got := r.I64(); got != -42 {
		t.Fatalf("i64 = %d", got)
	}
	if got := r.Int(); got != -7 {
		t.Fatalf("int = %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Fatalf("f64 = %v", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining %d", r.Remaining())
	}
}

func TestSliceRoundTripProperty(t *testing.T) {
	f := func(bs []byte, is []int64, fs []float64, s string) bool {
		w := NewWriter(0)
		w.Bytes32(bs)
		w.I64s(is)
		w.F64s(fs)
		w.String(s)
		us := make([]uint64, len(is))
		for i, v := range is {
			us[i] = uint64(v)
		}
		w.U64s(us)
		ints := make([]int, len(is))
		for i, v := range is {
			ints[i] = int(v)
		}
		w.Ints(ints)

		r := NewReader(w.Bytes())
		if !bytes.Equal(r.Bytes32(), bs) && len(bs) > 0 {
			return false
		}
		gotI := r.I64s()
		if len(gotI) != len(is) {
			return false
		}
		for i := range is {
			if gotI[i] != is[i] {
				return false
			}
		}
		gotF := r.F64s()
		if len(gotF) != len(fs) {
			return false
		}
		for i := range fs {
			if gotF[i] != fs[i] && !(math.IsNaN(gotF[i]) && math.IsNaN(fs[i])) {
				return false
			}
		}
		if r.String() != s {
			return false
		}
		gotU := r.U64s()
		for i := range us {
			if gotU[i] != us[i] {
				return false
			}
		}
		gotInts := r.Ints()
		for i := range ints {
			if gotInts[i] != ints[i] {
				return false
			}
		}
		return r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestShortBufferDetected(t *testing.T) {
	w := NewWriter(16)
	w.U64(42)
	r := NewReader(w.Bytes()[:4])
	_ = r.U64()
	if r.Err() == nil {
		t.Fatal("short read not detected")
	}
	// Sticky: further reads keep failing.
	_ = r.U32()
	if r.Err() == nil {
		t.Fatal("error not sticky")
	}
}

func TestCorruptLengthPrefix(t *testing.T) {
	w := NewWriter(16)
	w.U32(0xFFFFFFF0) // absurd length prefix
	r := NewReader(w.Bytes())
	if got := r.Bytes32(); got != nil {
		t.Fatalf("corrupt prefix yielded %d bytes", len(got))
	}
	if r.Err() == nil {
		t.Fatal("corrupt length not detected")
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.U64(1)
	if w.Len() != 8 {
		t.Fatalf("len %d", w.Len())
	}
	w.Reset()
	if w.Len() != 0 || w.Err() != nil {
		t.Fatal("reset failed")
	}
}
