package stable

import (
	"bytes"
	"fmt"
	"testing"

	"c3/internal/member"
)

// repartitionCodecs is the codec-geometry sweep of the elastic re-partition
// matrix: the default dup scheme plus one representative of every erasure
// family/parity budget the store supports.
func repartitionCodecs(t *testing.T) []Codec {
	t.Helper()
	specs := []struct {
		name string
		k, m int
	}{
		{"dup", 2, 0},
		{"xor", 2, 1},
		{"xor", 4, 1},
		{"rs", 2, 2},
		{"rs", 4, 2},
	}
	codecs := make([]Codec, 0, len(specs))
	for _, sp := range specs {
		c, err := NewCodec(sp.name, sp.k, sp.m)
		if err != nil {
			t.Fatalf("codec %s(%d,%d): %v", sp.name, sp.k, sp.m, err)
		}
		codecs = append(codecs, c)
	}
	return codecs
}

// lossCombos enumerates every subset of at most m shard indexes out of
// shards — the loss patterns a codec with m parity shards must tolerate.
func lossCombos(shards, m int) [][]int {
	combos := [][]int{nil}
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		for i := start; i < shards; i++ {
			next := append(append([]int(nil), cur...), i)
			combos = append(combos, next)
			if len(next) < m {
				rec(i+1, next)
			}
		}
	}
	if m > 0 {
		rec(0, nil)
	}
	return combos
}

// dropLine removes the owner's local copy and every node's copy of the
// given shard indexes for (owner, version), returning an undo closure.
func dropLine(s *ReplicatedStore, owner, version int, lost []int) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	savedLocal := s.nodes[owner].local[version]
	delete(s.nodes[owner].local, version)
	type stash struct {
		node int
		key  replFragKey
		frag []byte
	}
	var saved []stash
	for _, idx := range lost {
		key := replFragKey{owner: owner, version: version, idx: idx}
		for r, node := range s.nodes {
			if frag, ok := node.frags[key]; ok {
				saved = append(saved, stash{node: r, key: key, frag: frag})
				delete(node.frags, key)
			}
		}
	}
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		// Open re-installs a reassembled local copy; discard it so the next
		// loss pattern exercises reassembly again, then restore the stash.
		delete(s.nodes[owner].local, version)
		if savedLocal != nil {
			s.nodes[owner].local[version] = savedLocal
		}
		for _, st := range saved {
			s.nodes[st.node].frags[st.key] = st.frag
		}
	}
}

// assertPlacement checks that every shard of (owner, version) sits on the
// holder the current member ring assigns it.
func assertPlacement(t *testing.T, s *ReplicatedStore, m member.Set, owner, version int) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := func() (replCommitRec, bool) {
		for _, node := range s.nodes {
			if rec, ok := node.commits[replCommitKey{owner: owner, version: version}]; ok {
				return rec, true
			}
		}
		return replCommitRec{}, false
	}()
	if !ok {
		t.Fatalf("owner %d version %d: no commit marker after re-partition", owner, version)
	}
	codec, err := rec.codecOf()
	if err != nil {
		t.Fatalf("owner %d: marker codec: %v", owner, err)
	}
	sendPlan, holders, _, _ := commitPlan(codec, owner, rec.frags, member.NewTopology(m, 0))
	for _, h := range holders {
		if _, ok := s.nodes[h].commits[replCommitKey{owner: owner, version: version}]; !ok {
			t.Fatalf("owner %d: holder %d missing commit marker under %s", owner, h, m)
		}
		for _, idx := range sendPlan[h] {
			key := replFragKey{owner: owner, version: version, idx: idx}
			if frag, ok := s.nodes[h].frags[key]; !ok || !rec.shardValid(idx, frag) {
				t.Fatalf("owner %d: holder %d missing shard %d under %s", owner, h, idx, m)
			}
		}
	}
}

// TestRepartitionMatrix is the exhaustive elastic re-placement sweep: for
// every world size N=3..8, every grow/shrink of 1-2 slots, and every codec
// geometry, each member commits a line under the old ring, the membership
// changes, and every surviving owner's line must (a) sit exactly where the
// new ring places it and (b) stay reconstructible under every loss pattern
// of at most m shards.
func TestRepartitionMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive matrix; skipped in -short")
	}
	for n := 3; n <= 8; n++ {
		for _, delta := range []int{+1, +2, -1, -2} {
			if n+delta < 2 {
				continue // a one-member world has no replication ring
			}
			for _, codec := range repartitionCodecs(t) {
				name := fmt.Sprintf("n=%d/delta=%+d/%s", n, delta, codecName(codec))
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					runRepartition(t, n, delta, codec)
				})
			}
		}
	}
}

func codecName(c Codec) string {
	return fmt.Sprintf("codec%d-k%d-m%d", c.ID(), c.DataShards(), c.ParityShards())
}

func runRepartition(t *testing.T, n, delta int, codec Codec) {
	capacity := n + 2
	s := NewReplicatedStore(capacity, WithCodec(codec))
	defer s.Close()
	boot := member.New(1, member.Launch(n).Members())
	s.SetMembership(boot)

	sections := func(owner int) map[string][]byte {
		pay := bytes.Repeat([]byte{byte(owner + 1)}, 257) // not shard-aligned
		return map[string][]byte{"app": pay, "rank": {byte(owner)}}
	}
	for _, owner := range boot.Members() {
		writeCommitted(t, s, owner, 1, sections(owner))
	}

	var next member.Set
	if delta > 0 {
		joins := make([]int, delta)
		for i := range joins {
			joins[i] = n + i
		}
		next = boot.WithJoined(2, joins...)
	} else {
		drops := make([]int, -delta)
		for i := range drops {
			drops[i] = n - 1 - i
		}
		next = boot.WithRemoved(2, drops...)
	}
	s.SetMembership(next)

	m := codec.ParityShards()
	shards := codec.DataShards() + m
	for _, owner := range next.Members() {
		if !boot.Contains(owner) {
			continue // joined after the line committed; owns nothing yet
		}
		assertPlacement(t, s, next, owner, 1)
		for _, lost := range lossCombos(shards, m) {
			undo := dropLine(s, owner, 1, lost)
			snap, err := s.Open(owner, 1)
			if err != nil {
				undo()
				t.Fatalf("owner %d lost=%v: Open: %v", owner, lost, err)
			}
			got, err := snap.ReadSection("app")
			if err != nil || !bytes.Equal(got, sections(owner)["app"]) {
				undo()
				t.Fatalf("owner %d lost=%v: bad app section (err=%v)", owner, lost, err)
			}
			undo()
		}
	}
	if got := s.Migrations(); got < int64(min(n, n+delta)) {
		t.Fatalf("migrations = %d, want >= %d (one per surviving owner)", got, min(n, n+delta))
	}
}
