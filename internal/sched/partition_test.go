package sched

// Tests for the four partition scenario families: each sweeps clean over a
// seed range, records its partition/heal choices as trace decisions, and
// replays bit-identically from the marshalled schedule.

import (
	"reflect"
	"testing"

	"c3/internal/transport"
)

// partitionScenarioNames lists the four partition families ISSUE 6 adds.
var partitionScenarioNames = []string{
	"partition-symmetric",
	"partition-asymmetric",
	"partition-during-agreement",
	"partition-heal-divergent",
}

func TestPartitionScenariosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("partition sweeps are slow under -short")
	}
	for _, name := range partitionScenarioNames {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc, ok := ScenarioByName(name)
			if !ok {
				t.Fatalf("scenario %q not registered", name)
			}
			ref, err := Reference(sc)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			res := Sweep(sc, ref, 1, 8, false)
			if res.Ran != 8 {
				t.Fatalf("ran %d seeds, want 8", res.Ran)
			}
			for _, o := range res.Failures {
				t.Errorf("seed %d failed: %s (divergent=%v)", o.Seed, o.Reason, o.Divergent)
			}
		})
	}
}

// TestPartitionDecisionsRecorded: a seeded run of a partition scenario must
// record when its split and heal fired as trace decisions, so divergences
// are replayable and ddmin-shrinkable like any other schedule.
func TestPartitionDecisionsRecorded(t *testing.T) {
	sc, ok := ScenarioByName("partition-symmetric")
	if !ok {
		t.Fatal("scenario partition-symmetric not registered")
	}
	ref, err := Reference(sc)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	o := RunSeed(sc, ref, 7)
	if o.Failed {
		t.Fatalf("seed 7 failed: %s", o.Reason)
	}
	if o.Schedule == nil {
		t.Fatal("no schedule recorded")
	}
	parts, heals := 0, 0
	for _, tr := range o.Schedule.Attempts {
		for _, d := range tr.Decisions {
			switch d.Kind {
			case transport.DecisionPartition:
				parts++
			case transport.DecisionHeal:
				heals++
			}
		}
	}
	if parts == 0 || heals == 0 {
		t.Fatalf("trace recorded %d partition and %d heal decisions, want >= 1 of each", parts, heals)
	}
}

// TestPartitionScheduleRoundtripAndReplay: the text codec preserves
// partition/heal decisions, and replaying the decoded schedule reproduces
// the recorded run (same trace back out).
func TestPartitionScheduleRoundtripAndReplay(t *testing.T) {
	sc, ok := ScenarioByName("partition-during-agreement")
	if !ok {
		t.Fatal("scenario partition-during-agreement not registered")
	}
	ref, err := Reference(sc)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	o := RunSeed(sc, ref, 3)
	if o.Failed {
		t.Fatalf("seed 3 failed: %s", o.Reason)
	}

	decoded, err := UnmarshalSchedule(MarshalSchedule(o.Schedule))
	if err != nil {
		t.Fatalf("roundtrip: %v", err)
	}
	if !reflect.DeepEqual(decoded, o.Schedule) {
		t.Fatal("schedule changed across marshal/unmarshal")
	}

	o2 := RunSchedule(sc, ref, decoded)
	if o2.Failed {
		t.Fatalf("replay failed: %s (divergent=%v)", o2.Reason, o2.Divergent)
	}
	if !reflect.DeepEqual(o2.Schedule, o.Schedule) {
		t.Fatal("replay recorded a different schedule than the original run")
	}
}
