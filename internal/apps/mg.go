package apps

import (
	"c3/internal/cluster"
	"c3/internal/mpi"
)

// MG mirrors the NAS MG benchmark: V-cycles over a grid hierarchy with a
// halo exchange at every level and — uniquely among the NAS codes the paper
// measures — an MPI_Barrier inside the computation ("only MG calls
// MPI_Barrier during the computation").
func init() {
	Register(&Kernel{
		Name:        "MG",
		Description: "multigrid V-cycles: per-level halo exchanges plus a barrier per cycle",
		Defaults: func(c Class) Params {
			n, _ := sized(Params{Class: c}, map[Class]int{ClassS: 256, ClassW: 4096, ClassA: 16384}, nil)
			_, it := sized(Params{Class: c}, nil, map[Class]int{ClassS: 6, ClassW: 12, ClassA: 24})
			return Params{Class: c, N: n, Iters: it}
		},
		App: mgApp,
	})
}

func mgApp(p Params, out *Output) func(cluster.Env) error {
	return func(env cluster.Env) error {
		n, iters := sized(p,
			map[Class]int{ClassS: 256, ClassW: 4096, ClassA: 16384},
			map[Class]int{ClassS: 6, ClassW: 12, ClassA: 24})
		st := env.State()
		r, size := env.Rank(), env.Size()
		for n%(size*8) != 0 {
			n++
		}
		levels := 4
		local := n / size

		it := st.Int("it")
		// One slab per level, halved in size each time.
		grids := make([][]float64, levels)
		for l := 0; l < levels; l++ {
			grids[l] = st.Float64s(levelName(l), local>>l).Data()
		}

		restored, err := env.Restore()
		if err != nil {
			return err
		}
		w := env.World()

		if !restored && it.Get() == 0 {
			g := grids[0]
			for i := range g {
				g[i] = float64((r*local+i)%13) * 0.125
			}
		}

		smooth := func(g []float64) error {
			m := len(g)
			leftGhost, rightGhost := 0.0, 0.0
			var sbuf, rbuf [8]byte
			if r > 0 {
				mpi.PutFloat64s(sbuf[:], g[:1])
				if _, err := w.Sendrecv(sbuf[:], 1, mpi.TypeFloat64, r-1, 41,
					rbuf[:], 1, mpi.TypeFloat64, r-1, 42); err != nil {
					return err
				}
				var v [1]float64
				mpi.GetFloat64s(v[:], rbuf[:])
				leftGhost = v[0]
			}
			if r < size-1 {
				mpi.PutFloat64s(sbuf[:], g[m-1:])
				if _, err := w.Sendrecv(sbuf[:], 1, mpi.TypeFloat64, r+1, 42,
					rbuf[:], 1, mpi.TypeFloat64, r+1, 41); err != nil {
					return err
				}
				var v [1]float64
				mpi.GetFloat64s(v[:], rbuf[:])
				rightGhost = v[0]
			}
			prev := leftGhost
			for i := 0; i < m; i++ {
				next := rightGhost
				if i < m-1 {
					next = g[i+1]
				}
				cur := g[i]
				g[i] = 0.25*prev + 0.5*cur + 0.25*next
				prev = cur
			}
			return nil
		}

		for it.Get() < iters {
			// Down-leg: smooth then restrict.
			for l := 0; l < levels-1; l++ {
				if err := smooth(grids[l]); err != nil {
					return err
				}
				coarse, fine := grids[l+1], grids[l]
				for i := range coarse {
					coarse[i] = 0.5 * (fine[2*i] + fine[2*i+1])
				}
			}
			if err := smooth(grids[levels-1]); err != nil {
				return err
			}
			// Up-leg: prolong then smooth.
			for l := levels - 2; l >= 0; l-- {
				coarse, fine := grids[l+1], grids[l]
				for i := range coarse {
					fine[2*i] += 0.5 * coarse[i]
					fine[2*i+1] += 0.5 * coarse[i]
				}
				if err := smooth(grids[l]); err != nil {
					return err
				}
			}
			// The cycle boundary barrier MG is known for.
			if err := w.Barrier(); err != nil {
				return err
			}
			it.Add(1)
			if err := env.Checkpoint(); err != nil {
				return err
			}
		}
		sum := 0.0
		for i, v := range grids[0] {
			sum += v * float64(i%7+1) * 1e-2
		}
		out.Report(r, sum)
		return nil
	}
}

func levelName(l int) string {
	return "grid" + string(rune('0'+l))
}
