package mpi

import "fmt"

// Op is a reduction operation over primitive element types. Built-in ops
// cover the common MPI reductions; user-defined ops are supported via NewOp
// (the checkpoint layer records user ops in its handle table by name so they
// can be re-bound on recovery).
type Op struct {
	name        string
	commutative bool
	// apply combines: inout[i] = f(in[i], inout[i]) for count elements of
	// the primitive kind.
	apply func(in, inout []byte, kind PrimKind, count int) error
}

// Name returns the operation's registered name.
func (o *Op) Name() string { return o.name }

// Commutative reports whether the operation commutes.
func (o *Op) Commutative() bool { return o.commutative }

// NewOp creates a user-defined reduction operation.
func NewOp(name string, commutative bool, apply func(in, inout []byte, kind PrimKind, count int) error) *Op {
	return &Op{name: name, commutative: commutative, apply: apply}
}

func numericOp(name string, f64 func(a, b float64) float64, i64 func(a, b int64) int64, c128 func(a, b complex128) complex128) *Op {
	return &Op{
		name:        name,
		commutative: true,
		apply: func(in, inout []byte, kind PrimKind, count int) error {
			switch kind {
			case KFloat64:
				for i := 0; i < count; i++ {
					a := BytesFloat64s(in[i*8 : i*8+8])[0]
					b := BytesFloat64s(inout[i*8 : i*8+8])[0]
					PutFloat64s(inout[i*8:i*8+8], []float64{f64(a, b)})
				}
			case KInt64:
				for i := 0; i < count; i++ {
					a := BytesInt64s(in[i*8 : i*8+8])[0]
					b := BytesInt64s(inout[i*8 : i*8+8])[0]
					PutInt64s(inout[i*8:i*8+8], []int64{i64(a, b)})
				}
			case KByte:
				for i := 0; i < count; i++ {
					inout[i] = byte(i64(int64(in[i]), int64(inout[i])))
				}
			case KComplex128:
				if c128 == nil {
					return fmt.Errorf("%w: op %s undefined for complex128", ErrInvalid, name)
				}
				a := make([]complex128, count)
				b := make([]complex128, count)
				GetComplex128s(a, in)
				GetComplex128s(b, inout)
				for i := 0; i < count; i++ {
					b[i] = c128(a[i], b[i])
				}
				PutComplex128s(inout, b)
			default:
				return fmt.Errorf("%w: op %s unsupported kind %v", ErrInvalid, name, kind)
			}
			return nil
		},
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Built-in reduction operations.
var (
	OpSum  = numericOp("sum", func(a, b float64) float64 { return a + b }, func(a, b int64) int64 { return a + b }, func(a, b complex128) complex128 { return a + b })
	OpProd = numericOp("prod", func(a, b float64) float64 { return a * b }, func(a, b int64) int64 { return a * b }, func(a, b complex128) complex128 { return a * b })
	OpMax  = numericOp("max", maxF, maxI, nil)
	OpMin  = numericOp("min", minF, minI, nil)
	OpBAnd = numericOp("band", nil2f("band"), func(a, b int64) int64 { return a & b }, nil)
	OpBOr  = numericOp("bor", nil2f("bor"), func(a, b int64) int64 { return a | b }, nil)
	OpBXor = numericOp("bxor", nil2f("bxor"), func(a, b int64) int64 { return a ^ b }, nil)
	OpLAnd = numericOp("land", nil2f("land"), func(a, b int64) int64 { return b2i(a != 0 && b != 0) }, nil)
	OpLOr  = numericOp("lor", nil2f("lor"), func(a, b int64) int64 { return b2i(a != 0 || b != 0) }, nil)
)

// builtinOps indexes the built-in operations by name, for handle-table
// reconstruction on recovery.
var builtinOps = map[string]*Op{
	"sum": OpSum, "prod": OpProd, "max": OpMax, "min": OpMin,
	"band": OpBAnd, "bor": OpBOr, "bxor": OpBXor, "land": OpLAnd, "lor": OpLOr,
}

// LookupOp returns the built-in op with the given name.
func LookupOp(name string) (*Op, bool) {
	op, ok := builtinOps[name]
	return op, ok
}

func nil2f(name string) func(a, b float64) float64 {
	return func(a, b float64) float64 {
		panic(fmt.Sprintf("mpi: op %s undefined for float64", name))
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Apply combines packed input into packed inout for count elements of dt,
// which must be a primitive type (or contiguous over one).
func (o *Op) Apply(in, inout []byte, dt *Datatype, count int) error {
	kind, base, err := primitiveOf(dt)
	if err != nil {
		return err
	}
	return o.apply(in, inout, kind, count*base)
}

// primitiveOf resolves dt to (primitive kind, elements per dt element).
func primitiveOf(dt *Datatype) (PrimKind, int, error) {
	switch dt.kind {
	case tPrim:
		return dt.prim, 1, nil
	case tContiguous:
		k, n, err := primitiveOf(dt.base)
		return k, n * dt.count, err
	default:
		return 0, 0, fmt.Errorf("%w: reduction requires primitive datatype", ErrInvalid)
	}
}
