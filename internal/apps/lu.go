package apps

import (
	"c3/internal/cluster"
	"c3/internal/mpi"
)

// LU mirrors the NAS LU benchmark's SSOR wavefront: the grid is partitioned
// in row blocks, and each sweep pipelines through the ranks — receive the
// boundary row from the rank above, relax local rows, forward the last row
// to the rank below, then the reverse sweep. The paper places the
// checkpoint location "at the bottom of the istep loop in the routine
// ssor".
func init() {
	Register(&Kernel{
		Name:        "LU",
		Description: "SSOR wavefront pipelining: boundary-row pipeline down then up per step",
		Defaults: func(c Class) Params {
			n, _ := sized(Params{Class: c}, map[Class]int{ClassS: 64, ClassW: 384, ClassA: 768}, nil)
			_, it := sized(Params{Class: c}, nil, map[Class]int{ClassS: 8, ClassW: 20, ClassA: 40})
			return Params{Class: c, N: n, Iters: it}
		},
		App: luApp,
	})
}

func luApp(p Params, out *Output) func(cluster.Env) error {
	return func(env cluster.Env) error {
		n, iters := sized(p,
			map[Class]int{ClassS: 64, ClassW: 384, ClassA: 768},
			map[Class]int{ClassS: 8, ClassW: 20, ClassA: 40})
		st := env.State()
		r, size := env.Rank(), env.Size()
		loRow, hiRow := blockRange(n, size, r)
		rows := hiRow - loRow

		it := st.Int("it")
		grid := st.Float64s("grid", rows*n).Data()

		restored, err := env.Restore()
		if err != nil {
			return err
		}
		w := env.World()

		if !restored && it.Get() == 0 {
			for i := 0; i < rows; i++ {
				for j := 0; j < n; j++ {
					grid[i*n+j] = float64((loRow+i+j)%11) * 0.25
				}
			}
		}

		rowBuf := make([]byte, 8*n)
		ghost := make([]float64, n)

		relaxDown := func() error {
			if r > 0 {
				if _, err := w.RecvBytes(rowBuf, r-1, 31); err != nil {
					return err
				}
				mpi.GetFloat64s(ghost, rowBuf)
			} else {
				for j := range ghost {
					ghost[j] = 0
				}
			}
			for i := 0; i < rows; i++ {
				above := ghost
				if i > 0 {
					above = grid[(i-1)*n : i*n]
				}
				row := grid[i*n : (i+1)*n]
				for j := 0; j < n; j++ {
					left := 0.0
					if j > 0 {
						left = row[j-1]
					}
					row[j] = 0.25*(row[j]+left+above[j]) + 0.001
				}
			}
			if r < size-1 {
				mpi.PutFloat64s(rowBuf, grid[(rows-1)*n:rows*n])
				return w.SendBytes(rowBuf, r+1, 31)
			}
			return nil
		}

		relaxUp := func() error {
			if r < size-1 {
				if _, err := w.RecvBytes(rowBuf, r+1, 32); err != nil {
					return err
				}
				mpi.GetFloat64s(ghost, rowBuf)
			} else {
				for j := range ghost {
					ghost[j] = 0
				}
			}
			for i := rows - 1; i >= 0; i-- {
				below := ghost
				if i < rows-1 {
					below = grid[(i+1)*n : (i+2)*n]
				}
				row := grid[i*n : (i+1)*n]
				for j := n - 1; j >= 0; j-- {
					right := 0.0
					if j < n-1 {
						right = row[j+1]
					}
					row[j] = 0.25*(row[j]+right+below[j]) + 0.001
				}
			}
			if r > 0 {
				mpi.PutFloat64s(rowBuf, grid[:n])
				return w.SendBytes(rowBuf, r-1, 32)
			}
			return nil
		}

		for it.Get() < iters {
			if err := relaxDown(); err != nil {
				return err
			}
			if err := relaxUp(); err != nil {
				return err
			}
			it.Add(1)
			if err := env.Checkpoint(); err != nil { // bottom of the istep loop
				return err
			}
		}
		sum := 0.0
		for i := 0; i < rows; i++ {
			sum += grid[i*n+(loRow+i)%n]
		}
		out.Report(r, sum)
		return nil
	}
}
