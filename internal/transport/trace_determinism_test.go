package transport

import (
	"testing"

	"c3/internal/trace"
)

// traceFingerprint is one event normalized for cross-run comparison: raw
// sequence numbers, Lamport clocks and span ids all keep counting across
// runs on the shared in-process recorder, so clocks are rebased on the
// run's first event and span ids are canonicalized by first occurrence.
// Virtual timestamps need no normalization — a fresh same-seed scheduler
// restarts logical time from the same base.
type traceFingerprint struct {
	Kind   trace.Kind
	Phase  trace.Phase
	Rank   int32
	Peer   int32
	ClockD uint64
	Time   int64
	Arg    uint64
	Span   int
	Parent int
}

// fingerprintRun executes one seeded ping-ring under a virtual scheduler
// and returns the normalized trace fingerprint of the events it recorded.
func fingerprintRun(t *testing.T, seed int64) []traceFingerprint {
	t.Helper()
	start := trace.Default().Len()
	runPingRing(t, 4, 20, NewScheduler(4, seed))

	var run []trace.Event
	for _, ev := range trace.Default().Snapshot() {
		if ev.Seq >= start {
			run = append(run, ev)
		}
	}
	if len(run) == 0 {
		t.Fatal("run recorded no trace events")
	}

	base := run[0].Clock
	spanOrd := map[uint64]int{}
	ord := func(id uint64) int {
		if id == 0 {
			return 0
		}
		if _, ok := spanOrd[id]; !ok {
			spanOrd[id] = len(spanOrd) + 1
		}
		return spanOrd[id]
	}
	fps := make([]traceFingerprint, len(run))
	for i, ev := range run {
		fps[i] = traceFingerprint{
			Kind: ev.Kind, Phase: ev.Phase, Rank: ev.Rank, Peer: ev.Peer,
			ClockD: ev.Clock - base, Time: ev.Time, Arg: ev.Arg,
			Span: ord(ev.Span), Parent: ord(ev.Parent),
		}
	}
	return fps
}

// TestTraceReplayDeterministic is the tracing half of the replay story:
// two runs under the same scheduler seed must record byte-identical
// normalized traces — same event order, same Lamport clock deltas, same
// virtual timestamps. The network installs the scheduler's virtual clock
// as the trace timestamp source, so a trace captured from a seeded run is
// itself a replayable artifact, not a wall-clock-polluted approximation.
func TestTraceReplayDeterministic(t *testing.T) {
	defer trace.SetClock(nil)

	first := fingerprintRun(t, 42)
	for i := 0; i < 2; i++ {
		again := fingerprintRun(t, 42)
		if len(again) != len(first) {
			t.Fatalf("run %d recorded %d events, first run %d", i, len(again), len(first))
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("run %d diverged at event %d:\nfirst %+v\nagain %+v", i, j, first[j], again[j])
			}
		}
	}

	// A different seed must yield a different interleaving (otherwise the
	// fingerprint is insensitive and the assertions above are vacuous).
	other := fingerprintRun(t, 43)
	same := len(other) == len(first)
	if same {
		for j := range first {
			if first[j] != other[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical trace fingerprints")
	}
}
