// Quickstart: a self-checkpointing, self-restarting ring program.
//
// Four ranks pass a token around a ring, folding it into a running sum.
// Every iteration ends with a checkpoint pragma; the policy takes a
// checkpoint every 3 pragmas, and commits it through the asynchronous
// pipeline into the diskless replicated store (each rank's checkpoint
// fragments live in its +1/+2 neighbors' memories). A fail-stop failure is
// injected on rank 2 mid-run: the whole world is torn down — including
// rank 2's node memory and the checkpoints in it — and restarted; recovery
// finds the last recovery line committed on all ranks, reassembles rank
// 2's checkpoint from the surviving peers, restores the registered state,
// replays logged late messages and suppresses re-sends of early ones, and
// the program finishes as if nothing had happened. No disk is touched.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"c3"
)

func main() {
	const ranks = 4
	const iters = 9

	app := func(env c3.Env) error {
		st := env.State()
		it := st.Int("it")   // loop counter: part of the saved state
		sum := st.Int("sum") // running result

		// Restore recovers registered state from the last committed
		// recovery line when this run is a restart (no-op otherwise).
		restored, err := env.Restore()
		if err != nil {
			return err
		}
		if restored {
			fmt.Printf("rank %d: restored at iteration %d (sum=%d)\n",
				env.Rank(), it.Get(), sum.Get())
		}

		w := env.World()
		right := (env.Rank() + 1) % ranks
		left := (env.Rank() + ranks - 1) % ranks

		for it.Get() < iters {
			// Pass a token right, receive from the left.
			token := []byte{byte(env.Rank() + it.Get())}
			var in [1]byte
			if _, err := w.Sendrecv(token, 1, c3.TypeByte, right, 1,
				in[:], 1, c3.TypeByte, left, 1); err != nil {
				return err
			}
			sum.Add(int(in[0]))
			it.Add(1)

			// The checkpoint pragma: the policy decides whether a global
			// checkpoint starts here (it also joins checkpoints other
			// ranks have initiated).
			if err := env.Checkpoint(); err != nil {
				return err
			}
		}
		fmt.Printf("rank %d: done, sum=%d\n", env.Rank(), sum.Get())
		return nil
	}

	// Diskless stable storage: checkpoints live in node memory, replicated
	// to each rank's +1/+2 neighbors over the replication interconnect.
	store := c3.NewReplicatedStore(ranks)
	defer store.Close()

	res, err := c3.Run(c3.Config{
		Ranks: ranks,
		App:   app,
		Store: store,
		// AsyncCommit hands the captured checkpoint to a background
		// committer, so the ring resumes immediately after local capture.
		Policy: c3.Policy{EveryNthPragma: 3, AsyncCommit: true},
		// Kill rank 2 at its 7th pragma — after at least one recovery
		// line has committed.
		Failures: []c3.FailureSpec{{Rank: 2, AtPragma: 7}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompleted in %d attempt(s); last attempt took %v\n",
		res.Attempts, res.LastAttemptElapsed)
	for _, rs := range res.Stats {
		s := rs.Stats
		fmt.Printf("rank %d: %d checkpoints (%d async), %d late logged, %d replayed, %d re-sends suppressed\n",
			rs.Rank, s.CheckpointsTaken, s.AsyncCommits, s.LateLogged, s.ReplayedLate, s.SuppressedSends)
	}
	fmt.Printf("replicated recoveries from peer memory: %d\n", store.Reassemblies())
}
