// Command c3trace merges per-rank flight-recorder dumps (rank<N>.c3tr,
// written by nodes run with -trace-dir) into one causally ordered timeline,
// stitched on the send/recv span links the transports piggyback on every
// frame. The merge re-verifies the happens-before invariant on every
// stitched edge — a receive whose Lamport clock is not strictly greater
// than its send's is a hard error, not a warning: the Lamport merge on the
// receive path makes the invariant unconditional, so a violation means
// corrupted dumps or a transport delivering frames across causality.
//
// Usage:
//
//	c3trace /tmp/c3-traces                  # merge a dump directory: summary
//	                                        # plus the phase-breakdown table
//	c3trace rank0.c3tr rank1.c3tr ...       # explicit dump files
//	c3trace -events /tmp/c3-traces          # additionally print the ordered
//	                                        # event timeline
//	c3trace -chrome out.json /tmp/c3-traces # write a Chrome trace_event file
//	                                        # (load in chrome://tracing or
//	                                        # https://ui.perfetto.dev)
//
// Exit status: 0 on a causally consistent merge, 1 on any error —
// including a happens-before violation — so CI can gate on it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"c3/internal/trace"
)

func main() {
	var (
		events = flag.Bool("events", false, "print the causally ordered event timeline")
		chrome = flag.String("chrome", "", "write the timeline as Chrome trace_event JSON to this file")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fatalf("usage: c3trace [-events] [-chrome out.json] <dump-dir | dump-file...>")
	}

	paths, err := dumpPaths(flag.Args())
	if err != nil {
		fatalf("%v", err)
	}
	if len(paths) == 0 {
		fatalf("no %s dumps found in %s", "*.c3tr", strings.Join(flag.Args(), " "))
	}

	var dumps []*trace.Dump
	for _, p := range paths {
		d, err := trace.ReadDump(p)
		if err != nil {
			fatalf("read %s: %v", p, err)
		}
		fmt.Printf("loaded %s: rank %d, %d events\n", p, d.Rank, len(d.Events))
		dumps = append(dumps, d)
	}

	tl, err := trace.Merge(dumps)
	if err != nil {
		fatalf("%v", err)
	}
	st := tl.Stats()
	fmt.Printf("\nmerged %d events from %d ranks: %d message edges, %d stitched, %d orphan recvs\n",
		st.Events, st.Ranks, st.Edges, st.Stitched, st.OrphanRecvs)
	fmt.Println("happens-before verified on every stitched edge")
	if len(st.InstantCounts) > 0 {
		var kinds []trace.Kind
		for k := range st.InstantCounts {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		var parts []string
		for _, k := range kinds {
			parts = append(parts, fmt.Sprintf("%s=%d", k, st.InstantCounts[k]))
		}
		fmt.Printf("protocol events: %s\n", strings.Join(parts, " "))
	}

	if breakdown := tl.PhaseBreakdown(); len(breakdown) > 0 {
		fmt.Printf("\n%s", trace.FormatBreakdown(breakdown))
	}

	if *events {
		fmt.Println()
		printTimeline(tl)
	}
	if *chrome != "" {
		if err := writeChrome(*chrome, tl); err != nil {
			fatalf("write %s: %v", *chrome, err)
		}
		fmt.Printf("\nwrote Chrome trace to %s (open in chrome://tracing or ui.perfetto.dev)\n", *chrome)
	}
}

// dumpPaths expands arguments: a directory contributes every *.c3tr file
// inside it, anything else is taken as a dump file.
func dumpPaths(args []string) ([]string, error) {
	var paths []string
	for _, a := range args {
		fi, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !fi.IsDir() {
			paths = append(paths, a)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(a, "*.c3tr"))
		if err != nil {
			return nil, err
		}
		sort.Strings(matches)
		paths = append(paths, matches...)
	}
	return paths, nil
}

// printTimeline renders the causally ordered event list, one line per
// event, with the edge direction spelled out on send/recv pairs.
func printTimeline(tl *trace.Timeline) {
	for i, ev := range tl.Events {
		line := fmt.Sprintf("%6d  clk=%-8d r%-3d %-10s %-7s", i, ev.Clock, ev.Rank, ev.Kind, ev.Phase)
		switch ev.Phase {
		case trace.PhaseSend:
			line += fmt.Sprintf(" -> r%d (%d bytes)", ev.Peer, ev.Arg)
		case trace.PhaseRecv:
			line += fmt.Sprintf(" <- r%d (%d bytes)", ev.Peer, ev.Arg)
		default:
			if ev.Arg != 0 {
				line += fmt.Sprintf(" arg=%d", ev.Arg)
			}
		}
		if ev.Span != 0 {
			line += fmt.Sprintf(" span=%#x", ev.Span)
		}
		fmt.Println(line)
	}
}

// chromeEvent is one entry in the Chrome trace_event JSON array format.
// pid encodes the rank (one process row per rank in the viewer), ts/dur
// are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	PID  int32          `json:"pid"`
	TID  int32          `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// writeChrome renders the timeline in the trace_event format: Begin/End
// pairs become complete ("X") duration events, instants become "i", and
// stitched message edges become flow arrows ("s"/"f") so the viewer draws
// the cross-rank causality the merge verified.
func writeChrome(path string, tl *trace.Timeline) error {
	// The viewer wants non-negative timestamps; rebase on the earliest
	// event time across all ranks (comparable only per rank for virtual
	// clocks, but a shared rebase keeps rows aligned for wall clocks and
	// merely shifts virtual rows).
	var t0 int64
	for i, ev := range tl.Events {
		if i == 0 || ev.Time < t0 {
			t0 = ev.Time
		}
	}
	us := func(ns int64) float64 { return float64(ns-t0) / 1e3 }

	var out []chromeEvent
	begins := map[uint64]trace.Event{}
	for _, ev := range tl.Events {
		switch ev.Phase {
		case trace.PhaseBegin:
			begins[ev.Span] = ev
		case trace.PhaseEnd:
			if b, ok := begins[ev.Span]; ok {
				delete(begins, ev.Span)
				out = append(out, chromeEvent{
					Name: ev.Kind.String(), Cat: "phase", Ph: "X",
					PID: ev.Rank, TID: ev.Rank,
					TS: us(b.Time), Dur: float64(ev.Time-b.Time) / 1e3,
					Args: map[string]any{"arg": ev.Arg, "clock": ev.Clock},
				})
			}
		case trace.PhaseInstant:
			out = append(out, chromeEvent{
				Name: ev.Kind.String(), Cat: "event", Ph: "i",
				PID: ev.Rank, TID: ev.Rank, TS: us(ev.Time),
				Args: map[string]any{"arg": ev.Arg, "clock": ev.Clock},
			})
		}
	}
	for span, e := range tl.Edges {
		if e.Recv < 0 {
			continue
		}
		send, recv := tl.Events[e.Send], tl.Events[e.Recv]
		id := fmt.Sprintf("%#x", span)
		out = append(out, chromeEvent{
			Name: "msg", Cat: "edge", Ph: "s",
			PID: send.Rank, TID: send.Rank, TS: us(send.Time), ID: id,
		})
		out = append(out, chromeEvent{
			Name: "msg", Cat: "edge", Ph: "f",
			PID: recv.Rank, TID: recv.Rank, TS: us(recv.Time), ID: id,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })

	data, err := json.Marshal(map[string]any{"traceEvents": out})
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "c3trace: "+format+"\n", args...)
	os.Exit(1)
}
