package ckpt

import (
	"fmt"

	"c3/internal/wire"
)

// Control messages travel on the layer's private control communicator, so
// they can never match application receives. Three kinds exist:
//
//   - Checkpoint-Initiated: sent to every other process by
//     chkpt_StartCheckpoint, carrying the new line number and the sender's
//     Sent-Count for the destination (how many messages it sent the
//     destination in the epoch that just ended). The receiver uses the
//     count to detect when all late messages are in.
//   - Suppress: the Was-Early-Registry distribution exchanged during
//     recovery (chkpt_RestoreCheckpoint).
//   - Failure notices are not needed: the runtime tears the world down.
const (
	ctrlTagInitiated = 0
	ctrlTagSuppress  = 2 // Was-Early distribution during recovery
)

// ctrlInitiated is the Checkpoint-Initiated control message.
type ctrlInitiated struct {
	Line uint64
	// SentToYou is the sender's Sent-Count[destination] for the epoch that
	// ended at the sender's line.
	SentToYou uint64
}

func (m ctrlInitiated) encode() []byte {
	w := wire.NewWriter(16)
	w.U64(m.Line)
	w.U64(m.SentToYou)
	return w.Bytes()
}

func decodeCtrlInitiated(data []byte) (ctrlInitiated, error) {
	r := wire.NewReader(data)
	m := ctrlInitiated{Line: r.U64(), SentToYou: r.U64()}
	if err := r.Err(); err != nil {
		return m, fmt.Errorf("ckpt: corrupt control message: %w", err)
	}
	return m, nil
}
