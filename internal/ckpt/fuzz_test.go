package ckpt

import (
	"testing"

	"c3/internal/mpi"
	"c3/internal/wire"
)

// FuzzDeserialize throws arbitrary bytes at the checkpoint decode entry
// points: the handle tables (datatypes, communicators, reduction ops), the
// message registries, the collective result log, and the request table —
// everything recovery reads from stable storage or a socket. Corrupt input
// must produce an error, never a panic or an unbounded allocation.
func FuzzDeserialize(f *testing.F) {
	// Corpus: real serialized images from populated tables.
	tt := NewTypeTable()
	vec, _ := tt.Vector(4, 2, 8, HandleFloat64)
	_, _ = tt.Contiguous(3, vec)
	_, _ = tt.Indexed([]int{1, 2}, []int{0, 4}, HandleInt64)
	f.Add(tt.Serialize())

	ot := NewOpTable()
	f.Add(ot.Serialize())

	er := NewEarlyRegistry()
	er.Add(Signature{Ctx: 2, Tag: 11, Src: 1}, 1, 0, 64)
	er.Add(Signature{Ctx: 2, Tag: 12, Src: 3}, 3, 0, 16)
	f.Add(er.Serialize())

	lr := NewLateRegistry()
	lr.AddData(Signature{Ctx: 0, Tag: 7, Src: 2}, []byte("late-payload"))
	lr.AddSig(Signature{Ctx: 0, Tag: 9, Src: 1})
	f.Add(lr.Serialize())

	rl := NewResultLog()
	rl.Append(1, 3, []byte("allreduce-result"))
	f.Add(rl.Serialize())

	rt := NewReqTable()
	f.Add(rt.Serialize(1))

	// Truncation of a real image.
	img := tt.Serialize()
	f.Add(img[:len(img)/2])

	// A hostile indexed-type recipe whose element count (1<<62) overflows
	// the naive 1+2*n shape check — the corrupt-checkpoint panic the
	// recipe validation must reject.
	hw := wire.NewWriter(64)
	hw.U32(1)
	hw.Int(100)      // handle
	hw.U8(tkIndexed) // kind
	hw.Bool(true)    // alive
	hw.Ints([]int{1 << 62})
	hw.Ints([]int{HandleInt64})
	hw.Int(101)
	f.Add(hw.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		_ = NewTypeTable().Restore(data)
		_ = NewOpTable().Verify(data)
		world := mpi.NewWorld(2)
		_ = NewCommTable(world.Proc(0).CommWorld()).Restore(data)
		_, _ = LoadEarlyRegistry(data)
		_, _ = LoadLateRegistry(data)
		_, _ = LoadResultLog(data)
		_, _, _, _ = deserializeReqTable(data)
		_, _ = decodeSuppressItems(data)
		_, _ = decodeCtrlInitiated(data)
	})
}
