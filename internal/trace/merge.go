package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Timeline is the causally ordered merge of per-rank dumps.
type Timeline struct {
	// Events in causal order: ascending Lamport clock, ties broken by
	// (rank, seq) so the order is total and deterministic.
	Events []Event
	// Edges maps an edge span id to its send/recv endpoints (indices
	// into Events); Recv is -1 for edges whose delivery fell out of the
	// receiver's ring (or was genuinely lost).
	Edges map[uint64]Edge
	// Ranks is the sorted set of ranks that contributed events.
	Ranks []int
}

// Edge is one stitched cross-rank message edge.
type Edge struct {
	Send, Recv int // indices into Timeline.Events; Recv may be -1
}

// Merge stitches per-rank dumps into one causally ordered timeline and
// re-verifies the happens-before invariant on every stitched edge: a
// recv whose Lamport clock is not strictly greater than its send's is a
// hard error (the Lamport merge on the receive path makes the invariant
// unconditional, so a violation means corrupted dumps or a transport
// bug delivering frames across causality).
func Merge(dumps []*Dump) (*Timeline, error) {
	var events []Event
	rankSet := map[int]bool{}
	for _, d := range dumps {
		events = append(events, d.Events...)
		for _, ev := range d.Events {
			rankSet[int(ev.Rank)] = true
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Clock != b.Clock {
			return a.Clock < b.Clock
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Seq < b.Seq
	})

	tl := &Timeline{Events: events, Edges: map[uint64]Edge{}}
	for r := range rankSet {
		tl.Ranks = append(tl.Ranks, r)
	}
	sort.Ints(tl.Ranks)

	sends := map[uint64]int{}
	recvs := map[uint64]int{}
	for i, ev := range events {
		switch ev.Phase {
		case PhaseSend:
			sends[ev.Span] = i
		case PhaseRecv:
			if ev.Span != 0 { // zero span: frame carried no context
				recvs[ev.Span] = i
			}
		}
	}
	for span, si := range sends {
		e := Edge{Send: si, Recv: -1}
		if ri, ok := recvs[span]; ok {
			e.Recv = ri
			send, recv := events[si], events[ri]
			if recv.Clock <= send.Clock {
				return nil, fmt.Errorf(
					"trace: happens-before violation on edge %#x: send rank %d clock %d, recv rank %d clock %d",
					span, send.Rank, send.Clock, recv.Rank, recv.Clock)
			}
		}
		tl.Edges[span] = e
	}
	// A recv with no matching send is legal only because the sender's
	// ring may have wrapped past the send event (or the sender died
	// before dumping); it cannot be distinguished from a forged frame,
	// so it is reported by Stats, not an error here.
	return tl, nil
}

// PhaseStat summarizes one span kind across the timeline.
type PhaseStat struct {
	Kind   Kind
	Count  int
	MinNs  int64
	MeanNs int64
	P99Ns  int64
	MaxNs  int64
}

// PhaseBreakdown pairs Begin/End events by span id *per rank* (virtual
// and wall clocks are only comparable within one rank) and aggregates
// durations per kind.
func (tl *Timeline) PhaseBreakdown() []PhaseStat {
	type open struct{ start int64 }
	begins := map[uint64]open{}
	durs := map[Kind][]int64{}
	for _, ev := range tl.Events {
		switch ev.Phase {
		case PhaseBegin:
			begins[ev.Span] = open{start: ev.Time}
		case PhaseEnd:
			if b, ok := begins[ev.Span]; ok {
				if d := ev.Time - b.start; d >= 0 {
					durs[ev.Kind] = append(durs[ev.Kind], d)
				}
				delete(begins, ev.Span)
			}
		}
	}
	var out []PhaseStat
	for kind, ds := range durs {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		var sum int64
		for _, d := range ds {
			sum += d
		}
		p99 := ds[(len(ds)-1)*99/100]
		out = append(out, PhaseStat{
			Kind: kind, Count: len(ds),
			MinNs: ds[0], MeanNs: sum / int64(len(ds)),
			P99Ns: p99, MaxNs: ds[len(ds)-1],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// Stats summarizes the merged timeline.
type Stats struct {
	Events        int
	Ranks         int
	Edges         int // send events seen
	Stitched      int // edges with both endpoints
	OrphanRecvs   int // recvs whose send fell out of the sender's ring
	InstantCounts map[Kind]int
}

// Stats computes summary counters for the timeline.
func (tl *Timeline) Stats() Stats {
	s := Stats{Events: len(tl.Events), Ranks: len(tl.Ranks), InstantCounts: map[Kind]int{}}
	stitchedRecvs := map[int]bool{}
	for _, e := range tl.Edges {
		s.Edges++
		if e.Recv >= 0 {
			s.Stitched++
			stitchedRecvs[e.Recv] = true
		}
	}
	for i, ev := range tl.Events {
		switch ev.Phase {
		case PhaseRecv:
			if ev.Span != 0 && !stitchedRecvs[i] {
				s.OrphanRecvs++
			}
		case PhaseInstant:
			s.InstantCounts[ev.Kind]++
		}
	}
	return s
}

// FormatBreakdown renders the phase table as aligned text.
func FormatBreakdown(stats []PhaseStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %12s %12s %12s %12s\n",
		"phase", "count", "min", "mean", "p99", "max")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-12s %8d %12s %12s %12s %12s\n",
			s.Kind, s.Count, fmtNs(s.MinNs), fmtNs(s.MeanNs), fmtNs(s.P99Ns), fmtNs(s.MaxNs))
	}
	return b.String()
}

func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
