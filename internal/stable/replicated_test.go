package stable

import (
	"errors"
	"testing"
	"time"

	"c3/internal/transport"
)

func writeCommitted(t *testing.T, s Store, rank, version int, sections map[string][]byte) {
	t.Helper()
	ck, err := s.Begin(rank, version)
	if err != nil {
		t.Fatalf("Begin(%d,%d): %v", rank, version, err)
	}
	for name, data := range sections {
		if err := ck.WriteSection(name, data); err != nil {
			t.Fatalf("WriteSection(%q): %v", name, err)
		}
	}
	if err := ck.Commit(); err != nil {
		t.Fatalf("Commit(%d,%d): %v", rank, version, err)
	}
}

func TestReplicatedRoundtrip(t *testing.T) {
	s := NewReplicatedStore(4)
	defer s.Close()
	sections := map[string][]byte{"app": []byte("state"), "mpi": []byte{1, 2, 3}}
	writeCommitted(t, s, 1, 1, sections)

	v, ok, err := s.LastCommitted(1)
	if err != nil || !ok || v != 1 {
		t.Fatalf("LastCommitted = %d,%v,%v; want 1,true,nil", v, ok, err)
	}
	snap, err := s.Open(1, 1)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer snap.Close()
	got, err := snap.ReadSection("app")
	if err != nil || string(got) != "state" {
		t.Fatalf("ReadSection(app) = %q,%v", got, err)
	}
	if s.Reassemblies() != 0 {
		t.Fatalf("local read must not reassemble; got %d", s.Reassemblies())
	}
	if st := s.NetworkStats(); st.MessagesSent == 0 {
		t.Fatalf("replication must go over the transport; stats = %+v", st)
	}
}

func TestReplicatedRecoversAfterNodeLoss(t *testing.T) {
	s := NewReplicatedStore(4)
	defer s.Close()
	for v := 1; v <= 3; v++ {
		writeCommitted(t, s, 2, v, map[string][]byte{"app": []byte{byte(v), byte(v * 7)}})
	}

	// Fail-stop: rank 2's memory (and everything it held for peers) is gone.
	s.FailNode(2)

	v, ok, err := s.LastCommitted(2)
	if err != nil || !ok || v != 3 {
		t.Fatalf("LastCommitted after loss = %d,%v,%v; want 3,true,nil", v, ok, err)
	}
	snap, err := s.Open(2, 3)
	if err != nil {
		t.Fatalf("Open after loss: %v", err)
	}
	got, err := snap.ReadSection("app")
	if err != nil || len(got) != 2 || got[0] != 3 || got[1] != 21 {
		t.Fatalf("reassembled section = %v, %v", got, err)
	}
	snap.Close()
	if s.Reassemblies() == 0 {
		t.Fatal("expected a peer reassembly")
	}
	// The rebuilt line is re-hosted locally: a second open is local.
	if _, err := s.Open(2, 3); err != nil {
		t.Fatalf("re-open: %v", err)
	}
	if s.Reassemblies() != 1 {
		t.Fatalf("re-open must use the re-hosted copy; reassemblies = %d", s.Reassemblies())
	}
}

func TestReplicatedNodeLossLosesPeerHoldings(t *testing.T) {
	// In a 3-rank world, rank 0 replicates to 1 and 2. Failing both
	// neighbors (after failing 0) leaves no copy anywhere.
	s := NewReplicatedStore(3)
	defer s.Close()
	writeCommitted(t, s, 0, 1, map[string][]byte{"app": []byte("x")})
	s.FailNode(0)
	s.FailNode(1)
	s.FailNode(2)
	if _, ok, err := s.LastCommitted(0); err != nil || ok {
		t.Fatalf("triple failure must lose the line; got ok=%v err=%v", ok, err)
	}
	if _, err := s.Open(0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Open after triple failure = %v; want ErrNotFound", err)
	}
}

func TestReplicatedSurvivesOneNeighborLoss(t *testing.T) {
	s := NewReplicatedStore(4)
	defer s.Close()
	writeCommitted(t, s, 0, 1, map[string][]byte{"app": []byte("payload")})
	s.FailNode(0) // owner's memory gone
	s.FailNode(1) // one of the two replica holders gone too
	snap, err := s.Open(0, 1)
	if err != nil {
		t.Fatalf("Open with one surviving replica: %v", err)
	}
	defer snap.Close()
	got, _ := snap.ReadSection("app")
	if string(got) != "payload" {
		t.Fatalf("got %q", got)
	}
}

func TestReplicatedRetirePrunesPeerFragments(t *testing.T) {
	s := NewReplicatedStore(3)
	defer s.Close()
	writeCommitted(t, s, 0, 1, map[string][]byte{"app": []byte("old")})
	writeCommitted(t, s, 0, 2, map[string][]byte{"app": []byte("new")})
	if err := s.Retire(0, 2); err != nil {
		t.Fatal(err)
	}
	s.FailNode(0)
	if v, ok, _ := s.LastCommitted(0); !ok || v != 2 {
		t.Fatalf("after retire+loss LastCommitted = %d,%v; want 2", v, ok)
	}
	if _, err := s.Open(0, 1); err == nil {
		t.Fatal("retired version must be gone from peers too")
	}
}

func TestReplicatedUncommittedInvisible(t *testing.T) {
	s := NewReplicatedStore(2)
	defer s.Close()
	ck, err := s.Begin(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.WriteSection("app", []byte("half")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.LastCommitted(0); ok {
		t.Fatal("uncommitted checkpoint visible")
	}
	if err := ck.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.LastCommitted(0); ok {
		t.Fatal("aborted checkpoint visible")
	}
}

func TestReplicatedDegenerateWorlds(t *testing.T) {
	// n=1: no neighbors; the store is plain local memory.
	s1 := NewReplicatedStore(1)
	defer s1.Close()
	writeCommitted(t, s1, 0, 1, map[string][]byte{"app": []byte("solo")})
	if v, ok, _ := s1.LastCommitted(0); !ok || v != 1 {
		t.Fatalf("n=1 LastCommitted = %d,%v", v, ok)
	}

	// n=2: a single replica on the one neighbor still allows recovery.
	s2 := NewReplicatedStore(2)
	defer s2.Close()
	writeCommitted(t, s2, 0, 1, map[string][]byte{"app": []byte("pair")})
	s2.FailNode(0)
	snap, err := s2.Open(0, 1)
	if err != nil {
		t.Fatalf("n=2 recovery: %v", err)
	}
	snap.Close()
}

func TestReplicatedWithLatencyModelCommitIsDurable(t *testing.T) {
	// Even with replication latency, Commit must not return before the
	// fragments are acknowledged — recovery immediately after a commit plus
	// owner failure must succeed.
	s := NewReplicatedStore(4, WithReplicationLatency(
		transport.ConstantLatency(2*time.Millisecond, 0)))
	defer s.Close()
	writeCommitted(t, s, 1, 1, map[string][]byte{"app": []byte("durable")})
	s.FailNode(1)
	snap, err := s.Open(1, 1)
	if err != nil {
		t.Fatalf("commit returned before replication was durable: %v", err)
	}
	snap.Close()
}

func TestReplicatedManyFragments(t *testing.T) {
	s := NewReplicatedStore(5, WithFragments(7))
	defer s.Close()
	big := make([]byte, 10_000)
	for i := range big {
		big[i] = byte(i * 31)
	}
	writeCommitted(t, s, 3, 9, map[string][]byte{"heap": big, "tiny": {1}})
	s.FailNode(3)
	snap, err := s.Open(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	got, err := snap.ReadSection("heap")
	if err != nil || len(got) != len(big) {
		t.Fatalf("heap = %d bytes, %v", len(got), err)
	}
	for i := range got {
		if got[i] != big[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}
