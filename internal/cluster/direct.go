package cluster

import (
	"fmt"

	"c3/internal/mpi"
	"c3/internal/statesave"
)

// directComm adapts *mpi.Comm to the Comm interface with no protocol
// interposition: the "Original" configuration in the paper's overhead
// tables.
type directComm struct {
	c    *mpi.Comm
	reqs map[int]*mpi.Request
	next int
}

func newDirectComm(c *mpi.Comm) *directComm {
	return &directComm{c: c, reqs: make(map[int]*mpi.Request), next: 1}
}

func (d *directComm) Rank() int { return d.c.Rank() }
func (d *directComm) Size() int { return d.c.Size() }

func (d *directComm) Send(buf []byte, count int, dt *mpi.Datatype, dest, tag int) error {
	return d.c.Send(buf, count, dt, dest, tag)
}

func (d *directComm) SendBytes(data []byte, dest, tag int) error {
	return d.c.SendBytes(data, dest, tag)
}

func (d *directComm) Recv(buf []byte, count int, dt *mpi.Datatype, src, tag int) (mpi.Status, error) {
	return d.c.Recv(buf, count, dt, src, tag)
}

func (d *directComm) RecvBytes(buf []byte, src, tag int) (mpi.Status, error) {
	return d.c.RecvBytes(buf, src, tag)
}

func (d *directComm) Sendrecv(sendBuf []byte, sendCount int, sendType *mpi.Datatype, dest, sendTag int,
	recvBuf []byte, recvCount int, recvType *mpi.Datatype, src, recvTag int) (mpi.Status, error) {
	return d.c.Sendrecv(sendBuf, sendCount, sendType, dest, sendTag, recvBuf, recvCount, recvType, src, recvTag)
}

func (d *directComm) Probe(src, tag int) (mpi.Status, error) { return d.c.Probe(src, tag) }

func (d *directComm) Iprobe(src, tag int) (mpi.Status, bool, error) { return d.c.Iprobe(src, tag) }

func (d *directComm) track(r *mpi.Request) int {
	id := d.next
	d.next++
	d.reqs[id] = r
	return id
}

func (d *directComm) Isend(buf []byte, count int, dt *mpi.Datatype, dest, tag int) (int, error) {
	r, err := d.c.Isend(buf, count, dt, dest, tag)
	if err != nil {
		return 0, err
	}
	return d.track(r), nil
}

func (d *directComm) Irecv(buf []byte, count int, dt *mpi.Datatype, src, tag int) (int, error) {
	r, err := d.c.Irecv(buf, count, dt, src, tag)
	if err != nil {
		return 0, err
	}
	return d.track(r), nil
}

func (d *directComm) Wait(id int) (mpi.Status, error) {
	r, ok := d.reqs[id]
	if !ok {
		return mpi.Status{}, fmt.Errorf("cluster: wait on unknown request %d", id)
	}
	st, err := r.Wait()
	delete(d.reqs, id)
	return st, err
}

func (d *directComm) Test(id int) (mpi.Status, bool, error) {
	r, ok := d.reqs[id]
	if !ok {
		return mpi.Status{}, false, fmt.Errorf("cluster: test on unknown request %d", id)
	}
	st, done, err := r.Test()
	if done {
		delete(d.reqs, id)
	}
	return st, done, err
}

func (d *directComm) Waitall(ids []int) ([]mpi.Status, error) {
	sts := make([]mpi.Status, len(ids))
	for i, id := range ids {
		st, err := d.Wait(id)
		if err != nil {
			return sts, err
		}
		sts[i] = st
	}
	return sts, nil
}

func (d *directComm) Waitany(ids []int) (int, mpi.Status, error) {
	reqs := make([]*mpi.Request, len(ids))
	for i, id := range ids {
		reqs[i] = d.reqs[id]
	}
	idx, st, err := mpi.Waitany(reqs)
	if err != nil {
		return -1, st, err
	}
	if idx >= 0 {
		delete(d.reqs, ids[idx])
	}
	return idx, st, err
}

func (d *directComm) Barrier() error { return d.c.Barrier() }

func (d *directComm) Bcast(buf []byte, count int, dt *mpi.Datatype, root int) error {
	return d.c.Bcast(buf, count, dt, root)
}

func (d *directComm) Gather(sendBuf []byte, sendCount int, dt *mpi.Datatype, recvBuf []byte, root int) error {
	return d.c.Gather(sendBuf, sendCount, dt, recvBuf, sendCount, dt, root)
}

func (d *directComm) Scatter(sendBuf []byte, count int, dt *mpi.Datatype, recvBuf []byte, root int) error {
	return d.c.Scatter(sendBuf, count, dt, recvBuf, count, dt, root)
}

func (d *directComm) Allgather(sendBuf []byte, count int, dt *mpi.Datatype, recvBuf []byte) error {
	return d.c.Allgather(sendBuf, count, dt, recvBuf)
}

func (d *directComm) Alltoall(sendBuf []byte, count int, dt *mpi.Datatype, recvBuf []byte) error {
	return d.c.Alltoall(sendBuf, count, dt, recvBuf)
}

func (d *directComm) Alltoallv(sendBuf []byte, sendCounts, sendDispls []int, recvBuf []byte, recvCounts, recvDispls []int) error {
	return d.c.Alltoallv(sendBuf, sendCounts, sendDispls, recvBuf, recvCounts, recvDispls)
}

func (d *directComm) Reduce(sendBuf, recvBuf []byte, count int, dt *mpi.Datatype, op *mpi.Op, root int) error {
	return d.c.Reduce(sendBuf, recvBuf, count, dt, op, root)
}

func (d *directComm) Allreduce(sendBuf, recvBuf []byte, count int, dt *mpi.Datatype, op *mpi.Op) error {
	return d.c.Allreduce(sendBuf, recvBuf, count, dt, op)
}

func (d *directComm) Scan(sendBuf, recvBuf []byte, count int, dt *mpi.Datatype, op *mpi.Op) error {
	return d.c.Scan(sendBuf, recvBuf, count, dt, op)
}

// directEnv is the Env implementation without checkpointing. State is
// registered (so kernels run unmodified) but never saved; Checkpoint is a
// no-op.
type directEnv struct {
	comm  *directComm
	state *statesave.Registry
	heap  *statesave.Heap
	args  any
}

func (e *directEnv) Rank() int                  { return e.comm.Rank() }
func (e *directEnv) Size() int                  { return e.comm.Size() }
func (e *directEnv) World() Comm                { return e.comm }
func (e *directEnv) State() *statesave.Registry { return e.state }
func (e *directEnv) Heap() *statesave.Heap      { return e.heap }
func (e *directEnv) Restore() (bool, error)     { return false, nil }
func (e *directEnv) Checkpoint() error          { return nil }
func (e *directEnv) CheckpointNow() error       { return nil }
func (e *directEnv) Args() any                  { return e.args }
