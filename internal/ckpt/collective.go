package ckpt

import (
	"fmt"

	"c3/internal/mpi"
)

// Collective operations under the protocol (paper Section 4.3).
//
// The paper's approach is to "apply the base protocol to the start and end
// points of each individual communication stream within a collective
// operation". The wrapped collectives below realize that by running each
// collective as a fixed, deterministic topology of protocol-wrapped
// point-to-point streams on the communicator's collective plane: linear
// gather/scatter (matching Figure 7's per-stream classification at the
// root), a binomial tree for broadcast, dissemination for barrier, a rank
// chain for scan, and pairwise exchange for all-to-all. Every hop gets the
// full piggyback/classification/logging/suppression treatment, so a
// collective crossing a recovery line recovers stream-by-stream: processes
// whose call was before their line do not re-execute it, their outbound
// streams replay from the Late-Message-Registry, and re-sends into their
// pre-line state are suppressed via the Was-Early-Registry.
//
// The paper instead issues the native collective and reverts to
// point-to-point emulation only during recovery; in this reproduction the
// native collectives are built on the same point-to-point transport, so
// using one topology at all times exercises identical protocol logic while
// avoiding a native/emulated switch-over race (see DESIGN.md).
//
// Reduce follows the paper exactly: contributions travel to the root with
// an independent gather and the reduction is applied locally, so per-sender
// messages exist for the log ("we first send all data to the root node of
// the reduction using an independent MPI_Gather and then perform the actual
// reduction"). Allreduce reproduces the paper's result-logging mechanism:
// the operation runs on the native (opaque) implementation and, when the
// call crosses a recovery line, each post-line process logs the result and
// replays it during recovery.

// Reserved tags for the layer's collective streams (collective plane).
const (
	ctagBarrier = mpi.MaxUserTag + 101 + iota
	ctagBcast
	ctagGather
	ctagScatter
	ctagAllgather
	ctagAlltoall
	ctagReduce
	ctagScan
)

// Result-log kinds.
const (
	rkAllreduce uint8 = 1
)

// Barrier blocks until all ranks enter it, via dissemination rounds of
// wrapped point-to-point messages.
func (w *WComm) Barrier() error {
	l, c := w.l, w.c
	n, r := w.Size(), w.Rank()
	for k := 1; k < n; k <<= 1 {
		dst := (r + k) % n
		src := (r - k + n) % n
		if err := l.sendUser(c, nil, dst, ctagBarrier, true); err != nil {
			return err
		}
		if _, err := l.recvUser(c, 0, src, ctagBarrier, true); err != nil {
			return err
		}
	}
	return nil
}

// Bcast broadcasts count elements of dt from root along a binomial tree of
// wrapped streams.
func (w *WComm) Bcast(buf []byte, count int, dt *mpi.Datatype, root int) error {
	l, c := w.l, w.c
	n, r := w.Size(), w.Rank()
	vr := (r - root + n) % n
	var packed []byte
	if vr == 0 {
		var err error
		packed, err = dt.Pack(buf, count)
		if err != nil {
			return err
		}
	} else {
		parent := (parentOfVR(vr) + root) % n
		res, err := l.recvUser(c, count*dt.Size(), parent, ctagBcast, true)
		if err != nil {
			return err
		}
		if err := deliverPayload(res.payload, buf, dt); err != nil {
			return err
		}
		packed = append([]byte(nil), res.payload...)
	}
	for bit := 1; bit < n; bit <<= 1 {
		if vr&bit != 0 {
			break
		}
		child := vr | bit
		if child >= n {
			break
		}
		dst := (child + root) % n
		if err := l.sendUser(c, packed, dst, ctagBcast, true); err != nil {
			return err
		}
	}
	return nil
}

func parentOfVR(vr int) int { return vr & (vr - 1) }

// gatherStreams delivers each rank's packed contribution to root over
// wrapped streams with the given tag. At the root it returns payloads
// indexed by comm rank (the root's own contribution included); elsewhere it
// returns nil.
func (w *WComm) gatherStreams(packed []byte, root, tag int) ([][]byte, error) {
	l, c := w.l, w.c
	n, r := w.Size(), w.Rank()
	if r != root {
		return nil, l.sendUser(c, packed, root, tag, true)
	}
	out := make([][]byte, n)
	for q := 0; q < n; q++ {
		if q == r {
			out[q] = packed
			continue
		}
		res, err := l.recvUser(c, len(packed), q, tag, true)
		if err != nil {
			return nil, err
		}
		out[q] = res.payload
	}
	return out, nil
}

// Gather collects sendCount elements of dt from every rank into the root's
// recvBuf, ordered by rank.
func (w *WComm) Gather(sendBuf []byte, sendCount int, dt *mpi.Datatype, recvBuf []byte, root int) error {
	packed, err := dt.Pack(sendBuf, sendCount)
	if err != nil {
		return err
	}
	chunks, err := w.gatherStreams(packed, root, ctagGather)
	if err != nil || chunks == nil {
		return err
	}
	span := sendCount * dt.Extent()
	for q, chunk := range chunks {
		if err := deliverPayload(chunk, recvBuf[q*span:], dt); err != nil {
			return err
		}
	}
	return nil
}

// Scatter distributes per-rank chunks of count elements of dt from the
// root's sendBuf.
func (w *WComm) Scatter(sendBuf []byte, count int, dt *mpi.Datatype, recvBuf []byte, root int) error {
	l, c := w.l, w.c
	n, r := w.Size(), w.Rank()
	span := count * dt.Extent()
	if r == root {
		for q := 0; q < n; q++ {
			packed, err := dt.Pack(sendBuf[q*span:], count)
			if err != nil {
				return err
			}
			if q == r {
				if err := deliverPayload(packed, recvBuf, dt); err != nil {
					return err
				}
				continue
			}
			if err := l.sendUser(c, packed, q, ctagScatter, true); err != nil {
				return err
			}
		}
		return nil
	}
	res, err := l.recvUser(c, count*dt.Size(), root, ctagScatter, true)
	if err != nil {
		return err
	}
	return deliverPayload(res.payload, recvBuf, dt)
}

// Allgather collects count elements of dt from every rank into every rank's
// recvBuf: a gather to rank 0 followed by a broadcast, all wrapped.
func (w *WComm) Allgather(sendBuf []byte, count int, dt *mpi.Datatype, recvBuf []byte) error {
	l, c := w.l, w.c
	n, r := w.Size(), w.Rank()
	packed, err := dt.Pack(sendBuf, count)
	if err != nil {
		return err
	}
	chunk := count * dt.Size()
	all := make([]byte, n*chunk)
	chunks, err := w.gatherStreams(packed, 0, ctagAllgather)
	if err != nil {
		return err
	}
	if r == 0 {
		for q, ch := range chunks {
			copy(all[q*chunk:], ch)
		}
	}
	// Broadcast the concatenation down the tree (root 0).
	vr := r
	if vr != 0 {
		parent := parentOfVR(vr)
		res, err := l.recvUser(c, len(all), parent, ctagAllgather, true)
		if err != nil {
			return err
		}
		copy(all, res.payload)
	}
	for bit := 1; bit < n; bit <<= 1 {
		if vr&bit != 0 {
			break
		}
		child := vr | bit
		if child >= n {
			break
		}
		if err := l.sendUser(c, all, child, ctagAllgather, true); err != nil {
			return err
		}
	}
	span := count * dt.Extent()
	for q := 0; q < n; q++ {
		if err := deliverPayload(all[q*chunk:(q+1)*chunk], recvBuf[q*span:], dt); err != nil {
			return err
		}
	}
	return nil
}

// Alltoall exchanges fixed-size chunks of count elements of dt pairwise.
func (w *WComm) Alltoall(sendBuf []byte, count int, dt *mpi.Datatype, recvBuf []byte) error {
	l, c := w.l, w.c
	n, r := w.Size(), w.Rank()
	span := count * dt.Extent()
	for k := 0; k < n; k++ {
		dst := (r + k) % n
		packed, err := dt.Pack(sendBuf[dst*span:], count)
		if err != nil {
			return err
		}
		if dst == r {
			if err := deliverPayload(packed, recvBuf[dst*span:], dt); err != nil {
				return err
			}
			continue
		}
		if err := l.sendUser(c, packed, dst, ctagAlltoall, true); err != nil {
			return err
		}
	}
	for k := 1; k < n; k++ {
		src := (r - k + n) % n
		res, err := l.recvUser(c, count*dt.Size(), src, ctagAlltoall, true)
		if err != nil {
			return err
		}
		if err := deliverPayload(res.payload, recvBuf[src*span:], dt); err != nil {
			return err
		}
	}
	return nil
}

// Alltoallv exchanges variable-sized byte chunks; counts and displacements
// are in bytes.
func (w *WComm) Alltoallv(sendBuf []byte, sendCounts, sendDispls []int, recvBuf []byte, recvCounts, recvDispls []int) error {
	l, c := w.l, w.c
	n, r := w.Size(), w.Rank()
	if len(sendCounts) != n || len(sendDispls) != n || len(recvCounts) != n || len(recvDispls) != n {
		return fmt.Errorf("%w: alltoallv counts/displs length", mpi.ErrInvalid)
	}
	for k := 0; k < n; k++ {
		dst := (r + k) % n
		chunk := sendBuf[sendDispls[dst] : sendDispls[dst]+sendCounts[dst]]
		if dst == r {
			copy(recvBuf[recvDispls[dst]:recvDispls[dst]+recvCounts[dst]], chunk)
			continue
		}
		if err := l.sendUser(c, chunk, dst, ctagAlltoall, true); err != nil {
			return err
		}
	}
	for k := 1; k < n; k++ {
		src := (r - k + n) % n
		res, err := l.recvUser(c, recvCounts[src], src, ctagAlltoall, true)
		if err != nil {
			return err
		}
		copy(recvBuf[recvDispls[src]:recvDispls[src]+recvCounts[src]], res.payload)
	}
	return nil
}

// Reduce combines contributions with op at the root. Following the paper's
// Section 4.3, contributions are shipped to the root with an independent
// gather (providing the per-sender messages the log requires) and the
// reduction is performed locally, folding in ascending rank order.
func (w *WComm) Reduce(sendBuf, recvBuf []byte, count int, dt *mpi.Datatype, op *mpi.Op, root int) error {
	packed, err := dt.Pack(sendBuf, count)
	if err != nil {
		return err
	}
	chunks, err := w.gatherStreams(packed, root, ctagReduce)
	if err != nil || chunks == nil {
		return err
	}
	acc := append([]byte(nil), chunks[0]...)
	scratch := make([]byte, len(acc))
	for q := 1; q < len(chunks); q++ {
		copy(scratch, chunks[q])
		if err := op.Apply(acc, scratch, dt, count); err != nil {
			return err
		}
		acc, scratch = scratch, acc
	}
	return deliverPayload(acc, recvBuf, dt)
}

// Allreduce combines contributions with op and distributes the result. It
// reproduces the paper's mechanism for opaque collectives: the data moves
// through the native (unwrapped) MPI implementation, and when the call
// crosses a recovery line — detected by exchanging the minimum participant
// epoch — every post-line process logs the result and replays it during
// recovery, because the pre-line participants will not re-execute the call.
func (w *WComm) Allreduce(sendBuf, recvBuf []byte, count int, dt *mpi.Datatype, op *mpi.Op) error {
	l, c := w.l, w.c
	if l.err != nil {
		return l.err
	}
	if err := l.checkControl(); err != nil {
		return err
	}
	if l.mode == ModeRestore {
		if data, ok := l.results.Pop(rkAllreduce, c.CollCtx()); ok {
			l.stats.ResultsReplayed++
			l.maybeFinishRestore()
			return deliverPayload(data, recvBuf, dt)
		}
	}
	// The minimum epoch among the participants rides along in the same
	// collective round. A participant whose epoch exceeds the minimum is
	// post-line for a line some participant has not yet reached; its
	// re-execution could not re-communicate with the pre-line processes,
	// so it must log the result.
	minEpoch, err := c.AllreduceAux(sendBuf, recvBuf, count, dt, op, int64(l.epoch))
	if err != nil {
		return err
	}
	if uint64(minEpoch) < l.epoch {
		if !l.inPeriod() {
			return l.fatal(fmt.Errorf("ckpt: allreduce crossed a line but rank %d has no open checkpoint (mode %v)", l.rank, l.mode))
		}
		packed, err := dt.Pack(recvBuf, count)
		if err != nil {
			return err
		}
		l.results.Append(rkAllreduce, c.CollCtx(), packed)
		l.stats.ResultsLogged++
	}
	return nil
}

// Scan computes the inclusive prefix reduction over a rank chain of wrapped
// streams. The chain realizes the paper's observation that scan results are
// "either stored in the log or ... recomputed along this dependency chain
// based on the logged data": each hop is logged or replayed individually by
// the base protocol.
func (w *WComm) Scan(sendBuf, recvBuf []byte, count int, dt *mpi.Datatype, op *mpi.Op) error {
	l, c := w.l, w.c
	n, r := w.Size(), w.Rank()
	packed, err := dt.Pack(sendBuf, count)
	if err != nil {
		return err
	}
	acc := packed
	if r > 0 {
		res, err := l.recvUser(c, count*dt.Size(), r-1, ctagScan, true)
		if err != nil {
			return err
		}
		mine := append([]byte(nil), packed...)
		if err := op.Apply(res.payload, mine, dt, count); err != nil {
			return err
		}
		acc = mine
	}
	if r < n-1 {
		if err := l.sendUser(c, acc, r+1, ctagScan, true); err != nil {
			return err
		}
	}
	return deliverPayload(acc, recvBuf, dt)
}
