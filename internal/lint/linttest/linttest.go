// Package linttest runs c3lint analyzers over testdata fixture packages
// and checks reported diagnostics against // want "regex" comments — the
// same contract as x/tools' analysistest, reimplemented over the c3 loader.
//
// A fixture is one directory of .go files under internal/lint/testdata/src.
// Every line that should produce a diagnostic carries a trailing comment:
//
//	buf := make([]byte, n) // want "unclamped wire read"
//
// Multiple diagnostics on one line take multiple quoted regexps. Because
// fixtures run through the real driver, //c3lint:allow directives are
// honored, which is how the suppression protocol itself is tested.
//
// Analyzers that gate on the import path (c3determinism, c3commiterr) are
// tested by type-checking the fixture UNDER a governed import path via the
// asPath argument — the loader does not care that the directory lives in
// testdata.
package linttest

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"c3/internal/lint/analysis"
	"c3/internal/lint/driver"
	"c3/internal/lint/load"
)

var (
	loaderOnce sync.Once
	loaderDir  string // module root
)

// moduleRoot locates the enclosing module so fixtures can import real
// packages (c3/internal/wire) regardless of the test's working directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	loaderOnce.Do(func() {
		dir, err := os.Getwd()
		if err != nil {
			return
		}
		for ; dir != "/"; dir = filepath.Dir(dir) {
			if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
				loaderDir = dir
				return
			}
		}
	})
	if loaderDir == "" {
		t.Fatal("linttest: no enclosing go.mod found")
	}
	return loaderDir
}

// Run type-checks the fixture package in dir (relative to the module root,
// e.g. "internal/lint/testdata/src/wirecount") under import path asPath,
// applies the analyzers through the driver, and compares diagnostics
// against the fixture's want comments. It returns the driver result for
// assertions beyond want matching (suppression counts, dead directives).
func Run(t *testing.T, dir, asPath string, analyzers ...*analysis.Analyzer) *driver.Result {
	t.Helper()
	res, files := run(t, dir, asPath, analyzers)
	compare(t, files, res.Findings)
	return res
}

// RunRaw is Run without want-comment matching, for fixtures whose expected
// diagnostics are asserted directly on the Result — in particular the
// directive-misuse fixtures, where a trailing // want comment would be
// swallowed into the malformed //c3lint:allow comment under test.
func RunRaw(t *testing.T, dir, asPath string, analyzers ...*analysis.Analyzer) *driver.Result {
	t.Helper()
	res, _ := run(t, dir, asPath, analyzers)
	return res
}

func run(t *testing.T, dir, asPath string, analyzers []*analysis.Analyzer) (*driver.Result, []string) {
	t.Helper()
	root := moduleRoot(t)
	abs := filepath.Join(root, dir)
	entries, err := os.ReadDir(abs)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(abs, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no fixture files in %s", abs)
	}

	loader, err := load.New(root, "./...", "std")
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	pkg, err := loader.CheckFiles(asPath, abs, files)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("linttest: fixture type error: %v", terr)
	}

	res := driver.Run([]*load.Package{pkg}, analyzers)
	for _, e := range res.Errors {
		t.Errorf("linttest: analyzer error: %v", e)
	}
	return res, files
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Patterns may be double-quoted or backquoted (the latter avoids doubling
// backslashes in regexps), as in analysistest.
var quotedRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type key struct {
	file string
	line int
}

// compare checks findings against want comments, both keyed by file:line.
func compare(t *testing.T, files []string, findings []driver.Finding) {
	t.Helper()
	wants := make(map[key][]string)
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(lineText)
			if m == nil {
				continue
			}
			k := key{name, i + 1}
			for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
				pat := q[1]
				if pat == "" {
					pat = q[2]
				}
				wants[k] = append(wants[k], pat)
			}
		}
	}

	got := make(map[key][]string)
	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		got[k] = append(got[k], f.Message)
	}

	for k, patterns := range wants {
		for _, pat := range patterns {
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Errorf("%s:%d: bad want regexp %q: %v", k.file, k.line, pat, err)
				continue
			}
			if !matchAny(re, got[k]) {
				t.Errorf("%s:%d: no diagnostic matching %q (got %v)", rel(k.file), k.line, pat, got[k])
			}
		}
	}
	var keys []key
	for k := range got {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return keys[i].file < keys[j].file || keys[i].file == keys[j].file && keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, msg := range got[k] {
			if !wantCovers(wants[k], msg) {
				t.Errorf("%s:%d: unexpected diagnostic %q", rel(k.file), k.line, msg)
			}
		}
	}
}

func matchAny(re *regexp.Regexp, msgs []string) bool {
	for _, m := range msgs {
		if re.MatchString(m) {
			return true
		}
	}
	return false
}

func wantCovers(patterns []string, msg string) bool {
	for _, pat := range patterns {
		if re, err := regexp.Compile(pat); err == nil && re.MatchString(msg) {
			return true
		}
	}
	return false
}

func rel(path string) string {
	if i := strings.Index(path, "testdata/"); i >= 0 {
		return path[i:]
	}
	return path
}
