package main_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the c3lint binary into a temp dir and returns its path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "c3lint")
	cmd := exec.Command("go", "build", "-o", bin, "c3/cmd/c3lint")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build c3lint: %v\n%s", err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for ; dir != "/"; dir = filepath.Dir(dir) {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
	}
	t.Fatal("no enclosing go.mod")
	return ""
}

// TestStandaloneCleanTree: the repo itself must lint clean — that is the
// PR's own acceptance bar, and this test keeps it true for every future PR.
func TestStandaloneCleanTree(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = moduleRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("c3lint ./... failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "c3lint: clean") {
		t.Errorf("missing clean summary line:\n%s", out)
	}
}

// writeVictim lays down a throwaway module (no dependencies, so no network)
// containing src as its only package.
func writeVictim(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	gomod := "module victim\n\ngo 1.24\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "victim.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestVettoolProtocol drives the real `go vet -vettool` separate-compilation
// protocol end to end: a clean package passes, and an injected violation
// (a channel send under a held mutex) fails the vet run with our message —
// the same failure mode the CI lint job relies on.
func TestVettoolProtocol(t *testing.T) {
	bin := buildTool(t)

	clean := writeVictim(t, `package victim

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) bump() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = clean
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on clean package: %v\n%s", err, out)
	}

	dirty := writeVictim(t, `package victim

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
}

func (b *box) leak() {
	b.mu.Lock()
	b.ch <- 1
	b.mu.Unlock()
}
`)
	cmd = exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dirty
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool accepted an injected violation:\n%s", out)
	}
	if !bytes.Contains(out, []byte("channel send while b.mu is held")) {
		t.Errorf("vet failed but without the c3lockblock diagnostic:\n%s", out)
	}
}
