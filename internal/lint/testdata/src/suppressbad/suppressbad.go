// Fixture for malformed //c3lint:allow directives. Run without want
// matching (linttest.RunRaw): a trailing // want comment would be swallowed
// into the directive comment under test, so the expectations live in the
// driver test instead.
package stable

type db2 struct{}

func (db2) Sync() error { return nil }

// Missing reason: the directive is itself a finding AND suppresses nothing,
// so the Sync finding surfaces too.
func missingReason(d db2) {
	d.Sync() //c3lint:allow commiterr
}

// Unknown analyzer name: directive finding + unsuppressed Sync finding.
func unknownAnalyzer(d db2) {
	d.Sync() //c3lint:allow nosuchpass because reasons
}

// No analyzer at all.
func nameless(d db2) {
	d.Sync() //c3lint:allow
}

// Valid directive that suppresses nothing: reported as dead, not silently
// accepted — stale escapes must stay visible.
func deadDirective(d db2) error {
	//c3lint:allow commiterr fixture: suppresses nothing, must surface as dead
	return d.Sync()
}
