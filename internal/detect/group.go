package detect

// Two-level (grouped) failure detection. With Options.GroupSize g > 1 the
// detector replaces the flat O(world) heartbeat-and-lease mesh with the
// member.Topology's checkpoint groups:
//
//   - Heartbeats and phi monitors run on the intra-group ring (±1/±2 of the
//     group-local member set), and lease pings stay inside the group — the
//     per-rank steady-state send rate drops from O(world) to O(g).
//   - Each group has a runtime delegate: its lowest live, non-suspected
//     member, computed locally by every rank from its own view (the
//     epoch-static designation is Topology.Delegate; the runtime rule skips
//     dead and suspected slots so a delegate's death promotes the next
//     member without an epoch). Delegates send periodic reports — the live
//     set of their group plus their per-group live counts — to the other
//     groups' delegates and to their own group. Reports are the cross-group
//     contact evidence: a group whose report goes stale past the lease is
//     suspected wholesale by the other delegates, which is how a
//     correlated whole-group loss (the cross-group parity shard's reason to
//     exist) is detected without any rank monitoring O(world) peers.
//   - Suspicion gossip fans out to the group plus the delegates —
//     O(g + world/g) targets per suspicion instead of O(world). Non-
//     delegates hold no cross-group suspicions at all: the exonerating
//     evidence (the victim group's reports) only reaches delegates, so a
//     non-delegate adopting cross-group gossip could never clear it.
//   - The epoch agreement relays through delegates: the coordinator sends
//     one propose per remote group to its delegate, the delegate
//     re-broadcasts it to the group and aggregates the group's acks into a
//     single cumulative ack-agg back to the coordinator. Propose/ack
//     traffic at the coordinator is O(world/g + g) per round instead of
//     O(world). Retransmission re-picks delegates each tick, so a delegate
//     dying mid-agreement only redirects the relay.
//
// With GroupSize <= 1 (or >= world) the topology is flat and every code
// path below degenerates to the pre-grouping behavior.

import (
	"sort"
	"time"

	"c3/internal/member"
	"c3/internal/trace"
)

// aggKey identifies one relayed agreement a delegate aggregates acks for.
type aggKey struct {
	epoch uint64
	seq   uint64
}

// aggState is a delegate's cumulative ack collection for one relayed
// proposal: the coordinator it reports to and the group votes seen so far.
type aggState struct {
	origin int
	acked  map[int]bool
}

// groupedLocked reports whether two-level topology is active. Callers hold
// d.mu.
func (d *Detector) groupedLocked() bool {
	return !d.topo.Flat()
}

// retopoLocked recomputes the topology after a membership change and
// resets the per-group report freshness: every group starts with a fresh
// lease and its full non-dead strength, the same startup grace the
// per-rank contact leases get — evidence, not silence, must change it.
// Callers hold d.mu.
func (d *Detector) retopoLocked(now time.Time) {
	d.topo = member.NewTopology(d.members, d.groupSize)
	ng := d.topo.NumGroups()
	d.gHeard = make([]time.Time, ng)
	d.gCount = make([]int, ng)
	for gid := 0; gid < ng; gid++ {
		d.gHeard[gid] = now
		n := 0
		for _, r := range d.topo.GroupMembers(gid) {
			if !d.dead[r] {
				n++
			}
		}
		d.gCount[gid] = n
	}
}

// monitorWantedLocked returns the ranks this rank phi-monitors: its two
// ring successors — on the group-local ring when grouped, the full member
// ring when flat. Callers hold d.mu.
func (d *Detector) monitorWantedLocked() []int {
	if d.groupedLocked() {
		return d.topo.GroupSuccessors(d.self, 2)
	}
	return d.members.Successors(d.self, 2)
}

// hbTargetsLocked returns the predecessors that monitor this rank (the
// heartbeat targets). Callers hold d.mu.
func (d *Detector) hbTargetsLocked() []int {
	if d.groupedLocked() {
		return d.topo.GroupPredecessors(d.self, 2)
	}
	return d.members.Predecessors(d.self, 2)
}

// delegateOfLocked returns group gid's runtime delegate — its lowest
// member that is neither dead nor suspected in this rank's view — or -1
// when the whole group is down. Callers hold d.mu.
func (d *Detector) delegateOfLocked(gid int) int {
	for _, r := range d.topo.GroupMembers(gid) {
		if d.dead[r] {
			continue
		}
		if _, susp := d.suspected[r]; susp {
			continue
		}
		return r
	}
	return -1
}

// amDelegateLocked reports whether this rank is currently its own group's
// runtime delegate. Callers hold d.mu.
func (d *Detector) amDelegateLocked() bool {
	return d.groupedLocked() && d.delegateOfLocked(d.topo.GroupOf(d.self)) == d.self
}

// gossipTargetsLocked returns where suspicion (and drain) gossip goes:
// every live member when flat; the live group plus the other groups'
// runtime delegates when grouped — the O(g + world/g) fan-out bound the
// two-level design rests on. Callers hold d.mu.
func (d *Detector) gossipTargetsLocked(skip []int) []int {
	if !d.groupedLocked() {
		return d.liveExceptLocked(skip)
	}
	skipSet := make(map[int]bool, len(skip))
	for _, s := range skip {
		skipSet[s] = true
	}
	seen := make(map[int]bool)
	var out []int
	add := func(r int) {
		if r < 0 || r == d.self || seen[r] || d.dead[r] || skipSet[r] {
			return
		}
		if _, susp := d.suspected[r]; susp {
			return
		}
		seen[r] = true
		out = append(out, r)
	}
	ownGid := d.topo.GroupOf(d.self)
	for _, r := range d.topo.GroupMembers(ownGid) {
		add(r)
	}
	for gid := 0; gid < d.topo.NumGroups(); gid++ {
		if gid != ownGid {
			add(d.delegateOfLocked(gid))
		}
	}
	sort.Ints(out)
	return out
}

// routeLocked picks the intermediate hop for a detector send: -1 for a
// direct send, or the destination group's runtime delegate when this world
// is grouped, a relay is wired, and the destination is a non-delegate
// outside this rank's group — keeping every rank's connection graph at
// O(g + world/g) peers. Callers hold d.mu.
func (d *Detector) routeLocked(to int) int {
	if d.relay == nil || !d.groupedLocked() || !d.members.Contains(to) {
		return -1
	}
	gid := d.topo.GroupOf(to)
	if gid == d.topo.GroupOf(d.self) {
		return -1
	}
	via := d.delegateOfLocked(gid)
	if via < 0 || via == to || via == d.self {
		return -1
	}
	return via
}

// groupTickLocked runs the per-tick grouped-mode duties: delegate-role
// transitions, whole-group staleness suspicion, and report emission. It
// returns the report payload and its targets (nil when no report is due
// this tick); the caller sends them after releasing d.mu, and appends the
// returned fresh suspicions to its gossip bookkeeping. Callers hold d.mu.
func (d *Detector) groupTickLocked(now time.Time) (report payload, targets []int, groupSuspects []int) {
	if !d.groupedLocked() {
		return nil, nil, nil
	}
	amDel := d.amDelegateLocked()
	if amDel != d.wasDelegate {
		d.wasDelegate = amDel
		role := uint64(0)
		if amDel {
			role = 1
		}
		trace.Default().Emit(int32(d.self), trace.KindGroup, 0,
			uint64(d.topo.GroupOf(d.self))<<32|role)
	}
	if !amDel {
		return nil, nil, nil
	}
	ownGid := d.topo.GroupOf(d.self)
	ng := d.topo.NumGroups()
	// Whole-group suspicion: a remote group silent past the lease — no
	// report from any of its members — is suspected wholesale. Its interior
	// ranks have no surviving monitors (their own group died with them), so
	// report staleness is the only evidence that covers them.
	for gid := 0; gid < ng; gid++ {
		if gid == ownGid || now.Sub(d.gHeard[gid]) <= d.lease {
			continue
		}
		fresh := false
		for _, r := range d.topo.GroupMembers(gid) {
			if d.dead[r] {
				continue
			}
			if _, already := d.suspected[r]; already {
				continue
			}
			d.suspectLocked(r, now)
			groupSuspects = append(groupSuspects, r)
			fresh = true
		}
		if fresh {
			trace.Default().Emit(int32(d.self), trace.KindGroup, 0, uint64(gid)<<32|2)
		}
	}
	if now.Sub(d.lastReport) < d.lease/3 {
		return nil, nil, groupSuspects
	}
	d.lastReport = now
	// The report: this group's live set (positive cross-group evidence) and
	// the per-group live counts this delegate believes (the world view its
	// own group members fence against).
	var live []int
	for _, r := range d.topo.GroupMembers(ownGid) {
		if d.dead[r] {
			continue
		}
		if _, susp := d.suspected[r]; susp && r != d.self {
			continue
		}
		live = append(live, r)
	}
	groups := make([]int, ng)
	for gid := 0; gid < ng; gid++ {
		switch {
		case gid == ownGid:
			groups[gid] = len(live)
		case now.Sub(d.gHeard[gid]) <= d.lease:
			groups[gid] = d.gCount[gid]
		}
	}
	for _, r := range live {
		if r != d.self {
			targets = append(targets, r)
		}
	}
	for gid := 0; gid < ng; gid++ {
		if gid == ownGid {
			continue
		}
		via := d.delegateOfLocked(gid)
		if via < 0 {
			// Whole group suspected: fall back to its lowest non-dead member,
			// so a falsely-suspected (partitioned-off) group still receives
			// our reports — the positive contact evidence both sides need to
			// heal. A truly dead group just drops the frame.
			for _, r := range d.topo.GroupMembers(gid) {
				if !d.dead[r] {
					via = r
					break
				}
			}
		}
		if via >= 0 {
			targets = append(targets, via)
		}
	}
	return encodeReport(d.epoch, groups, live), targets, groupSuspects
}

// handleReport ingests a delegate report. A report from another group is
// that group's contact-lease renewal: its live list exonerates any of its
// members this rank still suspected (the group's own delegate has the best
// evidence about them). A report from this rank's own delegate carries the
// cross-group live counts a non-delegate cannot observe itself.
func (d *Detector) handleReport(from int, epoch uint64, groups, live []int) {
	now := d.clock()
	d.mu.Lock()
	if !d.groupedLocked() || !d.members.Contains(from) {
		d.mu.Unlock()
		return
	}
	ng := d.topo.NumGroups()
	fromGid := d.topo.GroupOf(from)
	ownGid := d.topo.GroupOf(d.self)
	var cleared []int
	if fromGid != ownGid {
		d.gHeard[fromGid] = now
		d.gCount[fromGid] = len(live)
		for _, r := range live {
			if d.topo.GroupOf(r) != fromGid || d.dead[r] {
				continue
			}
			if _, susp := d.suspected[r]; susp {
				delete(d.suspected, r)
				cleared = append(cleared, r)
			}
		}
	} else if len(groups) == ng {
		// Our delegate's world view: adopt its fresh cross-group counts.
		for gid := 0; gid < ng; gid++ {
			if gid != ownGid && gid != fromGid && groups[gid] > 0 {
				d.gCount[gid] = groups[gid]
				d.gHeard[gid] = now
			}
		}
	}
	fence := d.refenceLocked()
	d.mu.Unlock()
	if fence != nil {
		fence()
	}
	for _, r := range cleared {
		d.logf("rank %d: suspicion of rank %d cleared by its group's report", d.self, r)
	}
	d.reconcileEpoch(from, epoch)
}

// handleProposeRly processes a delegate-relayed proposal. hops=1 means
// this rank is the relay: adopt, re-broadcast with hops=0 to the group,
// and start (or extend) the cumulative ack aggregate toward the
// coordinator. hops=0 means a fellow group member relayed it here: adopt
// and ack to the relaying delegate, which folds the vote into its
// aggregate.
func (d *Detector) handleProposeRly(from int, epoch, seq uint64, origin int, hops uint8, dead, members []int) {
	for _, r := range dead {
		if r == d.self {
			d.send(origin, encodePing(d.Epoch()))
			return
		}
	}
	if !d.adoptPropose(origin, epoch, dead, members) {
		return
	}
	if hops == 0 {
		d.send(from, encodeAck(epoch, seq))
		return
	}
	d.mu.Lock()
	var fwd []int
	if d.groupedLocked() {
		for _, r := range d.topo.GroupMembers(d.topo.GroupOf(d.self)) {
			if r == d.self || d.dead[r] {
				continue
			}
			if _, susp := d.suspected[r]; susp {
				continue
			}
			fwd = append(fwd, r)
		}
	}
	key := aggKey{epoch: epoch, seq: seq}
	agg := d.relayAgg[key]
	if agg == nil || agg.origin != origin {
		agg = &aggState{origin: origin, acked: make(map[int]bool)}
		d.relayAgg[key] = agg
	}
	agg.acked[d.self] = true
	ranks := setToSlice(agg.acked)
	d.mu.Unlock()
	msg := encodeProposeRly(epoch, seq, origin, 0, dead, members)
	for _, t := range fwd {
		d.send(t, msg)
	}
	d.send(origin, encodeAckAgg(epoch, seq, ranks))
}

// handleAckAgg folds a delegate's cumulative group votes into the
// coordinator's in-flight proposal.
func (d *Detector) handleAckAgg(from int, epoch, seq uint64, ranks []int) {
	d.mu.Lock()
	p := d.prop
	if p == nil || p.epoch != epoch || p.seq != seq {
		d.mu.Unlock()
		return
	}
	for _, r := range ranks {
		if p.pending[r] {
			delete(p.pending, r)
			p.acked[r] = true
		}
	}
	ready := 1+len(p.acked) >= d.quorum()
	d.mu.Unlock()
	if ready {
		d.commitProposal(p)
	}
}

// handleCommitRly applies a relayed commit and re-broadcasts it to this
// rank's group under the membership the commit installs. Forwarding only
// happens when the commit actually advanced this rank's epoch — an already
// known epoch means the group has been (or is being) told already.
func (d *Detector) handleCommitRly(from int, epoch uint64, dead, members []int) {
	if epoch <= d.Epoch() {
		return
	}
	d.applyEpoch(epoch, dead, members, "relayed commit")
	d.mu.Lock()
	if d.epoch != epoch || !d.groupedLocked() {
		d.mu.Unlock()
		return
	}
	var fwd []int
	for _, r := range d.topo.GroupMembers(d.topo.GroupOf(d.self)) {
		if r != d.self && !d.dead[r] {
			fwd = append(fwd, r)
		}
	}
	d.mu.Unlock()
	msg := encodeCommit(epoch, dead, members)
	for _, t := range fwd {
		d.send(t, msg)
	}
}
