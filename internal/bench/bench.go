// Package bench is the experiment harness: it regenerates every table in
// the paper's evaluation (Section 6) from the reproduced system. One
// function per paper table builds the same rows and columns the paper
// reports; cmd/c3bench prints them, bench_test.go wraps them in testing.B
// benchmarks, and EXPERIMENTS.md records the paper-vs-measured comparison.
package bench

import (
	"fmt"
	"strings"
	"time"

	"c3/internal/apps"
	"c3/internal/cluster"
	"c3/internal/transport"
)

// Table is a formatted experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteString("\n")
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(fmt.Sprintf("%-*s", widths[i], c))
		}
		sb.WriteString("\n")
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: ")
		sb.WriteString(n)
		sb.WriteString("\n")
	}
	return sb.String()
}

// Options configures the experiment sweeps.
type Options struct {
	// Class selects problem sizes (S for smoke runs, W for benchmarks).
	Class apps.Class
	// Ranks is the processor-count sweep for the parallel tables.
	Ranks []int
	// Kernels restricts which benchmarks run; nil means the paper's set
	// for each table.
	Kernels []string
	// Latency, when true, applies the "Velocity 2"-style interconnect
	// profile (per-message latency + finite bandwidth) instead of the
	// "Lemieux"-style zero-added-latency profile.
	Latency bool
	// Repetitions averages timing runs.
	Repetitions int
	// DiskDir is where Configuration #3 checkpoints are written; empty
	// means a temporary directory.
	DiskDir string
}

func (o Options) reps() int {
	if o.Repetitions <= 0 {
		return 1
	}
	return o.Repetitions
}

func (o Options) class() apps.Class {
	if o.Class == "" {
		return apps.ClassW
	}
	return o.Class
}

func (o Options) ranks() []int {
	if len(o.Ranks) == 0 {
		return []int{4, 8, 16}
	}
	return o.Ranks
}

func (o Options) kernels(def []string) []string {
	if len(o.Kernels) > 0 {
		return o.Kernels
	}
	return def
}

func (o Options) transport() []transport.Option {
	if !o.Latency {
		return nil
	}
	// Gigabit-Ethernet-like profile relative to the in-process "Quadrics":
	// fixed per-message latency plus ~100 MB/s of bandwidth. The latency is
	// set high enough (200us) that the OS sleep granularity does not
	// distort it.
	return []transport.Option{transport.WithLatency(
		transport.ConstantLatency(200*time.Microsecond, 100e6))}
}

// runKernel executes one kernel configuration and returns the wall time of
// the successful attempt.
func runKernel(k *apps.Kernel, p apps.Params, cfg cluster.Config) (time.Duration, *cluster.Result, error) {
	out := apps.NewOutput()
	cfg.App = k.App(p, out)
	res, err := cluster.Run(cfg)
	if err != nil {
		return 0, nil, err
	}
	return res.LastAttemptElapsed, res, nil
}

func pct(over, base time.Duration) string {
	if base <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(over-base)/float64(base))
}

func secs(d time.Duration) string {
	return fmt.Sprintf("%.4f", d.Seconds())
}

func mbs(b int64) string {
	return fmt.Sprintf("%.2f", float64(b)/(1<<20))
}

// medianOf runs fn rep times and returns the median duration.
func medianOf(reps int, fn func() (time.Duration, error)) (time.Duration, error) {
	ds := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		d, err := fn()
		if err != nil {
			return 0, err
		}
		ds = append(ds, d)
	}
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return ds[len(ds)/2], nil
}
