// Command c3node runs the reproduction as a real multi-process cluster:
// one OS process per rank, TCP between ranks, and real SIGKILL as the
// failure injector. The same binary is both the launcher (default) and the
// per-rank worker (-worker, spawned by re-exec), mirroring how an MPI
// launcher re-executes its own image on every node.
//
// Usage:
//
//	c3node -ranks 4 -kernel CG -class S -every 3
//	    launch 4 worker processes over TCP with the diskless replicated
//	    store and run CG to completion
//
//	c3node -ranks 4 -kernel CG -class S -every 3 -kill rank=1,at=5,after=1
//	    additionally SIGKILL rank 1's process at its 5th pragma once it has
//	    started at least one checkpoint (mid-logging-phase); the dead rank
//	    is re-executed, reassembles its checkpoints from its +1/+2
//	    neighbors over TCP, and the world recovers from the last committed
//	    recovery line
//
//	c3node -ranks 4 -kernel LU -store /tmp/ckpts ...
//	    use a shared-directory disk store instead of the diskless
//	    replicated store
//
// The launcher's final line, "checksums=[...]", is identical between a
// failure-free run and a run that survived a SIGKILL — the convergence
// check the CI smoke job performs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"c3/internal/apps"
	"c3/internal/ckpt"
	"c3/internal/cluster"
)

func main() {
	if hasFlag("-worker") {
		workerMain()
		return
	}
	launcherMain()
}

func hasFlag(name string) bool {
	for _, a := range os.Args[1:] {
		if a == name || a == name+"=true" || strings.TrimPrefix(a, "-") == strings.TrimPrefix(name, "-") {
			return true
		}
	}
	return false
}

// parseKill parses "rank=R,at=P[,after=K]".
func parseKill(s string) (*cluster.FailureSpec, error) {
	if s == "" {
		return nil, nil
	}
	spec := &cluster.FailureSpec{AtPragma: 1}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("malformed kill spec component %q", part)
		}
		v, err := strconv.Atoi(kv[1])
		if err != nil {
			return nil, fmt.Errorf("kill spec %q: %w", part, err)
		}
		switch kv[0] {
		case "rank":
			spec.Rank = v
		case "at":
			spec.AtPragma = v
		case "after":
			spec.AfterCheckpoints = v
		default:
			return nil, fmt.Errorf("unknown kill spec key %q", kv[0])
		}
	}
	return spec, nil
}

func launcherMain() {
	var (
		ranks    = flag.Int("ranks", 4, "number of ranks (one process each)")
		kernel   = flag.String("kernel", "CG", "kernel to run (see c3run -list)")
		class    = flag.String("class", "S", "problem class: S, W, or A")
		every    = flag.Int("every", 3, "take a checkpoint every N pragmas")
		async    = flag.Bool("async", false, "asynchronous commit pipeline")
		kill     = flag.String("kill", "", "failure spec rank=R,at=P[,after=K]: SIGKILL that rank's process at that pragma")
		storeDir = flag.String("store", "", "shared checkpoint directory (default: diskless replicated store over TCP)")
		verbose  = flag.Bool("v", false, "log launcher progress to stderr")
	)
	flag.Parse()

	if _, ok := apps.Lookup(*kernel); !ok {
		fatalf("unknown kernel %q (use c3run -list)", *kernel)
	}
	killSpec, err := parseKill(*kill)
	if err != nil {
		fatalf("%v", err)
	}

	cfg := cluster.LaunchConfig{
		Ranks: *ranks,
		Disk:  *storeDir != "",
		Args: func(rank int, mpiAddrs, replAddrs []string) []string {
			args := []string{
				"-worker",
				"-rank", strconv.Itoa(rank),
				"-ranks", strconv.Itoa(*ranks),
				"-peers", strings.Join(mpiAddrs, ","),
				"-kernel", *kernel,
				"-class", *class,
				"-every", strconv.Itoa(*every),
			}
			if *async {
				args = append(args, "-async")
			}
			if *storeDir != "" {
				args = append(args, "-store", *storeDir)
			} else {
				args = append(args, "-repl-peers", strings.Join(replAddrs, ","))
			}
			if killSpec != nil && killSpec.Rank == rank {
				args = append(args, "-kill", *kill)
			}
			return args
		},
	}
	if *verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "c3node: "+format+"\n", args...)
		}
	}

	res, err := cluster.Launch(cfg)
	if err != nil {
		fatalf("launch: %v", err)
	}
	fmt.Printf("kernel %s class %s on %d processes: %d attempt(s), %d re-exec(s)\n",
		*kernel, *class, *ranks, res.Attempts, res.Restarts)
	sums := make([]string, *ranks)
	for r := 0; r < *ranks; r++ {
		sums[r] = res.Results[r]
		fmt.Printf("  rank %d checksum: %s\n", r, sums[r])
	}
	fmt.Printf("checksums=[%s]\n", strings.Join(sums, ","))
}

func workerMain() {
	fs := flag.NewFlagSet("c3node-worker", flag.ExitOnError)
	var (
		_         = fs.Bool("worker", true, "worker mode (internal)")
		rank      = fs.Int("rank", 0, "this process's rank")
		ranks     = fs.Int("ranks", 1, "world size")
		peers     = fs.String("peers", "", "comma-separated MPI-plane addresses, one per rank")
		replPeers = fs.String("repl-peers", "", "comma-separated replication-plane addresses")
		kernel    = fs.String("kernel", "CG", "kernel to run")
		class     = fs.String("class", "S", "problem class")
		every     = fs.Int("every", 3, "checkpoint every N pragmas")
		async     = fs.Bool("async", false, "asynchronous commit pipeline")
		kill      = fs.String("kill", "", "failure spec for this rank")
		storeDir  = fs.String("store", "", "shared checkpoint directory")
	)
	_ = fs.Parse(os.Args[1:])

	k, ok := apps.Lookup(*kernel)
	if !ok {
		fatalf("worker: unknown kernel %q", *kernel)
	}
	p := k.Defaults(apps.Class(*class))
	out := apps.NewOutput()
	killSpec, err := parseKill(*kill)
	if err != nil {
		fatalf("worker: %v", err)
	}

	nc := cluster.NodeConfig{
		Rank:     *rank,
		Ranks:    *ranks,
		MPIAddrs: splitAddrs(*peers),
		App:      k.App(p, out),
		Policy:   ckpt.Policy{EveryNthPragma: *every, AsyncCommit: *async},
		Kill:     killSpec,
		In:       os.Stdin,
		Out:      os.Stdout,
		Result: func() string {
			v, ok := out.Checksum(*rank)
			if !ok {
				return "?"
			}
			return strconv.FormatFloat(v, 'x', -1, 64)
		},
	}
	if *storeDir != "" {
		nc.StorePath = *storeDir
	} else {
		nc.ReplAddrs = splitAddrs(*replPeers)
	}
	if os.Getenv("C3NODE_TRACE") != "" {
		nc.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "c3node-worker: "+format+"\n", args...)
		}
	}
	if err := cluster.RunNode(nc); err != nil {
		fatalf("worker rank %d: %v", *rank, err)
	}
}

func splitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "c3node: "+format+"\n", args...)
	os.Exit(1)
}
