package member

import (
	"reflect"
	"testing"
)

// legacyShardHolder is the fixed-world placement formula the stable store
// used before membership became a runtime variable. The ring-generalized
// ShardHolder must reduce to it exactly when the members are 0..n-1, or
// every committed line would silently change holders on upgrade.
func legacyShardHolder(owner, idx, shards, n int) int {
	span := shards
	if span > n-1 {
		span = n - 1
	}
	pos := (idx + owner) % shards % span
	return (owner + 1 + pos) % n
}

func TestLaunch(t *testing.T) {
	s := Launch(4)
	if s.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", s.Epoch())
	}
	if got := s.Members(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("members = %v", got)
	}
	if s.Quorum() != 3 {
		t.Fatalf("quorum = %d, want 3", s.Quorum())
	}
}

func TestNewSortsAndDedupes(t *testing.T) {
	s := New(7, []int{5, 1, 3, 1, 5})
	if got := s.Members(); !reflect.DeepEqual(got, []int{1, 3, 5}) {
		t.Fatalf("members = %v", got)
	}
	if s.Epoch() != 7 {
		t.Fatalf("epoch = %d", s.Epoch())
	}
}

func TestIndexContains(t *testing.T) {
	s := New(1, []int{0, 2, 5})
	if !s.Contains(2) || s.Contains(3) {
		t.Fatal("Contains wrong")
	}
	if i, ok := s.Index(5); !ok || i != 2 {
		t.Fatalf("Index(5) = %d,%v", i, ok)
	}
	if _, ok := s.Index(4); ok {
		t.Fatal("Index(4) should miss")
	}
}

func TestShardHolderReducesToLegacy(t *testing.T) {
	for n := 2; n <= 9; n++ {
		s := Launch(n)
		for shards := 1; shards <= 8; shards++ {
			for owner := 0; owner < n; owner++ {
				for idx := 0; idx < shards; idx++ {
					got := s.ShardHolder(owner, idx, shards)
					want := legacyShardHolder(owner, idx, shards, n)
					if got != want {
						t.Fatalf("n=%d shards=%d owner=%d idx=%d: got %d want %d",
							n, shards, owner, idx, got, want)
					}
				}
			}
		}
	}
}

func TestShardHolderNeverOwner(t *testing.T) {
	s := New(1, []int{0, 2, 3, 6, 7})
	for _, owner := range s.Members() {
		for shards := 1; shards <= 8; shards++ {
			if s.Size() < 2 {
				continue
			}
			for idx := 0; idx < shards; idx++ {
				if h := s.ShardHolder(owner, idx, shards); h == owner {
					t.Fatalf("owner %d holds own shard %d/%d", owner, idx, shards)
				}
			}
		}
	}
}

func TestShardPlanDistinctHolders(t *testing.T) {
	// With at least shards+1 members every shard gets its own holder.
	s := New(1, []int{1, 2, 4, 5, 8, 9, 10})
	holderOf, holders := s.ShardPlan(4, 6)
	if len(holders) != 6 {
		t.Fatalf("holders = %v, want 6 distinct", holders)
	}
	seen := map[int]bool{}
	for _, h := range holderOf {
		if !s.Contains(h) {
			t.Fatalf("holder %d not a member", h)
		}
		seen[h] = true
	}
	if len(seen) != 6 {
		t.Fatalf("holderOf %v not distinct", holderOf)
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	s := New(1, []int{0, 2, 5, 7})
	if got := s.Successors(2, 2); !reflect.DeepEqual(got, []int{5, 7}) {
		t.Fatalf("Successors(2,2) = %v", got)
	}
	if got := s.Successors(7, 3); !reflect.DeepEqual(got, []int{0, 2, 5}) {
		t.Fatalf("Successors(7,3) = %v", got)
	}
	if got := s.Predecessors(0, 2); !reflect.DeepEqual(got, []int{7, 5}) {
		t.Fatalf("Predecessors(0,2) = %v", got)
	}
	// More than size-1 requested: capped, self excluded.
	if got := s.Successors(0, 10); !reflect.DeepEqual(got, []int{2, 5, 7}) {
		t.Fatalf("Successors(0,10) = %v", got)
	}
}

func TestSuccessorsOfNonMember(t *testing.T) {
	s := New(1, []int{0, 2, 5, 7})
	// A joining slot 3 should start its walk at the first member after it.
	if got := s.Successors(3, 2); !reflect.DeepEqual(got, []int{5, 7}) {
		t.Fatalf("Successors(3,2) = %v", got)
	}
	if got := s.Successors(9, 2); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Successors(9,2) = %v", got)
	}
	if got := s.Predecessors(3, 2); !reflect.DeepEqual(got, []int{2, 0}) {
		t.Fatalf("Predecessors(3,2) = %v", got)
	}
}

func TestJoinRemoveDerivation(t *testing.T) {
	s := Launch(4)
	g := s.WithJoined(3, 5, 4)
	if got := g.Members(); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("grown members = %v", got)
	}
	if g.Epoch() != 3 {
		t.Fatalf("grown epoch = %d", g.Epoch())
	}
	if g.Quorum() != 4 {
		t.Fatalf("grown quorum = %d, want 4", g.Quorum())
	}
	sh := g.WithRemoved(5, 4, 5)
	if !sh.SameMembers(s) {
		t.Fatalf("shrunk members = %v", sh.Members())
	}
	if sh.Epoch() != 5 {
		t.Fatalf("shrunk epoch = %d", sh.Epoch())
	}
	// Immutability: the originals are untouched.
	if s.Size() != 4 || g.Size() != 6 {
		t.Fatal("derivation mutated its input")
	}
}

func TestEqualAndWithEpoch(t *testing.T) {
	a := Launch(3)
	b := a.WithEpoch(4)
	if a.Equal(b) {
		t.Fatal("different epochs should not be Equal")
	}
	if !a.SameMembers(b) {
		t.Fatal("SameMembers should hold")
	}
	if !b.Equal(New(4, []int{0, 1, 2})) {
		t.Fatal("Equal should hold")
	}
}

func TestMaxAndEmpty(t *testing.T) {
	var z Set
	if z.Max() != -1 || z.Size() != 0 || z.Quorum() != 1 {
		t.Fatalf("zero set: max=%d size=%d quorum=%d", z.Max(), z.Size(), z.Quorum())
	}
	if got := New(1, []int{3, 9, 4}).Max(); got != 9 {
		t.Fatalf("Max = %d", got)
	}
	if got := z.Successors(0, 2); got != nil {
		t.Fatalf("empty successors = %v", got)
	}
}

func TestQuorumMajorityAcrossSizes(t *testing.T) {
	for n := 1; n <= 9; n++ {
		q := Launch(n).Quorum()
		if 2*q <= n {
			t.Fatalf("n=%d quorum %d is not a strict majority", n, q)
		}
		if 2*(q-1) > n {
			t.Fatalf("n=%d quorum %d is larger than minimal majority", n, q)
		}
	}
}
