package member

import (
	"reflect"
	"testing"
)

func TestTopologyFlatDegeneration(t *testing.T) {
	s := Launch(8)
	for _, g := range []int{0, 1, 8, 100} {
		topo := NewTopology(s, g)
		if !topo.Flat() || topo.NumGroups() != 1 {
			t.Fatalf("g=%d: expected flat single group, got %d groups", g, topo.NumGroups())
		}
		for r := 0; r < 8; r++ {
			if gid := topo.GroupOf(r); gid != 0 {
				t.Fatalf("g=%d: GroupOf(%d)=%d", g, r, gid)
			}
			if got, want := topo.GroupSuccessors(r, 2), s.Successors(r, 2); !reflect.DeepEqual(got, want) {
				t.Fatalf("g=%d: GroupSuccessors(%d)=%v want flat %v", g, r, got, want)
			}
			if got, want := topo.GroupPredecessors(r, 2), s.Predecessors(r, 2); !reflect.DeepEqual(got, want) {
				t.Fatalf("g=%d: GroupPredecessors(%d)=%v want flat %v", g, r, got, want)
			}
			if h := topo.ParityHolder(r); h != -1 {
				t.Fatalf("g=%d: flat topology must have no parity holder, got %d", g, h)
			}
		}
	}
}

func TestTopologyAssignment(t *testing.T) {
	topo := NewTopology(Launch(10), 4) // groups [0..3] [4..7] [8 9]
	if topo.NumGroups() != 3 {
		t.Fatalf("NumGroups=%d want 3", topo.NumGroups())
	}
	wantGroups := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9}}
	for gid, want := range wantGroups {
		if got := topo.GroupMembers(gid); !reflect.DeepEqual(got, want) {
			t.Fatalf("GroupMembers(%d)=%v want %v", gid, got, want)
		}
		for _, r := range want {
			if topo.GroupOf(r) != gid {
				t.Fatalf("GroupOf(%d)=%d want %d", r, topo.GroupOf(r), gid)
			}
		}
	}
	if got := topo.Delegates(); !reflect.DeepEqual(got, []int{0, 4, 8}) {
		t.Fatalf("Delegates=%v", got)
	}
	// Group-local ring wraps inside the group, never across.
	if got := topo.GroupSuccessors(3, 2); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("GroupSuccessors(3,2)=%v want [0 1]", got)
	}
	if got := topo.GroupSuccessors(9, 2); !reflect.DeepEqual(got, []int{8}) {
		t.Fatalf("GroupSuccessors(9,2)=%v want [8]", got)
	}
}

func TestTopologyParityHolderCrossesGroups(t *testing.T) {
	topo := NewTopology(Launch(12), 4)
	for r := 0; r < 12; r++ {
		h := topo.ParityHolder(r)
		if h < 0 {
			t.Fatalf("ParityHolder(%d)=%d", r, h)
		}
		if topo.GroupOf(h) == topo.GroupOf(r) {
			t.Fatalf("parity holder %d of %d is in the same group", h, r)
		}
		if want := (topo.GroupOf(r) + 1) % topo.NumGroups(); topo.GroupOf(h) != want {
			t.Fatalf("parity holder %d of %d in group %d want %d", h, r, topo.GroupOf(h), want)
		}
	}
	// Position-preserving: rank 1 (pos 1 of group 0) -> rank 5 (pos 1 of group 1).
	if h := topo.ParityHolder(1); h != 5 {
		t.Fatalf("ParityHolder(1)=%d want 5", h)
	}
	// Ragged last group wraps by the holder group's own size.
	ragged := NewTopology(Launch(10), 4) // holder group {8 9} for group 1
	if h := ragged.ParityHolder(7); h != 9 { // pos 3 % 2 = 1 -> slot 9
		t.Fatalf("ragged ParityHolder(7)=%d want 9", h)
	}
	if h := ragged.ParityHolder(8); h != 0 { // group 2 wraps to group 0
		t.Fatalf("ragged ParityHolder(8)=%d want 0", h)
	}
}

// A grow or shrink that crosses a group boundary re-partitions every
// group downstream of the change, and the new assignment is stamped with
// the committing epoch — the same epoch sequence membership itself uses,
// so the re-partition lands wherever the membership change lands (a
// recovery line; see stable.SetMembership).
func TestTopologyRepartitionAcrossGroupBoundary(t *testing.T) {
	s := Launch(8)
	topo := NewTopology(s, 4) // [0..3] [4..7]
	if topo.NumGroups() != 2 || topo.GroupOf(4) != 1 {
		t.Fatalf("seed topology wrong: %v", topo)
	}

	// Shrink across the boundary: removing slot 2 slides 4 into group 0.
	shrunk := NewTopology(s.WithRemoved(5, 2), 4)
	if shrunk.Epoch() != 5 {
		t.Fatalf("shrunk epoch=%d want 5", shrunk.Epoch())
	}
	if got := shrunk.GroupMembers(0); !reflect.DeepEqual(got, []int{0, 1, 3, 4}) {
		t.Fatalf("shrunk group 0 = %v", got)
	}
	if got := shrunk.GroupMembers(1); !reflect.DeepEqual(got, []int{5, 6, 7}) {
		t.Fatalf("shrunk group 1 = %v", got)
	}
	if shrunk.GroupOf(4) != 0 {
		t.Fatalf("slot 4 did not re-partition into group 0")
	}
	if shrunk.SameGroups(topo) {
		t.Fatalf("boundary-crossing shrink must change the group assignment")
	}

	// Grow across the boundary: joining slots 8 and 9 opens group 2.
	grown := NewTopology(s.WithJoined(6, 8, 9), 4)
	if grown.NumGroups() != 3 {
		t.Fatalf("grown NumGroups=%d want 3", grown.NumGroups())
	}
	if got := grown.GroupMembers(2); !reflect.DeepEqual(got, []int{8, 9}) {
		t.Fatalf("grown group 2 = %v", got)
	}
	// The pre-existing groups are untouched by an append-only grow.
	for gid := 0; gid < 2; gid++ {
		if got, want := grown.GroupMembers(gid), topo.GroupMembers(gid); !reflect.DeepEqual(got, want) {
			t.Fatalf("grow disturbed group %d: %v want %v", gid, got, want)
		}
	}
	// A flat topology and a grouped one never compare equal.
	if grown.SameGroups(NewTopology(s.WithJoined(6, 8, 9), 0)) {
		t.Fatalf("grouped vs flat must differ")
	}
}

func TestTopologyNonMemberSlotsStayTotal(t *testing.T) {
	topo := NewTopology(New(3, []int{0, 1, 2, 4, 5, 6}), 3)
	// Slot 3 drained: it maps through its insertion point into group 1.
	if gid := topo.GroupOf(3); gid != 1 {
		t.Fatalf("GroupOf(drained 3)=%d want 1", gid)
	}
	if h := topo.ParityHolder(3); topo.GroupOf(h) != 0 {
		t.Fatalf("drained slot parity holder %d not in next group", h)
	}
}
