package stable

import (
	"fmt"

	"c3/internal/wire"
)

// Codecs for the distributed store's recovery-query messages. Like the
// replication codecs they produce replPayload values, so the same
// interconnect (and the same TCP frame kind) carries them.

func encodeDistQueryLast(reqID uint64, owner int) replPayload {
	w := wire.NewWriter(24)
	w.U8(distMsgQueryLast)
	w.U64(reqID)
	w.Int(owner)
	return replPayload(w.Bytes())
}

func decodeDistQueryLast(data replPayload) (reqID uint64, owner int, err error) {
	r := wire.NewReader(data[1:])
	reqID = r.U64()
	owner = r.Int()
	return reqID, owner, r.Err()
}

func encodeDistRespLast(reqID uint64, entries []distLastEntry) replPayload {
	w := wire.NewWriter(16 + 96*len(entries))
	w.U8(distMsgRespLast)
	w.U64(reqID)
	w.U32(uint32(len(entries)))
	for _, e := range entries {
		w.Int(e.version)
		writeReplRec(w, e.rec)
		w.Ints(e.held)
	}
	return replPayload(w.Bytes())
}

func decodeDistRespLast(data replPayload) (reqID uint64, entries []distLastEntry, err error) {
	r := wire.NewReader(data[1:])
	reqID = r.U64()
	n := r.Count(8 + replRecWireMin + 4) // minimum bytes per serialized entry
	for i := 0; i < n; i++ {
		e := distLastEntry{version: r.Int()}
		e.rec = readReplRec(r)
		e.held = r.Ints()
		if r.Err() != nil {
			break
		}
		if !e.rec.sane() {
			return reqID, nil, fmt.Errorf("stable: insane marker geometry in last-committed response (frags=%d data=%d total=%d)",
				e.rec.frags, e.rec.data, e.rec.total)
		}
		entries = append(entries, e)
	}
	if err := r.Err(); err != nil {
		return reqID, nil, fmt.Errorf("stable: corrupt last-committed response: %w", err)
	}
	return reqID, entries, nil
}

func encodeDistQueryFrag(reqID uint64, owner, version, idx int) replPayload {
	w := wire.NewWriter(40)
	w.U8(distMsgQueryFrag)
	w.U64(reqID)
	w.Int(owner)
	w.Int(version)
	w.Int(idx)
	return replPayload(w.Bytes())
}

func decodeDistQueryFrag(data replPayload) (reqID uint64, owner, version, idx int, err error) {
	r := wire.NewReader(data[1:])
	reqID = r.U64()
	owner, version, idx = r.Int(), r.Int(), r.Int()
	return reqID, owner, version, idx, r.Err()
}

func encodeDistRespFrag(reqID uint64, found bool, frag []byte) replPayload {
	w := wire.NewWriter(24 + len(frag))
	w.U8(distMsgRespFrag)
	w.U64(reqID)
	w.Bool(found)
	w.Bytes32(frag)
	return replPayload(w.Bytes())
}

func decodeDistRespFrag(data replPayload) (reqID uint64, found bool, frag []byte, err error) {
	r := wire.NewReader(data[1:])
	reqID = r.U64()
	found = r.Bool()
	frag = r.Bytes32()
	return reqID, found, frag, r.Err()
}

func encodeDistPrune(owner, version int, above bool) replPayload {
	w := wire.NewWriter(24)
	w.U8(distMsgPrune)
	w.Int(owner)
	w.Int(version)
	w.Bool(above)
	return replPayload(w.Bytes())
}

func decodeDistPrune(data replPayload) (owner, version int, above bool, err error) {
	r := wire.NewReader(data[1:])
	owner, version = r.Int(), r.Int()
	above = r.Bool()
	return owner, version, above, r.Err()
}

// peekDistReqID extracts the request id from a response payload without
// fully decoding it, for routing to the right waiter.
func peekDistReqID(data replPayload) (uint64, bool) {
	if len(data) < 9 {
		return 0, false
	}
	r := wire.NewReader(data[1:9])
	id := r.U64()
	return id, r.Err() == nil
}
