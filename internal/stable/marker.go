package stable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"c3/internal/wire"
)

// CommitMeta is the structured content of a DiskStore commit marker: what
// produced the checkpoint (codec geometry, membership epoch at commit) and
// what it contains (per-section sizes and digests). The marker's presence
// is still what makes a version committed — LastCommitted and Open only
// stat the file — so the structured content is pure metadata: tooling
// (c3inspect) decodes it, and a marker from the pre-metadata era ("ok\n")
// stays a valid commit.
type CommitMeta struct {
	// MembershipEpoch is the detector's membership epoch when the commit
	// was written (0 when the writer predates elastic membership or runs
	// without a detector).
	MembershipEpoch uint64
	// Codec, Data, Parity name the fragment-codec geometry the world's
	// replicated plane was configured with (CodecDup/CodecXOR/CodecRS and
	// k+m). The disk store itself stores whole sections; the geometry is
	// recorded so an operator inspecting a node's disk sees the same
	// configuration the diskless planes used.
	Codec        uint8
	Data, Parity int
	// Sections lists each stored section with its byte size and FNV-1a
	// digest, in the order written.
	Sections []SectionMeta
}

// SectionMeta describes one committed section.
type SectionMeta struct {
	Name  string
	Bytes int
	Sum   uint64
}

// CodecName renders the marker's codec geometry for humans.
func (m CommitMeta) CodecName() string {
	switch m.Codec {
	case CodecDup:
		return fmt.Sprintf("dup(k=%d)", m.Data)
	case CodecXOR:
		return fmt.Sprintf("xor(k=%d,m=%d)", m.Data, m.Parity)
	case CodecRS:
		return fmt.Sprintf("rs(k=%d,m=%d)", m.Data, m.Parity)
	default:
		return fmt.Sprintf("codec(%d,k=%d,m=%d)", m.Codec, m.Data, m.Parity)
	}
}

// SectionSum is the digest stamped into SectionMeta entries (the
// replication plane's FNV-1a), exported so tooling (c3inspect) can
// re-verify stored bytes against the commit marker.
func SectionSum(b []byte) uint64 { return replSum(b) }

// Marker wire format: magic, format version, then the meta fields. The
// magic keeps the structured marker distinguishable from the legacy "ok\n"
// content without relying on length.
var markerMagic = []byte("C3MK")

const markerFormat = 1

// maxMarkerSections clamps attacker- or corruption-supplied section counts
// before allocation, mirroring maxWireShards on the replication plane.
const maxMarkerSections = 4096

func encodeCommitMeta(m CommitMeta) []byte {
	w := wire.NewWriter(64 + 24*len(m.Sections))
	for _, b := range markerMagic {
		w.U8(b)
	}
	w.U8(markerFormat)
	w.U64(m.MembershipEpoch)
	w.U8(m.Codec)
	w.Int(m.Data)
	w.Int(m.Parity)
	w.U32(uint32(len(m.Sections)))
	for _, s := range m.Sections {
		w.String(s.Name)
		w.Int(s.Bytes)
		w.U64(s.Sum)
	}
	return w.Bytes()
}

// ErrLegacyMarker reports a commit marker from before the structured
// format: a valid commit, but with no metadata to decode.
var ErrLegacyMarker = errors.New("stable: pre-metadata commit marker")

func decodeCommitMeta(data []byte) (CommitMeta, error) {
	if len(data) < len(markerMagic) || string(data[:len(markerMagic)]) != string(markerMagic) {
		return CommitMeta{}, ErrLegacyMarker
	}
	r := wire.NewReader(data[len(markerMagic):])
	if v := r.U8(); v != markerFormat {
		return CommitMeta{}, fmt.Errorf("stable: unknown marker format %d", v)
	}
	m := CommitMeta{
		MembershipEpoch: r.U64(),
		Codec:           r.U8(),
		Data:            r.Int(),
		Parity:          r.Int(),
	}
	// Each section occupies at least 20 bytes (name length prefix + size +
	// digest), so Count rejects counts the input cannot possibly back.
	n := r.Count(20)
	if n > maxMarkerSections {
		return CommitMeta{}, fmt.Errorf("stable: insane marker section count %d", n)
	}
	for i := 0; i < n; i++ {
		m.Sections = append(m.Sections, SectionMeta{
			Name:  r.String(),
			Bytes: r.Int(),
			Sum:   r.U64(),
		})
	}
	if err := r.Err(); err != nil {
		return CommitMeta{}, fmt.Errorf("stable: corrupt commit marker: %w", err)
	}
	return m, nil
}

// SetMarkerInfo installs the metadata stamped into every subsequent commit
// marker: the replication codec geometry (fixed per run) and the current
// membership epoch (updated by the runtime on each epoch transition).
func (s *DiskStore) SetMarkerInfo(codec uint8, data, parity int) {
	s.metaMu.Lock()
	s.codec, s.data, s.parity = codec, data, parity
	s.metaMu.Unlock()
}

// SetEpoch updates the membership epoch recorded in subsequent markers.
func (s *DiskStore) SetEpoch(epoch uint64) {
	s.metaMu.Lock()
	s.epoch = epoch
	s.metaMu.Unlock()
}

// markerMeta snapshots the store-level marker fields for one commit.
func (s *DiskStore) markerMeta() CommitMeta {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	return CommitMeta{MembershipEpoch: s.epoch, Codec: s.codec, Data: s.data, Parity: s.parity}
}

// Meta decodes the commit marker of (rank, version). ErrLegacyMarker means
// the version is committed but carries no structured metadata.
func (s *DiskStore) Meta(rank, version int) (CommitMeta, error) {
	data, err := os.ReadFile(filepath.Join(s.dir(rank, version), "COMMITTED"))
	if errors.Is(err, os.ErrNotExist) {
		return CommitMeta{}, fmt.Errorf("%w: rank %d version %d", ErrNotCommitted, rank, version)
	}
	if err != nil {
		return CommitMeta{}, err
	}
	return decodeCommitMeta(data)
}
