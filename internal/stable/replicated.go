package stable

import (
	"fmt"
	"sort"
	"sync"

	"c3/internal/member"
	"c3/internal/transport"
	"c3/internal/wire"
)

// ReplicatedStore is a diskless, ReStore-style stable store: every rank
// keeps its own checkpoints in node-local memory and, at commit time,
// spreads the checkpoint's fragments to its +1/+2 neighbor ranks over a
// dedicated replication interconnect (an internal/transport network, so
// replication traffic has FIFO ordering, latency modeling and delivery
// counters like any other interconnect in the reproduction).
//
// Failure model: when the runtime injects a fail-stop failure it calls
// FailNode, which wipes everything in the failed node's memory — its own
// checkpoints and the replica fragments it held for peers — and invalidates
// replication messages still in flight toward it (they belong to the dead
// incarnation). The restarted rank's recovery then finds no local copy and
// reassembles its last committed line from the fragments surviving on peer
// nodes; a committed line is lost only if the owner and both replica
// holders fail together.
//
// Commit is synchronous-replicated: it returns once every live neighbor has
// acknowledged the fragments and the commit marker, so a line reported
// committed is immediately recoverable from peers. Combined with the ckpt
// layer's asynchronous commit pipeline, the acknowledgment wait happens on
// the background committer, off the application's critical path.
type ReplicatedStore struct {
	n         int
	codec     Codec
	groupSize int // checkpoint group size g; 0 = flat world
	net       *transport.Network

	mu       sync.Mutex
	cond     *sync.Cond
	members  member.Set
	nodes    []*replNode
	awaiting map[replAckKey]bool
	closed   bool

	bytesWritten    int64
	replicatedBytes int64
	reassemblies    int64
	migrations      int64

	wg sync.WaitGroup
}

// replNode is one rank's memory: its own checkpoints plus holdings for
// peers. incarnation advances on FailNode so in-flight replication traffic
// addressed to the dead incarnation is dropped instead of resurrecting
// state the failure destroyed.
type replNode struct {
	incarnation uint64
	local       map[int]*memCkpt
	frags       map[replFragKey][]byte
	commits     map[replCommitKey]replCommitRec
}

type replFragKey struct {
	owner, version, idx int
}

type replCommitKey struct {
	owner, version int
}

// replCommitRec is the commit marker replicated alongside the fragments:
// the shard geometry and digests recovery validates reassembly against.
type replCommitRec struct {
	codec uint8    // CodecDup, CodecXOR, CodecRS
	frags int      // total shard count (k+m; k for dup)
	data  int      // shards required to reconstruct (k)
	total int      // original blob length
	sum   uint64   // FNV digest of the whole blob
	sums  []uint64 // per-shard FNV digests (corrupt shards count as lost)
	// cross is the cross-group parity holder's rank plus one (0: no
	// cross-group shard — flat topology or single group). Under a grouped
	// topology every codec shard lands inside the owner's group, so a
	// whole-group loss destroys all k+m of them; the cross-group shard is
	// one whole-blob redundancy unit at index frags, held one group over,
	// that keeps the line recoverable through exactly that failure.
	cross int
}

// crossHolder returns the cross-group parity holder and whether one exists.
func (rec replCommitRec) crossHolder() (int, bool) {
	return rec.cross - 1, rec.cross > 0
}

// need is the number of distinct valid shards reassembly requires.
func (rec replCommitRec) need() int {
	if rec.data > 0 {
		return rec.data
	}
	return rec.frags
}

// maxWireShards bounds the shard count a wire-supplied commit marker may
// claim. Recovery loops and allocations scale with rec.frags, and the
// marker arrives off a socket — an insane value must be rejected at
// decode, not trusted.
const maxWireShards = 4096

// sane validates marker geometry read off the wire.
func (rec replCommitRec) sane() bool {
	if rec.frags < 1 || rec.frags > maxWireShards {
		return false
	}
	if rec.data < 0 || rec.data > rec.frags {
		return false
	}
	if rec.total < 0 || rec.total > wire.MaxLen {
		return false
	}
	if len(rec.sums) != 0 && len(rec.sums) != rec.frags {
		return false
	}
	if rec.cross < 0 || rec.cross > maxWireShards {
		return false
	}
	return true
}

// codecOf reconstructs the codec that produced the marker's shards.
func (rec replCommitRec) codecOf() (Codec, error) {
	return codecFor(rec.codec, rec.need(), rec.frags-rec.need())
}

// shardValid reports whether a held fragment matches the marker's per-shard
// digest; markers from the pre-digest era (empty sums) accept any bytes and
// rely on the whole-blob digest alone. Index frags is the cross-group
// parity shard (when the marker records one): the full blob, validated
// against the whole-blob digest.
func (rec replCommitRec) shardValid(idx int, frag []byte) bool {
	if _, ok := rec.crossHolder(); ok && idx == rec.frags {
		return len(frag) == rec.total && replSum(frag) == rec.sum
	}
	if idx < 0 || idx >= rec.frags {
		return false
	}
	if len(rec.sums) != rec.frags {
		return true
	}
	return replSum(frag) == rec.sums[idx]
}

type replAckKey struct {
	owner, version, from int
}

// Replication message kinds.
const (
	replMsgFrag uint8 = iota + 1
	replMsgCommit
	replMsgAck
)

// replPayload lets the transport count and delay replication bytes.
type replPayload []byte

// TransportSize implements transport.Sizer.
func (p replPayload) TransportSize() int { return len(p) }

// WireKind implements transport.WirePayload, so replication traffic can
// cross the TCP mesh in multi-process deployments unchanged.
func (p replPayload) WireKind() uint8 { return transport.WireKindRepl }

// MarshalWire implements transport.WirePayload: the payload already is its
// own wire encoding.
func (p replPayload) MarshalWire() []byte { return p }

func init() {
	transport.RegisterWireDecoder(transport.WireKindRepl, func(data []byte) (any, error) {
		return replPayload(append([]byte(nil), data...)), nil
	})
}

// ReplicatedOption configures a ReplicatedStore.
type ReplicatedOption func(*replicatedConfig)

type replicatedConfig struct {
	fragments int
	codec     Codec
	groupSize int
	netOpts   []transport.Option
}

// WithFragments sets how many pieces each checkpoint blob is split into
// before replication under the default dup codec (default 2). More
// fragments spread replication load in finer grains; every fragment still
// goes to both neighbors. Ignored when WithCodec installs an erasure codec.
func WithFragments(k int) ReplicatedOption {
	return func(c *replicatedConfig) { c.fragments = k }
}

// WithCodec replaces the default full-replication (dup) scheme with the
// given fragment codec: the blob's k+m shards are placed on k+m distinct
// ring successors (parity rotated per owner) instead of full copies on the
// +1/+2 neighbors, and the owner keeps no full local copy — any k shards
// reconstruct the line on demand.
func WithCodec(codec Codec) ReplicatedOption {
	return func(c *replicatedConfig) { c.codec = codec }
}

// WithGroupSize partitions the world into checkpoint groups of g
// consecutive ring slots (member.Topology): shards stay on group-local
// successors and every line additionally ships one cross-group parity
// shard (the whole blob) to the next group, so even losing an entire
// group at once leaves the line recoverable. g <= 1 keeps the flat world.
func WithGroupSize(g int) ReplicatedOption {
	return func(c *replicatedConfig) { c.groupSize = g }
}

// WithReplicationLatency applies a latency model to the replication
// interconnect, so experiments can price remote-memory checkpointing
// against local disk.
func WithReplicationLatency(m transport.LatencyModel) ReplicatedOption {
	return func(c *replicatedConfig) { c.netOpts = append(c.netOpts, transport.WithLatency(m)) }
}

// NewReplicatedStore creates a replicated in-memory store for a world of n
// ranks. The store owns n replication daemons (one per node); call Close
// when done with it.
func NewReplicatedStore(n int, opts ...ReplicatedOption) *ReplicatedStore {
	if n <= 0 {
		panic("stable: replicated store needs a positive world size")
	}
	cfg := replicatedConfig{fragments: 2}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.fragments < 1 {
		cfg.fragments = 1
	}
	if cfg.codec == nil {
		cfg.codec = dupCodec{k: cfg.fragments}
	}
	if cfg.codec.ParityShards() > 0 && n < 2 {
		panic("stable: erasure codecs need at least one peer rank")
	}
	s := &ReplicatedStore{
		n:         n,
		codec:     cfg.codec,
		groupSize: cfg.groupSize,
		net:       transport.NewNetwork(n, cfg.netOpts...),
		members:   member.Launch(n),
		nodes:     make([]*replNode, n),
		awaiting:  make(map[replAckKey]bool),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := range s.nodes {
		s.nodes[i] = newReplNode()
	}
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go s.daemon(i)
	}
	return s
}

func newReplNode() *replNode {
	return &replNode{
		local:   make(map[int]*memCkpt),
		frags:   make(map[replFragKey][]byte),
		commits: make(map[replCommitKey]replCommitRec),
	}
}

// Close shuts the replication fabric and daemons down. Outstanding commits
// unblock with their current acknowledgment state.
func (s *ReplicatedStore) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.net.Shutdown()
	s.wg.Wait()
}

// shardHolder is the fixed-world placement formula kept for reference and
// regression tests: member.Set.ShardHolder reduces to it exactly when the
// members are 0..n-1 (pinned by internal/member's tests), so committed
// lines keep their holders across the membership refactor.
func shardHolder(owner, idx, shards, n int) int {
	span := shards
	if span > n-1 {
		span = n - 1
	}
	pos := (idx + owner) % shards % span
	return (owner + 1 + pos) % n
}

// shardPlan maps every shard index of one commit to its holder rank and
// returns the distinct holder set (ascending ring order from owner+1).
func shardPlan(owner, shards, n int) (holderOf []int, holders []int) {
	holderOf = make([]int, shards)
	seen := make(map[int]bool, shards)
	for idx := 0; idx < shards; idx++ {
		h := shardHolder(owner, idx, shards, n)
		holderOf[idx] = h
		if !seen[h] {
			seen[h] = true
			holders = append(holders, h)
		}
	}
	return holderOf, holders
}

// NetworkStats returns the replication interconnect's delivery counters.
func (s *ReplicatedStore) NetworkStats() transport.Stats { return s.net.Stats() }

// BytesWritten returns the section bytes written to node-local memory.
func (s *ReplicatedStore) BytesWritten() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesWritten
}

// ReplicatedBytes returns the fragment bytes shipped to peer nodes.
func (s *ReplicatedStore) ReplicatedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replicatedBytes
}

// Reassemblies reports how many checkpoints were rebuilt from peer
// fragments because the owner's local copy was gone — the disk-free
// recovery path.
func (s *ReplicatedStore) Reassemblies() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reassemblies
}

// StoredBytes returns the checkpoint bytes currently resident across all
// node memories: full local copies plus replica shards. Divided by the
// world size it is the per-rank memory tax the codec ablation measures.
func (s *ReplicatedStore) StoredBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, node := range s.nodes {
		for _, ck := range node.local {
			for _, d := range ck.sections {
				t += int64(len(d))
			}
		}
		for _, f := range node.frags {
			t += int64(len(f))
		}
	}
	return t
}

// Members returns the membership current placement runs against.
func (s *ReplicatedStore) Members() member.Set {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.members
}

// topology derives the current checkpoint-group topology; callers hold
// s.mu.
func (s *ReplicatedStore) topology() member.Topology {
	return member.NewTopology(s.members, s.groupSize)
}

// Topology returns the checkpoint-group topology placement runs against.
func (s *ReplicatedStore) Topology() member.Topology {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.topology()
}

// Migrations reports how many committed lines were re-placed by
// SetMembership.
func (s *ReplicatedStore) Migrations() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.migrations
}

// SetMembership installs a new member ring and actively re-partitions the
// committed lines of every member owner onto it: each line's shards are
// recomputed against the new ring (reconstructing lost ones through the
// codec when at least k survive) and installed on the new holders, and
// holdings on ranks the new plan no longer assigns are dropped. After it
// returns, every line that was reconstructible before the change is again
// reconstructible with the full ≤m loss tolerance under the new ring —
// the in-memory analogue of ReStore's re-distribution. Lines owned by
// ranks outside the new membership are left where they are: a drained
// owner's lines are retired with it, not rebalanced.
func (s *ReplicatedStore) SetMembership(m member.Set) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m.SameMembers(s.members) {
		s.members = m
		return
	}
	s.members = m
	// Collect every committed line (marker may survive on several holders;
	// they are identical for one (owner, version)).
	lines := make(map[replCommitKey]replCommitRec)
	for _, node := range s.nodes {
		for key, rec := range node.commits {
			lines[key] = rec
		}
	}
	topo := s.topology()
	for key, rec := range lines {
		if !m.Contains(key.owner) {
			continue
		}
		codec, err := rec.codecOf()
		if err != nil {
			continue
		}
		sendPlan, holders, _, parity := commitPlan(codec, key.owner, rec.frags, topo)
		shards, blob := s.gatherShards(key.owner, key.version, rec, parity >= 0)
		if shards == nil {
			continue // already below k survivors; nothing to re-place
		}
		oldFrags := rec.frags
		rec.cross = parity + 1
		held := make(map[int]bool, len(holders))
		for _, h := range holders {
			held[h] = true
		}
		for _, nb := range holders {
			s.nodes[nb].commits[key] = rec
			for _, idx := range sendPlan[nb] {
				frag := blob // the cross-group parity shard is the blob itself
				if idx < rec.frags {
					frag = shards[idx]
				}
				if frag == nil {
					continue // incomplete dup line: move what survives
				}
				s.nodes[nb].frags[replFragKey{owner: key.owner, version: key.version, idx: idx}] =
					append([]byte(nil), frag...)
			}
		}
		for r, node := range s.nodes {
			if held[r] {
				continue
			}
			delete(node.commits, key)
			for idx := 0; idx <= oldFrags; idx++ {
				delete(node.frags, replFragKey{owner: key.owner, version: key.version, idx: idx})
			}
		}
		s.migrations++
	}
}

// gatherShards assembles the full digest-valid shard set of one line,
// reconstructing missing shards through the codec — or from a surviving
// cross-group parity shard — when possible. It also returns the whole
// blob when a surviving parity shard supplies it or wantBlob forces a
// rebuild (the new plan needs a parity shard to install). Returns
// (nil, nil) when the line is unreconstructible; a reconstruction failure
// falls back to the surviving shards (nil gaps), which still carry
// everything the old ring held.
func (s *ReplicatedStore) gatherShards(owner, version int, rec replCommitRec, wantBlob bool) ([][]byte, []byte) {
	shards := make([][]byte, rec.frags)
	valid := 0
	for idx := range shards {
		if frag, ok := s.findFrag(owner, version, idx, rec); ok {
			shards[idx] = frag
			valid++
		}
	}
	var blob []byte
	if _, ok := rec.crossHolder(); ok {
		if g, found := s.findFrag(owner, version, rec.frags, rec); found {
			blob = g
		}
	}
	if valid < rec.need() && blob == nil {
		return nil, nil
	}
	if valid == rec.frags && (blob != nil || !wantBlob) {
		return shards, blob
	}
	// Rebuild the missing pieces so the new ring starts at full parity.
	all := shards
	if blob != nil {
		all = append(append(make([][]byte, 0, rec.frags+1), shards...), blob)
	}
	if sections, err := reassembleSections(rec, all); err == nil {
		if codec, err := rec.codecOf(); err == nil {
			b := encodeReplSections(sections)
			if full, err := codec.Encode(b); err == nil && len(full) == rec.frags {
				return full, b
			}
		}
	}
	return shards, blob
}

// FailNode implements NodeFailer: the node's memory is lost and in-flight
// replication traffic toward it belongs to a dead incarnation.
func (s *ReplicatedStore) FailNode(rank int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nodes[rank].incarnation++
	s.nodes[rank].local = make(map[int]*memCkpt)
	s.nodes[rank].frags = make(map[replFragKey][]byte)
	s.nodes[rank].commits = make(map[replCommitKey]replCommitRec)
	s.cond.Broadcast() // release commits waiting on this node's acks
}

// --- Write path ---

type replHandle struct {
	store    *ReplicatedStore
	rank     int
	version  int
	sections map[string][]byte
	done     bool
	stored   int64
}

// StoredSize reports the stable-storage bytes this commit occupies across
// the world (local copy plus replica shards) — the numerator of the
// storage-overhead ratio the ckpt stats expose as StoredBytes.
func (h *replHandle) StoredSize() int64 { return h.stored }

// Begin implements Store.
func (s *ReplicatedStore) Begin(rank, version int) (Checkpoint, error) {
	s.mu.Lock()
	delete(s.nodes[rank].local, version) // discard uncommitted stale data
	s.mu.Unlock()
	return &replHandle{store: s, rank: rank, version: version, sections: make(map[string][]byte)}, nil
}

func (h *replHandle) WriteSection(name string, data []byte) error {
	if h.done {
		return fmt.Errorf("stable: write to finished checkpoint (%d,%d)", h.rank, h.version)
	}
	h.sections[name] = append([]byte(nil), data...)
	h.store.mu.Lock()
	h.store.bytesWritten += int64(len(data))
	h.store.mu.Unlock()
	return nil
}

func (h *replHandle) Abort() error {
	h.done = true
	return nil
}

// shardSums digests every shard for the commit marker, so recovery can
// reject a corrupt shard and repair it from parity instead of failing the
// whole-blob digest check.
func shardSums(shards [][]byte) []uint64 {
	sums := make([]uint64, len(shards))
	for i, s := range shards {
		sums[i] = replSum(s)
	}
	return sums
}

// commitPlan is the shared placement decision of both diskless stores,
// computed over the current topology. On a flat (single-group) topology
// the ring is the whole membership: for the dup codec every shard goes to
// both ring successors and the owner keeps a full local copy; for an
// erasure codec each shard goes to exactly one distinct ring successor
// (rotated placement) and no local copy is kept — the memory saving that
// is the codec's point. With members 0..n-1 the plan is identical to the
// fixed-world plan, so existing lines keep their holders until the
// membership actually changes.
//
// Under a grouped topology the same formulas run over the owner's
// group-local ring (so commit traffic never leaves the group), and one
// additional cross-group parity shard — the whole blob, at index shards —
// is assigned to topo.ParityHolder(owner) in the next group, keeping the
// line recoverable through a whole-group loss. parity is that holder's
// rank, or -1 when the topology has a single group.
func commitPlan(codec Codec, owner, shards int, topo member.Topology) (sendPlan map[int][]int, holders []int, keepLocal bool, parity int) {
	ring := topo.Set()
	if !topo.Flat() {
		ring = topo.GroupSetOf(owner)
	}
	if codec.ParityShards() == 0 {
		holders = ring.Successors(owner, 2)
		all := make([]int, shards)
		for i := range all {
			all[i] = i
		}
		sendPlan = make(map[int][]int, len(holders)+1)
		for _, nb := range holders {
			sendPlan[nb] = all
		}
		keepLocal = true
	} else {
		holderOf, hs := ring.ShardPlan(owner, shards)
		holders = hs
		sendPlan = make(map[int][]int, len(holders)+1)
		for idx, hr := range holderOf {
			sendPlan[hr] = append(sendPlan[hr], idx)
		}
	}
	parity = topo.ParityHolder(owner)
	if parity == owner {
		parity = -1
	}
	if parity >= 0 {
		sendPlan[parity] = append(sendPlan[parity], shards)
		holders = append(holders, parity)
	}
	return sendPlan, holders, keepLocal, parity
}

// sectionsBytes sums a checkpoint's raw section sizes.
func sectionsBytes(sections map[string][]byte) int64 {
	var t int64
	for _, d := range sections {
		t += int64(len(d))
	}
	return t
}

// Commit encodes the checkpoint through the store's codec, ships the
// shards and commit marker to their holders, and waits until every live
// holder has acknowledged them. Under the dup codec the holders are the
// +1/+2 neighbors (full copies, local copy kept); under an erasure codec
// each shard lands on its own ring successor and no local copy is kept.
func (h *replHandle) Commit() error {
	if h.done {
		return fmt.Errorf("stable: commit of finished checkpoint (%d,%d)", h.rank, h.version)
	}
	h.done = true
	s := h.store

	blob := encodeReplSections(h.sections)
	shards, err := s.codec.Encode(blob)
	if err != nil {
		return fmt.Errorf("stable: encode checkpoint (%d,%d): %w", h.rank, h.version, err)
	}
	s.mu.Lock()
	sendPlan, holders, keepLocal, parity := commitPlan(s.codec, h.rank, len(shards), s.topology())
	// units extends the codec shards with the cross-group parity shard
	// (the whole blob, at index len(shards)) when the topology assigns one.
	units := shards
	if parity >= 0 {
		units = append(append(make([][]byte, 0, len(shards)+1), shards...), blob)
	}
	rec := replCommitRec{
		codec: s.codec.ID(),
		frags: len(shards),
		data:  s.codec.DataShards(),
		total: len(blob),
		sum:   replSum(blob),
		sums:  shardSums(shards),
		cross: parity + 1,
	}
	type target struct {
		rank int
		inc  uint64
	}
	targets := make([]target, 0, len(holders))
	for _, nb := range holders {
		targets = append(targets, target{rank: nb, inc: s.nodes[nb].incarnation})
		s.awaiting[replAckKey{owner: h.rank, version: h.version, from: nb}] = false
		for _, idx := range sendPlan[nb] {
			s.replicatedBytes += int64(len(units[idx]))
			h.stored += int64(len(units[idx]))
		}
	}
	s.mu.Unlock()
	if keepLocal {
		h.stored += sectionsBytes(h.sections)
	}

	dropAwaiting := func() {
		for _, t := range targets {
			delete(s.awaiting, replAckKey{owner: h.rank, version: h.version, from: t.rank})
		}
	}
	for _, t := range targets {
		for _, idx := range sendPlan[t.rank] {
			msg := encodeReplFrag(h.rank, h.version, t.inc, rec.codec, len(shards), idx, units[idx])
			if err := s.net.Send(transport.Message{From: h.rank, To: t.rank, Class: transport.Data, Payload: msg}); err != nil {
				s.mu.Lock()
				dropAwaiting()
				s.mu.Unlock()
				return fmt.Errorf("stable: replicate fragment: %w", err)
			}
		}
		// The marker travels after the fragments on the same FIFO pair, so a
		// stored marker implies the fragments preceding it were delivered.
		msg := encodeReplCommit(h.rank, h.version, t.inc, rec)
		if err := s.net.Send(transport.Message{From: h.rank, To: t.rank, Class: transport.Control, Payload: msg}); err != nil {
			s.mu.Lock()
			dropAwaiting()
			s.mu.Unlock()
			return fmt.Errorf("stable: replicate commit marker: %w", err)
		}
	}

	// Wait for each holder's acknowledgment; a holder that fails (its
	// incarnation advances) is excused — under dup the commit then relies
	// on the local copy plus the surviving replica. Only then does the
	// version become locally committed, so a failed Commit never leaves a
	// version visible to LastCommitted.
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		pending := 0
		for _, t := range targets {
			key := replAckKey{owner: h.rank, version: h.version, from: t.rank}
			if !s.awaiting[key] && s.nodes[t.rank].incarnation == t.inc && !s.closed {
				pending++
			}
		}
		if pending == 0 {
			break
		}
		s.cond.Wait()
	}
	dropAwaiting()
	if keepLocal {
		s.nodes[h.rank].local[h.version] = &memCkpt{sections: h.sections, commit: true}
		return nil
	}
	// Erasure-coded commits keep no local copy, so excusal has a floor: a
	// holder whose node failed (even after acking) lost its shards, and if
	// the survivors cannot supply k shards the line does not exist —
	// reporting success would let the protocol retire the previous,
	// recoverable line. A surviving cross-group parity shard lifts the
	// floor: it reconstructs the blob alone, so even a whole group of
	// failed holders is excused. (Store shutdown is exempt: the world is
	// going away.)
	if !s.closed {
		lost := 0
		parityOK := false
		for _, t := range targets {
			failed := s.nodes[t.rank].incarnation != t.inc
			for _, idx := range sendPlan[t.rank] {
				switch {
				case idx >= len(shards):
					parityOK = !failed
				case failed:
					lost++
				}
			}
		}
		if len(shards)-lost < s.codec.DataShards() && !parityOK {
			return fmt.Errorf("stable: commit (%d,%d) lost %d of %d shards to failed holders (codec needs %d)",
				h.rank, h.version, lost, len(shards), s.codec.DataShards())
		}
	}
	return nil
}

// --- Replication daemon ---

// daemon is node rank's replication endpoint: it stores incoming fragments
// and commit markers in the node's memory and acknowledges them, and
// routes acknowledgments back to waiting commits.
func (s *ReplicatedStore) daemon(rank int) {
	defer s.wg.Done()
	ep := s.net.Endpoint(rank)
	for {
		msg, err := ep.Recv()
		if err != nil {
			return // network shut down
		}
		data, ok := msg.Payload.(replPayload)
		if !ok || len(data) == 0 {
			continue
		}
		switch data[0] {
		case replMsgFrag:
			owner, version, inc, _, _, idx, frag, err := decodeReplFrag(data)
			if err != nil {
				continue
			}
			s.mu.Lock()
			if s.nodes[rank].incarnation == inc {
				s.nodes[rank].frags[replFragKey{owner: owner, version: version, idx: idx}] = frag
			}
			s.mu.Unlock()
		case replMsgCommit:
			owner, version, inc, rec, err := decodeReplCommit(data)
			if err != nil {
				continue
			}
			s.mu.Lock()
			live := s.nodes[rank].incarnation == inc
			if live {
				s.nodes[rank].commits[replCommitKey{owner: owner, version: version}] = rec
			}
			s.mu.Unlock()
			if live {
				ack := encodeReplAck(owner, version, rank)
				_ = s.net.Send(transport.Message{From: rank, To: owner, Class: transport.Control, Payload: ack})
			}
		case replMsgAck:
			owner, version, from, err := decodeReplAck(data)
			if err != nil {
				continue
			}
			s.mu.Lock()
			key := replAckKey{owner: owner, version: version, from: from}
			if _, waiting := s.awaiting[key]; waiting {
				s.awaiting[key] = true
				s.cond.Broadcast()
			}
			s.mu.Unlock()
		}
	}
}

// --- Read path ---

// LastCommitted implements Store: the newest version committed locally or,
// when the local memory was lost, the newest version whose fragments and
// commit marker survive on peers.
func (s *ReplicatedStore) LastCommitted(rank int) (int, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	best, ok := 0, false
	for v, ck := range s.nodes[rank].local {
		if ck.commit && (!ok || v > best) {
			best, ok = v, true
		}
	}
	for v, rec := range s.peerCommitted(rank) {
		if (!ok || v > best) && s.lineRecoverable(rank, v, rec) {
			best, ok = v, true
		}
	}
	return best, ok, nil
}

// lineRecoverable reports whether (owner, version) can be reassembled:
// enough distinct codec shards survive, or the cross-group parity shard
// does.
func (s *ReplicatedStore) lineRecoverable(owner, version int, rec replCommitRec) bool {
	if s.shardsAvailable(owner, version, rec) >= rec.need() {
		return true
	}
	if _, ok := rec.crossHolder(); ok {
		if _, found := s.findFrag(owner, version, rec.frags, rec); found {
			return true
		}
	}
	return false
}

// peerCommitted collects commit markers held on any node for the owner.
func (s *ReplicatedStore) peerCommitted(owner int) map[int]replCommitRec {
	out := make(map[int]replCommitRec)
	for _, node := range s.nodes {
		for key, rec := range node.commits {
			if key.owner == owner {
				out[key.version] = rec
			}
		}
	}
	return out
}

// shardsAvailable counts the distinct shard indexes of (owner, version)
// for which some node holds a digest-valid fragment, stopping as soon as
// reconstruction is possible.
func (s *ReplicatedStore) shardsAvailable(owner, version int, rec replCommitRec) int {
	n := 0
	for idx := 0; idx < rec.frags && n < rec.need(); idx++ {
		if _, ok := s.findFrag(owner, version, idx, rec); ok {
			n++
		}
	}
	return n
}

// Open implements Store. When the owner's local copy is gone (always, for
// the erasure codecs), the checkpoint is reassembled from peer shards —
// tolerating up to m missing or digest-mismatched ones — validated against
// the commit marker, and re-installed in the owner's memory (the restarted
// node re-hosting its line, as ReStore's re-distribution does).
func (s *ReplicatedStore) Open(rank, version int) (Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ck, ok := s.nodes[rank].local[version]; ok {
		if !ck.commit {
			return nil, fmt.Errorf("%w: rank %d version %d", ErrNotCommitted, rank, version)
		}
		return &memSnap{ck: ck}, nil
	}
	rec, ok := s.peerCommitted(rank)[version]
	if !ok {
		return nil, fmt.Errorf("%w: rank %d version %d (no local copy, no peer commit marker)", ErrNotFound, rank, version)
	}
	units := rec.frags
	if _, hasCross := rec.crossHolder(); hasCross {
		units++ // the cross-group parity shard at index rec.frags
	}
	shards := make([][]byte, units)
	for idx := range shards {
		if frag, ok := s.findFrag(rank, version, idx, rec); ok {
			shards[idx] = frag
		}
	}
	sections, err := reassembleSections(rec, shards)
	if err != nil {
		return nil, fmt.Errorf("%w: rank %d version %d: %v", ErrNotFound, rank, version, err)
	}
	ck := &memCkpt{sections: sections, commit: true}
	s.nodes[rank].local[version] = ck
	s.reassemblies++
	return &memSnap{ck: ck}, nil
}

// reassembleSections decodes a shard set against its commit marker: codec
// reconstruction, whole-blob digest validation, section decode. The slice
// may carry the cross-group parity shard at index rec.frags; a valid one
// is the blob itself and short-circuits the codec — the whole-group-loss
// path, where zero group-local shards survive. Decode-around of up to m
// lost or corrupt group-local shards is unchanged when no parity shard
// was fetched.
func reassembleSections(rec replCommitRec, shards [][]byte) (map[string][]byte, error) {
	if len(shards) > rec.frags {
		if g := shards[rec.frags]; g != nil && rec.shardValid(rec.frags, g) {
			return decodeReplSections(g)
		}
		shards = shards[:rec.frags]
	}
	codec, err := rec.codecOf()
	if err != nil {
		return nil, err
	}
	blob, err := codec.Decode(shards, rec.total)
	if err != nil {
		return nil, err
	}
	if len(blob) != rec.total || replSum(blob) != rec.sum {
		return nil, fmt.Errorf("stable: reassembly digest mismatch (%d/%d bytes)", len(blob), rec.total)
	}
	return decodeReplSections(blob)
}

// findFrag locates a digest-valid copy of one shard; a corrupt copy on one
// node is skipped in favor of a valid copy elsewhere.
func (s *ReplicatedStore) findFrag(owner, version, idx int, rec replCommitRec) ([]byte, bool) {
	for _, node := range s.nodes {
		if frag, ok := node.frags[replFragKey{owner: owner, version: version, idx: idx}]; ok && rec.shardValid(idx, frag) {
			return frag, true
		}
	}
	return nil, false
}

// Retire implements Store: it prunes the rank's old local versions and the
// fragments and markers peers hold for them.
func (s *ReplicatedStore) Retire(rank, version int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.nodes[rank].local {
		if v < version {
			delete(s.nodes[rank].local, v)
		}
	}
	for _, node := range s.nodes {
		for key := range node.frags {
			if key.owner == rank && key.version < version {
				delete(node.frags, key)
			}
		}
		for key := range node.commits {
			if key.owner == rank && key.version < version {
				delete(node.commits, key)
			}
		}
	}
	return nil
}

// Truncate implements Store: it drops the rank's versions above the
// recovery line everywhere — local memory, peer fragments, and peer commit
// markers — so a dead generation's lines cannot resurface.
func (s *ReplicatedStore) Truncate(rank, version int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.nodes[rank].local {
		if v > version {
			delete(s.nodes[rank].local, v)
		}
	}
	for _, node := range s.nodes {
		for key := range node.frags {
			if key.owner == rank && key.version > version {
				delete(node.frags, key)
			}
		}
		for key := range node.commits {
			if key.owner == rank && key.version > version {
				delete(node.commits, key)
			}
		}
	}
	return nil
}

// --- Blob and message codecs ---

// encodeReplSections flattens a section map into one replication blob.
func encodeReplSections(sections map[string][]byte) []byte {
	names := make([]string, 0, len(sections))
	size := 0
	for n, d := range sections {
		names = append(names, n)
		size += len(n) + len(d) + 16
	}
	sort.Strings(names)
	w := wire.NewWriter(16 + size)
	w.U32(uint32(len(names)))
	for _, n := range names {
		w.String(n)
		w.Bytes32(sections[n])
	}
	return w.Bytes()
}

func decodeReplSections(blob []byte) (map[string][]byte, error) {
	r := wire.NewReader(blob)
	n := r.Count(8) // minimum bytes per serialized section
	sections := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		name := r.String()
		data := r.Bytes32()
		if r.Err() != nil {
			break
		}
		sections[name] = append([]byte(nil), data...)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("corrupt replication blob: %w", err)
	}
	return sections, nil
}

// splitFragments cuts the blob into k nearly equal pieces (fewer when the
// blob is shorter than k bytes; always at least one, possibly empty). Each
// fragment is an independent copy: a sub-slice would keep the entire blob
// reachable for as long as ANY fragment is retained anywhere, so pruning a
// line's other fragments (Retire/Truncate) would reclaim no memory.
func splitFragments(blob []byte, k int) [][]byte {
	if k > len(blob) {
		k = len(blob)
	}
	if k < 1 {
		k = 1
	}
	frags := make([][]byte, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := i*len(blob)/k, (i+1)*len(blob)/k
		frags = append(frags, append(make([]byte, 0, hi-lo), blob[lo:hi]...))
	}
	return frags
}

// replSum is a simple FNV-1a digest for reassembly validation.
func replSum(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	sum := uint64(offset)
	for _, c := range b {
		sum = (sum ^ uint64(c)) * prime
	}
	return sum
}

// The fragment header names the codec and shard geometry so a holder can
// attribute a shard without its marker; the marker remains the
// authoritative record reassembly validates against.
func encodeReplFrag(owner, version int, inc uint64, codecID uint8, shards, idx int, frag []byte) replPayload {
	w := wire.NewWriter(40 + len(frag))
	w.U8(replMsgFrag)
	w.Int(owner)
	w.Int(version)
	w.U64(inc)
	w.U8(codecID)
	w.Int(shards)
	w.Int(idx)
	w.Bytes32(frag)
	return replPayload(w.Bytes())
}

func decodeReplFrag(data replPayload) (owner, version int, inc uint64, codecID uint8, shards, idx int, frag []byte, err error) {
	r := wire.NewReader(data[1:])
	owner, version = r.Int(), r.Int()
	inc = r.U64()
	codecID = r.U8()
	shards = r.Int()
	idx = r.Int()
	frag = append([]byte(nil), r.Bytes32()...)
	return owner, version, inc, codecID, shards, idx, frag, r.Err()
}

// writeReplRec and readReplRec (de)serialize a commit marker's record; the
// same layout is embedded in the distributed store's query responses.
func writeReplRec(w *wire.Writer, rec replCommitRec) {
	w.U8(rec.codec)
	w.Int(rec.frags)
	w.Int(rec.data)
	w.Int(rec.total)
	w.U64(rec.sum)
	w.U64s(rec.sums)
	w.Int(rec.cross)
}

func readReplRec(r *wire.Reader) replCommitRec {
	return replCommitRec{
		codec: r.U8(),
		frags: r.Int(),
		data:  r.Int(),
		total: r.Int(),
		sum:   r.U64(),
		sums:  r.U64s(),
		cross: r.Int(),
	}
}

// replRecWireMin is the minimum serialized size of a replCommitRec, for
// count clamping in repeated decoders.
const replRecWireMin = 1 + 8 + 8 + 8 + 8 + 4 + 8

func encodeReplCommit(owner, version int, inc uint64, rec replCommitRec) replPayload {
	w := wire.NewWriter(64 + 8*len(rec.sums))
	w.U8(replMsgCommit)
	w.Int(owner)
	w.Int(version)
	w.U64(inc)
	writeReplRec(w, rec)
	return replPayload(w.Bytes())
}

func decodeReplCommit(data replPayload) (owner, version int, inc uint64, rec replCommitRec, err error) {
	r := wire.NewReader(data[1:])
	owner, version = r.Int(), r.Int()
	inc = r.U64()
	rec = readReplRec(r)
	if err := r.Err(); err != nil {
		return owner, version, inc, rec, err
	}
	if !rec.sane() {
		return owner, version, inc, rec, fmt.Errorf("stable: insane commit marker geometry (frags=%d data=%d total=%d)", rec.frags, rec.data, rec.total)
	}
	return owner, version, inc, rec, nil
}

func encodeReplAck(owner, version, from int) replPayload {
	w := wire.NewWriter(24)
	w.U8(replMsgAck)
	w.Int(owner)
	w.Int(version)
	w.Int(from)
	return replPayload(w.Bytes())
}

func decodeReplAck(data replPayload) (owner, version, from int, err error) {
	r := wire.NewReader(data[1:])
	owner, version, from = r.Int(), r.Int(), r.Int()
	return owner, version, from, r.Err()
}
