package stable

import (
	"testing"
)

// FuzzReplDecode exercises the replication and recovery-query codecs with
// arbitrary bytes — exactly what a corrupt frame off a real socket would
// deliver to the store daemons. No input may panic or allocate beyond the
// input's own size class.
func FuzzReplDecode(f *testing.F) {
	// Corpus: real frames from a committed replication round.
	sections := map[string][]byte{"app": []byte("application state"), "late": {1, 2, 3, 4}}
	blob := encodeReplSections(sections)
	f.Add([]byte(blob))
	frags := splitFragments(blob, 2)
	f.Add([]byte(encodeReplFrag(1, 3, 0, CodecDup, 2, 0, frags[0])))
	f.Add([]byte(encodeReplCommit(1, 3, 0, replCommitRec{codec: CodecDup, frags: 2, data: 2, total: len(blob), sum: replSum(blob), sums: shardSums(frags)})))
	rs, _ := NewCodec("rs", 4, 2)
	rsShards, _ := rs.Encode(blob)
	f.Add([]byte(encodeReplFrag(1, 3, 0, CodecRS, 6, 5, rsShards[5])))
	f.Add([]byte(encodeReplCommit(1, 3, 0, replCommitRec{codec: CodecRS, frags: 6, data: 4, total: len(blob), sum: replSum(blob), sums: shardSums(rsShards)})))
	f.Add([]byte(encodeReplAck(1, 3, 2)))
	f.Add([]byte(encodeDistQueryLast(9, 1)))
	f.Add([]byte(encodeDistRespLast(9, []distLastEntry{{version: 3, rec: replCommitRec{frags: 2, total: 10, sum: 42}, held: []int{0, 1}}})))
	f.Add([]byte(encodeDistQueryFrag(10, 1, 3, 0)))
	f.Add([]byte(encodeDistRespFrag(10, true, frags[1])))
	f.Add([]byte(encodeDistPrune(1, 3, true)))
	f.Add(blob[:len(blob)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodeReplSections(data)
		if len(data) == 0 {
			return
		}
		p := replPayload(data)
		_, _, _, _, _, _, _, _ = decodeReplFrag(p)
		_, _, _, _, _ = decodeReplCommit(p)
		_, _, _, _ = decodeReplAck(p)
		_, _, _ = decodeDistQueryLast(p)
		_, _, _ = decodeDistRespLast(p)
		_, _, _, _, _ = decodeDistQueryFrag(p)
		_, _, _, _ = decodeDistRespFrag(p)
		_, _, _, _ = decodeDistPrune(p)
		_, _ = peekDistReqID(p)
	})
}
