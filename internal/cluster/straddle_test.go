package cluster_test

import (
	"sync"
	"testing"

	"c3/internal/ckpt"
	"c3/internal/cluster"
	"c3/internal/sched"
)

// These tests cover non-blocking receives posted before a recovery line and
// completed after it: every iteration of sched.StraddleApp passes a
// checkpoint pragma between Irecv and Wait, so each recovery line has one
// crossing request per rank (paper Section 4.1's request-table case). The
// pre-fix protocol lost the completion kind of a crossing request when the
// completing late message was also the last expected one (the commit
// serialized the request table before the completion was recorded), which
// shifted the message stream by one on recovery.

func straddleRef(t *testing.T, ranks, iters int) *sync.Map {
	t.Helper()
	var ref sync.Map
	run(t, cluster.Config{Ranks: ranks, App: sched.StraddleApp(iters, &ref), Seed: 1})
	return &ref
}

func checkStraddle(t *testing.T, ranks int, ref, got *sync.Map, label string) {
	t.Helper()
	for r := 0; r < ranks; r++ {
		want, _ := ref.Load(r)
		gotv, ok := got.Load(r)
		if !ok {
			t.Fatalf("%s: rank %d has no result", label, r)
		}
		if want != gotv {
			t.Errorf("%s: rank %d checksum diverged: failure-free %v, recovered %v", label, r, want, gotv)
		}
	}
}

// TestIrecvStraddlesRecoveryLine exercises crossing requests under real
// (OS) scheduling with failures, in both commit modes.
func TestIrecvStraddlesRecoveryLine(t *testing.T) {
	const ranks, iters = 5, 12
	ref := straddleRef(t, ranks, iters)
	for _, mode := range []struct {
		name  string
		async bool
	}{{"sync", false}, {"async", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			var got sync.Map
			res := run(t, cluster.Config{
				Ranks:    ranks,
				App:      sched.StraddleApp(iters, &got),
				Failures: []cluster.FailureSpec{{Rank: 1, AtPragma: 5}, {Rank: 3, AtPragma: 4}},
				Policy:   ckpt.Policy{EveryNthPragma: 2, AsyncCommit: mode.async},
			})
			if res.Attempts < 2 {
				t.Fatalf("attempts = %d, want at least one recovery", res.Attempts)
			}
			checkStraddle(t, ranks, ref, &got, mode.name)
		})
	}
}

// TestIrecvStraddleSeeded sweeps the same scenario under the deterministic
// engine — including seed 4, which reproduced the lost-completion-kind
// defect before the fix.
func TestIrecvStraddleSeeded(t *testing.T) {
	const ranks, iters = 5, 12
	ref := straddleRef(t, ranks, iters)
	for _, mode := range []struct {
		name  string
		async bool
	}{{"sync", false}, {"async", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				var got sync.Map
				run(t, cluster.Config{
					Ranks:    ranks,
					App:      sched.StraddleApp(iters, &got),
					Failures: []cluster.FailureSpec{{Rank: 1, AtPragma: 5}, {Rank: 3, AtPragma: 4}},
					Policy:   ckpt.Policy{EveryNthPragma: 2, AsyncCommit: mode.async},
					Seed:     seed,
				})
				checkStraddle(t, ranks, ref, &got, mode.name)
			}
		})
	}
}
