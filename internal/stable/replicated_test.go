package stable

import (
	"bytes"
	"errors"
	"runtime"
	"testing"
	"time"

	"c3/internal/transport"
)

func writeCommitted(t *testing.T, s Store, rank, version int, sections map[string][]byte) {
	t.Helper()
	ck, err := s.Begin(rank, version)
	if err != nil {
		t.Fatalf("Begin(%d,%d): %v", rank, version, err)
	}
	for name, data := range sections {
		if err := ck.WriteSection(name, data); err != nil {
			t.Fatalf("WriteSection(%q): %v", name, err)
		}
	}
	if err := ck.Commit(); err != nil {
		t.Fatalf("Commit(%d,%d): %v", rank, version, err)
	}
}

func TestReplicatedRoundtrip(t *testing.T) {
	s := NewReplicatedStore(4)
	defer s.Close()
	sections := map[string][]byte{"app": []byte("state"), "mpi": []byte{1, 2, 3}}
	writeCommitted(t, s, 1, 1, sections)

	v, ok, err := s.LastCommitted(1)
	if err != nil || !ok || v != 1 {
		t.Fatalf("LastCommitted = %d,%v,%v; want 1,true,nil", v, ok, err)
	}
	snap, err := s.Open(1, 1)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer snap.Close()
	got, err := snap.ReadSection("app")
	if err != nil || string(got) != "state" {
		t.Fatalf("ReadSection(app) = %q,%v", got, err)
	}
	if s.Reassemblies() != 0 {
		t.Fatalf("local read must not reassemble; got %d", s.Reassemblies())
	}
	if st := s.NetworkStats(); st.MessagesSent == 0 {
		t.Fatalf("replication must go over the transport; stats = %+v", st)
	}
}

func TestReplicatedRecoversAfterNodeLoss(t *testing.T) {
	s := NewReplicatedStore(4)
	defer s.Close()
	for v := 1; v <= 3; v++ {
		writeCommitted(t, s, 2, v, map[string][]byte{"app": []byte{byte(v), byte(v * 7)}})
	}

	// Fail-stop: rank 2's memory (and everything it held for peers) is gone.
	s.FailNode(2)

	v, ok, err := s.LastCommitted(2)
	if err != nil || !ok || v != 3 {
		t.Fatalf("LastCommitted after loss = %d,%v,%v; want 3,true,nil", v, ok, err)
	}
	snap, err := s.Open(2, 3)
	if err != nil {
		t.Fatalf("Open after loss: %v", err)
	}
	got, err := snap.ReadSection("app")
	if err != nil || len(got) != 2 || got[0] != 3 || got[1] != 21 {
		t.Fatalf("reassembled section = %v, %v", got, err)
	}
	snap.Close()
	if s.Reassemblies() == 0 {
		t.Fatal("expected a peer reassembly")
	}
	// The rebuilt line is re-hosted locally: a second open is local.
	if _, err := s.Open(2, 3); err != nil {
		t.Fatalf("re-open: %v", err)
	}
	if s.Reassemblies() != 1 {
		t.Fatalf("re-open must use the re-hosted copy; reassemblies = %d", s.Reassemblies())
	}
}

func TestReplicatedNodeLossLosesPeerHoldings(t *testing.T) {
	// In a 3-rank world, rank 0 replicates to 1 and 2. Failing both
	// neighbors (after failing 0) leaves no copy anywhere.
	s := NewReplicatedStore(3)
	defer s.Close()
	writeCommitted(t, s, 0, 1, map[string][]byte{"app": []byte("x")})
	s.FailNode(0)
	s.FailNode(1)
	s.FailNode(2)
	if _, ok, err := s.LastCommitted(0); err != nil || ok {
		t.Fatalf("triple failure must lose the line; got ok=%v err=%v", ok, err)
	}
	if _, err := s.Open(0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Open after triple failure = %v; want ErrNotFound", err)
	}
}

func TestReplicatedSurvivesOneNeighborLoss(t *testing.T) {
	s := NewReplicatedStore(4)
	defer s.Close()
	writeCommitted(t, s, 0, 1, map[string][]byte{"app": []byte("payload")})
	s.FailNode(0) // owner's memory gone
	s.FailNode(1) // one of the two replica holders gone too
	snap, err := s.Open(0, 1)
	if err != nil {
		t.Fatalf("Open with one surviving replica: %v", err)
	}
	defer snap.Close()
	got, _ := snap.ReadSection("app")
	if string(got) != "payload" {
		t.Fatalf("got %q", got)
	}
}

func TestReplicatedRetirePrunesPeerFragments(t *testing.T) {
	s := NewReplicatedStore(3)
	defer s.Close()
	writeCommitted(t, s, 0, 1, map[string][]byte{"app": []byte("old")})
	writeCommitted(t, s, 0, 2, map[string][]byte{"app": []byte("new")})
	if err := s.Retire(0, 2); err != nil {
		t.Fatal(err)
	}
	s.FailNode(0)
	if v, ok, _ := s.LastCommitted(0); !ok || v != 2 {
		t.Fatalf("after retire+loss LastCommitted = %d,%v; want 2", v, ok)
	}
	if _, err := s.Open(0, 1); err == nil {
		t.Fatal("retired version must be gone from peers too")
	}
}

func TestReplicatedUncommittedInvisible(t *testing.T) {
	s := NewReplicatedStore(2)
	defer s.Close()
	ck, err := s.Begin(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.WriteSection("app", []byte("half")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.LastCommitted(0); ok {
		t.Fatal("uncommitted checkpoint visible")
	}
	if err := ck.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.LastCommitted(0); ok {
		t.Fatal("aborted checkpoint visible")
	}
}

func TestReplicatedDegenerateWorlds(t *testing.T) {
	// n=1: no neighbors; the store is plain local memory.
	s1 := NewReplicatedStore(1)
	defer s1.Close()
	writeCommitted(t, s1, 0, 1, map[string][]byte{"app": []byte("solo")})
	if v, ok, _ := s1.LastCommitted(0); !ok || v != 1 {
		t.Fatalf("n=1 LastCommitted = %d,%v", v, ok)
	}

	// n=2: a single replica on the one neighbor still allows recovery.
	s2 := NewReplicatedStore(2)
	defer s2.Close()
	writeCommitted(t, s2, 0, 1, map[string][]byte{"app": []byte("pair")})
	s2.FailNode(0)
	snap, err := s2.Open(0, 1)
	if err != nil {
		t.Fatalf("n=2 recovery: %v", err)
	}
	snap.Close()
}

func TestReplicatedWithLatencyModelCommitIsDurable(t *testing.T) {
	// Even with replication latency, Commit must not return before the
	// fragments are acknowledged — recovery immediately after a commit plus
	// owner failure must succeed.
	s := NewReplicatedStore(4, WithReplicationLatency(
		transport.ConstantLatency(2*time.Millisecond, 0)))
	defer s.Close()
	writeCommitted(t, s, 1, 1, map[string][]byte{"app": []byte("durable")})
	s.FailNode(1)
	snap, err := s.Open(1, 1)
	if err != nil {
		t.Fatalf("commit returned before replication was durable: %v", err)
	}
	snap.Close()
}

func TestReplicatedManyFragments(t *testing.T) {
	s := NewReplicatedStore(5, WithFragments(7))
	defer s.Close()
	big := make([]byte, 10_000)
	for i := range big {
		big[i] = byte(i * 31)
	}
	writeCommitted(t, s, 3, 9, map[string][]byte{"heap": big, "tiny": {1}})
	s.FailNode(3)
	snap, err := s.Open(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	got, err := snap.ReadSection("heap")
	if err != nil || len(got) != len(big) {
		t.Fatalf("heap = %d bytes, %v", len(got), err)
	}
	for i := range got {
		if got[i] != big[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}

// --- Erasure-codec store behavior ---

func mustCodec(t *testing.T, name string, k, m int) Codec {
	t.Helper()
	c, err := NewCodec(name, k, m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestReplicatedRSCodecSurvivesTwoLosses: with rs k=4,m=2 the line lives
// only as shards on six distinct successors; the owner plus ANY two of
// them can die and the line still reassembles byte-identically.
func TestReplicatedRSCodecSurvivesTwoLosses(t *testing.T) {
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	for pair := 0; pair < 5; pair++ {
		s := NewReplicatedStore(8, WithCodec(mustCodec(t, "rs", 4, 2)))
		writeCommitted(t, s, 0, 1, map[string][]byte{"app": payload})
		s.FailNode(0)        // the owner (holds nothing, but dies first)
		s.FailNode(1 + pair) // two of the six shard holders
		s.FailNode(2 + pair)
		snap, err := s.Open(0, 1)
		if err != nil {
			s.Close()
			t.Fatalf("holders %d,%d dead: %v", 1+pair, 2+pair, err)
		}
		got, err := snap.ReadSection("app")
		if err != nil || len(got) != len(payload) {
			t.Fatalf("section = %d bytes, %v", len(got), err)
		}
		for i := range got {
			if got[i] != payload[i] {
				t.Fatalf("byte %d differs after reassembly", i)
			}
		}
		snap.Close()
		s.Close()
	}
}

// TestReplicatedRSCodecThreeLossesFail: m+1 shard losses must fail cleanly.
func TestReplicatedRSCodecThreeLossesFail(t *testing.T) {
	s := NewReplicatedStore(8, WithCodec(mustCodec(t, "rs", 4, 2)))
	defer s.Close()
	writeCommitted(t, s, 0, 1, map[string][]byte{"app": []byte("gone")})
	s.FailNode(0)
	s.FailNode(1)
	s.FailNode(2)
	s.FailNode(3)
	if _, ok, err := s.LastCommitted(0); err != nil || ok {
		t.Fatalf("LastCommitted with 3 lost shards = ok=%v err=%v", ok, err)
	}
	if _, err := s.Open(0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Open with 3 lost shards = %v, want ErrNotFound", err)
	}
}

// TestReplicatedXORCodecSurvivesOneLoss: k+1 single-parity coding.
func TestReplicatedXORCodecSurvivesOneLoss(t *testing.T) {
	s := NewReplicatedStore(6, WithCodec(mustCodec(t, "xor", 4, 1)))
	defer s.Close()
	writeCommitted(t, s, 2, 1, map[string][]byte{"app": []byte("xor-protected state")})
	s.FailNode(2) // owner
	s.FailNode(3) // one shard holder
	snap, err := s.Open(2, 1)
	if err != nil {
		t.Fatalf("Open after one shard loss: %v", err)
	}
	defer snap.Close()
	if got, _ := snap.ReadSection("app"); string(got) != "xor-protected state" {
		t.Fatalf("got %q", got)
	}
	if s.Reassemblies() != 1 {
		t.Fatalf("reassemblies = %d", s.Reassemblies())
	}
}

// TestReplicatedCodecCorruptShardRepaired: a digest-mismatched shard counts
// as lost and is repaired from parity, not concatenated into a bogus blob.
func TestReplicatedCodecCorruptShardRepaired(t *testing.T) {
	s := NewReplicatedStore(8, WithCodec(mustCodec(t, "rs", 4, 2)))
	defer s.Close()
	payload := []byte("erasure coding repairs corruption too, not just loss....")
	writeCommitted(t, s, 0, 1, map[string][]byte{"app": payload})

	// Flip a byte in every replica of shard 0, wherever it landed.
	s.mu.Lock()
	corrupted := 0
	for _, node := range s.nodes {
		if frag, ok := node.frags[replFragKey{owner: 0, version: 1, idx: 0}]; ok && len(frag) > 0 {
			frag[0] ^= 0xff
			corrupted++
		}
	}
	s.mu.Unlock()
	if corrupted == 0 {
		t.Fatal("no stored copy of shard 0 found")
	}

	s.FailNode(0)
	snap, err := s.Open(0, 1)
	if err != nil {
		t.Fatalf("Open with corrupt shard: %v", err)
	}
	defer snap.Close()
	if got, _ := snap.ReadSection("app"); string(got) != string(payload) {
		t.Fatalf("corrupt shard leaked into reassembly: %q", got)
	}
}

// TestReplicatedCodecStoredBytesRatio is the acceptance criterion: at equal
// fault tolerance (any two simultaneous losses), rs k=4,m=2 stores at most
// 0.6x the bytes per rank of dup +1/+2 full replication.
func TestReplicatedCodecStoredBytesRatio(t *testing.T) {
	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	measure := func(codec Codec) int64 {
		s := NewReplicatedStore(8, WithCodec(codec))
		defer s.Close()
		for r := 0; r < 8; r++ {
			writeCommitted(t, s, r, 1, map[string][]byte{"app": payload})
		}
		return s.StoredBytes()
	}
	dup := measure(mustCodec(t, "dup", 2, 0))
	rs := measure(mustCodec(t, "rs", 4, 2))
	if rs <= 0 || dup <= 0 {
		t.Fatalf("stored bytes dup=%d rs=%d", dup, rs)
	}
	ratio := float64(rs) / float64(dup)
	t.Logf("stored bytes: dup=%d rs=%d ratio=%.3f", dup, rs, ratio)
	if ratio > 0.6 {
		t.Fatalf("rs/dup stored-bytes ratio = %.3f, want <= 0.6", ratio)
	}
}

// TestSplitFragmentsDoNotAlias: fragments must be independent copies — a
// sub-slice would pin the entire blob for as long as any fragment lives.
func TestSplitFragmentsDoNotAlias(t *testing.T) {
	blob := make([]byte, 1000)
	for i := range blob {
		blob[i] = byte(i)
	}
	frags := splitFragments(blob, 4)
	for i, f := range frags {
		if len(f) == 0 {
			continue
		}
		if &f[0] == &blob[i*len(blob)/4] {
			t.Fatalf("fragment %d aliases the blob", i)
		}
		if len(f) != cap(f) {
			t.Fatalf("fragment %d has spare capacity %d (len %d) reaching into the blob", i, cap(f), len(f))
		}
	}
	orig := append([]byte(nil), frags[1]...)
	for i := range blob {
		blob[i] = 0xee
	}
	if !bytes.Equal(frags[1], orig) {
		t.Fatal("mutating the blob changed a fragment")
	}
}

// TestFragmentRetentionReleasesBlob: the regression the aliasing bug
// caused — after the blob's lines are retired, the memory must actually be
// reclaimable even while OTHER lines' fragments are still held. With
// aliased sub-slices each retained fragment kept its whole source blob
// live; with copies the heap returns to within a small envelope.
func TestFragmentRetentionReleasesBlob(t *testing.T) {
	const blobSize = 32 << 20
	s := NewReplicatedStore(4) // dup: peers hold full fragment sets
	defer s.Close()

	var base runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&base)

	big := make([]byte, blobSize)
	for i := 0; i < len(big); i += 4096 {
		big[i] = byte(i)
	}
	writeCommitted(t, s, 0, 1, map[string][]byte{"heap": big})
	big = nil
	// A later small line; retiring below it prunes version 1 everywhere.
	writeCommitted(t, s, 0, 2, map[string][]byte{"heap": []byte("tiny")})
	if err := s.Retire(0, 2); err != nil {
		t.Fatal(err)
	}

	var after runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&after)
	growth := int64(after.HeapAlloc) - int64(base.HeapAlloc)
	// Version 2 plus bookkeeping is tiny; anything near a blob copy means
	// version 1's memory is still pinned.
	if growth > blobSize/2 {
		t.Fatalf("heap grew %d bytes after retiring the big line (blob %d) — fragments pin the blob", growth, blobSize)
	}
}
