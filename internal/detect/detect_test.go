package detect

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"c3/internal/member"
	"c3/internal/transport"
)

// TestRingSets pins the full-world monitor ring the detector boots with:
// two successors watched, two predecessors watching. The ring math itself
// now lives in member.Set; this asserts the detector's use of it.
func TestRingSets(t *testing.T) {
	cases := []struct {
		rank, n    int
		succ, pred []int
	}{
		{0, 4, []int{1, 2}, []int{3, 2}},
		{3, 4, []int{0, 1}, []int{2, 1}},
		{1, 2, []int{0}, []int{0}},
		{0, 1, nil, nil},
	}
	for _, c := range cases {
		m := member.Launch(c.n)
		if got := m.Successors(c.rank, 2); !equalInts(got, c.succ) {
			t.Errorf("Successors(%d) in world %d = %v, want %v", c.rank, c.n, got, c.succ)
		}
		if got := m.Predecessors(c.rank, 2); !equalInts(got, c.pred) {
			t.Errorf("Predecessors(%d) in world %d = %v, want %v", c.rank, c.n, got, c.pred)
		}
	}
}

func TestMonitorPhiAccrual(t *testing.T) {
	t0 := time.Unix(1000, 0)
	m := newMonitor(10*time.Millisecond, t0)

	// Regular arrivals every 10ms: phi right after an arrival is ~0 and
	// stays small one interval later.
	now := t0
	for i := 0; i < 20; i++ {
		now = now.Add(10 * time.Millisecond)
		m.Observe(now)
	}
	if phi := m.Phi(now.Add(10 * time.Millisecond)); phi > 1 {
		t.Fatalf("phi one interval after arrival = %.2f, want < 1", phi)
	}
	// Silence accrues: ~11.5 intervals of silence crosses phi 5.
	if phi := m.Phi(now.Add(150 * time.Millisecond)); phi < 5 {
		t.Fatalf("phi after 15 silent intervals = %.2f, want >= 5", phi)
	}
	// A burst of near-simultaneous piggybacked arrivals must not collapse
	// the mean below the heartbeat floor.
	for i := 0; i < 50; i++ {
		now = now.Add(10 * time.Microsecond)
		m.Observe(now)
	}
	if phi := m.Phi(now.Add(15 * time.Millisecond)); phi > 2 {
		t.Fatalf("phi after burst + 1.5 intervals = %.2f, want <= 2 (mean floored)", phi)
	}
	// Reset restarts the silence clock.
	m.Reset(now.Add(time.Second))
	if phi := m.Phi(now.Add(time.Second + 5*time.Millisecond)); phi > 1 {
		t.Fatalf("phi right after reset = %.2f, want ~0", phi)
	}
}

func TestCodecRoundtrips(t *testing.T) {
	if e, err := decodePing(encodePing(7)); err != nil || e != 7 {
		t.Fatalf("ping roundtrip: epoch=%d err=%v", e, err)
	}
	if e, tgt, err := decodeSuspect(encodeSuspect(3, 12)); err != nil || e != 3 || tgt != 12 {
		t.Fatalf("suspect roundtrip: epoch=%d target=%d err=%v", e, tgt, err)
	}
	e, s, dead, members, err := decodePropose(encodePropose(4, 9, []int{1, 3}, []int{0, 2, 4}))
	if err != nil || e != 4 || s != 9 || !equalInts(dead, []int{1, 3}) || !equalInts(members, []int{0, 2, 4}) {
		t.Fatalf("propose roundtrip: epoch=%d seq=%d dead=%v members=%v err=%v", e, s, dead, members, err)
	}
	if e, s, err := decodeAck(encodeAck(4, 9)); err != nil || e != 4 || s != 9 {
		t.Fatalf("ack roundtrip: epoch=%d seq=%d err=%v", e, s, err)
	}
	e, dead, members, err = decodeCommit(encodeCommit(5, []int{2}, []int{0, 1, 3}))
	if err != nil || e != 5 || !equalInts(dead, []int{2}) || !equalInts(members, []int{0, 1, 3}) {
		t.Fatalf("commit roundtrip: epoch=%d dead=%v members=%v err=%v", e, dead, members, err)
	}
	e, dead, members, err = decodeState(encodeState(6, nil, []int{0, 1}))
	if err != nil || e != 6 || len(dead) != 0 || !equalInts(members, []int{0, 1}) {
		t.Fatalf("state roundtrip: epoch=%d dead=%v members=%v err=%v", e, dead, members, err)
	}
	if e, tgt, err := decodeDrain(encodeDrain(7, 5)); err != nil || e != 7 || tgt != 5 {
		t.Fatalf("drain roundtrip: epoch=%d target=%d err=%v", e, tgt, err)
	}
	// Truncated payloads must error, not panic.
	for _, p := range []payload{encodePropose(1, 1, []int{1}, []int{0, 1}), encodeCommit(2, []int{0, 1}, []int{2})} {
		if _, _, _, _, err := decodePropose(p[:3]); err == nil && p[0] == msgPropose {
			t.Fatalf("truncated propose decoded without error")
		}
		_ = p
	}
}

// tuned widens the failure-detection margins that real time.Sleep-based
// tests depend on. The phi thresholds and heartbeat cadences below assume
// goroutines get scheduled within a couple of heartbeat intervals; under
// the race detector (or a heavily loaded CI runner) a starved emitter can
// fall silent long enough to cross the threshold and misfire a false
// suspicion. Slower heartbeats make a fixed scheduler stall span fewer
// intervals, and a higher threshold demands proportionally more silence —
// the detection-latency assertions all poll with generous deadlines, so
// widening costs nothing but wall time.
func tuned(hb time.Duration, phi float64) (time.Duration, float64) {
	if raceEnabled {
		return 3 * hb, phi + 3
	}
	return 2 * hb, phi + 1
}

// world spins up one detector per rank on a shared in-memory network.
type world struct {
	nw   *transport.Network
	dets []*Detector
}

func newWorld(t *testing.T, n int, hb time.Duration, phi float64, opts ...transport.Option) *world {
	t.Helper()
	w := &world{nw: transport.NewNetwork(n, opts...), dets: make([]*Detector, n)}
	for r := 0; r < n; r++ {
		w.startRank(t, r, n, hb, phi)
	}
	t.Cleanup(func() {
		for _, d := range w.dets {
			if d != nil {
				d.Close()
			}
		}
	})
	return w
}

func (w *world) startRank(t *testing.T, r, n int, hb time.Duration, phi float64) *Detector {
	t.Helper()
	d, err := New(Options{
		Self: r, Ranks: n, Net: w.nw,
		HeartbeatInterval: hb, PhiThreshold: phi,
		Logf: func(format string, args ...any) { t.Logf("detect: "+format, args...) },
	})
	if err != nil {
		t.Fatalf("rank %d: %v", r, err)
	}
	w.dets[r] = d
	d.Start()
	return d
}

// kill fail-stops a rank: its detector stops and its endpoint dies.
func (w *world) kill(r int) {
	w.dets[r].Close()
	w.dets[r] = nil
	w.nw.Kill(r)
}

// awaitEpoch polls the given ranks until each reaches at least epoch e.
func (w *world) awaitEpoch(t *testing.T, ranks []int, e uint64, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		ok := true
		for _, r := range ranks {
			if w.dets[r].Epoch() < e {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			status := ""
			for _, r := range ranks {
				status += fmt.Sprintf(" rank%d:epoch=%d dead=%v suspected=%v;",
					r, w.dets[r].Epoch(), w.dets[r].Dead(), w.dets[r].Suspected())
			}
			t.Fatalf("epoch %d not reached within %v:%s", e, within, status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFailureFreeStaysAtEpochOne: with every rank heartbeating, no epoch
// transition and no suspicion survives a settling window.
func TestFailureFreeStaysAtEpochOne(t *testing.T) {
	hb, phi := tuned(5*time.Millisecond, 8)
	w := newWorld(t, 4, hb, phi)
	time.Sleep(80 * hb)
	for r, d := range w.dets {
		if e := d.Epoch(); e != 1 {
			t.Errorf("rank %d epoch = %d, want 1", r, e)
		}
		if dead := d.Dead(); len(dead) != 0 {
			t.Errorf("rank %d dead = %v, want none", r, dead)
		}
		if n := d.Detections(); n != 0 {
			t.Errorf("rank %d detections = %d, want 0", r, n)
		}
	}
}

// TestNoFalseSuspicionUnderScheduledDelay: heartbeats delivered through a
// constant scheduled delay (5x the heartbeat interval) keep flowing with
// their inter-arrival spacing intact, so the accrual detector must not
// suspect anyone — the classic timeout-detector false positive. When a rank
// then really dies, detection and agreement must still fire through the
// same delayed plane.
func TestNoFalseSuspicionUnderScheduledDelay(t *testing.T) {
	hb, phi := tuned(10*time.Millisecond, 8)
	delay := transport.ConstantLatency(5*hb, 0)
	w := newWorld(t, 4, hb, phi, transport.WithLatency(delay))
	time.Sleep(60 * hb)
	for r, d := range w.dets {
		if e := d.Epoch(); e != 1 {
			t.Fatalf("rank %d epoch = %d after delayed-but-live window, want 1 (false suspicion)", r, e)
		}
		if n := d.Detections(); n != 0 {
			t.Fatalf("rank %d detections = %d under scheduled delay, want 0", r, n)
		}
	}

	w.kill(1)
	survivors := []int{0, 2, 3}
	w.awaitEpoch(t, survivors, 2, 10*time.Second)
	for _, r := range survivors {
		if dead := w.dets[r].Dead(); !equalInts(dead, []int{1}) {
			t.Errorf("rank %d dead = %v, want [1]", r, dead)
		}
		if n := w.dets[r].Detections(); n != 1 {
			t.Errorf("rank %d detections = %d, want 1", r, n)
		}
		tm := w.dets[r].Times()
		if tm.AgreeAt.IsZero() {
			t.Errorf("rank %d has no agreement timestamp", r)
		}
	}
}

// TestTwoNearSimultaneousFailures: two ranks die within one heartbeat of
// each other; the survivors must converge on both deaths, either as one
// merged agreement or two consecutive epochs.
func TestTwoNearSimultaneousFailures(t *testing.T) {
	hb, phi := tuned(5*time.Millisecond, 6)
	w := newWorld(t, 5, hb, phi)
	time.Sleep(20 * hb) // settle
	w.kill(1)
	time.Sleep(hb / 2)
	w.kill(3)
	survivors := []int{0, 2, 4}
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, r := range survivors {
			if !equalInts(w.dets[r].Dead(), []int{1, 3}) {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			for _, r := range survivors {
				t.Logf("rank %d: epoch=%d dead=%v", r, w.dets[r].Epoch(), w.dets[r].Dead())
			}
			t.Fatal("survivors did not agree on both deaths")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, r := range survivors {
		if e := w.dets[r].Epoch(); e != 2 && e != 3 {
			t.Errorf("rank %d epoch = %d, want 2 (merged) or 3 (consecutive)", r, e)
		}
		if n := w.dets[r].Detections(); n != 2 {
			t.Errorf("rank %d detections = %d, want 2", r, n)
		}
	}
}

// TestCoordinatorDiesDuringRecovery: rank 0 dies; rank 1 — the coordinator
// for that agreement — dies moments later (possibly mid-proposal). Rank 2
// must take over and finish both agreements.
func TestCoordinatorDiesDuringRecovery(t *testing.T) {
	hb, phi := tuned(5*time.Millisecond, 6)
	w := newWorld(t, 5, hb, phi)
	time.Sleep(20 * hb)
	w.kill(0)
	time.Sleep(6 * hb)
	w.kill(1)
	survivors := []int{2, 3, 4}
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, r := range survivors {
			if !equalInts(w.dets[r].Dead(), []int{0, 1}) {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			for _, r := range survivors {
				t.Logf("rank %d: epoch=%d dead=%v suspected=%v", r, w.dets[r].Epoch(), w.dets[r].Dead(), w.dets[r].Suspected())
			}
			t.Fatal("survivors did not agree on both deaths after coordinator loss")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, r := range survivors {
		if n := w.dets[r].Detections(); n != 2 {
			t.Errorf("rank %d detections = %d, want 2", r, n)
		}
	}
}

// TestLateRankJoins: a world boots with one rank absent; the survivors
// agree it dead, then the rank comes up and Joins — adopting the committed
// epoch while the survivors mark it alive again.
func TestLateRankJoins(t *testing.T) {
	n := 4
	w := &world{nw: transport.NewNetwork(n), dets: make([]*Detector, n)}
	t.Cleanup(func() {
		for _, d := range w.dets {
			if d != nil {
				d.Close()
			}
		}
	})
	hb, phi := tuned(5*time.Millisecond, 6)
	for r := 0; r < 3; r++ {
		w.startRank(t, r, n, hb, phi)
	}
	w.awaitEpoch(t, []int{0, 1, 2}, 2, 10*time.Second)
	for _, r := range []int{0, 1, 2} {
		if dead := w.dets[r].Dead(); !equalInts(dead, []int{3}) {
			t.Fatalf("rank %d dead = %v, want [3]", r, dead)
		}
	}

	late := w.startRank(t, 3, n, hb, phi)
	epoch, err := late.Join(5 * time.Second)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if epoch < 2 {
		t.Fatalf("joined at epoch %d, want >= 2", epoch)
	}
	// Survivors must have marked rank 3 alive again on its hello.
	deadline := time.Now().Add(5 * time.Second)
	for {
		cleared := true
		for _, r := range []int{0, 1, 2} {
			if len(w.dets[r].Dead()) != 0 {
				cleared = false
			}
		}
		if cleared {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("survivors did not clear the rejoined rank from the dead set")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// And the world must stay stable afterwards (no oscillating suspicion
	// of the rejoined rank).
	time.Sleep(40 * hb)
	for r := 0; r < n; r++ {
		if dead := w.dets[r].Dead(); len(dead) != 0 {
			t.Errorf("rank %d dead = %v after rejoin, want none", r, dead)
		}
	}
}

// TestOnEpochCallback: the epoch callback delivers the transition exactly
// once per epoch with the newly dead ranks.
func TestOnEpochCallback(t *testing.T) {
	n := 4
	hb, phi := tuned(5*time.Millisecond, 6)
	nw := transport.NewNetwork(n)
	type event struct {
		epoch   uint64
		newDead []int
	}
	var mu sync.Mutex
	events := make(map[int][]event)
	dets := make([]*Detector, n)
	for r := 0; r < n; r++ {
		r := r
		d, err := New(Options{
			Self: r, Ranks: n, Net: nw,
			HeartbeatInterval: hb, PhiThreshold: phi,
			OnEpoch: func(epoch uint64, members member.Set, dead, newDead []int) {
				mu.Lock()
				events[r] = append(events[r], event{epoch, append([]int(nil), newDead...)})
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		dets[r] = d
		d.Start()
	}
	t.Cleanup(func() {
		for _, d := range dets {
			if d != nil {
				d.Close()
			}
		}
	})
	time.Sleep(20 * hb)
	dets[2].Close()
	dets[2] = nil
	nw.Kill(2)

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		ok := len(events[0]) > 0 && len(events[1]) > 0 && len(events[3]) > 0
		mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("epoch callbacks did not fire on all survivors")
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, r := range []int{0, 1, 3} {
		evs := events[r]
		if len(evs) != 1 {
			t.Errorf("rank %d saw %d epoch events, want 1 (%v)", r, len(evs), evs)
			continue
		}
		if evs[0].epoch != 2 || !equalInts(evs[0].newDead, []int{2}) {
			t.Errorf("rank %d event = %+v, want epoch 2 newDead [2]", r, evs[0])
		}
	}
}

// TestGrowThenDrain: a 4-member world with 6 address slots admits spare
// slot 4 via JoinNew (hello from a non-member is a join request folded
// into the next epoch agreement), then gracefully drains it again. Both
// transitions are ordinary epoch commits: quorum of the current
// membership, member list carried in the commit.
func TestGrowThenDrain(t *testing.T) {
	const capacity, boot = 6, 4
	hb, phi := tuned(5*time.Millisecond, 8)
	nw := transport.NewNetwork(capacity)
	dets := make([]*Detector, capacity)
	drained := make(chan uint64, 1)
	start := func(r int, members member.Set, onDrained func(uint64)) *Detector {
		d, err := New(Options{
			Self: r, Ranks: capacity, Members: members, Net: nw,
			HeartbeatInterval: hb, PhiThreshold: phi,
			OnDrained: onDrained,
			Logf:      func(format string, args ...any) { t.Logf("detect: "+format, args...) },
		})
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		dets[r] = d
		d.Start()
		return d
	}
	t.Cleanup(func() {
		for _, d := range dets {
			if d != nil {
				d.Close()
			}
		}
	})
	for r := 0; r < boot; r++ {
		start(r, member.Launch(boot), nil)
	}
	time.Sleep(20 * hb) // settle: no suspicion in the boot world

	// Grow: slot 4 boots with the membership it is NOT yet part of.
	spare := start(4, member.Launch(boot), func(e uint64) {
		select {
		case drained <- e:
		default:
		}
	})
	joinedAt, err := spare.JoinNew(10 * time.Second)
	if err != nil {
		t.Fatalf("JoinNew: %v", err)
	}
	if joinedAt < 2 {
		t.Fatalf("joined at epoch %d, want >= 2", joinedAt)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for r := 0; r <= 4; r++ {
			m := dets[r].Members()
			if !m.Contains(4) || m.Size() != 5 {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			for r := 0; r <= 4; r++ {
				t.Logf("rank %d: %s", r, dets[r].Members())
			}
			t.Fatal("world did not converge on the grown membership")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The grown world must be stable: no deaths, no residual suspicion.
	time.Sleep(30 * hb)
	for r := 0; r <= 4; r++ {
		if dead := dets[r].Dead(); len(dead) != 0 {
			t.Fatalf("rank %d dead = %v after grow, want none", r, dead)
		}
	}

	// Shrink: rank 0 requests a graceful drain of slot 4.
	if err := dets[0].Drain(4); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	select {
	case e := <-drained:
		if e < 3 {
			t.Fatalf("drained at epoch %d, want >= 3", e)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("OnDrained never fired on the drained rank")
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		ok := true
		for r := 0; r < boot; r++ {
			m := dets[r].Members()
			if m.Contains(4) || m.Size() != boot {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("world did not converge back to the boot membership")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// A drain is not a death: nobody's dead set or detection count moves.
	for r := 0; r < boot; r++ {
		if dead := dets[r].Dead(); len(dead) != 0 {
			t.Fatalf("rank %d dead = %v after drain, want none", r, dead)
		}
		if n := dets[r].Detections(); n != 0 {
			t.Fatalf("rank %d detections = %d after drain, want 0", r, n)
		}
	}
}

// TestDrainTargetMustBeMember: draining a slot outside the membership is
// an immediate error, not a stuck proposal.
func TestDrainTargetMustBeMember(t *testing.T) {
	hb, phi := tuned(5*time.Millisecond, 8)
	w := newWorld(t, 3, hb, phi)
	if err := w.dets[0].Drain(7); err == nil {
		t.Fatal("Drain(7) on a 3-member world should error")
	}
}
