package sched

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"c3/internal/cluster"
	"c3/internal/transport"
)

// The schedule file format is line-oriented text, stable enough to commit
// as testdata:
//
//	c3sched-schedule v1
//	seed <run seed>
//	attempt <index> seed <sub-seed>
//	d <step> <kind> <rank> <next>
//	...
//
// Kinds are the DecisionKind strings (start, preempt, block, exit,
// partition, heal).

const scheduleMagic = "c3sched-schedule v1"

// MarshalSchedule encodes a schedule in the text format.
func MarshalSchedule(s *cluster.Schedule) []byte {
	var b bytes.Buffer
	fmt.Fprintln(&b, scheduleMagic)
	fmt.Fprintf(&b, "seed %d\n", s.Seed)
	for i, t := range s.Attempts {
		fmt.Fprintf(&b, "attempt %d seed %d\n", i, t.Seed)
		for _, d := range t.Decisions {
			fmt.Fprintf(&b, "d %d %s %d %d\n", d.Step, d.Kind, d.Rank, d.Next)
		}
	}
	return b.Bytes()
}

func parseKind(s string) (transport.DecisionKind, error) {
	switch s {
	case "start":
		return transport.DecisionStart, nil
	case "preempt":
		return transport.DecisionPreempt, nil
	case "block":
		return transport.DecisionBlock, nil
	case "exit":
		return transport.DecisionExit, nil
	case "partition":
		return transport.DecisionPartition, nil
	case "heal":
		return transport.DecisionHeal, nil
	default:
		return 0, fmt.Errorf("sched: unknown decision kind %q", s)
	}
}

// UnmarshalSchedule decodes the text format.
func UnmarshalSchedule(data []byte) (*cluster.Schedule, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != scheduleMagic {
		return nil, fmt.Errorf("sched: not a %s file", scheduleMagic)
	}
	s := &cluster.Schedule{}
	var cur *transport.Trace
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "seed":
			if len(fields) != 2 {
				return nil, fmt.Errorf("sched: line %d: malformed seed", line)
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sched: line %d: %w", line, err)
			}
			s.Seed = v
		case "attempt":
			if len(fields) != 4 || fields[2] != "seed" {
				return nil, fmt.Errorf("sched: line %d: malformed attempt header", line)
			}
			v, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sched: line %d: %w", line, err)
			}
			cur = &transport.Trace{Seed: v}
			s.Attempts = append(s.Attempts, cur)
		case "d":
			if cur == nil {
				return nil, fmt.Errorf("sched: line %d: decision before attempt header", line)
			}
			if len(fields) != 5 {
				return nil, fmt.Errorf("sched: line %d: malformed decision", line)
			}
			step, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sched: line %d: %w", line, err)
			}
			kind, err := parseKind(fields[2])
			if err != nil {
				return nil, fmt.Errorf("sched: line %d: %w", line, err)
			}
			rank, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("sched: line %d: %w", line, err)
			}
			next, err := strconv.Atoi(fields[4])
			if err != nil {
				return nil, fmt.Errorf("sched: line %d: %w", line, err)
			}
			cur.Decisions = append(cur.Decisions, transport.Decision{Step: step, Kind: kind, Rank: rank, Next: next})
		default:
			return nil, fmt.Errorf("sched: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}
