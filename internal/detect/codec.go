package detect

import (
	"fmt"

	"c3/internal/transport"
	"c3/internal/wire"
)

// Detector message kinds (first payload byte).
const (
	msgPing    uint8 = iota + 1 // heartbeat, carries the sender's epoch
	msgSuspect                  // gossip: sender suspects target dead
	msgPropose                  // agreement phase 1: (epoch, seq, dead set)
	msgAck                      // agreement phase 1 response
	msgCommit                   // agreement phase 2: epoch transition
	msgHello                    // a (re)joining rank announces itself
	msgState                    // membership snapshot, answers hello / catch-up
	msgDrain                    // request: remove a member at the next epoch
)

// payload is a detector message on the wire. Like the stable store's
// replication payloads it is its own encoding, so it crosses the in-memory
// network and the TCP mesh identically.
type payload []byte

// TransportSize implements transport.Sizer.
func (p payload) TransportSize() int { return len(p) }

// WireKind implements transport.WirePayload.
func (p payload) WireKind() uint8 { return transport.WireKindDetect }

// MarshalWire implements transport.WirePayload.
func (p payload) MarshalWire() []byte { return p }

func init() {
	transport.RegisterWireDecoder(transport.WireKindDetect, func(data []byte) (any, error) {
		return payload(append([]byte(nil), data...)), nil
	})
}

func encodePing(epoch uint64) payload {
	w := wire.NewWriter(9)
	w.U8(msgPing)
	w.U64(epoch)
	return payload(w.Bytes())
}

func decodePing(data payload) (epoch uint64, err error) {
	r := wire.NewReader(data[1:])
	epoch = r.U64()
	return epoch, r.Err()
}

func encodeSuspect(epoch uint64, target int) payload {
	w := wire.NewWriter(17)
	w.U8(msgSuspect)
	w.U64(epoch)
	w.Int(target)
	return payload(w.Bytes())
}

func decodeSuspect(data payload) (epoch uint64, target int, err error) {
	r := wire.NewReader(data[1:])
	epoch = r.U64()
	target = r.Int()
	return epoch, target, r.Err()
}

// Propose, commit, and state all carry the proposed (or current) member
// list alongside the dead set: membership is part of what the agreement
// commits, so a rank can never adopt an epoch without also adopting the
// member ring that epoch's quorum rules are defined over.
func encodePropose(epoch, seq uint64, dead, members []int) payload {
	w := wire.NewWriter(40 + 8*len(dead) + 8*len(members))
	w.U8(msgPropose)
	w.U64(epoch)
	w.U64(seq)
	w.Ints(dead)
	w.Ints(members)
	return payload(w.Bytes())
}

func decodePropose(data payload) (epoch, seq uint64, dead, members []int, err error) {
	r := wire.NewReader(data[1:])
	epoch = r.U64()
	seq = r.U64()
	dead = r.Ints()
	members = r.Ints()
	return epoch, seq, dead, members, r.Err()
}

func encodeAck(epoch, seq uint64) payload {
	w := wire.NewWriter(17)
	w.U8(msgAck)
	w.U64(epoch)
	w.U64(seq)
	return payload(w.Bytes())
}

func decodeAck(data payload) (epoch, seq uint64, err error) {
	r := wire.NewReader(data[1:])
	epoch = r.U64()
	seq = r.U64()
	return epoch, seq, r.Err()
}

func encodeCommit(epoch uint64, dead, members []int) payload {
	w := wire.NewWriter(32 + 8*len(dead) + 8*len(members))
	w.U8(msgCommit)
	w.U64(epoch)
	w.Ints(dead)
	w.Ints(members)
	return payload(w.Bytes())
}

func decodeCommit(data payload) (epoch uint64, dead, members []int, err error) {
	r := wire.NewReader(data[1:])
	epoch = r.U64()
	dead = r.Ints()
	members = r.Ints()
	return epoch, dead, members, r.Err()
}

func encodeHello() payload {
	return payload([]byte{msgHello})
}

func encodeState(epoch uint64, dead, members []int) payload {
	w := wire.NewWriter(32 + 8*len(dead) + 8*len(members))
	w.U8(msgState)
	w.U64(epoch)
	w.Ints(dead)
	w.Ints(members)
	return payload(w.Bytes())
}

func decodeState(data payload) (epoch uint64, dead, members []int, err error) {
	r := wire.NewReader(data[1:])
	epoch = r.U64()
	dead = r.Ints()
	members = r.Ints()
	return epoch, dead, members, r.Err()
}

// encodeDrain asks the world to remove target from the membership at the
// next epoch agreement (a graceful shrink). Like suspicion gossip it is
// retransmitted every tick until a commit settles it, so a lossy send
// path cannot strand the request.
func encodeDrain(epoch uint64, target int) payload {
	w := wire.NewWriter(17)
	w.U8(msgDrain)
	w.U64(epoch)
	w.Int(target)
	return payload(w.Bytes())
}

func decodeDrain(data payload) (epoch uint64, target int, err error) {
	r := wire.NewReader(data[1:])
	epoch = r.U64()
	target = r.Int()
	return epoch, target, r.Err()
}

func kindName(k uint8) string {
	switch k {
	case msgPing:
		return "ping"
	case msgSuspect:
		return "suspect"
	case msgPropose:
		return "propose"
	case msgAck:
		return "ack"
	case msgCommit:
		return "commit"
	case msgHello:
		return "hello"
	case msgState:
		return "state"
	case msgDrain:
		return "drain"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}
