package trace

import (
	"sync"
	"testing"
)

// TestRingWrapConcurrent hammers the lock-free write path from many
// goroutines through several ring wraps and checks Snapshot's contract:
// at most the ring capacity of events, strictly increasing sequence
// numbers, no duplicates, every event internally consistent. Run under
// -race this is the recorder's data-race proof.
func TestRingWrapConcurrent(t *testing.T) {
	const (
		ring       = 128
		writers    = 8
		perWriter  = 500
		totalLocal = writers * perWriter
	)
	r := New(ring)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				switch i % 3 {
				case 0:
					r.Emit(int32(w), KindSuspect, 0, uint64(i))
				case 1:
					sp := r.Begin(int32(w), KindCommit, 0, uint64(i))
					sp.End(uint64(i))
				case 2:
					ctx := r.Send(int32(w), int32((w+1)%writers), uint64(i))
					r.Recv(int32((w+1)%writers), int32(w), ctx, uint64(i))
				}
			}
		}(w)
	}
	wg.Wait()

	if got := r.Len(); got < totalLocal {
		t.Fatalf("Len() = %d, want >= %d events ever recorded", got, totalLocal)
	}
	snap := r.Snapshot()
	if len(snap) == 0 || len(snap) > ring {
		t.Fatalf("snapshot has %d events, want (0, %d]", len(snap), ring)
	}
	for i, ev := range snap {
		if i > 0 && ev.Seq <= snap[i-1].Seq {
			t.Fatalf("snapshot not strictly ordered: seq %d after %d", ev.Seq, snap[i-1].Seq)
		}
		if ev.Kind >= KindCount || ev.Phase > PhaseRecv {
			t.Fatalf("snapshot event %d torn: kind=%d phase=%d", i, ev.Kind, ev.Phase)
		}
	}
}

// TestSnapshotWindow checks that after wrapping, the snapshot is the
// trailing window of the write sequence.
func TestSnapshotWindow(t *testing.T) {
	r := New(64)
	for i := 0; i < 200; i++ {
		r.Emit(0, KindGossip, 0, uint64(i))
	}
	snap := r.Snapshot()
	if len(snap) != 64 {
		t.Fatalf("snapshot has %d events, want the full 64-slot ring", len(snap))
	}
	if snap[0].Seq != 200-64 || snap[len(snap)-1].Seq != 199 {
		t.Fatalf("snapshot window [%d,%d], want [136,199]", snap[0].Seq, snap[len(snap)-1].Seq)
	}
}

// TestLamportSendRecv verifies the happens-before guarantee the merge
// relies on: a recv's Lamport clock is strictly greater than its send's,
// across independent per-process recorders with no shared state.
func TestLamportSendRecv(t *testing.T) {
	a, b := New(64), New(64)
	a.SetSalt(0)
	b.SetSalt(1)

	// Let b's local clock run AHEAD of a's: the merge (not the tick) must
	// carry the ordering.
	for i := 0; i < 10; i++ {
		b.Emit(1, KindGossip, 0, 0)
	}
	ctx := a.Send(0, 1, 42)
	b.Recv(1, 0, ctx, 42)

	var send, recv *Event
	for _, ev := range a.Snapshot() {
		if ev.Phase == PhaseSend {
			e := ev
			send = &e
		}
	}
	for _, ev := range b.Snapshot() {
		if ev.Phase == PhaseRecv {
			e := ev
			recv = &e
		}
	}
	if send == nil || recv == nil {
		t.Fatal("send or recv event missing from snapshots")
	}
	if recv.Span != send.Span {
		t.Fatalf("edge span mismatch: send %#x, recv %#x", send.Span, recv.Span)
	}
	if recv.Clock <= send.Clock {
		t.Fatalf("happens-before violated: send clock %d, recv clock %d", send.Clock, recv.Clock)
	}

	// And the reverse skew: a receives from b, whose clock is far ahead.
	ctx = b.Send(1, 0, 7)
	a.Recv(0, 1, ctx, 7)
	var send2, recv2 Event
	for _, ev := range b.Snapshot() {
		if ev.Phase == PhaseSend {
			send2 = ev
		}
	}
	for _, ev := range a.Snapshot() {
		if ev.Phase == PhaseRecv {
			recv2 = ev
		}
	}
	if recv2.Clock <= send2.Clock {
		t.Fatalf("happens-before violated on skewed edge: send clock %d, recv clock %d", send2.Clock, recv2.Clock)
	}
}

// TestSaltedSpanIDsDisjoint: per-process recorders starting their span
// counters at zero must still mint world-unique ids once salted.
func TestSaltedSpanIDsDisjoint(t *testing.T) {
	a, b := New(64), New(64)
	a.SetSalt(0)
	b.SetSalt(1)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		for _, id := range []uint64{a.NewSpan(), b.NewSpan()} {
			if seen[id] {
				t.Fatalf("span id %#x minted twice across salted recorders", id)
			}
			seen[id] = true
		}
	}
}

// TestSpanFeedsHistogram: End routes the span duration into the
// per-kind histogram, under an injected deterministic clock.
func TestSpanFeedsHistogram(t *testing.T) {
	r := New(64)
	var now int64
	r.SetClock(func() int64 { return now })

	sp := r.Begin(3, KindRestore, 0, 9)
	now += 1500 // 1.5µs
	sp.End(11)

	h := r.Histogram(KindRestore)
	if h.Count != 1 || h.Sum != 1500 {
		t.Fatalf("histogram count=%d sum=%d, want 1/1500", h.Count, h.Sum)
	}
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d events, want begin+end", len(snap))
	}
	if snap[0].Phase != PhaseBegin || snap[1].Phase != PhaseEnd || snap[0].Span != snap[1].Span {
		t.Fatalf("begin/end pair mangled: %+v %+v", snap[0], snap[1])
	}
	if snap[1].Time-snap[0].Time != 1500 {
		t.Fatalf("span duration %d, want 1500", snap[1].Time-snap[0].Time)
	}

	// The zero Span must be a safe no-op (early-return paths End blindly).
	var zero Span
	zero.End(0)
}

// TestSetEnabled: the kill switch silences every record path and hands
// out zero contexts, and flipping it back restores recording.
func TestSetEnabled(t *testing.T) {
	r := New(64)
	if !r.Enabled() {
		t.Fatal("recorder must start enabled")
	}
	r.SetEnabled(false)
	r.Emit(0, KindSuspect, 0, 1)
	sp := r.Begin(0, KindCommit, 0, 1)
	sp.End(1)
	ctx := r.Send(0, 1, 8)
	r.Recv(1, 0, ctx, 8)
	r.Observe(KindShip, 100)
	if r.Len() != 0 {
		t.Fatalf("disabled recorder recorded %d events", r.Len())
	}
	if ctx != (Ctx{}) {
		t.Fatalf("disabled Send returned non-zero context %+v", ctx)
	}
	if r.Clock() != 0 {
		t.Fatalf("disabled recorder ticked the Lamport clock to %d", r.Clock())
	}
	if h := r.Histogram(KindShip); h.Count != 0 {
		t.Fatalf("disabled Observe fed the histogram (count %d)", h.Count)
	}

	r.SetEnabled(true)
	r.Emit(0, KindSuspect, 0, 1)
	if r.Len() != 1 {
		t.Fatalf("re-enabled recorder recorded %d events, want 1", r.Len())
	}
}

// TestKindNames: every kind has a distinct parseable name (the ops JSON
// and c3trace output key on them).
func TestKindNames(t *testing.T) {
	seen := map[string]bool{}
	for k := KindNone; k < KindCount; k++ {
		name := k.String()
		if name == "" || name == "invalid" {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[name] {
			t.Fatalf("kind name %q duplicated", name)
		}
		seen[name] = true
		if ParseKind(name) != k {
			t.Fatalf("ParseKind(%q) = %d, want %d", name, ParseKind(name), k)
		}
	}
	if KindCount.String() != "invalid" || ParseKind("no-such-kind") != KindNone {
		t.Fatal("out-of-range kinds must be invalid/none")
	}
}
