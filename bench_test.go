// Benchmarks that regenerate the paper's evaluation (one Benchmark per
// table, Section 6) plus micro-benchmarks for the protocol's hot paths.
// cmd/c3bench prints the full paper-style tables; these benchmarks wrap the
// same generators so `go test -bench .` exercises every experiment and
// reports the headline metric of each.
package c3_test

import (
	"sync"
	"testing"

	"c3/internal/apps"
	"c3/internal/bench"
	"c3/internal/ckpt"
	"c3/internal/cluster"
	"c3/internal/mpi"
	"c3/internal/stable"
	"c3/internal/statesave"
)

// benchOpts keeps the in-benchmark sweeps modest; use cmd/c3bench for the
// full class-W sweeps.
func benchOpts() bench.Options {
	return bench.Options{
		Class:       apps.ClassS,
		Ranks:       []int{4, 8},
		Repetitions: 1,
	}
}

func runTable(b *testing.B, id string, opts bench.Options) {
	b.Helper()
	gen := bench.Generators[id]
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := gen(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if last != nil {
		b.Logf("\n%s", last.Format())
	}
}

// BenchmarkTable1CheckpointSizes regenerates Table 1: C3 vs Condor-model
// checkpoint sizes on one processor.
func BenchmarkTable1CheckpointSizes(b *testing.B) {
	runTable(b, "1", benchOpts())
}

// BenchmarkTable2OverheadNoCkpt regenerates Table 2: runtime overhead with
// no checkpoints on the low-latency interconnect profile.
func BenchmarkTable2OverheadNoCkpt(b *testing.B) {
	runTable(b, "2", benchOpts())
}

// BenchmarkTable3OverheadNoCkptLatency regenerates Table 3: the same sweep
// on the Ethernet-style latency profile.
func BenchmarkTable3OverheadNoCkptLatency(b *testing.B) {
	opts := benchOpts()
	opts.Ranks = []int{4}
	opts.Kernels = []string{"CG", "HPL"}
	runTable(b, "3", opts)
}

// BenchmarkTable4CheckpointCost regenerates Table 4: configurations #1/#2/#3
// with per-process checkpoint sizes and costs.
func BenchmarkTable4CheckpointCost(b *testing.B) {
	runTable(b, "4", benchOpts())
}

// BenchmarkTable5CheckpointCostLatency regenerates Table 5 on the latency
// profile.
func BenchmarkTable5CheckpointCostLatency(b *testing.B) {
	opts := benchOpts()
	opts.Ranks = []int{4}
	opts.Kernels = []string{"CG", "LU"}
	runTable(b, "5", opts)
}

// BenchmarkTable6RestartCost regenerates Table 6: uniprocessor restart
// costs.
func BenchmarkTable6RestartCost(b *testing.B) {
	runTable(b, "6", benchOpts())
}

// BenchmarkTable7RestartCostLatency regenerates Table 7 (CMI profile).
func BenchmarkTable7RestartCostLatency(b *testing.B) {
	opts := benchOpts()
	opts.Kernels = []string{"CG", "LU"}
	runTable(b, "7", opts)
}

// BenchmarkAblationPiggyback compares the 3-bit piggyback codec against the
// full-epoch codec (paper Section 3.2's optimization).
func BenchmarkAblationPiggyback(b *testing.B) {
	opts := benchOpts()
	opts.Ranks = []int{4}
	runTable(b, "ablation-piggyback", opts)
}

// BenchmarkAblationBlocking compares non-blocking against blocking
// coordinated checkpointing.
func BenchmarkAblationBlocking(b *testing.B) {
	opts := benchOpts()
	opts.Ranks = []int{4}
	runTable(b, "ablation-blocking", opts)
}

// BenchmarkAblationAsyncCommit compares blocking against asynchronous
// checkpoint commit on the same delayed store, plus the diskless
// replicated configuration.
func BenchmarkAblationAsyncCommit(b *testing.B) {
	opts := benchOpts()
	opts.Ranks = []int{4}
	runTable(b, "ablation-async", opts)
}

// --- Protocol micro-benchmarks ---

// BenchmarkPiggybackNarrow measures the 1-byte (3-bit) codec round trip.
func BenchmarkPiggybackNarrow(b *testing.B) {
	c := ckpt.NarrowCodec{}
	h := ckpt.Header{Color: 2, StoppedLogging: true}
	buf := make([]byte, 0, 16)
	for i := 0; i < b.N; i++ {
		buf = c.Encode(buf[:0], h)
		if _, err := c.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPiggybackWide measures the full-epoch codec round trip.
func BenchmarkPiggybackWide(b *testing.B) {
	c := ckpt.WideCodec{}
	h := ckpt.Header{Color: 2, StoppedLogging: true, Epoch: 123456, HasEpoch: true}
	buf := make([]byte, 0, 16)
	for i := 0; i < b.N; i++ {
		buf = c.Encode(buf[:0], h)
		if _, err := c.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatatypePackVector measures packing a strided column out of a
// 256x256 float64 matrix.
func BenchmarkDatatypePackVector(b *testing.B) {
	const n = 256
	dt, err := mpi.Vector(n, 1, n, mpi.TypeFloat64)
	if err != nil {
		b.Fatal(err)
	}
	src := make([]byte, n*n*8)
	b.SetBytes(int64(dt.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dt.Pack(src, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// pingPong runs a 2-rank ping-pong through the cluster runtime and reports
// time per round trip.
func pingPong(b *testing.B, direct bool, payload int) {
	b.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	iters := b.N
	app := func(env cluster.Env) error {
		w := env.World()
		buf := make([]byte, payload)
		other := 1 - env.Rank()
		for i := 0; i < iters; i++ {
			if env.Rank() == 0 {
				if err := w.SendBytes(buf, other, 1); err != nil {
					return err
				}
				if _, err := w.RecvBytes(buf, other, 2); err != nil {
					return err
				}
			} else {
				if _, err := w.RecvBytes(buf, other, 1); err != nil {
					return err
				}
				if err := w.SendBytes(buf, other, 2); err != nil {
					return err
				}
			}
		}
		return nil
	}
	b.SetBytes(int64(2 * payload))
	b.ResetTimer()
	if _, err := cluster.Run(cluster.Config{Ranks: 2, App: app, Direct: direct}); err != nil {
		b.Fatal(err)
	}
	wg.Done()
}

// BenchmarkPingPongDirect measures the raw substrate round trip (the
// "Original" configuration).
func BenchmarkPingPongDirect(b *testing.B) { pingPong(b, true, 1024) }

// BenchmarkPingPongWrapped measures the round trip through the protocol
// layer: the difference against Direct is the paper's continuous overhead
// in microbenchmark form.
func BenchmarkPingPongWrapped(b *testing.B) { pingPong(b, false, 1024) }

// BenchmarkCheckpointSaveRestore measures a full local checkpoint
// save-and-reload of 1 MB of registered state through the stable store.
func BenchmarkCheckpointSaveRestore(b *testing.B) {
	reg := statesave.NewRegistry()
	data := reg.Float64s("data", 128*1024).Data() // 1 MB
	for i := range data {
		data[i] = float64(i)
	}
	store := stable.NewMemStore()
	b.SetBytes(int64(reg.LiveBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ck, err := store.Begin(0, i+1)
		if err != nil {
			b.Fatal(err)
		}
		if err := ck.WriteSection("app", reg.Save()); err != nil {
			b.Fatal(err)
		}
		if err := ck.Commit(); err != nil {
			b.Fatal(err)
		}
		snap, err := store.Open(0, i+1)
		if err != nil {
			b.Fatal(err)
		}
		img, err := snap.ReadSection("app")
		if err != nil {
			b.Fatal(err)
		}
		if err := reg.Load(img); err != nil {
			b.Fatal(err)
		}
		snap.Close()
		if err := store.Retire(0, i+1); err != nil {
			b.Fatal(err)
		}
	}
}
