// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package at a time and reports position-anchored diagnostics.
//
// The API deliberately mirrors x/tools (Analyzer, Pass, Diagnostic,
// Pass.Reportf) so the c3 analyzers can be ported to the real framework by
// changing an import path, once the build environment is allowed to vendor
// x/tools. Facts, SSA and cross-package dependencies are intentionally
// absent: every c3 analyzer is intra-package by design, which is also what
// makes the `go vet -vettool` separate-compilation mode (internal/lint/unit)
// trivial to support.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis pass and how to run it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //c3lint:allow suppression comments. By convention c3 analyzers
	// are named c3<invariant>.
	Name string

	// Doc is the one-paragraph help text: the invariant the analyzer
	// encodes and the historical bug that motivated it.
	Doc string

	// Run applies the analyzer to one package. Diagnostics are emitted
	// via pass.Report; the error is for operational failures only.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report emits one diagnostic. Never nil.
	Report func(Diagnostic)
}

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
