// Package c3determinism forbids ambient nondeterminism — wall-clock reads
// and globally seeded randomness — inside the packages governed by the
// deterministic schedule engine.
//
// Motivation (PR 2): replayable traces and ddmin shrinking only work if the
// scheduled code's behavior is a pure function of the schedule. A single
// time.Now or global rand call re-introduces the ~40% stress flake the
// schedule engine was built to kill. Governed code must take time from the
// injected Clock (ckpt.Config.Clock, transport.Scheduler's logical clock)
// and randomness from an explicitly seeded *rand.Rand.
//
// Constructing a seeded generator (rand.New, rand.NewSource, ...) is
// allowed — that IS the sanctioned pattern; only the package-level
// convenience functions, which draw from the global shared source, and the
// wall-clock entry points of package time are banned.
package c3determinism

import (
	"go/types"

	"c3/internal/lint/analysis"
)

// GovernedPackages lists the import paths under the schedule engine's
// jurisdiction. transport/tcp is deliberately absent: the TCP mesh talks to
// real kernels and real deadlines, and is exercised by the scheduler only
// through its in-memory twin.
var GovernedPackages = map[string]bool{
	"c3/internal/ckpt":      true,
	"c3/internal/mpi":       true,
	"c3/internal/sched":     true,
	"c3/internal/transport": true,
}

// bannedTime are the package time entry points that read or wait on the
// wall clock. Since and Until are included: both call time.Now internally.
var bannedTime = map[string]string{
	"Now":       "use the injected Clock",
	"Sleep":     "block on the scheduler or a channel instead",
	"After":     "use the injected Clock / scheduler timers",
	"AfterFunc": "use the injected Clock / scheduler timers",
	"Tick":      "use the injected Clock / scheduler timers",
	"NewTimer":  "use the injected Clock / scheduler timers",
	"NewTicker": "use the injected Clock / scheduler timers",
	"Since":     "difference two injected Clock readings",
	"Until":     "difference two injected Clock readings",
}

// allowedRand are the math/rand and math/rand/v2 package-level functions
// that construct explicitly seeded state rather than drawing from the
// global source.
var allowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// Analyzer is the c3determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "c3determinism",
	Doc: "forbid time.Now/Sleep/After and global math/rand in scheduler-governed packages " +
		"(ckpt, mpi, sched, transport sans tcp); deterministic replay requires the injected " +
		"Clock and explicitly seeded RNGs",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !GovernedPackages[pass.Pkg.Path()] {
		return nil
	}
	// info.Uses catches calls AND function-value references (clock = time.Now
	// silently smuggles the wall clock past a call-site-only check).
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		// Package-level functions only: methods (e.g. (*rand.Rand).Intn,
		// (time.Time).Sub) are deterministic given deterministic inputs.
		if fn.Type().(*types.Signature).Recv() != nil {
			continue
		}
		switch fn.Pkg().Path() {
		case "time":
			if hint, banned := bannedTime[fn.Name()]; banned {
				pass.Reportf(id.Pos(), "time.%s breaks deterministic replay in %s; %s", fn.Name(), shortPath(pass.Pkg.Path()), hint)
			}
		case "math/rand", "math/rand/v2":
			if !allowedRand[fn.Name()] {
				pass.Reportf(id.Pos(), "global rand.%s breaks deterministic replay in %s; draw from an explicitly seeded *rand.Rand", fn.Name(), shortPath(pass.Pkg.Path()))
			}
		}
	}
	return nil
}

func shortPath(path string) string {
	const prefix = "c3/internal/"
	if len(path) > len(prefix) && path[:len(prefix)] == prefix {
		return path[len(prefix):]
	}
	return path
}
