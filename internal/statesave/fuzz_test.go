package statesave

import (
	"testing"

	"c3/internal/wire"
)

// fuzzRegistry builds the registry shape the decoders are loaded into.
func fuzzRegistry() (*Registry, *Heap) {
	g := NewRegistry()
	g.Int("it")
	g.Float64("residual")
	g.Bool("converged")
	g.Float64s("grid", 16)
	g.Int64s("counts", 4)
	g.Bytes("blob")
	h := NewHeap()
	g.Register(h.Section())
	return g, h
}

// FuzzDeserialize throws arbitrary bytes at every statesave decode entry
// point: Registry.Load, Heap.Load, and the incremental-image decoder. A
// corrupt checkpoint image must produce an error, never a panic or an
// oversized allocation.
func FuzzDeserialize(f *testing.F) {
	// Corpus: a real committed registry image, a real heap image, and a
	// real incremental image — the exact bytes a checkpoint writes.
	g, h := fuzzRegistry()
	g.Int("it").Set(41)
	g.Float64s("grid", 16).Data()[3] = 2.5
	g.Bytes("blob").SetData([]byte("blob-contents"))
	_ = h.Alloc("work", 64)
	f.Add(g.Save())
	hw := wire.NewWriter(128)
	h.Section().Save(hw)
	f.Add(hw.Bytes())
	f.Add(EncodeIncrement(true, 0, g.Sections(), nil))
	f.Add(EncodeIncrement(false, 7, g.Sections(), []string{"scratch", "gone"}))
	// Truncations and bit flips of the real image.
	img := g.Save()
	f.Add(img[:len(img)/2])
	flipped := append([]byte(nil), img...)
	flipped[0] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		g, h := fuzzRegistry()
		_ = g.Load(data) // error or success; must not panic
		_ = h.Load(data) // likewise
		_, _, _, _, _ = DecodeIncrement(data)
		_ = g.LoadSectionBodies(map[string][]byte{"it": data})
	})
}
