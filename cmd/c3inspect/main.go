// Command c3inspect examines checkpoints in an on-disk store: which
// versions are committed per rank, the global recovery line, and the
// per-section contents of a checkpoint.
//
// Usage:
//
//	c3inspect -store /tmp/ckpts                 # overview
//	c3inspect -store /tmp/ckpts -rank 2 -v 3    # one checkpoint's sections
package main

import (
	"flag"
	"fmt"
	"os"

	"c3/internal/stable"
)

func main() {
	var (
		dir     = flag.String("store", "", "checkpoint directory (required)")
		rank    = flag.Int("rank", -1, "rank to inspect (-1: overview)")
		version = flag.Int("v", -1, "version to inspect (-1: last committed)")
		ranks   = flag.Int("ranks", 64, "maximum rank to scan in the overview")
	)
	flag.Parse()
	if *dir == "" {
		fatalf("-store is required")
	}
	store, err := stable.NewDiskStore(*dir)
	if err != nil {
		fatalf("open store: %v", err)
	}

	if *rank < 0 {
		lasts := make([]int, 0, *ranks)
		oks := make([]bool, 0, *ranks)
		found := 0
		for r := 0; r < *ranks; r++ {
			v, ok, err := store.LastCommitted(r)
			if err != nil {
				fatalf("rank %d: %v", r, err)
			}
			if ok {
				fmt.Printf("rank %4d: last committed version %d\n", r, v)
				found++
				lasts = append(lasts, v)
				oks = append(oks, true)
			}
		}
		if found == 0 {
			fmt.Println("no committed checkpoints")
			return
		}
		if line, ok := stable.GlobalLine(lasts, oks); ok {
			fmt.Printf("global recovery line (over %d ranks with checkpoints): version %d\n", found, line)
		}
		return
	}

	v := *version
	if v < 0 {
		last, ok, err := store.LastCommitted(*rank)
		if err != nil || !ok {
			fatalf("rank %d has no committed checkpoint (%v)", *rank, err)
		}
		v = last
	}
	snap, err := store.Open(*rank, v)
	if err != nil {
		fatalf("open rank %d version %d: %v", *rank, v, err)
	}
	defer snap.Close()
	sections, err := snap.Sections()
	if err != nil {
		fatalf("list sections: %v", err)
	}
	fmt.Printf("rank %d version %d:\n", *rank, v)
	total := 0
	for _, name := range sections {
		data, err := snap.ReadSection(name)
		if err != nil {
			fatalf("read %q: %v", name, err)
		}
		fmt.Printf("  %-10s %8d bytes\n", name, len(data))
		total += len(data)
	}
	fmt.Printf("  %-10s %8d bytes\n", "total", total)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "c3inspect: "+format+"\n", args...)
	os.Exit(1)
}
