package cluster

// This file is the per-process half of the multi-process deployment mode:
// one OS process per rank (a "node"), real TCP between them, and real
// SIGKILL as the failure injector. RunNode hosts one rank and takes orders
// from the launcher (launch.go) over its stdin/stdout pipes:
//
//	launcher -> node:  run <attempt> <restore>   start an attempt
//	                   abort <token>             tear the current attempt down
//	                   join                      adopt the world's state from
//	                                             peers (self-heal respawn, or a
//	                                             spare slot's first admission)
//	                   quit                      exit
//	node -> launcher:  ready                     store + meshes are up
//	                   victim                    failure spec fired; awaiting SIGKILL
//	                   ckpt <attempt> <version>  a checkpoint committed (self-heal)
//	                   respawn <rank>            coordinator requests a re-exec
//	                   wantjoin <slot>           ops plane asks for a new member
//	                                             (slot -1: launcher picks a spare)
//	                   joined <epoch>            membership agreement admitted us
//	                   drained <epoch>           membership agreement removed us;
//	                                             exiting cleanly
//	                   stat <attempt> <k=v...>   store statistics for the attempt
//	                   done <attempt> <result>   attempt completed
//	                   down <attempt>            attempt ended with the world down
//	                   aborted <token>           abort acknowledged, attempt torn down
//	                   error <msg>               fatal node error
//
// A node outlives its attempts: the replicated store's memory (and its
// replication TCP mesh) persists across world restarts, exactly like a
// cluster node whose surviving RAM holds checkpoint replicas while the MPI
// job is relaunched. Only a node that really dies — the SIGKILLed victim —
// loses its memory, and its re-executed replacement reassembles its
// checkpoints from peers over the wire.
//
// Two coordination modes exist. In the legacy launcher-driven mode the
// launcher is an omniscient oracle: it delivers the SIGKILL itself, aborts
// the survivors, re-execs the dead rank, and broadcasts the next attempt.
// In self-healing mode (NodeConfig.SelfHeal) the node shares its long-lived
// replication mesh between the distributed store and a failure detector
// (internal/detect) through a transport.Demux: survivors detect a death via
// phi-accrual heartbeat monitoring, agree on an epoch-numbered dead set,
// interrupt in-flight commits by advancing the store's epoch, elect the
// lowest-ranked survivor to ask the launcher — now a dumb respawner — for
// replacement processes, and enter the restore attempt on their own. The
// attempt number is derived from the agreed epoch (attempt = epoch - 1),
// so every process, including a freshly joined replacement, converges on
// the same MPI-mesh generation without a central sequencer.
//
// Elastic membership (NodeConfig.Capacity > Ranks) decouples the two
// meanings "rank" used to conflate: the MPI world that runs the
// application stays fixed at Ranks (the paper's compute world), while the
// set of node slots that host checkpoint shards, vote in epoch agreements
// and count toward quorum is an epoch-versioned member.Set that can grow
// into pre-allocated spare slots [Ranks, Capacity) and shrink back. A
// spare slot's process is a storage member: it runs no app rank, enters
// the world through the same hello/state protocol a respawned rank uses
// (JoinNew: admission is a committed membership epoch), and leaves through
// a drain agreement. Every membership change lands at a recovery line —
// survivors tear the attempt down and re-enter restore at the agreed
// epoch, and the distributed store re-partitions shard placement onto the
// new ring. NodeConfig.OpsAddr starts the embedded operations control
// plane (internal/ops) that exposes and drives all of this over HTTP.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"c3/internal/ckpt"
	"c3/internal/detect"
	"c3/internal/member"
	"c3/internal/mpi"
	"c3/internal/ops"
	"c3/internal/stable"
	"c3/internal/trace"
	"c3/internal/transport"
	"c3/internal/transport/tcp"
)

// SelfHealConfig enables and tunes the autonomous failure-detection and
// recovery mode. It requires the diskless replicated store (ReplAddrs).
type SelfHealConfig struct {
	// HeartbeatInterval is the detector's ping period (default 25ms).
	HeartbeatInterval time.Duration
	// PhiThreshold is the accrued suspicion level that declares a peer
	// suspect (default 5).
	PhiThreshold float64
	// JoinTimeout bounds how long a respawned replacement waits for a
	// survivor to answer its hello (default 15s).
	JoinTimeout time.Duration
}

// NodeConfig configures one rank's process.
type NodeConfig struct {
	// Rank is the hosted slot; Ranks the fixed compute world size (the MPI
	// ranks that run the application). A Rank >= Ranks is a storage member:
	// it hosts checkpoint shards and votes in agreements but runs no app.
	Rank, Ranks int
	// Capacity is the total pre-allocated slot count the elastic membership
	// can grow into (0: Ranks — the classic fixed world). Requires SelfHeal
	// when larger than Ranks; ReplAddrs must then list Capacity addresses.
	Capacity int
	// OpsAddr, when non-empty, starts the embedded operations control plane
	// (internal/ops) on that address. Requires SelfHeal.
	OpsAddr string
	// OpsDebug additionally exposes net/http/pprof and runtime/trace
	// start/stop verbs on the ops server (profiling a live world).
	OpsDebug bool
	// TraceDir, when non-empty, is where this rank writes its flight-
	// recorder dumps (rank<N>.c3tr): on every committed epoch transition,
	// fencing change, restore entry, and at node exit, plus on demand via
	// the ops POST /trace/dump verb. cmd/c3trace merges the per-rank files.
	TraceDir string
	// MPIAddrs are the per-rank addresses of the MPI-plane TCP meshes (one
	// fresh mesh per attempt, tagged with the attempt's generation).
	MPIAddrs []string
	// ReplAddrs, when non-empty, are the per-rank addresses of the
	// long-lived replication mesh backing a diskless stable.DistStore.
	ReplAddrs []string
	// StorePath is the shared-filesystem DiskStore root used when
	// ReplAddrs is empty.
	StorePath string
	// Codec selects the diskless store's fragment codec: "dup" (full
	// +1/+2 replication, default), "xor" (k data + 1 parity shard on
	// distinct ring successors, tolerates one loss), or "rs"
	// (Reed-Solomon k+m, tolerates any m simultaneous losses at a
	// fraction of dup's memory and wire bytes).
	Codec string
	// DataShards (k) and ParityShards (m) tune the codec geometry; zero
	// selects the per-codec defaults (dup: 2 fragments; xor: k=4; rs:
	// k=4, m=2).
	DataShards   int
	ParityShards int
	// GroupSize partitions the world into checkpoint groups of that many
	// ring slots (0: flat world). Grouping confines the store's shard
	// fan-out to group-local successors plus one cross-group parity
	// holder, and — in self-healing mode — switches the failure detector
	// to the two-level topology: group-local heartbeat rings, per-group
	// delegate report trees, and inter-group agreement relayed through
	// delegates over the transport relay plane.
	GroupSize int
	// App is the application main, run once per attempt.
	App func(Env) error
	// Args is handed to the application via Env.Args.
	Args any
	// Result, when non-nil, is evaluated after a successful attempt and
	// reported to the launcher with the done event.
	Result func() string
	// Policy controls pragma firing.
	Policy ckpt.Policy
	// FullCheckpointEvery enables incremental checkpointing (see Config).
	FullCheckpointEvery int
	// Kill schedules this node's own failure: when the spec fires (on the
	// first attempt), the node reports itself as the victim and blocks,
	// awaiting the launcher's real SIGKILL.
	Kill *FailureSpec
	// SelfHeal, when non-nil, runs the node in self-healing mode.
	SelfHeal *SelfHealConfig
	// AckTimeout, QueryTimeout and QueryRetries tune the distributed
	// store's neighbor-acknowledgment and recovery-query behavior; zero
	// values keep the store defaults. The detector's suspicion threshold
	// and these timeouts should be tuned together (see cmd/c3node).
	AckTimeout   time.Duration
	QueryTimeout time.Duration
	QueryRetries int
	// DialWindow bounds first-connection retries (start-up ordering).
	DialWindow time.Duration
	// In and Out are the control pipes (the launcher's end of stdin/stdout).
	In  io.Reader
	Out io.Writer
	// Log, when non-nil, receives node progress lines (stderr tracing).
	Log func(format string, args ...any)
}

// node is the running state of one rank's process.
type node struct {
	cfg   NodeConfig
	store stable.Store
	dist  *stable.DistStore // non-nil when diskless
	det   *detect.Detector  // non-nil in self-healing mode

	outMu sync.Mutex

	statMu    sync.Mutex
	lastStats ckpt.Stats // the protocol counters of the last finished attempt

	curAttempt atomic.Int64               // attempt whose events (ckpt) are being emitted
	lastLine   atomic.Int64               // last locally committed version (-1: none)
	layer      atomic.Pointer[ckpt.Layer] // running attempt's protocol layer (ops checkpoint trigger)
}

// distOptions assembles the store options shared by both modes.
func (cfg *NodeConfig) distOptions() ([]stable.DistOption, error) {
	var opts []stable.DistOption
	if cfg.Codec != "" || cfg.DataShards > 0 || cfg.ParityShards > 0 {
		codec, err := stable.NewCodec(cfg.Codec, cfg.DataShards, cfg.ParityShards)
		if err != nil {
			return nil, err
		}
		if codec.ParityShards() == 0 && cfg.DataShards > 0 {
			opts = append(opts, stable.WithDistFragments(cfg.DataShards))
		} else if codec.ParityShards() > 0 {
			opts = append(opts, stable.WithDistCodec(codec))
		}
	}
	if cfg.Log != nil {
		opts = append(opts, stable.WithDistLog(cfg.Log))
	}
	if cfg.AckTimeout > 0 {
		opts = append(opts, stable.WithAckTimeout(cfg.AckTimeout))
	}
	if cfg.QueryTimeout > 0 {
		opts = append(opts, stable.WithQueryTimeout(cfg.QueryTimeout))
	}
	if cfg.QueryRetries > 0 {
		opts = append(opts, stable.WithQueryRetries(cfg.QueryRetries))
	}
	if cfg.GroupSize > 1 {
		opts = append(opts, stable.WithDistGroupSize(cfg.GroupSize))
	}
	return opts, nil
}

// RunNode hosts one rank until quit or stdin EOF. It is the body of
// `c3node -worker`.
func RunNode(cfg NodeConfig) error {
	if cfg.Capacity == 0 {
		cfg.Capacity = cfg.Ranks
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.Capacity || cfg.Ranks <= 0 || cfg.Capacity < cfg.Ranks {
		return fmt.Errorf("cluster: node rank %d of %d (capacity %d)", cfg.Rank, cfg.Ranks, cfg.Capacity)
	}
	if cfg.App == nil {
		return fmt.Errorf("cluster: node has no application")
	}
	if cfg.SelfHeal == nil && (cfg.Capacity > cfg.Ranks || cfg.Rank >= cfg.Ranks) {
		return fmt.Errorf("cluster: elastic membership (capacity %d > %d ranks) requires self-healing mode", cfg.Capacity, cfg.Ranks)
	}
	if cfg.OpsAddr != "" && cfg.SelfHeal == nil {
		return fmt.Errorf("cluster: the ops control plane requires self-healing mode")
	}
	if cfg.DialWindow == 0 {
		cfg.DialWindow = 10 * time.Second
	}
	w := &node{cfg: cfg}
	w.curAttempt.Store(-1)
	w.lastLine.Store(-1)
	// Salt the span-id space by rank so ids minted by different processes
	// never collide when c3trace merges their dumps.
	trace.SetSalt(uint64(cfg.Rank))
	defer w.dumpTrace("exit")

	if cfg.SelfHeal != nil {
		if len(cfg.ReplAddrs) == 0 {
			err := fmt.Errorf("cluster: self-healing mode requires the diskless replicated store (ReplAddrs)")
			w.emit("error %v", err)
			return err
		}
		return w.runSelfHeal()
	}

	switch {
	case len(cfg.ReplAddrs) > 0:
		dopts, err := cfg.distOptions()
		if err != nil {
			w.emit("error %v", err)
			return err
		}
		rmesh, err := tcp.New(cfg.Rank, cfg.ReplAddrs, tcp.WithDialWindow(cfg.DialWindow))
		if err != nil {
			w.emit("error %v", err)
			return err
		}
		w.dist = stable.NewDistStore(cfg.Rank, cfg.Ranks, rmesh, dopts...)
		w.store = w.dist
		defer w.dist.Close()
	case cfg.StorePath != "":
		disk, err := stable.NewDiskStore(cfg.StorePath)
		if err != nil {
			w.emit("error %v", err)
			return err
		}
		// Stamp the configured codec geometry into commit markers so
		// c3inspect reports the same configuration the diskless planes use.
		if c, cerr := stable.NewCodec(cfg.Codec, cfg.DataShards, cfg.ParityShards); cerr == nil {
			disk.SetMarkerInfo(c.ID(), c.DataShards(), c.ParityShards())
		}
		w.store = disk
	default:
		err := fmt.Errorf("cluster: node needs ReplAddrs or StorePath")
		w.emit("error %v", err)
		return err
	}

	cmds := w.commandStream()
	w.emit("ready")
	for cmd := range cmds {
		switch cmd[0] {
		case "run":
			if len(cmd) < 3 {
				w.emit("error malformed run command")
				continue
			}
			attempt, _ := strconv.Atoi(cmd[1])
			restore := cmd[2] == "1"
			w.runAttempt(attempt, restore, cmds)
		case "abort":
			w.emit("aborted %s", tokenOf(cmd))
		case "quit":
			return nil
		}
	}
	return nil
}

// commandStream turns the stdin pipe into a channel of parsed commands.
func (w *node) commandStream() chan []string {
	cmds := make(chan []string)
	go func() {
		sc := bufio.NewScanner(w.cfg.In)
		sc.Buffer(make([]byte, 64*1024), 64*1024)
		for sc.Scan() {
			if f := strings.Fields(sc.Text()); len(f) > 0 {
				if w.cfg.Log != nil {
					w.cfg.Log("rank %d <- %s", w.cfg.Rank, strings.Join(f, " "))
				}
				cmds <- f
			}
		}
		close(cmds)
	}()
	return cmds
}

func tokenOf(cmd []string) string {
	if len(cmd) > 1 {
		return cmd[1]
	}
	return "?"
}

// dumpTrace writes the flight recorder's ring to TraceDir (no-op when
// unset). Dumps overwrite: the rank's file always holds its latest window,
// and the exit dump — the last writer — holds the most complete one.
func (w *node) dumpTrace(reason string) {
	if w.cfg.TraceDir == "" {
		return
	}
	path, err := trace.Default().WriteDump(w.cfg.TraceDir, w.cfg.Rank)
	if w.cfg.Log != nil {
		if err != nil {
			w.cfg.Log("rank %d: trace dump (%s): %v", w.cfg.Rank, reason, err)
		} else {
			w.cfg.Log("rank %d: trace dump (%s) -> %s", w.cfg.Rank, reason, path)
		}
	}
}

func (w *node) emit(format string, args ...any) {
	w.outMu.Lock()
	defer w.outMu.Unlock()
	fmt.Fprintf(w.cfg.Out, format+"\n", args...)
	if w.cfg.Log != nil {
		w.cfg.Log("rank %d -> "+format, append([]any{w.cfg.Rank}, args...)...)
	}
}

// runAttempt executes one world launch, staying responsive to abort
// commands while the application runs.
func (w *node) runAttempt(attempt int, restore bool, cmds <-chan []string) {
	if w.dist != nil {
		w.dist.Resume()
	}
	w.curAttempt.Store(int64(attempt))
	mesh, err := tcp.New(w.cfg.Rank, w.cfg.MPIAddrs,
		tcp.WithGeneration(uint64(attempt+1)), tcp.WithDialWindow(w.cfg.DialWindow))
	if err != nil {
		w.emit("error %v", err)
		return
	}
	done := make(chan error, 1)
	go func() { done <- w.attemptBody(mesh, attempt, restore) }()

	for {
		select {
		case err := <-done:
			w.finishMesh(mesh)
			switch {
			case err == nil:
				w.emitSuccess(attempt, nil)
			case errors.Is(err, mpi.ErrDown):
				w.emit("down %d", attempt)
			default:
				w.emit("error rank %d attempt %d: %v", w.cfg.Rank, attempt, err)
			}
			return
		case cmd, ok := <-cmds:
			if !ok || cmd[0] == "quit" {
				w.teardown(mesh)
				<-done
				return
			}
			if cmd[0] == "abort" {
				w.teardown(mesh)
				<-done
				w.finishMesh(mesh)
				w.dumpTrace("abort")
				w.emit("aborted %s", tokenOf(cmd))
				return
			}
			w.emit("error unexpected %q during attempt", cmd[0])
		}
	}
}

// emitSuccess reports a completed attempt: the stat line (recovery
// provenance, and in self-healing mode the detection/agreement/restore
// latency decomposition) followed by the done event.
func (w *node) emitSuccess(attempt int, sh *selfHealState) {
	result := ""
	if w.cfg.Result != nil {
		result = w.cfg.Result()
	}
	reasm := int64(0)
	if w.dist != nil {
		reasm = w.dist.Reassemblies()
	}
	w.statMu.Lock()
	st := w.lastStats
	w.statMu.Unlock()
	// Recovery provenance: did this attempt restore from a line, and how
	// many checkpoints were reassembled from peer fragments over the wire.
	stat := fmt.Sprintf("stat %d reassemblies=%d restores=%d checkpoints=%d",
		attempt, reasm, st.Restores, st.CheckpointsTaken)
	if sh != nil {
		tm := sh.det.Times()
		suspectUS, agreeUS, restoreUS := int64(0), int64(0), int64(0)
		if !tm.SuspectAt.IsZero() {
			suspectUS = tm.SuspectAt.UnixMicro()
			if tm.AgreeAt.After(tm.SuspectAt) {
				agreeUS = tm.AgreeAt.Sub(tm.SuspectAt).Microseconds()
			}
			if sh.restoreStart.After(tm.SuspectAt) {
				restoreUS = sh.restoreStart.Sub(tm.SuspectAt).Microseconds()
			}
		}
		stat += fmt.Sprintf(" detections=%d epochs=%d suspect_us=%d agree_us=%d restore_us=%d",
			sh.det.Detections(), sh.det.Epoch(), suspectUS, agreeUS, restoreUS)
	}
	w.emit("%s", stat)
	w.emit("done %d %s", attempt, result)
}

// teardown brings the current attempt down: the MPI mesh dies (all blocked
// operations return ErrDown) and any commit blocked on a dead neighbor's
// acknowledgment is released.
func (w *node) teardown(mesh *tcp.Mesh) {
	mesh.Shutdown()
	if w.dist != nil {
		w.dist.Interrupt()
	}
}

func (w *node) finishMesh(mesh *tcp.Mesh) {
	mesh.Close()
}

// attemptBody is one rank's share of one world launch — the multi-process
// analogue of runAttempt in run.go, reusing the same per-rank protocol
// bring-up (runRank).
func (w *node) attemptBody(mesh *tcp.Mesh, attempt int, restore bool) error {
	world := mpi.NewWorld(w.cfg.Ranks, mpi.WithInterconnect(mesh))
	cfg := Config{
		Ranks:               w.cfg.Ranks,
		App:                 w.cfg.App,
		Args:                w.cfg.Args,
		Policy:              w.cfg.Policy,
		FullCheckpointEvery: w.cfg.FullCheckpointEvery,
		// The failure fires at the exact protocol point the spec names, but
		// the death itself is real: announce, then freeze until SIGKILL.
		failAction: func() error {
			w.emit("victim")
			select {}
		},
		onLayer: func(l *ckpt.Layer) { w.layer.Store(l) },
	}
	var failer *failureInjector
	if w.cfg.Kill != nil && attempt == 0 && w.cfg.Kill.Rank == w.cfg.Rank {
		failer = newFailureInjector([]FailureSpec{*w.cfg.Kill})
	}
	err, st := runRank(cfg, world, w.store, w.cfg.Rank, restore, failer)
	w.layer.Store(nil)
	w.statMu.Lock()
	w.lastStats = st
	w.statMu.Unlock()
	return err
}

// --- Self-healing mode ---

// epochEvent is a committed epoch transition delivered by the detector.
type epochEvent struct {
	epoch   uint64
	members member.Set
	dead    []int
	newDead []int
}

// selfHealState bundles the self-healing runtime of one node.
type selfHealState struct {
	det          *detect.Detector
	restoreStart time.Time // when the latest restore attempt was entered
}

// runSelfHeal is RunNode's body in self-healing mode: the long-lived
// replication mesh is demultiplexed between the distributed store and the
// failure detector, and the node coordinates its own recovery.
func (w *node) runSelfHeal() error {
	cfg := w.cfg
	sh := cfg.SelfHeal
	if sh.JoinTimeout <= 0 {
		sh.JoinTimeout = 15 * time.Second
	}
	// The compute world is fixed at Ranks; membership (shard placement,
	// quorum, agreement votes) is elastic across Capacity slots. A slot
	// beyond the compute world is a storage member: no app attempts.
	storage := cfg.Rank >= cfg.Ranks
	boot := member.Launch(cfg.Ranks)

	dopts, err := cfg.distOptions()
	if err != nil {
		w.emit("error %v", err)
		return err
	}
	rmesh, err := tcp.New(cfg.Rank, cfg.ReplAddrs, tcp.WithDialWindow(cfg.DialWindow))
	if err != nil {
		w.emit("error %v", err)
		return err
	}
	demux := transport.NewDemux(rmesh, cfg.Rank)
	replPlane := demux.Plane(transport.WireKindRepl)
	detPlane := demux.Plane(transport.WireKindDetect)
	// Grouped worlds route cross-group detector traffic through delegate
	// relays instead of opening an all-pairs conversation; the relay plane
	// must exist before the demux starts dispatching frames.
	var relay *transport.Relay
	if cfg.GroupSize > 1 {
		relay = transport.NewRelay(demux)
	}

	dopts = append(dopts, stable.WithCommitHook(func(version int) {
		w.lastLine.Store(int64(version))
		w.emit("ckpt %d %d", w.curAttempt.Load(), version)
	}))
	dopts = append(dopts, stable.WithDistMembers(boot))
	w.dist = stable.NewDistStore(cfg.Rank, cfg.Capacity, replPlane, dopts...)
	w.store = w.dist
	defer w.dist.Close()

	epochCh := make(chan epochEvent, 16)
	evicted := make(chan uint64, 1)
	drained := make(chan uint64, 1)
	det, err := detect.New(detect.Options{
		Self:              cfg.Rank,
		Ranks:             cfg.Capacity,
		Members:           boot,
		Net:               detPlane,
		HeartbeatInterval: sh.HeartbeatInterval,
		PhiThreshold:      sh.PhiThreshold,
		GroupSize:         cfg.GroupSize,
		Relay:             relay,
		OnEpoch: func(epoch uint64, members member.Set, dead, newDead []int) {
			epochCh <- epochEvent{epoch: epoch, members: members, dead: dead, newDead: newDead}
		},
		OnEvicted: func(epoch uint64) {
			select {
			case evicted <- epoch:
			default:
			}
		},
		OnDrained: func(epoch uint64) {
			select {
			case drained <- epoch:
			default:
			}
		},
		// Fencing: when this rank loses majority contact the store refuses
		// checkpoint commits (ErrFenced) instead of excusing the unreachable
		// holders — a minority-side rank must not extend a recovery line a
		// majority may be superseding without it.
		OnFence: func(fenced bool) {
			w.dist.SetFenced(fenced)
			// Preserve the ring around the fencing transition: partition
			// post-mortems want the detector events that led here.
			w.dumpTrace("fence")
		},
		Logf: cfg.Log,
	})
	if err != nil {
		w.emit("error %v", err)
		return err
	}
	defer det.Close()
	w.det = det
	demux.SetObservers(det.ObserveRecv, det.ObserveSend)
	demux.Start()
	defer demux.Close()
	if relay != nil {
		relay.Start()
		defer relay.Close()
	}
	det.Start()

	if cfg.OpsAddr != "" {
		var oo []ops.Option
		if cfg.OpsDebug {
			oo = append(oo, ops.WithDebug())
		}
		srv, serr := ops.Serve(cfg.OpsAddr, w, oo...)
		if serr != nil {
			w.emit("error %v", serr)
			return serr
		}
		defer srv.Close()
	}

	state := &selfHealState{det: det}
	cmds := w.commandStream()
	w.emit("ready")

	var (
		mesh      *tcp.Mesh
		done      chan error
		attempt   = -1
		seenEpoch = uint64(1)
		partPairs [][2]int // active partition rules (nil when healed)
	)
	start := func(a int, restore bool) {
		if w.dist != nil {
			w.dist.Resume()
		}
		attempt = a
		w.curAttempt.Store(int64(a))
		if storage {
			// Storage members host shards and vote; the MPI world that runs
			// the application is the fixed compute ranks [0, Ranks).
			return
		}
		m, err := tcp.New(cfg.Rank, cfg.MPIAddrs,
			tcp.WithGeneration(uint64(a+1)), tcp.WithDialWindow(cfg.DialWindow))
		if err != nil {
			w.emit("error %v", err)
			return
		}
		if partPairs != nil {
			// An attempt born during an active partition inherits the rules:
			// its traffic toward the far side is held until the heal.
			m.SetPartition(partPairs, true)
		}
		mesh = m
		done = make(chan error, 1)
		go func(m *tcp.Mesh) { done <- w.attemptBody(m, a, restore) }(m)
	}
	stop := func() {
		if done == nil {
			return
		}
		mesh.Shutdown()
		<-done
		w.finishMesh(mesh)
		mesh, done = nil, nil
	}
	defer stop()

	for {
		select {
		case cmd, ok := <-cmds:
			if !ok {
				return nil
			}
			switch cmd[0] {
			case "run":
				if len(cmd) < 3 {
					w.emit("error malformed run command")
					continue
				}
				a, _ := strconv.Atoi(cmd[1])
				if done != nil || a <= attempt {
					continue // already running or stale
				}
				start(a, cmd[2] == "1")
			case "join":
				// Entry into a running world. A respawned compute rank is
				// still a member and merely adopts the agreed epoch; a storage
				// slot (fresh spare, or its own re-execution) is admitted by a
				// committed membership epoch — JoinNew's hello doubles as the
				// join request.
				var epoch uint64
				var jerr error
				if storage {
					epoch, jerr = det.JoinNew(sh.JoinTimeout)
				} else {
					epoch, jerr = det.Join(sh.JoinTimeout)
				}
				if jerr != nil {
					w.emit("error %v", jerr)
					return jerr
				}
				seenEpoch = epoch
				w.dist.SetMembership(det.Members())
				w.dist.AdvanceEpoch(epoch)
				w.emit("joined %d", epoch)
				state.restoreStart = time.Now()
				w.dumpTrace("restore")
				start(int(epoch)-1, true)
			case "part":
				// part a+b+... — sever the listed group from the rest on every
				// mesh this process owns (replication plane and the current
				// MPI attempt), in hold mode: frames toward the far side are
				// buffered and delivered at the heal, modeling a partition
				// shorter than TCP's retransmission patience.
				if len(cmd) < 2 {
					w.emit("error malformed part command")
					continue
				}
				groupA, err := ParseGroup(cmd[1])
				if err != nil {
					w.emit("error part: %v", err)
					continue
				}
				partPairs = SplitPairs(groupA, cfg.Ranks, false)
				rmesh.SetPartition(partPairs, true)
				if mesh != nil {
					mesh.SetPartition(partPairs, true)
				}
			case "heal":
				partPairs = nil
				rmesh.Heal()
				if mesh != nil {
					mesh.Heal()
				}
			case "quit":
				return nil
			case "abort":
				// Legacy command; in self-healing mode recovery is driven by
				// epochs, but acknowledge so a mixed launcher doesn't hang.
				stop()
				w.dumpTrace("abort")
				w.emit("aborted %s", tokenOf(cmd))
			}

		case ev := <-epochCh:
			if ev.epoch <= seenEpoch {
				continue // stale (e.g. the epoch adopted during join)
			}
			seenEpoch = ev.epoch
			// Install the epoch's membership first — shard placement and
			// recovery queries must follow the new ring before the restore
			// attempt reads the store — then release commits blocked on
			// acknowledgments from ranks the agreement declared dead, and
			// tear the attempt down. Every epoch lands at a recovery line:
			// deaths and membership changes alike restart the world in
			// restore mode at attempt = epoch - 1.
			w.dist.SetMembership(ev.members)
			w.dist.AdvanceEpoch(ev.epoch)
			stop()
			// The lowest-ranked surviving member coordinates: it negotiates
			// the restore line (logged for visibility; the binding negotiation
			// is the collective reduction inside Restore) and asks the
			// respawner for replacements.
			if coordinatorOf(ev.dead, ev.members) == cfg.Rank {
				for _, r := range ev.newDead {
					trace.Default().Emit(int32(cfg.Rank), trace.KindRespawn, 0, uint64(r))
					w.emit("respawn %d", r)
				}
				if w.cfg.Log != nil {
					// Informational pre-negotiation of the restore line over
					// the store's query protocol; off the critical path (the
					// binding negotiation is Restore's collective reduction).
					go func(epoch uint64) {
						v, ok, err := w.store.LastCommitted(cfg.Rank)
						w.cfg.Log("rank %d: coordinating epoch %d recovery, candidate line %d (ok=%v err=%v)",
							cfg.Rank, epoch, v, ok, err)
					}(ev.epoch)
				}
			}
			state.restoreStart = time.Now()
			// Dump before re-entering the attempt so the suspect/gossip/agree
			// window that produced this epoch is on disk even if the restore
			// itself dies.
			w.dumpTrace("restore")
			start(int(ev.epoch)-1, true)

		case err := <-done:
			w.finishMesh(mesh)
			mesh, done = nil, nil
			switch {
			case err == nil:
				w.emitSuccess(attempt, state)
				// Stay alive: a later failure elsewhere can still roll the
				// world back, in which case the epoch event restarts us.
			case errors.Is(err, mpi.ErrDown):
				// The mesh died under us — either our own teardown racing the
				// epoch event, or a peer's death stalling the world until the
				// detector confirms it. The epoch event drives the restart.
				w.emit("down %d", attempt)
			case errors.Is(err, stable.ErrFenced):
				// Minority side of a partition: the store refused a commit.
				// Report down and wait — the heal delivers a newer epoch
				// (majority committed without us) that restarts the attempt.
				w.emit("down %d", attempt)
			default:
				w.emit("error rank %d attempt %d: %v", cfg.Rank, attempt, err)
				return err
			}

		case epoch := <-drained:
			// A committed membership epoch removed this very slot — the
			// graceful shrink this node (or an operator via the ops plane)
			// asked for. Stop hosting and exit cleanly; peers re-partition.
			stop()
			w.emit("drained %d", epoch)
			return nil

		case epoch := <-evicted:
			err := fmt.Errorf("rank %d evicted by epoch %d while alive (false suspicion won agreement)", cfg.Rank, epoch)
			w.emit("error %v", err)
			return err
		}
	}
}

// --- Ops control-plane backend (internal/ops.Backend) ---
//
// The node implements the control plane's Backend so internal/ops stays
// free of cluster imports. All methods run on HTTP handler goroutines and
// touch only thread-safe surfaces: detector accessors, store counters,
// atomics, and the outMu-serialized pipe.

// Status snapshots this node's view of the world for GET /status.
func (w *node) Status() ops.Status {
	members := w.det.Members()
	commits, _ := w.dist.CommitStats()
	st := ops.Status{
		Rank:            w.cfg.Rank,
		World:           w.cfg.Ranks,
		Capacity:        w.cfg.Capacity,
		Storage:         w.cfg.Rank >= w.cfg.Ranks,
		Attempt:         int(w.curAttempt.Load()),
		Epoch:           w.det.Epoch(),
		MembershipEpoch: members.Epoch(),
		Members:         members.Members(),
		Dead:            w.det.Dead(),
		Fenced:          w.det.Fenced(),
		Line:            int(w.lastLine.Load()),
		Checkpoints:     commits,
		StoredBytes:     w.dist.StoredBytes(),
	}
	if topo := w.det.Topology(); !topo.Flat() {
		st.GroupSize = w.cfg.GroupSize
		st.Groups = topo.NumGroups()
		st.Delegates = topo.Delegates()
	}
	return st
}

// Metrics snapshots this node's counters for GET /metrics.
func (w *node) Metrics() ops.Metrics {
	members := w.det.Members()
	commits, nanos := w.dist.CommitStats()
	last := 0.0
	if tm := w.det.Times(); !tm.SuspectAt.IsZero() && tm.AgreeAt.After(tm.SuspectAt) {
		last = tm.AgreeAt.Sub(tm.SuspectAt).Seconds()
	}
	return ops.Metrics{
		Rank:            w.cfg.Rank,
		Attempt:         int(w.curAttempt.Load()),
		Commits:         commits,
		CommitSeconds:   float64(nanos) / 1e9,
		Detections:      w.det.Detections(),
		DetectLastSecs:  last,
		Epoch:           w.det.Epoch(),
		MembershipEpoch: members.Epoch(),
		Members:         members.Size(),
		Groups:          w.det.Topology().NumGroups(),
		StoredBytes:     w.dist.StoredBytes(),
		ReplicatedBytes: w.dist.ReplicatedBytes(),
		Reassemblies:    w.dist.Reassemblies(),
		Fenced:          w.det.Fenced(),
	}
}

// TraceDump implements POST /trace/dump (ops.TraceDumper): write the
// flight recorder's ring to the configured trace directory on demand.
func (w *node) TraceDump() (string, error) {
	if w.cfg.TraceDir == "" {
		return "", fmt.Errorf("rank %d has no trace directory configured (run with -trace-dir)", w.cfg.Rank)
	}
	return trace.Default().WriteDump(w.cfg.TraceDir, w.cfg.Rank)
}

// CheckpointNow implements POST /checkpoint: the running attempt takes a
// recovery line at its next pragma.
func (w *node) CheckpointNow() error {
	l := w.layer.Load()
	if l == nil {
		return fmt.Errorf("no attempt is running on rank %d", w.cfg.Rank)
	}
	l.RequestCheckpoint()
	return nil
}

// Drain implements POST /drain: start the membership agreement that
// removes a storage member gracefully. Compute ranks cannot drain — the
// MPI world is fixed at launch; shrinking it would change the
// application's decomposition mid-run.
func (w *node) Drain(rank int) error {
	if rank < w.cfg.Ranks {
		return fmt.Errorf("rank %d hosts an application rank; only storage members (slots >= %d) drain", rank, w.cfg.Ranks)
	}
	return w.det.Drain(rank)
}

// JoinHint implements POST /join: ask the launcher to spawn a process for
// a spare slot. Admission itself happens between the new process and the
// members (JoinNew -> membership epoch agreement); the launcher merely
// provides the process.
func (w *node) JoinHint(slot int) error {
	if slot >= 0 {
		if slot < w.cfg.Ranks || slot >= w.cfg.Capacity {
			return fmt.Errorf("slot %d outside the spare range [%d,%d)", slot, w.cfg.Ranks, w.cfg.Capacity)
		}
		if w.det.Members().Contains(slot) {
			return fmt.Errorf("slot %d is already a member", slot)
		}
	} else if w.det.Members().Size() >= w.cfg.Capacity {
		return fmt.Errorf("all %d slots are members; nothing spare to join", w.cfg.Capacity)
	}
	w.emit("wantjoin %d", slot)
	return nil
}

// coordinatorOf returns the recovery coordinator for a dead set: the
// lowest-ranked surviving member.
func coordinatorOf(dead []int, members member.Set) int {
	deadSet := make(map[int]bool, len(dead))
	for _, r := range dead {
		deadSet[r] = true
	}
	for _, r := range members.Members() {
		if !deadSet[r] {
			return r
		}
	}
	return -1
}
