// Package mpi is a from-scratch message-passing library with MPI semantics,
// built for the C3 checkpoint-recovery reproduction. It plays the role of the
// "Native MPI" box in the paper's system architecture (Figure 1): the
// checkpointing coordination layer in internal/ckpt interposes on calls into
// this package, exactly as C3 interposes on a vendor MPI.
//
// The library implements:
//
//   - blocking point-to-point communication with tag and communicator
//     matching, including the AnySource and AnyTag wildcards;
//   - non-blocking communication (Isend/Irecv) with Wait/Test families;
//   - non-overtaking delivery per (source, communicator, tag) signature,
//     while messages with different signatures may be received in any order
//     the application asks for (the property Section 2.4 of the paper calls
//     out as breaking Chandy-Lamport style FIFO assumptions);
//   - derived datatypes (contiguous, vector, indexed, struct) that form a
//     hierarchy, with pack/unpack of non-contiguous buffers;
//   - collective operations (Barrier, Bcast, Gather(v), Scatter, Allgather,
//     Alltoall(v), Reduce, Allreduce, Scan) that do not synchronize more
//     than their data dependencies require;
//   - communicator duplication and splitting;
//   - buffer attach/detach accounting for buffered sends.
//
// Concurrency model: a World holds one Proc per rank. Each Proc must be used
// from a single goroutine, its "rank goroutine" — the same discipline a
// single-threaded MPI process obeys. The transport below is safe for
// concurrent use.
package mpi

import (
	"errors"
	"fmt"

	"c3/internal/transport"
	"c3/internal/wire"
)

// Wildcards for receive matching. They are valid only where documented:
// AnySource/AnyTag for the source and tag arguments of receive operations.
const (
	// AnySource matches a message from any source rank.
	AnySource = -1
	// AnyTag matches a message with any tag.
	AnyTag = -1
)

// MaxUserTag is the largest tag application code may use. Tags above it are
// reserved for internal use by collectives and by layers built on top of
// this package (the checkpoint protocol layer reserves a range too).
const MaxUserTag = 1 << 20

// Errors returned by communication operations.
var (
	// ErrDown reports that the local process or the network was killed
	// (fail-stop). All subsequent operations on the Proc return it.
	ErrDown = errors.New("mpi: process down")
	// ErrTruncate reports that an incoming message was longer than the
	// receive buffer.
	ErrTruncate = errors.New("mpi: message truncated")
	// ErrInvalid reports invalid arguments.
	ErrInvalid = errors.New("mpi: invalid argument")
	// ErrBuffer reports buffered-send accounting exhaustion.
	ErrBuffer = errors.New("mpi: attached buffer exhausted")
)

// Status describes a completed receive.
type Status struct {
	// Source is the sender's rank in the receive's communicator.
	Source int
	// Tag is the message tag.
	Tag int
	// Bytes is the packed payload size in bytes.
	Bytes int
}

// Count returns the number of elements of the given datatype in the message.
func (s Status) Count(dt *Datatype) int {
	if dt == nil || dt.Size() == 0 {
		return 0
	}
	return s.Bytes / dt.Size()
}

// Envelope is the unit the MPI layer exchanges over the transport.
// It is exported so that diagnostic tooling can inspect traffic, but
// applications never construct Envelopes directly.
type Envelope struct {
	SrcWorld int // world rank of the sender
	Tag      int
	Ctx      uint32 // communicator context id
	Data     []byte // packed payload
}

// TransportSize implements transport.Sizer.
func (e *Envelope) TransportSize() int { return len(e.Data) }

// WireKind implements transport.WirePayload.
func (e *Envelope) WireKind() uint8 { return transport.WireKindEnvelope }

// MarshalWire implements transport.WirePayload.
func (e *Envelope) MarshalWire() []byte {
	w := wire.NewWriter(24 + len(e.Data))
	w.U32(uint32(e.SrcWorld))
	w.I64(int64(e.Tag))
	w.U32(e.Ctx)
	w.Bytes32(e.Data)
	return w.Bytes()
}

func init() {
	transport.RegisterWireDecoder(transport.WireKindEnvelope, func(data []byte) (any, error) {
		r := wire.NewReader(data)
		e := &Envelope{SrcWorld: int(r.U32())}
		e.Tag = int(r.I64())
		e.Ctx = r.U32()
		e.Data = r.Bytes32()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("mpi: corrupt envelope frame: %w", err)
		}
		return e, nil
	})
}

// World is a set of communicating processes. It owns the transport
// interconnect and a Proc per rank (with a remote interconnect, only the
// locally hosted rank's Proc is usable).
type World struct {
	n     int
	nw    transport.Interconnect
	procs []*Proc

	// ctxCounter allocates communicator context ids; see Comm. Each
	// communicator consumes two ids (point-to-point and collective planes).
	// It is only mutated under collective agreement, from rank goroutines.
	ctxCounter uint32
}

// WorldOption configures a World.
type WorldOption func(*worldConfig)

type worldConfig struct {
	transportOpts []transport.Option
	ic            transport.Interconnect
}

// WithTransportOptions forwards options to the underlying network, for
// example latency models.
func WithTransportOptions(opts ...transport.Option) WorldOption {
	return func(c *worldConfig) { c.transportOpts = append(c.transportOpts, opts...) }
}

// WithScheduler installs a virtual schedule engine on the world's network:
// rank interleaving, message delivery order, and logical time all become a
// pure function of the engine's seed (or replayed trace). The runtime must
// bracket each rank goroutine with Scheduler().Start/Exit.
func WithScheduler(s *transport.Scheduler) WorldOption {
	return func(c *worldConfig) { c.transportOpts = append(c.transportOpts, transport.WithScheduler(s)) }
}

// WithInterconnect runs the world over an externally constructed
// interconnect (for example a tcp.Mesh hosting one rank of a multi-process
// world) instead of a fresh in-memory network. Transport options and
// WithScheduler are ignored when an interconnect is supplied.
func WithInterconnect(ic transport.Interconnect) WorldOption {
	return func(c *worldConfig) { c.ic = ic }
}

// NewWorld creates a world of n ranks.
func NewWorld(n int, opts ...WorldOption) *World {
	var cfg worldConfig
	for _, o := range opts {
		o(&cfg)
	}
	ic := cfg.ic
	if ic == nil {
		ic = transport.NewNetwork(n, cfg.transportOpts...)
	} else if ic.Size() != n {
		panic(fmt.Sprintf("mpi: interconnect has %d ranks, world wants %d", ic.Size(), n))
	}
	w := &World{
		n:          n,
		nw:         ic,
		ctxCounter: 2, // ctx 0/1 are the world communicator's planes
	}
	w.procs = make([]*Proc, n)
	for r := 0; r < n; r++ {
		w.procs[r] = newProc(w, r)
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Proc returns the library instance for a rank. The returned Proc must be
// used only from that rank's goroutine.
func (w *World) Proc(rank int) *Proc { return w.procs[rank] }

// Network exposes the underlying transport interconnect (for stats and
// failure injection by the cluster runtime).
func (w *World) Network() transport.Interconnect { return w.nw }

// Scheduler returns the network's virtual schedule engine, nil under real
// scheduling.
func (w *World) Scheduler() *transport.Scheduler { return w.nw.Scheduler() }

// Kill fail-stops one rank.
func (w *World) Kill(rank int) { w.nw.Kill(rank) }

// Shutdown tears down the whole world; all blocked operations return ErrDown.
func (w *World) Shutdown() { w.nw.Shutdown() }

// Proc is one rank's MPI library instance.
type Proc struct {
	world *World
	rank  int
	name  string
	ep    transport.Port

	// Receive-side matching state. Arrival order is preserved in
	// unexpected; posted holds pending non-blocking receives in post order.
	unexpected []*Envelope
	posted     []*Request

	worldComm *Comm

	attachCap  int // Bsend buffer capacity (bytes)
	attachUsed int // modeled outstanding buffered bytes

	stats ProcStats
}

// ProcStats counts per-rank communication activity.
type ProcStats struct {
	Sends      uint64
	Recvs      uint64
	BytesSent  uint64
	BytesRecvd uint64
}

func newProc(w *World, rank int) *Proc {
	p := &Proc{
		world: w,
		rank:  rank,
		name:  fmt.Sprintf("node%03d", rank),
		ep:    w.nw.Endpoint(rank),
	}
	group := make([]int, w.n)
	for i := range group {
		group[i] = i
	}
	p.worldComm = &Comm{proc: p, ctx: 0, group: group, myRank: rank}
	p.worldComm.buildIndex()
	return p
}

// Rank returns this process's world rank.
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return p.world.n }

// Name returns the processor name (part of the "basic MPI state" the
// checkpoint layer saves).
func (p *Proc) Name() string { return p.name }

// World returns the containing world.
func (p *Proc) World() *World { return p.world }

// CommWorld returns the world communicator for this rank.
func (p *Proc) CommWorld() *Comm { return p.worldComm }

// Stats returns a copy of this rank's counters.
func (p *Proc) Stats() ProcStats { return p.stats }

// BufferAttach models MPI_Buffer_attach: reserve capacity for buffered
// sends. The checkpoint layer records the attached size as MPI state.
func (p *Proc) BufferAttach(bytes int) error {
	if bytes < 0 {
		return fmt.Errorf("%w: negative buffer size %d", ErrInvalid, bytes)
	}
	p.attachCap = bytes
	p.attachUsed = 0
	return nil
}

// BufferDetach models MPI_Buffer_detach and returns the attached capacity.
func (p *Proc) BufferDetach() int {
	c := p.attachCap
	p.attachCap = 0
	p.attachUsed = 0
	return c
}

// AttachedBuffer returns the currently attached buffer capacity.
func (p *Proc) AttachedBuffer() int { return p.attachCap }

// send transmits a packed payload.
func (p *Proc) send(destWorld, tag int, ctx uint32, data []byte) error {
	env := &Envelope{SrcWorld: p.rank, Tag: tag, Ctx: ctx, Data: data}
	p.stats.Sends++
	p.stats.BytesSent += uint64(len(data))
	err := p.world.nw.Send(transport.Message{
		From:    p.rank,
		To:      destWorld,
		Class:   transport.Data,
		Payload: env,
	})
	if err != nil {
		return ErrDown
	}
	return nil
}

// drainOne pulls one message from the transport and dispatches it. With
// block=false it returns (false, nil) when nothing is pending. A virtual-
// scheduler stall is passed through unchanged so diagnosability survives
// the layers above (it is a protocol deadlock, not a node failure).
func (p *Proc) drainOne(block bool) (bool, error) {
	var msg transport.Message
	var err error
	if block {
		msg, err = p.ep.Recv()
		if err != nil {
			if errors.Is(err, transport.ErrStalled) {
				return false, err
			}
			return false, ErrDown
		}
	} else {
		var ok bool
		msg, ok, err = p.ep.TryRecv()
		if err != nil {
			return false, ErrDown
		}
		if !ok {
			return false, nil
		}
	}
	env, ok := msg.Payload.(*Envelope)
	if !ok {
		return false, fmt.Errorf("%w: unexpected payload %T", ErrInvalid, msg.Payload)
	}
	p.dispatch(env)
	return true, nil
}

// dispatch matches an arrived envelope against posted receives (in post
// order), falling back to the unexpected queue (in arrival order).
func (p *Proc) dispatch(env *Envelope) {
	for i, req := range p.posted {
		if req.matches(env) {
			p.posted = append(p.posted[:i], p.posted[i+1:]...)
			req.complete(env)
			return
		}
	}
	p.unexpected = append(p.unexpected, env)
}

// takeUnexpected removes and returns the earliest-arrived unexpected
// envelope matching the request, or nil.
func (p *Proc) takeUnexpected(req *Request) *Envelope {
	for i, env := range p.unexpected {
		if req.matches(env) {
			p.unexpected = append(p.unexpected[:i], p.unexpected[i+1:]...)
			return env
		}
	}
	return nil
}

// peekUnexpected returns the earliest matching unexpected envelope without
// removing it (used by Probe).
func (p *Proc) peekUnexpected(src, tag int, c *Comm) *Envelope {
	for _, env := range p.unexpected {
		if envMatches(env, src, tag, c) {
			return env
		}
	}
	return nil
}

func envMatches(env *Envelope, src, tag int, c *Comm) bool {
	if env.Ctx != c.ctx {
		return false
	}
	commSrc, ok := c.worldToComm(env.SrcWorld)
	if !ok {
		return false
	}
	if src != AnySource && src != commSrc {
		return false
	}
	if tag != AnyTag && tag != env.Tag {
		return false
	}
	return true
}
