package cluster

// Partition fault model: one declarative spec drives both deployment
// shapes. In the virtual scheduled world (cluster.Run) a PartitionSpec is
// expanded into transport.SchedPartitionEvents armed on the deterministic
// scheduler, so the same split replays from a recorded trace and shrinks
// under ddmin. In the multi-process world the launcher installs the same
// group split on every process's TCP meshes (ExternalPartitionSpec, the
// `part`/`heal` pipe commands), so the split happens as real per-pair
// frame severing.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"c3/internal/transport"
)

// PartitionSpec declares one partition episode for the virtual scheduled
// world: at a seeded trigger step the world splits into GroupA and the
// rest, and after HealAfterSteps of logical time the split heals.
type PartitionSpec struct {
	// GroupA is one side of the split; the other side is the complement.
	GroupA []int
	// Asymmetric severs only the B->A direction (A's frames are delivered,
	// B's answers vanish) — the pathological half-open split.
	Asymmetric bool
	// Hold buffers severed frames for delivery at the heal instead of
	// dropping them (a split shorter than the transport's retransmission
	// patience). The in-process scheduled runtime has no failure detector,
	// so scenario specs use hold — a dropped MPI frame would stall the
	// world forever.
	Hold bool
	// AtStep is the earliest logical step the partition can start; the
	// actual trigger adds a seeded draw in [0, Jitter].
	AtStep int64
	// Jitter randomizes the trigger per seed (0: fire exactly at AtStep).
	Jitter int64
	// HealAfterSteps is the split's length in logical steps (0: a
	// partition that never heals within the attempt).
	HealAfterSteps int64
	// Attempt selects which attempt the episode runs in (0-based).
	Attempt int
}

// Events expands the spec into the scheduler's armed event list: the
// split followed (when HealAfterSteps > 0) by its heal.
func (p PartitionSpec) Events(ranks int) []transport.SchedPartitionEvent {
	ev := transport.SchedPartitionEvent{
		Block:  SplitPairs(p.GroupA, ranks, p.Asymmetric),
		Hold:   p.Hold,
		At:     p.AtStep,
		Jitter: p.Jitter,
	}
	out := []transport.SchedPartitionEvent{ev}
	if p.HealAfterSteps > 0 {
		out = append(out, transport.SchedPartitionEvent{
			Heal: true,
			At:   p.AtStep + p.Jitter + p.HealAfterSteps,
		})
	}
	return out
}

// ExternalPartitionSpec schedules the launcher-as-operator network split
// for the multi-process self-healing world: the launcher tells every
// process to sever GroupA from the rest, then heals after a delay. The
// majority side must commit an epoch declaring the minority dead and keep
// going; the minority must fence (zero checkpoint commits while split)
// and rejoin at the heal.
type ExternalPartitionSpec struct {
	// GroupA is the rank set severed from the rest (symmetric split).
	GroupA []int
	// AfterCheckpoints installs the partition once the GroupA ranks have
	// reported this many checkpoint commits in total (the split lands
	// mid-logging-phase, not at a quiet boundary).
	AfterCheckpoints int
	// HealAfter heals the split this long after installing it.
	HealAfter time.Duration
}

// SplitPairs expands a group split into the directed (from, to) pairs to
// sever. Symmetric splits cut both directions between GroupA and its
// complement; asymmetric splits deliver A->B but drop B->A.
func SplitPairs(groupA []int, ranks int, asymmetric bool) [][2]int {
	inA := make(map[int]bool, len(groupA))
	for _, r := range groupA {
		inA[r] = true
	}
	var pairs [][2]int
	for a := 0; a < ranks; a++ {
		if !inA[a] {
			continue
		}
		for b := 0; b < ranks; b++ {
			if inA[b] {
				continue
			}
			pairs = append(pairs, [2]int{b, a}) // B->A always severed
			if !asymmetric {
				pairs = append(pairs, [2]int{a, b})
			}
		}
	}
	return pairs
}

// ParseGroup parses a "+"-separated rank list ("3+4").
func ParseGroup(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, "+") {
		r, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad rank %q in group %q", f, s)
		}
		out = append(out, r)
	}
	sort.Ints(out)
	return out, nil
}

// FormatGroup renders a rank list in ParseGroup's syntax.
func FormatGroup(ranks []int) string {
	parts := make([]string, len(ranks))
	for i, r := range ranks {
		parts[i] = strconv.Itoa(r)
	}
	return strings.Join(parts, "+")
}

// ParsePartitionSpec parses the c3node -partition flag syntax:
//
//	a=3+4,after=2,heal=3s
//
// a names the severed group, after the total GroupA checkpoint count that
// triggers the split (default 2), heal the split duration (default 3s).
func ParsePartitionSpec(s string) (*ExternalPartitionSpec, error) {
	spec := &ExternalPartitionSpec{AfterCheckpoints: 2, HealAfter: 3 * time.Second}
	for _, f := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(f), "=")
		if !ok {
			return nil, fmt.Errorf("cluster: partition spec field %q (want k=v)", f)
		}
		switch k {
		case "a":
			g, err := ParseGroup(v)
			if err != nil {
				return nil, fmt.Errorf("cluster: partition spec: %v", err)
			}
			spec.GroupA = g
		case "after":
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("cluster: partition spec after=%q: %v", v, err)
			}
			spec.AfterCheckpoints = n
		case "heal":
			d, err := time.ParseDuration(v)
			if err != nil {
				return nil, fmt.Errorf("cluster: partition spec heal=%q: %v", v, err)
			}
			spec.HealAfter = d
		default:
			return nil, fmt.Errorf("cluster: partition spec has unknown field %q", k)
		}
	}
	if len(spec.GroupA) == 0 {
		return nil, fmt.Errorf("cluster: partition spec names no group (a=...)")
	}
	return spec, nil
}
