package cluster_test

import (
	"sync"
	"testing"

	"c3/internal/ckpt"
	"c3/internal/cluster"
	"c3/internal/sched"
)

func TestStressRandomScheduleWithFailures(t *testing.T) {
	const ranks = 5
	const iters = 12
	// Reference: failure-free run.
	var ref sync.Map
	refCfg := cluster.Config{
		Ranks: ranks,
		App:   sched.StressApp(iters, &ref),
	}
	run(t, refCfg)

	for _, tc := range []struct {
		name     string
		failures []cluster.FailureSpec
		policy   int
	}{
		{"one-failure-mid", []cluster.FailureSpec{{Rank: 2, AtPragma: 7}}, 4},
		{"one-failure-early", []cluster.FailureSpec{{Rank: 0, AtPragma: 2}}, 3},
		{"two-failures", []cluster.FailureSpec{{Rank: 1, AtPragma: 5}, {Rank: 3, AtPragma: 4}}, 2},
		{"failure-every-rank", []cluster.FailureSpec{
			{Rank: 0, AtPragma: 3}, {Rank: 1, AtPragma: 4}, {Rank: 2, AtPragma: 5},
			{Rank: 3, AtPragma: 9}, {Rank: 4, AtPragma: 11},
		}, 3},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var got sync.Map
			cfg := cluster.Config{
				Ranks:    ranks,
				App:      sched.StressApp(iters, &got),
				Failures: tc.failures,
				Policy:   ckpt.Policy{EveryNthPragma: tc.policy},
			}
			res := run(t, cfg)
			// Later failures may never fire when recovery shortens an
			// attempt below the scheduled pragma count, so the attempt
			// count is bounded, not exact.
			if res.Attempts < 2 || res.Attempts > len(tc.failures)+1 {
				t.Fatalf("attempts = %d, want 2..%d", res.Attempts, len(tc.failures)+1)
			}
			for r := 0; r < ranks; r++ {
				want, _ := ref.Load(r)
				gotv, ok := got.Load(r)
				if !ok {
					t.Fatalf("rank %d has no result", r)
				}
				if want != gotv {
					t.Errorf("rank %d checksum diverged: failure-free %v, recovered %v", r, want, gotv)
				}
			}
		})
	}
}
