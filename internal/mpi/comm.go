package mpi

import (
	"fmt"
	"sort"
)

// Comm is a communicator: an isolated communication context over an ordered
// group of ranks. Each communicator owns two context ids: ctx for
// point-to-point traffic and ctx+1 for collective-internal traffic, so user
// messages can never match collective plumbing.
type Comm struct {
	proc   *Proc
	ctx    uint32
	group  []int // comm rank -> world rank
	myRank int   // this proc's rank within the communicator

	worldIdx map[int]int // world rank -> comm rank
}

func (c *Comm) buildIndex() {
	c.worldIdx = make(map[int]int, len(c.group))
	for cr, wr := range c.group {
		c.worldIdx[wr] = cr
	}
}

// Rank returns the calling process's rank in this communicator.
func (c *Comm) Rank() int { return c.myRank }

// Size returns the number of ranks in this communicator.
func (c *Comm) Size() int { return len(c.group) }

// Ctx returns the communicator's point-to-point context id. The checkpoint
// layer uses it as part of message signatures.
func (c *Comm) Ctx() uint32 { return c.ctx }

// Proc returns the owning process.
func (c *Comm) Proc() *Proc { return c.proc }

// Group returns a copy of the comm-rank to world-rank mapping.
func (c *Comm) Group() []int { return append([]int(nil), c.group...) }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(commRank int) (int, error) {
	if commRank < 0 || commRank >= len(c.group) {
		return 0, fmt.Errorf("%w: rank %d out of range [0,%d)", ErrInvalid, commRank, len(c.group))
	}
	return c.group[commRank], nil
}

func (c *Comm) worldToComm(worldRank int) (int, bool) {
	cr, ok := c.worldIdx[worldRank]
	return cr, ok
}

// collCtx is the context id for collective-internal messages.
func (c *Comm) collCtx() uint32 { return c.ctx + 1 }

// allocCtx allocates a fresh context-id pair, agreed collectively: rank 0 of
// this communicator reads-and-advances the world counter and broadcasts the
// result. All members must call it together (it is collective).
func (c *Comm) allocCtx() (uint32, error) {
	var id uint32
	if c.myRank == 0 {
		id = c.proc.world.ctxCounter
		c.proc.world.ctxCounter += 2
	}
	buf := make([]byte, 4)
	if c.myRank == 0 {
		buf[0] = byte(id)
		buf[1] = byte(id >> 8)
		buf[2] = byte(id >> 16)
		buf[3] = byte(id >> 24)
	}
	if err := c.bcastBytes(buf, 0, tagCtxAlloc); err != nil {
		return 0, err
	}
	id = uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
	return id, nil
}

// Dup creates a duplicate communicator with the same group but a fresh
// context. Collective over c.
func (c *Comm) Dup() (*Comm, error) {
	id, err := c.allocCtx()
	if err != nil {
		return nil, err
	}
	nc := &Comm{
		proc:   c.proc,
		ctx:    id,
		group:  append([]int(nil), c.group...),
		myRank: c.myRank,
	}
	nc.buildIndex()
	return nc, nil
}

// Split partitions c by color; within each color, ranks are ordered by
// (key, old rank). A negative color yields a nil communicator for that
// caller. Collective over c.
func (c *Comm) Split(color, key int) (*Comm, error) {
	// Gather (color, key) pairs at rank 0 over the collective plane,
	// compute the partition there, then scatter each member's new group.
	n := c.Size()
	mine := []byte{
		byte(color), byte(color >> 8), byte(color >> 16), byte(color >> 24),
		byte(key), byte(key >> 8), byte(key >> 16), byte(key >> 24),
	}
	all := make([]byte, 8*n)
	if err := c.gatherBytes(mine, all, 0, tagCtxAlloc); err != nil {
		return nil, err
	}

	var groupsEncoded [][]byte
	if c.myRank == 0 {
		type member struct{ color, key, rank int }
		members := make([]member, n)
		for i := 0; i < n; i++ {
			col := int(int32(uint32(all[i*8]) | uint32(all[i*8+1])<<8 | uint32(all[i*8+2])<<16 | uint32(all[i*8+3])<<24))
			k := int(int32(uint32(all[i*8+4]) | uint32(all[i*8+5])<<8 | uint32(all[i*8+6])<<16 | uint32(all[i*8+7])<<24))
			members[i] = member{col, k, i}
		}
		byColor := make(map[int][]member)
		var colors []int
		for _, m := range members {
			if m.color < 0 {
				continue
			}
			if _, seen := byColor[m.color]; !seen {
				colors = append(colors, m.color)
			}
			byColor[m.color] = append(byColor[m.color], m)
		}
		sort.Ints(colors)
		// Each color group gets a context id; encode for every member of c
		// its new group as [ctx, len, worldRanks...] (int32s), empty for
		// color < 0.
		groupsEncoded = make([][]byte, n)
		for _, col := range colors {
			ms := byColor[col]
			sort.Slice(ms, func(i, j int) bool {
				if ms[i].key != ms[j].key {
					return ms[i].key < ms[j].key
				}
				return ms[i].rank < ms[j].rank
			})
			id := c.proc.world.ctxCounter
			c.proc.world.ctxCounter += 2
			worldRanks := make([]int, len(ms))
			for i, m := range ms {
				worldRanks[i] = c.group[m.rank]
			}
			enc := encodeInt32s(append([]int{int(id), len(ms)}, worldRanks...))
			for _, m := range ms {
				groupsEncoded[m.rank] = enc
			}
		}
		for i := range groupsEncoded {
			if groupsEncoded[i] == nil {
				groupsEncoded[i] = []byte{}
			}
		}
	}

	var myEnc []byte
	if c.myRank == 0 {
		myEnc = groupsEncoded[0]
		for dst := 1; dst < n; dst++ {
			wr := c.group[dst]
			if err := c.proc.send(wr, tagCtxAlloc, c.collCtx(), groupsEncoded[dst]); err != nil {
				return nil, err
			}
		}
	} else {
		buf := make([]byte, 8+8*n+64)
		st, err := c.proc.recvInternal(buf, 0, tagCtxAlloc, c, c.collCtx())
		if err != nil {
			return nil, err
		}
		myEnc = buf[:st.Bytes]
	}

	if len(myEnc) == 0 {
		return nil, nil // color < 0: not in any new communicator
	}
	vals := decodeInt32s(myEnc)
	id := uint32(vals[0])
	cnt := vals[1]
	group := vals[2 : 2+cnt]
	nc := &Comm{proc: c.proc, ctx: id, group: append([]int(nil), group...)}
	for i, wr := range nc.group {
		if wr == c.proc.rank {
			nc.myRank = i
		}
	}
	nc.buildIndex()
	return nc, nil
}

func encodeInt32s(vs []int) []byte {
	b := make([]byte, 4*len(vs))
	for i, v := range vs {
		u := uint32(int32(v))
		b[i*4] = byte(u)
		b[i*4+1] = byte(u >> 8)
		b[i*4+2] = byte(u >> 16)
		b[i*4+3] = byte(u >> 24)
	}
	return b
}

func decodeInt32s(b []byte) []int {
	vs := make([]int, len(b)/4)
	for i := range vs {
		u := uint32(b[i*4]) | uint32(b[i*4+1])<<8 | uint32(b[i*4+2])<<16 | uint32(b[i*4+3])<<24
		vs[i] = int(int32(u))
	}
	return vs
}
