package sched

import (
	"c3/internal/cluster"
	"c3/internal/transport"
)

// Shrink minimizes a failing schedule to a (locally) minimal interleaving.
//
// Candidate edits delete recorded decisions; a deleted choice point falls
// back to the engine's default policy at replay (keep running / grant the
// lowest READY rank), and trailing decisions whose steps no longer match
// are skipped. An edit is kept only when the replay still fails, so the
// decisions that survive are exactly the forced context switches the
// failure needs. budget bounds the number of replays; the count used is
// returned alongside the minimized schedule.
//
// It returns ErrNotReproducible when the input schedule's replay does not
// fail to begin with.
func Shrink(sc Scenario, ref map[int]int, failing *cluster.Schedule, budget int) (*cluster.Schedule, int, error) {
	used := 0
	stillFails := func(s *cluster.Schedule) bool {
		used++
		return RunSchedule(sc, ref, s).Failed
	}
	if !stillFails(failing) {
		return nil, used, ErrNotReproducible
	}
	cur := failing.Clone()

	// Phase 1: drop whole attempts (replaced by pure default scheduling),
	// later attempts first — the failure usually needs only the attempts
	// around the mis-handled recovery line.
	for ai := len(cur.Attempts) - 1; ai >= 0; ai-- {
		if used >= budget || len(cur.Attempts[ai].Decisions) == 0 {
			continue
		}
		cand := cur.Clone()
		cand.Attempts[ai].Decisions = nil
		if stillFails(cand) {
			cur = cand
		}
	}

	// Phase 2: ddmin-style chunk deletion within each attempt.
	for ai := range cur.Attempts {
		cur.Attempts[ai].Decisions = shrinkDecisions(
			cur.Attempts[ai].Decisions,
			func(ds []transport.Decision) bool {
				if used >= budget {
					return false
				}
				cand := cur.Clone()
				cand.Attempts[ai].Decisions = ds
				return stillFails(cand)
			})
	}
	return cur, used, nil
}

// shrinkDecisions removes chunks of decisions while ok keeps reporting the
// failure, halving the chunk size down to single decisions.
func shrinkDecisions(ds []transport.Decision, ok func([]transport.Decision) bool) []transport.Decision {
	for chunk := (len(ds) + 1) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start < len(ds); {
			end := start + chunk
			if end > len(ds) {
				end = len(ds)
			}
			cand := make([]transport.Decision, 0, len(ds)-(end-start))
			cand = append(cand, ds[:start]...)
			cand = append(cand, ds[end:]...)
			if ok(cand) {
				ds = cand
				// Same start now addresses the next chunk.
			} else {
				start += chunk
			}
		}
	}
	return ds
}
