// Jacobi: a 1D heat-diffusion solver with halo exchanges — the classic
// stencil workload the paper's overhead tables are built from (CG/LU/SP all
// reduce to neighbor exchanges plus reductions).
//
// The domain is block-partitioned across ranks; every iteration exchanges
// boundary cells with both neighbors, updates the interior, and every 10
// iterations computes the global residual with an Allreduce. The program
// checkpoints through the protocol layer and survives two injected
// failures, printing the same final residual a failure-free run produces.
//
// Run: go run ./examples/jacobi
package main

import (
	"fmt"
	"log"
	"math"

	"c3"
)

const (
	ranks = 4
	cells = 4096 // global cell count
	iters = 120
)

func jacobi(env c3.Env) error {
	st := env.State()
	r, size := env.Rank(), env.Size()
	local := cells / size

	it := st.Int("it")
	u := st.Float64s("u", local).Data()
	unew := st.Float64s("unew", local).Data()

	restored, err := env.Restore()
	if err != nil {
		return err
	}
	w := env.World()

	if !restored && it.Get() == 0 {
		// Hot spot in the middle of the global domain.
		for i := range u {
			gi := r*local + i
			if gi > cells/3 && gi < 2*cells/3 {
				u[i] = 100
			}
		}
	}

	var sbuf, rbuf [8]byte
	for it.Get() < iters {
		leftGhost, rightGhost := 0.0, 0.0
		if r > 0 {
			c3.PutFloat64s(sbuf[:], u[:1])
			if _, err := w.Sendrecv(sbuf[:], 1, c3.TypeFloat64, r-1, 1,
				rbuf[:], 1, c3.TypeFloat64, r-1, 2); err != nil {
				return err
			}
			var v [1]float64
			c3.GetFloat64s(v[:], rbuf[:])
			leftGhost = v[0]
		}
		if r < size-1 {
			c3.PutFloat64s(sbuf[:], u[local-1:])
			if _, err := w.Sendrecv(sbuf[:], 1, c3.TypeFloat64, r+1, 2,
				rbuf[:], 1, c3.TypeFloat64, r+1, 1); err != nil {
				return err
			}
			var v [1]float64
			c3.GetFloat64s(v[:], rbuf[:])
			rightGhost = v[0]
		}
		for i := 0; i < local; i++ {
			left := leftGhost
			if i > 0 {
				left = u[i-1]
			}
			right := rightGhost
			if i < local-1 {
				right = u[i+1]
			}
			unew[i] = u[i] + 0.25*(left-2*u[i]+right)
		}
		copy(u, unew)

		if it.Get()%10 == 9 {
			local2 := 0.0
			for _, v := range u {
				local2 += v * v
			}
			in := c3.Float64Bytes([]float64{local2})
			out := make([]byte, 8)
			if err := w.Allreduce(in, out, 1, c3.TypeFloat64, c3.OpSum); err != nil {
				return err
			}
			if r == 0 {
				fmt.Printf("iter %3d: |u| = %.6f\n", it.Get()+1, math.Sqrt(c3.BytesFloat64s(out)[0]))
			}
		}

		it.Add(1)
		if err := env.Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	res, err := c3.Run(c3.Config{
		Ranks:  ranks,
		App:    jacobi,
		Policy: c3.Policy{EveryNthPragma: 25},
		Failures: []c3.FailureSpec{
			{Rank: 1, AtPragma: 40},
			{Rank: 3, AtPragma: 30},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsurvived %d failure(s); %d attempts, final attempt %v\n",
		res.Attempts-1, res.Attempts, res.LastAttemptElapsed)
}
