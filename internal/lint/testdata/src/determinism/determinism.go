// Fixture for c3determinism: type-checked under the governed import path
// c3/internal/sched by the test harness. Every wall-clock read and every
// draw from the global rand source must be flagged; explicitly seeded
// generators and method calls on deterministic values must not.
package sched

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func tick() time.Time {
	return time.Now() // want `time\.Now breaks deterministic replay in sched; use the injected Clock`
}

// A function-value reference smuggles the wall clock past any call-site-only
// check; the analyzer works on uses, so this is still a finding.
func smuggle() func() time.Time {
	clock := time.Now // want `time\.Now breaks deterministic replay`
	return clock
}

func nap(ch chan int) {
	time.Sleep(time.Millisecond) // want `time\.Sleep breaks deterministic replay`
	select {
	case <-ch:
	case <-time.After(time.Millisecond): // want `time\.After breaks deterministic replay`
	}
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since breaks deterministic replay`
}

func jitter() int {
	return rand.Intn(10) // want `global rand\.Intn breaks deterministic replay`
}

func jitterV2() int {
	return randv2.IntN(10) // want `global rand\.IntN breaks deterministic replay`
}

// The sanctioned pattern: an explicitly seeded generator. rand.New and
// rand.NewSource are constructors, and Intn here is a method on the seeded
// *rand.Rand — none of it draws from the shared global source.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Methods on deterministic values (time.Time.Sub, Add) are fine: they are
// pure functions of their inputs.
func span(a, b time.Time) time.Duration {
	return b.Sub(a)
}

// The escape hatch: a justified allow directive suppresses the finding (the
// harness asserts res.Suppressed picks this up).
func injectionFallback() time.Time {
	return time.Now() //c3lint:allow determinism fixture: this IS the injection point
}
