package apps_test

import (
	"fmt"
	"math"
	"testing"
	"time"

	"c3/internal/apps"
	"c3/internal/ckpt"
	"c3/internal/cluster"
)

func runCfg(t *testing.T, cfg cluster.Config) *cluster.Result {
	t.Helper()
	type out struct {
		res *cluster.Result
		err error
	}
	ch := make(chan out, 1)
	go func() {
		r, e := cluster.Run(cfg)
		ch <- out{r, e}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("run failed: %v", o.err)
		}
		return o.res
	case <-time.After(120 * time.Second):
		t.Fatal("run timed out")
		return nil
	}
}

func checksums(t *testing.T, out *apps.Output, ranks int) []float64 {
	t.Helper()
	sums := make([]float64, ranks)
	for r := 0; r < ranks; r++ {
		v, ok := out.Checksum(r)
		if !ok {
			t.Fatalf("rank %d reported no checksum", r)
		}
		sums[r] = v
	}
	return sums
}

func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// TestKernelsDirectVsCheckpointed runs every kernel under the direct
// environment and under the protocol layer (no checkpoints taken) and
// demands identical results: the interposition must be semantically
// transparent.
func TestKernelsDirectVsCheckpointed(t *testing.T) {
	const ranks = 4
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			k, _ := apps.Lookup(name)
			p := k.Defaults(apps.ClassS)

			direct := apps.NewOutput()
			runCfg(t, cluster.Config{Ranks: ranks, Direct: true, App: k.App(p, direct)})

			wrapped := apps.NewOutput()
			runCfg(t, cluster.Config{Ranks: ranks, App: k.App(p, wrapped)})

			d := checksums(t, direct, ranks)
			w := checksums(t, wrapped, ranks)
			for r := 0; r < ranks; r++ {
				if !almostEqual(d[r], w[r]) {
					t.Errorf("rank %d: direct %v vs wrapped %v", r, d[r], w[r])
				}
			}
		})
	}
}

// TestKernelsCheckpointEveryIteration takes a checkpoint at every pragma
// and compares against the direct run: the protocol with constant
// checkpointing must still be transparent.
func TestKernelsCheckpointEveryIteration(t *testing.T) {
	const ranks = 4
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			k, _ := apps.Lookup(name)
			p := k.Defaults(apps.ClassS)

			direct := apps.NewOutput()
			runCfg(t, cluster.Config{Ranks: ranks, Direct: true, App: k.App(p, direct)})

			ck := apps.NewOutput()
			runCfg(t, cluster.Config{
				Ranks:  ranks,
				App:    k.App(p, ck),
				Policy: ckpt.Policy{EveryNthPragma: 1},
			})

			d := checksums(t, direct, ranks)
			c := checksums(t, ck, ranks)
			for r := 0; r < ranks; r++ {
				if !almostEqual(d[r], c[r]) {
					t.Errorf("rank %d: direct %v vs checkpointed %v", r, d[r], c[r])
				}
			}
		})
	}
}

// TestKernelsRecoverFromFailure injects a fail-stop failure mid-run and
// requires the recovered computation to produce the failure-free results.
// This is the end-to-end statement of the paper's correctness claim for
// every benchmark in its evaluation.
func TestKernelsRecoverFromFailure(t *testing.T) {
	const ranks = 4
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			k, _ := apps.Lookup(name)
			p := k.Defaults(apps.ClassS)

			ref := apps.NewOutput()
			runCfg(t, cluster.Config{Ranks: ranks, Direct: true, App: k.App(p, ref)})

			got := apps.NewOutput()
			res := runCfg(t, cluster.Config{
				Ranks:    ranks,
				App:      k.App(p, got),
				Policy:   ckpt.Policy{EveryNthPragma: 2},
				Failures: []cluster.FailureSpec{{Rank: 1, AtPragma: 3}},
			})
			if res.Attempts != 2 {
				t.Fatalf("attempts = %d, want 2", res.Attempts)
			}

			d := checksums(t, ref, ranks)
			g := checksums(t, got, ranks)
			for r := 0; r < ranks; r++ {
				if !almostEqual(d[r], g[r]) {
					t.Errorf("rank %d: failure-free %v vs recovered %v", r, d[r], g[r])
				}
			}
		})
	}
}

// TestKernelsRecoverUnderFrequentCheckpoints combines every-pragma
// checkpointing with two failures.
func TestKernelsRecoverUnderFrequentCheckpoints(t *testing.T) {
	const ranks = 4
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			k, _ := apps.Lookup(name)
			p := k.Defaults(apps.ClassS)

			ref := apps.NewOutput()
			runCfg(t, cluster.Config{Ranks: ranks, Direct: true, App: k.App(p, ref)})

			got := apps.NewOutput()
			runCfg(t, cluster.Config{
				Ranks:  ranks,
				App:    k.App(p, got),
				Policy: ckpt.Policy{EveryNthPragma: 1},
				Failures: []cluster.FailureSpec{
					{Rank: 2, AtPragma: 3},
					{Rank: 0, AtPragma: 4},
				},
			})

			d := checksums(t, ref, ranks)
			g := checksums(t, got, ranks)
			for r := 0; r < ranks; r++ {
				if !almostEqual(d[r], g[r]) {
					t.Errorf("rank %d: failure-free %v vs recovered %v", r, d[r], g[r])
				}
			}
		})
	}
}

// TestKernelsOddRankCounts ensures kernels handle non-power-of-two and
// single-rank worlds.
func TestKernelsOddRankCounts(t *testing.T) {
	for _, ranks := range []int{1, 3} {
		for _, name := range apps.Names() {
			name, ranks := name, ranks
			t.Run(fmt.Sprintf("%s/n=%d", name, ranks), func(t *testing.T) {
				k, _ := apps.Lookup(name)
				p := k.Defaults(apps.ClassS)
				out := apps.NewOutput()
				runCfg(t, cluster.Config{
					Ranks:  ranks,
					App:    k.App(p, out),
					Policy: ckpt.Policy{EveryNthPragma: 2},
				})
				checksums(t, out, ranks)
			})
		}
	}
}
