package bench

import (
	"testing"

	"c3/internal/apps"
)

func smokeOpts() Options {
	return Options{Class: apps.ClassS, Ranks: []int{2}, Repetitions: 1, Kernels: []string{"CG"}}
}

func TestAllTableGeneratorsSmoke(t *testing.T) {
	for id, gen := range Generators {
		id, gen := id, gen
		t.Run("table-"+id, func(t *testing.T) {
			opts := smokeOpts()
			if id == "1" {
				opts.Kernels = nil // table 1 needs its own kernel set
			}
			tab, err := gen(opts)
			if err != nil {
				t.Fatalf("table %s: %v", id, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("table %s: no rows", id)
			}
			if s := tab.Format(); len(s) == 0 {
				t.Fatal("empty format")
			}
		})
	}
}
