// Fixture for c3wirecount. decodeUnclamped reconstructs the historical
// pre-PR-3 bug verbatim: a length word read straight off the wire sizes a
// make(), so one corrupt frame becomes a multi-gigabyte allocation before
// any validation runs. The clamped variants model the post-PR-3 idiom,
// where wire.Reader.Count validates the count against the bytes actually
// remaining and hands back a clean value.
package wirecount

import "c3/internal/wire"

// decodeUnclamped is the historical bug shape (pre-PR-3 snapshot decode).
func decodeUnclamped(b []byte) []byte {
	r := wire.NewReader(b)
	n := int(r.U32())
	buf := make([]byte, n) // want `make\(\) sized by an unclamped wire read \(n\)`
	for i := range buf {
		buf[i] = r.U8()
	}
	return buf
}

// decodeClamped is the sanctioned idiom: Count is the sanitizer.
func decodeClamped(b []byte) []byte {
	r := wire.NewReader(b)
	n := r.Count(1)
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = r.U8()
	}
	return buf
}

// Taint flows through conversions and arithmetic, and an inline read used
// directly as the size is just as bad as one stashed in a local.
func inlineAndArithmetic(r *wire.Reader) ([]byte, []uint64) {
	direct := make([]byte, int(r.U32())) // want `make\(\) sized by an unclamped wire read`
	n := int(r.U64())
	padded := make([]uint64, (n+7)/8) // want `make\(\) sized by an unclamped wire read`
	return direct, padded
}

// A tainted bound on an appending loop is the same allocation in disguise.
func loopAppend(b []byte) []int64 {
	r := wire.NewReader(b)
	count := int(r.U64())
	var out []int64
	for i := 0; i < count; i++ { // want `append loop sized by an unclamped wire read \(count\)`
		out = append(out, r.I64())
	}
	return out
}

// Reassignment through the sanitizer cleans a previously tainted local.
func reassigned(b []byte) []byte {
	r := wire.NewReader(b)
	n := int(r.U32())
	n = r.Count(1)
	return make([]byte, n)
}

// Sizes with no wire provenance stay untouched.
func cleanSizes(k int) []byte {
	fixed := make([]byte, 64)
	sized := make([]byte, k)
	return append(fixed, sized...)
}
