// Package detect is the self-healing cluster's membership layer: a
// heartbeat failure detector plus an epoch-numbered recovery agreement,
// running on the long-lived replication mesh next to the distributed
// stable store.
//
// Each rank runs one Detector. It emits heartbeats to the ring predecessors
// that monitor it (piggybacking on any other traffic already flowing to
// them) and runs a phi-accrual Monitor over its ring successors. When a
// monitor's suspicion crosses the threshold the rank gossips the suspicion
// to the survivors; the coordinator — the lowest-ranked process not itself
// suspected — then drives a small two-phase agreement: it proposes
// (epoch+1, dead set) to every survivor, collects acknowledgments, and
// commits the transition. A committed epoch is the survivors' contract
// that the dead set is final for this recovery round: the runtime uses it
// to interrupt in-flight checkpoint commits, tear down the current MPI
// attempt, ask the respawner for replacement processes, and enter restore
// mode — all without an omniscient launcher.
//
// The protocol tolerates the failures that matter for fail-stop recovery:
// a suspected rank that is merely slow clears its suspicion the moment any
// message from it arrives (false-suspicion recovery); a coordinator that
// dies mid-agreement is itself suspected and the next-lowest survivor
// restarts the proposal with the union dead set; near-simultaneous deaths
// either merge into one proposal or commit as consecutive epochs. A
// replacement process rejoins by broadcasting hello: survivors mark the
// rank alive again, reset its monitor, and answer with the current
// (epoch, dead set) so the newcomer can adopt the world's state.
package detect

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"c3/internal/transport"
)

// Options configures a Detector.
type Options struct {
	// Self is the local rank; Ranks the world size.
	Self, Ranks int
	// Net is the detection plane (usually a transport.Demux plane sharing
	// the replication mesh).
	Net transport.Interconnect
	// HeartbeatInterval is the ping period (default 25ms).
	HeartbeatInterval time.Duration
	// PhiThreshold is the accrued suspicion level at which a peer is
	// declared suspect (default 5: the observed silence had probability
	// 1e-5 under the peer's arrival history).
	PhiThreshold float64
	// LeaseTimeout is the contact-lease horizon for the fencing rule: a
	// peer counts toward this rank's live view only while some message
	// from it arrived within the lease. The ring monitors cannot serve
	// here — a 2-rank minority monitors at most 3 distinct ranks, so it
	// could never prove the rest of the world unreachable. Instead every
	// rank sends low-rate lease pings to all peers outside its heartbeat
	// ring, and fencing is computed from actual receive evidence. Default
	// 10 heartbeat intervals.
	LeaseTimeout time.Duration
	// Clock substitutes a time source (tests); default time.Now.
	Clock func() time.Time
	// OnEpoch fires after each committed epoch transition with the agreed
	// epoch, the full current dead set, and the ranks newly declared dead.
	// It is called from a detector goroutine; receivers must not block for
	// long (hand off to a channel).
	OnEpoch func(epoch uint64, dead, newDead []int)
	// OnEvicted fires if a committed epoch declares this very rank dead
	// while it is alive (a false suspicion that won agreement).
	OnEvicted func(epoch uint64)
	// OnFence fires on fencing transitions: fenced=true when this rank can
	// no longer see a strict majority of the launch-time world (it is on
	// the minority side of a partition, or the world degraded past
	// quorum), fenced=false when majority contact returns. While fenced a
	// rank must refuse checkpoint commits and epoch advances — it could be
	// diverging from a majority that committed an epoch without it.
	OnFence func(fenced bool)
	// Logf, when non-nil, receives detector diagnostics.
	Logf func(format string, args ...any)
}

// Times reports the measured latency decomposition of the most recent
// committed epoch transition.
type Times struct {
	// SuspectAt is when the first suspicion of the transition was raised
	// locally (zero if this rank learned only through the commit).
	SuspectAt time.Time
	// AgreeAt is when the epoch commit was applied locally.
	AgreeAt time.Time
}

// proposal is the coordinator's in-flight two-phase agreement. It commits
// only once the coordinator's own vote plus the collected acks reach a
// strict majority of the launch-time world — a coordinator that cannot
// reach quorum (it sits on the minority side of a partition) stalls
// instead of committing, so two sides of a split can never fork the epoch
// sequence (the PBFT-style view-change discipline).
type proposal struct {
	epoch   uint64
	seq     uint64
	dead    []int        // full proposed dead set, sorted
	pending map[int]bool // participants that have not acked yet
	acked   map[int]bool // participants whose ack arrived
}

// Detector is one rank's failure-detection and membership endpoint.
type Detector struct {
	opts      Options
	self      int
	n         int
	net       transport.Interconnect
	interval  time.Duration
	threshold float64
	clock     func() time.Time

	mu          sync.Mutex
	epoch       uint64
	dead        map[int]bool
	suspected   map[int]time.Time // rank -> when first suspected
	monitors    map[int]*Monitor  // ring successors this rank watches
	lastSent    map[int]time.Time // piggyback: last outbound traffic per peer
	lastHeard   []time.Time       // contact lease: last inbound traffic per peer
	lease       time.Duration     // fencing contact-lease horizon
	prop        *proposal
	propSeq     uint64
	detections  uint64
	pendSuspect time.Time // earliest suspicion since the last commit
	times       Times
	fenced      bool // live contact < strict majority of the launch world
	closed      bool

	sendMu        sync.Mutex
	senders       map[int]chan payload
	sendersClosed bool

	done chan struct{}
	wg   sync.WaitGroup
}

// New creates the detector for Options.Self. Call Start to launch it.
func New(opts Options) (*Detector, error) {
	if opts.Ranks <= 0 || opts.Self < 0 || opts.Self >= opts.Ranks {
		return nil, fmt.Errorf("detect: rank %d of %d", opts.Self, opts.Ranks)
	}
	if opts.Net == nil {
		return nil, fmt.Errorf("detect: no interconnect")
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = 25 * time.Millisecond
	}
	if opts.PhiThreshold <= 0 {
		opts.PhiThreshold = 5
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.LeaseTimeout <= 0 {
		opts.LeaseTimeout = 10 * opts.HeartbeatInterval
	}
	d := &Detector{
		opts:      opts,
		self:      opts.Self,
		n:         opts.Ranks,
		net:       opts.Net,
		interval:  opts.HeartbeatInterval,
		threshold: opts.PhiThreshold,
		clock:     opts.Clock,
		epoch:     1,
		dead:      make(map[int]bool),
		suspected: make(map[int]time.Time),
		monitors:  make(map[int]*Monitor),
		lastSent:  make(map[int]time.Time),
		senders:   make(map[int]chan payload),
		done:      make(chan struct{}),
	}
	d.lease = opts.LeaseTimeout
	now := d.clock()
	for _, m := range ringSuccessors(d.self, d.n) {
		d.monitors[m] = newMonitor(d.interval, now)
	}
	// Startup grace: every peer begins with a fresh lease, so a world that
	// is still dialing does not fence itself at launch.
	d.lastHeard = make([]time.Time, d.n)
	for r := range d.lastHeard {
		d.lastHeard[r] = now
	}
	return d, nil
}

// ringSuccessors returns the +1/+2 ring successors of rank (the peers it
// monitors — the same neighborhood that replicates its checkpoints).
func ringSuccessors(rank, n int) []int {
	var out []int
	for d := 1; d <= 2 && d < n; d++ {
		out = append(out, (rank+d)%n)
	}
	return out
}

// ringPredecessors returns the -1/-2 ring predecessors (the peers that
// monitor this rank, hence the targets of its heartbeats).
func ringPredecessors(rank, n int) []int {
	var out []int
	for d := 1; d <= 2 && d < n; d++ {
		out = append(out, (rank-d+2*n)%n)
	}
	return out
}

// Start launches the heartbeat/evaluation ticker and the receive loop.
func (d *Detector) Start() {
	d.wg.Add(2)
	go d.tickLoop()
	go d.recvLoop()
}

// Close stops the detector: the ticker exits, the local receive port is
// killed, and the per-peer send workers drain. The shared mesh is left
// untouched (the demux owns it).
func (d *Detector) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	close(d.done)
	d.net.Kill(d.self)
	d.wg.Wait()
	d.sendMu.Lock()
	d.sendersClosed = true
	for _, ch := range d.senders {
		close(ch)
	}
	d.sendMu.Unlock()
}

// Epoch returns the current committed epoch (1 before any failure).
func (d *Detector) Epoch() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epoch
}

// Dead returns the current dead set, sorted.
func (d *Detector) Dead() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return setToSlice(d.dead)
}

// Detections returns how many rank deaths have been confirmed by committed
// epochs so far.
func (d *Detector) Detections() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.detections
}

// Times returns the latency decomposition of the latest epoch transition.
func (d *Detector) Times() Times {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.times
}

// Fenced reports whether this rank is fenced: the peers with a fresh
// contact lease (plus itself) no longer form a strict majority of the
// launch world, so it must assume a majority partition may be committing
// epochs without it.
func (d *Detector) Fenced() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fenced
}

// quorum is the number of votes an epoch commit needs: a strict majority
// of the launch-time world (not of the current survivors — otherwise two
// partition sides could each reach "majority of who I can see").
func (d *Detector) quorum() int {
	return d.n/2 + 1
}

// refenceLocked recomputes the fencing state from the contact leases and
// returns the OnFence callback to fire (nil if no transition). A peer
// counts as reachable only on positive receive evidence within the lease —
// suspicion alone cannot drive fencing, because the ring monitors of a
// small minority never cover the whole far side of a split. Callers hold
// d.mu and must invoke the returned func, if any, after releasing it.
func (d *Detector) refenceLocked() func() {
	now := d.clock()
	live := 1 // self
	for r := 0; r < d.n; r++ {
		if r == d.self || d.dead[r] {
			continue
		}
		if now.Sub(d.lastHeard[r]) <= d.lease {
			live++
		}
	}
	fenced := live < d.quorum()
	if fenced == d.fenced {
		return nil
	}
	d.fenced = fenced
	cb := d.opts.OnFence
	return func() {
		d.logf("rank %d: fencing -> %v (live view %d of %d, quorum %d)",
			d.self, fenced, live, d.n, d.quorum())
		if cb != nil {
			cb(fenced)
		}
	}
}

// Suspected returns the currently suspected (not yet agreed dead) ranks.
func (d *Detector) Suspected() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]int, 0, len(d.suspected))
	for r := range d.suspected {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// ObserveRecv records liveness evidence: a message from peer `from` arrived
// on any plane of the shared mesh. The demux calls this for every inbound
// message, so replication traffic doubles as heartbeats.
func (d *Detector) ObserveRecv(from int) {
	if from == d.self || from < 0 || from >= d.n {
		return
	}
	now := d.clock()
	d.mu.Lock()
	d.lastHeard[from] = now
	if m := d.monitors[from]; m != nil {
		m.Observe(now)
	}
	_, wasSuspected := d.suspected[from]
	if wasSuspected && !d.dead[from] {
		// The peer spoke: the suspicion was false. Clearing it here (and
		// re-observing) makes the coordinator rebuild any in-flight proposal
		// without the recovered rank.
		delete(d.suspected, from)
	}
	fence := d.refenceLocked()
	d.mu.Unlock()
	if fence != nil {
		fence()
	}
	if wasSuspected {
		d.logf("rank %d: false suspicion of rank %d cleared by traffic", d.self, from)
	}
}

// ObserveSend records outbound traffic toward a peer, letting the emitter
// skip the next explicit ping (heartbeat piggybacking).
func (d *Detector) ObserveSend(to int) {
	if to == d.self {
		return
	}
	now := d.clock()
	d.mu.Lock()
	d.lastSent[to] = now
	d.mu.Unlock()
}

// Join is called by a freshly respawned replacement process: it broadcasts
// hello until a survivor's state response raises the local epoch past the
// boot value, then returns the adopted epoch. Survivors react to the hello
// by marking this rank alive again and resetting its monitor.
func (d *Detector) Join(timeout time.Duration) (uint64, error) {
	deadline := d.clock().Add(timeout)
	for {
		if e := d.Epoch(); e > 1 {
			return e, nil
		}
		hello := encodeHello()
		for q := 0; q < d.n; q++ {
			if q != d.self {
				d.send(q, hello)
			}
		}
		if d.clock().After(deadline) {
			return 0, fmt.Errorf("detect: rank %d join timed out after %v (no survivor answered)", d.self, timeout)
		}
		select {
		case <-d.done:
			return 0, fmt.Errorf("detect: closed during join")
		case <-time.After(d.interval):
		}
	}
}

func (d *Detector) logf(format string, args ...any) {
	if d.opts.Logf != nil {
		d.opts.Logf(format, args...)
	}
}

// --- Outbound path ---

// send enqueues a payload toward a peer on its dedicated worker, so a dead
// peer's connection stalls never delay heartbeats to live peers.
func (d *Detector) send(to int, p payload) {
	d.sendMu.Lock()
	if d.sendersClosed {
		d.sendMu.Unlock()
		return
	}
	ch := d.senders[to]
	if ch == nil {
		ch = make(chan payload, 64)
		d.senders[to] = ch
		go d.sendWorker(to, ch)
	}
	d.sendMu.Unlock()
	select {
	case ch <- p:
	default: // worker stalled on a dead peer: drop, heartbeats are periodic
	}
}

func (d *Detector) sendWorker(to int, ch chan payload) {
	for p := range ch {
		_ = d.net.Send(transport.Message{From: d.self, To: to, Class: transport.Control, Payload: p})
	}
}

// --- Ticker: heartbeats, monitor evaluation, proposal driving ---

func (d *Detector) tickLoop() {
	defer d.wg.Done()
	ticker := time.NewTicker(d.interval)
	defer ticker.Stop()
	for {
		select {
		case <-d.done:
			return
		case <-ticker.C:
			d.tick()
		}
	}
}

func (d *Detector) tick() {
	now := d.clock()

	d.mu.Lock()
	epoch := d.epoch
	// Heartbeats to the predecessors that monitor this rank (every
	// interval), and low-rate lease pings to every other live peer so the
	// whole world keeps receiving positive contact evidence for the fencing
	// rule. Both are skipped when other traffic already reached the peer
	// within the window (piggybacking).
	isPred := make(map[int]bool, 2)
	for _, t := range ringPredecessors(d.self, d.n) {
		isPred[t] = true
	}
	var pings []int
	for t := 0; t < d.n; t++ {
		if t == d.self || d.dead[t] {
			continue
		}
		if _, susp := d.suspected[t]; susp && !d.fenced {
			// A fenced rank keeps pinging the peers it suspects: they are
			// probably on the majority side of a partition, and these probes
			// are how it discovers the heal (the majority, which declared us
			// dead, no longer sends anything our way — the probe's epoch
			// reconciliation pulls their newer state over).
			continue
		}
		window := d.interval
		if !isPred[t] {
			window = d.lease / 3 // lease pings: a few per lease horizon
		}
		if last, ok := d.lastSent[t]; ok && now.Sub(last) < window {
			continue // piggybacked: recent traffic already proved liveness
		}
		d.lastSent[t] = now
		pings = append(pings, t)
	}

	// Monitor evaluation: accrued suspicion past the threshold raises a
	// suspicion and gossips it.
	var newSuspects []int
	for m, mon := range d.monitors {
		if d.dead[m] {
			continue
		}
		if _, already := d.suspected[m]; already {
			continue
		}
		if mon.Phi(now) >= d.threshold {
			d.suspectLocked(m, now)
			newSuspects = append(newSuspects, m)
		}
	}
	// Lease evaluation for the ranks outside this rank's monitor set. The
	// ±1/±2 ring cannot see into a contiguous far-side group — its interior
	// ranks are heartbeat-monitored only by their own severed neighbors —
	// but the contact lease covers every pair: a live peer keeps lease-
	// pinging us, so a peer silent past the full lease is as suspect as a
	// monitored one crossing the phi threshold. A false positive clears the
	// same way monitor suspicions do (ObserveRecv on the peer's next ping).
	var leaseSuspects []int
	for r := 0; r < d.n; r++ {
		if r == d.self || d.dead[r] || d.monitors[r] != nil {
			continue
		}
		if _, already := d.suspected[r]; already {
			continue
		}
		if now.Sub(d.lastHeard[r]) > d.lease {
			d.suspectLocked(r, now)
			leaseSuspects = append(leaseSuspects, r)
		}
	}
	// Gossip every outstanding suspicion, not just the fresh ones: the send
	// path is lossy (full worker queue, redial backoff), and the would-be
	// coordinator may not monitor the victim itself — a one-shot gossip that
	// gets dropped would stall recovery forever. Suspicion windows are
	// short, so the per-tick retransmission is a handful of tiny frames.
	gossip := make([]int, 0, len(d.suspected))
	for s := range d.suspected {
		gossip = append(gossip, s)
	}
	sort.Ints(gossip)
	gossipTargets := d.liveExceptLocked(gossip)
	fence := d.refenceLocked()
	d.mu.Unlock()
	if fence != nil {
		fence()
	}

	ping := encodePing(epoch)
	for _, t := range pings {
		d.send(t, ping)
	}
	for _, s := range newSuspects {
		d.logf("rank %d: suspects rank %d dead (phi >= %.1f)", d.self, s, d.threshold)
	}
	for _, s := range leaseSuspects {
		d.logf("rank %d: suspects rank %d dead (contact lease expired)", d.self, s)
	}
	for _, s := range gossip {
		g := encodeSuspect(epoch, s)
		for _, t := range gossipTargets {
			d.send(t, g)
		}
	}

	d.driveProposal()
}

// suspectLocked records a (new) suspicion of rank r at time now. Callers
// hold d.mu.
func (d *Detector) suspectLocked(r int, now time.Time) {
	if _, ok := d.suspected[r]; ok {
		return
	}
	d.suspected[r] = now
	if d.pendSuspect.IsZero() {
		d.pendSuspect = now
	}
}

// liveExceptLocked returns every rank that is not self, not dead, not
// suspected, and not in skip. Callers hold d.mu.
func (d *Detector) liveExceptLocked(skip []int) []int {
	skipSet := make(map[int]bool, len(skip))
	for _, s := range skip {
		skipSet[s] = true
	}
	var out []int
	for r := 0; r < d.n; r++ {
		if r == d.self || d.dead[r] || skipSet[r] {
			continue
		}
		if _, susp := d.suspected[r]; susp {
			continue
		}
		out = append(out, r)
	}
	return out
}

// driveProposal runs the coordinator's side of the agreement: start or
// rebuild the proposal when the candidate dead set changes, retransmit to
// laggards, and commit once the votes (the coordinator's own plus the
// acks) reach a strict majority of the launch world. Laggards that have
// not acked by then learn the result from the commit broadcast or a later
// state exchange.
func (d *Detector) driveProposal() {
	d.mu.Lock()
	if len(d.suspected) == 0 {
		d.prop = nil
		d.mu.Unlock()
		return
	}
	cand := make(map[int]bool, len(d.dead)+len(d.suspected))
	for r := range d.dead {
		cand[r] = true
	}
	for r := range d.suspected {
		cand[r] = true
	}
	// Coordinator: the lowest rank that is neither dead nor suspected.
	coord := -1
	for r := 0; r < d.n; r++ {
		if !cand[r] {
			coord = r
			break
		}
	}
	if coord != d.self {
		d.prop = nil // not ours to drive (anymore)
		d.mu.Unlock()
		return
	}
	deadSet := setToSlice(cand)
	if d.prop == nil || !equalInts(d.prop.dead, deadSet) {
		d.propSeq++
		pending := make(map[int]bool)
		for r := 0; r < d.n; r++ {
			if r != d.self && !cand[r] {
				pending[r] = true
			}
		}
		d.prop = &proposal{epoch: d.epoch + 1, seq: d.propSeq, dead: deadSet,
			pending: pending, acked: make(map[int]bool)}
		d.logf("rank %d: proposing epoch %d dead=%v to %d survivors (seq %d)",
			d.self, d.prop.epoch, deadSet, len(pending), d.propSeq)
	}
	p := d.prop
	if 1+len(p.acked) >= d.quorum() {
		d.mu.Unlock()
		d.commitProposal(p)
		return
	}
	if len(p.pending) == 0 {
		// Everyone this coordinator can reach has acked, yet the votes fall
		// short of a strict majority of the launch world: it is on the
		// minority side of a partition. Stall — committing here would fork
		// the epoch sequence against a majority-side commit.
		d.mu.Unlock()
		return
	}
	msg := encodePropose(p.epoch, p.seq, p.dead)
	targets := make([]int, 0, len(p.pending))
	for r := range p.pending {
		targets = append(targets, r)
	}
	d.mu.Unlock()
	for _, t := range targets {
		d.send(t, msg)
	}
}

// commitProposal finalizes an agreement: broadcast the commit and apply it
// locally.
func (d *Detector) commitProposal(p *proposal) {
	msg := encodeCommit(p.epoch, p.dead)
	for r := 0; r < d.n; r++ {
		alive := true
		for _, dr := range p.dead {
			if dr == r {
				alive = false
				break
			}
		}
		if alive && r != d.self {
			d.send(r, msg)
		}
	}
	d.applyEpoch(p.epoch, p.dead, "agreement")
}

// applyEpoch installs a committed epoch transition (from our own agreement,
// a peer's commit, or a state snapshot) and fires OnEpoch.
func (d *Detector) applyEpoch(epoch uint64, dead []int, via string) {
	d.mu.Lock()
	if epoch <= d.epoch {
		d.mu.Unlock()
		return
	}
	var newDead []int
	selfDead := false
	newSet := make(map[int]bool, len(dead))
	for _, r := range dead {
		if r == d.self {
			selfDead = true
		}
		newSet[r] = true
		if !d.dead[r] {
			newDead = append(newDead, r)
		}
	}
	d.epoch = epoch
	d.dead = newSet
	d.detections += uint64(len(newDead))
	for r := range d.suspected {
		if newSet[r] {
			delete(d.suspected, r)
		}
	}
	for r := range newSet {
		if m := d.monitors[r]; m != nil {
			m.Reset(d.clock()) // suspended while dead; fresh history on rejoin
		}
	}
	d.prop = nil
	d.times = Times{SuspectAt: d.pendSuspect, AgreeAt: d.clock()}
	d.pendSuspect = time.Time{}
	sort.Ints(newDead)
	allDead := setToSlice(newSet)
	onEpoch, onEvicted := d.opts.OnEpoch, d.opts.OnEvicted
	fence := d.refenceLocked()
	d.mu.Unlock()
	if fence != nil {
		fence() // fencing state first, so epoch callbacks see it settled
	}

	d.logf("rank %d: epoch %d committed via %s, dead=%v (new %v)", d.self, epoch, via, allDead, newDead)
	if selfDead {
		d.logf("rank %d: DECLARED DEAD by epoch %d while alive", d.self, epoch)
		if onEvicted != nil {
			onEvicted(epoch)
		}
		return
	}
	if onEpoch != nil {
		onEpoch(epoch, allDead, newDead)
	}
}

// --- Receive path ---

func (d *Detector) recvLoop() {
	defer d.wg.Done()
	ep := d.net.Endpoint(d.self)
	for {
		msg, err := ep.Recv()
		if err != nil {
			return
		}
		data, ok := msg.Payload.(payload)
		if !ok || len(data) == 0 || msg.From == d.self {
			continue
		}
		// Any detector message is itself liveness evidence. (When the mesh
		// runs under a demux, the demux observer already recorded it; a
		// second observation is harmless — the monitor mean is floored at
		// the heartbeat interval.)
		d.ObserveRecv(msg.From)
		d.handle(msg.From, data)
	}
}

func (d *Detector) handle(from int, data payload) {
	switch data[0] {
	case msgPing:
		epoch, err := decodePing(data)
		if err != nil {
			return
		}
		d.reconcileEpoch(from, epoch)
	case msgSuspect:
		epoch, target, err := decodeSuspect(data)
		if err != nil {
			return
		}
		if target == d.self {
			// Protest: we are alive. The ping clears the suspicion at the
			// gossiper via ObserveRecv.
			d.send(from, encodePing(d.Epoch()))
			return
		}
		now := d.clock()
		d.mu.Lock()
		if epoch < d.epoch {
			// Stale gossip: the suspicion predates an epoch we have already
			// committed. A rank cleared by that newer epoch (rejoin, or an
			// exoneration folded into the commit) must not be re-suspected
			// by a reordered old frame — drop it and re-seed the gossiper.
			cur, deadNow := d.epoch, setToSlice(d.dead)
			d.mu.Unlock()
			d.send(from, encodeState(cur, deadNow))
			return
		}
		if !d.dead[target] {
			d.suspectLocked(target, now)
		}
		fence := d.refenceLocked()
		d.mu.Unlock()
		if fence != nil {
			fence()
		}
		d.driveProposal()
	case msgPropose:
		epoch, seq, dead, err := decodePropose(data)
		if err != nil {
			return
		}
		d.handlePropose(from, epoch, seq, dead)
	case msgAck:
		epoch, seq, err := decodeAck(data)
		if err != nil {
			return
		}
		d.handleAck(from, epoch, seq)
	case msgCommit:
		epoch, dead, err := decodeCommit(data)
		if err != nil {
			return
		}
		d.applyEpoch(epoch, dead, fmt.Sprintf("commit from rank %d", from))
	case msgHello:
		d.handleHello(from)
	case msgState:
		epoch, dead, err := decodeState(data)
		if err != nil {
			return
		}
		// Adopt a newer membership snapshot (join, or catch-up after a
		// missed commit).
		selfDead := false
		filtered := dead[:0:0]
		for _, r := range dead {
			if r == d.self {
				selfDead = true
				continue
			}
			filtered = append(filtered, r)
		}
		wasBehind := epoch > d.Epoch()
		d.applyEpoch(epoch, filtered, fmt.Sprintf("state from rank %d", from))
		if selfDead && wasBehind {
			// The snapshot declared this very rank dead: a majority
			// committed an epoch while we were fenced off. We adopted the
			// majority's view (minus ourselves); now broadcast hello so the
			// survivors mark us alive again and reset our monitors — the
			// heal half of the fencing state machine.
			hello := encodeHello()
			for q := 0; q < d.n; q++ {
				if q != d.self {
					d.send(q, hello)
				}
			}
			d.logf("rank %d: rejoining — epoch %d had declared us dead", d.self, epoch)
		}
	default:
		d.logf("rank %d: unknown detect message %s from rank %d", d.self, kindName(data[0]), from)
	}
}

// reconcileEpoch compares a peer's advertised epoch with ours and heals a
// divergence: a lagging peer gets our state, and if we lag we ask for
// theirs.
func (d *Detector) reconcileEpoch(from int, peerEpoch uint64) {
	d.mu.Lock()
	cur := d.epoch
	dead := setToSlice(d.dead)
	d.mu.Unlock()
	switch {
	case peerEpoch < cur:
		d.send(from, encodeState(cur, dead))
	case peerEpoch > cur:
		d.send(from, encodeHello())
	}
}

func (d *Detector) handlePropose(from int, epoch, seq uint64, dead []int) {
	for _, r := range dead {
		if r == d.self {
			// Proposed dead while alive: protest instead of acking; the
			// proposer clears the suspicion when the ping arrives.
			d.send(from, encodePing(d.Epoch()))
			return
		}
	}
	d.mu.Lock()
	cur := d.epoch
	if epoch != cur+1 {
		deadNow := setToSlice(d.dead)
		d.mu.Unlock()
		if epoch <= cur {
			d.send(from, encodeState(cur, deadNow)) // proposer lags a commit
		} else {
			d.send(from, encodeHello()) // we lag; fetch the peer's state
		}
		return
	}
	// Adopt the proposal's suspicions so our own coordinator logic (should
	// the proposer die mid-agreement) starts from the same dead set.
	now := d.clock()
	for _, r := range dead {
		if !d.dead[r] {
			d.suspectLocked(r, now)
		}
	}
	fence := d.refenceLocked()
	d.mu.Unlock()
	if fence != nil {
		fence()
	}
	d.send(from, encodeAck(epoch, seq))
}

func (d *Detector) handleAck(from int, epoch, seq uint64) {
	d.mu.Lock()
	p := d.prop
	if p == nil || p.epoch != epoch || p.seq != seq || !p.pending[from] {
		d.mu.Unlock()
		return
	}
	delete(p.pending, from)
	p.acked[from] = true
	ready := 1+len(p.acked) >= d.quorum()
	d.mu.Unlock()
	if ready {
		d.commitProposal(p)
	}
}

// handleHello marks a (re)joining rank alive and answers with the current
// membership snapshot.
func (d *Detector) handleHello(from int) {
	now := d.clock()
	d.mu.Lock()
	if d.dead[from] {
		delete(d.dead, from)
		d.logf("rank %d: rank %d rejoined (hello)", d.self, from)
	}
	delete(d.suspected, from)
	if m := d.monitors[from]; m != nil {
		m.Reset(now)
	}
	epoch := d.epoch
	dead := setToSlice(d.dead)
	fence := d.refenceLocked()
	d.mu.Unlock()
	if fence != nil {
		fence()
	}
	d.send(from, encodeState(epoch, dead))
}

// --- Helpers ---

func setToSlice(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
