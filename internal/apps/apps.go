// Package apps contains the benchmark kernels used by the paper's
// evaluation: scaled-down but structurally faithful Go versions of the NAS
// Parallel Benchmarks the paper measures (CG, LU, SP, MG, EP, IS, FT), the
// SMG2000 semicoarsening multigrid benchmark from the ASCI Purple suite,
// and the HPL high-performance Linpack benchmark.
//
// Each kernel reproduces its original's communication pattern — the
// property that determines the protocol overhead the paper's Tables 2–5
// measure — and its relative state footprint, which determines checkpoint
// sizes (Tables 1, 4, 5). Kernels are written against the cluster.Env
// interface, so the identical code runs "Original" (direct MPI) and "C3"
// (through the protocol layer); every kernel registers all of its state and
// resumes from restored loop counters, making it self-checkpointing and
// self-restarting in the paper's sense.
//
// The paper's checkpoint-location notes (Section 6.3) are mirrored: CG, LU,
// SP and HPL place one pragma at the bottom (or top) of the main iteration
// loop; MG checkpoints at the V-cycle boundary and is the only kernel with
// a barrier in its computation; SMG places pragmas both inside and outside
// its nested solve loops.
package apps

import (
	"fmt"
	"sync"

	"c3/internal/cluster"
)

// Class selects a problem size, loosely mirroring NAS class names.
type Class string

// Problem classes: S is for unit tests, W for quick benchmarks, A for
// longer benchmark runs.
const (
	ClassS Class = "S"
	ClassW Class = "W"
	ClassA Class = "A"
)

// Params sizes a kernel run.
type Params struct {
	Class Class
	// N is the global problem size (meaning is kernel-specific); 0 means
	// use the class default.
	N int
	// Iters is the number of main-loop iterations; 0 means class default.
	Iters int
}

// Output collects per-rank results across a run (attempt-safe: later
// attempts overwrite).
type Output struct {
	mu        sync.Mutex
	checksums map[int]float64
}

// NewOutput returns an empty Output.
func NewOutput() *Output {
	return &Output{checksums: make(map[int]float64)}
}

// Report records rank r's final checksum.
func (o *Output) Report(r int, sum float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.checksums[r] = sum
}

// Checksum returns rank r's recorded checksum.
func (o *Output) Checksum(r int) (float64, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	v, ok := o.checksums[r]
	return v, ok
}

// Combined folds all rank checksums into one value.
func (o *Output) Combined() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	sum := 0.0
	for r := 0; r < len(o.checksums); r++ {
		sum = sum*1.000000119 + o.checksums[r]
	}
	return sum
}

// Kernel is one benchmark program.
type Kernel struct {
	// Name is the benchmark's short name (CG, LU, ...).
	Name string
	// Description summarizes the communication pattern.
	Description string
	// Defaults returns the sized parameters for a class.
	Defaults func(c Class) Params
	// App builds the per-rank application function.
	App func(p Params, out *Output) func(cluster.Env) error
}

// kernels is the registry, populated by each kernel file's init.
var kernels = map[string]*Kernel{}

// Register adds a kernel to the registry; it panics on duplicates.
func Register(k *Kernel) {
	if _, dup := kernels[k.Name]; dup {
		panic(fmt.Sprintf("apps: duplicate kernel %q", k.Name))
	}
	kernels[k.Name] = k
}

// Lookup returns a kernel by name.
func Lookup(name string) (*Kernel, bool) {
	k, ok := kernels[name]
	return k, ok
}

// Names returns the registered kernel names in a fixed presentation order.
func Names() []string {
	order := []string{"CG", "LU", "SP", "MG", "EP", "IS", "FT", "SMG2000", "HPL"}
	var out []string
	for _, n := range order {
		if _, ok := kernels[n]; ok {
			out = append(out, n)
		}
	}
	for n := range kernels {
		found := false
		for _, o := range out {
			if o == n {
				found = true
				break
			}
		}
		if !found {
			out = append(out, n)
		}
	}
	return out
}

// sized picks p.N / p.Iters with class defaults.
func sized(p Params, defN, defIters map[Class]int) (n, iters int) {
	n, iters = p.N, p.Iters
	if n == 0 {
		n = defN[p.Class]
		if n == 0 {
			n = defN[ClassS]
		}
	}
	if iters == 0 {
		iters = defIters[p.Class]
		if iters == 0 {
			iters = defIters[ClassS]
		}
	}
	return n, iters
}

// blockRange splits n items over size ranks and returns rank r's [lo, hi).
func blockRange(n, size, r int) (lo, hi int) {
	per := n / size
	rem := n % size
	lo = r*per + min(r, rem)
	hi = lo + per
	if r < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
