package stable

import "time"

// DelayedStore wraps a Store and charges an artificial cost to every write
// operation, emulating slower stable storage (an NFS-mounted or parallel
// filesystem, the configurations the paper's Section 6.4 worries about)
// independently of how fast the machine's local disk happens to be. Reads
// are undelayed: recovery cost experiments measure the real store.
//
// The async-commit experiments use it to make the blocking-vs-asynchronous
// comparison deterministic: a blocking commit pays the write delay on the
// application's critical path, the async pipeline pays it on the background
// committer.
type DelayedStore struct {
	inner     Store
	perOp     time.Duration
	bandwidth float64 // bytes/second; <= 0 means infinite
}

// NewDelayedStore wraps inner, charging perOp on every WriteSection and
// Commit plus a per-byte cost derived from bandwidth (bytes/second).
func NewDelayedStore(inner Store, perOp time.Duration, bandwidth float64) *DelayedStore {
	return &DelayedStore{inner: inner, perOp: perOp, bandwidth: bandwidth}
}

func (s *DelayedStore) charge(bytes int) {
	d := s.perOp
	if s.bandwidth > 0 {
		d += time.Duration(float64(bytes) / s.bandwidth * float64(time.Second))
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// Begin implements Store.
func (s *DelayedStore) Begin(rank, version int) (Checkpoint, error) {
	ck, err := s.inner.Begin(rank, version)
	if err != nil {
		return nil, err
	}
	return &delayedCkpt{store: s, inner: ck}, nil
}

// LastCommitted implements Store.
func (s *DelayedStore) LastCommitted(rank int) (int, bool, error) {
	return s.inner.LastCommitted(rank)
}

// Open implements Store.
func (s *DelayedStore) Open(rank, version int) (Snapshot, error) {
	return s.inner.Open(rank, version)
}

// Retire implements Store.
func (s *DelayedStore) Retire(rank, version int) error {
	return s.inner.Retire(rank, version)
}

// Truncate implements Store.
func (s *DelayedStore) Truncate(rank, version int) error {
	return s.inner.Truncate(rank, version)
}

// FailNode forwards to the inner store when it co-locates data with nodes.
func (s *DelayedStore) FailNode(rank int) {
	if nf, ok := s.inner.(NodeFailer); ok {
		nf.FailNode(rank)
	}
}

type delayedCkpt struct {
	store *DelayedStore
	inner Checkpoint
}

func (c *delayedCkpt) WriteSection(name string, data []byte) error {
	c.store.charge(len(data))
	return c.inner.WriteSection(name, data)
}

func (c *delayedCkpt) Commit() error {
	c.store.charge(0)
	return c.inner.Commit()
}

func (c *delayedCkpt) Abort() error { return c.inner.Abort() }
