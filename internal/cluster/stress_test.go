package cluster_test

import (
	"sync"
	"testing"

	"c3/internal/ckpt"
	"c3/internal/cluster"
	"c3/internal/mpi"
)

// stressApp is a deterministic pseudo-random communication workload: every
// iteration each rank exchanges payloads with two neighbors, folds received
// data into a running checksum, and periodically participates in an
// Allreduce; pragmas sit at the iteration boundary. All state that matters —
// iteration counter, checksum, RNG state — is registered, so recovery must
// reproduce the failure-free checksums exactly.
func stressApp(iters, ranks int, sums *sync.Map) func(cluster.Env) error {
	return func(env cluster.Env) error {
		st := env.State()
		it := st.Int("it")
		sum := st.Int("sum")
		rng := st.Int("rng")
		if rng.Get() == 0 {
			rng.Set(1000003*env.Rank() + 17)
		}
		if _, err := env.Restore(); err != nil {
			return err
		}
		w := env.World()
		r, n := env.Rank(), env.Size()
		next := func() int {
			v := rng.Get()
			v = (v*1103515245 + 12345) & 0x7fffffff
			rng.Set(v)
			return v
		}
		for it.Get() < iters {
			right := (r + 1) % n
			left := (r - 1 + n) % n
			right2 := (r + 2) % n
			left2 := (r - 2 + 2*n) % n
			size1 := 1 + next()%64
			size2 := 1 + next()%16
			out1 := make([]byte, size1)
			out2 := make([]byte, size2)
			for i := range out1 {
				out1[i] = byte(next())
			}
			for i := range out2 {
				out2[i] = byte(next())
			}
			in1 := make([]byte, 64)
			in2 := make([]byte, 16)
			// Post the receives, send, then complete: messages routinely
			// straddle recovery lines because pragma timing differs by rank.
			rid1, err := w.Irecv(in1, 64, mpi.TypeByte, left, 11)
			if err != nil {
				return err
			}
			rid2, err := w.Irecv(in2, 16, mpi.TypeByte, left2, 12)
			if err != nil {
				return err
			}
			if err := w.SendBytes(out1, right, 11); err != nil {
				return err
			}
			if err := w.SendBytes(out2, right2, 12); err != nil {
				return err
			}
			st1, err := w.Wait(rid1)
			if err != nil {
				return err
			}
			st2, err := w.Wait(rid2)
			if err != nil {
				return err
			}
			acc := sum.Get()
			for i := 0; i < st1.Bytes; i++ {
				acc = acc*31 + int(in1[i])
			}
			for i := 0; i < st2.Bytes; i++ {
				acc = acc*37 + int(in2[i])
			}
			sum.Set(acc & 0xffffffff)

			if it.Get()%3 == 2 {
				in := mpi.Int64Bytes([]int64{int64(sum.Get())})
				out := make([]byte, 8)
				if err := w.Allreduce(in, out, 1, mpi.TypeInt64, mpi.OpBXor); err != nil {
					return err
				}
				sum.Set(int(mpi.BytesInt64s(out)[0]) & 0xffffffff)
			}
			it.Add(1)
			if err := env.Checkpoint(); err != nil {
				return err
			}
		}
		sums.Store(r, sum.Get())
		return nil
	}
}

func TestStressRandomScheduleWithFailures(t *testing.T) {
	const ranks = 5
	const iters = 12
	// Reference: failure-free run.
	var ref sync.Map
	refCfg := cluster.Config{
		Ranks: ranks,
		App:   stressApp(iters, ranks, &ref),
	}
	run(t, refCfg)

	for _, tc := range []struct {
		name     string
		failures []cluster.FailureSpec
		policy   int
	}{
		{"one-failure-mid", []cluster.FailureSpec{{Rank: 2, AtPragma: 7}}, 4},
		{"one-failure-early", []cluster.FailureSpec{{Rank: 0, AtPragma: 2}}, 3},
		{"two-failures", []cluster.FailureSpec{{Rank: 1, AtPragma: 5}, {Rank: 3, AtPragma: 4}}, 2},
		{"failure-every-rank", []cluster.FailureSpec{
			{Rank: 0, AtPragma: 3}, {Rank: 1, AtPragma: 4}, {Rank: 2, AtPragma: 5},
			{Rank: 3, AtPragma: 9}, {Rank: 4, AtPragma: 11},
		}, 3},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var got sync.Map
			cfg := cluster.Config{
				Ranks:    ranks,
				App:      stressApp(iters, ranks, &got),
				Failures: tc.failures,
				Policy:   ckpt.Policy{EveryNthPragma: tc.policy},
			}
			res := run(t, cfg)
			// Later failures may never fire when recovery shortens an
			// attempt below the scheduled pragma count, so the attempt
			// count is bounded, not exact.
			if res.Attempts < 2 || res.Attempts > len(tc.failures)+1 {
				t.Fatalf("attempts = %d, want 2..%d", res.Attempts, len(tc.failures)+1)
			}
			for r := 0; r < ranks; r++ {
				want, _ := ref.Load(r)
				gotv, ok := got.Load(r)
				if !ok {
					t.Fatalf("rank %d has no result", r)
				}
				if want != gotv {
					t.Errorf("rank %d checksum diverged: failure-free %v, recovered %v", r, want, gotv)
				}
			}
		})
	}
}
