package stable

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"c3/internal/member"
	"c3/internal/trace"
	"c3/internal/transport"
)

// DistStore is the multi-process form of ReplicatedStore: one instance per
// OS process, holding exactly one node's memory (its own checkpoints plus
// the fragments and commit markers it replicates for its -1/-2 ring
// predecessors). Instances communicate over a transport.Interconnect —
// a tcp.Mesh in real deployments, an in-memory Network in tests.
//
// The write path speaks exactly ReplicatedStore's wire protocol: at commit
// the blob's fragments are shipped to the +1/+2 ring neighbors followed by
// a commit marker on the same FIFO pair, and the commit blocks until every
// neighbor acknowledged (or a timeout excuses a dead one). The read path,
// which in ReplicatedStore inspects all nodes' memory directly, becomes a
// query protocol: a restarted process with empty memory asks its peers
// which committed versions they hold for it and fetches the fragments, so
// diskless recovery works across real process boundaries — a rank that was
// SIGKILLed reassembles its last committed line entirely over the wire.
//
// Failure model: a process that dies takes its node memory with it — no
// FailNode call is needed, real death *is* the wipe. A committed line is
// lost only if the owner and both replica holders die together.
type DistStore struct {
	self      int
	n         int
	fragments int
	codec     Codec
	groupSize int // checkpoint group size g; 0 = flat world
	net       transport.Interconnect

	ackTimeout   time.Duration
	queryTimeout time.Duration
	queryRetries int
	commitHook   func(version int)
	logf         func(format string, args ...any)

	mu          sync.Mutex
	cond        *sync.Cond
	members     member.Set
	node        *replNode
	awaiting    map[replAckKey]bool
	interrupted bool
	epoch       uint64 // recovery epoch; advancing it releases blocked commits
	fenced      bool   // minority side of a partition: commits refuse, not excuse
	closed      bool

	bytesWritten    int64
	replicatedBytes int64
	reassemblies    int64
	commits         int64
	commitNanos     int64

	reqMu   sync.Mutex
	nextReq uint64
	waiters map[uint64]chan replPayload

	wg sync.WaitGroup
}

// DistOption configures a DistStore.
type DistOption func(*DistStore)

// WithDistFragments sets how many pieces each checkpoint blob is split
// into before replication under the default dup codec (default 2).
func WithDistFragments(k int) DistOption {
	return func(s *DistStore) {
		if k >= 1 {
			s.fragments = k
		}
	}
}

// WithDistCodec replaces the default full-replication (dup) scheme with an
// erasure codec: each of the k+m shards lands on its own ring successor
// (parity placement rotated per owner) and the owner keeps no full local
// copy; any k shards reconstruct the line over the wire.
func WithDistCodec(codec Codec) DistOption {
	return func(s *DistStore) { s.codec = codec }
}

// WithDistGroupSize partitions the world into checkpoint groups of g
// consecutive ring slots (member.Topology): shards land on group-local
// successors and every line additionally ships one cross-group parity
// shard (the whole blob) to the next group, surviving whole-group loss.
// g <= 1 keeps the flat world.
func WithDistGroupSize(g int) DistOption {
	return func(s *DistStore) {
		if g > 1 {
			s.groupSize = g
		}
	}
}

// WithAckTimeout bounds how long a commit waits for a neighbor's
// acknowledgment before excusing it as dead (default 5s). The local copy
// still commits; the line then relies on the surviving replicas.
func WithAckTimeout(d time.Duration) DistOption {
	return func(s *DistStore) { s.ackTimeout = d }
}

// WithQueryTimeout bounds how long recovery reads wait for peer responses
// (default 3s).
func WithQueryTimeout(d time.Duration) DistOption {
	return func(s *DistStore) { s.queryTimeout = d }
}

// WithQueryRetries sets how many rounds of per-peer fragment queries a
// recovery read makes before giving a fragment up as unreachable (default
// 1). The self-healing runtime raises it so a reassembly started while a
// peer is still re-dialing the restarted rank's mesh does not fail
// spuriously.
func WithQueryRetries(k int) DistOption {
	return func(s *DistStore) {
		if k >= 1 {
			s.queryRetries = k
		}
	}
}

// WithCommitHook installs a callback invoked after each locally committed
// version. The acknowledgment wait that precedes the local commit may
// have ended early — interrupt, epoch advance, ack timeout excusing a
// dead neighbor — so the hook reports local durability, not replication
// completion. The multi-process node uses it to report checkpoint
// progress to the launcher, which drives the external-kill demo mode.
func WithCommitHook(fn func(version int)) DistOption {
	return func(s *DistStore) { s.commitHook = fn }
}

// WithDistMembers installs the initial membership placement and recovery
// queries run against (default: all n slots). A store whose world has
// spare address slots must receive the real membership, or recovery
// sweeps would pay dial timeouts toward empty slots.
func WithDistMembers(m member.Set) DistOption {
	return func(s *DistStore) {
		if m.Size() > 0 {
			s.members = m
		}
	}
}

// WithDistLog installs a diagnostic logger for replication and recovery
// events.
func WithDistLog(logf func(format string, args ...any)) DistOption {
	return func(s *DistStore) { s.logf = logf }
}

// NewDistStore creates the store for local rank self of a world with n
// address slots, attached to the given replication interconnect. The
// membership defaults to all n slots; elastic worlds install the live
// membership with WithDistMembers / SetMembership. The store owns one
// replication daemon; call Close when done.
func NewDistStore(self, n int, net transport.Interconnect, opts ...DistOption) *DistStore {
	if n <= 0 || self < 0 || self >= n {
		panic(fmt.Sprintf("stable: dist store rank %d of %d", self, n))
	}
	s := &DistStore{
		self:         self,
		n:            n,
		members:      member.Launch(n),
		fragments:    2,
		net:          net,
		ackTimeout:   5 * time.Second,
		queryTimeout: 3 * time.Second,
		queryRetries: 1,
		node:         newReplNode(),
		awaiting:     make(map[replAckKey]bool),
		waiters:      make(map[uint64]chan replPayload),
	}
	s.cond = sync.NewCond(&s.mu)
	for _, o := range opts {
		o(s)
	}
	if s.codec == nil {
		s.codec = dupCodec{k: s.fragments}
	}
	if s.codec.ParityShards() > 0 && n < 2 {
		panic("stable: erasure codecs need at least one peer rank")
	}
	s.wg.Add(1)
	go s.daemon()
	return s
}

// Close shuts the store and its interconnect down.
func (s *DistStore) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.net.Shutdown()
	s.wg.Wait()
}

// Interrupt releases commits blocked on neighbor acknowledgments (they
// keep their local copy and return). The multi-process runtime calls it
// when an attempt is aborted, so a committer waiting on a dead neighbor
// cannot stall the restart; call Resume before the next attempt.
func (s *DistStore) Interrupt() {
	s.mu.Lock()
	s.interrupted = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Resume clears an Interrupt.
func (s *DistStore) Resume() {
	s.mu.Lock()
	s.interrupted = false
	s.mu.Unlock()
}

// AdvanceEpoch moves the store to a new recovery epoch. Every commit still
// waiting for neighbor acknowledgments under an older epoch is released
// (it keeps its local copy, exactly like an Interrupt), but unlike
// Interrupt/Resume no explicit re-arm is needed: commits started under the
// new epoch wait normally. The self-healing runtime calls it when the
// failure detector's agreement commits a new epoch, so recovery is driven
// by the survivors' own consensus rather than a launcher abort.
func (s *DistStore) AdvanceEpoch(epoch uint64) {
	s.mu.Lock()
	if epoch > s.epoch {
		s.epoch = epoch
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// Epoch returns the store's current recovery epoch.
func (s *DistStore) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// SetFenced flips the store's fencing state. The failure detector drives
// it: fenced=true when this rank can no longer see a strict majority of
// the launch world. While fenced, Commit refuses (ErrFenced) instead of
// excusing unreachable neighbors — a minority-side rank must not extend
// its recovery line while a majority may be committing epochs without it.
// Unfencing releases any commit blocked mid-wait back onto the normal ack
// path with a fresh ack window.
func (s *DistStore) SetFenced(fenced bool) {
	s.mu.Lock()
	if s.fenced != fenced {
		s.fenced = fenced
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// Fenced reports the current fencing state.
func (s *DistStore) Fenced() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fenced
}

// SetMembership installs the member ring new commits place against and
// recovery queries sweep. Unlike ReplicatedStore's active migration, the
// distributed store re-partitions lazily: existing lines stay where the
// old ring put them and recovery decodes around holders that left (the
// codec tolerates ≤m unreachable shards), while every line committed
// after the change lands on the new ring. The next committed recovery
// line therefore completes the re-partition, which is exactly when the
// elastic runtime changes membership.
func (s *DistStore) SetMembership(m member.Set) {
	if m.Size() == 0 {
		return
	}
	s.mu.Lock()
	s.members = m
	s.mu.Unlock()
}

// Members returns the membership placement and queries currently use.
func (s *DistStore) Members() member.Set {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.members
}

// Topology returns the checkpoint-group topology placement runs against.
// Like the membership it derives from, it re-partitions lazily: lines
// committed before a change stay where the old topology put them.
func (s *DistStore) Topology() member.Topology {
	s.mu.Lock()
	defer s.mu.Unlock()
	return member.NewTopology(s.members, s.groupSize)
}

// peerList snapshots the current members excluding self — the sweep set
// for queries, fetches, and prunes. A joining rank that is not yet a
// member still sweeps the full member ring it is joining.
func (s *DistStore) peerList() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	peers := make([]int, 0, s.members.Size())
	for _, q := range s.members.Members() {
		if q != s.self {
			peers = append(peers, q)
		}
	}
	return peers
}

// Reassemblies reports how many checkpoints were rebuilt from peer
// fragments over the wire.
func (s *DistStore) Reassemblies() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reassemblies
}

// CommitStats reports the locally committed line count and the total
// wall-clock time spent inside Commit (replication + acknowledgment
// wait). The ratio is the mean commit latency the ops plane exports.
func (s *DistStore) CommitStats() (count int64, nanos int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commits, s.commitNanos
}

// ReplicatedBytes returns the fragment bytes shipped to peer nodes.
func (s *DistStore) ReplicatedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replicatedBytes
}

// StoredBytes returns the checkpoint bytes resident in THIS process's
// memory: its own full copies plus the replica shards it holds for peers.
// Summed across processes it is the world's stable-storage footprint.
func (s *DistStore) StoredBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, ck := range s.node.local {
		for _, d := range ck.sections {
			t += int64(len(d))
		}
	}
	for _, f := range s.node.frags {
		t += int64(len(f))
	}
	return t
}

func (s *DistStore) send(to int, class transport.Class, p replPayload) {
	_ = s.net.Send(transport.Message{From: s.self, To: to, Class: class, Payload: p})
}

// --- Write path ---

type distHandle struct {
	store    *DistStore
	rank     int
	version  int
	sections map[string][]byte
	done     bool
	stored   int64
}

// StoredSize reports the stable-storage bytes this commit occupies across
// the world (local copy plus replica shards).
func (h *distHandle) StoredSize() int64 { return h.stored }

// Begin implements Store.
func (s *DistStore) Begin(rank, version int) (Checkpoint, error) {
	if rank != s.self {
		return nil, fmt.Errorf("stable: dist store hosts rank %d, cannot write rank %d", s.self, rank)
	}
	s.mu.Lock()
	delete(s.node.local, version)
	s.mu.Unlock()
	return &distHandle{store: s, rank: rank, version: version, sections: make(map[string][]byte)}, nil
}

func (h *distHandle) WriteSection(name string, data []byte) error {
	if h.done {
		return fmt.Errorf("stable: write to finished checkpoint (%d,%d)", h.rank, h.version)
	}
	h.sections[name] = append([]byte(nil), data...)
	h.store.mu.Lock()
	h.store.bytesWritten += int64(len(data))
	h.store.mu.Unlock()
	return nil
}

func (h *distHandle) Abort() error {
	h.done = true
	return nil
}

// Commit encodes the checkpoint through the store's codec, ships the
// shards and commit marker to their holders, and waits for their
// acknowledgments; a holder that never answers within the ack timeout (it
// is dead, or the world is being torn down) is excused. Only then does the
// version become locally committed.
func (h *distHandle) Commit() error {
	if h.done {
		return fmt.Errorf("stable: commit of finished checkpoint (%d,%d)", h.rank, h.version)
	}
	h.done = true
	s := h.store
	begin := time.Now()

	s.mu.Lock()
	if s.fenced {
		s.mu.Unlock()
		return fmt.Errorf("stable: commit (%d,%d): %w", h.rank, h.version, ErrFenced)
	}
	s.mu.Unlock()

	encSp := trace.Default().Begin(int32(s.self), trace.KindEncode, 0, uint64(h.version))
	blob := encodeReplSections(h.sections)
	shards, err := s.codec.Encode(blob)
	encSp.End(uint64(len(blob)))
	if err != nil {
		return fmt.Errorf("stable: encode checkpoint (%d,%d): %w", h.rank, h.version, err)
	}
	s.mu.Lock()
	sendPlan, targets, keepLocal, parity := commitPlan(s.codec, h.rank, len(shards), member.NewTopology(s.members, s.groupSize))
	// units extends the codec shards with the cross-group parity shard
	// (the whole blob, at index len(shards)) when the topology assigns one.
	units := shards
	if parity >= 0 {
		units = append(append(make([][]byte, 0, len(shards)+1), shards...), blob)
	}
	rec := replCommitRec{
		codec: s.codec.ID(),
		frags: len(shards),
		data:  s.codec.DataShards(),
		total: len(blob),
		sum:   replSum(blob),
		sums:  shardSums(shards),
		cross: parity + 1,
	}
	startEpoch := s.epoch
	for _, nb := range targets {
		s.awaiting[replAckKey{owner: h.rank, version: h.version, from: nb}] = false
		for _, idx := range sendPlan[nb] {
			s.replicatedBytes += int64(len(units[idx]))
			h.stored += int64(len(units[idx]))
		}
	}
	s.mu.Unlock()
	if keepLocal {
		h.stored += sectionsBytes(h.sections)
	}

	shipSp := trace.Default().Begin(int32(s.self), trace.KindShip, 0, uint64(h.version))
	var shippedBytes uint64
	for _, nb := range targets {
		for _, idx := range sendPlan[nb] {
			s.send(nb, transport.Data, encodeReplFrag(h.rank, h.version, 0, rec.codec, len(shards), idx, units[idx]))
			shippedBytes += uint64(len(units[idx]))
		}
		// The marker travels after the fragments on the same FIFO pair, so
		// a stored marker implies the fragments preceding it arrived.
		s.send(nb, transport.Control, encodeReplCommit(h.rank, h.version, 0, rec))
	}
	shipSp.End(shippedBytes)

	ackSp := trace.Default().Begin(int32(s.self), trace.KindAck, 0, uint64(h.version))
	deadline := time.Now().Add(s.ackTimeout)
	wake := time.AfterFunc(s.ackTimeout, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer wake.Stop()

	s.mu.Lock()
	lostShards := 0
	parityLost := false
	wasFenced := false
	for {
		pending := 0
		lostShards = 0
		parityLost = false
		for _, nb := range targets {
			if !s.awaiting[replAckKey{owner: h.rank, version: h.version, from: nb}] {
				pending++
				for _, idx := range sendPlan[nb] {
					if idx >= len(shards) {
						parityLost = true
					} else {
						lostShards++
					}
				}
			}
		}
		if s.interrupted || s.closed || s.epoch != startEpoch {
			break
		}
		if s.fenced {
			// Fenced mid-wait: the deadline must NOT excuse the silent
			// holders — they are on the other side of a partition, and
			// excusing them would commit a minority-side line. Block until
			// the fence lifts (heal) or the attempt is torn down.
			wasFenced = true
			s.cond.Wait()
			continue
		}
		if wasFenced {
			// The fence lifted: the holders are reachable again but their
			// acks are still in flight — grant a fresh ack window instead of
			// excusing them on the long-expired original deadline.
			wasFenced = false
			deadline = time.Now().Add(s.ackTimeout)
			wake.Reset(s.ackTimeout)
		}
		if pending == 0 || !time.Now().Before(deadline) {
			break
		}
		s.cond.Wait()
	}
	fenced := s.fenced
	tornDown := s.interrupted || s.closed || s.epoch != startEpoch
	for _, nb := range targets {
		delete(s.awaiting, replAckKey{owner: h.rank, version: h.version, from: nb})
	}
	if keepLocal && !fenced {
		s.node.local[h.version] = &memCkpt{sections: h.sections, commit: true}
	}
	hook := s.commitHook
	s.mu.Unlock()
	ackSp.End(uint64(lostShards))
	if fenced {
		// Torn down while still fenced: refuse outright. No local copy was
		// installed and no hook fires — a fenced rank reports zero commits.
		return fmt.Errorf("stable: commit (%d,%d) torn down while fenced: %w", h.rank, h.version, ErrFenced)
	}
	// Erasure-coded commits keep no local copy, so the ack-timeout excusal
	// has a floor: if the unacknowledged holders account for more shards
	// than the parity budget, the line cannot be reconstructed and success
	// would let the protocol retire the previous, recoverable line. An
	// acknowledged cross-group parity shard lifts the floor: it alone
	// reconstructs the blob, so a correlated *group-dead* loss — every
	// group-local holder silent at once, far beyond the ≤m individual
	// losses the ring excusal was built for — is excused the same way a
	// single dead neighbor is. The teardown exits (interrupt, epoch
	// advance, shutdown) keep their legacy semantics — recovery truncates
	// and re-executes those lines.
	parityAcked := parity >= 0 && !parityLost
	if !keepLocal && !tornDown && len(shards)-lostShards < s.codec.DataShards() && !parityAcked {
		return fmt.Errorf("stable: commit (%d,%d) missing acknowledgments for %d of %d shards (codec needs %d)",
			h.rank, h.version, lostShards, len(shards), s.codec.DataShards())
	}
	s.mu.Lock()
	s.commits++
	s.commitNanos += time.Since(begin).Nanoseconds()
	s.mu.Unlock()
	if hook != nil {
		hook(h.version)
	}
	return nil
}

// --- Daemon ---

// daemon is the node's replication endpoint: it stores incoming fragments
// and markers, acknowledges commits, answers recovery queries, applies
// prunes, and routes acknowledgments and query responses to waiters.
func (s *DistStore) daemon() {
	defer s.wg.Done()
	ep := s.net.Endpoint(s.self)
	for {
		msg, err := ep.Recv()
		if err != nil {
			return // interconnect shut down
		}
		data, ok := msg.Payload.(replPayload)
		if !ok || len(data) == 0 {
			continue
		}
		switch data[0] {
		case replMsgFrag:
			owner, version, _, _, _, idx, frag, err := decodeReplFrag(data)
			if err != nil {
				continue
			}
			s.mu.Lock()
			s.node.frags[replFragKey{owner: owner, version: version, idx: idx}] = frag
			s.mu.Unlock()
		case replMsgCommit:
			owner, version, _, rec, err := decodeReplCommit(data)
			if err != nil {
				continue
			}
			s.mu.Lock()
			s.node.commits[replCommitKey{owner: owner, version: version}] = rec
			s.mu.Unlock()
			s.send(msg.From, transport.Control, encodeReplAck(owner, version, s.self))
		case replMsgAck:
			owner, version, from, err := decodeReplAck(data)
			if err != nil {
				continue
			}
			s.mu.Lock()
			key := replAckKey{owner: owner, version: version, from: from}
			if _, waiting := s.awaiting[key]; waiting {
				s.awaiting[key] = true
				s.cond.Broadcast()
			}
			s.mu.Unlock()
		case distMsgQueryLast:
			reqID, owner, err := decodeDistQueryLast(data)
			if err != nil {
				continue
			}
			if s.logf != nil {
				s.logf("dist: rank %d answering query owner=%d from rank %d", s.self, owner, msg.From)
			}
			s.send(msg.From, transport.Control, s.answerQueryLast(reqID, owner))
		case distMsgQueryFrag:
			reqID, owner, version, idx, err := decodeDistQueryFrag(data)
			if err != nil {
				continue
			}
			s.mu.Lock()
			frag, found := s.node.frags[replFragKey{owner: owner, version: version, idx: idx}]
			s.mu.Unlock()
			s.send(msg.From, transport.Control, encodeDistRespFrag(reqID, found, frag))
		case distMsgRespLast, distMsgRespFrag:
			reqID, ok := peekDistReqID(data)
			if !ok {
				continue
			}
			s.reqMu.Lock()
			ch := s.waiters[reqID]
			s.reqMu.Unlock()
			if ch != nil {
				select {
				case ch <- data:
				default: // waiter gave up or buffer full; drop
				}
			}
		case distMsgPrune:
			owner, version, above, err := decodeDistPrune(data)
			if err != nil {
				continue
			}
			s.mu.Lock()
			for key := range s.node.frags {
				if key.owner == owner && ((above && key.version > version) || (!above && key.version < version)) {
					delete(s.node.frags, key)
				}
			}
			for key := range s.node.commits {
				if key.owner == owner && ((above && key.version > version) || (!above && key.version < version)) {
					delete(s.node.commits, key)
				}
			}
			s.mu.Unlock()
		}
	}
}

// answerQueryLast reports every (version, marker, held fragment indexes)
// this node holds for the owner.
func (s *DistStore) answerQueryLast(reqID uint64, owner int) replPayload {
	s.mu.Lock()
	defer s.mu.Unlock()
	var entries []distLastEntry
	for key, rec := range s.node.commits {
		if key.owner != owner {
			continue
		}
		e := distLastEntry{version: key.version, rec: rec}
		units := rec.frags
		if _, ok := rec.crossHolder(); ok {
			units++ // the cross-group parity shard at index rec.frags
		}
		for idx := 0; idx < units; idx++ {
			if _, ok := s.node.frags[replFragKey{owner: owner, version: key.version, idx: idx}]; ok {
				e.held = append(e.held, idx)
			}
		}
		entries = append(entries, e)
	}
	return encodeDistRespLast(reqID, entries)
}

// --- Read path (recovery queries) ---

// distLastEntry is one peer's report about (owner, version).
type distLastEntry struct {
	version int
	rec     replCommitRec
	held    []int // fragment indexes the peer holds
}

// remoteLine aggregates peer reports for one version.
type remoteLine struct {
	rec     replCommitRec
	holders map[int][]int // fragment idx -> peers holding it
}

// newRequest registers a response channel for a fresh request id.
func (s *DistStore) newRequest(buf int) (uint64, chan replPayload) {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	s.nextReq++
	id := s.nextReq
	ch := make(chan replPayload, buf)
	s.waiters[id] = ch
	return id, ch
}

func (s *DistStore) dropRequest(id uint64) {
	s.reqMu.Lock()
	delete(s.waiters, id)
	s.reqMu.Unlock()
}

// queryPeers asks every peer what it holds for owner and merges the
// responses, waiting until all peers answered or the query timeout passed.
func (s *DistStore) queryPeers(owner int) map[int]*remoteLine {
	reqID, ch := s.newRequest(s.n)
	defer s.dropRequest(reqID)
	sweep := s.peerList()
	for _, q := range sweep {
		s.send(q, transport.Control, encodeDistQueryLast(reqID, owner))
	}
	peers := len(sweep)
	lines := make(map[int]*remoteLine)
	deadline := time.After(s.queryTimeout)
	for answered := 0; answered < peers; {
		select {
		case data := <-ch:
			if len(data) == 0 || data[0] != distMsgRespLast {
				continue
			}
			_, entries, err := decodeDistRespLast(data)
			if err != nil {
				continue
			}
			if s.logf != nil {
				s.logf("dist: rank %d query owner=%d: peer response with %d entries", s.self, owner, len(entries))
			}
			// The response's From is not carried in the payload; holders are
			// identified by a follow-up fragment query fan-out, so here we
			// only record which versions exist and how complete they are.
			for _, e := range entries {
				rl := lines[e.version]
				if rl == nil {
					rl = &remoteLine{rec: e.rec, holders: make(map[int][]int)}
					lines[e.version] = rl
				}
				for _, idx := range e.held {
					rl.holders[idx] = append(rl.holders[idx], -1)
				}
			}
			answered++
		case <-deadline:
			if s.logf != nil {
				s.logf("dist: rank %d query owner=%d timed out with %d/%d peers answered", s.self, owner, answered, peers)
			}
			return lines
		}
	}
	return lines
}

// complete reports whether enough distinct shards of the line were seen
// somewhere to reconstruct it (all for dup, any k for the erasure codecs,
// or the cross-group parity shard alone — the whole-group-loss path).
func (rl *remoteLine) complete() bool {
	if _, ok := rl.rec.crossHolder(); ok && len(rl.holders[rl.rec.frags]) > 0 {
		return true
	}
	need := rl.rec.need()
	avail := 0
	for idx := 0; idx < rl.rec.frags && avail < need; idx++ {
		if len(rl.holders[idx]) > 0 {
			avail++
		}
	}
	return avail >= need
}

// LastCommitted implements Store: the newest locally committed version or,
// when local memory is empty (a restarted process), the newest version
// whose marker and full fragment set survive on peers.
func (s *DistStore) LastCommitted(rank int) (int, bool, error) {
	if rank == s.self {
		s.mu.Lock()
		best, ok := 0, false
		for v, ck := range s.node.local {
			if ck.commit && (!ok || v > best) {
				best, ok = v, true
			}
		}
		s.mu.Unlock()
		if ok {
			return best, true, nil
		}
	}
	lines := s.queryPeers(rank)
	versions := make([]int, 0, len(lines))
	for v := range lines {
		versions = append(versions, v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(versions)))
	for _, v := range versions {
		if lines[v].complete() {
			return v, true, nil
		}
	}
	return 0, false, nil
}

// Open implements Store. A missing local copy is reassembled from peer
// fragments fetched over the wire, validated against the commit marker,
// and re-installed locally (the restarted node re-hosting its line).
func (s *DistStore) Open(rank, version int) (Snapshot, error) {
	s.mu.Lock()
	if rank == s.self {
		if ck, ok := s.node.local[version]; ok {
			s.mu.Unlock()
			if !ck.commit {
				return nil, fmt.Errorf("%w: rank %d version %d", ErrNotCommitted, rank, version)
			}
			return &memSnap{ck: ck}, nil
		}
	}
	s.mu.Unlock()

	reSp := trace.Default().Begin(int32(s.self), trace.KindReassemble, 0, uint64(version))
	lines := s.queryPeers(rank)
	rl, ok := lines[version]
	if !ok {
		reSp.End(0)
		return nil, fmt.Errorf("%w: rank %d version %d (no local copy, no peer commit marker)", ErrNotFound, rank, version)
	}
	// Fetch shards until the codec can reconstruct; a shard unreachable or
	// digest-mismatched on every peer counts as lost, which the erasure
	// codecs tolerate up to their parity count. When group-local shards
	// fall short (a whole group died together), the cross-group parity
	// shard — the whole blob, one group over — is fetched instead.
	_, hasCross := rl.rec.crossHolder()
	units := rl.rec.frags
	if hasCross {
		units++
	}
	shards := make([][]byte, units)
	valid := 0
	for idx := 0; idx < rl.rec.frags && valid < rl.rec.need(); idx++ {
		frag, ok := s.fetchFrag(rank, version, idx, rl.rec)
		if !ok {
			continue
		}
		shards[idx] = frag
		valid++
	}
	if hasCross && valid < rl.rec.need() {
		if frag, ok := s.fetchFrag(rank, version, rl.rec.frags, rl.rec); ok {
			shards[rl.rec.frags] = frag
		}
	}
	sections, err := reassembleSections(rl.rec, shards)
	if err != nil {
		reSp.End(0)
		return nil, fmt.Errorf("%w: rank %d version %d: %v", ErrNotFound, rank, version, err)
	}
	reSp.End(uint64(rl.rec.total))
	ck := &memCkpt{sections: sections, commit: true}
	s.mu.Lock()
	if rank == s.self {
		s.node.local[version] = ck
	}
	s.reassemblies++
	s.mu.Unlock()
	return &memSnap{ck: ck}, nil
}

// fetchFrag asks each peer in turn for one fragment, repeating the sweep
// up to the configured retry count (a peer may still be re-dialing this
// process's freshly bound mesh when the first round goes out). A fetched
// copy that fails the marker's per-shard digest is rejected and the sweep
// continues — a corrupt replica must not mask a valid one elsewhere.
func (s *DistStore) fetchFrag(owner, version, idx int, rec replCommitRec) ([]byte, bool) {
	for round := 0; round < s.queryRetries; round++ {
		for _, q := range s.peerList() {
			reqID, ch := s.newRequest(1)
			s.send(q, transport.Control, encodeDistQueryFrag(reqID, owner, version, idx))
			select {
			case data := <-ch:
				s.dropRequest(reqID)
				_, found, frag, err := decodeDistRespFrag(data)
				if err == nil && found && rec.shardValid(idx, frag) {
					return frag, true
				}
			case <-time.After(s.queryTimeout):
				s.dropRequest(reqID)
			}
		}
	}
	return nil, false
}

// Retire implements Store: prune old local versions and tell peers to drop
// the fragments and markers they hold below the floor.
func (s *DistStore) Retire(rank, version int) error {
	return s.prune(rank, version, false)
}

// Truncate implements Store: drop versions above the recovery line — local
// memory and peer holdings — so a dead generation cannot resurface.
func (s *DistStore) Truncate(rank, version int) error {
	return s.prune(rank, version, true)
}

func (s *DistStore) prune(rank, version int, above bool) error {
	if rank == s.self {
		s.mu.Lock()
		for v := range s.node.local {
			if (above && v > version) || (!above && v < version) {
				delete(s.node.local, v)
			}
		}
		s.mu.Unlock()
	}
	// Prune what this node and every peer hold for the rank. FIFO ordering
	// per pair guarantees the prune lands before any later re-committed
	// fragments for the same versions.
	p := encodeDistPrune(rank, version, above)
	s.mu.Lock()
	for key := range s.node.frags {
		if key.owner == rank && ((above && key.version > version) || (!above && key.version < version)) {
			delete(s.node.frags, key)
		}
	}
	for key := range s.node.commits {
		if key.owner == rank && ((above && key.version > version) || (!above && key.version < version)) {
			delete(s.node.commits, key)
		}
	}
	s.mu.Unlock()
	for _, q := range s.peerList() {
		s.send(q, transport.Control, p)
	}
	return nil
}

var _ Store = (*DistStore)(nil)

// --- Query message codecs ---

// Distributed-store message kinds (disjoint from the replMsg* range).
const (
	distMsgQueryLast uint8 = iota + 16
	distMsgRespLast
	distMsgQueryFrag
	distMsgRespFrag
	distMsgPrune
)
