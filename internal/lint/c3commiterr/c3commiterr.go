// Package c3commiterr enforces error hygiene on the checkpoint commit and
// restore paths (packages stable, ckpt and cluster).
//
// Motivation (PR 3): DiskStore commits are fsync-ordered — data, fsync,
// rename, fsync-dir — and the torn-commit tests only mean something if
// every error in that chain is observed. A silently dropped Sync or Rename
// error converts a disk failure into a checkpoint that recovery will trust
// and the application will lose data to.
//
// Two tiers of severity:
//
//   - ordering-critical operations (Sync, Commit, WriteSection, Rename,
//     plus the stable.Store mutators Begin/Retire/Truncate): the error may
//     not be dropped at all — neither a bare call statement nor an
//     explicit `_ =` discard passes.
//
//   - cleanup operations (Close, Abort): a bare call statement is a
//     finding, but an explicit `_ = x.Close()` or a `defer x.Close()` is
//     accepted — the idiomatic shapes for best-effort teardown on paths
//     where the primary error has already been captured.
//
// Deliberate exceptions (e.g. retiring old checkpoints best-effort after a
// successful commit) carry //c3lint:allow commiterr <reason>.
package c3commiterr

import (
	"go/ast"
	"go/types"

	"c3/internal/lint/analysis"
)

// GovernedPackages are the commit/restore-path packages.
var GovernedPackages = map[string]bool{
	"c3/internal/stable":  true,
	"c3/internal/ckpt":    true,
	"c3/internal/cluster": true,
}

// critical method/function names whose error result must always be bound.
var critical = map[string]bool{
	"Sync":         true,
	"Commit":       true,
	"WriteSection": true,
	"Rename":       true, // os.Rename: the commit point of DiskStore
	"Begin":        true,
	"Retire":       true,
	"Truncate":     true,
}

// cleanup method names where an explicit discard or defer is acceptable.
var cleanup = map[string]bool{
	"Close": true,
	"Abort": true,
}

// Analyzer is the c3commiterr pass.
var Analyzer = &analysis.Analyzer{
	Name: "c3commiterr",
	Doc: "commit/restore paths (stable, ckpt, cluster) may not drop errors from Sync, Commit, " +
		"WriteSection, Rename, Begin, Retire, Truncate (never) or Close, Abort (bare statement)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !GovernedPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, ok := governedCall(pass, call); ok {
						pass.Reportf(call.Pos(), "%s error silently dropped on the commit/restore path; handle it (or annotate a deliberate best-effort call)", name)
					}
				}
				return false
			case *ast.DeferStmt:
				if name, ok := governedCall(pass, n.Call); ok && !isCleanup(pass, n.Call) {
					pass.Reportf(n.Call.Pos(), "deferred %s drops its error on the commit/restore path; capture it in a named return or call it inline", name)
				}
				return false
			case *ast.GoStmt:
				if name, ok := governedCall(pass, n.Call); ok {
					pass.Reportf(n.Call.Pos(), "go %s drops its error on the commit/restore path", name)
				}
				return false
			case *ast.AssignStmt:
				// `_ = x.Commit()` — explicit, but still forbidden for
				// ordering-critical calls.
				if len(n.Rhs) == 1 && allBlank(n.Lhs) {
					if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
						if name, ok := governedCall(pass, call); ok && !isCleanup(pass, call) {
							pass.Reportf(call.Pos(), "%s error explicitly discarded on the commit/restore path; an unobserved failure here breaks the fsync-ordered commit chain", name)
						}
					}
					return false
				}
			}
			return true
		})
	}
	return nil
}

// governedCall reports whether call is an error-returning call to one of
// the governed operations, returning a printable name.
func governedCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := callee(pass, call)
	if fn == nil {
		return "", false
	}
	name := fn.Name()
	if !critical[name] && !cleanup[name] {
		return "", false
	}
	// os.Rename/os.Remove style package functions: only those from os are
	// commit-chain operations; method names apply to any receiver (the
	// stable.Store implementations, *os.File, io.Closer wrappers).
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !returnsError(sig) {
		return "", false
	}
	if sig.Recv() == nil {
		if fn.Pkg() == nil || fn.Pkg().Path() != "os" {
			return "", false
		}
		return "os." + name, true
	}
	return recvString(sig) + "." + name, true
}

func isCleanup(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := callee(pass, call)
	return fn != nil && cleanup[fn.Name()]
}

func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// returnsError reports whether the signature's last result is error.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func recvString(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}
