// Package ckpt implements the paper's contribution: a non-blocking,
// coordinated, application-level checkpointing protocol for message-passing
// programs (Sections 3–5 of Schulz et al., SC 2004).
//
// A Layer interposes between the application and the mpi package, exactly as
// the C3 coordination layer sits between an application and a native MPI
// library (Figure 1). It
//
//   - piggybacks the sender's epoch color and a stopped-logging bit on every
//     application message (3 bits of information, Section 3.2);
//   - classifies every received message as late, intra-epoch, or early by
//     comparing the piggybacked epoch with the receiver's (Definition 1);
//   - logs late message data and the signatures of non-deterministic
//     (wildcard) intra-epoch receives in the Late-Message-Registry;
//   - records early message signatures in the Early-Message-Registry, which
//     recovery redistributes into per-sender Was-Early-Registries used to
//     suppress re-sends;
//   - coordinates checkpoints without global barriers via Checkpoint-
//     Initiated control messages carrying per-destination send counts, and
//     commits a local checkpoint when every expected late message is in;
//   - extends the base protocol to non-blocking communication (request
//     indirection table with test counters), derived datatypes (handle table
//     with hierarchy), and collectives (per-stream protocol application,
//     result logging for Allreduce, Reduce via Gather, and point-to-point
//     emulation during recovery) per Section 4.
package ckpt

import "fmt"

// Mode is a process's protocol state (the paper's Figure 3).
type Mode uint8

// Protocol modes.
const (
	// ModeRun is normal execution: no checkpoint is in progress locally.
	ModeRun Mode = iota
	// ModeNonDetLog: a local checkpoint has started; late messages and
	// non-deterministic events are being logged.
	ModeNonDetLog
	// ModeRecvOnlyLog: every process has started the checkpoint, so no new
	// early messages can be created; only late messages are still logged.
	ModeRecvOnlyLog
	// ModeRestore: recovering from a checkpoint; the Late-Message-Registry
	// is replayed and Was-Early sends are suppressed.
	ModeRestore
)

func (m Mode) String() string {
	switch m {
	case ModeRun:
		return "Run"
	case ModeNonDetLog:
		return "NonDet-Log"
	case ModeRecvOnlyLog:
		return "RecvOnly-Log"
	case ModeRestore:
		return "Restore"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Class is a received message's classification relative to the receiver's
// epoch (paper Definition 1).
type Class uint8

// Message classes.
const (
	// ClassIntra: sender and receiver were in the same epoch.
	ClassIntra Class = iota
	// ClassEarly: the sender was one epoch ahead (an "inconsistent"
	// message in system-level terminology).
	ClassEarly
	// ClassLate: the sender was one epoch behind (an "in-flight" message).
	ClassLate
)

func (c Class) String() string {
	switch c {
	case ClassIntra:
		return "intra-epoch"
	case ClassEarly:
		return "early"
	case ClassLate:
		return "late"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// EpochColor maps an epoch to its 2-bit color. Because a message can cross
// at most one recovery line, sender and receiver epochs differ by at most
// one, and three colors suffice to recover the sign of the difference
// (Section 3.2: "if we imagine that epochs are colored red, green, and blue
// successively").
func EpochColor(epoch uint64) uint8 { return uint8(epoch % 3) }

// ClassifyColors classifies a message from the sender's color and the
// receiver's color.
func ClassifyColors(sender, receiver uint8) Class {
	switch (int(sender) - int(receiver) + 3) % 3 {
	case 0:
		return ClassIntra
	case 1:
		return ClassEarly
	default:
		return ClassLate
	}
}

// ClassifyEpochs classifies using full epoch numbers; used by the wide
// piggyback codec and by tests to validate the 2-bit color encoding.
func ClassifyEpochs(sender, receiver uint64) (Class, error) {
	switch {
	case sender == receiver:
		return ClassIntra, nil
	case sender == receiver+1:
		return ClassEarly, nil
	case sender+1 == receiver:
		return ClassLate, nil
	default:
		return 0, fmt.Errorf("ckpt: message crossed %d recovery lines (sender epoch %d, receiver %d)",
			int64(sender)-int64(receiver), sender, receiver)
	}
}
