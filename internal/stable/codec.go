package stable

// Pluggable fragment codecs for the diskless stable stores.
//
// The paper's diskless configuration (and PR 1's ReplicatedStore) buys
// fault tolerance with full replication: every checkpoint blob is copied
// verbatim to the +1/+2 ring neighbors, so surviving any two simultaneous
// node losses costs 2x the checkpoint size in interconnect bytes and 2x in
// peer memory — the dominant scaling cost the paper's evaluation worries
// about. Erasure coding (ReStore's successor work; Kohl et al. 2017)
// recovers the same tolerance at a fraction of the cost: the blob is cut
// into k data shards plus m parity shards, any k of the k+m suffice to
// reconstruct, and each shard lives on a distinct ring successor.
//
// Three codecs are provided:
//
//   - dup: the legacy scheme. The blob is split into fragments and every
//     fragment is shipped to BOTH +1/+2 neighbors; the owner keeps a full
//     local copy. Tolerates any 2 simultaneous losses at 2x wire / 3x
//     stored cost. Default, with the pre-codec stores' placement, shard
//     boundaries and recovery semantics (the fragment header and commit
//     marker themselves gained codec fields, so the frame encoding is NOT
//     compatible with pre-codec binaries).
//   - xor: k data shards + 1 XOR parity shard on k+1 distinct successors.
//     Tolerates any single loss at (k+1)/k cost.
//   - rs: Reed-Solomon over GF(2^8), k data + m parity shards on k+m
//     distinct successors. Tolerates any m simultaneous losses at (k+m)/k
//     cost — at m=2 the same tolerance as dup for ~half the stored bytes.
//
// For the erasure codecs the owner intentionally keeps NO full local copy:
// the line exists only as shards spread around the ring (that is where the
// memory saving comes from), and every Open reassembles — the reassembly
// latency the AblationCodec bench table prices.

import (
	"fmt"
	"sync"
)

// Codec identifiers carried in fragment headers and commit markers.
const (
	CodecDup uint8 = iota
	CodecXOR
	CodecRS
)

// Codec turns a checkpoint blob into shards and back. Encode returns
// DataShards()+ParityShards() shards; Decode reconstructs the blob from any
// sufficient subset (nil entries mark missing or checksum-rejected shards).
// Implementations never retain or alias the input blob.
type Codec interface {
	// Name is the flag-level identifier (dup, xor, rs).
	Name() string
	// ID is the wire identifier (CodecDup, CodecXOR, CodecRS).
	ID() uint8
	// DataShards is k: the number of shards that suffice to reconstruct.
	DataShards() int
	// ParityShards is m: the number of simultaneous shard losses tolerated.
	ParityShards() int
	// Encode splits blob into k+m shards. Data shards other than the last
	// have equal length for the erasure codecs (the blob is zero-padded).
	Encode(blob []byte) ([][]byte, error)
	// Decode reconstructs the original blob of length total from shards
	// (indexed as produced by Encode; nil = lost). It fails cleanly when
	// fewer than k shards survive.
	Decode(shards [][]byte, total int) ([]byte, error)
}

// NewCodec builds a codec by name. k is the data-shard count (0 selects
// the per-codec default), m the parity-shard count (0 selects the
// default). A parity count the codec cannot honor is an error, not a
// silent downgrade — an operator passing -parity 2 with -codec dup must
// not believe they have parity protection.
func NewCodec(name string, k, m int) (Codec, error) {
	switch name {
	case "", "dup":
		if m > 0 {
			return nil, fmt.Errorf("stable: dup codec replicates full copies and takes no parity shards (use xor or rs)")
		}
		if k <= 0 {
			k = 2
		}
		return dupCodec{k: k}, nil
	case "xor":
		if m > 1 {
			return nil, fmt.Errorf("stable: xor codec has exactly one parity shard (use rs for m=%d)", m)
		}
		if k <= 0 {
			k = 4
		}
		return xorCodec{k: k}, nil
	case "rs":
		if k <= 0 {
			k = 4
		}
		if m <= 0 {
			m = 2
		}
		if k+m > 255 {
			return nil, fmt.Errorf("stable: rs codec k+m = %d exceeds 255", k+m)
		}
		return rsCodec{k: k, m: m}, nil
	default:
		return nil, fmt.Errorf("stable: unknown codec %q (dup, xor, rs)", name)
	}
}

// codecFor reconstructs the codec a commit marker names, so the read path
// can decode shards written by any configuration. The geometry comes off
// the wire, so it is validated, never trusted.
func codecFor(id uint8, data, parity int) (Codec, error) {
	if data < 1 || parity < 0 || data+parity > 255 {
		return nil, fmt.Errorf("stable: codec geometry k=%d m=%d out of range", data, parity)
	}
	switch id {
	case CodecDup:
		return dupCodec{k: data}, nil
	case CodecXOR:
		if parity != 1 {
			return nil, fmt.Errorf("stable: xor marker with parity %d", parity)
		}
		return xorCodec{k: data}, nil
	case CodecRS:
		return rsCodec{k: data, m: parity}, nil
	default:
		return nil, fmt.Errorf("stable: unknown codec id %d", id)
	}
}

// --- dup: legacy full replication ---

// dupCodec reproduces splitFragments: k nearly equal, unpadded pieces.
// There is no parity; reconstruction needs every piece, and fault tolerance
// comes from the store shipping the full set to both ring neighbors.
type dupCodec struct{ k int }

func (c dupCodec) Name() string      { return "dup" }
func (c dupCodec) ID() uint8         { return CodecDup }
func (c dupCodec) DataShards() int   { return c.k }
func (c dupCodec) ParityShards() int { return 0 }

func (c dupCodec) Encode(blob []byte) ([][]byte, error) {
	return splitFragments(blob, c.k), nil
}

func (c dupCodec) Decode(shards [][]byte, total int) ([]byte, error) {
	blob := make([]byte, 0, total)
	for idx, s := range shards {
		if s == nil {
			return nil, fmt.Errorf("stable: dup fragment %d missing", idx)
		}
		blob = append(blob, s...)
	}
	if len(blob) != total {
		return nil, fmt.Errorf("stable: dup reassembly %d/%d bytes", len(blob), total)
	}
	return blob, nil
}

// --- shared erasure-coding shard layout ---

// shardSize is the padded per-shard length for a blob of the given size
// split into k data shards. Always at least 1 so parity math has bytes to
// work on even for empty blobs.
func shardSize(total, k int) int {
	sz := (total + k - 1) / k
	if sz < 1 {
		sz = 1
	}
	return sz
}

// dataShards cuts blob into k copies of length sz each, zero-padding the
// tail. The shards never alias blob.
func dataShards(blob []byte, k, sz int) [][]byte {
	shards := make([][]byte, k)
	for i := 0; i < k; i++ {
		s := make([]byte, sz)
		lo := i * sz
		if lo < len(blob) {
			copy(s, blob[lo:])
		}
		shards[i] = s
	}
	return shards
}

// joinShards concatenates k reconstructed data shards and trims the padding.
func joinShards(shards [][]byte, k, total int) []byte {
	blob := make([]byte, 0, k*len(shards[0]))
	for i := 0; i < k; i++ {
		blob = append(blob, shards[i]...)
	}
	if len(blob) < total {
		return nil
	}
	return blob[:total]
}

// --- xor: k+1, single-loss parity ---

type xorCodec struct{ k int }

func (c xorCodec) Name() string      { return "xor" }
func (c xorCodec) ID() uint8         { return CodecXOR }
func (c xorCodec) DataShards() int   { return c.k }
func (c xorCodec) ParityShards() int { return 1 }

func (c xorCodec) Encode(blob []byte) ([][]byte, error) {
	sz := shardSize(len(blob), c.k)
	shards := dataShards(blob, c.k, sz)
	parity := make([]byte, sz)
	for _, s := range shards {
		for i, b := range s {
			parity[i] ^= b
		}
	}
	return append(shards, parity), nil
}

func (c xorCodec) Decode(shards [][]byte, total int) ([]byte, error) {
	if len(shards) != c.k+1 {
		return nil, fmt.Errorf("stable: xor expects %d shards, got %d", c.k+1, len(shards))
	}
	missing := -1
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			if missing >= 0 {
				return nil, fmt.Errorf("stable: xor cannot repair shards %d and %d (tolerates one loss)", missing, i)
			}
			missing = i
		}
	}
	if missing >= 0 {
		if shards[c.k] == nil {
			return nil, fmt.Errorf("stable: xor shard %d and parity both lost", missing)
		}
		repair := append([]byte(nil), shards[c.k]...)
		for i := 0; i < c.k; i++ {
			if i == missing {
				continue
			}
			if len(shards[i]) != len(repair) {
				return nil, fmt.Errorf("stable: xor shard %d length %d != %d", i, len(shards[i]), len(repair))
			}
			for j, b := range shards[i] {
				repair[j] ^= b
			}
		}
		shards = append([][]byte(nil), shards...)
		shards[missing] = repair
	}
	blob := joinShards(shards, c.k, total)
	if blob == nil {
		return nil, fmt.Errorf("stable: xor reassembly shorter than %d bytes", total)
	}
	return blob, nil
}

// --- rs: Reed-Solomon k+m over GF(2^8) ---

// GF(2^8) arithmetic with the 0x11d polynomial (the classic RS field).
// Exp table is doubled so mul can index exp[logA+logB] without a mod.
var gfExp [512]byte
var gfLog [256]byte

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[byte(x)] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

func gfDiv(a, b byte) byte {
	if a == 0 {
		return 0
	}
	if b == 0 {
		panic("stable: GF(2^8) division by zero")
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfMatrix is a dense matrix over GF(2^8).
type gfMatrix [][]byte

func newGFMatrix(rows, cols int) gfMatrix {
	m := make(gfMatrix, rows)
	for i := range m {
		m[i] = make([]byte, cols)
	}
	return m
}

func gfIdentity(n int) gfMatrix {
	m := newGFMatrix(n, n)
	for i := 0; i < n; i++ {
		m[i][i] = 1
	}
	return m
}

// mul returns a × b.
func (a gfMatrix) mul(b gfMatrix) gfMatrix {
	rows, inner, cols := len(a), len(b), len(b[0])
	out := newGFMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			var acc byte
			for k := 0; k < inner; k++ {
				acc ^= gfMul(a[i][k], b[k][j])
			}
			out[i][j] = acc
		}
	}
	return out
}

// invert returns the inverse via Gauss-Jordan elimination; it fails only on
// a singular matrix (which the Vandermonde construction rules out for any
// k-subset of rows).
func (a gfMatrix) invert() (gfMatrix, error) {
	n := len(a)
	work := newGFMatrix(n, 2*n)
	for i := 0; i < n; i++ {
		copy(work[i], a[i])
		work[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("stable: singular GF matrix")
		}
		work[col], work[pivot] = work[pivot], work[col]
		if p := work[col][col]; p != 1 {
			for j := 0; j < 2*n; j++ {
				work[col][j] = gfDiv(work[col][j], p)
			}
		}
		for r := 0; r < n; r++ {
			if r == col || work[r][col] == 0 {
				continue
			}
			f := work[r][col]
			for j := 0; j < 2*n; j++ {
				work[r][j] ^= gfMul(f, work[col][j])
			}
		}
	}
	out := newGFMatrix(n, n)
	for i := 0; i < n; i++ {
		copy(out[i], work[i][n:])
	}
	return out, nil
}

// rsMatrixCache memoizes encoding matrices per (k, m): the matrix is a
// pure constant of the geometry, and rebuilding it (including a k×k
// inversion) on every commit would be hot-path work for nothing.
var rsMatrixCache sync.Map // [2]int -> gfMatrix

// rsEncodeMatrix returns the systematic (k+m)×k encoding matrix: the top k
// rows are the identity (data shards pass through unchanged), the bottom m
// rows generate parity. It is derived from a (k+m)×k Vandermonde matrix by
// normalizing its top square to the identity; every k×k submatrix of a
// Vandermonde matrix with distinct evaluation points is invertible, a
// property the normalization preserves — so ANY k surviving shards
// reconstruct the data.
func rsEncodeMatrix(k, m int) gfMatrix {
	key := [2]int{k, m}
	if cached, ok := rsMatrixCache.Load(key); ok {
		return cached.(gfMatrix)
	}
	mat := buildRSEncodeMatrix(k, m)
	rsMatrixCache.Store(key, mat)
	return mat
}

func buildRSEncodeMatrix(k, m int) gfMatrix {
	vand := newGFMatrix(k+m, k)
	for r := 0; r < k+m; r++ {
		// Row r evaluates at point r: entry j = r^j.
		e := byte(1)
		for j := 0; j < k; j++ {
			vand[r][j] = e
			e = gfMul(e, gfPoint(r))
		}
	}
	top := newGFMatrix(k, k)
	for i := 0; i < k; i++ {
		copy(top[i], vand[i])
	}
	topInv, err := top.invert()
	if err != nil {
		panic(err) // distinct points: cannot happen
	}
	return vand.mul(topInv)
}

// gfPoint maps a row index to its distinct evaluation point. Index 0 maps
// to 0 so row 0 of the raw Vandermonde is [1 0 0 ...]; all points are
// distinct for r < 256.
func gfPoint(r int) byte { return byte(r) }

type rsCodec struct{ k, m int }

func (c rsCodec) Name() string      { return "rs" }
func (c rsCodec) ID() uint8         { return CodecRS }
func (c rsCodec) DataShards() int   { return c.k }
func (c rsCodec) ParityShards() int { return c.m }

func (c rsCodec) Encode(blob []byte) ([][]byte, error) {
	sz := shardSize(len(blob), c.k)
	shards := dataShards(blob, c.k, sz)
	enc := rsEncodeMatrix(c.k, c.m)
	for p := 0; p < c.m; p++ {
		row := enc[c.k+p]
		parity := make([]byte, sz)
		for j := 0; j < c.k; j++ {
			coef := row[j]
			if coef == 0 {
				continue
			}
			data := shards[j]
			for i := 0; i < sz; i++ {
				parity[i] ^= gfMul(coef, data[i])
			}
		}
		shards = append(shards, parity)
	}
	return shards, nil
}

func (c rsCodec) Decode(shards [][]byte, total int) ([]byte, error) {
	if len(shards) != c.k+c.m {
		return nil, fmt.Errorf("stable: rs expects %d shards, got %d", c.k+c.m, len(shards))
	}
	// Fast path: all data shards survived.
	allData := true
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			allData = false
			break
		}
	}
	if !allData {
		var have []int
		sz := -1
		for i, s := range shards {
			if s == nil {
				continue
			}
			if sz < 0 {
				sz = len(s)
			} else if len(s) != sz {
				return nil, fmt.Errorf("stable: rs shard %d length %d != %d", i, len(s), sz)
			}
			have = append(have, i)
			if len(have) == c.k {
				break
			}
		}
		if len(have) < c.k {
			return nil, fmt.Errorf("stable: rs has %d of %d required shards", len(have), c.k)
		}
		enc := rsEncodeMatrix(c.k, c.m)
		sub := newGFMatrix(c.k, c.k)
		for r, idx := range have {
			copy(sub[r], enc[idx])
		}
		inv, err := sub.invert()
		if err != nil {
			return nil, err
		}
		repaired := append([][]byte(nil), shards...)
		for d := 0; d < c.k; d++ {
			if repaired[d] != nil {
				continue
			}
			out := make([]byte, sz)
			for r, idx := range have {
				coef := inv[d][r]
				if coef == 0 {
					continue
				}
				src := shards[idx]
				for i := 0; i < sz; i++ {
					out[i] ^= gfMul(coef, src[i])
				}
			}
			repaired[d] = out
		}
		shards = repaired
	}
	blob := joinShards(shards, c.k, total)
	if blob == nil {
		return nil, fmt.Errorf("stable: rs reassembly shorter than %d bytes", total)
	}
	return blob, nil
}
