package cluster_test

import (
	"sync"
	"testing"
	"time"

	"c3/internal/ckpt"
	"c3/internal/cluster"
	"c3/internal/sched"
	"c3/internal/stable"
)

// commitLogStore wraps a Store and records, per rank, the order in which
// versions reached durable commit — the observable the async pipeline's
// commit fence is specified by.
type commitLogStore struct {
	stable.Store
	mu      sync.Mutex
	commits map[int][]int
}

func newCommitLogStore(inner stable.Store) *commitLogStore {
	return &commitLogStore{Store: inner, commits: make(map[int][]int)}
}

func (s *commitLogStore) Begin(rank, version int) (stable.Checkpoint, error) {
	ck, err := s.Store.Begin(rank, version)
	if err != nil {
		return nil, err
	}
	return &commitLogHandle{store: s, rank: rank, version: version, inner: ck}, nil
}

func (s *commitLogStore) log(rank, version int) {
	s.mu.Lock()
	s.commits[rank] = append(s.commits[rank], version)
	s.mu.Unlock()
}

func (s *commitLogStore) perRank() map[int][]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int][]int, len(s.commits))
	for r, vs := range s.commits {
		out[r] = append([]int(nil), vs...)
	}
	return out
}

type commitLogHandle struct {
	store   *commitLogStore
	rank    int
	version int
	inner   stable.Checkpoint
}

func (h *commitLogHandle) WriteSection(name string, data []byte) error {
	return h.inner.WriteSection(name, data)
}

func (h *commitLogHandle) Commit() error {
	if err := h.inner.Commit(); err != nil {
		return err
	}
	h.store.log(h.rank, h.version)
	return nil
}

func (h *commitLogHandle) Abort() error { return h.inner.Abort() }

// TestAsyncCommitMatchesBlocking runs the deterministic stress workload in
// both commit modes and requires identical per-rank checksums: the async
// pipeline must not change what gets saved, only when the store sees it.
func TestAsyncCommitMatchesBlocking(t *testing.T) {
	const ranks, iters = 5, 12
	var ref sync.Map
	run(t, cluster.Config{Ranks: ranks, App: sched.StressApp(iters, &ref)})

	var got sync.Map
	cfg := cluster.Config{
		Ranks:  ranks,
		App:    sched.StressApp(iters, &got),
		Policy: ckpt.Policy{EveryNthPragma: 3, AsyncCommit: true},
	}
	res := run(t, cfg)
	for r := 0; r < ranks; r++ {
		want, _ := ref.Load(r)
		gotv, _ := got.Load(r)
		if want != gotv {
			t.Errorf("rank %d checksum diverged under async commit: %v vs %v", r, gotv, want)
		}
	}
	var async uint64
	for _, rs := range res.Stats {
		async += rs.Stats.AsyncCommits
	}
	if async == 0 {
		t.Fatal("no line went through the async pipeline")
	}
}

// TestAsyncCommitFenceOrdering delays the store so several captured lines
// are in flight behind the committer, and verifies the commit fence: every
// rank's versions reach durable commit strictly in order, with no line
// skipped — recovery can never observe line k+1 without line k.
func TestAsyncCommitFenceOrdering(t *testing.T) {
	const ranks, iters = 4, 10
	store := newCommitLogStore(stable.NewDelayedStore(stable.NewMemStore(), 2*time.Millisecond, 0))
	var got sync.Map
	cfg := cluster.Config{
		Ranks:  ranks,
		App:    sched.StressApp(iters, &got),
		Store:  store,
		Policy: ckpt.Policy{EveryNthPragma: 2, AsyncCommit: true},
	}
	run(t, cfg)
	for r, versions := range store.perRank() {
		if len(versions) == 0 {
			t.Fatalf("rank %d committed nothing", r)
		}
		for i, v := range versions {
			if v != i+1 {
				t.Fatalf("rank %d commit order %v violates the fence at position %d", r, versions, i)
			}
		}
	}
}

// TestAsyncFailureMidCommit injects a fail-stop failure while the victim's
// committer is still writing earlier lines (the store is slow), so
// in-flight captures must be discarded — never half-committed — and the
// world must restart from the last durable line with correct state.
func TestAsyncFailureMidCommit(t *testing.T) {
	const ranks, iters = 3, 12
	var ref sync.Map
	run(t, cluster.Config{Ranks: ranks, App: sched.StressApp(iters, &ref)})

	store := newCommitLogStore(stable.NewDelayedStore(stable.NewMemStore(), 5*time.Millisecond, 0))
	var got sync.Map
	cfg := cluster.Config{
		Ranks:    ranks,
		App:      sched.StressApp(iters, &got),
		Store:    store,
		Policy:   ckpt.Policy{EveryNthPragma: 2, AsyncCommit: true},
		Failures: []cluster.FailureSpec{{Rank: 1, AtPragma: 5, AfterCheckpoints: 2}},
	}
	res := run(t, cfg)
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Attempts)
	}
	for r := 0; r < ranks; r++ {
		want, _ := ref.Load(r)
		gotv, _ := got.Load(r)
		if want != gotv {
			t.Errorf("rank %d checksum diverged after mid-commit failure: %v vs %v", r, gotv, want)
		}
	}
	for r, versions := range store.perRank() {
		seen := make(map[int]bool)
		last := 0
		for _, v := range versions {
			if seen[v] {
				continue // recommitted after restart; fine
			}
			seen[v] = true
			if v < last {
				t.Fatalf("rank %d commit order %v moved backwards", r, versions)
			}
			last = v
		}
	}
}

// TestAsyncRetireKeepsFailedPeersLine pins the garbage-collection floor
// regression: with a slow store and a checkpoint at every pragma, a
// failing rank's durable watermark trails its epoch by up to three lines
// (two protocol-committed lines die in the pipeline). Survivors must not
// have retired the line the global reduction then picks — before the
// asyncPipelineDepth allowance in enterRecvOnlyLog, this failed with
// "open checkpoint: not found" on a surviving rank.
func TestAsyncRetireKeepsFailedPeersLine(t *testing.T) {
	for i := 0; i < 5; i++ {
		var got sync.Map
		cfg := cluster.Config{
			Ranks:    3,
			App:      sched.StressApp(20, &got),
			Store:    stable.NewDelayedStore(stable.NewMemStore(), 3*time.Millisecond, 0),
			Policy:   ckpt.Policy{EveryNthPragma: 1, AsyncCommit: true},
			Failures: []cluster.FailureSpec{{Rank: 1, AtPragma: 15, AfterCheckpoints: 5}},
		}
		run(t, cfg)
	}
}

// TestAsyncReplicatedSurvivesFailure is the headline scenario: asynchronous
// commit into the diskless replicated store, a fail-stop failure that wipes
// the victim's node memory, and recovery that reassembles the victim's last
// committed line from surviving peers — no disk store configured anywhere.
func TestAsyncReplicatedSurvivesFailure(t *testing.T) {
	const ranks, iters = 5, 12
	var ref sync.Map
	run(t, cluster.Config{Ranks: ranks, App: sched.StressApp(iters, &ref)})

	store := stable.NewReplicatedStore(ranks)
	defer store.Close()
	var got sync.Map
	cfg := cluster.Config{
		Ranks:    ranks,
		App:      sched.StressApp(iters, &got),
		Store:    store,
		Policy:   ckpt.Policy{EveryNthPragma: 3, AsyncCommit: true},
		Failures: []cluster.FailureSpec{{Rank: 2, AtPragma: 8, AfterCheckpoints: 2}},
	}
	res := run(t, cfg)
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Attempts)
	}
	for r := 0; r < ranks; r++ {
		want, _ := ref.Load(r)
		gotv, ok := got.Load(r)
		if !ok {
			t.Fatalf("rank %d has no result", r)
		}
		if want != gotv {
			t.Errorf("rank %d checksum diverged: recovered %v, failure-free %v", r, gotv, want)
		}
	}
	var restores uint64
	for _, rs := range res.Stats {
		restores += rs.Stats.Restores
	}
	if restores == 0 {
		t.Fatal("final attempt did not restore from a recovery line")
	}
	if store.Reassemblies() == 0 {
		t.Fatal("the failed rank's line should have been reassembled from peer fragments")
	}
	if st := store.NetworkStats(); st.MessagesSent == 0 {
		t.Fatal("replication should have used the transport")
	}
}

// TestReplicatedBlockingCommitAlsoRecovers checks the replicated store is
// not tied to the async pipeline: synchronous commits replicate and recover
// the same way.
func TestReplicatedBlockingCommitAlsoRecovers(t *testing.T) {
	const ranks, iters = 4, 10
	var ref sync.Map
	run(t, cluster.Config{Ranks: ranks, App: sched.StressApp(iters, &ref)})

	store := stable.NewReplicatedStore(ranks)
	defer store.Close()
	var got sync.Map
	cfg := cluster.Config{
		Ranks:    ranks,
		App:      sched.StressApp(iters, &got),
		Store:    store,
		Policy:   ckpt.Policy{EveryNthPragma: 3},
		Failures: []cluster.FailureSpec{{Rank: 0, AtPragma: 7, AfterCheckpoints: 1}},
	}
	run(t, cfg)
	for r := 0; r < ranks; r++ {
		want, _ := ref.Load(r)
		gotv, _ := got.Load(r)
		if want != gotv {
			t.Errorf("rank %d checksum diverged: %v vs %v", r, gotv, want)
		}
	}
}
