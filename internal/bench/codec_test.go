package bench

import (
	"strconv"
	"strings"
	"testing"

	"c3/internal/apps"
)

// TestAblationCodecAcceptance runs the codec ablation at the smoke size
// and enforces the acceptance criterion: rs k=4,m=2 stores at most 0.6x
// the per-rank bytes of dup +1/+2 replication at equal fault tolerance.
func TestAblationCodecAcceptance(t *testing.T) {
	tab, err := AblationCodec(Options{Class: apps.ClassS})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	byName := map[string][]string{}
	for _, row := range tab.Rows {
		byName[row[0]] = row
	}
	rs, ok := byName["rs"]
	if !ok {
		t.Fatal("no rs row")
	}
	if got := rs[2]; got != "2 losses" {
		t.Fatalf("rs tolerance column = %q", got)
	}
	ratio, err := strconv.ParseFloat(strings.TrimSuffix(rs[5], "x"), 64)
	if err != nil {
		t.Fatalf("rs ratio cell %q: %v", rs[5], err)
	}
	if ratio > 0.6 {
		t.Fatalf("rs stored-per-rank ratio %.3f > 0.6x dup (acceptance criterion)", ratio)
	}
	// And xor sits below rs (one parity shard instead of two).
	xr, ok := byName["xor"]
	if !ok {
		t.Fatal("no xor row")
	}
	xratio, err := strconv.ParseFloat(strings.TrimSuffix(xr[5], "x"), 64)
	if err != nil || xratio >= ratio {
		t.Fatalf("xor ratio %q not below rs %q", xr[5], rs[5])
	}
}
