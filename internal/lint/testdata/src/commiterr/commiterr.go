// Fixture for c3commiterr: type-checked under the governed import path
// c3/internal/stable by the test harness. The store methods mirror the
// stable.Store / snapshot surface whose errors form the fsync-ordered
// commit chain.
package stable

import "os"

type store struct{}

func (store) Sync() error                    { return nil }
func (store) Commit() error                  { return nil }
func (store) WriteSection(name string) error { return nil }
func (store) Close() error                   { return nil }
func (store) Abort() error                   { return nil }

func commit(s store) error {
	s.Sync()       // want `store\.Sync error silently dropped on the commit/restore path`
	_ = s.Commit() // want `store\.Commit error explicitly discarded on the commit/restore path`
	if err := s.WriteSection("data"); err != nil {
		return err
	}
	os.Rename("staged", "committed") // want `os\.Rename error silently dropped`
	go s.Commit()                    // want `go store\.Commit drops its error`
	return s.Sync()
}

func teardown(s store) error {
	s.Close()       // want `store\.Close error silently dropped`
	_ = s.Close()   // explicit best-effort discard of a cleanup call: accepted
	defer s.Close() // deferred cleanup: accepted
	defer s.Sync()  // want `deferred store\.Sync drops its error`
	return nil
}

// Methods outside the governed name sets, and error-less methods, are not
// this analyzer's business.
type gauge struct{}

func (gauge) Add(int)     {}
func (gauge) Sync() int64 { return 0 } // returns no error: out of scope

func untouched(g gauge) {
	g.Add(1)
	g.Sync()
}
