package mpi

import (
	"fmt"
	"sync"
	"testing"
)

// runRanks executes fn once per rank, each on its own goroutine, and fails
// the test on any error.
func runRanks(t *testing.T, n int, fn func(p *Proc) error) *World {
	t.Helper()
	w := NewWorld(n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(w.Proc(r))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return w
}

func TestSendRecvBasic(t *testing.T) {
	runRanks(t, 2, func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			return c.SendBytes([]byte("hello"), 1, 7)
		}
		buf := make([]byte, 16)
		st, err := c.RecvBytes(buf, 0, 7)
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 7 || st.Bytes != 5 {
			return fmt.Errorf("status %+v", st)
		}
		if string(buf[:5]) != "hello" {
			return fmt.Errorf("payload %q", buf[:5])
		}
		return nil
	})
}

func TestNonOvertakingSameSignature(t *testing.T) {
	const k = 50
	runRanks(t, 2, func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			for i := 0; i < k; i++ {
				if err := c.SendBytes([]byte{byte(i)}, 1, 3); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < k; i++ {
			buf := make([]byte, 1)
			if _, err := c.RecvBytes(buf, 0, 3); err != nil {
				return err
			}
			if buf[0] != byte(i) {
				return fmt.Errorf("message %d arrived out of order (got %d)", i, buf[0])
			}
		}
		return nil
	})
}

func TestTagSelectionReordersAcrossSignatures(t *testing.T) {
	// Sender sends tag 1 then tag 2; receiver chooses tag 2 first. This is
	// the application-chosen receive order the paper highlights in §2.4.
	runRanks(t, 2, func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			if err := c.SendBytes([]byte{1}, 1, 1); err != nil {
				return err
			}
			return c.SendBytes([]byte{2}, 1, 2)
		}
		buf := make([]byte, 1)
		if _, err := c.RecvBytes(buf, 0, 2); err != nil {
			return err
		}
		if buf[0] != 2 {
			return fmt.Errorf("tag-2 receive got payload %d", buf[0])
		}
		if _, err := c.RecvBytes(buf, 0, 1); err != nil {
			return err
		}
		if buf[0] != 1 {
			return fmt.Errorf("tag-1 receive got payload %d", buf[0])
		}
		return nil
	})
}

func TestWildcardSourceAndTag(t *testing.T) {
	runRanks(t, 3, func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() != 0 {
			return c.SendBytes([]byte{byte(p.Rank())}, 0, 10+p.Rank())
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			buf := make([]byte, 1)
			st, err := c.RecvBytes(buf, AnySource, AnyTag)
			if err != nil {
				return err
			}
			if int(buf[0]) != st.Source || st.Tag != 10+st.Source {
				return fmt.Errorf("mismatched status %+v payload %d", st, buf[0])
			}
			seen[st.Source] = true
		}
		if !seen[1] || !seen[2] {
			return fmt.Errorf("missing sources: %v", seen)
		}
		return nil
	})
}

func TestIsendIrecvWaitTest(t *testing.T) {
	runRanks(t, 2, func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			req, err := c.Isend([]byte{42}, 1, TypeByte, 1, 5)
			if err != nil {
				return err
			}
			if !req.Done() {
				return fmt.Errorf("eager send not complete")
			}
			_, err = req.Wait()
			return err
		}
		buf := make([]byte, 1)
		req, err := c.Irecv(buf, 1, TypeByte, 0, 5)
		if err != nil {
			return err
		}
		st, err := req.Wait()
		if err != nil {
			return err
		}
		if st.Bytes != 1 || buf[0] != 42 {
			return fmt.Errorf("bad completion st=%+v buf=%v", st, buf)
		}
		return nil
	})
}

func TestPostedReceiveMatchOrder(t *testing.T) {
	// Two posted wildcard receives must complete in post order.
	runRanks(t, 2, func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			if err := c.SendBytes([]byte{1}, 1, 9); err != nil {
				return err
			}
			return c.SendBytes([]byte{2}, 1, 9)
		}
		b1 := make([]byte, 1)
		b2 := make([]byte, 1)
		r1, err := c.Irecv(b1, 1, TypeByte, AnySource, 9)
		if err != nil {
			return err
		}
		r2, err := c.Irecv(b2, 1, TypeByte, AnySource, 9)
		if err != nil {
			return err
		}
		if _, err := r1.Wait(); err != nil {
			return err
		}
		if _, err := r2.Wait(); err != nil {
			return err
		}
		if b1[0] != 1 || b2[0] != 2 {
			return fmt.Errorf("posted order violated: %d, %d", b1[0], b2[0])
		}
		return nil
	})
}

func TestSendrecvExchange(t *testing.T) {
	runRanks(t, 2, func(p *Proc) error {
		c := p.CommWorld()
		other := 1 - p.Rank()
		out := []byte{byte(p.Rank() + 100)}
		in := make([]byte, 1)
		st, err := c.Sendrecv(out, 1, TypeByte, other, 4, in, 1, TypeByte, other, 4)
		if err != nil {
			return err
		}
		if in[0] != byte(other+100) || st.Source != other {
			return fmt.Errorf("exchange got %d from %d", in[0], st.Source)
		}
		return nil
	})
}

func TestTruncationError(t *testing.T) {
	runRanks(t, 2, func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			return c.SendBytes(make([]byte, 10), 1, 1)
		}
		buf := make([]byte, 4)
		_, err := c.RecvBytes(buf, 0, 1)
		if err == nil {
			return fmt.Errorf("expected truncation error")
		}
		return nil
	})
}

func TestProbeAndIprobe(t *testing.T) {
	runRanks(t, 2, func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			return c.SendBytes([]byte("xyz"), 1, 8)
		}
		st, err := c.Probe(0, 8)
		if err != nil {
			return err
		}
		if st.Bytes != 3 {
			return fmt.Errorf("probe bytes %d", st.Bytes)
		}
		// Probe must not consume: the message is still receivable.
		buf := make([]byte, 3)
		if _, err := c.RecvBytes(buf, 0, 8); err != nil {
			return err
		}
		_, found, err := c.Iprobe(0, 8)
		if err != nil {
			return err
		}
		if found {
			return fmt.Errorf("iprobe found message after receive")
		}
		return nil
	})
}

func TestBarrier(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runRanks(t, n, func(p *Proc) error {
				for i := 0; i < 3; i++ {
					if err := p.CommWorld().Barrier(); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
}

func TestBcast(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		for root := 0; root < n; root += 3 {
			n, root := n, root
			t.Run(fmt.Sprintf("n=%d root=%d", n, root), func(t *testing.T) {
				runRanks(t, n, func(p *Proc) error {
					c := p.CommWorld()
					buf := make([]byte, 8*4)
					if p.Rank() == root {
						PutFloat64s(buf, []float64{1, 2, 3, 4})
					}
					if err := c.Bcast(buf, 4, TypeFloat64, root); err != nil {
						return err
					}
					got := BytesFloat64s(buf)
					for i, v := range got {
						if v != float64(i+1) {
							return fmt.Errorf("element %d = %v", i, v)
						}
					}
					return nil
				})
			})
		}
	}
}

func TestGatherScatter(t *testing.T) {
	const n = 4
	runRanks(t, n, func(p *Proc) error {
		c := p.CommWorld()
		mine := []byte{byte(p.Rank())}
		all := make([]byte, n)
		if err := c.Gather(mine, 1, TypeByte, all, 1, TypeByte, 2); err != nil {
			return err
		}
		if p.Rank() == 2 {
			for i := 0; i < n; i++ {
				if all[i] != byte(i) {
					return fmt.Errorf("gather slot %d = %d", i, all[i])
				}
			}
		}
		// Scatter back doubled values from rank 2.
		var send []byte
		if p.Rank() == 2 {
			send = make([]byte, n)
			for i := range send {
				send[i] = byte(2 * i)
			}
		}
		recv := make([]byte, 1)
		if err := c.Scatter(send, 1, TypeByte, recv, 1, TypeByte, 2); err != nil {
			return err
		}
		if recv[0] != byte(2*p.Rank()) {
			return fmt.Errorf("scatter got %d", recv[0])
		}
		return nil
	})
}

func TestAllgatherAlltoall(t *testing.T) {
	const n = 5
	runRanks(t, n, func(p *Proc) error {
		c := p.CommWorld()
		mine := []byte{byte(p.Rank() + 1)}
		all := make([]byte, n)
		if err := c.Allgather(mine, 1, TypeByte, all); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if all[i] != byte(i+1) {
				return fmt.Errorf("allgather slot %d = %d", i, all[i])
			}
		}
		send := make([]byte, n)
		for j := range send {
			send[j] = byte(10*p.Rank() + j)
		}
		recv := make([]byte, n)
		if err := c.Alltoall(send, 1, TypeByte, recv); err != nil {
			return err
		}
		for j := 0; j < n; j++ {
			if recv[j] != byte(10*j+p.Rank()) {
				return fmt.Errorf("alltoall slot %d = %d", j, recv[j])
			}
		}
		return nil
	})
}

func TestAlltoallv(t *testing.T) {
	const n = 3
	runRanks(t, n, func(p *Proc) error {
		c := p.CommWorld()
		r := p.Rank()
		// Rank r sends (j+1) bytes of value r*10+j to rank j.
		sendCounts := make([]int, n)
		sendDispls := make([]int, n)
		total := 0
		for j := 0; j < n; j++ {
			sendCounts[j] = j + 1
			sendDispls[j] = total
			total += j + 1
		}
		sendBuf := make([]byte, total)
		for j := 0; j < n; j++ {
			for k := 0; k < sendCounts[j]; k++ {
				sendBuf[sendDispls[j]+k] = byte(r*10 + j)
			}
		}
		recvCounts := make([]int, n)
		recvDispls := make([]int, n)
		rtotal := 0
		for j := 0; j < n; j++ {
			recvCounts[j] = r + 1
			recvDispls[j] = rtotal
			rtotal += r + 1
		}
		recvBuf := make([]byte, rtotal)
		if err := c.Alltoallv(sendBuf, sendCounts, sendDispls, recvBuf, recvCounts, recvDispls); err != nil {
			return err
		}
		for j := 0; j < n; j++ {
			for k := 0; k < recvCounts[j]; k++ {
				want := byte(j*10 + r)
				if got := recvBuf[recvDispls[j]+k]; got != want {
					return fmt.Errorf("from %d byte %d: got %d want %d", j, k, got, want)
				}
			}
		}
		return nil
	})
}

func TestReduceAllreduceScan(t *testing.T) {
	const n = 6
	runRanks(t, n, func(p *Proc) error {
		c := p.CommWorld()
		r := p.Rank()
		in := Float64Bytes([]float64{float64(r + 1)})
		out := make([]byte, 8)
		if err := c.Reduce(in, out, 1, TypeFloat64, OpSum, 3); err != nil {
			return err
		}
		if r == 3 {
			if got := BytesFloat64s(out)[0]; got != 21 {
				return fmt.Errorf("reduce sum = %v", got)
			}
		}
		if err := c.Allreduce(in, out, 1, TypeFloat64, OpMax); err != nil {
			return err
		}
		if got := BytesFloat64s(out)[0]; got != float64(n) {
			return fmt.Errorf("allreduce max = %v", got)
		}
		if err := c.Scan(in, out, 1, TypeFloat64, OpSum); err != nil {
			return err
		}
		want := float64((r + 1) * (r + 2) / 2)
		if got := BytesFloat64s(out)[0]; got != want {
			return fmt.Errorf("scan = %v, want %v", got, want)
		}
		return nil
	})
}

func TestReduceInt64AndUserOp(t *testing.T) {
	const n = 4
	gcd := func(a, b int64) int64 {
		for b != 0 {
			a, b = b, a%b
		}
		return a
	}
	opGCD := NewOp("gcd", true, func(in, inout []byte, kind PrimKind, count int) error {
		if kind != KInt64 {
			return fmt.Errorf("gcd needs int64")
		}
		a := BytesInt64s(in)
		b := BytesInt64s(inout)
		for i := 0; i < count; i++ {
			b[i] = gcd(a[i], b[i])
		}
		PutInt64s(inout, b)
		return nil
	})
	runRanks(t, n, func(p *Proc) error {
		c := p.CommWorld()
		in := Int64Bytes([]int64{int64(12 * (p.Rank() + 1))})
		out := make([]byte, 8)
		if err := c.Allreduce(in, out, 1, TypeInt64, opGCD); err != nil {
			return err
		}
		if got := BytesInt64s(out)[0]; got != 12 {
			return fmt.Errorf("gcd = %d", got)
		}
		return nil
	})
}

func TestCommDupIsolation(t *testing.T) {
	runRanks(t, 2, func(p *Proc) error {
		c := p.CommWorld()
		dup, err := c.Dup()
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			// Same tag, different communicators: must not cross-match.
			if err := c.SendBytes([]byte{1}, 1, 5); err != nil {
				return err
			}
			return dup.SendBytes([]byte{2}, 1, 5)
		}
		buf := make([]byte, 1)
		if _, err := dup.RecvBytes(buf, 0, 5); err != nil {
			return err
		}
		if buf[0] != 2 {
			return fmt.Errorf("dup comm got %d", buf[0])
		}
		if _, err := c.RecvBytes(buf, 0, 5); err != nil {
			return err
		}
		if buf[0] != 1 {
			return fmt.Errorf("world comm got %d", buf[0])
		}
		return nil
	})
}

func TestCommSplit(t *testing.T) {
	const n = 6
	runRanks(t, n, func(p *Proc) error {
		c := p.CommWorld()
		color := p.Rank() % 2
		sub, err := c.Split(color, -p.Rank()) // reverse order within color
		if err != nil {
			return err
		}
		if sub == nil {
			return fmt.Errorf("unexpected nil subcomm")
		}
		if sub.Size() != n/2 {
			return fmt.Errorf("subcomm size %d", sub.Size())
		}
		// Reverse key ordering: highest old rank becomes rank 0.
		wantRank := (n - 2 - p.Rank() + color) / 2
		if sub.Rank() != wantRank {
			return fmt.Errorf("subcomm rank %d, want %d", sub.Rank(), wantRank)
		}
		// Allreduce within the subcomm only sums its members.
		in := Int64Bytes([]int64{int64(p.Rank())})
		out := make([]byte, 8)
		if err := sub.Allreduce(in, out, 1, TypeInt64, OpSum); err != nil {
			return err
		}
		want := int64(0)
		for r := color; r < n; r += 2 {
			want += int64(r)
		}
		if got := BytesInt64s(out)[0]; got != want {
			return fmt.Errorf("subcomm sum %d, want %d", got, want)
		}
		return nil
	})
}

func TestSplitNegativeColor(t *testing.T) {
	const n = 4
	runRanks(t, n, func(p *Proc) error {
		c := p.CommWorld()
		color := 0
		if p.Rank() == 3 {
			color = -1
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if p.Rank() == 3 {
			if sub != nil {
				return fmt.Errorf("rank 3 should get nil subcomm")
			}
			return nil
		}
		if sub == nil || sub.Size() != 3 {
			return fmt.Errorf("subcomm wrong: %v", sub)
		}
		return nil
	})
}

func TestWaitanyWaitsome(t *testing.T) {
	runRanks(t, 3, func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() != 0 {
			return c.SendBytes([]byte{byte(p.Rank())}, 0, 2)
		}
		b1 := make([]byte, 1)
		b2 := make([]byte, 1)
		r1, err := c.Irecv(b1, 1, TypeByte, 1, 2)
		if err != nil {
			return err
		}
		r2, err := c.Irecv(b2, 1, TypeByte, 2, 2)
		if err != nil {
			return err
		}
		reqs := []*Request{r1, r2}
		got := map[int]bool{}
		for len(got) < 2 {
			idx, _, err := Waitany(reqs)
			if err != nil {
				return err
			}
			if idx < 0 {
				return fmt.Errorf("waitany returned -1")
			}
			got[idx] = true
			reqs[idx] = nil
		}
		if b1[0] != 1 || b2[0] != 2 {
			return fmt.Errorf("payloads %d %d", b1[0], b2[0])
		}
		return nil
	})
}

func TestBsendAccounting(t *testing.T) {
	runRanks(t, 2, func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			if err := c.Bsend(make([]byte, 10), 10, TypeByte, 1, 1); err == nil {
				return fmt.Errorf("bsend without attach should fail")
			}
			if err := p.BufferAttach(64); err != nil {
				return err
			}
			if err := c.Bsend(make([]byte, 10), 10, TypeByte, 1, 1); err != nil {
				return err
			}
			if err := c.Bsend(make([]byte, 100), 100, TypeByte, 1, 1); err == nil {
				return fmt.Errorf("oversized bsend should fail")
			}
			if got := p.BufferDetach(); got != 64 {
				return fmt.Errorf("detach returned %d", got)
			}
			return nil
		}
		buf := make([]byte, 10)
		_, err := c.RecvBytes(buf, 0, 1)
		return err
	})
}

func TestKillUnblocksReceive(t *testing.T) {
	w := NewWorld(2)
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := w.Proc(1).CommWorld().RecvBytes(buf, 0, 1)
		done <- err
	}()
	w.Kill(1)
	if err := <-done; err == nil {
		t.Fatal("killed receive returned nil error")
	}
}

func TestAllreduceAux(t *testing.T) {
	const n = 5
	runRanks(t, n, func(p *Proc) error {
		c := p.CommWorld()
		in := Float64Bytes([]float64{float64(p.Rank() + 1)})
		out := make([]byte, 8)
		aux := int64(100 + p.Rank())
		minAux, err := c.AllreduceAux(in, out, 1, TypeFloat64, OpSum, aux)
		if err != nil {
			return err
		}
		if minAux != 100 {
			return fmt.Errorf("aux min = %d, want 100", minAux)
		}
		if got := BytesFloat64s(out)[0]; got != 15 {
			return fmt.Errorf("sum = %v, want 15", got)
		}
		// Reversed aux ordering: the minimum must still win.
		minAux, err = c.AllreduceAux(in, out, 1, TypeFloat64, OpMax, int64(-p.Rank()))
		if err != nil {
			return err
		}
		if minAux != int64(-(n - 1)) {
			return fmt.Errorf("aux min = %d, want %d", minAux, -(n - 1))
		}
		if got := BytesFloat64s(out)[0]; got != n {
			return fmt.Errorf("max = %v, want %d", got, n)
		}
		return nil
	})
}
