// Package driver runs c3lint analyzers over loaded packages and applies
// the //c3lint:allow suppression protocol.
//
// Suppression protocol: a comment of the form
//
//	//c3lint:allow <analyzer> <reason>
//
// suppresses diagnostics of that analyzer on the comment's own line or the
// line directly below it (so it works both as an end-of-line annotation and
// as a standalone comment above the offending statement). The reason is
// mandatory: an allow directive without one is itself a finding, and
// directives that suppress nothing are reported as dead in the Result so
// stale escapes stay visible instead of silently accumulating.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"c3/internal/lint/analysis"
	"c3/internal/lint/load"
)

// A Finding is one post-suppression diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// An Allow is one parsed //c3lint:allow directive.
type Allow struct {
	Pos      token.Position
	Analyzer string
	Reason   string
	used     int // diagnostics suppressed by this directive
}

// A Result aggregates one run over any number of packages.
type Result struct {
	Findings   []Finding // unsuppressed diagnostics, plus directive misuse
	Suppressed int       // diagnostics silenced by a valid allow directive
	Dead       []Allow   // valid directives that suppressed nothing
	Errors     []error   // analyzer/package failures
}

var allowRE = regexp.MustCompile(`^//\s*c3lint:allow(?:\s+(\S+))?\s*(.*)$`)

// Run applies every analyzer to every package and folds in suppressions.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) *Result {
	res := &Result{}
	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, pkg := range pkgs {
		for _, err := range pkg.TypeErrors {
			res.Errors = append(res.Errors, fmt.Errorf("%s: type error: %v", pkg.ImportPath, err))
		}
		res.runPackage(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, analyzers, known)
	}
	sort.Slice(res.Findings, func(i, j int) bool { return less(res.Findings[i].Pos, res.Findings[j].Pos) })
	sort.Slice(res.Dead, func(i, j int) bool { return less(res.Dead[i].Pos, res.Dead[j].Pos) })
	return res
}

func less(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// RunChecked applies analyzers to one already-type-checked package — the
// `go vet -vettool` path, where gc export data replaces the source loader.
func RunChecked(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer) *Result {
	res := &Result{}
	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.Name] = true
	}
	res.runPackage(fset, files, pkg, info, analyzers, known)
	sort.Slice(res.Findings, func(i, j int) bool { return less(res.Findings[i].Pos, res.Findings[j].Pos) })
	sort.Slice(res.Dead, func(i, j int) bool { return less(res.Dead[i].Pos, res.Dead[j].Pos) })
	return res
}

func (res *Result) runPackage(fset *token.FileSet, files []*ast.File, tpkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer, known map[string]bool) {
	allows := res.collectAllows(fset, files, known)
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			TypesInfo: info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			if al := match(allows, a.Name, pos); al != nil {
				al.used++
				res.Suppressed++
				return
			}
			res.Findings = append(res.Findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			res.Errors = append(res.Errors, fmt.Errorf("%s: %s: %v", tpkg.Path(), a.Name, err))
		}
	}
	for _, al := range allows {
		if al.used == 0 {
			res.Dead = append(res.Dead, *al)
		}
	}
}

// collectAllows parses the package's //c3lint:allow directives. Malformed
// directives (missing reason, unknown analyzer) become findings directly.
func (res *Result) collectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) []*Allow {
	var allows []*Allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				name, reason := m[1], strings.TrimSpace(m[2])
				// Directives use the short analyzer name ("determinism");
				// the full "c3determinism" spelling is accepted too.
				if !known[name] && known["c3"+name] {
					name = "c3" + name
				}
				switch {
				case name == "":
					res.Findings = append(res.Findings, Finding{
						Analyzer: "c3lint", Pos: pos,
						Message: "c3lint:allow directive names no analyzer (want //c3lint:allow <analyzer> <reason>)",
					})
				case !known[name]:
					res.Findings = append(res.Findings, Finding{
						Analyzer: "c3lint", Pos: pos,
						Message: fmt.Sprintf("c3lint:allow names unknown analyzer %q", name),
					})
				case reason == "":
					res.Findings = append(res.Findings, Finding{
						Analyzer: "c3lint", Pos: pos,
						Message: fmt.Sprintf("c3lint:allow %s has no reason; justify the exception in-line", name),
					})
				default:
					allows = append(allows, &Allow{Pos: pos, Analyzer: name, Reason: reason})
				}
			}
		}
	}
	return allows
}

// match finds an allow directive covering (analyzer, position): same file,
// same line or the line directly above.
func match(allows []*Allow, analyzer string, pos token.Position) *Allow {
	for _, al := range allows {
		if al.Analyzer != analyzer || al.Pos.Filename != pos.Filename {
			continue
		}
		if al.Pos.Line == pos.Line || al.Pos.Line == pos.Line-1 {
			return al
		}
	}
	return nil
}
