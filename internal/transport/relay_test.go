package transport

import (
	"testing"
	"time"
)

const testKindInner uint8 = 210

func init() {
	RegisterWireDecoder(testKindInner, func(data []byte) (any, error) {
		return kindedPayload{kind: testKindInner, data: data[0]}, nil
	})
}

// relayWorld wires a demux + relay + an inner-kind plane for each rank of
// one shared network.
type relayWorld struct {
	demux  []*Demux
	relays []*Relay
	inner  []Interconnect
}

func newRelayWorld(t *testing.T, n int) *relayWorld {
	t.Helper()
	nw := NewNetwork(n)
	w := &relayWorld{}
	for r := 0; r < n; r++ {
		dm := NewDemux(nw, r)
		w.inner = append(w.inner, dm.Plane(testKindInner))
		rl := NewRelay(dm)
		dm.Start()
		rl.Start()
		w.demux = append(w.demux, dm)
		w.relays = append(w.relays, rl)
	}
	t.Cleanup(func() {
		for r := range w.relays {
			w.relays[r].Close()
			w.demux[r].Close()
		}
	})
	return w
}

func (w *relayWorld) recv(t *testing.T, rank int) Message {
	t.Helper()
	msg, err := w.inner[rank].Endpoint(rank).Recv()
	if err != nil {
		t.Fatalf("rank %d recv: %v", rank, err)
	}
	return msg
}

// TestRelayTwoHop: a payload sent 0 -> via 1 -> 2 arrives on rank 2's
// inner plane attributed to rank 0 (the original sender keeps the liveness
// credit), with rank 1 counting the forward and rank 2 the delivery.
func TestRelayTwoHop(t *testing.T) {
	w := newRelayWorld(t, 3)
	if err := w.relays[0].Send(1, 2, kindedPayload{kind: testKindInner, data: 42}); err != nil {
		t.Fatalf("relay send: %v", err)
	}
	msg := w.recv(t, 2)
	if msg.From != 0 {
		t.Errorf("relayed message From = %d, want 0 (original sender)", msg.From)
	}
	if p := msg.Payload.(kindedPayload); p.data != 42 {
		t.Errorf("relayed payload = %+v", p)
	}
	deadline := time.Now().Add(2 * time.Second)
	for w.relays[1].Forwarded() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := w.relays[1].Forwarded(); got != 1 {
		t.Errorf("intermediate forwarded = %d, want 1", got)
	}
	if got := w.relays[2].Delivered(); got != 1 {
		t.Errorf("destination delivered = %d, want 1", got)
	}
}

// TestRelayShortCircuits: via == self and via == dest skip the middle hop;
// dest == self never touches the wire at all.
func TestRelayShortCircuits(t *testing.T) {
	w := newRelayWorld(t, 3)
	// via == dest: direct send.
	if err := w.relays[0].Send(2, 2, kindedPayload{kind: testKindInner, data: 1}); err != nil {
		t.Fatalf("send via==dest: %v", err)
	}
	if msg := w.recv(t, 2); msg.From != 0 || msg.Payload.(kindedPayload).data != 1 {
		t.Fatalf("via==dest delivery = %+v", msg)
	}
	// via == self: direct send.
	if err := w.relays[0].Send(0, 1, kindedPayload{kind: testKindInner, data: 2}); err != nil {
		t.Fatalf("send via==self: %v", err)
	}
	if msg := w.recv(t, 1); msg.From != 0 || msg.Payload.(kindedPayload).data != 2 {
		t.Fatalf("via==self delivery = %+v", msg)
	}
	// dest == self: local injection.
	if err := w.relays[1].Send(2, 1, kindedPayload{kind: testKindInner, data: 3}); err != nil {
		t.Fatalf("send dest==self: %v", err)
	}
	if msg := w.recv(t, 1); msg.From != 1 || msg.Payload.(kindedPayload).data != 3 {
		t.Fatalf("dest==self delivery = %+v", msg)
	}
	if f := w.relays[0].Forwarded() + w.relays[1].Forwarded() + w.relays[2].Forwarded(); f != 0 {
		t.Errorf("short-circuit paths forwarded %d frames, want 0", f)
	}
}

// TestRelayHopBudget: a frame whose hop budget is exhausted is dropped at
// the intermediate instead of orbiting.
func TestRelayHopBudget(t *testing.T) {
	w := newRelayWorld(t, 3)
	inner := kindedPayload{kind: testKindInner, data: 9}
	p := &RelayPayload{Orig: 0, Dest: 2, Kind: testKindInner, Data: inner.MarshalWire(), Hops: 0}
	if err := w.demux[0].Plane(WireKindRelay).Send(Message{From: 0, To: 1, Class: Control, Payload: p}); err != nil {
		t.Fatalf("send: %v", err)
	}
	// The live frame below proves the dead one had time to be processed.
	if err := w.relays[0].Send(1, 2, kindedPayload{kind: testKindInner, data: 10}); err != nil {
		t.Fatalf("send live: %v", err)
	}
	if msg := w.recv(t, 2); msg.Payload.(kindedPayload).data != 10 {
		t.Fatalf("live frame payload = %+v, want 10 (hops-exhausted frame must not arrive)", msg)
	}
	if got := w.relays[2].Delivered(); got != 1 {
		t.Errorf("destination delivered = %d, want only the live frame", got)
	}
}

// TestRelayWireRoundtrip: the relay payload survives its wire encoding
// (the TCP mesh path).
func TestRelayWireRoundtrip(t *testing.T) {
	p := &RelayPayload{Orig: 3, Dest: 7, Kind: testKindInner, Data: []byte{1, 2, 3}, Hops: 2}
	decoded, err := DecodeWirePayload(WireKindRelay, p.MarshalWire())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	got := decoded.(*RelayPayload)
	if got.Orig != 3 || got.Dest != 7 || got.Kind != testKindInner || got.Hops != 2 || len(got.Data) != 3 {
		t.Fatalf("roundtrip = %+v", got)
	}
}
