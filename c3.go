// Package c3 is the public API of the C3-Go reproduction: a scalable
// application-level checkpoint-recovery system for message-passing programs,
// after Schulz, Bronevetsky, Fernandes, Marques, Pingali and Stodghill,
// "Implementation and Evaluation of a Scalable Application-level
// Checkpoint-Recovery Scheme for MPI Programs" (SC 2004).
//
// Applications are functions of an Env. They register their state, call
// Restore once, and mark potential checkpoint locations with Checkpoint —
// the analogue of C3's #pragma ccc checkpoint. The runtime launches one
// goroutine per rank over an MPI-semantics message-passing substrate, runs
// the protocol layer between the application and the substrate, injects
// fail-stop failures if asked, and restarts the world from the last
// committed recovery line:
//
//	app := func(env c3.Env) error {
//	    it := env.State().Int("it")
//	    if _, err := env.Restore(); err != nil {
//	        return err
//	    }
//	    for it.Get() < 100 {
//	        // ... compute and communicate via env.World() ...
//	        it.Add(1)
//	        if err := env.Checkpoint(); err != nil {
//	            return err
//	        }
//	    }
//	    return nil
//	}
//	res, err := c3.Run(c3.Config{Ranks: 8, App: app,
//	    Policy: c3.Policy{EveryNthPragma: 10}})
//
// Checkpoints go to a pluggable stable store (memory, disk, or the
// diskless replicated store from NewReplicatedStore); with
// Policy.AsyncCommit the write-out runs on a per-rank background committer
// so the application resumes immediately after local capture.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured evaluation.
package c3

import (
	"c3/internal/ckpt"
	"c3/internal/cluster"
	"c3/internal/mpi"
	"c3/internal/stable"
	"c3/internal/statesave"
	"c3/internal/transport"
)

// Env is the per-rank application environment: world access, registered
// state, and the checkpoint pragma.
type Env = cluster.Env

// Comm is the communicator interface applications program against.
type Comm = cluster.Comm

// Config configures a run.
type Config = cluster.Config

// Result reports a completed run.
type Result = cluster.Result

// RankStats carries one rank's protocol counters.
type RankStats = cluster.RankStats

// FailureSpec schedules one injected fail-stop failure.
type FailureSpec = cluster.FailureSpec

// Schedule is a recorded deterministic-scheduler execution (one decision
// trace per restart attempt). Set Config.Seed to run under the virtual
// scheduler and record one; set Config.Replay to re-execute it.
type Schedule = cluster.Schedule

// Policy decides when a checkpoint pragma actually takes a checkpoint.
type Policy = ckpt.Policy

// ProtocolStats aggregates the protocol layer's counters.
type ProtocolStats = ckpt.Stats

// ErrInjectedFailure marks an injected fail-stop failure.
var ErrInjectedFailure = cluster.ErrInjectedFailure

// Run launches the world, runs the application on every rank, and restarts
// from the last committed recovery line after injected failures.
func Run(cfg Config) (*Result, error) { return cluster.Run(cfg) }

// LayerOf extracts the protocol layer from a checkpointed Env (nil when
// running Direct); it exposes Mode, Epoch, Stats and the Sync commit fence.
func LayerOf(env Env) *ckpt.Layer { return cluster.LayerOf(env) }

// Message-passing types re-exported from the substrate.
type (
	// Status describes a completed receive.
	Status = mpi.Status
	// Datatype describes an element layout (primitive or derived).
	Datatype = mpi.Datatype
	// Op is a reduction operation.
	Op = mpi.Op
)

// Receive wildcards.
const (
	// AnySource matches any sender.
	AnySource = mpi.AnySource
	// AnyTag matches any tag.
	AnyTag = mpi.AnyTag
)

// Predefined datatypes.
var (
	TypeByte       = mpi.TypeByte
	TypeInt64      = mpi.TypeInt64
	TypeFloat64    = mpi.TypeFloat64
	TypeComplex128 = mpi.TypeComplex128
)

// Built-in reduction operations.
var (
	OpSum  = mpi.OpSum
	OpProd = mpi.OpProd
	OpMax  = mpi.OpMax
	OpMin  = mpi.OpMin
	OpBAnd = mpi.OpBAnd
	OpBOr  = mpi.OpBOr
	OpBXor = mpi.OpBXor
	OpLAnd = mpi.OpLAnd
	OpLOr  = mpi.OpLOr
)

// Typed-buffer helpers (the packing boundary between Go slices and message
// payloads).
var (
	PutFloat64s    = mpi.PutFloat64s
	GetFloat64s    = mpi.GetFloat64s
	Float64Bytes   = mpi.Float64Bytes
	BytesFloat64s  = mpi.BytesFloat64s
	PutInt64s      = mpi.PutInt64s
	GetInt64s      = mpi.GetInt64s
	Int64Bytes     = mpi.Int64Bytes
	BytesInt64s    = mpi.BytesInt64s
	PutComplex128s = mpi.PutComplex128s
	GetComplex128s = mpi.GetComplex128s
)

// Derived-datatype constructors.
var (
	Contiguous = mpi.Contiguous
	Vector     = mpi.Vector
	Indexed    = mpi.Indexed
	StructType = mpi.Struct
)

// State registration types.
type (
	// StateRegistry holds an application's registered, checkpointed state.
	StateRegistry = statesave.Registry
	// Heap is the checkpointable allocator (live-data-only accounting).
	Heap = statesave.Heap
)

// Stable-storage implementations for checkpoints.
type Store = stable.Store

// Storage constructors.
var (
	// NewMemStore returns an in-memory checkpoint store.
	NewMemStore = stable.NewMemStore
	// NewNullStore returns a store that encodes but discards checkpoints
	// (the paper's Configuration #2).
	NewNullStore = stable.NewNullStore
	// NewDiskStore returns an on-disk checkpoint store with atomic commit
	// (the paper's Configuration #3).
	NewDiskStore = stable.NewDiskStore
	// NewReplicatedStore returns the diskless, ReStore-style store: each
	// rank's checkpoints live in node memory with fragments replicated to
	// its +1/+2 neighbors, and a failed rank's lines are reassembled from
	// surviving peers. Pair it with Policy.AsyncCommit for checkpointing
	// that neither blocks the application nor touches a disk.
	NewReplicatedStore = stable.NewReplicatedStore
	// NewDelayedStore wraps a store with an artificial write cost, for
	// experiments that emulate slow stable storage deterministically.
	NewDelayedStore = stable.NewDelayedStore
)

// Codec is a stable-storage fragment codec: dup (full replication), xor
// (single parity) or rs (Reed-Solomon k+m erasure coding).
type Codec = stable.Codec

// Replicated-store options.
var (
	// WithFragments sets how many pieces each checkpoint is split into
	// before replication under the default dup codec.
	WithFragments = stable.WithFragments
	// WithCodec replaces full replication with an erasure codec: the k+m
	// shards land on distinct ring successors (rotated parity placement)
	// and any k reconstruct a line, so rs k=4,m=2 matches dup's two-loss
	// tolerance at roughly half the memory and interconnect bytes.
	WithCodec = stable.WithCodec
	// NewCodec builds a codec by name ("dup", "xor", "rs") and geometry.
	NewCodec = stable.NewCodec
	// WithReplicationLatency applies a latency model to the replication
	// interconnect.
	WithReplicationLatency = stable.WithReplicationLatency
)

// WithLatency configures an artificial interconnect latency model for the
// transport (used to emulate different clusters).
var WithLatency = transport.WithLatency

// ConstantLatency builds a latency model with fixed per-message delay plus
// a bandwidth term.
var ConstantLatency = transport.ConstantLatency
