package stable

import (
	"bytes"
	"testing"
)

// testBlob builds a deterministic pseudo-random blob.
func testBlob(n int, seed byte) []byte {
	b := make([]byte, n)
	x := uint32(seed) + 1
	for i := range b {
		x = x*1664525 + 1013904223
		b[i] = byte(x >> 16)
	}
	return b
}

// combinations invokes fn with every size-r index subset of [0,n).
func combinations(n, r int, fn func(drop []int)) {
	idx := make([]int, r)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == r {
			fn(append([]int(nil), idx...))
			return
		}
		for i := start; i <= n-(r-depth); i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

// codecsUnderTest is the geometry sweep the loss matrix runs over.
func codecsUnderTest(t *testing.T) []Codec {
	t.Helper()
	var cs []Codec
	for _, spec := range []struct {
		name string
		k, m int
	}{
		{"xor", 2, 0}, {"xor", 3, 0}, {"xor", 4, 0},
		{"rs", 2, 1}, {"rs", 2, 2}, {"rs", 3, 2}, {"rs", 4, 1}, {"rs", 4, 2}, {"rs", 4, 3}, {"rs", 5, 3},
	} {
		c, err := NewCodec(spec.name, spec.k, spec.m)
		if err != nil {
			t.Fatalf("NewCodec(%s,%d,%d): %v", spec.name, spec.k, spec.m, err)
		}
		cs = append(cs, c)
	}
	return cs
}

// TestCodecLossMatrix is the exhaustive fault matrix: for every codec
// geometry and every blob-size class, EVERY combination of up to m lost
// shards reconstructs the blob byte-identically (verified via replSum and
// bytes.Equal), and EVERY combination of m+1 losses fails cleanly.
func TestCodecLossMatrix(t *testing.T) {
	sizes := []int{0, 1, 7, 64, 1000, 4096 + 3}
	for _, codec := range codecsUnderTest(t) {
		k, m := codec.DataShards(), codec.ParityShards()
		total := k + m
		for _, size := range sizes {
			blob := testBlob(size, byte(k*7+m))
			wantSum := replSum(blob)
			shards, err := codec.Encode(blob)
			if err != nil {
				t.Fatalf("%s k=%d m=%d: encode: %v", codec.Name(), k, m, err)
			}
			if len(shards) != total {
				t.Fatalf("%s k=%d m=%d: %d shards", codec.Name(), k, m, len(shards))
			}
			// Every survivable loss combination (0..m losses).
			for lost := 0; lost <= m; lost++ {
				combinations(total, lost, func(drop []int) {
					in := make([][]byte, total)
					copy(in, shards)
					for _, d := range drop {
						in[d] = nil
					}
					got, err := codec.Decode(in, size)
					if err != nil {
						t.Fatalf("%s k=%d m=%d size=%d drop=%v: decode: %v", codec.Name(), k, m, size, drop, err)
					}
					if replSum(got) != wantSum || !bytes.Equal(got, blob) {
						t.Fatalf("%s k=%d m=%d size=%d drop=%v: reconstruction differs", codec.Name(), k, m, size, drop)
					}
				})
			}
			// Every (m+1)-loss combination must fail cleanly, not corrupt.
			combinations(total, m+1, func(drop []int) {
				in := make([][]byte, total)
				copy(in, shards)
				for _, d := range drop {
					in[d] = nil
				}
				if _, err := codec.Decode(in, size); err == nil {
					t.Fatalf("%s k=%d m=%d size=%d drop=%v: decode of %d losses succeeded", codec.Name(), k, m, size, drop, m+1)
				}
			})
		}
	}
}

// TestDupCodecMatchesSplitFragments pins the dup codec to the legacy
// fragment layout: same piece boundaries, reconstruction requires all.
func TestDupCodecMatchesSplitFragments(t *testing.T) {
	blob := testBlob(1001, 3)
	c, _ := NewCodec("dup", 4, 0)
	shards, err := c.Encode(blob)
	if err != nil {
		t.Fatal(err)
	}
	legacy := splitFragments(blob, 4)
	if len(shards) != len(legacy) {
		t.Fatalf("shard count %d vs legacy %d", len(shards), len(legacy))
	}
	for i := range shards {
		if !bytes.Equal(shards[i], legacy[i]) {
			t.Fatalf("shard %d differs from legacy fragment", i)
		}
	}
	got, err := c.Decode(shards, len(blob))
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("dup roundtrip: %v", err)
	}
	shards[2] = nil
	if _, err := c.Decode(shards, len(blob)); err == nil {
		t.Fatal("dup decode with a missing fragment must fail")
	}
}

// TestShardPlacement checks the rotation invariants: shards land on
// distinct ring successors, the owner never holds its own shard, and the
// parity position rotates with the owner so no fixed neighbor carries all
// parity.
func TestShardPlacement(t *testing.T) {
	const n, k, m = 8, 4, 2
	shards := k + m
	parityHolders := make(map[int]bool)
	for owner := 0; owner < n; owner++ {
		holderOf, holders := shardPlan(owner, shards, n)
		if len(holders) != shards {
			t.Fatalf("owner %d: %d distinct holders, want %d", owner, len(holders), shards)
		}
		seen := make(map[int]bool)
		for idx, h := range holderOf {
			if h == owner {
				t.Fatalf("owner %d stores its own shard %d", owner, idx)
			}
			if seen[h] {
				t.Fatalf("owner %d: holder %d assigned twice", owner, h)
			}
			seen[h] = true
		}
		// Parity shards are the high indexes.
		for idx := k; idx < shards; idx++ {
			parityHolders[(holderOf[idx]-owner+n)%n] = true
		}
	}
	if len(parityHolders) < 3 {
		t.Fatalf("parity always lands on the same relative neighbors %v — placement does not rotate", parityHolders)
	}

	// Degenerate world: more shards than peers wraps without touching the
	// owner and still covers every index.
	holderOf, _ := shardPlan(1, 5, 4)
	for idx, h := range holderOf {
		if h == 1 {
			t.Fatalf("wrapped placement stores owner's own shard %d", idx)
		}
	}
}

// TestCodecRecRoundtrip pins the marker serialization including the
// per-shard digests.
func TestCodecRecRoundtrip(t *testing.T) {
	blob := testBlob(513, 9)
	rs, _ := NewCodec("rs", 3, 2)
	shards, _ := rs.Encode(blob)
	rec := replCommitRec{codec: CodecRS, frags: 5, data: 3, total: len(blob), sum: replSum(blob), sums: shardSums(shards)}
	owner, version, inc, got, err := decodeReplCommit(encodeReplCommit(7, 11, 3, rec))
	if err != nil || owner != 7 || version != 11 || inc != 3 {
		t.Fatalf("header roundtrip: %d %d %d %v", owner, version, inc, err)
	}
	if got.codec != rec.codec || got.frags != rec.frags || got.data != rec.data ||
		got.total != rec.total || got.sum != rec.sum || len(got.sums) != len(rec.sums) {
		t.Fatalf("rec roundtrip: %+v vs %+v", got, rec)
	}
	for i := range rec.sums {
		if got.sums[i] != rec.sums[i] {
			t.Fatalf("sum %d differs", i)
		}
	}
	if got.need() != 3 {
		t.Fatalf("need = %d", got.need())
	}
	if !got.shardValid(2, shards[2]) {
		t.Fatal("valid shard rejected")
	}
	corrupt := append([]byte(nil), shards[2]...)
	corrupt[0] ^= 0xff
	if got.shardValid(2, corrupt) {
		t.Fatal("corrupt shard accepted")
	}
}

// FuzzCodecDecode drives the reassembly entry point with arbitrary shard
// bytes and geometry — the exact surface a malicious or corrupt peer
// response reaches. No input may panic; a successful decode must satisfy
// the whole-blob digest the caller re-validates.
func FuzzCodecDecode(f *testing.F) {
	blob := testBlob(300, 5)
	for _, spec := range []struct {
		name string
		m    int
	}{{"dup", 0}, {"xor", 1}, {"rs", 2}} {
		c, err := NewCodec(spec.name, 3, spec.m)
		if err != nil {
			f.Fatal(err)
		}
		shards, _ := c.Encode(blob)
		f.Add(uint8(c.ID()), 3, spec.m, len(blob), shards[0], shards[1], []byte(nil))
	}
	f.Add(uint8(CodecRS), 200, 100, 1<<20, []byte{1}, []byte{}, []byte{2, 3})

	f.Fuzz(func(t *testing.T, id uint8, k, m, total int, s0, s1, s2 []byte) {
		if k < 0 || m < 0 || k > 64 || m > 64 || total < 0 || total > 1<<20 {
			return
		}
		codec, err := codecFor(id%3, k, m)
		if err != nil {
			return
		}
		shards := make([][]byte, k+m)
		pool := [][]byte{s0, s1, s2, nil}
		for i := range shards {
			shards[i] = pool[i%len(pool)]
		}
		got, err := codec.Decode(shards, total)
		if err == nil && len(got) != total {
			t.Fatalf("decode returned %d bytes, want %d", len(got), total)
		}
		// Encode of arbitrary bytes must roundtrip through a full decode.
		if k >= 1 && total <= 1<<16 {
			enc, err := codec.Encode(s0)
			if err == nil {
				back, err := codec.Decode(enc, len(s0))
				if err != nil || !bytes.Equal(back, s0) {
					t.Fatalf("roundtrip failed: %v", err)
				}
			}
		}
	})
}

// TestCodecNames pins the flag-level surface.
func TestCodecNames(t *testing.T) {
	for _, c := range []struct {
		name    string
		k, m    int
		wantK   int
		wantM   int
		wantErr bool
	}{
		{"", 0, 0, 2, 0, false},
		{"dup", 0, 0, 2, 0, false},
		{"dup", 5, 0, 5, 0, false},
		{"dup", 5, 9, 0, 0, true}, // parity with dup is a misconfiguration, not a downgrade
		{"xor", 0, 0, 4, 1, false},
		{"xor", 6, 1, 6, 1, false},
		{"xor", 6, 3, 0, 0, true}, // xor has exactly one parity shard
		{"rs", 0, 0, 4, 2, false},
		{"rs", 4, 2, 4, 2, false},
		{"rs", 200, 100, 0, 0, true},
		{"bogus", 0, 0, 0, 0, true},
	} {
		codec, err := NewCodec(c.name, c.k, c.m)
		if c.wantErr {
			if err == nil {
				t.Fatalf("NewCodec(%q,%d,%d) succeeded", c.name, c.k, c.m)
			}
			continue
		}
		if err != nil {
			t.Fatalf("NewCodec(%q,%d,%d): %v", c.name, c.k, c.m, err)
		}
		if codec.DataShards() != c.wantK || codec.ParityShards() != c.wantM {
			t.Fatalf("NewCodec(%q,%d,%d) = k%d m%d, want k%d m%d",
				c.name, c.k, c.m, codec.DataShards(), codec.ParityShards(), c.wantK, c.wantM)
		}
	}
	if _, err := codecFor(99, 2, 1); err == nil {
		t.Fatal("unknown codec id accepted")
	}
}
