package driver_test

import (
	"strings"
	"testing"

	"c3/internal/lint/analysis"
	"c3/internal/lint/c3commiterr"
	"c3/internal/lint/c3determinism"
	"c3/internal/lint/c3lockblock"
	"c3/internal/lint/c3wirecount"
	"c3/internal/lint/driver"
	"c3/internal/lint/linttest"
)

func all() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		c3determinism.Analyzer,
		c3wirecount.Analyzer,
		c3lockblock.Analyzer,
		c3commiterr.Analyzer,
	}
}

// TestSuppressValid: end-of-line and line-above directives suppress, short
// and full analyzer names both resolve, directives are analyzer-scoped, and
// a directive only reaches its own line and the one directly below.
func TestSuppressValid(t *testing.T) {
	res := linttest.Run(t, "internal/lint/testdata/src/suppress", "c3/internal/stable", all()...)
	if res.Suppressed != 2 {
		t.Errorf("suppressed = %d, want 2 (eol short name + standalone full name)", res.Suppressed)
	}
	// Two directives match nothing: the wrong-analyzer allow and the
	// out-of-range allow. Both must surface as dead, not vanish.
	if len(res.Dead) != 2 {
		t.Fatalf("dead directives = %d, want 2: %v", len(res.Dead), res.Dead)
	}
	for _, d := range res.Dead {
		if d.Reason == "" {
			t.Errorf("dead directive at %s lost its reason", d.Pos)
		}
	}
}

// TestSuppressMalformed: a directive with no reason, an unknown analyzer
// name, or no analyzer at all is itself a finding — and suppresses nothing,
// so the underlying finding surfaces too.
func TestSuppressMalformed(t *testing.T) {
	res := linttest.RunRaw(t, "internal/lint/testdata/src/suppressbad", "c3/internal/stable", all()...)

	var directive, dropped int
	for _, f := range res.Findings {
		if f.Analyzer == "c3lint" {
			directive++
		}
		if strings.Contains(f.Message, "error silently dropped") {
			dropped++
		}
	}
	if directive != 3 {
		t.Errorf("directive-misuse findings = %d, want 3 (no reason, unknown analyzer, nameless):\n%s",
			directive, findingsDump(res))
	}
	if dropped != 3 {
		t.Errorf("unsuppressed Sync findings = %d, want 3 (malformed directives suppress nothing):\n%s",
			dropped, findingsDump(res))
	}
	if res.Suppressed != 0 {
		t.Errorf("suppressed = %d, want 0", res.Suppressed)
	}
	if len(res.Dead) != 1 {
		t.Errorf("dead directives = %d, want 1 (the well-formed one that matched nothing)", len(res.Dead))
	}
}

func findingsDump(res *driver.Result) string {
	var b strings.Builder
	for _, f := range res.Findings {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}
