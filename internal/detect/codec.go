package detect

import (
	"fmt"

	"c3/internal/transport"
	"c3/internal/wire"
)

// Detector message kinds (first payload byte).
const (
	msgPing    uint8 = iota + 1 // heartbeat, carries the sender's epoch
	msgSuspect                  // gossip: sender suspects target dead
	msgPropose                  // agreement phase 1: (epoch, seq, dead set)
	msgAck                      // agreement phase 1 response
	msgCommit                   // agreement phase 2: epoch transition
	msgHello                    // a (re)joining rank announces itself
	msgState                    // membership snapshot, answers hello / catch-up
	msgDrain                    // request: remove a member at the next epoch
	// Two-level (grouped) topology messages.
	msgReport     // delegate report: own group's live set + per-group live counts
	msgProposeRly // propose relayed through a group delegate (carries origin)
	msgAckAgg     // delegate's aggregated agreement acks for its group
	msgCommitRly  // commit relayed through a group delegate (forward to group)
)

// payload is a detector message on the wire. Like the stable store's
// replication payloads it is its own encoding, so it crosses the in-memory
// network and the TCP mesh identically.
type payload []byte

// TransportSize implements transport.Sizer.
func (p payload) TransportSize() int { return len(p) }

// WireKind implements transport.WirePayload.
func (p payload) WireKind() uint8 { return transport.WireKindDetect }

// MarshalWire implements transport.WirePayload.
func (p payload) MarshalWire() []byte { return p }

func init() {
	transport.RegisterWireDecoder(transport.WireKindDetect, func(data []byte) (any, error) {
		return payload(append([]byte(nil), data...)), nil
	})
}

func encodePing(epoch uint64) payload {
	w := wire.NewWriter(9)
	w.U8(msgPing)
	w.U64(epoch)
	return payload(w.Bytes())
}

func decodePing(data payload) (epoch uint64, err error) {
	r := wire.NewReader(data[1:])
	epoch = r.U64()
	return epoch, r.Err()
}

func encodeSuspect(epoch uint64, target int) payload {
	w := wire.NewWriter(17)
	w.U8(msgSuspect)
	w.U64(epoch)
	w.Int(target)
	return payload(w.Bytes())
}

func decodeSuspect(data payload) (epoch uint64, target int, err error) {
	r := wire.NewReader(data[1:])
	epoch = r.U64()
	target = r.Int()
	return epoch, target, r.Err()
}

// Propose, commit, and state all carry the proposed (or current) member
// list alongside the dead set: membership is part of what the agreement
// commits, so a rank can never adopt an epoch without also adopting the
// member ring that epoch's quorum rules are defined over.
func encodePropose(epoch, seq uint64, dead, members []int) payload {
	w := wire.NewWriter(40 + 8*len(dead) + 8*len(members))
	w.U8(msgPropose)
	w.U64(epoch)
	w.U64(seq)
	w.Ints(dead)
	w.Ints(members)
	return payload(w.Bytes())
}

func decodePropose(data payload) (epoch, seq uint64, dead, members []int, err error) {
	r := wire.NewReader(data[1:])
	epoch = r.U64()
	seq = r.U64()
	dead = r.Ints()
	members = r.Ints()
	return epoch, seq, dead, members, r.Err()
}

func encodeAck(epoch, seq uint64) payload {
	w := wire.NewWriter(17)
	w.U8(msgAck)
	w.U64(epoch)
	w.U64(seq)
	return payload(w.Bytes())
}

func decodeAck(data payload) (epoch, seq uint64, err error) {
	r := wire.NewReader(data[1:])
	epoch = r.U64()
	seq = r.U64()
	return epoch, seq, r.Err()
}

func encodeCommit(epoch uint64, dead, members []int) payload {
	w := wire.NewWriter(32 + 8*len(dead) + 8*len(members))
	w.U8(msgCommit)
	w.U64(epoch)
	w.Ints(dead)
	w.Ints(members)
	return payload(w.Bytes())
}

func decodeCommit(data payload) (epoch uint64, dead, members []int, err error) {
	r := wire.NewReader(data[1:])
	epoch = r.U64()
	dead = r.Ints()
	members = r.Ints()
	return epoch, dead, members, r.Err()
}

func encodeHello() payload {
	return payload([]byte{msgHello})
}

func encodeState(epoch uint64, dead, members []int) payload {
	w := wire.NewWriter(32 + 8*len(dead) + 8*len(members))
	w.U8(msgState)
	w.U64(epoch)
	w.Ints(dead)
	w.Ints(members)
	return payload(w.Bytes())
}

func decodeState(data payload) (epoch uint64, dead, members []int, err error) {
	r := wire.NewReader(data[1:])
	epoch = r.U64()
	dead = r.Ints()
	members = r.Ints()
	return epoch, dead, members, r.Err()
}

// encodeDrain asks the world to remove target from the membership at the
// next epoch agreement (a graceful shrink). Like suspicion gossip it is
// retransmitted every tick until a commit settles it, so a lossy send
// path cannot strand the request.
func encodeDrain(epoch uint64, target int) payload {
	w := wire.NewWriter(17)
	w.U8(msgDrain)
	w.U64(epoch)
	w.Int(target)
	return payload(w.Bytes())
}

func decodeDrain(data payload) (epoch uint64, target int, err error) {
	r := wire.NewReader(data[1:])
	epoch = r.U64()
	target = r.Int()
	return epoch, target, r.Err()
}

// --- Grouped-topology messages ---

// encodeReport is a delegate's periodic liveness report: the live members
// of its own group (positive evidence for whole-group failure detection)
// plus its per-group live counts (the world view its group members fence
// against — a non-delegate only hears cross-group evidence through its
// delegate).
func encodeReport(epoch uint64, groups, live []int) payload {
	w := wire.NewWriter(25 + 8*len(groups) + 8*len(live))
	w.U8(msgReport)
	w.U64(epoch)
	w.Ints(groups)
	w.Ints(live)
	return payload(w.Bytes())
}

func decodeReport(data payload) (epoch uint64, groups, live []int, err error) {
	r := wire.NewReader(data[1:])
	epoch = r.U64()
	groups = r.Ints()
	live = r.Ints()
	return epoch, groups, live, r.Err()
}

// encodeProposeRly is a propose routed through a group delegate: origin is
// the coordinator the acks must reach, and hops=1 asks the receiving
// delegate to re-broadcast the proposal (with hops=0) to its group and
// aggregate the group's acks back to origin.
func encodeProposeRly(epoch, seq uint64, origin int, hops uint8, dead, members []int) payload {
	w := wire.NewWriter(50 + 8*len(dead) + 8*len(members))
	w.U8(msgProposeRly)
	w.U64(epoch)
	w.U64(seq)
	w.Int(origin)
	w.U8(hops)
	w.Ints(dead)
	w.Ints(members)
	return payload(w.Bytes())
}

func decodeProposeRly(data payload) (epoch, seq uint64, origin int, hops uint8, dead, members []int, err error) {
	r := wire.NewReader(data[1:])
	epoch = r.U64()
	seq = r.U64()
	origin = r.Int()
	hops = r.U8()
	dead = r.Ints()
	members = r.Ints()
	return epoch, seq, origin, hops, dead, members, r.Err()
}

// encodeAckAgg carries a delegate's aggregated agreement votes: every group
// member (delegate included) whose ack for (epoch, seq) the delegate has
// collected so far. Aggregates are cumulative and idempotent at the
// coordinator, so retransmissions and reordering are harmless.
func encodeAckAgg(epoch, seq uint64, ranks []int) payload {
	w := wire.NewWriter(25 + 8*len(ranks))
	w.U8(msgAckAgg)
	w.U64(epoch)
	w.U64(seq)
	w.Ints(ranks)
	return payload(w.Bytes())
}

func decodeAckAgg(data payload) (epoch, seq uint64, ranks []int, err error) {
	r := wire.NewReader(data[1:])
	epoch = r.U64()
	seq = r.U64()
	ranks = r.Ints()
	return epoch, seq, ranks, r.Err()
}

// encodeCommitRly is a commit routed through a group delegate: the receiver
// applies the epoch and re-broadcasts a plain commit to its (new) group.
func encodeCommitRly(epoch uint64, dead, members []int) payload {
	w := wire.NewWriter(32 + 8*len(dead) + 8*len(members))
	w.U8(msgCommitRly)
	w.U64(epoch)
	w.Ints(dead)
	w.Ints(members)
	return payload(w.Bytes())
}

func decodeCommitRly(data payload) (epoch uint64, dead, members []int, err error) {
	r := wire.NewReader(data[1:])
	epoch = r.U64()
	dead = r.Ints()
	members = r.Ints()
	return epoch, dead, members, r.Err()
}

func kindName(k uint8) string {
	switch k {
	case msgPing:
		return "ping"
	case msgSuspect:
		return "suspect"
	case msgPropose:
		return "propose"
	case msgAck:
		return "ack"
	case msgCommit:
		return "commit"
	case msgHello:
		return "hello"
	case msgState:
		return "state"
	case msgDrain:
		return "drain"
	case msgReport:
		return "report"
	case msgProposeRly:
		return "propose-rly"
	case msgAckAgg:
		return "ack-agg"
	case msgCommitRly:
		return "commit-rly"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}
