package ckpt

import (
	"fmt"
	"sync"
	"time"

	"c3/internal/stable"
	"c3/internal/trace"
)

// This file implements the asynchronous checkpoint-commit pipeline (the
// paper's Section 5 future work, after Kohl et al.'s asynchronous write-out
// argument): instead of writing a recovery line's sections to stable
// storage on the application thread, the layer captures the fully
// serialized snapshot in memory and hands it to a per-rank background
// committer goroutine. The application resumes as soon as local capture is
// done; the committer performs Begin/WriteSection/Commit (and garbage
// collection) off the critical path.
//
// The pipeline is double-buffered: one job may be in flight at the store
// while the next line's capture is queued behind it. A third line blocks at
// enqueue until the oldest job retires, bounding memory to two serialized
// snapshots. Because a single worker drains a FIFO queue, checkpoint k is
// always durably committed before checkpoint k+1's store commit begins —
// the commit fence that preserves the paper's recovery-line ordering:
// recovery can never observe line k+1 without line k on the same rank.

// namedSection is one serialized checkpoint section awaiting write-out.
type namedSection struct {
	name string
	data []byte
}

// asyncPipelineDepth is the most protocol-committed lines the pipeline can
// hold before they are durable: one in flight at the store plus one in the
// double buffer. A fail-stop failure discards all of them, so a rank's
// durable watermark can trail its epoch by asyncPipelineDepth+1 lines —
// the garbage-collection floor in enterRecvOnlyLog accounts for that.
const asyncPipelineDepth = 2

// commitJob carries one recovery line's complete serialized checkpoint.
type commitJob struct {
	line     uint64
	sections []namedSection
	// retireBelow, when positive, garbage-collects this rank's committed
	// versions below it after the commit succeeds (the Retire that sync
	// mode performs inline in enterRecvOnlyLog).
	retireBelow int
}

// committer is the per-rank background commit pipeline.
type committer struct {
	store stable.Store
	rank  int
	// clock is the layer's injected time source: pipeline timing STATS are
	// deterministic under the virtual scheduler too (c3determinism).
	clock func() time.Time

	// jobs has capacity 1: with the worker holding one job, at most two
	// lines are outstanding (the double buffer).
	jobs chan *commitJob

	mu      sync.Mutex
	cond    *sync.Cond
	pending int   // jobs enqueued but not yet retired
	aborted bool  // fail-stop: discard all outstanding work
	err     error // sticky first store error

	// Virtual mode (deterministic schedule engine): no worker goroutine
	// exists. Jobs queue in vqueue and are written by pump, which the layer
	// calls from the rank's own goroutine at protocol operations — the
	// pipeline's visible semantics (bounded depth, lines lost on abort,
	// durable after drain) are preserved, but WHEN a line becomes durable
	// is a pure function of the schedule instead of worker timing.
	virtual bool
	vqueue  []*commitJob
	vstamp  []int64 // pump counter value at each job's enqueue
	pumps   int64

	// Counters merged into the layer's Stats.
	asyncCommits  uint64
	storedBytes   uint64        // stable-storage footprint of committed lines
	writeDuration time.Duration // time the worker spent at the store
	stallDuration time.Duration // time the app blocked on the full pipeline
}

// virtualCommitAge is how many pump calls (protocol operations) a line
// stays in the virtual pipeline before pump writes it out — long enough
// that fail-stop failures routinely catch lines mid-pipeline, exactly the
// window the real worker exposes.
const virtualCommitAge = 24

func newCommitter(store stable.Store, rank int, clock func() time.Time) *committer {
	c := &committer{store: store, rank: rank, clock: clock, jobs: make(chan *commitJob, asyncPipelineDepth-1)}
	c.cond = sync.NewCond(&c.mu)
	go c.run()
	return c
}

// newVirtualCommitter creates the deterministic variant driven by pump.
func newVirtualCommitter(store stable.Store, rank int, clock func() time.Time) *committer {
	c := &committer{store: store, rank: rank, clock: clock, virtual: true}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// enqueue hands a captured line to the pipeline, blocking only when two
// lines are already outstanding. It is called from the rank's goroutine.
func (c *committer) enqueue(job *commitJob) error {
	c.mu.Lock()
	if c.aborted {
		c.mu.Unlock()
		return nil // fail-stop already declared; the line is lost by design
	}
	if err := c.err; err != nil {
		c.mu.Unlock()
		return err
	}
	if c.virtual {
		c.vqueue = append(c.vqueue, job)
		c.vstamp = append(c.vstamp, c.pumps)
		c.mu.Unlock()
		// The real pipeline blocks when a third line arrives; the virtual
		// one retires the oldest inline at the same point.
		for c.vqueueLen() > asyncPipelineDepth {
			if err := c.flushOldest(); err != nil {
				return err
			}
		}
		return nil
	}
	c.pending++
	c.mu.Unlock()

	begin := c.clock()
	c.jobs <- job // blocks while the double buffer is full
	stall := c.clock().Sub(begin)

	c.mu.Lock()
	c.stallDuration += stall
	c.mu.Unlock()
	return nil
}

// run is the worker: it retires jobs in FIFO order, so line k commits at
// the store strictly before line k+1 (the commit fence).
func (c *committer) run() {
	for job := range c.jobs {
		committed, err := c.write(job)
		c.mu.Lock()
		if err != nil && c.err == nil && !c.aborted {
			c.err = err
		}
		if committed {
			c.asyncCommits++
		}
		c.pending--
		c.cond.Broadcast()
		c.mu.Unlock()
	}
	c.mu.Lock()
	c.cond.Broadcast()
	c.mu.Unlock()
}

// stopped reports whether the pipeline must discard further jobs: after a
// fail-stop abort, or after a store error — committing line k+1 once line
// k failed would leave a gap the fence forbids.
func (c *committer) stopped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aborted || c.err != nil
}

// write performs one line's store interaction, checking for abort between
// steps so a fail-stop failure mid-commit leaves the version uncommitted.
// committed reports whether the line became durable — a discarded job is
// not an error, but it must not advance the durable watermark.
func (c *committer) write(job *commitJob) (committed bool, err error) {
	if c.stopped() {
		return false, nil
	}
	begin := c.clock()
	sp := trace.Default().Begin(int32(c.rank), trace.KindCommit, 0, job.line)
	defer func() {
		var bytes uint64
		if committed {
			for _, s := range job.sections {
				bytes += uint64(len(s.data))
			}
		}
		sp.End(bytes)
		c.mu.Lock()
		c.writeDuration += c.clock().Sub(begin)
		c.mu.Unlock()
	}()
	ck, err := c.store.Begin(c.rank, int(job.line))
	if err != nil {
		return false, fmt.Errorf("ckpt: async begin checkpoint %d: %w", job.line, err)
	}
	for _, s := range job.sections {
		if c.stopped() {
			return false, ck.Abort()
		}
		if err := ck.WriteSection(s.name, s.data); err != nil {
			_ = ck.Abort()
			return false, fmt.Errorf("ckpt: async write section %q of checkpoint %d: %w", s.name, job.line, err)
		}
	}
	if c.stopped() {
		return false, ck.Abort()
	}
	if err := ck.Commit(); err != nil {
		return false, fmt.Errorf("ckpt: async commit checkpoint %d: %w", job.line, err)
	}
	var raw uint64
	for _, s := range job.sections {
		raw += uint64(len(s.data))
	}
	c.mu.Lock()
	c.storedBytes += storedSizeOf(ck, raw)
	c.mu.Unlock()
	if job.retireBelow > 0 {
		// Best-effort GC after a successful commit: a failed retire leaves
		// stale versions behind but must not fail the committed line.
		_ = c.store.Retire(c.rank, job.retireBelow) //c3lint:allow commiterr best-effort GC; the line is already durable
	}
	return true, nil
}

// vqueueLen returns the virtual pipeline's depth.
func (c *committer) vqueueLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.vqueue)
}

// flushOldest writes the oldest virtual job out. No-op on an empty queue.
func (c *committer) flushOldest() error {
	c.mu.Lock()
	if len(c.vqueue) == 0 || c.aborted {
		c.mu.Unlock()
		return c.err
	}
	job := c.vqueue[0]
	c.vqueue = c.vqueue[1:]
	c.vstamp = c.vstamp[1:]
	c.mu.Unlock()
	committed, err := c.write(job)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil && c.err == nil && !c.aborted {
		c.err = err
	}
	if committed {
		c.asyncCommits++
	}
	return c.err
}

// pump advances the virtual pipeline: called by the layer at protocol
// operations, it retires jobs that have aged past virtualCommitAge pumps.
// A no-op for the real (worker-goroutine) pipeline.
func (c *committer) pump() error {
	if !c.virtual {
		return nil
	}
	for {
		c.mu.Lock()
		c.pumps++
		ripe := len(c.vqueue) > 0 && c.pumps-c.vstamp[0] >= virtualCommitAge && !c.aborted
		c.mu.Unlock()
		if !ripe {
			return nil
		}
		if err := c.flushOldest(); err != nil {
			return err
		}
	}
}

// drain blocks until every enqueued line is durable (or the pipeline was
// aborted) and returns the first store error. It is the commit fence
// exposed to Restore, Sync and the runtime's end-of-attempt teardown.
func (c *committer) drain() error {
	if c.virtual {
		for c.vqueueLen() > 0 {
			if err := c.flushOldest(); err != nil {
				return err
			}
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.pending > 0 && !c.aborted {
		c.cond.Wait()
	}
	return c.err
}

// abort models the rank's fail-stop failure: all outstanding (not yet
// durable) lines are discarded, and the call returns only when the worker
// has stopped touching the store — so the runtime can wipe node-local
// storage without a racing write resurrecting data.
func (c *committer) abort() {
	c.mu.Lock()
	c.aborted = true
	if c.virtual {
		// The virtual pipeline's outstanding lines vanish with the node.
		c.vqueue = nil
		c.vstamp = nil
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	// Unclog the queue: the worker discards jobs once aborted is set, and
	// pending reaches zero when the in-flight job notices the flag.
	c.mu.Lock()
	for c.pending > 0 {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// close shuts the pipeline down after a final drain (or abort). The layer
// must not enqueue afterwards.
func (c *committer) close() {
	if c.virtual {
		return
	}
	close(c.jobs)
}
