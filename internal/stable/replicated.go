package stable

import (
	"fmt"
	"sort"
	"sync"

	"c3/internal/transport"
	"c3/internal/wire"
)

// ReplicatedStore is a diskless, ReStore-style stable store: every rank
// keeps its own checkpoints in node-local memory and, at commit time,
// spreads the checkpoint's fragments to its +1/+2 neighbor ranks over a
// dedicated replication interconnect (an internal/transport network, so
// replication traffic has FIFO ordering, latency modeling and delivery
// counters like any other interconnect in the reproduction).
//
// Failure model: when the runtime injects a fail-stop failure it calls
// FailNode, which wipes everything in the failed node's memory — its own
// checkpoints and the replica fragments it held for peers — and invalidates
// replication messages still in flight toward it (they belong to the dead
// incarnation). The restarted rank's recovery then finds no local copy and
// reassembles its last committed line from the fragments surviving on peer
// nodes; a committed line is lost only if the owner and both replica
// holders fail together.
//
// Commit is synchronous-replicated: it returns once every live neighbor has
// acknowledged the fragments and the commit marker, so a line reported
// committed is immediately recoverable from peers. Combined with the ckpt
// layer's asynchronous commit pipeline, the acknowledgment wait happens on
// the background committer, off the application's critical path.
type ReplicatedStore struct {
	n         int
	fragments int
	net       *transport.Network

	mu       sync.Mutex
	cond     *sync.Cond
	nodes    []*replNode
	awaiting map[replAckKey]bool
	closed   bool

	bytesWritten    int64
	replicatedBytes int64
	reassemblies    int64

	wg sync.WaitGroup
}

// replNode is one rank's memory: its own checkpoints plus holdings for
// peers. incarnation advances on FailNode so in-flight replication traffic
// addressed to the dead incarnation is dropped instead of resurrecting
// state the failure destroyed.
type replNode struct {
	incarnation uint64
	local       map[int]*memCkpt
	frags       map[replFragKey][]byte
	commits     map[replCommitKey]replCommitRec
}

type replFragKey struct {
	owner, version, idx int
}

type replCommitKey struct {
	owner, version int
}

// replCommitRec is the commit marker replicated alongside the fragments:
// the fragment count and blob digest recovery validates reassembly against.
type replCommitRec struct {
	frags int
	total int
	sum   uint64
}

type replAckKey struct {
	owner, version, from int
}

// Replication message kinds.
const (
	replMsgFrag uint8 = iota + 1
	replMsgCommit
	replMsgAck
)

// replPayload lets the transport count and delay replication bytes.
type replPayload []byte

// TransportSize implements transport.Sizer.
func (p replPayload) TransportSize() int { return len(p) }

// WireKind implements transport.WirePayload, so replication traffic can
// cross the TCP mesh in multi-process deployments unchanged.
func (p replPayload) WireKind() uint8 { return transport.WireKindRepl }

// MarshalWire implements transport.WirePayload: the payload already is its
// own wire encoding.
func (p replPayload) MarshalWire() []byte { return p }

func init() {
	transport.RegisterWireDecoder(transport.WireKindRepl, func(data []byte) (any, error) {
		return replPayload(append([]byte(nil), data...)), nil
	})
}

// ReplicatedOption configures a ReplicatedStore.
type ReplicatedOption func(*replicatedConfig)

type replicatedConfig struct {
	fragments int
	netOpts   []transport.Option
}

// WithFragments sets how many pieces each checkpoint blob is split into
// before replication (default 2). More fragments spread replication load in
// finer grains; every fragment still goes to both neighbors.
func WithFragments(k int) ReplicatedOption {
	return func(c *replicatedConfig) { c.fragments = k }
}

// WithReplicationLatency applies a latency model to the replication
// interconnect, so experiments can price remote-memory checkpointing
// against local disk.
func WithReplicationLatency(m transport.LatencyModel) ReplicatedOption {
	return func(c *replicatedConfig) { c.netOpts = append(c.netOpts, transport.WithLatency(m)) }
}

// NewReplicatedStore creates a replicated in-memory store for a world of n
// ranks. The store owns n replication daemons (one per node); call Close
// when done with it.
func NewReplicatedStore(n int, opts ...ReplicatedOption) *ReplicatedStore {
	if n <= 0 {
		panic("stable: replicated store needs a positive world size")
	}
	cfg := replicatedConfig{fragments: 2}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.fragments < 1 {
		cfg.fragments = 1
	}
	s := &ReplicatedStore{
		n:         n,
		fragments: cfg.fragments,
		net:       transport.NewNetwork(n, cfg.netOpts...),
		nodes:     make([]*replNode, n),
		awaiting:  make(map[replAckKey]bool),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := range s.nodes {
		s.nodes[i] = newReplNode()
	}
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go s.daemon(i)
	}
	return s
}

func newReplNode() *replNode {
	return &replNode{
		local:   make(map[int]*memCkpt),
		frags:   make(map[replFragKey][]byte),
		commits: make(map[replCommitKey]replCommitRec),
	}
}

// Close shuts the replication fabric and daemons down. Outstanding commits
// unblock with their current acknowledgment state.
func (s *ReplicatedStore) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.net.Shutdown()
	s.wg.Wait()
}

// neighbors returns the ranks that replicate rank's checkpoints: the next
// two ranks around the ring (one for a two-rank world, none alone).
func (s *ReplicatedStore) neighbors(rank int) []int {
	var ns []int
	for d := 1; d <= 2 && d < s.n; d++ {
		ns = append(ns, (rank+d)%s.n)
	}
	return ns
}

// NetworkStats returns the replication interconnect's delivery counters.
func (s *ReplicatedStore) NetworkStats() transport.Stats { return s.net.Stats() }

// BytesWritten returns the section bytes written to node-local memory.
func (s *ReplicatedStore) BytesWritten() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesWritten
}

// ReplicatedBytes returns the fragment bytes shipped to peer nodes.
func (s *ReplicatedStore) ReplicatedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replicatedBytes
}

// Reassemblies reports how many checkpoints were rebuilt from peer
// fragments because the owner's local copy was gone — the disk-free
// recovery path.
func (s *ReplicatedStore) Reassemblies() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reassemblies
}

// FailNode implements NodeFailer: the node's memory is lost and in-flight
// replication traffic toward it belongs to a dead incarnation.
func (s *ReplicatedStore) FailNode(rank int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nodes[rank].incarnation++
	s.nodes[rank].local = make(map[int]*memCkpt)
	s.nodes[rank].frags = make(map[replFragKey][]byte)
	s.nodes[rank].commits = make(map[replCommitKey]replCommitRec)
	s.cond.Broadcast() // release commits waiting on this node's acks
}

// --- Write path ---

type replHandle struct {
	store    *ReplicatedStore
	rank     int
	version  int
	sections map[string][]byte
	done     bool
}

// Begin implements Store.
func (s *ReplicatedStore) Begin(rank, version int) (Checkpoint, error) {
	s.mu.Lock()
	delete(s.nodes[rank].local, version) // discard uncommitted stale data
	s.mu.Unlock()
	return &replHandle{store: s, rank: rank, version: version, sections: make(map[string][]byte)}, nil
}

func (h *replHandle) WriteSection(name string, data []byte) error {
	if h.done {
		return fmt.Errorf("stable: write to finished checkpoint (%d,%d)", h.rank, h.version)
	}
	h.sections[name] = append([]byte(nil), data...)
	h.store.mu.Lock()
	h.store.bytesWritten += int64(len(data))
	h.store.mu.Unlock()
	return nil
}

func (h *replHandle) Abort() error {
	h.done = true
	return nil
}

// Commit installs the checkpoint in node-local memory, ships its fragments
// and commit marker to the +1/+2 neighbors, and waits until every live
// neighbor has acknowledged them.
func (h *replHandle) Commit() error {
	if h.done {
		return fmt.Errorf("stable: commit of finished checkpoint (%d,%d)", h.rank, h.version)
	}
	h.done = true
	s := h.store

	blob := encodeReplSections(h.sections)
	frags := splitFragments(blob, s.fragments)
	rec := replCommitRec{frags: len(frags), total: len(blob), sum: replSum(blob)}

	s.mu.Lock()
	neighbors := s.neighbors(h.rank)
	type target struct {
		rank int
		inc  uint64
	}
	targets := make([]target, 0, len(neighbors))
	for _, nb := range neighbors {
		targets = append(targets, target{rank: nb, inc: s.nodes[nb].incarnation})
		s.awaiting[replAckKey{owner: h.rank, version: h.version, from: nb}] = false
		s.replicatedBytes += int64(len(blob))
	}
	s.mu.Unlock()

	dropAwaiting := func() {
		for _, t := range targets {
			delete(s.awaiting, replAckKey{owner: h.rank, version: h.version, from: t.rank})
		}
	}
	for _, t := range targets {
		for idx, frag := range frags {
			msg := encodeReplFrag(h.rank, h.version, t.inc, idx, frag)
			if err := s.net.Send(transport.Message{From: h.rank, To: t.rank, Class: transport.Data, Payload: msg}); err != nil {
				s.mu.Lock()
				dropAwaiting()
				s.mu.Unlock()
				return fmt.Errorf("stable: replicate fragment: %w", err)
			}
		}
		// The marker travels after the fragments on the same FIFO pair, so a
		// stored marker implies the fragments preceding it were delivered.
		msg := encodeReplCommit(h.rank, h.version, t.inc, rec)
		if err := s.net.Send(transport.Message{From: h.rank, To: t.rank, Class: transport.Control, Payload: msg}); err != nil {
			s.mu.Lock()
			dropAwaiting()
			s.mu.Unlock()
			return fmt.Errorf("stable: replicate commit marker: %w", err)
		}
	}

	// Wait for each neighbor's acknowledgment; a neighbor that fails (its
	// incarnation advances) is excused — the commit then relies on the
	// local copy plus the remaining replica. Only then does the version
	// become locally committed, so a failed Commit never leaves a version
	// visible to LastCommitted.
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		pending := 0
		for _, t := range targets {
			key := replAckKey{owner: h.rank, version: h.version, from: t.rank}
			if !s.awaiting[key] && s.nodes[t.rank].incarnation == t.inc && !s.closed {
				pending++
			}
		}
		if pending == 0 {
			break
		}
		s.cond.Wait()
	}
	dropAwaiting()
	s.nodes[h.rank].local[h.version] = &memCkpt{sections: h.sections, commit: true}
	return nil
}

// --- Replication daemon ---

// daemon is node rank's replication endpoint: it stores incoming fragments
// and commit markers in the node's memory and acknowledges them, and
// routes acknowledgments back to waiting commits.
func (s *ReplicatedStore) daemon(rank int) {
	defer s.wg.Done()
	ep := s.net.Endpoint(rank)
	for {
		msg, err := ep.Recv()
		if err != nil {
			return // network shut down
		}
		data, ok := msg.Payload.(replPayload)
		if !ok || len(data) == 0 {
			continue
		}
		switch data[0] {
		case replMsgFrag:
			owner, version, inc, idx, frag, err := decodeReplFrag(data)
			if err != nil {
				continue
			}
			s.mu.Lock()
			if s.nodes[rank].incarnation == inc {
				s.nodes[rank].frags[replFragKey{owner: owner, version: version, idx: idx}] = frag
			}
			s.mu.Unlock()
		case replMsgCommit:
			owner, version, inc, rec, err := decodeReplCommit(data)
			if err != nil {
				continue
			}
			s.mu.Lock()
			live := s.nodes[rank].incarnation == inc
			if live {
				s.nodes[rank].commits[replCommitKey{owner: owner, version: version}] = rec
			}
			s.mu.Unlock()
			if live {
				ack := encodeReplAck(owner, version, rank)
				_ = s.net.Send(transport.Message{From: rank, To: owner, Class: transport.Control, Payload: ack})
			}
		case replMsgAck:
			owner, version, from, err := decodeReplAck(data)
			if err != nil {
				continue
			}
			s.mu.Lock()
			key := replAckKey{owner: owner, version: version, from: from}
			if _, waiting := s.awaiting[key]; waiting {
				s.awaiting[key] = true
				s.cond.Broadcast()
			}
			s.mu.Unlock()
		}
	}
}

// --- Read path ---

// LastCommitted implements Store: the newest version committed locally or,
// when the local memory was lost, the newest version whose fragments and
// commit marker survive on peers.
func (s *ReplicatedStore) LastCommitted(rank int) (int, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	best, ok := 0, false
	for v, ck := range s.nodes[rank].local {
		if ck.commit && (!ok || v > best) {
			best, ok = v, true
		}
	}
	for v, rec := range s.peerCommitted(rank) {
		if (!ok || v > best) && s.fragsComplete(rank, v, rec) {
			best, ok = v, true
		}
	}
	return best, ok, nil
}

// peerCommitted collects commit markers held on any node for the owner.
func (s *ReplicatedStore) peerCommitted(owner int) map[int]replCommitRec {
	out := make(map[int]replCommitRec)
	for _, node := range s.nodes {
		for key, rec := range node.commits {
			if key.owner == owner {
				out[key.version] = rec
			}
		}
	}
	return out
}

// fragsComplete reports whether every fragment of (owner, version) exists
// somewhere among the nodes.
func (s *ReplicatedStore) fragsComplete(owner, version int, rec replCommitRec) bool {
	for idx := 0; idx < rec.frags; idx++ {
		found := false
		for _, node := range s.nodes {
			if _, ok := node.frags[replFragKey{owner: owner, version: version, idx: idx}]; ok {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Open implements Store. When the owner's local copy is gone, the
// checkpoint is reassembled from peer fragments, validated against the
// commit marker, and re-installed in the owner's memory (the restarted
// node re-hosting its line, as ReStore's re-distribution does).
func (s *ReplicatedStore) Open(rank, version int) (Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ck, ok := s.nodes[rank].local[version]; ok {
		if !ck.commit {
			return nil, fmt.Errorf("%w: rank %d version %d", ErrNotCommitted, rank, version)
		}
		return &memSnap{ck: ck}, nil
	}
	rec, ok := s.peerCommitted(rank)[version]
	if !ok {
		return nil, fmt.Errorf("%w: rank %d version %d (no local copy, no peer commit marker)", ErrNotFound, rank, version)
	}
	blob := make([]byte, 0, rec.total)
	for idx := 0; idx < rec.frags; idx++ {
		frag, ok := s.findFrag(rank, version, idx)
		if !ok {
			return nil, fmt.Errorf("%w: rank %d version %d fragment %d lost on all nodes", ErrNotFound, rank, version, idx)
		}
		blob = append(blob, frag...)
	}
	if len(blob) != rec.total || replSum(blob) != rec.sum {
		return nil, fmt.Errorf("stable: rank %d version %d reassembly mismatch (%d/%d bytes)", rank, version, len(blob), rec.total)
	}
	sections, err := decodeReplSections(blob)
	if err != nil {
		return nil, fmt.Errorf("stable: rank %d version %d: %w", rank, version, err)
	}
	ck := &memCkpt{sections: sections, commit: true}
	s.nodes[rank].local[version] = ck
	s.reassemblies++
	return &memSnap{ck: ck}, nil
}

func (s *ReplicatedStore) findFrag(owner, version, idx int) ([]byte, bool) {
	for _, node := range s.nodes {
		if frag, ok := node.frags[replFragKey{owner: owner, version: version, idx: idx}]; ok {
			return frag, true
		}
	}
	return nil, false
}

// Retire implements Store: it prunes the rank's old local versions and the
// fragments and markers peers hold for them.
func (s *ReplicatedStore) Retire(rank, version int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.nodes[rank].local {
		if v < version {
			delete(s.nodes[rank].local, v)
		}
	}
	for _, node := range s.nodes {
		for key := range node.frags {
			if key.owner == rank && key.version < version {
				delete(node.frags, key)
			}
		}
		for key := range node.commits {
			if key.owner == rank && key.version < version {
				delete(node.commits, key)
			}
		}
	}
	return nil
}

// Truncate implements Store: it drops the rank's versions above the
// recovery line everywhere — local memory, peer fragments, and peer commit
// markers — so a dead generation's lines cannot resurface.
func (s *ReplicatedStore) Truncate(rank, version int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.nodes[rank].local {
		if v > version {
			delete(s.nodes[rank].local, v)
		}
	}
	for _, node := range s.nodes {
		for key := range node.frags {
			if key.owner == rank && key.version > version {
				delete(node.frags, key)
			}
		}
		for key := range node.commits {
			if key.owner == rank && key.version > version {
				delete(node.commits, key)
			}
		}
	}
	return nil
}

// --- Blob and message codecs ---

// encodeReplSections flattens a section map into one replication blob.
func encodeReplSections(sections map[string][]byte) []byte {
	names := make([]string, 0, len(sections))
	size := 0
	for n, d := range sections {
		names = append(names, n)
		size += len(n) + len(d) + 16
	}
	sort.Strings(names)
	w := wire.NewWriter(16 + size)
	w.U32(uint32(len(names)))
	for _, n := range names {
		w.String(n)
		w.Bytes32(sections[n])
	}
	return w.Bytes()
}

func decodeReplSections(blob []byte) (map[string][]byte, error) {
	r := wire.NewReader(blob)
	n := r.Count(8) // minimum bytes per serialized section
	sections := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		name := r.String()
		data := r.Bytes32()
		if r.Err() != nil {
			break
		}
		sections[name] = append([]byte(nil), data...)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("corrupt replication blob: %w", err)
	}
	return sections, nil
}

// splitFragments cuts the blob into k nearly equal pieces (fewer when the
// blob is shorter than k bytes; always at least one, possibly empty).
func splitFragments(blob []byte, k int) [][]byte {
	if k > len(blob) {
		k = len(blob)
	}
	if k < 1 {
		k = 1
	}
	frags := make([][]byte, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := i*len(blob)/k, (i+1)*len(blob)/k
		frags = append(frags, blob[lo:hi])
	}
	return frags
}

// replSum is a simple FNV-1a digest for reassembly validation.
func replSum(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	sum := uint64(offset)
	for _, c := range b {
		sum = (sum ^ uint64(c)) * prime
	}
	return sum
}

// The fragment count travels only in the commit marker (the authoritative
// record reassembly validates against), not in every fragment.
func encodeReplFrag(owner, version int, inc uint64, idx int, frag []byte) replPayload {
	w := wire.NewWriter(32 + len(frag))
	w.U8(replMsgFrag)
	w.Int(owner)
	w.Int(version)
	w.U64(inc)
	w.Int(idx)
	w.Bytes32(frag)
	return replPayload(w.Bytes())
}

func decodeReplFrag(data replPayload) (owner, version int, inc uint64, idx int, frag []byte, err error) {
	r := wire.NewReader(data[1:])
	owner, version = r.Int(), r.Int()
	inc = r.U64()
	idx = r.Int()
	frag = append([]byte(nil), r.Bytes32()...)
	return owner, version, inc, idx, frag, r.Err()
}

func encodeReplCommit(owner, version int, inc uint64, rec replCommitRec) replPayload {
	w := wire.NewWriter(48)
	w.U8(replMsgCommit)
	w.Int(owner)
	w.Int(version)
	w.U64(inc)
	w.Int(rec.frags)
	w.Int(rec.total)
	w.U64(rec.sum)
	return replPayload(w.Bytes())
}

func decodeReplCommit(data replPayload) (owner, version int, inc uint64, rec replCommitRec, err error) {
	r := wire.NewReader(data[1:])
	owner, version = r.Int(), r.Int()
	inc = r.U64()
	rec = replCommitRec{frags: r.Int(), total: r.Int(), sum: r.U64()}
	return owner, version, inc, rec, r.Err()
}

func encodeReplAck(owner, version, from int) replPayload {
	w := wire.NewWriter(24)
	w.U8(replMsgAck)
	w.Int(owner)
	w.Int(version)
	w.Int(from)
	return replPayload(w.Bytes())
}

func decodeReplAck(data replPayload) (owner, version, from int, err error) {
	r := wire.NewReader(data[1:])
	owner, version, from = r.Int(), r.Int(), r.Int()
	return owner, version, from, r.Err()
}
