package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	"c3/internal/apps"
	"c3/internal/baseline"
	"c3/internal/ckpt"
	"c3/internal/cluster"
	"c3/internal/stable"
)

// table1Kernels is the NAS set Table 1 measures on uniprocessors.
var table1Kernels = []string{"CG", "EP", "IS", "LU", "MG", "SP", "FT"}

// table1Params sizes the Table 1 runs so the application state dominates the
// modeled fixed process-image segments, as it does at the paper's class A/B
// sizes; iterations are cut to a couple because only the state footprint
// matters here.
var table1Params = map[string]apps.Params{
	"CG": {N: 2 << 20, Iters: 2},
	"EP": {N: 1 << 21, Iters: 2},
	"IS": {N: 1 << 20, Iters: 2},
	"LU": {N: 1448, Iters: 2},
	"MG": {N: 2 << 20, Iters: 2},
	"SP": {N: 1024, Iters: 2},
	"FT": {N: 512, Iters: 2},
}

// Table1 reproduces "Condor and C3 checkpoint sizes": for each benchmark on
// one processor, the size of a C3 application-level checkpoint (live data
// only) against the modeled Condor system-level checkpoint (full process
// image including freed heap), and the relative reduction.
func Table1(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Table 1: Condor and C3 checkpoint sizes in megabytes (uniprocessor)",
		Columns: []string{"Code (Class)", "Condor", "C3", "Reduction"},
	}
	model := baseline.DefaultCondorModel()
	for _, name := range opts.kernels(table1Kernels) {
		k, ok := apps.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown kernel %q", name)
		}
		p := k.Defaults(opts.class())
		if tp, ok := table1Params[name]; ok && opts.Class != apps.ClassS {
			p.N, p.Iters = tp.N, tp.Iters
		}
		var condor, c3size int64
		var mu sync.Mutex
		out := apps.NewOutput()
		app := k.App(p, out)
		cfg := cluster.Config{
			Ranks: 1,
			App: func(env cluster.Env) error {
				err := app(env)
				mu.Lock()
				condor = model.CheckpointBytes(env.State(), env.Heap())
				c3size = baseline.C3CheckpointBytes(env.State())
				mu.Unlock()
				return err
			},
		}
		if _, err := cluster.Run(cfg); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", name, err)
		}
		red := 100 * float64(condor-c3size) / float64(condor)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s (%s)", name, opts.class()),
			mbs(condor), mbs(c3size), fmt.Sprintf("%.2f%%", red),
		})
	}
	t.Notes = append(t.Notes,
		"Condor sizes use the process-image model (live data + freed heap high-water + code/stack segments).",
		"C3 saves only live registered data; EP's large reduction comes from its freed init scratch, as in the paper.")
	return t, nil
}

// midRunPragma returns the pragma index halfway through a kernel's run:
// pragmas fire once per main-loop iteration, and HPL's "iteration" count is
// its matrix dimension (one pragma per factorization step).
func midRunPragma(name string, p apps.Params) int {
	steps := p.Iters
	if name == "HPL" {
		steps = p.N
	}
	mid := steps / 2
	if mid < 1 {
		mid = 1
	}
	return mid
}

// overheadKernels is the set Tables 2 and 3 measure.
var overheadKernels = []string{"CG", "LU", "SP", "SMG2000", "HPL"}

// overheadTable builds Tables 2/3: runtimes of the original benchmark
// against the C3-instrumented benchmark with no checkpoints taken.
func overheadTable(opts Options, title string) (*Table, error) {
	t := &Table{
		Title:   title,
		Columns: []string{"Code (Class)", "Procs", "Original (s)", "C3 (s)", "Relative Overhead"},
	}
	for _, name := range opts.kernels(overheadKernels) {
		k, ok := apps.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown kernel %q", name)
		}
		p := k.Defaults(opts.class())
		for _, ranks := range opts.ranks() {
			base := cluster.Config{Ranks: ranks, TransportOptions: opts.transport()}
			orig, err := medianOf(opts.reps(), func() (time.Duration, error) {
				cfg := base
				cfg.Direct = true
				d, _, err := runKernel(k, p, cfg)
				return d, err
			})
			if err != nil {
				return nil, fmt.Errorf("bench: %s direct: %w", name, err)
			}
			wrapped, err := medianOf(opts.reps(), func() (time.Duration, error) {
				d, _, err := runKernel(k, p, base)
				return d, err
			})
			if err != nil {
				return nil, fmt.Errorf("bench: %s wrapped: %w", name, err)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%s (%s)", name, opts.class()),
				fmt.Sprintf("%d", ranks),
				secs(orig), secs(wrapped), pct(wrapped, orig),
			})
		}
	}
	t.Notes = append(t.Notes,
		"No checkpoints are taken; the overhead is piggybacking plus protocol book-keeping, as in the paper.")
	return t, nil
}

// Table2 reproduces "Runtimes on Lemieux without checkpoints" (low-latency
// interconnect profile).
func Table2(opts Options) (*Table, error) {
	opts.Latency = false
	return overheadTable(opts, "Table 2: runtimes in seconds without checkpoints (Lemieux-style interconnect)")
}

// Table3 reproduces "Runtimes on Velocity 2 without checkpoints"
// (Ethernet-style latency profile).
func Table3(opts Options) (*Table, error) {
	opts.Latency = true
	return overheadTable(opts, "Table 3: runtimes in seconds without checkpoints (Velocity2-style interconnect)")
}

// checkpointTable builds Tables 4/5: Configuration #1 (no checkpoints),
// #2 (one checkpoint, nothing written to disk) and #3 (one checkpoint
// written to local disk), plus per-process checkpoint size and the
// checkpoint cost (#3 − #1).
func checkpointTable(opts Options, title string) (*Table, error) {
	t := &Table{
		Title:   title,
		Columns: []string{"Code (Class)", "Procs", "#1 (s)", "#2 (s)", "#3 (s)", "Size/proc (MB)", "Ckpt cost (s)"},
	}
	for _, name := range opts.kernels(overheadKernels) {
		k, ok := apps.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown kernel %q", name)
		}
		p := k.Defaults(opts.class())
		midPragma := midRunPragma(name, p)
		for _, ranks := range opts.ranks() {
			base := cluster.Config{Ranks: ranks, TransportOptions: opts.transport()}

			c1, err := medianOf(opts.reps(), func() (time.Duration, error) {
				d, _, err := runKernel(k, p, base)
				return d, err
			})
			if err != nil {
				return nil, err
			}

			c2, err := medianOf(opts.reps(), func() (time.Duration, error) {
				cfg := base
				cfg.Store = stable.NewNullStore()
				cfg.Policy = ckpt.Policy{EveryNthPragma: midPragma}
				d, _, err := runKernel(k, p, cfg)
				return d, err
			})
			if err != nil {
				return nil, err
			}

			var sizePerProc int64
			var ckpts uint64
			c3t, err := medianOf(opts.reps(), func() (time.Duration, error) {
				dir, err := os.MkdirTemp(opts.DiskDir, "c3bench-*")
				if err != nil {
					return 0, err
				}
				defer os.RemoveAll(dir)
				store, err := stable.NewDiskStore(dir)
				if err != nil {
					return 0, err
				}
				cfg := base
				cfg.Store = store
				cfg.Policy = ckpt.Policy{EveryNthPragma: midPragma}
				d, res, err := runKernel(k, p, cfg)
				if err != nil {
					return 0, err
				}
				var bytes uint64
				ckpts = 0
				for _, rs := range res.Stats {
					bytes += rs.Stats.CheckpointBytes
					ckpts += rs.Stats.CheckpointsTaken
				}
				if ckpts > 0 {
					sizePerProc = int64(bytes / ckpts)
				}
				return d, nil
			})
			if err != nil {
				return nil, err
			}

			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%s (%s)", name, opts.class()),
				fmt.Sprintf("%d", ranks),
				secs(c1), secs(c2), secs(c3t),
				mbs(sizePerProc),
				fmt.Sprintf("%.4f", (c3t - c1).Seconds()),
			})
		}
	}
	t.Notes = append(t.Notes,
		"#1: C3 without checkpoints; #2: checkpoints encoded but discarded; #3: checkpoints written to local disk.",
		"Checkpoint cost is #3 minus #1, as in the paper (noise can make it slightly negative).")
	return t, nil
}

// Table4 reproduces "Runtimes with checkpoints on Lemieux".
func Table4(opts Options) (*Table, error) {
	opts.Latency = false
	return checkpointTable(opts, "Table 4: runtimes in seconds with checkpoints (Lemieux-style interconnect)")
}

// Table5 reproduces "Runtimes with checkpoints on Velocity 2".
func Table5(opts Options) (*Table, error) {
	opts.Latency = true
	return checkpointTable(opts, "Table 5: runtimes in seconds with checkpoints (Velocity2-style interconnect)")
}

// restartKernels is the uniprocessor set Tables 6/7 measure.
var restartKernels = []string{"CG", "LU", "SP", "SMG2000", "HPL"}

// restartTable builds Tables 6/7: restart cost on one processor. Following
// the paper's method, the application runs once taking a mid-run
// checkpoint, measuring the time from the checkpoint to completion; it is
// then restarted from that checkpoint, measuring restart-to-completion; the
// restart cost is the difference.
func restartTable(opts Options, title string) (*Table, error) {
	t := &Table{
		Title:   title,
		Columns: []string{"Code (Class)", "Original (s)", "After-ckpt (s)", "Restarted (s)", "Restart cost (s)", "Relative"},
	}
	for _, name := range opts.kernels(restartKernels) {
		k, ok := apps.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown kernel %q", name)
		}
		p := k.Defaults(opts.class())
		midPragma := midRunPragma(name, p)

		// Reference runtime of the unmodified application.
		orig, err := medianOf(opts.reps(), func() (time.Duration, error) {
			cfg := cluster.Config{Ranks: 1, Direct: true, TransportOptions: opts.transport()}
			d, _, err := runKernel(k, p, cfg)
			return d, err
		})
		if err != nil {
			return nil, err
		}

		store := stable.NewMemStore()
		// First run: checkpoint at the midpoint, record the time from the
		// end of the checkpoint to completion.
		var afterCkpt time.Duration
		var mu sync.Mutex
		out := apps.NewOutput()
		app := k.App(p, out)
		cfg := cluster.Config{
			Ranks: 1,
			Store: store,
			App: func(env cluster.Env) error {
				start := time.Now()
				err := app(&ckptTimeEnv{Env: env, mid: midPragma, mark: &start})
				mu.Lock()
				afterCkpt = time.Since(start)
				mu.Unlock()
				return err
			},
			TransportOptions: opts.transport(),
		}
		if _, err := cluster.Run(cfg); err != nil {
			return nil, err
		}

		// Second run: restart from the checkpoint and run to completion.
		restarted, err := medianOf(opts.reps(), func() (time.Duration, error) {
			cfg := cluster.Config{
				Ranks:            1,
				Store:            store,
				ForceRestore:     true,
				TransportOptions: opts.transport(),
			}
			d, _, err := runKernel(k, p, cfg)
			return d, err
		})
		if err != nil {
			return nil, err
		}

		cost := restarted - afterCkpt
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s (%s)", name, opts.class()),
			secs(orig), secs(afterCkpt), secs(restarted),
			fmt.Sprintf("%.4f", cost.Seconds()),
			pct(orig+cost, orig),
		})
	}
	t.Notes = append(t.Notes,
		"Restart cost = (restart-to-completion) - (post-checkpoint-to-completion), the paper's Section 6.5 method.")
	return t, nil
}

// ckptTimeEnv forces one checkpoint at the midpoint pragma and restamps the
// timer when it completes.
type ckptTimeEnv struct {
	cluster.Env
	mid     int
	pragmas int
	mark    *time.Time
}

// Checkpoint implements the forced-midpoint policy.
func (e *ckptTimeEnv) Checkpoint() error {
	e.pragmas++
	if e.pragmas == e.mid {
		if err := e.Env.CheckpointNow(); err != nil {
			return err
		}
		*e.mark = time.Now()
		return nil
	}
	return e.Env.Checkpoint()
}

// Table6 reproduces "Restart costs on Lemieux" (uniprocessor).
func Table6(opts Options) (*Table, error) {
	opts.Latency = false
	return restartTable(opts, "Table 6: restart costs in seconds (uniprocessor, Lemieux-style)")
}

// Table7 reproduces "Restart costs on CMI" (uniprocessor, higher-latency
// interconnect profile; latency only affects multi-rank runs, so this
// differs from Table 6 mainly in environment labeling, as in the paper).
func Table7(opts Options) (*Table, error) {
	opts.Latency = true
	return restartTable(opts, "Table 7: restart costs in seconds (uniprocessor, CMI-style)")
}

// AblationPiggyback compares the 3-bit piggyback codec against the
// full-epoch codec (the design choice Section 3.2 calls out).
func AblationPiggyback(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Ablation: piggyback width (3-bit color vs full 64-bit epoch)",
		Columns: []string{"Code (Class)", "Procs", "Narrow (s)", "Wide (s)", "Wide vs Narrow", "Narrow bytes", "Wide bytes"},
	}
	for _, name := range opts.kernels([]string{"CG", "SMG2000"}) {
		k, _ := apps.Lookup(name)
		p := k.Defaults(opts.class())
		for _, ranks := range opts.ranks() {
			base := cluster.Config{Ranks: ranks, TransportOptions: opts.transport()}
			var narrowBytes, wideBytes uint64
			narrow, err := medianOf(opts.reps(), func() (time.Duration, error) {
				d, res, err := runKernel(k, p, base)
				if err == nil {
					narrowBytes = 0
					for _, rs := range res.Stats {
						narrowBytes += rs.Stats.PiggybackBytes
					}
				}
				return d, err
			})
			if err != nil {
				return nil, err
			}
			wide, err := medianOf(opts.reps(), func() (time.Duration, error) {
				cfg := base
				cfg.WideHeaders = true
				d, res, err := runKernel(k, p, cfg)
				if err == nil {
					wideBytes = 0
					for _, rs := range res.Stats {
						wideBytes += rs.Stats.PiggybackBytes
					}
				}
				return d, err
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%s (%s)", name, opts.class()),
				fmt.Sprintf("%d", ranks),
				secs(narrow), secs(wide), pct(wide, narrow),
				fmt.Sprintf("%d", narrowBytes), fmt.Sprintf("%d", wideBytes),
			})
		}
	}
	return t, nil
}

// AblationBlocking compares non-blocking coordinated checkpointing against
// the classic blocking barrier-based scheme at equal checkpoint frequency.
func AblationBlocking(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Ablation: non-blocking (C3) vs blocking coordinated checkpointing",
		Columns: []string{"Code (Class)", "Procs", "C3 (s)", "Blocking (s)", "Blocking vs C3"},
	}
	for _, name := range opts.kernels([]string{"CG", "LU"}) {
		k, _ := apps.Lookup(name)
		p := k.Defaults(opts.class())
		every := 4
		for _, ranks := range opts.ranks() {
			nb, err := medianOf(opts.reps(), func() (time.Duration, error) {
				cfg := cluster.Config{
					Ranks:            ranks,
					Policy:           ckpt.Policy{EveryNthPragma: every},
					Store:            stable.NewMemStore(),
					TransportOptions: opts.transport(),
				}
				d, _, err := runKernel(k, p, cfg)
				return d, err
			})
			if err != nil {
				return nil, err
			}
			bl, err := medianOf(opts.reps(), func() (time.Duration, error) {
				out := apps.NewOutput()
				cfg := cluster.Config{
					Ranks:            ranks,
					Direct:           true,
					App:              baseline.WrapBlocking(stable.NewMemStore(), every, k.App(p, out)),
					TransportOptions: opts.transport(),
				}
				res, err := cluster.Run(cfg)
				if err != nil {
					return 0, err
				}
				return res.LastAttemptElapsed, nil
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%s (%s)", name, opts.class()),
				fmt.Sprintf("%d", ranks),
				secs(nb), secs(bl), pct(bl, nb),
			})
		}
	}
	return t, nil
}

// AblationIncremental measures the paper's future-work extension: bytes
// written with full checkpoints at every line vs incremental checkpoints
// with a full snapshot every 4th line.
func AblationIncremental(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Ablation: full vs incremental checkpoints (bytes written to stable storage)",
		Columns: []string{"Code (Class)", "Procs", "Full (MB)", "Incremental (MB)", "Saved"},
	}
	for _, name := range opts.kernels([]string{"CG", "EP", "HPL"}) {
		k, _ := apps.Lookup(name)
		p := k.Defaults(opts.class())
		for _, ranks := range opts.ranks() {
			measure := func(fullEvery int) (int64, error) {
				store := stable.NewMemStore()
				cfg := cluster.Config{
					Ranks:               ranks,
					Store:               store,
					Policy:              ckpt.Policy{EveryNthPragma: 2},
					FullCheckpointEvery: fullEvery,
					TransportOptions:    opts.transport(),
				}
				if _, _, err := runKernel(k, p, cfg); err != nil {
					return 0, err
				}
				return store.BytesWritten(), nil
			}
			full, err := measure(0)
			if err != nil {
				return nil, err
			}
			inc, err := measure(4)
			if err != nil {
				return nil, err
			}
			saved := "-"
			if full > 0 {
				saved = fmt.Sprintf("%.1f%%", 100*float64(full-inc)/float64(full))
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%s (%s)", name, opts.class()),
				fmt.Sprintf("%d", ranks),
				mbs(full), mbs(inc), saved,
			})
		}
	}
	t.Notes = append(t.Notes,
		"Incremental saves only content-changed sections with a full snapshot every 4th line (paper Section 5 future work).",
		"The NAS kernels mutate nearly all of their state every iteration, so deltas match full snapshots — the win appears for mostly-static state (TestIncrementalCheckpointsAreSmaller shows >2x).")
	return t, nil
}

// asyncStoreDelay is the artificial stable-storage write cost the async
// ablation charges both configurations, emulating the paper's slower
// stable-storage targets deterministically (local tmpfs is too fast to
// show the blocking cost).
const asyncStoreDelay = 2 * time.Millisecond

// AblationAsync measures the asynchronous commit pipeline against blocking
// commit on the same delayed disk store (the paper's Configuration #3
// methodology: checkpoint cost = runtime with checkpoints minus runtime
// without), plus the diskless replicated store with async commit. Blocking
// commit pays the stable-storage writes on the application's critical
// path; the async pipeline overlaps them with computation, so its
// checkpoint cost stays below the blocking configuration's.
func AblationAsync(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Ablation: blocking vs asynchronous checkpoint commit (delayed disk store)",
		Columns: []string{"Code (Class)", "Procs", "No ckpt (s)", "Blocking (s)", "Async (s)", "Replicated+async (s)", "Blocking cost (s)", "Async cost (s)"},
	}
	for _, name := range opts.kernels([]string{"CG", "LU"}) {
		k, ok := apps.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown kernel %q", name)
		}
		p := k.Defaults(opts.class())
		midPragma := midRunPragma(name, p)
		for _, ranks := range opts.ranks() {
			base := cluster.Config{Ranks: ranks, TransportOptions: opts.transport()}

			none, err := medianOf(opts.reps(), func() (time.Duration, error) {
				d, _, err := runKernel(k, p, base)
				return d, err
			})
			if err != nil {
				return nil, err
			}

			diskRun := func(async bool) (time.Duration, error) {
				return medianOf(opts.reps(), func() (time.Duration, error) {
					dir, err := os.MkdirTemp(opts.DiskDir, "c3async-*")
					if err != nil {
						return 0, err
					}
					defer os.RemoveAll(dir)
					disk, err := stable.NewDiskStore(dir)
					if err != nil {
						return 0, err
					}
					cfg := base
					cfg.Store = stable.NewDelayedStore(disk, asyncStoreDelay, 0)
					cfg.Policy = ckpt.Policy{EveryNthPragma: midPragma, AsyncCommit: async}
					d, _, err := runKernel(k, p, cfg)
					return d, err
				})
			}
			blocking, err := diskRun(false)
			if err != nil {
				return nil, err
			}
			async, err := diskRun(true)
			if err != nil {
				return nil, err
			}

			replicated, err := medianOf(opts.reps(), func() (time.Duration, error) {
				store := stable.NewReplicatedStore(ranks)
				defer store.Close()
				cfg := base
				cfg.Store = store
				cfg.Policy = ckpt.Policy{EveryNthPragma: midPragma, AsyncCommit: true}
				d, _, err := runKernel(k, p, cfg)
				return d, err
			})
			if err != nil {
				return nil, err
			}

			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%s (%s)", name, opts.class()),
				fmt.Sprintf("%d", ranks),
				secs(none), secs(blocking), secs(async), secs(replicated),
				fmt.Sprintf("%.4f", (blocking - none).Seconds()),
				fmt.Sprintf("%.4f", (async - none).Seconds()),
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Both disk configurations charge %v per stable-storage write (NewDelayedStore), so the delta isolates where the cost is paid.", asyncStoreDelay),
		"Replicated+async keeps checkpoints in peer memory (NewReplicatedStore): no disk is touched at all.")
	return t, nil
}

// Generators maps table identifiers to their builders.
var Generators = map[string]func(Options) (*Table, error){
	"1":                    Table1,
	"2":                    Table2,
	"3":                    Table3,
	"4":                    Table4,
	"5":                    Table5,
	"6":                    Table6,
	"7":                    Table7,
	"ablation-piggyback":   AblationPiggyback,
	"ablation-blocking":    AblationBlocking,
	"ablation-incremental": AblationIncremental,
	"ablation-async":       AblationAsync,
	"ablation-codec":       AblationCodec,
	"scale":                Scale,
}
