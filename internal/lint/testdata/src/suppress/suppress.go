// Fixture for the //c3lint:allow suppression protocol (valid directives).
// Type-checked under c3/internal/stable so c3commiterr is live. The harness
// asserts the suppressed count; anything a directive fails to cover must
// still surface as a finding, which the want comments below pin down.
package stable

type db struct{}

func (db) Sync() error  { return nil }
func (db) Close() error { return nil }

// End-of-line directive, short analyzer name.
func eol(d db) {
	d.Sync() //c3lint:allow commiterr fixture: deliberate best-effort sync
}

// Standalone directive on the line above, full analyzer name.
func standalone(d db) {
	//c3lint:allow c3commiterr fixture: reason sits above the offending line
	d.Sync()
}

// A directive is analyzer-scoped: allowing the wrong analyzer suppresses
// nothing (and the unmatched directive is reported as dead by the driver,
// which the harness asserts).
func wrongAnalyzer(d db) {
	//c3lint:allow lockblock fixture: wrong analyzer for this finding
	d.Sync() // want `db\.Sync error silently dropped`
}

// A directive only reaches its own line and the line directly below.
func outOfRange(d db) {
	//c3lint:allow commiterr fixture: too far from the finding

	d.Sync() // want `db\.Sync error silently dropped`
}
