// Package c3lockblock flags blocking operations performed while a
// sync.Mutex or sync.RWMutex is held.
//
// Motivation (PR 4): Mesh.write once performed a full-window TCP redial
// while holding the per-peer connection lock; every sender to that peer —
// heartbeats included — queued behind a 30-second stall, turning one dead
// rank into a world-wide detector brownout. The invariant: critical
// sections compute; they do not dial, sleep, send on channels, or wait.
//
// Blocking operations recognized:
//   - net.Dial / net.DialTimeout / net.DialUDP/TCP/IP/Unix, (*net.Dialer).Dial*
//   - Read/Write on values implementing net.Conn (kernel-buffer blocking)
//   - channel send statements
//   - (*sync.WaitGroup).Wait
//   - time.Sleep
//
// sync.Cond.Wait is deliberately NOT a finding: the condition-variable
// protocol requires holding L, and Wait releases it while parked.
//
// The analysis is intra-package but inter-procedural one package deep: a
// call to a same-package function that (transitively) performs a blocking
// operation is itself blocking — exactly the historical shape, where the
// dial lived two frames below the lock. Lock tracking is syntactic and
// source-ordered (an Unlock anywhere in a conditional arm is honored), so
// the pass under-approximates: it misses exotic flow but never needs
// path-sensitive reasoning, and deliberate block-under-lock sites are
// annotated with //c3lint:allow lockblock <reason>.
package c3lockblock

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"c3/internal/lint/analysis"
)

// Analyzer is the c3lockblock pass.
var Analyzer = &analysis.Analyzer{
	Name: "c3lockblock",
	Doc: "no blocking operations (net dials, conn reads/writes, channel sends, WaitGroup.Wait, " +
		"time.Sleep) while a sync.Mutex/RWMutex is held",
	Run: run,
}

// blockInfo explains why a function may block (empty reason = it doesn't).
type blockInfo struct {
	reason string
	pos    token.Pos
}

type checker struct {
	pass     *analysis.Pass
	connIfc  *types.Interface // net.Conn, nil if net not imported
	decls    map[types.Object]*ast.FuncDecl
	mayBlock map[types.Object]blockInfo
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		connIfc:  lookupNetConn(pass.Pkg),
		decls:    make(map[types.Object]*ast.FuncDecl),
		mayBlock: make(map[types.Object]blockInfo),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					c.decls[obj] = fd
				}
			}
		}
	}
	c.propagate()
	for _, fd := range c.decls {
		c.checkFunc(fd)
	}
	return nil
}

// lookupNetConn fetches the net.Conn interface if this package's import
// graph contains package net; without it no conn calls can occur.
func lookupNetConn(pkg *types.Package) *types.Interface {
	for _, imp := range pkg.Imports() {
		if imp.Path() == "net" {
			if obj, ok := imp.Scope().Lookup("Conn").(*types.TypeName); ok {
				if ifc, ok := obj.Type().Underlying().(*types.Interface); ok {
					return ifc
				}
			}
		}
	}
	return nil
}

// directBlock classifies one AST node as a directly blocking operation.
func (c *checker) directBlock(n ast.Node) (string, bool) {
	switch n := n.(type) {
	case *ast.SendStmt:
		return "channel send", true
	case *ast.CallExpr:
		if fn := calleeFunc(c.pass, n); fn != nil {
			full := fn.FullName()
			switch {
			case fn.Pkg() != nil && fn.Pkg().Path() == "net" &&
				strings.HasPrefix(fn.Name(), "Dial") && fn.Type().(*types.Signature).Recv() == nil:
				return "net." + fn.Name(), true
			case full == "(*net.Dialer).Dial" || full == "(*net.Dialer).DialContext":
				return full, true
			case full == "time.Sleep":
				return "time.Sleep", true
			case full == "(*sync.WaitGroup).Wait":
				return "sync.WaitGroup.Wait", true
			}
			// Read/Write on a net.Conn: blocking against kernel buffers
			// and the peer's read pace.
			if c.connIfc != nil && (fn.Name() == "Read" || fn.Name() == "Write") {
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if tv, ok := c.pass.TypesInfo.Types[sel.X]; ok &&
						types.Implements(tv.Type, c.connIfc) {
						return fmt.Sprintf("%s on net.Conn %s", fn.Name(), render(sel.X)), true
					}
				}
			}
		}
	}
	return "", false
}

// propagate computes the package-local transitive may-block relation.
func (c *checker) propagate() {
	// Seed: functions containing a direct blocking operation.
	for obj, fd := range c.decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := c.mayBlock[obj]; ok {
				return false
			}
			if _, ok := n.(*ast.GoStmt); ok {
				return false // a goroutine launch does not block the caller
			}
			if reason, ok := c.directBlock(n); ok {
				c.mayBlock[obj] = blockInfo{reason: reason, pos: n.Pos()}
				return false
			}
			return true
		})
	}
	// Fixpoint: calling a may-block function blocks.
	for changed := true; changed; {
		changed = false
		for obj, fd := range c.decls {
			if _, ok := c.mayBlock[obj]; ok {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := c.mayBlock[obj]; ok {
					return false
				}
				if _, ok := n.(*ast.GoStmt); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := calleeFunc(c.pass, call); fn != nil {
					if info, ok := c.mayBlock[fn]; ok {
						c.mayBlock[obj] = blockInfo{
							reason: fmt.Sprintf("call to %s (which may block: %s)", fn.Name(), info.reason),
							pos:    n.Pos(),
						}
						changed = true
						return false
					}
				}
				return true
			})
		}
	}
}

// calleeFunc resolves a call's static callee, or nil for dynamic calls,
// conversions and builtins.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// lockState tracks which mutexes are held at the current point of the
// source-ordered walk. Keys are the rendered receiver expression ("p.mu").
type lockState struct {
	held  map[string]int
	sites map[string]token.Pos
}

func (s *lockState) lock(key string, pos token.Pos) {
	if s.held == nil {
		s.held = make(map[string]int)
		s.sites = make(map[string]token.Pos)
	}
	s.held[key]++
	s.sites[key] = pos
}

func (s *lockState) unlock(key string) {
	if s.held[key] > 0 {
		s.held[key]--
	}
}

func (s *lockState) any() (string, token.Pos, bool) {
	for k, n := range s.held {
		if n > 0 {
			return k, s.sites[k], true
		}
	}
	return "", token.NoPos, false
}

// checkFunc walks one function, maintaining the held-lock set and flagging
// blocking operations inside critical sections.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	state := &lockState{}
	c.walkStmts(fd.Body.List, state)
}

// mutexMethod classifies a call as a Lock/Unlock-family call on a
// sync.Mutex or sync.RWMutex, returning the method name and the rendered
// receiver ("c.mu").
func (c *checker) mutexMethod(call *ast.CallExpr) (method, key string, ok bool) {
	fn := calleeFunc(c.pass, call)
	if fn == nil {
		return "", "", false
	}
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.Mutex).TryLock", "(*sync.Mutex).Unlock",
		"(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock", "(*sync.RWMutex).TryLock",
		"(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
	default:
		return "", "", false
	}
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK {
		return "", "", false
	}
	return fn.Name(), render(sel.X), true
}

// walkStmts processes statements in source order. Unlock calls anywhere
// (including inside conditional arms) release their mutex for subsequent
// source lines — an under-approximation that avoids path explosion.
func (c *checker) walkStmts(stmts []ast.Stmt, state *lockState) {
	for _, stmt := range stmts {
		c.walkStmt(stmt, state)
	}
}

func (c *checker) walkStmt(stmt ast.Stmt, state *lockState) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if method, key, ok := c.mutexMethod(call); ok {
				switch method {
				case "Lock", "RLock", "TryLock":
					state.lock(key, call.Pos())
				case "Unlock", "RUnlock":
					state.unlock(key)
				}
				return
			}
		}
		c.inspect(s, state)
	case *ast.DeferStmt:
		if method, key, ok := c.mutexMethod(s.Call); ok {
			switch method {
			case "Unlock", "RUnlock":
				// Held to function end: leave the lock in place. Record the
				// defer so the message can say so? The lock site already
				// points at the Lock call.
				_ = key
			case "Lock", "RLock", "TryLock":
				state.lock(key, s.Call.Pos()) // pathological, but track it
			}
			return
		}
		// A deferred call runs at return, outside this walk's notion of
		// the critical section only if the lock is released first — not
		// decidable syntactically; skip deferred bodies.
	case *ast.BlockStmt:
		c.walkStmts(s.List, state)
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		c.inspectExpr(s.Cond, state)
		c.walkStmt(s.Body, state)
		if s.Else != nil {
			c.walkStmt(s.Else, state)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		c.inspectExpr(s.Cond, state)
		c.walkStmt(s.Body, state)
		if s.Post != nil {
			c.walkStmt(s.Post, state)
		}
	case *ast.RangeStmt:
		c.inspectExpr(s.X, state)
		c.walkStmt(s.Body, state)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		c.walkStmt(s.Body, state)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		c.walkStmt(s.Body, state)
	case *ast.CaseClause:
		c.walkStmts(s.Body, state)
	case *ast.SelectStmt:
		// A select with a default case polls rather than blocks; one
		// without is a blocking wait. Either way its comm clauses are
		// channel operations: flag the blocking form under a lock.
		if key, site, held := state.any(); held && !selectHasDefault(s) {
			c.pass.Reportf(s.Pos(), "blocking select while %s is held (locked at %s)", key, c.pos(site))
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				c.walkStmts(cc.Body, state)
			}
		}
	case *ast.CommClause:
		c.walkStmts(s.Body, state)
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, state)
	case *ast.GoStmt:
		// The goroutine body runs concurrently, not under this lock.
	case nil:
	default:
		c.inspect(stmt, state)
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// inspect flags blocking operations within one non-control statement.
func (c *checker) inspect(n ast.Node, state *lockState) {
	key, site, held := state.any()
	if !held {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // runs later, possibly without the lock
		}
		if reason, ok := c.directBlock(n); ok {
			c.pass.Reportf(n.Pos(), "%s while %s is held (locked at %s)", reason, key, c.pos(site))
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(c.pass, call); fn != nil {
				if info, ok := c.mayBlock[fn]; ok && c.decls[fn] != nil {
					c.pass.Reportf(call.Pos(), "call to %s while %s is held (locked at %s); %s may block: %s",
						fn.Name(), key, c.pos(site), fn.Name(), info.reason)
					return false
				}
			}
		}
		return true
	})
}

func (c *checker) inspectExpr(e ast.Expr, state *lockState) {
	if e != nil {
		c.inspect(e, state)
	}
}

func (c *checker) pos(p token.Pos) string {
	pos := c.pass.Fset.Position(p)
	return fmt.Sprintf("line %d", pos.Line)
}

// render prints an expression compactly for lock keys and messages.
func render(e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}
