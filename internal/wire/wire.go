// Package wire implements the binary encoding used for checkpoint files,
// message logs and control messages.
//
// The format is deliberately simple and deterministic: fixed-width
// little-endian integers, IEEE-754 floats, and length-prefixed byte strings.
// A Writer accumulates into a buffer and carries a sticky error; a Reader
// decodes from a byte slice and likewise carries a sticky error, so call
// sites can chain operations and check the error once (the errWriter idiom).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrShortBuffer is reported when a Reader runs out of input mid-value.
var ErrShortBuffer = errors.New("wire: short buffer")

// ErrTooLong is reported when a length prefix exceeds MaxLen.
var ErrTooLong = errors.New("wire: length prefix too large")

// MaxLen bounds any single length-prefixed value. It exists to turn file
// corruption into an error instead of an enormous allocation.
const MaxLen = 1 << 31

// Writer encodes values into an internal buffer.
// The zero value is ready to use.
type Writer struct {
	buf []byte
	err error
}

// NewWriter returns a Writer with the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Bytes returns the encoded bytes. The slice aliases the Writer's buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes encoded so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset truncates the Writer for reuse, keeping the allocation.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.err = nil
}

// U8 appends a single byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 appends a fixed-width 32-bit unsigned integer.
func (w *Writer) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// U64 appends a fixed-width 64-bit unsigned integer.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// I64 appends a 64-bit signed integer.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as a 64-bit signed integer.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 appends a float64 in IEEE-754 bit representation.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes32 appends a length-prefixed byte string.
func (w *Writer) Bytes32(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// I64s appends a length-prefixed slice of 64-bit signed integers.
func (w *Writer) I64s(vs []int64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.I64(v)
	}
}

// U64s appends a length-prefixed slice of 64-bit unsigned integers.
func (w *Writer) U64s(vs []uint64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.U64(v)
	}
}

// Ints appends a length-prefixed slice of ints.
func (w *Writer) Ints(vs []int) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.Int(v)
	}
}

// F64s appends a length-prefixed slice of float64s.
func (w *Writer) F64s(vs []float64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.F64(v)
	}
}

// Reader decodes values from a byte slice.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader returns a Reader over b. The Reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w at offset %d", ErrShortBuffer, r.pos)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.pos+n > len(r.buf) {
		r.fail()
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// U8 decodes a single byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool decodes a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 decodes a fixed-width 32-bit unsigned integer.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 decodes a fixed-width 64-bit unsigned integer.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 decodes a 64-bit signed integer.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int decodes an int stored as a 64-bit signed integer.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 decodes a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Count decodes a u32 element count for elements occupying at least
// elemSize bytes each and clamps it against the remaining input: a count
// that could not possibly be satisfied by the bytes left fails with
// ErrShortBuffer *before* any allocation, so a truncated or corrupt frame
// off a real socket can never trigger a multi-gigabyte make().
func (r *Reader) Count(elemSize int) int {
	n := int(int32(r.U32()))
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n < 0 || n > r.Remaining()/elemSize {
		if r.err == nil {
			r.err = fmt.Errorf("%w: %d elements of %d+ bytes with %d remaining at offset %d",
				ErrShortBuffer, n, elemSize, r.Remaining(), r.pos)
		}
		return 0
	}
	return n
}

func (r *Reader) length() int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n > MaxLen || n > r.Remaining() {
		if r.err == nil {
			r.err = fmt.Errorf("%w: %d bytes with %d remaining", ErrTooLong, n, r.Remaining())
		}
		return 0
	}
	return n
}

// Bytes32 decodes a length-prefixed byte string. The result is a copy.
func (r *Reader) Bytes32() []byte {
	n := r.length()
	if r.err != nil {
		return nil
	}
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	n := r.length()
	if r.err != nil {
		return ""
	}
	b := r.take(n)
	return string(b)
}

// I64s decodes a length-prefixed slice of 64-bit signed integers.
func (r *Reader) I64s() []int64 {
	n := r.Count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = r.I64()
	}
	return vs
}

// U64s decodes a length-prefixed slice of 64-bit unsigned integers.
func (r *Reader) U64s() []uint64 {
	n := r.Count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = r.U64()
	}
	return vs
}

// Ints decodes a length-prefixed slice of ints.
func (r *Reader) Ints() []int {
	n := r.Count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = r.Int()
	}
	return vs
}

// F64s decodes a length-prefixed slice of float64s.
func (r *Reader) F64s() []float64 {
	n := r.Count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.F64()
	}
	return vs
}
