package transport

// Partition fault-model tests for the in-memory Network: blackhole (drop)
// and short-split (hold) rules, asymmetric cuts, rule replacement, and the
// ordered flush at Heal. The real-time network delivers synchronously, so
// every assertion is immediate — no settling sleeps.

import (
	"testing"
)

func cutPairs(a, b []int) [][2]int {
	var pairs [][2]int
	for _, x := range a {
		for _, y := range b {
			pairs = append(pairs, [2]int{x, y}, [2]int{y, x})
		}
	}
	return pairs
}

func TestNetworkPartitionDropSever(t *testing.T) {
	nw := NewNetwork(3)
	nw.Partition(cutPairs([]int{0, 1}, []int{2}), false)

	if err := nw.Send(Message{From: 0, To: 2, Payload: testPayload{seq: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := nw.Send(Message{From: 2, To: 1, Payload: testPayload{seq: 2}}); err != nil {
		t.Fatal(err)
	}
	if p := nw.Endpoint(2).Pending(); p != 0 {
		t.Fatalf("severed frame queued at rank 2 (%d pending)", p)
	}
	if p := nw.Endpoint(1).Pending(); p != 0 {
		t.Fatalf("severed frame queued at rank 1 (%d pending)", p)
	}
	if d := nw.Stats().MessagesDropped; d != 2 {
		t.Fatalf("MessagesDropped = %d, want 2", d)
	}
	// Same-side traffic is untouched.
	if err := nw.Send(Message{From: 0, To: 1, Payload: testPayload{seq: 3}}); err != nil {
		t.Fatal(err)
	}
	if msg, ok, _ := nw.Endpoint(1).TryRecv(); !ok || msg.Payload.(testPayload).seq != 3 {
		t.Fatalf("same-side send disturbed by the cut: %v %v", msg, ok)
	}

	nw.Heal()
	// Blackholed frames are gone for good; fresh traffic flows.
	if p := nw.Endpoint(2).Pending(); p != 0 {
		t.Fatalf("heal resurrected %d dropped frame(s)", p)
	}
	if err := nw.Send(Message{From: 2, To: 1, Payload: testPayload{seq: 4}}); err != nil {
		t.Fatal(err)
	}
	if msg, ok, _ := nw.Endpoint(1).TryRecv(); !ok || msg.Payload.(testPayload).seq != 4 {
		t.Fatalf("traffic did not resume after heal: %v %v", msg, ok)
	}
}

func TestNetworkPartitionHoldFlushesInOrder(t *testing.T) {
	nw := NewNetwork(2)
	nw.Partition(cutPairs([]int{0}, []int{1}), true)

	const k = 10
	for i := 0; i < k; i++ {
		if err := nw.Send(Message{From: 0, To: 1, Payload: testPayload{seq: i}}); err != nil {
			t.Fatal(err)
		}
	}
	if p := nw.Endpoint(1).Pending(); p != 0 {
		t.Fatalf("held frame crossed the split early (%d pending)", p)
	}
	if d := nw.Stats().MessagesDropped; d != 0 {
		t.Fatalf("hold mode dropped %d frame(s)", d)
	}

	nw.Heal()
	ep := nw.Endpoint(1)
	for i := 0; i < k; i++ {
		msg, ok, err := ep.TryRecv()
		if err != nil || !ok {
			t.Fatalf("held frame %d missing after heal (ok=%v err=%v)", i, ok, err)
		}
		if got := msg.Payload.(testPayload).seq; got != i {
			t.Fatalf("heal flush reordered: got %d, want %d", got, i)
		}
	}
}

func TestNetworkPartitionAsymmetric(t *testing.T) {
	nw := NewNetwork(2)
	// Sever only 1 -> 0.
	nw.Partition([][2]int{{1, 0}}, false)

	if err := nw.Send(Message{From: 0, To: 1, Payload: testPayload{seq: 1}}); err != nil {
		t.Fatal(err)
	}
	if msg, ok, _ := nw.Endpoint(1).TryRecv(); !ok || msg.Payload.(testPayload).seq != 1 {
		t.Fatalf("open direction blocked by asymmetric rule: %v %v", msg, ok)
	}
	if err := nw.Send(Message{From: 1, To: 0, Payload: testPayload{seq: 2}}); err != nil {
		t.Fatal(err)
	}
	if p := nw.Endpoint(0).Pending(); p != 0 {
		t.Fatalf("severed direction delivered (%d pending)", p)
	}
}

// TestNetworkPartitionReplaceRules: installing a new rule set replaces the
// old one but keeps already-held frames for the next Heal, so a schedule
// that re-partitions before healing loses nothing it promised to hold.
func TestNetworkPartitionReplaceRules(t *testing.T) {
	nw := NewNetwork(3)
	nw.Partition(cutPairs([]int{0}, []int{1}), true)
	if err := nw.Send(Message{From: 0, To: 1, Payload: testPayload{seq: 7}}); err != nil {
		t.Fatal(err)
	}

	// Replace: now only 0 <-> 2 is cut; 0 -> 1 flows again.
	nw.Partition(cutPairs([]int{0}, []int{2}), true)
	if err := nw.Send(Message{From: 0, To: 1, Payload: testPayload{seq: 8}}); err != nil {
		t.Fatal(err)
	}
	if msg, ok, _ := nw.Endpoint(1).TryRecv(); !ok || msg.Payload.(testPayload).seq != 8 {
		t.Fatalf("pair freed by rule replacement still severed: %v %v", msg, ok)
	}

	nw.Heal()
	if msg, ok, _ := nw.Endpoint(1).TryRecv(); !ok || msg.Payload.(testPayload).seq != 7 {
		t.Fatalf("frame held under the replaced rule set lost: %v %v", msg, ok)
	}
}
