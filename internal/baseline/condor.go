// Package baseline implements the comparison systems the paper evaluates
// against or contrasts with:
//
//   - a Condor-style system-level checkpoint size model (Table 1's
//     baseline), and
//   - a blocking, barrier-based coordinated checkpointer (the classic
//     alternative the non-blocking protocol is motivated against).
package baseline

import "c3/internal/statesave"

// CondorModel sizes a system-level (core-dump style) checkpoint of a
// process. Condor writes the whole process image: text/data segments, the
// stack, and the entire heap — including memory the application has freed,
// because freed memory is not returned to the operating system. The paper
// explains C3's Table 1 advantage exactly this way: "the C3 system saves
// only live data (memory that has not been freed by the programmer) from
// the heap."
type CondorModel struct {
	// CodeAndStaticBytes models the text + static data segments plus the
	// runtime's fixed overhead in the process image.
	CodeAndStaticBytes int64
	// StackBytes models the saved stack segment.
	StackBytes int64
}

// DefaultCondorModel mirrors a small scientific executable: a few MB of
// text/static data and a default-sized stack.
func DefaultCondorModel() CondorModel {
	return CondorModel{
		CodeAndStaticBytes: 2 << 20,
		StackBytes:         512 << 10,
	}
}

// CheckpointBytes returns the modeled system-level checkpoint size for a
// process whose dynamic state lives in the given registry and heap: the
// registry's live bytes stand in for the data segment contents, and the
// heap contributes its high-water mark (the process's sbrk level), not its
// live bytes.
func (m CondorModel) CheckpointBytes(state *statesave.Registry, heap *statesave.Heap) int64 {
	size := m.CodeAndStaticBytes + m.StackBytes
	if state != nil {
		size += int64(state.LiveBytes())
	}
	if heap != nil {
		// The registry already counted the heap's live bytes through its
		// "__heap" section; add the gap up to the high-water mark, which is
		// what the process image pays for and C3 does not.
		size += int64(heap.HighWater() - heap.LiveBytes())
	}
	return size
}

// C3CheckpointBytes returns the application-level checkpoint size for the
// same state: live data only, plus a small fixed header overhead for the
// state description the checkpoint carries.
func C3CheckpointBytes(state *statesave.Registry) int64 {
	const descriptionOverhead = 4 << 10
	if state == nil {
		return descriptionOverhead
	}
	return int64(state.LiveBytes()) + descriptionOverhead
}
