package wire

import (
	"bytes"
	"testing"
)

// FuzzReader drives every decoder over arbitrary input. The invariants:
// no panic, no allocation larger than the input could justify, and the
// sticky error machinery always reports truncation instead of producing
// values past the end of input.
func FuzzReader(f *testing.F) {
	// Seed with a well-formed image touching every encoder.
	w := NewWriter(256)
	w.U8(7)
	w.Bool(true)
	w.U32(0xdeadbeef)
	w.U64(1 << 40)
	w.I64(-12345)
	w.Int(67890)
	w.F64(3.14159)
	w.Bytes32([]byte("payload"))
	w.String("section-name")
	w.I64s([]int64{-1, 0, 1})
	w.U64s([]uint64{2, 4, 8})
	w.Ints([]int{-9, 9})
	w.F64s([]float64{0.5, -0.5})
	f.Add(w.Bytes())
	// A hostile length prefix: claims 2^31-1 elements.
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		_ = r.U8()
		_ = r.Bool()
		_ = r.U32()
		_ = r.U64()
		_ = r.F64()
		b := r.Bytes32()
		if len(b) > len(data) {
			t.Fatalf("Bytes32 produced %d bytes from %d input bytes", len(b), len(data))
		}
		s := r.String()
		if len(s) > len(data) {
			t.Fatalf("String produced %d bytes from %d input bytes", len(s), len(data))
		}
		for _, n := range []int{
			len(r.I64s()), len(r.U64s()), len(r.Ints()), len(r.F64s()),
		} {
			if n*8 > len(data) {
				t.Fatalf("slice decoder produced %d elements from %d input bytes", n, len(data))
			}
		}
		if r.Err() == nil && r.Remaining() < 0 {
			t.Fatal("negative remaining without error")
		}

		// Round-trip property on the tail: whatever Bytes32 decodes must
		// re-encode identically.
		r2 := NewReader(data)
		if payload := r2.Bytes32(); r2.Err() == nil {
			w := NewWriter(len(payload) + 4)
			w.Bytes32(payload)
			r3 := NewReader(w.Bytes())
			if !bytes.Equal(r3.Bytes32(), payload) || r3.Err() != nil {
				t.Fatal("Bytes32 round-trip mismatch")
			}
		}
	})
}
