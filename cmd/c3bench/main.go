// Command c3bench regenerates the paper's evaluation tables (Section 6)
// from the reproduced system and prints them.
//
// Usage:
//
//	c3bench -table all                 # every table, class W
//	c3bench -table 2 -ranks 4,8,16,32  # overhead sweep
//	c3bench -table 1 -class A          # checkpoint sizes at a larger class
//	c3bench -table ablation-piggyback  # design-choice ablations
//	c3bench -table ablation-async      # blocking vs async commit pipeline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"c3/internal/apps"
	"c3/internal/bench"
	"c3/internal/trace"
)

func main() {
	var (
		table   = flag.String("table", "all", "table to regenerate: 1..7, ablation-piggyback, ablation-blocking, ablation-incremental, ablation-async, ablation-codec, scale, or all")
		class   = flag.String("class", "W", "problem class: S, W, or A")
		ranks   = flag.String("ranks", "4,8,16", "comma-separated rank counts for parallel tables")
		kernels = flag.String("kernels", "", "comma-separated kernel subset (default: the paper's set per table)")
		reps    = flag.Int("reps", 1, "repetitions per timing (median reported)")
		jsonOut = flag.String("json", "", "additionally write the generated tables to this file as JSON (CI artifacts)")
		notrace = flag.Bool("notrace", false, "disable the flight recorder (A/B baseline for measuring tracing overhead)")
	)
	flag.Parse()
	if *notrace {
		trace.SetEnabled(false)
	}

	opts := bench.Options{
		Class:       apps.Class(*class),
		Repetitions: *reps,
	}
	for _, f := range strings.Split(*ranks, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			fatalf("invalid rank count %q", f)
		}
		opts.Ranks = append(opts.Ranks, n)
	}
	if *kernels != "" {
		for _, k := range strings.Split(*kernels, ",") {
			opts.Kernels = append(opts.Kernels, strings.TrimSpace(k))
		}
	}

	ids := []string{*table}
	if *table == "all" {
		ids = ids[:0]
		for id := range bench.Generators {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	}
	type namedTable struct {
		ID    string       `json:"id"`
		Table *bench.Table `json:"table"`
	}
	var generated []namedTable
	for _, id := range ids {
		gen, ok := bench.Generators[id]
		if !ok {
			fatalf("unknown table %q (have 1..7, ablation-piggyback, ablation-blocking, ablation-incremental, ablation-async, ablation-codec, scale)", id)
		}
		t, err := gen(opts)
		if err != nil {
			fatalf("table %s: %v", id, err)
		}
		fmt.Println(t.Format())
		generated = append(generated, namedTable{ID: id, Table: t})
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(generated, "", "  ")
		if err != nil {
			fatalf("encode json: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fatalf("write %s: %v", *jsonOut, err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "c3bench: "+format+"\n", args...)
	os.Exit(1)
}
