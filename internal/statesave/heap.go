package statesave

import (
	"fmt"

	"c3/internal/wire"
)

// Heap is a checkpointable allocator for bulk application data. It is the Go
// analogue of the C3 memory manager: C3 provides its own allocator so heap
// objects can be enumerated at checkpoint time (saving only live objects)
// and restored to their original addresses on restart. Go forbids address
// control, so restoration is by allocation name instead: on restart the
// application re-executes its allocations, and each Alloc with a name that
// has restored contents pending receives those contents.
//
// The heap tracks three sizes used by the checkpoint-size experiments
// (paper Table 1):
//
//   - LiveBytes: bytes in currently-live blocks — what C3 saves;
//   - HighWater: the maximum total ever allocated simultaneously — the
//     process-image floor a system-level checkpointer like Condor saves,
//     because freed memory is not returned to the OS;
//   - FreedBytes: cumulative bytes freed.
type Heap struct {
	blocks    []*Block // live, in allocation order
	byName    map[string]*Block
	pending   map[string][]byte // restored contents not yet claimed by Alloc
	live      int
	highWater int
	freed     int64
}

// Block is one heap allocation.
type Block struct {
	name string
	data []byte
}

// Name returns the allocation name.
func (b *Block) Name() string { return b.name }

// Data returns the block's bytes.
func (b *Block) Data() []byte { return b.data }

// NewHeap returns an empty heap.
func NewHeap() *Heap {
	return &Heap{
		byName:  make(map[string]*Block),
		pending: make(map[string][]byte),
	}
}

// Alloc creates a block of the given size. If restored contents are pending
// under this name (a Restore ran before the allocation was re-executed),
// they are installed, so restart code can allocate-then-Restore or
// Restore-then-allocate in either order. Allocating an existing live name
// panics: allocation names identify objects across restarts and must be
// unique, like addresses.
func (h *Heap) Alloc(name string, size int) *Block {
	if _, dup := h.byName[name]; dup {
		panic(fmt.Sprintf("statesave: heap block %q already allocated", name))
	}
	b := &Block{name: name, data: make([]byte, size)}
	if restored, ok := h.pending[name]; ok {
		if len(restored) == len(b.data) {
			copy(b.data, restored)
		} else {
			b.data = restored
		}
		delete(h.pending, name)
	}
	h.blocks = append(h.blocks, b)
	h.byName[name] = b
	h.live += len(b.data)
	if h.live > h.highWater {
		h.highWater = h.live
	}
	return b
}

// Lookup returns the live block with the given name.
func (h *Heap) Lookup(name string) (*Block, bool) {
	b, ok := h.byName[name]
	return b, ok
}

// Free releases a block. Its bytes stop counting as live (C3 does not save
// them) but remain in the high-water mark (Condor would).
func (h *Heap) Free(b *Block) {
	if h.byName[b.name] != b {
		return
	}
	delete(h.byName, b.name)
	for i, blk := range h.blocks {
		if blk == b {
			h.blocks = append(h.blocks[:i], h.blocks[i+1:]...)
			break
		}
	}
	h.live -= len(b.data)
	h.freed += int64(len(b.data))
}

// LiveBytes returns the bytes in live blocks.
func (h *Heap) LiveBytes() int { return h.live }

// HighWater returns the peak simultaneous allocation.
func (h *Heap) HighWater() int { return h.highWater }

// FreedBytes returns the cumulative bytes freed.
func (h *Heap) FreedBytes() int64 { return h.freed }

// Blocks returns the live blocks in allocation order.
func (h *Heap) Blocks() []*Block { return append([]*Block(nil), h.blocks...) }

// Save serializes the live blocks.
func (h *Heap) Save() []byte {
	w := wire.NewWriter(64 + h.live)
	w.U32(uint32(len(h.blocks)))
	for _, b := range h.blocks {
		w.String(b.name)
		w.Bytes32(b.data)
	}
	w.Int(h.highWater)
	w.I64(h.freed)
	return w.Bytes()
}

// Load restores blocks from a Save image. Contents land in live blocks with
// matching names immediately; names not yet allocated are parked in the
// pending table for the next Alloc.
func (h *Heap) Load(data []byte) error {
	r := wire.NewReader(data)
	n := r.Count(8) // minimum bytes per serialized block
	for i := 0; i < n; i++ {
		name := r.String()
		contents := r.Bytes32()
		if r.Err() != nil {
			return fmt.Errorf("statesave: corrupt heap image: %w", r.Err())
		}
		if b, ok := h.byName[name]; ok {
			if len(contents) == len(b.data) {
				copy(b.data, contents)
			} else {
				h.live += len(contents) - len(b.data)
				b.data = contents
			}
		} else {
			h.pending[name] = contents
		}
	}
	h.highWater = r.Int()
	h.freed = r.I64()
	if h.live > h.highWater {
		h.highWater = h.live
	}
	return r.Err()
}

// Section adapts the heap into a registry section named "__heap".
func (h *Heap) Section() Section {
	return NewCustom("__heap",
		h.LiveBytes,
		func(w *wire.Writer) { w.Bytes32(h.Save()) },
		func(r *wire.Reader) error {
			img := r.Bytes32()
			if r.Err() != nil {
				return r.Err()
			}
			return h.Load(img)
		},
	)
}
