package cluster_test

// In-process end-to-end coverage of the erasure-coded stable store: the
// same dual-failure scenario the multi-process TestMultiProcessDualSIGKILLRS
// runs over TCP, here against ReplicatedStore with fail-stop injection —
// cheap enough to run under -race on every push.

import (
	"sync"
	"testing"

	"c3/internal/ckpt"
	"c3/internal/cluster"
	"c3/internal/sched"
	"c3/internal/stable"
)

// TestInProcessDualFailureRSCodec: two ranks fail-stop in the same attempt
// under rs k=3,m=2; each dead rank's lines survive as >= 3 of 5 shards on
// the surviving nodes and the world converges to failure-free checksums.
func TestInProcessDualFailureRSCodec(t *testing.T) {
	const ranks = 6
	const iters = 12

	var ref sync.Map
	run(t, cluster.Config{Ranks: ranks, App: sched.StressApp(iters, &ref), Seed: 1})

	rs, err := stable.NewCodec("rs", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	store := stable.NewReplicatedStore(ranks, stable.WithCodec(rs))
	defer store.Close()
	var got sync.Map
	res := run(t, cluster.Config{
		Ranks:  ranks,
		App:    sched.StressApp(iters, &got),
		Store:  store,
		Policy: ckpt.Policy{EveryNthPragma: 4},
		AttemptFailures: [][]cluster.FailureSpec{{
			{Rank: 1, AtPragma: 9, AfterCheckpoints: 2},
			{Rank: 3, AtPragma: 9, AfterCheckpoints: 2},
		}},
	})
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Attempts)
	}
	for r := 0; r < ranks; r++ {
		want, _ := ref.Load(r)
		gotv, ok := got.Load(r)
		if !ok || want != gotv {
			t.Fatalf("rank %d: ref %v vs recovered %v", r, want, gotv)
		}
	}
	if store.Reassemblies() == 0 {
		t.Fatal("recovery did not reassemble any checkpoint from shards")
	}
	// The stats surface the overhead ratio: stored bytes stay well under
	// dup's 3x-plus (local + two full replicas) for the same checkpoints.
	// rs k=3,m=2 is nominally 5/3 of the blob; the blob carries section
	// framing and shard padding on top of the raw CheckpointBytes, so
	// small test checkpoints land a little above that — but far below dup.
	for _, rs := range res.Stats {
		if rs.Stats.CheckpointBytes == 0 || rs.Stats.StoredBytes == 0 {
			continue
		}
		ratio := float64(rs.Stats.StoredBytes) / float64(rs.Stats.CheckpointBytes)
		if ratio > 2.5 {
			t.Fatalf("rank %d stored/checkpoint ratio %.2f — erasure coding not applied?", rs.Rank, ratio)
		}
	}
}

// TestInProcessXORCodecSingleFailure: the cheaper single-parity codec
// survives the single-failure scenario it is specified for.
func TestInProcessXORCodecSingleFailure(t *testing.T) {
	const ranks = 5
	const iters = 12

	var ref sync.Map
	run(t, cluster.Config{Ranks: ranks, App: sched.StressApp(iters, &ref), Seed: 1})

	xor, err := stable.NewCodec("xor", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	store := stable.NewReplicatedStore(ranks, stable.WithCodec(xor))
	defer store.Close()
	var got sync.Map
	res := run(t, cluster.Config{
		Ranks:    ranks,
		App:      sched.StressApp(iters, &got),
		Store:    store,
		Policy:   ckpt.Policy{EveryNthPragma: 4},
		Failures: []cluster.FailureSpec{{Rank: 2, AtPragma: 9, AfterCheckpoints: 2}},
	})
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	for r := 0; r < ranks; r++ {
		want, _ := ref.Load(r)
		gotv, ok := got.Load(r)
		if !ok || want != gotv {
			t.Fatalf("rank %d: ref %v vs recovered %v", r, want, gotv)
		}
	}
}
