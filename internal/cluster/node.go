package cluster

// This file is the per-process half of the multi-process deployment mode:
// one OS process per rank (a "node"), real TCP between them, and real
// SIGKILL as the failure injector. RunNode hosts one rank and takes orders
// from the launcher (launch.go) over its stdin/stdout pipes:
//
//	launcher -> node:  run <attempt> <restore>   start an attempt
//	                   abort <token>             tear the current attempt down
//	                   quit                      exit
//	node -> launcher:  ready                     store + meshes are up
//	                   victim                    failure spec fired; awaiting SIGKILL
//	                   stat <attempt> <k=v...>   store statistics for the attempt
//	                   done <attempt> <result>   attempt completed
//	                   down <attempt>            attempt ended with the world down
//	                   aborted <token>           abort acknowledged, attempt torn down
//	                   error <msg>               fatal node error
//
// A node outlives its attempts: the replicated store's memory (and its
// replication TCP mesh) persists across world restarts, exactly like a
// cluster node whose surviving RAM holds checkpoint replicas while the MPI
// job is relaunched. Only a node that really dies — the SIGKILLed victim —
// loses its memory, and its re-executed replacement reassembles its
// checkpoints from peers over the wire.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"c3/internal/ckpt"
	"c3/internal/mpi"
	"c3/internal/stable"
	"c3/internal/transport/tcp"
)

// NodeConfig configures one rank's process.
type NodeConfig struct {
	// Rank is the hosted rank; Ranks the world size.
	Rank, Ranks int
	// MPIAddrs are the per-rank addresses of the MPI-plane TCP meshes (one
	// fresh mesh per attempt, tagged with the attempt's generation).
	MPIAddrs []string
	// ReplAddrs, when non-empty, are the per-rank addresses of the
	// long-lived replication mesh backing a diskless stable.DistStore.
	ReplAddrs []string
	// StorePath is the shared-filesystem DiskStore root used when
	// ReplAddrs is empty.
	StorePath string
	// App is the application main, run once per attempt.
	App func(Env) error
	// Args is handed to the application via Env.Args.
	Args any
	// Result, when non-nil, is evaluated after a successful attempt and
	// reported to the launcher with the done event.
	Result func() string
	// Policy controls pragma firing.
	Policy ckpt.Policy
	// FullCheckpointEvery enables incremental checkpointing (see Config).
	FullCheckpointEvery int
	// Kill schedules this node's own failure: when the spec fires (on the
	// first attempt), the node reports itself as the victim and blocks,
	// awaiting the launcher's real SIGKILL.
	Kill *FailureSpec
	// DialWindow bounds first-connection retries (start-up ordering).
	DialWindow time.Duration
	// In and Out are the control pipes (the launcher's end of stdin/stdout).
	In  io.Reader
	Out io.Writer
	// Log, when non-nil, receives node progress lines (stderr tracing).
	Log func(format string, args ...any)
}

// node is the running state of one rank's process.
type node struct {
	cfg   NodeConfig
	store stable.Store
	dist  *stable.DistStore // non-nil when diskless

	outMu sync.Mutex

	statMu    sync.Mutex
	lastStats ckpt.Stats // the protocol counters of the last finished attempt
}

// RunNode hosts one rank until quit or stdin EOF. It is the body of
// `c3node -worker`.
func RunNode(cfg NodeConfig) error {
	if cfg.Rank < 0 || cfg.Rank >= cfg.Ranks || cfg.Ranks <= 0 {
		return fmt.Errorf("cluster: node rank %d of %d", cfg.Rank, cfg.Ranks)
	}
	if cfg.App == nil {
		return fmt.Errorf("cluster: node has no application")
	}
	if cfg.DialWindow == 0 {
		cfg.DialWindow = 10 * time.Second
	}
	w := &node{cfg: cfg}

	switch {
	case len(cfg.ReplAddrs) > 0:
		rmesh, err := tcp.New(cfg.Rank, cfg.ReplAddrs, tcp.WithDialWindow(cfg.DialWindow))
		if err != nil {
			w.emit("error %v", err)
			return err
		}
		var dopts []stable.DistOption
		if cfg.Log != nil {
			dopts = append(dopts, stable.WithDistLog(cfg.Log))
		}
		w.dist = stable.NewDistStore(cfg.Rank, cfg.Ranks, rmesh, dopts...)
		w.store = w.dist
		defer w.dist.Close()
	case cfg.StorePath != "":
		disk, err := stable.NewDiskStore(cfg.StorePath)
		if err != nil {
			w.emit("error %v", err)
			return err
		}
		w.store = disk
	default:
		err := fmt.Errorf("cluster: node needs ReplAddrs or StorePath")
		w.emit("error %v", err)
		return err
	}

	cmds := make(chan []string)
	go func() {
		sc := bufio.NewScanner(cfg.In)
		sc.Buffer(make([]byte, 64*1024), 64*1024)
		for sc.Scan() {
			if f := strings.Fields(sc.Text()); len(f) > 0 {
				if cfg.Log != nil {
					cfg.Log("rank %d <- %s", cfg.Rank, strings.Join(f, " "))
				}
				cmds <- f
			}
		}
		close(cmds)
	}()

	w.emit("ready")
	for cmd := range cmds {
		switch cmd[0] {
		case "run":
			if len(cmd) < 3 {
				w.emit("error malformed run command")
				continue
			}
			attempt, _ := strconv.Atoi(cmd[1])
			restore := cmd[2] == "1"
			w.runAttempt(attempt, restore, cmds)
		case "abort":
			w.emit("aborted %s", tokenOf(cmd))
		case "quit":
			return nil
		}
	}
	return nil
}

func tokenOf(cmd []string) string {
	if len(cmd) > 1 {
		return cmd[1]
	}
	return "?"
}

func (w *node) emit(format string, args ...any) {
	w.outMu.Lock()
	defer w.outMu.Unlock()
	fmt.Fprintf(w.cfg.Out, format+"\n", args...)
	if w.cfg.Log != nil {
		w.cfg.Log("rank %d -> "+format, append([]any{w.cfg.Rank}, args...)...)
	}
}

// runAttempt executes one world launch, staying responsive to abort
// commands while the application runs.
func (w *node) runAttempt(attempt int, restore bool, cmds <-chan []string) {
	if w.dist != nil {
		w.dist.Resume()
	}
	mesh, err := tcp.New(w.cfg.Rank, w.cfg.MPIAddrs,
		tcp.WithGeneration(uint64(attempt+1)), tcp.WithDialWindow(w.cfg.DialWindow))
	if err != nil {
		w.emit("error %v", err)
		return
	}
	done := make(chan error, 1)
	go func() { done <- w.attemptBody(mesh, attempt, restore) }()

	for {
		select {
		case err := <-done:
			w.finishMesh(mesh)
			switch {
			case err == nil:
				result := ""
				if w.cfg.Result != nil {
					result = w.cfg.Result()
				}
				reasm := int64(0)
				if w.dist != nil {
					reasm = w.dist.Reassemblies()
				}
				w.statMu.Lock()
				st := w.lastStats
				w.statMu.Unlock()
				// Recovery provenance: did this attempt restore from a line,
				// and how many checkpoints were reassembled from peer
				// fragments over the wire.
				w.emit("stat %d reassemblies=%d restores=%d checkpoints=%d", attempt, reasm, st.Restores, st.CheckpointsTaken)
				w.emit("done %d %s", attempt, result)
			case errors.Is(err, mpi.ErrDown):
				w.emit("down %d", attempt)
			default:
				w.emit("error rank %d attempt %d: %v", w.cfg.Rank, attempt, err)
			}
			return
		case cmd, ok := <-cmds:
			if !ok || cmd[0] == "quit" {
				w.teardown(mesh)
				<-done
				return
			}
			if cmd[0] == "abort" {
				w.teardown(mesh)
				<-done
				w.finishMesh(mesh)
				w.emit("aborted %s", tokenOf(cmd))
				return
			}
			w.emit("error unexpected %q during attempt", cmd[0])
		}
	}
}

// teardown brings the current attempt down: the MPI mesh dies (all blocked
// operations return ErrDown) and any commit blocked on a dead neighbor's
// acknowledgment is released.
func (w *node) teardown(mesh *tcp.Mesh) {
	mesh.Shutdown()
	if w.dist != nil {
		w.dist.Interrupt()
	}
}

func (w *node) finishMesh(mesh *tcp.Mesh) {
	mesh.Close()
}

// attemptBody is one rank's share of one world launch — the multi-process
// analogue of runAttempt in run.go, reusing the same per-rank protocol
// bring-up (runRank).
func (w *node) attemptBody(mesh *tcp.Mesh, attempt int, restore bool) error {
	world := mpi.NewWorld(w.cfg.Ranks, mpi.WithInterconnect(mesh))
	cfg := Config{
		Ranks:               w.cfg.Ranks,
		App:                 w.cfg.App,
		Args:                w.cfg.Args,
		Policy:              w.cfg.Policy,
		FullCheckpointEvery: w.cfg.FullCheckpointEvery,
		// The failure fires at the exact protocol point the spec names, but
		// the death itself is real: announce, then freeze until SIGKILL.
		failAction: func() error {
			w.emit("victim")
			select {}
		},
	}
	var failer *failureInjector
	if w.cfg.Kill != nil && attempt == 0 && w.cfg.Kill.Rank == w.cfg.Rank {
		failer = &failureInjector{spec: *w.cfg.Kill}
	}
	err, st := runRank(cfg, world, w.store, w.cfg.Rank, restore, failer)
	w.statMu.Lock()
	w.lastStats = st
	w.statMu.Unlock()
	return err
}
