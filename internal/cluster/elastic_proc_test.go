package cluster_test

// The elastic-membership headline scenario: a real multi-process world of 4
// compute ranks grows to 6 members (two storage slots join through the ops
// control plane at recovery lines), survives an operator SIGKILL in the
// resized world, honors an operator-triggered checkpoint, and shrinks back
// to 4 by draining both storage members — all while the kernel keeps
// running and converges to the failure-free checksums. Every step is driven
// the way a human operator would drive it: HTTP verbs against the per-node
// embedded ops servers.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"c3/internal/cluster"
	"c3/internal/mpi"
	"c3/internal/ops"
)

// elasticApp is a paced deterministic workload: per-iteration state folds
// plus a BXor allreduce every third iteration. The pace only stretches wall
// time (it never touches registered state), so the reference run uses
// pace=0 while the workers run slowly enough for the ops-plane
// orchestration to land mid-flight.
func elasticApp(iters int, pace time.Duration, sums *sync.Map) func(cluster.Env) error {
	return func(env cluster.Env) error {
		st := env.State()
		it := st.Int("it")
		sum := st.Int("sum")
		if _, err := env.Restore(); err != nil {
			return err
		}
		w := env.World()
		r := env.Rank()
		for it.Get() < iters {
			i := it.Get()
			sum.Set((sum.Get()*31 + (r+1)*(i+7)) & 0x7fffffff)
			if i%3 == 2 {
				in := mpi.Int64Bytes([]int64{int64(sum.Get())})
				out := make([]byte, 8)
				if err := w.Allreduce(in, out, 1, mpi.TypeInt64, mpi.OpBXor); err != nil {
					return err
				}
				sum.Set((sum.Get()*131 ^ int(mpi.BytesInt64s(out)[0])) & 0x7fffffff)
			}
			if pace > 0 {
				time.Sleep(pace)
			}
			it.Add(1)
			if err := env.Checkpoint(); err != nil {
				return err
			}
		}
		sums.Store(r, sum.Get())
		return nil
	}
}

const (
	elasticIters = 2000
	elasticPace  = 4 * time.Millisecond
)

// elasticReference computes the failure-free checksums in-process (pace 0:
// the pace is wall-clock only and must not affect state).
func elasticReference(t *testing.T, ranks int) map[int]int {
	t.Helper()
	var sums sync.Map
	if _, err := cluster.Run(cluster.Config{
		Ranks: ranks,
		App:   elasticApp(elasticIters, 0, &sums),
		Seed:  1,
	}); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	ref := make(map[int]int, ranks)
	for r := 0; r < ranks; r++ {
		v, ok := sums.Load(r)
		if !ok {
			t.Fatalf("reference run produced no sum for rank %d", r)
		}
		ref[r] = v.(int)
	}
	return ref
}

// freeTestAddrs reserves k localhost addresses for the ops servers (the
// launcher allocates the MPI and replication planes itself).
func freeTestAddrs(t *testing.T, k int) []string {
	t.Helper()
	addrs := make([]string, 0, k)
	for i := 0; i < k; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve ops addr: %v", err)
		}
		addrs = append(addrs, ln.Addr().String())
		_ = ln.Close()
	}
	return addrs
}

// opsStatus fetches and decodes GET /status from one node.
func opsStatus(addr string) (ops.Status, error) {
	var st ops.Status
	resp, err := http.Get("http://" + addr + "/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("/status: %d %s", resp.StatusCode, body)
	}
	return st, json.Unmarshal(body, &st)
}

// opsPost posts a control verb; the caller decides which statuses to accept.
func opsPost(addr, path, body string) (int, string, error) {
	resp, err := http.Post("http://"+addr+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(out), nil
}

// TestMultiProcessElasticResize is PR 8's acceptance scenario. Timeline
// (all via rank 0's ops server unless noted):
//
//  1. wait for the first committed line, then POST /join twice — the
//     launcher spawns the two spare slots, each admitted by a membership
//     epoch agreement at a recovery line (4 -> 6 members);
//  2. the launcher-as-operator SIGKILLs rank 1 once both joins have landed
//     (ExternalKill.AfterJoins): the kill happens in the resized world and
//     the survivors recover on their own;
//  3. POST /checkpoint forces a line at the next pragma (verified by the
//     commit counter advancing);
//  4. POST /drain removes storage members 4 then 5 at recovery lines
//     (6 -> 4 members), each drained process exiting cleanly;
//  5. the world finishes and every rank's checksum matches the
//     failure-free in-process reference.
func TestMultiProcessElasticResize(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test in -short mode")
	}
	const ranks, capacity = 4, 6
	ref := elasticReference(t, ranks)
	opsAddrs := freeTestAddrs(t, capacity)

	orchErr := make(chan error, 1)
	go func() { orchErr <- elasticOrchestrate(t, opsAddrs[0]) }()

	res, err := cluster.Launch(cluster.LaunchConfig{
		Ranks:    ranks,
		Capacity: capacity,
		Exe:      os.Args[0],
		Env:      []string{procWorkerEnv + "=1", "GOTRACEBACK=all"},
		SelfHeal: true,
		// The operator kill waits for both storage joins: it must land in
		// the resized 6-member world, not the launch world.
		ExternalKill: &cluster.ExternalKillSpec{Rank: 1, AfterCheckpoints: 2, AfterJoins: 2},
		Timeout:      120 * time.Second,
		Args: func(rank int, mpiAddrs, replAddrs []string) []string {
			return []string{
				"-rank", strconv.Itoa(rank),
				"-ranks", strconv.Itoa(ranks),
				"-capacity", strconv.Itoa(capacity),
				"-peers", strings.Join(mpiAddrs, ","),
				"-repl-peers", strings.Join(replAddrs, ","),
				"-self-heal",
				"-every", "4",
				"-app", "elastic",
				"-iters", strconv.Itoa(elasticIters),
				"-pace", elasticPace.String(),
				"-ops-addr", opsAddrs[rank],
			}
		},
		Log: t.Logf,
	})
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	if oerr := <-orchErr; oerr != nil {
		t.Fatalf("orchestration: %v", oerr)
	}
	if res.Joins != 2 {
		t.Errorf("joins=%d, want 2 storage-member admissions", res.Joins)
	}
	if res.Drains != 2 {
		t.Errorf("drains=%d, want 2 graceful membership removals", res.Drains)
	}
	if res.Restarts != 1 {
		t.Errorf("restarts=%d, want exactly 1 (the operator's SIGKILL)", res.Restarts)
	}
	checkProcSums(t, res, ref)
}

// elasticOrchestrate plays the human operator against rank 0's ops server.
// It returns nil once the world has grown to 6, survived the kill, taken an
// on-demand checkpoint, and shrunk back to 4.
func elasticOrchestrate(t *testing.T, addr string) error {
	deadline := time.Now().Add(100 * time.Second)
	await := func(desc string, ok func(ops.Status) bool) (ops.Status, error) {
		for time.Now().Before(deadline) {
			if st, err := opsStatus(addr); err == nil && ok(st) {
				return st, nil
			}
			time.Sleep(25 * time.Millisecond)
		}
		return ops.Status{}, fmt.Errorf("timed out waiting for %s", desc)
	}
	// POST with retry: 409 means the backend is mid-transition (membership
	// agreement in flight, attempt restarting) — the operator tries again.
	postRetry := func(path, body string) error {
		for time.Now().Before(deadline) {
			code, out, err := opsPost(addr, path, body)
			if err == nil && code == http.StatusOK {
				return nil
			}
			if err == nil && code != http.StatusConflict {
				return fmt.Errorf("POST %s: %d %s", path, code, out)
			}
			time.Sleep(100 * time.Millisecond)
		}
		return fmt.Errorf("POST %s: retries exhausted", path)
	}

	// 1. Grow 4 -> 6 once the first line is committed.
	if _, err := await("first committed line", func(st ops.Status) bool {
		return st.Checkpoints >= 1
	}); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		if err := postRetry("/join", ""); err != nil {
			return err
		}
	}
	grown, err := await("6-member world", func(st ops.Status) bool {
		return len(st.Members) == 6
	})
	if err != nil {
		return err
	}
	t.Logf("ops: world grew to %v at membership epoch %d", grown.Members, grown.MembershipEpoch)

	// 2. The kill (launcher-side, gated on the joins) bumps the epoch past
	// the join agreements; wait for the death agreement and recovery. The
	// epoch number is the durable signal — the dead list is transient
	// (cleared as soon as the respawned rank rejoins), so a loaded machine
	// can blow straight past the window where it is non-empty.
	killEpoch, err := await("SIGKILL death agreement", func(st ops.Status) bool {
		return st.Epoch > grown.Epoch
	})
	if err != nil {
		return err
	}
	t.Logf("ops: epoch %d declared dead=%v in the resized world", killEpoch.Epoch, killEpoch.Dead)
	recovered, err := await("post-kill recovery progress", func(st ops.Status) bool {
		return st.Checkpoints > killEpoch.Checkpoints
	})
	if err != nil {
		return err
	}

	// 3. Scrape Prometheus metrics mid-run: the resized world is visible.
	metricsBody := ""
	for time.Now().Before(deadline) {
		resp, rerr := http.Get("http://" + addr + "/metrics")
		if rerr == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				metricsBody = string(b)
				break
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	for _, want := range []string{
		"# TYPE c3_commits_total counter",
		`c3_members{rank="0"} 6`,
		"c3_membership_epoch",
		"c3_commit_seconds_total",
	} {
		if !strings.Contains(metricsBody, want) {
			return fmt.Errorf("/metrics missing %q:\n%s", want, metricsBody)
		}
	}

	// 4. Operator-triggered checkpoint: the commit counter must advance.
	if err := postRetry("/checkpoint", ""); err != nil {
		return err
	}
	if _, err := await("operator checkpoint commit", func(st ops.Status) bool {
		return st.Checkpoints > recovered.Checkpoints
	}); err != nil {
		return err
	}

	// 5. Shrink 6 -> 4: drain both storage members at recovery lines.
	for _, slot := range []int{4, 5} {
		if err := postRetry("/drain", fmt.Sprintf(`{"rank": %d}`, slot)); err != nil {
			return err
		}
		want := slot // membership must have dropped this slot
		if _, err := await(fmt.Sprintf("drain of slot %d", slot), func(st ops.Status) bool {
			for _, m := range st.Members {
				if m == want {
					return false
				}
			}
			return true
		}); err != nil {
			return err
		}
	}
	final, err := await("4-member world", func(st ops.Status) bool {
		return fmt.Sprint(st.Members) == "[0 1 2 3]"
	})
	if err != nil {
		return err
	}
	t.Logf("ops: world shrank back to %v at membership epoch %d", final.Members, final.MembershipEpoch)
	return nil
}
