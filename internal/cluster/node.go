package cluster

// This file is the per-process half of the multi-process deployment mode:
// one OS process per rank (a "node"), real TCP between them, and real
// SIGKILL as the failure injector. RunNode hosts one rank and takes orders
// from the launcher (launch.go) over its stdin/stdout pipes:
//
//	launcher -> node:  run <attempt> <restore>   start an attempt
//	                   abort <token>             tear the current attempt down
//	                   join                      adopt the world's state from
//	                                             peers (self-heal respawn)
//	                   quit                      exit
//	node -> launcher:  ready                     store + meshes are up
//	                   victim                    failure spec fired; awaiting SIGKILL
//	                   ckpt <attempt> <version>  a checkpoint committed (self-heal)
//	                   respawn <rank>            coordinator requests a re-exec
//	                   stat <attempt> <k=v...>   store statistics for the attempt
//	                   done <attempt> <result>   attempt completed
//	                   down <attempt>            attempt ended with the world down
//	                   aborted <token>           abort acknowledged, attempt torn down
//	                   error <msg>               fatal node error
//
// A node outlives its attempts: the replicated store's memory (and its
// replication TCP mesh) persists across world restarts, exactly like a
// cluster node whose surviving RAM holds checkpoint replicas while the MPI
// job is relaunched. Only a node that really dies — the SIGKILLed victim —
// loses its memory, and its re-executed replacement reassembles its
// checkpoints from peers over the wire.
//
// Two coordination modes exist. In the legacy launcher-driven mode the
// launcher is an omniscient oracle: it delivers the SIGKILL itself, aborts
// the survivors, re-execs the dead rank, and broadcasts the next attempt.
// In self-healing mode (NodeConfig.SelfHeal) the node shares its long-lived
// replication mesh between the distributed store and a failure detector
// (internal/detect) through a transport.Demux: survivors detect a death via
// phi-accrual heartbeat monitoring, agree on an epoch-numbered dead set,
// interrupt in-flight commits by advancing the store's epoch, elect the
// lowest-ranked survivor to ask the launcher — now a dumb respawner — for
// replacement processes, and enter the restore attempt on their own. The
// attempt number is derived from the agreed epoch (attempt = epoch - 1),
// so every process, including a freshly joined replacement, converges on
// the same MPI-mesh generation without a central sequencer.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"c3/internal/ckpt"
	"c3/internal/detect"
	"c3/internal/mpi"
	"c3/internal/stable"
	"c3/internal/transport"
	"c3/internal/transport/tcp"
)

// SelfHealConfig enables and tunes the autonomous failure-detection and
// recovery mode. It requires the diskless replicated store (ReplAddrs).
type SelfHealConfig struct {
	// HeartbeatInterval is the detector's ping period (default 25ms).
	HeartbeatInterval time.Duration
	// PhiThreshold is the accrued suspicion level that declares a peer
	// suspect (default 5).
	PhiThreshold float64
	// JoinTimeout bounds how long a respawned replacement waits for a
	// survivor to answer its hello (default 15s).
	JoinTimeout time.Duration
}

// NodeConfig configures one rank's process.
type NodeConfig struct {
	// Rank is the hosted rank; Ranks the world size.
	Rank, Ranks int
	// MPIAddrs are the per-rank addresses of the MPI-plane TCP meshes (one
	// fresh mesh per attempt, tagged with the attempt's generation).
	MPIAddrs []string
	// ReplAddrs, when non-empty, are the per-rank addresses of the
	// long-lived replication mesh backing a diskless stable.DistStore.
	ReplAddrs []string
	// StorePath is the shared-filesystem DiskStore root used when
	// ReplAddrs is empty.
	StorePath string
	// Codec selects the diskless store's fragment codec: "dup" (full
	// +1/+2 replication, default), "xor" (k data + 1 parity shard on
	// distinct ring successors, tolerates one loss), or "rs"
	// (Reed-Solomon k+m, tolerates any m simultaneous losses at a
	// fraction of dup's memory and wire bytes).
	Codec string
	// DataShards (k) and ParityShards (m) tune the codec geometry; zero
	// selects the per-codec defaults (dup: 2 fragments; xor: k=4; rs:
	// k=4, m=2).
	DataShards   int
	ParityShards int
	// App is the application main, run once per attempt.
	App func(Env) error
	// Args is handed to the application via Env.Args.
	Args any
	// Result, when non-nil, is evaluated after a successful attempt and
	// reported to the launcher with the done event.
	Result func() string
	// Policy controls pragma firing.
	Policy ckpt.Policy
	// FullCheckpointEvery enables incremental checkpointing (see Config).
	FullCheckpointEvery int
	// Kill schedules this node's own failure: when the spec fires (on the
	// first attempt), the node reports itself as the victim and blocks,
	// awaiting the launcher's real SIGKILL.
	Kill *FailureSpec
	// SelfHeal, when non-nil, runs the node in self-healing mode.
	SelfHeal *SelfHealConfig
	// AckTimeout, QueryTimeout and QueryRetries tune the distributed
	// store's neighbor-acknowledgment and recovery-query behavior; zero
	// values keep the store defaults. The detector's suspicion threshold
	// and these timeouts should be tuned together (see cmd/c3node).
	AckTimeout   time.Duration
	QueryTimeout time.Duration
	QueryRetries int
	// DialWindow bounds first-connection retries (start-up ordering).
	DialWindow time.Duration
	// In and Out are the control pipes (the launcher's end of stdin/stdout).
	In  io.Reader
	Out io.Writer
	// Log, when non-nil, receives node progress lines (stderr tracing).
	Log func(format string, args ...any)
}

// node is the running state of one rank's process.
type node struct {
	cfg   NodeConfig
	store stable.Store
	dist  *stable.DistStore // non-nil when diskless

	outMu sync.Mutex

	statMu    sync.Mutex
	lastStats ckpt.Stats // the protocol counters of the last finished attempt

	curAttempt atomic.Int64 // attempt whose events (ckpt) are being emitted
}

// distOptions assembles the store options shared by both modes.
func (cfg *NodeConfig) distOptions() ([]stable.DistOption, error) {
	var opts []stable.DistOption
	if cfg.Codec != "" || cfg.DataShards > 0 || cfg.ParityShards > 0 {
		codec, err := stable.NewCodec(cfg.Codec, cfg.DataShards, cfg.ParityShards)
		if err != nil {
			return nil, err
		}
		if codec.ParityShards() == 0 && cfg.DataShards > 0 {
			opts = append(opts, stable.WithDistFragments(cfg.DataShards))
		} else if codec.ParityShards() > 0 {
			opts = append(opts, stable.WithDistCodec(codec))
		}
	}
	if cfg.Log != nil {
		opts = append(opts, stable.WithDistLog(cfg.Log))
	}
	if cfg.AckTimeout > 0 {
		opts = append(opts, stable.WithAckTimeout(cfg.AckTimeout))
	}
	if cfg.QueryTimeout > 0 {
		opts = append(opts, stable.WithQueryTimeout(cfg.QueryTimeout))
	}
	if cfg.QueryRetries > 0 {
		opts = append(opts, stable.WithQueryRetries(cfg.QueryRetries))
	}
	return opts, nil
}

// RunNode hosts one rank until quit or stdin EOF. It is the body of
// `c3node -worker`.
func RunNode(cfg NodeConfig) error {
	if cfg.Rank < 0 || cfg.Rank >= cfg.Ranks || cfg.Ranks <= 0 {
		return fmt.Errorf("cluster: node rank %d of %d", cfg.Rank, cfg.Ranks)
	}
	if cfg.App == nil {
		return fmt.Errorf("cluster: node has no application")
	}
	if cfg.DialWindow == 0 {
		cfg.DialWindow = 10 * time.Second
	}
	w := &node{cfg: cfg}
	w.curAttempt.Store(-1)

	if cfg.SelfHeal != nil {
		if len(cfg.ReplAddrs) == 0 {
			err := fmt.Errorf("cluster: self-healing mode requires the diskless replicated store (ReplAddrs)")
			w.emit("error %v", err)
			return err
		}
		return w.runSelfHeal()
	}

	switch {
	case len(cfg.ReplAddrs) > 0:
		dopts, err := cfg.distOptions()
		if err != nil {
			w.emit("error %v", err)
			return err
		}
		rmesh, err := tcp.New(cfg.Rank, cfg.ReplAddrs, tcp.WithDialWindow(cfg.DialWindow))
		if err != nil {
			w.emit("error %v", err)
			return err
		}
		w.dist = stable.NewDistStore(cfg.Rank, cfg.Ranks, rmesh, dopts...)
		w.store = w.dist
		defer w.dist.Close()
	case cfg.StorePath != "":
		disk, err := stable.NewDiskStore(cfg.StorePath)
		if err != nil {
			w.emit("error %v", err)
			return err
		}
		w.store = disk
	default:
		err := fmt.Errorf("cluster: node needs ReplAddrs or StorePath")
		w.emit("error %v", err)
		return err
	}

	cmds := w.commandStream()
	w.emit("ready")
	for cmd := range cmds {
		switch cmd[0] {
		case "run":
			if len(cmd) < 3 {
				w.emit("error malformed run command")
				continue
			}
			attempt, _ := strconv.Atoi(cmd[1])
			restore := cmd[2] == "1"
			w.runAttempt(attempt, restore, cmds)
		case "abort":
			w.emit("aborted %s", tokenOf(cmd))
		case "quit":
			return nil
		}
	}
	return nil
}

// commandStream turns the stdin pipe into a channel of parsed commands.
func (w *node) commandStream() chan []string {
	cmds := make(chan []string)
	go func() {
		sc := bufio.NewScanner(w.cfg.In)
		sc.Buffer(make([]byte, 64*1024), 64*1024)
		for sc.Scan() {
			if f := strings.Fields(sc.Text()); len(f) > 0 {
				if w.cfg.Log != nil {
					w.cfg.Log("rank %d <- %s", w.cfg.Rank, strings.Join(f, " "))
				}
				cmds <- f
			}
		}
		close(cmds)
	}()
	return cmds
}

func tokenOf(cmd []string) string {
	if len(cmd) > 1 {
		return cmd[1]
	}
	return "?"
}

func (w *node) emit(format string, args ...any) {
	w.outMu.Lock()
	defer w.outMu.Unlock()
	fmt.Fprintf(w.cfg.Out, format+"\n", args...)
	if w.cfg.Log != nil {
		w.cfg.Log("rank %d -> "+format, append([]any{w.cfg.Rank}, args...)...)
	}
}

// runAttempt executes one world launch, staying responsive to abort
// commands while the application runs.
func (w *node) runAttempt(attempt int, restore bool, cmds <-chan []string) {
	if w.dist != nil {
		w.dist.Resume()
	}
	w.curAttempt.Store(int64(attempt))
	mesh, err := tcp.New(w.cfg.Rank, w.cfg.MPIAddrs,
		tcp.WithGeneration(uint64(attempt+1)), tcp.WithDialWindow(w.cfg.DialWindow))
	if err != nil {
		w.emit("error %v", err)
		return
	}
	done := make(chan error, 1)
	go func() { done <- w.attemptBody(mesh, attempt, restore) }()

	for {
		select {
		case err := <-done:
			w.finishMesh(mesh)
			switch {
			case err == nil:
				w.emitSuccess(attempt, nil)
			case errors.Is(err, mpi.ErrDown):
				w.emit("down %d", attempt)
			default:
				w.emit("error rank %d attempt %d: %v", w.cfg.Rank, attempt, err)
			}
			return
		case cmd, ok := <-cmds:
			if !ok || cmd[0] == "quit" {
				w.teardown(mesh)
				<-done
				return
			}
			if cmd[0] == "abort" {
				w.teardown(mesh)
				<-done
				w.finishMesh(mesh)
				w.emit("aborted %s", tokenOf(cmd))
				return
			}
			w.emit("error unexpected %q during attempt", cmd[0])
		}
	}
}

// emitSuccess reports a completed attempt: the stat line (recovery
// provenance, and in self-healing mode the detection/agreement/restore
// latency decomposition) followed by the done event.
func (w *node) emitSuccess(attempt int, sh *selfHealState) {
	result := ""
	if w.cfg.Result != nil {
		result = w.cfg.Result()
	}
	reasm := int64(0)
	if w.dist != nil {
		reasm = w.dist.Reassemblies()
	}
	w.statMu.Lock()
	st := w.lastStats
	w.statMu.Unlock()
	// Recovery provenance: did this attempt restore from a line, and how
	// many checkpoints were reassembled from peer fragments over the wire.
	stat := fmt.Sprintf("stat %d reassemblies=%d restores=%d checkpoints=%d",
		attempt, reasm, st.Restores, st.CheckpointsTaken)
	if sh != nil {
		tm := sh.det.Times()
		suspectUS, agreeUS, restoreUS := int64(0), int64(0), int64(0)
		if !tm.SuspectAt.IsZero() {
			suspectUS = tm.SuspectAt.UnixMicro()
			if tm.AgreeAt.After(tm.SuspectAt) {
				agreeUS = tm.AgreeAt.Sub(tm.SuspectAt).Microseconds()
			}
			if sh.restoreStart.After(tm.SuspectAt) {
				restoreUS = sh.restoreStart.Sub(tm.SuspectAt).Microseconds()
			}
		}
		stat += fmt.Sprintf(" detections=%d epochs=%d suspect_us=%d agree_us=%d restore_us=%d",
			sh.det.Detections(), sh.det.Epoch(), suspectUS, agreeUS, restoreUS)
	}
	w.emit("%s", stat)
	w.emit("done %d %s", attempt, result)
}

// teardown brings the current attempt down: the MPI mesh dies (all blocked
// operations return ErrDown) and any commit blocked on a dead neighbor's
// acknowledgment is released.
func (w *node) teardown(mesh *tcp.Mesh) {
	mesh.Shutdown()
	if w.dist != nil {
		w.dist.Interrupt()
	}
}

func (w *node) finishMesh(mesh *tcp.Mesh) {
	mesh.Close()
}

// attemptBody is one rank's share of one world launch — the multi-process
// analogue of runAttempt in run.go, reusing the same per-rank protocol
// bring-up (runRank).
func (w *node) attemptBody(mesh *tcp.Mesh, attempt int, restore bool) error {
	world := mpi.NewWorld(w.cfg.Ranks, mpi.WithInterconnect(mesh))
	cfg := Config{
		Ranks:               w.cfg.Ranks,
		App:                 w.cfg.App,
		Args:                w.cfg.Args,
		Policy:              w.cfg.Policy,
		FullCheckpointEvery: w.cfg.FullCheckpointEvery,
		// The failure fires at the exact protocol point the spec names, but
		// the death itself is real: announce, then freeze until SIGKILL.
		failAction: func() error {
			w.emit("victim")
			select {}
		},
	}
	var failer *failureInjector
	if w.cfg.Kill != nil && attempt == 0 && w.cfg.Kill.Rank == w.cfg.Rank {
		failer = newFailureInjector([]FailureSpec{*w.cfg.Kill})
	}
	err, st := runRank(cfg, world, w.store, w.cfg.Rank, restore, failer)
	w.statMu.Lock()
	w.lastStats = st
	w.statMu.Unlock()
	return err
}

// --- Self-healing mode ---

// epochEvent is a committed epoch transition delivered by the detector.
type epochEvent struct {
	epoch   uint64
	dead    []int
	newDead []int
}

// selfHealState bundles the self-healing runtime of one node.
type selfHealState struct {
	det          *detect.Detector
	restoreStart time.Time // when the latest restore attempt was entered
}

// runSelfHeal is RunNode's body in self-healing mode: the long-lived
// replication mesh is demultiplexed between the distributed store and the
// failure detector, and the node coordinates its own recovery.
func (w *node) runSelfHeal() error {
	cfg := w.cfg
	sh := cfg.SelfHeal
	if sh.JoinTimeout <= 0 {
		sh.JoinTimeout = 15 * time.Second
	}

	dopts, err := cfg.distOptions()
	if err != nil {
		w.emit("error %v", err)
		return err
	}
	rmesh, err := tcp.New(cfg.Rank, cfg.ReplAddrs, tcp.WithDialWindow(cfg.DialWindow))
	if err != nil {
		w.emit("error %v", err)
		return err
	}
	demux := transport.NewDemux(rmesh, cfg.Rank)
	replPlane := demux.Plane(transport.WireKindRepl)
	detPlane := demux.Plane(transport.WireKindDetect)

	dopts = append(dopts, stable.WithCommitHook(func(version int) {
		w.emit("ckpt %d %d", w.curAttempt.Load(), version)
	}))
	w.dist = stable.NewDistStore(cfg.Rank, cfg.Ranks, replPlane, dopts...)
	w.store = w.dist
	defer w.dist.Close()

	epochCh := make(chan epochEvent, 16)
	evicted := make(chan uint64, 1)
	det, err := detect.New(detect.Options{
		Self:              cfg.Rank,
		Ranks:             cfg.Ranks,
		Net:               detPlane,
		HeartbeatInterval: sh.HeartbeatInterval,
		PhiThreshold:      sh.PhiThreshold,
		OnEpoch: func(epoch uint64, dead, newDead []int) {
			epochCh <- epochEvent{epoch: epoch, dead: dead, newDead: newDead}
		},
		OnEvicted: func(epoch uint64) {
			select {
			case evicted <- epoch:
			default:
			}
		},
		// Fencing: when this rank loses majority contact the store refuses
		// checkpoint commits (ErrFenced) instead of excusing the unreachable
		// holders — a minority-side rank must not extend a recovery line a
		// majority may be superseding without it.
		OnFence: func(fenced bool) { w.dist.SetFenced(fenced) },
		Logf:    cfg.Log,
	})
	if err != nil {
		w.emit("error %v", err)
		return err
	}
	defer det.Close()
	demux.SetObservers(det.ObserveRecv, det.ObserveSend)
	demux.Start()
	defer demux.Close()
	det.Start()

	state := &selfHealState{det: det}
	cmds := w.commandStream()
	w.emit("ready")

	var (
		mesh      *tcp.Mesh
		done      chan error
		attempt   = -1
		seenEpoch = uint64(1)
		partPairs [][2]int // active partition rules (nil when healed)
	)
	start := func(a int, restore bool) {
		if w.dist != nil {
			w.dist.Resume()
		}
		attempt = a
		w.curAttempt.Store(int64(a))
		m, err := tcp.New(cfg.Rank, cfg.MPIAddrs,
			tcp.WithGeneration(uint64(a+1)), tcp.WithDialWindow(cfg.DialWindow))
		if err != nil {
			w.emit("error %v", err)
			return
		}
		if partPairs != nil {
			// An attempt born during an active partition inherits the rules:
			// its traffic toward the far side is held until the heal.
			m.SetPartition(partPairs, true)
		}
		mesh = m
		done = make(chan error, 1)
		go func(m *tcp.Mesh) { done <- w.attemptBody(m, a, restore) }(m)
	}
	stop := func() {
		if done == nil {
			return
		}
		mesh.Shutdown()
		<-done
		w.finishMesh(mesh)
		mesh, done = nil, nil
	}
	defer stop()

	for {
		select {
		case cmd, ok := <-cmds:
			if !ok {
				return nil
			}
			switch cmd[0] {
			case "run":
				if len(cmd) < 3 {
					w.emit("error malformed run command")
					continue
				}
				a, _ := strconv.Atoi(cmd[1])
				if done != nil || a <= attempt {
					continue // already running or stale
				}
				start(a, cmd[2] == "1")
			case "join":
				// A freshly respawned replacement: adopt the agreed epoch
				// from the survivors, then enter the current restore attempt.
				epoch, err := det.Join(sh.JoinTimeout)
				if err != nil {
					w.emit("error %v", err)
					return err
				}
				seenEpoch = epoch
				state.restoreStart = time.Now()
				start(int(epoch)-1, true)
			case "part":
				// part a+b+... — sever the listed group from the rest on every
				// mesh this process owns (replication plane and the current
				// MPI attempt), in hold mode: frames toward the far side are
				// buffered and delivered at the heal, modeling a partition
				// shorter than TCP's retransmission patience.
				if len(cmd) < 2 {
					w.emit("error malformed part command")
					continue
				}
				groupA, err := ParseGroup(cmd[1])
				if err != nil {
					w.emit("error part: %v", err)
					continue
				}
				partPairs = SplitPairs(groupA, cfg.Ranks, false)
				rmesh.SetPartition(partPairs, true)
				if mesh != nil {
					mesh.SetPartition(partPairs, true)
				}
			case "heal":
				partPairs = nil
				rmesh.Heal()
				if mesh != nil {
					mesh.Heal()
				}
			case "quit":
				return nil
			case "abort":
				// Legacy command; in self-healing mode recovery is driven by
				// epochs, but acknowledge so a mixed launcher doesn't hang.
				stop()
				w.emit("aborted %s", tokenOf(cmd))
			}

		case ev := <-epochCh:
			if ev.epoch <= seenEpoch {
				continue // stale (e.g. the epoch adopted during join)
			}
			seenEpoch = ev.epoch
			// Release commits blocked on acknowledgments from ranks that the
			// agreement just declared dead, then tear the attempt down.
			w.dist.AdvanceEpoch(ev.epoch)
			stop()
			// The lowest-ranked survivor coordinates: it negotiates the
			// restore line (logged for visibility; the binding negotiation is
			// the collective reduction inside Restore) and asks the respawner
			// for replacements.
			if coordinatorOf(ev.dead, cfg.Ranks) == cfg.Rank {
				for _, r := range ev.newDead {
					w.emit("respawn %d", r)
				}
				if w.cfg.Log != nil {
					// Informational pre-negotiation of the restore line over
					// the store's query protocol; off the critical path (the
					// binding negotiation is Restore's collective reduction).
					go func(epoch uint64) {
						v, ok, err := w.store.LastCommitted(cfg.Rank)
						w.cfg.Log("rank %d: coordinating epoch %d recovery, candidate line %d (ok=%v err=%v)",
							cfg.Rank, epoch, v, ok, err)
					}(ev.epoch)
				}
			}
			state.restoreStart = time.Now()
			start(int(ev.epoch)-1, true)

		case err := <-done:
			w.finishMesh(mesh)
			mesh, done = nil, nil
			switch {
			case err == nil:
				w.emitSuccess(attempt, state)
				// Stay alive: a later failure elsewhere can still roll the
				// world back, in which case the epoch event restarts us.
			case errors.Is(err, mpi.ErrDown):
				// The mesh died under us — either our own teardown racing the
				// epoch event, or a peer's death stalling the world until the
				// detector confirms it. The epoch event drives the restart.
				w.emit("down %d", attempt)
			case errors.Is(err, stable.ErrFenced):
				// Minority side of a partition: the store refused a commit.
				// Report down and wait — the heal delivers a newer epoch
				// (majority committed without us) that restarts the attempt.
				w.emit("down %d", attempt)
			default:
				w.emit("error rank %d attempt %d: %v", cfg.Rank, attempt, err)
				return err
			}

		case epoch := <-evicted:
			err := fmt.Errorf("rank %d evicted by epoch %d while alive (false suspicion won agreement)", cfg.Rank, epoch)
			w.emit("error %v", err)
			return err
		}
	}
}

// coordinatorOf returns the recovery coordinator for a dead set: the
// lowest-ranked survivor.
func coordinatorOf(dead []int, ranks int) int {
	deadSet := make(map[int]bool, len(dead))
	for _, r := range dead {
		deadSet[r] = true
	}
	for r := 0; r < ranks; r++ {
		if !deadSet[r] {
			return r
		}
	}
	return -1
}
