package ckpt

import (
	"fmt"

	"c3/internal/mpi"
	"c3/internal/wire"
)

// CompletedBy values: what kind of message completed a request. Recorded
// during the logging phase ("during the logging phase, we mark the type of
// message matching the posted request during each completed Test or Wait
// call", Section 4.1) so recovery knows which crossing requests to replay
// from the log and which to recreate.
const (
	cbNone   uint8 = iota // still pending
	cbIntra               // completed by an intra-epoch message (re-sent on recovery)
	cbLate                // completed by a late message (replayed from the log)
	cbEarly               // completed by an early message
	cbAtLine              // already complete when the checkpoint was taken
)

// ReqEntry is one row of the request indirection table. The application
// holds the integer ID; the entry holds the live MPI request plus everything
// needed to reconstruct it on recovery ("for each request allocated by MPI,
// we allocate an entry in this table ... including type of operation,
// message parameters, and the epoch in which the request has been
// allocated", Section 4.1).
type ReqEntry struct {
	ID        int
	IsRecv    bool
	Ctx       uint32
	Src       int32 // may be mpi.AnySource
	Tag       int32 // may be mpi.AnyTag
	BytesCap  int   // user payload capacity in bytes
	TypeH     int   // datatype handle, 0 if not table-managed
	BornEpoch uint64

	// Pin is the completing signature recorded when a wildcard request
	// completes with an intra-epoch message during logging; recovery
	// re-posts the request restricted to this signature.
	PinSrc int32
	PinTag int32
	Pinned bool

	Done        bool
	Status      mpi.Status // user view (payload bytes exclude the header)
	CompletedBy uint8
	LateSeq     uint64 // log entry that completed it, when CompletedBy == cbLate
	TestFails   int    // unsuccessful Test calls recorded this period
	ReplayFails int    // restored counter consumed during recovery

	// Runtime-only fields.
	buf      []byte        // application buffer (nil for restored entries until reattached)
	dt       *mpi.Datatype // application datatype (nil until reattached)
	count    int           // element count
	comm     *mpi.Comm
	staging  []byte       // raw receive buffer (header + packed payload)
	mpiReq   *mpi.Request // live request, nil if replayed/suppressed
	wildcard bool
	replay   *LateEntry // reserved log entry for recovery-time requests
	restored bool       // loaded from a checkpoint
	dead     bool       // deallocated; row retained until the table is saved
}

// ReqTable is the request indirection table for one process.
type ReqTable struct {
	entries  map[int]*ReqEntry
	order    []int
	nextID   int
	idAtLine int

	// anyLog records the request IDs returned by Waitany/Waitsome calls
	// during the logging phase; anyReplay replays them during recovery.
	anyLog    [][]int
	anyReplay [][]int
}

// NewReqTable returns an empty table.
func NewReqTable() *ReqTable {
	return &ReqTable{entries: make(map[int]*ReqEntry), nextID: 1}
}

// New allocates a table entry with the next ID.
func (t *ReqTable) New(e *ReqEntry) *ReqEntry {
	e.ID = t.nextID
	t.nextID++
	t.entries[e.ID] = e
	t.order = append(t.order, e.ID)
	return e
}

// Get returns the entry for an ID.
func (t *ReqTable) Get(id int) (*ReqEntry, bool) {
	e, ok := t.entries[id]
	if !ok || e.dead {
		return nil, false
	}
	return e, true
}

// Release deallocates an entry. During a checkpoint period removal is
// deferred ("we delay any deallocation of request table entries until after
// the request table has been saved", Section 4.1); outside one the row is
// removed immediately.
func (t *ReqTable) Release(id int, defer_ bool) {
	e, ok := t.entries[id]
	if !ok {
		return
	}
	if defer_ {
		e.dead = true
		return
	}
	t.remove(id)
}

func (t *ReqTable) remove(id int) {
	delete(t.entries, id)
	for i, h := range t.order {
		if h == id {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
}

// BeginPeriod starts a checkpoint period at the given line: the ID
// watermark is recorded and test counters reset ("this counter is reset at
// the beginning of each checkpointing period").
func (t *ReqTable) BeginPeriod() {
	t.idAtLine = t.nextID
	for _, e := range t.entries {
		e.TestFails = 0
		if e.Done {
			// Whatever completed it, the completion is now before the new
			// line: recovery treats it as complete-at-line (its data is in
			// the checkpointed application state).
			e.CompletedBy = cbAtLine
		}
	}
	t.anyLog = nil
}

// EndPeriod sweeps rows deallocated during the period.
func (t *ReqTable) EndPeriod() {
	for id, e := range t.entries {
		if e.dead {
			t.remove(id)
			_ = e
		}
	}
}

// LogAnyCompletion records a Waitany/Waitsome outcome during logging.
func (t *ReqTable) LogAnyCompletion(ids []int) {
	t.anyLog = append(t.anyLog, append([]int(nil), ids...))
}

// PopAnyReplay pops the next recorded Waitany/Waitsome outcome during
// recovery; ok is false when the replay log is exhausted.
func (t *ReqTable) PopAnyReplay() ([]int, bool) {
	if len(t.anyReplay) == 0 {
		return nil, false
	}
	ids := t.anyReplay[0]
	t.anyReplay = t.anyReplay[1:]
	return ids, true
}

// AnyReplayPending reports whether Waitany replays remain.
func (t *ReqTable) AnyReplayPending() bool { return len(t.anyReplay) > 0 }

// Serialize encodes the crossing entries — those allocated before the line
// and alive when it was taken — together with the Waitany log and the ID
// watermark. Called at commit time, "when all late messages have been
// received", so each entry's completion kind is known.
func (t *ReqTable) Serialize(line uint64) []byte {
	w := wire.NewWriter(256)
	var crossing []*ReqEntry
	for _, id := range t.order {
		e := t.entries[id]
		if e.BornEpoch < line {
			crossing = append(crossing, e)
		}
	}
	w.U32(uint32(len(crossing)))
	for _, e := range crossing {
		w.Int(e.ID)
		w.Bool(e.IsRecv)
		w.U32(e.Ctx)
		w.I64(int64(e.Src))
		w.I64(int64(e.Tag))
		w.Int(e.BytesCap)
		w.Int(e.TypeH)
		w.U64(e.BornEpoch)
		w.Bool(e.Pinned)
		w.I64(int64(e.PinSrc))
		w.I64(int64(e.PinTag))
		// Done must describe the state AT THE LINE, not at commit time: a
		// request completed during the logging phase re-completes during
		// recovery (from the log or from a re-sent message).
		w.Bool(e.Done && e.CompletedBy == cbAtLine)
		w.Int(e.Status.Source)
		w.Int(e.Status.Tag)
		w.Int(e.Status.Bytes)
		w.U8(e.CompletedBy)
		w.U64(e.LateSeq)
		w.Int(e.TestFails)
	}
	w.Int(t.idAtLine)
	w.U32(uint32(len(t.anyLog)))
	for _, ids := range t.anyLog {
		w.Ints(ids)
	}
	return w.Bytes()
}

// restoredEntry is a deserialized crossing entry before merging.
type restoredEntry struct {
	ReqEntry
}

// Deserialize decodes a table image.
func deserializeReqTable(data []byte) ([]restoredEntry, int, [][]int, error) {
	r := wire.NewReader(data)
	// Each serialized entry occupies at least 112 bytes; clamping the count
	// keeps a corrupt image from pre-allocating an enormous slice.
	n := r.Count(112)
	entries := make([]restoredEntry, 0, n)
	for i := 0; i < n; i++ {
		var e restoredEntry
		e.ID = r.Int()
		e.IsRecv = r.Bool()
		e.Ctx = r.U32()
		e.Src = int32(r.I64())
		e.Tag = int32(r.I64())
		e.BytesCap = r.Int()
		e.TypeH = r.Int()
		e.BornEpoch = r.U64()
		e.Pinned = r.Bool()
		e.PinSrc = int32(r.I64())
		e.PinTag = int32(r.I64())
		e.Done = r.Bool()
		e.Status = mpi.Status{Source: r.Int(), Tag: r.Int(), Bytes: r.Int()}
		e.CompletedBy = r.U8()
		e.LateSeq = r.U64()
		e.ReplayFails = r.Int()
		entries = append(entries, e)
	}
	idAtLine := r.Int()
	na := r.Count(4)
	anyReplay := make([][]int, 0, na)
	for i := 0; i < na; i++ {
		anyReplay = append(anyReplay, r.Ints())
	}
	if err := r.Err(); err != nil {
		return nil, 0, nil, fmt.Errorf("ckpt: corrupt request table: %w", err)
	}
	return entries, idAtLine, anyReplay, nil
}
