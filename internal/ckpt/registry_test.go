package ckpt

import (
	"bytes"
	"testing"
	"testing/quick"

	"c3/internal/mpi"
)

func TestClassifyColorsMatchesEpochs(t *testing.T) {
	// Property (paper Section 3.2): because a message crosses at most one
	// recovery line, 2-bit epoch colors recover the exact classification.
	f := func(recv uint32, delta int8) bool {
		receiver := uint64(recv)
		var sender uint64
		switch {
		case delta%3 == 0:
			sender = receiver
		case delta%3 == 1:
			sender = receiver + 1
		default:
			if receiver == 0 {
				sender = receiver // can't be late before epoch 1
			} else {
				sender = receiver - 1
			}
		}
		exact, err := ClassifyEpochs(sender, receiver)
		if err != nil {
			return false
		}
		return ClassifyColors(EpochColor(sender), EpochColor(receiver)) == exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyEpochsRejectsDoubleCrossing(t *testing.T) {
	if _, err := ClassifyEpochs(5, 3); err == nil {
		t.Fatal("message crossing two lines accepted")
	}
	if _, err := ClassifyEpochs(3, 5); err == nil {
		t.Fatal("message crossing two lines accepted")
	}
}

func TestPiggybackCodecs(t *testing.T) {
	for _, codec := range []Codec{NarrowCodec{}, WideCodec{}} {
		f := func(epoch uint64, stopped bool) bool {
			h := Header{Color: EpochColor(epoch), StoppedLogging: stopped, Epoch: epoch, HasEpoch: true}
			enc := codec.Encode(nil, h)
			if len(enc) != codec.Width() {
				return false
			}
			got, err := codec.Decode(enc)
			if err != nil {
				return false
			}
			if got.Color != h.Color || got.StoppedLogging != stopped {
				return false
			}
			if got.HasEpoch && got.Epoch != epoch {
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Fatalf("%T: %v", codec, err)
		}
	}
}

func TestNarrowCodecIsThreeBits(t *testing.T) {
	// The paper: "it is sufficient to piggyback three bits on each outgoing
	// message." The narrow codec must use only the low 3 bits of its byte.
	c := NarrowCodec{}
	for epoch := uint64(0); epoch < 6; epoch++ {
		for _, stopped := range []bool{false, true} {
			enc := c.Encode(nil, Header{Color: EpochColor(epoch), StoppedLogging: stopped})
			if enc[0]&^0x7 != 0 {
				t.Fatalf("narrow header uses more than 3 bits: %08b", enc[0])
			}
		}
	}
}

func TestEarlyRegistryRoundTrip(t *testing.T) {
	er := NewEarlyRegistry()
	sig1 := Signature{Ctx: 0, Tag: 5, Src: 2}
	sig2 := Signature{Ctx: 4, Tag: 9, Src: 1}
	er.Add(sig1, 2, 0, 100)
	er.Add(sig1, 2, 0, 100) // second message, same signature
	er.Add(sig2, 1, 0, 8)
	if er.Len() != 3 {
		t.Fatalf("len = %d", er.Len())
	}
	er2, err := LoadEarlyRegistry(er.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if er2.Len() != 3 {
		t.Fatalf("reloaded len = %d", er2.Len())
	}
	items := er2.DistributionFor(2)
	if len(items) != 1 || items[0].Count != 2 || items[0].Tag != 5 {
		t.Fatalf("distribution for rank 2: %+v", items)
	}
	if got := er2.DistributionFor(3); len(got) != 0 {
		t.Fatalf("distribution for rank 3: %+v", got)
	}
}

func TestWasEarlySuppression(t *testing.T) {
	we := NewWasEarly()
	we.AddItems([]suppressItem{{Ctx: 0, Tag: 7, DestComm: 3, Count: 2}})
	if we.Empty() {
		t.Fatal("registry should not be empty")
	}
	if !we.Match(0, 7, 3) || !we.Match(0, 7, 3) {
		t.Fatal("expected two suppressions")
	}
	if we.Match(0, 7, 3) {
		t.Fatal("third send must not be suppressed")
	}
	if !we.Empty() {
		t.Fatal("registry should be empty")
	}
	if we.Match(0, 8, 3) {
		t.Fatal("mismatched tag suppressed")
	}
}

func TestLateRegistryFIFOPerSignature(t *testing.T) {
	lr := NewLateRegistry()
	sigA := Signature{Ctx: 0, Tag: 1, Src: 0}
	sigB := Signature{Ctx: 0, Tag: 2, Src: 0}
	lr.AddData(sigA, []byte("a1"))
	lr.AddData(sigB, []byte("b1"))
	lr.AddData(sigA, []byte("a2"))

	// Same-signature entries replay in order.
	e := lr.TakeMatch(0, 0, 1)
	if e == nil || string(e.Data) != "a1" {
		t.Fatalf("first tag-1 entry: %+v", e)
	}
	// Other signatures are unaffected.
	e = lr.TakeMatch(0, 0, 2)
	if e == nil || string(e.Data) != "b1" {
		t.Fatalf("tag-2 entry: %+v", e)
	}
	e = lr.TakeMatch(0, 0, 1)
	if e == nil || string(e.Data) != "a2" {
		t.Fatalf("second tag-1 entry: %+v", e)
	}
	if !lr.Empty() {
		t.Fatal("registry should be drained")
	}
	if e := lr.TakeMatch(0, 0, 1); e != nil {
		t.Fatalf("drained registry returned %+v", e)
	}
}

func TestLateRegistryWildcardMatch(t *testing.T) {
	lr := NewLateRegistry()
	lr.AddSig(Signature{Ctx: 0, Tag: 3, Src: 1})
	lr.AddData(Signature{Ctx: 0, Tag: 4, Src: 2}, []byte("x"))

	// A wildcard receive consumes the earliest entry regardless of kind.
	e := lr.TakeMatch(0, mpi.AnySource, mpi.AnyTag)
	if e == nil || e.Kind != IntraSig || e.Sig.Src != 1 {
		t.Fatalf("wildcard should hit the signature entry first: %+v", e)
	}
	e = lr.TakeMatch(0, mpi.AnySource, mpi.AnyTag)
	if e == nil || e.Kind != LateData {
		t.Fatalf("second wildcard: %+v", e)
	}
}

func TestLateRegistrySerializationRoundTrip(t *testing.T) {
	lr := NewLateRegistry()
	lr.AddData(Signature{Ctx: 2, Tag: 1, Src: 0}, []byte("hello"))
	lr.AddSig(Signature{Ctx: 2, Tag: 9, Src: 3})
	lr.AddData(Signature{Ctx: 4, Tag: 1, Src: 1}, []byte("world"))

	lr2, err := LoadLateRegistry(lr.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if lr2.Len() != 3 || lr2.DataBytes() != 10 {
		t.Fatalf("len=%d bytes=%d", lr2.Len(), lr2.DataBytes())
	}
	e := lr2.TakeSeq(2)
	if e == nil || !bytes.Equal(e.Data, []byte("world")) {
		t.Fatalf("take seq 2: %+v", e)
	}
}

func TestResultLogOrdering(t *testing.T) {
	g := NewResultLog()
	g.Append(rkAllreduce, 1, []byte("r1"))
	g.Append(rkAllreduce, 1, []byte("r2"))
	g.Append(rkAllreduce, 3, []byte("other"))

	d, ok := g.Pop(rkAllreduce, 1)
	if !ok || string(d) != "r1" {
		t.Fatalf("first pop: %q %v", d, ok)
	}
	d, ok = g.Pop(rkAllreduce, 1)
	if !ok || string(d) != "r2" {
		t.Fatalf("second pop: %q %v", d, ok)
	}
	if _, ok := g.Pop(rkAllreduce, 1); ok {
		t.Fatal("ctx 1 should be drained")
	}
	if g.Empty() {
		t.Fatal("ctx 3 entry outstanding")
	}
	g2, err := LoadResultLog(g.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	// Serialization keeps consumed entries consumed? No: a commit happens
	// before any consumption, so serialization writes all entries and Load
	// marks everything unconsumed — matching what recovery needs.
	if g2.Len() != 3 {
		t.Fatalf("reloaded len = %d", g2.Len())
	}
}

func TestTypeTableHierarchyAndFree(t *testing.T) {
	tt := NewTypeTable()
	inner, err := tt.Contiguous(4, HandleFloat64)
	if err != nil {
		t.Fatal(err)
	}
	outer, err := tt.Vector(2, 1, 3, inner)
	if err != nil {
		t.Fatal(err)
	}
	// Freeing the inner type keeps its recipe row because outer depends on
	// it (paper Section 4.2).
	if err := tt.Free(inner); err != nil {
		t.Fatal(err)
	}
	if _, ok := tt.Get(inner); !ok {
		t.Fatal("inner recipe row must survive while outer lives")
	}
	if err := tt.Free(outer); err != nil {
		t.Fatal(err)
	}
	if _, ok := tt.Get(inner); ok {
		t.Fatal("inner row should be swept once outer is gone")
	}
	if _, ok := tt.Get(outer); ok {
		t.Fatal("outer row should be swept")
	}
	if err := tt.Free(outer); err == nil {
		t.Fatal("double free not detected")
	}
}

func TestTypeTableRestoreMerge(t *testing.T) {
	tt := NewTypeTable()
	a, _ := tt.Contiguous(3, HandleInt64)
	b, _ := tt.Vector(2, 1, 2, a)
	img := tt.Serialize()

	// A restarted prologue re-creates only the first type.
	tt2 := NewTypeTable()
	a2, _ := tt2.Contiguous(3, HandleInt64)
	if a2 != a {
		t.Fatalf("handle mismatch: %d vs %d", a2, a)
	}
	if err := tt2.Restore(img); err != nil {
		t.Fatal(err)
	}
	e, ok := tt2.Get(b)
	if !ok || e.DT == nil {
		t.Fatal("mid-run type not rebuilt")
	}
	if e.DT.Size() != 2*8*3 {
		t.Fatalf("rebuilt type size %d", e.DT.Size())
	}

	// A diverged prologue is detected.
	tt3 := NewTypeTable()
	tt3.Contiguous(4, HandleInt64) // different count
	if err := tt3.Restore(img); err == nil {
		t.Fatal("diverged recipe not detected")
	}
}

func TestOpTableVerify(t *testing.T) {
	ot := NewOpTable()
	img := ot.Serialize()
	if err := NewOpTable().Verify(img); err != nil {
		t.Fatal(err)
	}
	custom := mpi.NewOp("custom", true, nil)
	ot2 := NewOpTable()
	h := ot2.Register(custom)
	img2 := ot2.Serialize()
	if err := NewOpTable().Verify(img2); err == nil {
		t.Fatal("missing user op not detected")
	}
	ot3 := NewOpTable()
	if got := ot3.Register(custom); got != h {
		t.Fatalf("op handle changed: %d vs %d", got, h)
	}
	if err := ot3.Verify(img2); err != nil {
		t.Fatal(err)
	}
}
