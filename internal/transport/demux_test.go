package transport

import (
	"testing"
	"time"
)

// kindedPayload is a WirePayload stub for plane routing tests.
type kindedPayload struct {
	kind uint8
	data byte
}

func (p kindedPayload) WireKind() uint8     { return p.kind }
func (p kindedPayload) MarshalWire() []byte { return []byte{p.data} }
func (p kindedPayload) TransportSize() int  { return 1 }

const (
	testKindA uint8 = 200
	testKindB uint8 = 201
)

// TestDemuxRoutesByKind: two planes over one network; each receives only
// its own kind, and the observers see both directions.
func TestDemuxRoutesByKind(t *testing.T) {
	nw := NewNetwork(2)
	d0 := NewDemux(nw, 0)
	d1 := NewDemux(nw, 1)

	a0, b0 := d0.Plane(testKindA), d0.Plane(testKindB)
	a1, b1 := d1.Plane(testKindA), d1.Plane(testKindB)

	recvFrom := make(chan int, 16)
	sentTo := make(chan int, 16)
	d1.SetObservers(func(from int) { recvFrom <- from }, nil)
	d0.SetObservers(nil, func(to int) { sentTo <- to })
	d0.Start()
	d1.Start()
	defer d0.Close()
	defer d1.Close()

	if err := a0.Send(Message{From: 0, To: 1, Payload: kindedPayload{kind: testKindA, data: 7}}); err != nil {
		t.Fatalf("send A: %v", err)
	}
	if err := b0.Send(Message{From: 0, To: 1, Class: Control, Payload: kindedPayload{kind: testKindB, data: 9}}); err != nil {
		t.Fatalf("send B: %v", err)
	}

	msgA, err := a1.Endpoint(1).Recv()
	if err != nil {
		t.Fatalf("recv A: %v", err)
	}
	if p := msgA.Payload.(kindedPayload); p.kind != testKindA || p.data != 7 {
		t.Fatalf("plane A got %+v", p)
	}
	msgB, err := b1.Endpoint(1).Recv()
	if err != nil {
		t.Fatalf("recv B: %v", err)
	}
	if p := msgB.Payload.(kindedPayload); p.kind != testKindB || p.data != 9 {
		t.Fatalf("plane B got %+v", p)
	}

	// Observers: rank 1 saw two arrivals from rank 0; rank 0 recorded two
	// sends toward rank 1 (liveness piggybacking evidence).
	for i := 0; i < 2; i++ {
		select {
		case from := <-recvFrom:
			if from != 0 {
				t.Fatalf("recv observer saw from=%d", from)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("recv observer missed an arrival")
		}
		select {
		case to := <-sentTo:
			if to != 1 {
				t.Fatalf("send observer saw to=%d", to)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("send observer missed a send")
		}
	}

	// Sends on plane A must not appear on plane B.
	if _, ok, _ := b1.Endpoint(1).TryRecv(); ok {
		t.Fatal("plane B received plane A traffic")
	}
	// Local loopback stays within the plane.
	if err := a1.Send(Message{From: 1, To: 1, Payload: kindedPayload{kind: testKindA, data: 3}}); err != nil {
		t.Fatalf("loopback send: %v", err)
	}
	if msg, err := a1.Endpoint(1).Recv(); err != nil || msg.Payload.(kindedPayload).data != 3 {
		t.Fatalf("loopback recv = %+v, %v", msg, err)
	}
}

// TestDemuxPlaneShutdownIsLocal: shutting one plane down kills only that
// plane's port; siblings keep receiving, and Demux.Close tears the rest
// down.
func TestDemuxPlaneShutdownIsLocal(t *testing.T) {
	nw := NewNetwork(2)
	d1 := NewDemux(nw, 1)
	a1, b1 := d1.Plane(testKindA), d1.Plane(testKindB)
	d1.Start()

	a1.Shutdown()
	if _, err := a1.Endpoint(1).Recv(); err == nil {
		t.Fatal("shut-down plane still receives")
	}
	// Sibling plane still works.
	if err := nw.Send(Message{From: 0, To: 1, Payload: kindedPayload{kind: testKindB, data: 1}}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if msg, err := b1.Endpoint(1).Recv(); err != nil || msg.Payload.(kindedPayload).data != 1 {
		t.Fatalf("sibling plane recv = %+v, %v", msg, err)
	}

	d1.Close()
	if _, err := b1.Endpoint(1).Recv(); err == nil {
		t.Fatal("plane still receives after Demux.Close")
	}
}
