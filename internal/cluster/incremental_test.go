package cluster_test

import (
	"sync"
	"testing"

	"c3/internal/ckpt"
	"c3/internal/cluster"
	"c3/internal/mpi"
	"c3/internal/stable"
	"c3/internal/statesave"
)

// incrementalApp has a large static section and a small hot section, the
// state shape incremental checkpointing pays off on.
func incrementalApp(iters int, sums *sync.Map) func(cluster.Env) error {
	return func(env cluster.Env) error {
		st := env.State()
		it := st.Int("it")
		hot := st.Int("hot")
		static := st.Float64s("static", 64*1024).Data() // 512 KB, written once
		if _, err := env.Restore(); err != nil {
			return err
		}
		w := env.World()
		if it.Get() == 0 && static[0] == 0 {
			for i := range static {
				static[i] = float64(i + env.Rank())
			}
		}
		for it.Get() < iters {
			other := (env.Rank() + 1) % env.Size()
			var in [1]byte
			if _, err := w.Sendrecv([]byte{byte(it.Get())}, 1, mpi.TypeByte, other, 3,
				in[:], 1, mpi.TypeByte, (env.Rank()+env.Size()-1)%env.Size(), 3); err != nil {
				return err
			}
			hot.Add(int(in[0]))
			it.Add(1)
			if err := env.Checkpoint(); err != nil {
				return err
			}
		}
		sums.Store(env.Rank(), hot.Get()*1000000+int(static[123]))
		return nil
	}
}

// TestIncrementalCheckpointRecovery runs the paper's future-work extension:
// deltas between full snapshots must recover exactly, across a failure that
// lands several deltas past the last full checkpoint.
func TestIncrementalCheckpointRecovery(t *testing.T) {
	const ranks = 3
	const iters = 10

	var ref sync.Map
	run(t, cluster.Config{Ranks: ranks, Direct: true, App: incrementalApp(iters, &ref)})

	var got sync.Map
	res := run(t, cluster.Config{
		Ranks:               ranks,
		App:                 incrementalApp(iters, &got),
		Policy:              ckpt.Policy{EveryNthPragma: 1}, // checkpoint every iteration
		FullCheckpointEvery: 4,
		Failures:            []cluster.FailureSpec{{Rank: 1, AtPragma: 7}},
	})
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	for r := 0; r < ranks; r++ {
		want, _ := ref.Load(r)
		gotv, ok := got.Load(r)
		if !ok || want != gotv {
			t.Fatalf("rank %d: ref %v vs incremental-recovered %v", r, want, gotv)
		}
	}
}

// TestIncrementalCheckpointsAreSmaller verifies the point of the extension:
// with a mostly-static state, the bytes written with incremental mode are a
// fraction of the full-checkpoint bytes.
func TestIncrementalCheckpointsAreSmaller(t *testing.T) {
	const ranks = 2
	const iters = 8

	measure := func(fullEvery int) int64 {
		store := stable.NewMemStore()
		var out sync.Map
		run(t, cluster.Config{
			Ranks:               ranks,
			App:                 incrementalApp(iters, &out),
			Store:               store,
			Policy:              ckpt.Policy{EveryNthPragma: 1},
			FullCheckpointEvery: fullEvery,
		})
		return store.BytesWritten()
	}

	full := measure(0)
	inc := measure(4)
	if inc >= full/2 {
		t.Fatalf("incremental checkpoints not smaller: %d vs %d bytes", inc, full)
	}
}

// TestIncrementalRetireKeepsChain makes sure garbage collection never
// deletes a delta's anchor: after many checkpoints, recovery must still
// find the full snapshot its chain starts at.
func TestIncrementalRetireKeepsChain(t *testing.T) {
	const ranks = 2
	const iters = 11
	var ref, got sync.Map
	run(t, cluster.Config{Ranks: ranks, Direct: true, App: incrementalApp(iters, &ref)})

	res := run(t, cluster.Config{
		Ranks:               ranks,
		App:                 incrementalApp(iters, &got),
		Policy:              ckpt.Policy{EveryNthPragma: 1},
		FullCheckpointEvery: 3,
		Failures:            []cluster.FailureSpec{{Rank: 0, AtPragma: 11}},
	})
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	for r := 0; r < ranks; r++ {
		want, _ := ref.Load(r)
		gotv, ok := got.Load(r)
		if !ok || want != gotv {
			t.Fatalf("rank %d: ref %v vs recovered %v", r, want, gotv)
		}
	}
}

// tombstoneApp exercises section removal mid-chain: "scratch" is set
// early, then zeroed and unregistered once the protocol reaches line 6 —
// after the full-snapshot anchor (line 5), so later deltas must carry a
// tombstone. The app reads scratch back right after a restore that lands
// past the tombstone line: any non-zero value is state the recovery chain
// resurrected, and it flows into the checksum.
func tombstoneApp(iters int, sums *sync.Map) func(cluster.Env) error {
	return func(env cluster.Env) error {
		st := env.State()
		it := st.Int("it")
		hot := st.Int("hot")
		leak := st.Int("leak")
		scratch := st.Int("scratch") // prologue registers it at zero
		restored, err := env.Restore()
		if err != nil {
			return err
		}
		layer := cluster.LayerOf(env)
		if restored && layer.Epoch() >= 7 {
			// The restored line postdates the tombstone (line 7): scratch
			// must have stayed at its freshly registered zero.
			leak.Set(leak.Get() + int(scratch.Get()))
		}
		w := env.World()
		for it.Get() < iters {
			other := (env.Rank() + 1) % env.Size()
			var in [1]byte
			if _, err := w.Sendrecv([]byte{byte(it.Get())}, 1, mpi.TypeByte, other, 3,
				in[:], 1, mpi.TypeByte, (env.Rank()+env.Size()-1)%env.Size(), 3); err != nil {
				return err
			}
			hot.Add(int(in[0]))
			it.Add(1)
			if it.Get() == 2 {
				scratch.Set(777) // lives in the line-5 anchor snapshot
			}
			if _, live := st.Lookup("scratch"); live && layer != nil && layer.Epoch() >= 6 {
				scratch.Set(0)
				st.Unregister("scratch") // leaves checkpointed state here
			}
			if err := env.Checkpoint(); err != nil {
				return err
			}
		}
		sums.Store(env.Rank(), hot.Get()*100000+int(leak.Get()))
		return nil
	}
}

// TestIncrementalRemovedSectionStaysRemoved is the tombstone regression:
// a section present at the full-snapshot anchor but unregistered before
// the recovery line must NOT reappear (with stale contents) on recovery.
func TestIncrementalRemovedSectionStaysRemoved(t *testing.T) {
	const ranks = 3
	const iters = 20

	base := func(sums *sync.Map) cluster.Config {
		return cluster.Config{
			Ranks:               ranks,
			App:                 tombstoneApp(iters, sums),
			Policy:              ckpt.Policy{EveryNthPragma: 1},
			FullCheckpointEvery: 4,
		}
	}
	var ref sync.Map
	run(t, base(&ref))

	var got sync.Map
	cfg := base(&got)
	// Fire at the first pragma after line 8 starts: the recovery line lands
	// in [6,8] — past the tombstone-carrying delta but before the next
	// anchor (line 9) would mask the resurrection.
	cfg.Failures = []cluster.FailureSpec{{Rank: 1, AtPragma: 1, AfterCheckpoints: 8}}
	res := run(t, cfg)
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	for r := 0; r < ranks; r++ {
		want, _ := ref.Load(r)
		gotv, ok := got.Load(r)
		if !ok || want != gotv {
			t.Fatalf("rank %d: ref %v vs recovered %v — removed section resurrected", r, want, gotv)
		}
	}
}

// TestDiffMergeTombstoneRoundtrip pins the statesave-level contract the
// recovery chain walk relies on.
func TestDiffMergeTombstoneRoundtrip(t *testing.T) {
	img := func(b byte) statesave.SectionImage {
		return statesave.SectionImage{Body: []byte{b}, Digest: uint64(b)}
	}
	anchor := map[string]statesave.SectionImage{"keep": img(1), "gone": img(2)}
	cur := map[string]statesave.SectionImage{"keep": img(1), "new": img(3)}

	delta, removed := statesave.DiffSections(anchor, cur)
	if len(delta) != 1 || len(removed) != 1 || removed[0] != "gone" {
		t.Fatalf("DiffSections = delta %v removed %v", delta, removed)
	}
	enc := statesave.EncodeIncrement(false, 5, delta, removed)
	full, base, sections, gotRemoved, err := statesave.DecodeIncrement(enc)
	if err != nil || full || base != 5 {
		t.Fatalf("DecodeIncrement: full=%v base=%d err=%v", full, base, err)
	}
	if len(gotRemoved) != 1 || gotRemoved[0] != "gone" {
		t.Fatalf("tombstones lost in encoding: %v", gotRemoved)
	}
	merged := statesave.MergeSections(anchor, sections, gotRemoved)
	if _, resurrected := merged["gone"]; resurrected {
		t.Fatal("merge resurrected the removed section")
	}
	if _, ok := merged["new"]; !ok {
		t.Fatal("merge dropped the delta's new section")
	}
	if _, ok := merged["keep"]; !ok {
		t.Fatal("merge dropped the unchanged section")
	}
}
