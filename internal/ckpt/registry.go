package ckpt

import (
	"fmt"

	"c3/internal/mpi"
	"c3/internal/wire"
)

// Signature identifies a message stream as the paper defines it:
// <sending node number, tag, communicator>. Ranks are communicator ranks;
// Ctx identifies the communicator.
type Signature struct {
	Ctx uint32
	Tag int32
	Src int32
}

func (s Signature) String() string {
	return fmt.Sprintf("(src=%d, tag=%d, ctx=%d)", s.Src, s.Tag, s.Ctx)
}

// --- Early-Message-Registry (receiver side) ---

// earlyEntry records early messages received on one signature.
type earlyEntry struct {
	sig       Signature
	srcWorld  int32 // world rank of the sender, for redistribution
	destComm  int32 // the receiver's rank in the communicator, as the sender addresses it
	count     int32
	dataBytes int64 // payload bytes, for stats only
}

// EarlyRegistry records the signatures of early messages received before the
// local checkpoint. It is saved with the checkpoint at StartCheckpoint and,
// during recovery, its entries are distributed to the original senders to
// form their Was-Early-Registries (paper Section 2.3).
type EarlyRegistry struct {
	entries []*earlyEntry
	index   map[Signature]*earlyEntry
}

// NewEarlyRegistry returns an empty registry.
func NewEarlyRegistry() *EarlyRegistry {
	return &EarlyRegistry{index: make(map[Signature]*earlyEntry)}
}

// Add records one early message.
func (er *EarlyRegistry) Add(sig Signature, srcWorld, destComm int, payloadBytes int) {
	if e, ok := er.index[sig]; ok {
		e.count++
		e.dataBytes += int64(payloadBytes)
		return
	}
	e := &earlyEntry{sig: sig, srcWorld: int32(srcWorld), destComm: int32(destComm), count: 1, dataBytes: int64(payloadBytes)}
	er.entries = append(er.entries, e)
	er.index[sig] = e
}

// Len returns the number of recorded messages (not distinct signatures).
func (er *EarlyRegistry) Len() int {
	n := 0
	for _, e := range er.entries {
		n += int(e.count)
	}
	return n
}

// Reset clears the registry (after it has been saved or distributed).
func (er *EarlyRegistry) Reset() {
	er.entries = nil
	er.index = make(map[Signature]*earlyEntry)
}

// Serialize encodes the registry.
func (er *EarlyRegistry) Serialize() []byte {
	w := wire.NewWriter(16 + 32*len(er.entries))
	w.U32(uint32(len(er.entries)))
	for _, e := range er.entries {
		w.U32(e.sig.Ctx)
		w.I64(int64(e.sig.Tag))
		w.I64(int64(e.sig.Src))
		w.I64(int64(e.srcWorld))
		w.I64(int64(e.destComm))
		w.I64(int64(e.count))
		w.I64(e.dataBytes)
	}
	return w.Bytes()
}

// LoadEarlyRegistry decodes a serialized registry.
func LoadEarlyRegistry(data []byte) (*EarlyRegistry, error) {
	r := wire.NewReader(data)
	n := r.Count(52) // minimum bytes per serialized entry
	er := NewEarlyRegistry()
	for i := 0; i < n; i++ {
		e := &earlyEntry{
			sig: Signature{
				Ctx: r.U32(),
				Tag: int32(r.I64()),
				Src: int32(r.I64()),
			},
			srcWorld:  int32(r.I64()),
			destComm:  int32(r.I64()),
			count:     int32(r.I64()),
			dataBytes: r.I64(),
		}
		er.entries = append(er.entries, e)
		er.index[e.sig] = e
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ckpt: corrupt early registry: %w", err)
	}
	return er, nil
}

// suppressItem is one Was-Early-Registry entry as shipped to a sender.
type suppressItem struct {
	Ctx      uint32
	Tag      int32
	DestComm int32 // the receiver's rank in the communicator
	Count    int32
}

// DistributionFor collects the suppression items destined for one sender
// (identified by world rank).
func (er *EarlyRegistry) DistributionFor(srcWorld int) []suppressItem {
	var items []suppressItem
	for _, e := range er.entries {
		if int(e.srcWorld) == srcWorld {
			items = append(items, suppressItem{Ctx: e.sig.Ctx, Tag: e.sig.Tag, DestComm: e.destComm, Count: e.count})
		}
	}
	return items
}

func encodeSuppressItems(items []suppressItem) []byte {
	w := wire.NewWriter(4 + 16*len(items))
	w.U32(uint32(len(items)))
	for _, it := range items {
		w.U32(it.Ctx)
		w.I64(int64(it.Tag))
		w.I64(int64(it.DestComm))
		w.I64(int64(it.Count))
	}
	return w.Bytes()
}

func decodeSuppressItems(data []byte) ([]suppressItem, error) {
	r := wire.NewReader(data)
	n := r.Count(28) // minimum bytes per serialized item
	items := make([]suppressItem, 0, n)
	for i := 0; i < n; i++ {
		items = append(items, suppressItem{
			Ctx:      r.U32(),
			Tag:      int32(r.I64()),
			DestComm: int32(r.I64()),
			Count:    int32(r.I64()),
		})
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ckpt: corrupt suppression list: %w", err)
	}
	return items, nil
}

// --- Was-Early-Registry (sender side, recovery only) ---

// wasEarlyKey identifies a send stream as the sender sees it.
type wasEarlyKey struct {
	Ctx      uint32
	Tag      int32
	DestComm int32
}

// WasEarly holds, per send signature, how many re-sends must be suppressed
// during recovery.
type WasEarly struct {
	counts map[wasEarlyKey]int32
	total  int
}

// NewWasEarly returns an empty registry.
func NewWasEarly() *WasEarly {
	return &WasEarly{counts: make(map[wasEarlyKey]int32)}
}

// AddItems merges suppression items received from one recovering process.
func (we *WasEarly) AddItems(items []suppressItem) {
	for _, it := range items {
		we.counts[wasEarlyKey{it.Ctx, it.Tag, it.DestComm}] += it.Count
		we.total += int(it.Count)
	}
}

// Match consumes one suppression slot for the given send; it reports whether
// the send must be suppressed.
func (we *WasEarly) Match(ctx uint32, tag, destComm int) bool {
	k := wasEarlyKey{ctx, int32(tag), int32(destComm)}
	if we.counts[k] > 0 {
		we.counts[k]--
		we.total--
		if we.counts[k] == 0 {
			delete(we.counts, k)
		}
		return true
	}
	return false
}

// Empty reports whether every suppression has been consumed.
func (we *WasEarly) Empty() bool { return we.total == 0 }

// Len returns the outstanding suppression count.
func (we *WasEarly) Len() int { return we.total }

// --- Late-Message-Registry ---

// LateKind distinguishes the two kinds of entries the registry holds.
type LateKind uint8

// Late registry entry kinds.
const (
	// LateData is a late message: its payload is stored and replayed
	// instead of a real receive during recovery.
	LateData LateKind = iota
	// IntraSig is the signature of an intra-epoch message consumed by a
	// wildcard receive during non-deterministic logging; during recovery it
	// pins the wildcard to the original match (the message itself is
	// re-sent by the re-executing sender).
	IntraSig
)

// LateEntry is one record in the Late-Message-Registry.
type LateEntry struct {
	Seq  uint64
	Kind LateKind
	Sig  Signature
	Data []byte // packed user payload, LateData only

	consumed bool
}

// LateRegistry is the ordered log of late messages and wildcard-receive
// signatures for the checkpoint in progress. Entries are recorded in
// receive order; recovery consumes them in order, per signature. "There may
// be multiple messages with the same signature in the registry, and these
// are maintained in the order in which they are received" (Section 2.3).
type LateRegistry struct {
	entries []*LateEntry
	nextSeq uint64
	// outstanding counts un-consumed entries, so Empty is O(1).
	outstanding int
	dataBytes   int64
}

// NewLateRegistry returns an empty registry.
func NewLateRegistry() *LateRegistry {
	return &LateRegistry{}
}

// AddData logs a late message's payload and returns its sequence number.
func (lr *LateRegistry) AddData(sig Signature, payload []byte) uint64 {
	e := &LateEntry{Seq: lr.nextSeq, Kind: LateData, Sig: sig, Data: append([]byte(nil), payload...)}
	lr.nextSeq++
	lr.entries = append(lr.entries, e)
	lr.outstanding++
	lr.dataBytes += int64(len(payload))
	return e.Seq
}

// AddSig logs a wildcard-receive signature.
func (lr *LateRegistry) AddSig(sig Signature) uint64 {
	e := &LateEntry{Seq: lr.nextSeq, Kind: IntraSig, Sig: sig}
	lr.nextSeq++
	lr.entries = append(lr.entries, e)
	lr.outstanding++
	return e.Seq
}

// TakeMatch consumes and returns the first un-consumed entry matching the
// receive parameters (src/tag may be mpi.AnySource/mpi.AnyTag), or nil.
func (lr *LateRegistry) TakeMatch(ctx uint32, src, tag int) *LateEntry {
	for _, e := range lr.entries {
		if e.consumed {
			continue
		}
		if e.Sig.Ctx != ctx {
			continue
		}
		if src != mpi.AnySource && int32(src) != e.Sig.Src {
			continue
		}
		if tag != mpi.AnyTag && int32(tag) != e.Sig.Tag {
			continue
		}
		e.consumed = true
		lr.outstanding--
		return e
	}
	return nil
}

// PeekMatch returns the first matching un-consumed entry without consuming
// it (for Probe during recovery).
func (lr *LateRegistry) PeekMatch(ctx uint32, src, tag int) *LateEntry {
	for _, e := range lr.entries {
		if e.consumed || e.Sig.Ctx != ctx {
			continue
		}
		if src != mpi.AnySource && int32(src) != e.Sig.Src {
			continue
		}
		if tag != mpi.AnyTag && int32(tag) != e.Sig.Tag {
			continue
		}
		return e
	}
	return nil
}

// TakeSeq consumes the entry with the given sequence number (used to replay
// late completions of restored non-blocking requests).
func (lr *LateRegistry) TakeSeq(seq uint64) *LateEntry {
	for _, e := range lr.entries {
		if e.Seq == seq {
			if !e.consumed {
				e.consumed = true
				lr.outstanding--
			}
			return e
		}
	}
	return nil
}

// Empty reports whether all entries have been consumed (recovery) or none
// were recorded.
func (lr *LateRegistry) Empty() bool { return lr.outstanding == 0 }

// Len returns the number of un-consumed entries.
func (lr *LateRegistry) Len() int { return lr.outstanding }

// DataBytes returns the total logged payload bytes.
func (lr *LateRegistry) DataBytes() int64 { return lr.dataBytes }

// Reset clears the registry for a new checkpoint period.
func (lr *LateRegistry) Reset() {
	lr.entries = nil
	lr.nextSeq = 0
	lr.outstanding = 0
	lr.dataBytes = 0
}

// Serialize encodes the registry's un-consumed entries. A consumed entry
// has already been delivered by recovery replay, so its data is part of
// every state saved afterwards — serializing it into a recovery line would
// make a later recovery apply the message twice.
func (lr *LateRegistry) Serialize() []byte {
	w := wire.NewWriter(int(64 + lr.dataBytes + int64(32*len(lr.entries))))
	w.U32(uint32(lr.outstanding))
	for _, e := range lr.entries {
		if e.consumed {
			continue
		}
		w.U64(e.Seq)
		w.U8(uint8(e.Kind))
		w.U32(e.Sig.Ctx)
		w.I64(int64(e.Sig.Tag))
		w.I64(int64(e.Sig.Src))
		w.Bytes32(e.Data)
	}
	w.U64(lr.nextSeq)
	return w.Bytes()
}

// LoadLateRegistry decodes a serialized registry; all entries load
// un-consumed, ready for replay.
func LoadLateRegistry(data []byte) (*LateRegistry, error) {
	r := wire.NewReader(data)
	n := r.Count(33) // minimum bytes per serialized entry
	lr := NewLateRegistry()
	for i := 0; i < n; i++ {
		e := &LateEntry{
			Seq:  r.U64(),
			Kind: LateKind(r.U8()),
			Sig: Signature{
				Ctx: r.U32(),
				Tag: int32(r.I64()),
				Src: int32(r.I64()),
			},
			Data: r.Bytes32(),
		}
		lr.entries = append(lr.entries, e)
		lr.outstanding++
		lr.dataBytes += int64(len(e.Data))
	}
	lr.nextSeq = r.U64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ckpt: corrupt late registry: %w", err)
	}
	return lr, nil
}

// --- Collective result log ---

// ResultLog records the results of opaque collectives (Allreduce) executed
// by post-line processes while some participant had not yet started the
// checkpoint (paper Section 4.3: "it is sufficient to store the final
// result of the operation at each node and replay this from the log during
// recovery").
type ResultLog struct {
	entries []resultEntry
	pending int
}

type resultEntry struct {
	Kind     uint8 // collective tag discriminator
	Ctx      uint32
	Data     []byte
	consumed bool
}

// NewResultLog returns an empty log.
func NewResultLog() *ResultLog { return &ResultLog{} }

// Append logs one collective result.
func (g *ResultLog) Append(kind uint8, ctx uint32, data []byte) {
	g.entries = append(g.entries, resultEntry{Kind: kind, Ctx: ctx, Data: append([]byte(nil), data...)})
	g.pending++
}

// Pop consumes the first un-consumed entry matching (kind, ctx).
func (g *ResultLog) Pop(kind uint8, ctx uint32) ([]byte, bool) {
	for i := range g.entries {
		e := &g.entries[i]
		if !e.consumed && e.Kind == kind && e.Ctx == ctx {
			e.consumed = true
			g.pending--
			return e.Data, true
		}
	}
	return nil, false
}

// Empty reports whether all entries have been consumed.
func (g *ResultLog) Empty() bool { return g.pending == 0 }

// Len returns the number of un-consumed entries.
func (g *ResultLog) Len() int { return g.pending }

// Reset clears the log.
func (g *ResultLog) Reset() {
	g.entries = nil
	g.pending = 0
}

// Serialize encodes the log.
func (g *ResultLog) Serialize() []byte {
	w := wire.NewWriter(64)
	w.U32(uint32(len(g.entries)))
	for _, e := range g.entries {
		w.U8(e.Kind)
		w.U32(e.Ctx)
		w.Bytes32(e.Data)
	}
	return w.Bytes()
}

// LoadResultLog decodes a serialized log.
func LoadResultLog(data []byte) (*ResultLog, error) {
	r := wire.NewReader(data)
	n := r.Count(9) // minimum bytes per serialized entry
	g := NewResultLog()
	for i := 0; i < n; i++ {
		g.entries = append(g.entries, resultEntry{Kind: r.U8(), Ctx: r.U32(), Data: r.Bytes32()})
		g.pending++
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ckpt: corrupt result log: %w", err)
	}
	return g, nil
}
