package mpi

import "fmt"

// Internal tags for collective plumbing. They live on the communicator's
// collective context plane, so they can never match user point-to-point
// traffic; distinct tags per collective keep interleaved collectives of
// different kinds from cross-matching.
const (
	tagBarrier = MaxUserTag + 1 + iota
	tagBcast
	tagGather
	tagScatter
	tagAllgather
	tagAlltoall
	tagReduce
	tagScan
	tagCtxAlloc
)

// Barrier blocks until every rank in the communicator has entered it.
// It uses the dissemination algorithm: log2(n) rounds of pairwise messages.
func (c *Comm) Barrier() error {
	n := c.Size()
	var empty []byte
	buf := make([]byte, 0)
	for k := 1; k < n; k <<= 1 {
		dst := (c.myRank + k) % n
		src := (c.myRank - k + n) % n
		wr := c.group[dst]
		if err := c.proc.send(wr, tagBarrier, c.collCtx(), empty); err != nil {
			return err
		}
		if _, err := c.proc.recvInternal(buf, src, tagBarrier, c, c.collCtx()); err != nil {
			return err
		}
	}
	return nil
}

// bcastBytes broadcasts buf (len fixed on all ranks) from root over the
// collective plane using a binomial tree.
func (c *Comm) bcastBytes(buf []byte, root, tag int) error {
	n := c.Size()
	vr := (c.myRank - root + n) % n // virtual rank: root becomes 0

	// Receive from parent (all ranks except virtual 0).
	if vr != 0 {
		parent := (parentOf(vr) + root) % n
		st, err := c.proc.recvInternal(buf, parent, tag, c, c.collCtx())
		if err != nil {
			return err
		}
		if st.Bytes != len(buf) {
			return fmt.Errorf("%w: bcast expected %d bytes, got %d", ErrTruncate, len(buf), st.Bytes)
		}
	}
	// Forward to children.
	for _, child := range childrenOf(vr, n) {
		dst := (child + root) % n
		wr := c.group[dst]
		if err := c.proc.send(wr, tag, c.collCtx(), append([]byte(nil), buf...)); err != nil {
			return err
		}
	}
	return nil
}

// parentOf returns the binomial-tree parent of virtual rank vr (vr > 0):
// clear the lowest set bit.
func parentOf(vr int) int { return vr & (vr - 1) }

// childrenOf returns the binomial-tree children of virtual rank vr in a tree
// of n nodes: vr | (1<<k) for k above vr's lowest set bit boundary.
func childrenOf(vr, n int) []int {
	var kids []int
	for bit := 1; ; bit <<= 1 {
		if vr&bit != 0 {
			break
		}
		child := vr | bit
		if child >= n {
			break
		}
		if child == vr {
			break
		}
		kids = append(kids, child)
	}
	return kids
}

// Bcast broadcasts count elements of dt from root's buf into every rank's
// buf.
func (c *Comm) Bcast(buf []byte, count int, dt *Datatype, root int) error {
	var packed []byte
	var err error
	if c.myRank == root {
		packed, err = dt.Pack(buf, count)
		if err != nil {
			return err
		}
	} else {
		packed = make([]byte, count*dt.Size())
	}
	if err := c.bcastBytes(packed, root, tagBcast); err != nil {
		return err
	}
	if c.myRank != root {
		if _, err := dt.Unpack(packed, buf, count); err != nil {
			return err
		}
	}
	return nil
}

// gatherBytes gathers fixed-size chunks from all ranks into all at root,
// ordered by comm rank. len(mine) must be identical on all ranks and
// len(all) = n*len(mine) at root.
func (c *Comm) gatherBytes(mine []byte, all []byte, root, tag int) error {
	n := c.Size()
	chunk := len(mine)
	if c.myRank != root {
		wr := c.group[root]
		return c.proc.send(wr, tag, c.collCtx(), append([]byte(nil), mine...))
	}
	if len(all) < n*chunk {
		return fmt.Errorf("%w: gather buffer %d < %d", ErrInvalid, len(all), n*chunk)
	}
	copy(all[root*chunk:], mine)
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		st, err := c.proc.recvInternal(all[r*chunk:(r+1)*chunk], r, tag, c, c.collCtx())
		if err != nil {
			return err
		}
		if st.Bytes != chunk {
			return fmt.Errorf("%w: gather chunk from %d: %d bytes, want %d", ErrTruncate, r, st.Bytes, chunk)
		}
	}
	return nil
}

// Gather collects sendCount elements of sendType from every rank into
// root's recvBuf, ordered by rank. recvCount is the per-rank element count
// at the root (must equal sendCount in elements of recvType's size).
func (c *Comm) Gather(sendBuf []byte, sendCount int, sendType *Datatype, recvBuf []byte, recvCount int, recvType *Datatype, root int) error {
	packed, err := sendType.Pack(sendBuf, sendCount)
	if err != nil {
		return err
	}
	chunk := sendCount * sendType.Size()
	var all []byte
	if c.myRank == root {
		if recvCount*recvType.Size() != chunk {
			return fmt.Errorf("%w: gather recv %d bytes/rank, send %d", ErrInvalid, recvCount*recvType.Size(), chunk)
		}
		all = make([]byte, c.Size()*chunk)
	}
	if err := c.gatherBytes(packed, all, root, tagGather); err != nil {
		return err
	}
	if c.myRank == root {
		for r := 0; r < c.Size(); r++ {
			if _, err := recvType.Unpack(all[r*chunk:(r+1)*chunk], recvBuf[r*recvCount*recvType.Extent():], recvCount); err != nil {
				return err
			}
		}
	}
	return nil
}

// Gatherv collects variable-sized byte chunks at root. counts and displs are
// in bytes and only consulted at the root.
func (c *Comm) Gatherv(mine []byte, recvBuf []byte, counts, displs []int, root int) error {
	n := c.Size()
	if c.myRank != root {
		wr := c.group[root]
		return c.proc.send(wr, tagGather, c.collCtx(), append([]byte(nil), mine...))
	}
	if len(counts) != n || len(displs) != n {
		return fmt.Errorf("%w: gatherv counts/displs length", ErrInvalid)
	}
	copy(recvBuf[displs[root]:displs[root]+counts[root]], mine)
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		st, err := c.proc.recvInternal(recvBuf[displs[r]:displs[r]+counts[r]], r, tagGather, c, c.collCtx())
		if err != nil {
			return err
		}
		if st.Bytes != counts[r] {
			return fmt.Errorf("%w: gatherv from %d: %d bytes, want %d", ErrTruncate, r, st.Bytes, counts[r])
		}
	}
	return nil
}

// Scatter distributes per-rank chunks from root's sendBuf: rank r receives
// recvCount elements of recvType taken from root's slot r.
func (c *Comm) Scatter(sendBuf []byte, sendCount int, sendType *Datatype, recvBuf []byte, recvCount int, recvType *Datatype, root int) error {
	n := c.Size()
	chunk := recvCount * recvType.Size()
	if c.myRank == root {
		if sendCount*sendType.Size() != chunk {
			return fmt.Errorf("%w: scatter send %d bytes/rank, recv %d", ErrInvalid, sendCount*sendType.Size(), chunk)
		}
		for r := 0; r < n; r++ {
			packed, err := sendType.Pack(sendBuf[r*sendCount*sendType.Extent():], sendCount)
			if err != nil {
				return err
			}
			if r == root {
				if _, err := recvType.Unpack(packed, recvBuf, recvCount); err != nil {
					return err
				}
				continue
			}
			wr := c.group[r]
			if err := c.proc.send(wr, tagScatter, c.collCtx(), packed); err != nil {
				return err
			}
		}
		return nil
	}
	packed := make([]byte, chunk)
	st, err := c.proc.recvInternal(packed, root, tagScatter, c, c.collCtx())
	if err != nil {
		return err
	}
	if st.Bytes != chunk {
		return fmt.Errorf("%w: scatter chunk %d bytes, want %d", ErrTruncate, st.Bytes, chunk)
	}
	_, err = recvType.Unpack(packed, recvBuf, recvCount)
	return err
}

// Allgather collects count elements of dt from every rank into every rank's
// recvBuf (rank-ordered). Implemented as gather to rank 0 plus broadcast.
func (c *Comm) Allgather(sendBuf []byte, count int, dt *Datatype, recvBuf []byte) error {
	packed, err := dt.Pack(sendBuf, count)
	if err != nil {
		return err
	}
	chunk := count * dt.Size()
	all := make([]byte, c.Size()*chunk)
	if err := c.gatherBytes(packed, all, 0, tagAllgather); err != nil {
		return err
	}
	if err := c.bcastBytes(all, 0, tagAllgather); err != nil {
		return err
	}
	for r := 0; r < c.Size(); r++ {
		if _, err := dt.Unpack(all[r*chunk:(r+1)*chunk], recvBuf[r*count*dt.Extent():], count); err != nil {
			return err
		}
	}
	return nil
}

// Alltoall exchanges fixed-size chunks: rank r's slot j of sendBuf goes to
// rank j's slot r of recvBuf. count is elements of dt per chunk.
func (c *Comm) Alltoall(sendBuf []byte, count int, dt *Datatype, recvBuf []byte) error {
	n := c.Size()
	span := count * dt.Extent()
	chunk := count * dt.Size()
	for k := 0; k < n; k++ {
		dst := (c.myRank + k) % n
		packed, err := dt.Pack(sendBuf[dst*span:], count)
		if err != nil {
			return err
		}
		if dst == c.myRank {
			if _, err := dt.Unpack(packed, recvBuf[dst*span:], count); err != nil {
				return err
			}
			continue
		}
		wr := c.group[dst]
		if err := c.proc.send(wr, tagAlltoall, c.collCtx(), packed); err != nil {
			return err
		}
	}
	tmp := make([]byte, chunk)
	for k := 1; k < n; k++ {
		src := (c.myRank - k + n) % n
		st, err := c.proc.recvInternal(tmp, src, tagAlltoall, c, c.collCtx())
		if err != nil {
			return err
		}
		if st.Bytes != chunk {
			return fmt.Errorf("%w: alltoall chunk from %d: %d bytes, want %d", ErrTruncate, src, st.Bytes, chunk)
		}
		if _, err := dt.Unpack(tmp, recvBuf[src*span:], count); err != nil {
			return err
		}
	}
	return nil
}

// Alltoallv exchanges variable-sized byte chunks. sendCounts/sendDispls and
// recvCounts/recvDispls are in bytes.
func (c *Comm) Alltoallv(sendBuf []byte, sendCounts, sendDispls []int, recvBuf []byte, recvCounts, recvDispls []int) error {
	n := c.Size()
	if len(sendCounts) != n || len(sendDispls) != n || len(recvCounts) != n || len(recvDispls) != n {
		return fmt.Errorf("%w: alltoallv counts/displs length", ErrInvalid)
	}
	for k := 0; k < n; k++ {
		dst := (c.myRank + k) % n
		chunk := sendBuf[sendDispls[dst] : sendDispls[dst]+sendCounts[dst]]
		if dst == c.myRank {
			if sendCounts[dst] != recvCounts[dst] {
				return fmt.Errorf("%w: alltoallv self chunk %d != %d", ErrInvalid, sendCounts[dst], recvCounts[dst])
			}
			copy(recvBuf[recvDispls[dst]:recvDispls[dst]+recvCounts[dst]], chunk)
			continue
		}
		wr := c.group[dst]
		if err := c.proc.send(wr, tagAlltoall, c.collCtx(), append([]byte(nil), chunk...)); err != nil {
			return err
		}
	}
	for k := 1; k < n; k++ {
		src := (c.myRank - k + n) % n
		dst := recvBuf[recvDispls[src] : recvDispls[src]+recvCounts[src]]
		st, err := c.proc.recvInternal(dst, src, tagAlltoall, c, c.collCtx())
		if err != nil {
			return err
		}
		if st.Bytes != recvCounts[src] {
			return fmt.Errorf("%w: alltoallv chunk from %d: %d bytes, want %d", ErrTruncate, src, st.Bytes, recvCounts[src])
		}
	}
	return nil
}

// Reduce combines count elements of dt from every rank with op; the result
// lands in root's recvBuf. Contributions are folded in ascending rank order,
// so floating-point results are deterministic.
func (c *Comm) Reduce(sendBuf []byte, recvBuf []byte, count int, dt *Datatype, op *Op, root int) error {
	packed, err := dt.Pack(sendBuf, count)
	if err != nil {
		return err
	}
	chunk := count * dt.Size()
	if c.myRank != root {
		wr := c.group[root]
		return c.proc.send(wr, tagReduce, c.collCtx(), packed)
	}
	n := c.Size()
	acc := make([]byte, chunk)
	contrib := make([]byte, chunk)
	for r := 0; r < n; r++ {
		if r == root {
			copy(contrib, packed)
		} else {
			st, err := c.proc.recvInternal(contrib, r, tagReduce, c, c.collCtx())
			if err != nil {
				return err
			}
			if st.Bytes != chunk {
				return fmt.Errorf("%w: reduce chunk from %d: %d bytes, want %d", ErrTruncate, r, st.Bytes, chunk)
			}
		}
		if r == 0 {
			copy(acc, contrib)
			continue
		}
		// Left fold in rank order: acc = op(acc, x_r). Op.Apply computes
		// inout = f(in, inout), so fold into the contribution and swap.
		if err := op.Apply(acc, contrib, dt, count); err != nil {
			return err
		}
		acc, contrib = contrib, acc
	}
	_, err = dt.Unpack(acc, recvBuf, count)
	return err
}

// Allreduce combines contributions with op and distributes the result to
// every rank: Reduce to rank 0 followed by Bcast.
func (c *Comm) Allreduce(sendBuf []byte, recvBuf []byte, count int, dt *Datatype, op *Op) error {
	if err := c.Reduce(sendBuf, recvBuf, count, dt, op, 0); err != nil {
		return err
	}
	return c.Bcast(recvBuf, count, dt, 0)
}

// AllreduceAux combines count elements with op while simultaneously
// reducing an auxiliary int64 with MIN, in the same collective round. The
// checkpoint protocol layer uses the auxiliary value to detect whether an
// Allreduce crossed a recovery line (minimum participant epoch) without
// paying for a second collective.
func (c *Comm) AllreduceAux(sendBuf, recvBuf []byte, count int, dt *Datatype, op *Op, aux int64) (int64, error) {
	packed, err := dt.Pack(sendBuf, count)
	if err != nil {
		return 0, err
	}
	chunk := 8 + count*dt.Size()
	mine := make([]byte, chunk)
	PutInt64s(mine[:8], []int64{aux})
	copy(mine[8:], packed)

	n := c.Size()
	if c.myRank != 0 {
		wr := c.group[0]
		if err := c.proc.send(wr, tagReduce, c.collCtx(), mine); err != nil {
			return 0, err
		}
	} else {
		acc := make([]byte, chunk)
		contrib := make([]byte, chunk)
		for r := 0; r < n; r++ {
			if r == 0 {
				copy(contrib, mine)
			} else {
				st, err := c.proc.recvInternal(contrib, r, tagReduce, c, c.collCtx())
				if err != nil {
					return 0, err
				}
				if st.Bytes != chunk {
					return 0, fmt.Errorf("%w: allreduce-aux chunk from %d: %d bytes, want %d", ErrTruncate, r, st.Bytes, chunk)
				}
			}
			if r == 0 {
				copy(acc, contrib)
				continue
			}
			// Fold into contrib (op.Apply writes its inout), then swap so
			// acc always holds the running result — aux included.
			if BytesInt64s(acc[:8])[0] < BytesInt64s(contrib[:8])[0] {
				copy(contrib[:8], acc[:8])
			}
			if err := op.Apply(acc[8:], contrib[8:], dt, count); err != nil {
				return 0, err
			}
			acc, contrib = contrib, acc
		}
		copy(mine, acc)
	}
	if err := c.bcastBytes(mine, 0, tagBcast); err != nil {
		return 0, err
	}
	if _, err := dt.Unpack(mine[8:], recvBuf, count); err != nil {
		return 0, err
	}
	return BytesInt64s(mine[:8])[0], nil
}

// Scan computes the inclusive prefix reduction: rank r's recvBuf holds
// op(x_0, ..., x_r). Implemented as a rank-ordered chain, matching the
// strictly ordered dependency structure the paper relies on in Section 4.3.
func (c *Comm) Scan(sendBuf []byte, recvBuf []byte, count int, dt *Datatype, op *Op) error {
	packed, err := dt.Pack(sendBuf, count)
	if err != nil {
		return err
	}
	chunk := count * dt.Size()
	acc := make([]byte, chunk)
	if c.myRank == 0 {
		copy(acc, packed)
	} else {
		st, err := c.proc.recvInternal(acc, c.myRank-1, tagScan, c, c.collCtx())
		if err != nil {
			return err
		}
		if st.Bytes != chunk {
			return fmt.Errorf("%w: scan partial: %d bytes, want %d", ErrTruncate, st.Bytes, chunk)
		}
		// acc = op(prefix, mine): inout starts as mine.
		mine := append([]byte(nil), packed...)
		if err := op.Apply(acc, mine, dt, count); err != nil {
			return err
		}
		acc = mine
	}
	if c.myRank < c.Size()-1 {
		wr := c.group[c.myRank+1]
		if err := c.proc.send(wr, tagScan, c.collCtx(), append([]byte(nil), acc...)); err != nil {
			return err
		}
	}
	_, err = dt.Unpack(acc, recvBuf, count)
	return err
}
