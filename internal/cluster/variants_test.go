package cluster_test

import (
	"sync"
	"testing"
	"time"

	"c3/internal/ckpt"
	"c3/internal/cluster"
	"c3/internal/sched"
	"c3/internal/stable"
	"c3/internal/transport"
)

// TestStressWideHeadersValidatesColorArithmetic reruns the random-schedule
// stress under the wide piggyback codec, whose receive path cross-checks
// the 2-bit color classification against exact epochs and fails fatally on
// any message that crossed more than one recovery line — the protocol's
// central invariant ("an application message can cross at most one
// recovery line").
func TestStressWideHeadersValidatesColorArithmetic(t *testing.T) {
	const ranks = 5
	const iters = 12
	var ref sync.Map
	run(t, cluster.Config{Ranks: ranks, App: sched.StressApp(iters, &ref)})

	var got sync.Map
	cfg := cluster.Config{
		Ranks:       ranks,
		App:         sched.StressApp(iters, &got),
		WideHeaders: true,
		Policy:      ckpt.Policy{EveryNthPragma: 3},
		Failures:    []cluster.FailureSpec{{Rank: 2, AtPragma: 7}},
	}
	run(t, cfg)
	for r := 0; r < ranks; r++ {
		want, _ := ref.Load(r)
		gotv, ok := got.Load(r)
		if !ok || want != gotv {
			t.Fatalf("rank %d: %v vs %v", r, want, gotv)
		}
	}
}

// TestStressLogAllIntraSignatures exercises the paper's Figure 4 pseudo-code
// variant that logs every intra-epoch signature during non-deterministic
// logging (not only wildcard receives); replay must consume the extra
// signature entries transparently.
func TestStressLogAllIntraSignatures(t *testing.T) {
	const ranks = 4
	const iters = 10
	var ref sync.Map
	run(t, cluster.Config{Ranks: ranks, App: sched.StressApp(iters, &ref)})

	var got sync.Map
	cfg := cluster.Config{
		Ranks:                 ranks,
		App:                   sched.StressApp(iters, &got),
		LogAllIntraSignatures: true,
		Policy:                ckpt.Policy{EveryNthPragma: 3},
		Failures:              []cluster.FailureSpec{{Rank: 1, AtPragma: 6}},
	}
	run(t, cfg)
	for r := 0; r < ranks; r++ {
		want, _ := ref.Load(r)
		gotv, ok := got.Load(r)
		if !ok || want != gotv {
			t.Fatalf("rank %d: %v vs %v", r, want, gotv)
		}
	}
}

// TestRecoveryFromDiskStore runs the checkpoint-failure-recover cycle
// against the on-disk store: the recovery line must survive the rename-based
// commit protocol and reload from files.
func TestRecoveryFromDiskStore(t *testing.T) {
	const ranks = 3
	const iters = 8
	store, err := stable.NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var ref sync.Map
	run(t, cluster.Config{Ranks: ranks, App: sched.StressApp(iters, &ref)})

	var got sync.Map
	res := run(t, cluster.Config{
		Ranks:    ranks,
		App:      sched.StressApp(iters, &got),
		Store:    store,
		Policy:   ckpt.Policy{EveryNthPragma: 2},
		Failures: []cluster.FailureSpec{{Rank: 0, AtPragma: 6}},
	})
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	for r := 0; r < ranks; r++ {
		want, _ := ref.Load(r)
		gotv, ok := got.Load(r)
		if !ok || want != gotv {
			t.Fatalf("rank %d: %v vs %v", r, want, gotv)
		}
	}
}

// TestRecoveryUnderLatency runs checkpoint and recovery on a transport with
// real per-message delay, where control messages, late messages and
// checkpoint coordination all race against slow delivery.
func TestRecoveryUnderLatency(t *testing.T) {
	const ranks = 3
	const iters = 6
	lat := []transport.Option{transport.WithLatency(
		transport.ConstantLatency(300*time.Microsecond, 0))}

	var ref sync.Map
	run(t, cluster.Config{Ranks: ranks, App: sched.StressApp(iters, &ref)})

	var got sync.Map
	res := run(t, cluster.Config{
		Ranks:            ranks,
		App:              sched.StressApp(iters, &got),
		TransportOptions: lat,
		Policy:           ckpt.Policy{EveryNthPragma: 2},
		Failures:         []cluster.FailureSpec{{Rank: 2, AtPragma: 4}},
	})
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	for r := 0; r < ranks; r++ {
		want, _ := ref.Load(r)
		gotv, ok := got.Load(r)
		if !ok || want != gotv {
			t.Fatalf("rank %d: %v vs %v", r, want, gotv)
		}
	}
}

// TestTimerPolicy checks the time-based checkpoint trigger the paper
// mentions ("a timer has expired").
func TestTimerPolicy(t *testing.T) {
	cfg := cluster.Config{
		Ranks:  2,
		Policy: ckpt.Policy{Interval: time.Microsecond}, // fires at every pragma
		App: func(env cluster.Env) error {
			st := env.State()
			it := st.Int("it")
			if _, err := env.Restore(); err != nil {
				return err
			}
			for it.Get() < 3 {
				it.Add(1)
				time.Sleep(50 * time.Microsecond)
				if err := env.Checkpoint(); err != nil {
					return err
				}
			}
			return cluster.LayerOf(env).Sync()
		},
	}
	res := run(t, cfg)
	for _, rs := range res.Stats {
		if rs.Stats.CheckpointsTaken == 0 {
			t.Fatalf("rank %d: timer policy took no checkpoints", rs.Rank)
		}
	}
}
