// Master/worker: wildcard receives under checkpointing.
//
// The master folds results from two workers into an order-sensitive hash,
// receiving with MPI_ANY_SOURCE — the non-determinism the paper's protocol
// logs during the NonDet-Log phase. A laggard rank delays its checkpoint, so
// the whole assignment window stays inside non-deterministic logging: every
// wildcard match is recorded. After the injected failure, recovery pins the
// re-executed wildcard receives to the original matches, and the master
// prints the same hash in both attempts — even though a free re-run could
// legally interleave the workers differently.
//
// Run: go run ./examples/masterworker
package main

import (
	"fmt"
	"log"

	"c3"
)

const (
	ranks          = 4
	unitsPerWorker = 8
)

const (
	tagResult = 1
	tagToken  = 2
)

func app(env c3.Env) error {
	st := env.State()
	phase := st.Int("phase")
	hash := st.Int("hash")

	if _, err := env.Restore(); err != nil {
		return err
	}
	w := env.World()
	layer := c3.LayerOf(env)

	switch env.Rank() {
	case 0: // master
		if phase.Get() == 0 {
			phase.Set(1)
			if err := env.CheckpointNow(); err != nil { // pragma 1: line
				return err
			}
		}
		if phase.Get() == 1 {
			h := int64(17)
			for i := 0; i < 2*unitsPerWorker; i++ {
				var unit [1]byte
				status, err := w.RecvBytes(unit[:], c3.AnySource, tagResult)
				if err != nil {
					return err
				}
				// Order-sensitive fold: which worker's result lands first
				// is scheduling-dependent.
				h = h*31 + int64(status.Source)*1000 + int64(unit[0])
			}
			hash.Set(int(h))
			fmt.Printf("master: assignment hash %d (pinned so far: %d)\n",
				hash.Get(), layer.Stats().PinnedWildcards)
			// Release the laggard so the checkpoint can complete.
			if err := w.SendBytes([]byte{1}, 3, tagToken); err != nil {
				return err
			}
			phase.Set(2)
		}
	case 1, 2: // workers: checkpoint, then stream results
		if phase.Get() == 0 {
			phase.Set(1)
			if err := env.CheckpointNow(); err != nil { // pragma 1: line
				return err
			}
		}
		if phase.Get() == 1 {
			for i := 0; i < unitsPerWorker; i++ {
				v := byte(env.Rank()*10 + i)
				if err := w.SendBytes([]byte{v * v}, 0, tagResult); err != nil {
					return err
				}
			}
			phase.Set(2)
		}
	case 3: // laggard: keeps everyone in NonDet-Log during the assignment
		if phase.Get() == 0 {
			var tok [1]byte
			if _, err := w.RecvBytes(tok[:], 0, tagToken); err != nil {
				return err
			}
			phase.Set(1)
			if err := env.CheckpointNow(); err != nil { // pragma 1: joins line
				return err
			}
		}
	}

	// Commit fence, then the pragma where the failure fires on attempt 0.
	if err := layer.Sync(); err != nil {
		return err
	}
	return env.Checkpoint() // pragma 2
}

func main() {
	res, err := c3.Run(c3.Config{
		Ranks:    ranks,
		App:      app,
		Failures: []c3.FailureSpec{{Rank: 1, AtPragma: 2}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d attempts; master pinned %d wildcard receives during recovery\n",
		res.Attempts, res.Stats[0].Stats.PinnedWildcards)
	fmt.Println("the two hashes above are identical: recovery replayed the original match order")
}
