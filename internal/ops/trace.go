package ops

// The tracing and profiling surface of the control plane:
//
//	GET  /trace               flight-recorder snapshot (JSON): logical
//	                          clock, ring occupancy, per-phase latency
//	                          histograms; ?events=1 adds the raw events
//	POST /trace/dump          write the ring to the node's trace directory
//	                          (rank<N>.c3tr, mergeable with cmd/c3trace)
//
// and, only when the server runs WithDebug (cmd/c3node -ops-debug):
//
//	GET  /debug/pprof/...     Go's net/http/pprof handlers (heap, goroutine,
//	                          CPU profile, execution trace via ?seconds=N)
//	POST /debug/runtime-trace/start  begin a runtime/trace capture to a file
//	POST /debug/runtime-trace/stop   end it and report the file path
//
// The start/stop pair exists alongside /debug/pprof/trace for captures that
// must bracket an unpredictable event (a failure, an epoch agreement):
// start before provoking it, stop after, no fixed ?seconds guess.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	rtrace "runtime/trace"

	"c3/internal/trace"
)

// Option tunes a Server at Serve time.
type Option func(*Server)

// WithDebug exposes the pprof handlers and runtime/trace verbs. Off by
// default: the profiling surface can stall the process (stop-the-world
// profile collection) and dumps internals, so it is operator-opt-in.
func WithDebug() Option { return func(s *Server) { s.debug = true } }

// WithRecorder overrides the flight recorder behind /trace and the
// histogram families on /metrics (default: the process-global recorder).
func WithRecorder(rec *trace.Recorder) Option { return func(s *Server) { s.rec = rec } }

// TraceDumper is the optional Backend extension behind POST /trace/dump: a
// node that knows its trace directory writes the ring there on demand.
type TraceDumper interface {
	TraceDump() (string, error)
}

// histJSON is one phase histogram in the /trace snapshot.
type histJSON struct {
	Count  uint64 `json:"count"`
	SumNs  int64  `json:"sum_ns"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P99Ns  int64  `json:"p99_ns"`
}

// eventJSON is one ring event in the /trace snapshot (?events=1).
type eventJSON struct {
	Kind   string `json:"kind"`
	Phase  string `json:"phase"`
	Span   string `json:"span,omitempty"`
	Parent string `json:"parent,omitempty"`
	Rank   int32  `json:"rank"`
	Peer   int32  `json:"peer"`
	Clock  uint64 `json:"clock"`
	TimeNs int64  `json:"time_ns"`
	Arg    uint64 `json:"arg"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	hists := make(map[string]histJSON)
	for k := trace.Kind(1); k < trace.KindCount; k++ {
		h := s.rec.Histogram(k)
		if h.Count == 0 {
			continue
		}
		hists[k.String()] = histJSON{
			Count:  h.Count,
			SumNs:  h.Sum,
			MeanNs: h.MeanNs(),
			P50Ns:  h.Quantile(0.5),
			P99Ns:  h.Quantile(0.99),
		}
	}
	out := map[string]any{
		"rank":       s.backend.Status().Rank,
		"clock":      s.rec.Clock(),
		"events":     s.rec.Len(),
		"histograms": hists,
	}
	if r.URL.Query().Get("events") == "1" {
		evs := s.rec.Snapshot()
		jes := make([]eventJSON, 0, len(evs))
		for _, ev := range evs {
			je := eventJSON{
				Kind: ev.Kind.String(), Phase: ev.Phase.String(),
				Rank: ev.Rank, Peer: ev.Peer,
				Clock: ev.Clock, TimeNs: ev.Time, Arg: ev.Arg,
			}
			if ev.Span != 0 {
				je.Span = fmt.Sprintf("%#x", ev.Span)
			}
			if ev.Parent != 0 {
				je.Parent = fmt.Sprintf("%#x", ev.Parent)
			}
			jes = append(jes, je)
		}
		out["ring"] = jes
	}
	writeJSON(w, out)
}

func (s *Server) handleTraceDump(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	td, ok := s.backend.(TraceDumper)
	if !ok {
		http.Error(w, "this node cannot dump traces", http.StatusNotImplemented)
		return
	}
	path, err := td.TraceDump()
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, map[string]string{"dump": path})
}

// registerDebug mounts the opt-in profiling surface on the mux.
func (s *Server) registerDebug(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/runtime-trace/start", s.handleRTraceStart)
	mux.HandleFunc("/debug/runtime-trace/stop", s.handleRTraceStop)
}

// strArg reads a string request parameter from the query string or a JSON
// object body ({"name": "..."}), preferring the query.
func strArg(r *http.Request, name string) string {
	if q := r.URL.Query().Get(name); q != "" {
		return q
	}
	if r.Body != nil {
		var body map[string]string
		if err := json.NewDecoder(r.Body).Decode(&body); err == nil {
			return body[name]
		}
	}
	return ""
}

func (s *Server) handleRTraceStart(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	s.rtMu.Lock()
	defer s.rtMu.Unlock()
	if s.rtFile != nil {
		http.Error(w, "a runtime trace is already running: stop it first", http.StatusConflict)
		return
	}
	var (
		f   *os.File
		err error
	)
	if path := strArg(r, "path"); path != "" {
		f, err = os.Create(path)
	} else {
		f, err = os.CreateTemp("", "c3-runtime-trace-*.out")
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := rtrace.Start(f); err != nil {
		_ = f.Close()
		_ = os.Remove(f.Name())
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.rtFile = f
	writeJSON(w, map[string]string{"trace": f.Name()})
}

func (s *Server) handleRTraceStop(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	s.rtMu.Lock()
	defer s.rtMu.Unlock()
	if s.rtFile == nil {
		http.Error(w, "no runtime trace is running", http.StatusConflict)
		return
	}
	rtrace.Stop()
	path := s.rtFile.Name()
	err := s.rtFile.Close()
	s.rtFile = nil
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]string{"trace": path})
}
