package cluster_test

import (
	"sync"
	"testing"

	"c3/internal/ckpt"
	"c3/internal/cluster"
	"c3/internal/mpi"
	"c3/internal/stable"
)

// incrementalApp has a large static section and a small hot section, the
// state shape incremental checkpointing pays off on.
func incrementalApp(iters int, sums *sync.Map) func(cluster.Env) error {
	return func(env cluster.Env) error {
		st := env.State()
		it := st.Int("it")
		hot := st.Int("hot")
		static := st.Float64s("static", 64*1024).Data() // 512 KB, written once
		if _, err := env.Restore(); err != nil {
			return err
		}
		w := env.World()
		if it.Get() == 0 && static[0] == 0 {
			for i := range static {
				static[i] = float64(i + env.Rank())
			}
		}
		for it.Get() < iters {
			other := (env.Rank() + 1) % env.Size()
			var in [1]byte
			if _, err := w.Sendrecv([]byte{byte(it.Get())}, 1, mpi.TypeByte, other, 3,
				in[:], 1, mpi.TypeByte, (env.Rank()+env.Size()-1)%env.Size(), 3); err != nil {
				return err
			}
			hot.Add(int(in[0]))
			it.Add(1)
			if err := env.Checkpoint(); err != nil {
				return err
			}
		}
		sums.Store(env.Rank(), hot.Get()*1000000+int(static[123]))
		return nil
	}
}

// TestIncrementalCheckpointRecovery runs the paper's future-work extension:
// deltas between full snapshots must recover exactly, across a failure that
// lands several deltas past the last full checkpoint.
func TestIncrementalCheckpointRecovery(t *testing.T) {
	const ranks = 3
	const iters = 10

	var ref sync.Map
	run(t, cluster.Config{Ranks: ranks, Direct: true, App: incrementalApp(iters, &ref)})

	var got sync.Map
	res := run(t, cluster.Config{
		Ranks:               ranks,
		App:                 incrementalApp(iters, &got),
		Policy:              ckpt.Policy{EveryNthPragma: 1}, // checkpoint every iteration
		FullCheckpointEvery: 4,
		Failures:            []cluster.FailureSpec{{Rank: 1, AtPragma: 7}},
	})
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	for r := 0; r < ranks; r++ {
		want, _ := ref.Load(r)
		gotv, ok := got.Load(r)
		if !ok || want != gotv {
			t.Fatalf("rank %d: ref %v vs incremental-recovered %v", r, want, gotv)
		}
	}
}

// TestIncrementalCheckpointsAreSmaller verifies the point of the extension:
// with a mostly-static state, the bytes written with incremental mode are a
// fraction of the full-checkpoint bytes.
func TestIncrementalCheckpointsAreSmaller(t *testing.T) {
	const ranks = 2
	const iters = 8

	measure := func(fullEvery int) int64 {
		store := stable.NewMemStore()
		var out sync.Map
		run(t, cluster.Config{
			Ranks:               ranks,
			App:                 incrementalApp(iters, &out),
			Store:               store,
			Policy:              ckpt.Policy{EveryNthPragma: 1},
			FullCheckpointEvery: fullEvery,
		})
		return store.BytesWritten()
	}

	full := measure(0)
	inc := measure(4)
	if inc >= full/2 {
		t.Fatalf("incremental checkpoints not smaller: %d vs %d bytes", inc, full)
	}
}

// TestIncrementalRetireKeepsChain makes sure garbage collection never
// deletes a delta's anchor: after many checkpoints, recovery must still
// find the full snapshot its chain starts at.
func TestIncrementalRetireKeepsChain(t *testing.T) {
	const ranks = 2
	const iters = 11
	var ref, got sync.Map
	run(t, cluster.Config{Ranks: ranks, Direct: true, App: incrementalApp(iters, &ref)})

	res := run(t, cluster.Config{
		Ranks:               ranks,
		App:                 incrementalApp(iters, &got),
		Policy:              ckpt.Policy{EveryNthPragma: 1},
		FullCheckpointEvery: 3,
		Failures:            []cluster.FailureSpec{{Rank: 0, AtPragma: 11}},
	})
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	for r := 0; r < ranks; r++ {
		want, _ := ref.Load(r)
		gotv, ok := got.Load(r)
		if !ok || want != gotv {
			t.Fatalf("rank %d: ref %v vs recovered %v", r, want, gotv)
		}
	}
}
