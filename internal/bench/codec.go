package bench

import (
	"fmt"
	"time"

	"c3/internal/apps"
	"c3/internal/stable"
)

// codecBenchSpec is one AblationCodec row: a codec geometry plus the
// number of simultaneous rank losses a committed line survives.
type codecBenchSpec struct {
	name      string
	k, m      int
	tolerates int
}

// codecBenchSpecs compares the three codecs with dup and rs at EQUAL fault
// tolerance (any two simultaneous losses) and xor as the cheaper
// single-loss point in between.
var codecBenchSpecs = []codecBenchSpec{
	{name: "dup", k: 2, m: 0, tolerates: 2},
	{name: "xor", k: 4, m: 0, tolerates: 1},
	{name: "rs", k: 4, m: 2, tolerates: 2},
}

// codecBenchBlob sizes the synthetic per-rank checkpoint by problem class.
func codecBenchBlob(class apps.Class) int {
	switch class {
	case apps.ClassS:
		return 128 << 10
	case apps.ClassA:
		return 4 << 20
	default:
		return 1 << 20
	}
}

// AblationCodec prices the stable-storage codecs on the diskless
// replicated store: interconnect bytes shipped per commit, bytes resident
// per rank, the storage ratio against dup full replication, commit latency
// (synchronous-replicated, to acknowledgment), and reassembly latency
// after the owner's node loss. This is the scaling argument for erasure
// coding: rs k=4,m=2 matches dup's two-loss tolerance at half the wire
// bytes and half the per-rank memory.
func AblationCodec(opts Options) (*Table, error) {
	const worldRanks = 8
	blobSize := codecBenchBlob(opts.class())
	payload := make([]byte, blobSize)
	for i := range payload {
		payload[i] = byte(i * 2654435761)
	}
	t := &Table{
		Title: fmt.Sprintf("Ablation: stable-storage codecs (diskless store, %d ranks, %d KiB checkpoint/rank)",
			worldRanks, blobSize>>10),
		Columns: []string{"Codec", "Shards", "Tolerates", "Wire MB/ckpt", "Stored MB/rank", "Stored vs dup", "Commit (ms)", "Reassembly (ms)"},
	}
	reps := opts.reps()
	var dupStoredPerRank float64
	for _, spec := range codecBenchSpecs {
		codec, err := stable.NewCodec(spec.name, spec.k, spec.m)
		if err != nil {
			return nil, err
		}
		store := stable.NewReplicatedStore(worldRanks, stable.WithCodec(codec))

		// reps rounds of a full world commit, retiring the previous round
		// so the resident footprint always reflects exactly one line.
		var commitTimes []time.Duration
		version := 0
		for rep := 0; rep < reps; rep++ {
			version = rep + 1
			for r := 0; r < worldRanks; r++ {
				ck, err := store.Begin(r, version)
				if err != nil {
					store.Close()
					return nil, err
				}
				if err := ck.WriteSection("app", payload); err != nil {
					store.Close()
					return nil, err
				}
				begin := time.Now()
				if err := ck.Commit(); err != nil {
					store.Close()
					return nil, err
				}
				commitTimes = append(commitTimes, time.Since(begin))
			}
			for r := 0; r < worldRanks; r++ {
				if err := store.Retire(r, version); err != nil {
					store.Close()
					return nil, err
				}
			}
		}
		commits := int64(reps * worldRanks)
		wirePerCkpt := float64(store.ReplicatedBytes()) / float64(commits)
		storedPerRank := float64(store.StoredBytes()) / float64(worldRanks)
		if spec.name == "dup" {
			dupStoredPerRank = storedPerRank
		}
		ratio := "-"
		if dupStoredPerRank > 0 {
			ratio = fmt.Sprintf("%.2fx", storedPerRank/dupStoredPerRank)
		}

		// Reassembly: the owner's node dies and its line is rebuilt from
		// peer fragments/shards — the disk-free recovery path.
		store.FailNode(0)
		begin := time.Now()
		snap, err := store.Open(0, version)
		reassembly := time.Since(begin)
		if err != nil {
			store.Close()
			return nil, fmt.Errorf("bench: %s reassembly: %w", spec.name, err)
		}
		snap.Close()
		store.Close()

		t.Rows = append(t.Rows, []string{
			spec.name,
			fmt.Sprintf("%d+%d", codec.DataShards(), codec.ParityShards()),
			fmt.Sprintf("%d losses", spec.tolerates),
			mbs(int64(wirePerCkpt)),
			mbs(int64(storedPerRank)),
			ratio,
			fmt.Sprintf("%.3f", medianDuration(commitTimes).Seconds()*1e3),
			fmt.Sprintf("%.3f", reassembly.Seconds()*1e3),
		})
	}
	t.Notes = append(t.Notes,
		"dup: full blob to both +1/+2 neighbors plus a local copy (the pre-codec scheme).",
		"xor/rs: one shard per distinct ring successor, parity placement rotated per owner, NO full local copy — every restore reassembles.",
		"dup and rs (m=2) both survive any two simultaneous node losses; the acceptance bar is rs stored/rank <= 0.6x dup.",
		"Commit is synchronous-replicated: the latency includes shipping every shard and collecting holder acknowledgments over the in-memory interconnect.")
	return t, nil
}

// medianDuration returns the median of a non-empty sample.
func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}
