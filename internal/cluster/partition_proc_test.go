package cluster_test

// The multi-process partition acceptance test: a 5-process TCP world is
// split 3/2 by the launcher mid-run (blackhole via the part pipe command
// on every worker), the majority side commits an epoch declaring the
// minority dead, the fenced minority commits NOTHING while severed, and
// after the heal the minority rejoins through the state-snapshot path and
// the whole world converges to the failure-free checksums.

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"c3/internal/cluster"
)

// launchPartition runs a self-healing multi-process world with an
// external partition injected by the launcher.
func launchPartition(t *testing.T, ranks int, part *cluster.ExternalPartitionSpec, extra ...string) *cluster.LaunchResult {
	t.Helper()
	res, err := cluster.Launch(cluster.LaunchConfig{
		Ranks:             ranks,
		Exe:               os.Args[0],
		Env:               []string{procWorkerEnv + "=1", "GOTRACEBACK=all"},
		Timeout:           90 * time.Second,
		SelfHeal:          true,
		ExternalPartition: part,
		Args: func(rank int, mpiAddrs, replAddrs []string) []string {
			args := []string{
				"-rank", strconv.Itoa(rank),
				"-ranks", strconv.Itoa(ranks),
				"-peers", strings.Join(mpiAddrs, ","),
				"-repl-peers", strings.Join(replAddrs, ","),
				"-self-heal",
				"-heartbeat", "15ms",
				"-phi", "6",
				"-query-timeout", "1s",
				"-query-retries", "2",
			}
			return append(args, extra...)
		},
		Log: t.Logf,
	})
	if err != nil {
		t.Fatalf("partition launch: %v", err)
	}
	return res
}

func TestMultiProcessPartitionHeal(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test in -short mode")
	}
	const ranks = 5
	minority := []int{3, 4}
	ref := procReference(t, ranks)
	res := launchPartition(t, ranks,
		&cluster.ExternalPartitionSpec{
			GroupA:           minority,
			AfterCheckpoints: 2,
			HealAfter:        3 * time.Second,
		},
		"-every", "2")

	if res.PartTime.IsZero() || res.HealTime.IsZero() {
		t.Fatalf("launcher did not bracket the partition: part=%v heal=%v", res.PartTime, res.HealTime)
	}
	if d := res.HealTime.Sub(res.PartTime); d < 3*time.Second {
		t.Errorf("split lasted %v, want >= the configured 3s", d)
	}

	// The headline safety property: the fenced minority committed zero
	// checkpoints while severed. (The majority is not asserted — during
	// the split its app is blocked in full-world collectives, so at most a
	// commit already in flight lands.)
	for _, r := range minority {
		if n := res.SplitCkpts[r]; n != 0 {
			t.Errorf("minority rank %d committed %d checkpoint(s) while split, want 0", r, n)
		}
	}
	t.Logf("split-time commits: %v (split %v -> heal %v)", res.SplitCkpts, res.PartTime, res.HealTime)

	// Liveness after the heal: the majority's quorum epoch propagated
	// everywhere (every rank left epoch 1), the post-heal recovery
	// restored from a checkpoint line, and the checksums converge.
	for r := 0; r < ranks; r++ {
		stat := res.Stats[r]
		if e := statField(t, stat, "epochs"); e < 2 {
			t.Errorf("rank %d stat %q: epochs = %d, want >= 2 (quorum commit missing)", r, stat, e)
		}
		if statField(t, stat, "restores") < 1 {
			t.Errorf("rank %d stat %q: no restore after heal", r, stat)
		}
	}
	checkProcSums(t, res, ref)
}
