// Package cluster is the process runtime for the reproduction: it launches
// a world of ranks (one goroutine each), runs an application function on
// every rank, injects fail-stop failures, and orchestrates
// restart-and-recover cycles from the last committed recovery line.
//
// Applications are written against the Env and Comm interfaces, which are
// implemented twice:
//
//   - the checkpointed implementation routes every operation through the
//     ckpt protocol layer (the "C3" configuration in the paper's tables);
//   - the direct implementation calls the mpi substrate with no
//     interposition (the "Original" configuration).
//
// Running the same kernel under both implementations reproduces the
// paper's overhead methodology.
package cluster

import (
	"c3/internal/mpi"
	"c3/internal/statesave"
)

// Comm is the communicator interface applications program against. Its
// checkpointed implementation is *ckpt.WComm; the direct implementation is
// a thin adapter over *mpi.Comm.
type Comm interface {
	Rank() int
	Size() int

	Send(buf []byte, count int, dt *mpi.Datatype, dest, tag int) error
	SendBytes(data []byte, dest, tag int) error
	Recv(buf []byte, count int, dt *mpi.Datatype, src, tag int) (mpi.Status, error)
	RecvBytes(buf []byte, src, tag int) (mpi.Status, error)
	Sendrecv(sendBuf []byte, sendCount int, sendType *mpi.Datatype, dest, sendTag int,
		recvBuf []byte, recvCount int, recvType *mpi.Datatype, src, recvTag int) (mpi.Status, error)
	Probe(src, tag int) (mpi.Status, error)
	Iprobe(src, tag int) (mpi.Status, bool, error)

	Isend(buf []byte, count int, dt *mpi.Datatype, dest, tag int) (int, error)
	Irecv(buf []byte, count int, dt *mpi.Datatype, src, tag int) (int, error)
	Wait(id int) (mpi.Status, error)
	Test(id int) (mpi.Status, bool, error)
	Waitall(ids []int) ([]mpi.Status, error)
	Waitany(ids []int) (int, mpi.Status, error)

	Barrier() error
	Bcast(buf []byte, count int, dt *mpi.Datatype, root int) error
	Gather(sendBuf []byte, sendCount int, dt *mpi.Datatype, recvBuf []byte, root int) error
	Scatter(sendBuf []byte, count int, dt *mpi.Datatype, recvBuf []byte, root int) error
	Allgather(sendBuf []byte, count int, dt *mpi.Datatype, recvBuf []byte) error
	Alltoall(sendBuf []byte, count int, dt *mpi.Datatype, recvBuf []byte) error
	Alltoallv(sendBuf []byte, sendCounts, sendDispls []int, recvBuf []byte, recvCounts, recvDispls []int) error
	Reduce(sendBuf, recvBuf []byte, count int, dt *mpi.Datatype, op *mpi.Op, root int) error
	Allreduce(sendBuf, recvBuf []byte, count int, dt *mpi.Datatype, op *mpi.Op) error
	Scan(sendBuf, recvBuf []byte, count int, dt *mpi.Datatype, op *mpi.Op) error
}

// Env is the per-rank application environment: world access, registered
// state, and the checkpoint pragma.
type Env interface {
	// Rank returns the world rank; Size the world size.
	Rank() int
	Size() int
	// World returns the world communicator.
	World() Comm
	// State returns the application state registry; data registered there
	// is saved at every checkpoint.
	State() *statesave.Registry
	// Heap returns the checkpointable heap.
	Heap() *statesave.Heap
	// Restore recovers state from the last committed global recovery line,
	// if this run is a restart and a line exists. Applications call it once
	// after registering all state; it reports whether state was restored.
	Restore() (bool, error)
	// Checkpoint is the pragma: a potential checkpoint location
	// (#pragma ccc checkpoint). Whether a checkpoint is actually taken is
	// decided by the policy and by other processes having initiated one.
	Checkpoint() error
	// CheckpointNow forces a checkpoint at this pragma.
	CheckpointNow() error
	// Args returns the application arguments from the run configuration.
	Args() any
}
