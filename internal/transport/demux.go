package transport

// Demux splits one physical interconnect into kind-keyed logical planes, so
// independent subsystems can share a single long-lived mesh. The
// multi-process runtime routes the replication plane (stable.DistStore) and
// the failure-detection plane (internal/detect) over one TCP mesh this way:
// a single pump goroutine reads the local endpoint and dispatches each
// message to the plane registered for its payload's WireKind.
//
// The demux also exposes observer hooks on both directions. The failure
// detector uses them to piggyback liveness on existing traffic: every
// message received from a peer counts as a heartbeat from it, and every
// message sent toward a peer lets the emitter skip the next explicit ping.

import (
	"sync"
)

// Demux fans one Interconnect's local receive stream out to per-kind
// planes. Create planes with Plane, install observers, then call Start.
type Demux struct {
	inner Interconnect
	self  int

	mu       sync.Mutex
	planes   map[uint8]*demuxPlane
	onRecv   func(from int)
	onSend   func(to int)
	started  bool
	shutdown bool

	wg sync.WaitGroup
}

// NewDemux wraps the interconnect whose local rank is self.
func NewDemux(inner Interconnect, self int) *Demux {
	return &Demux{inner: inner, self: self, planes: make(map[uint8]*demuxPlane)}
}

// Plane returns the logical interconnect carrying payloads of the given
// wire kind. All planes must be created before Start; messages arriving for
// a kind with no plane are dropped.
func (d *Demux) Plane(kind uint8) Interconnect {
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.planes[kind]
	if p == nil {
		p = &demuxPlane{d: d, port: newQueuePort(d.self)}
		d.planes[kind] = p
	}
	return p
}

// SetObservers installs the liveness hooks: recv fires for every message
// the pump delivers (any plane), send for every outbound message. Install
// before Start; either may be nil.
func (d *Demux) SetObservers(recv func(from int), send func(to int)) {
	d.mu.Lock()
	d.onRecv, d.onSend = recv, send
	d.mu.Unlock()
}

// Inject delivers a message straight into the plane registered for kind,
// as if it had arrived over the shared mesh: the receive observer fires
// (liveness evidence credited to msg.From — for a relayed frame that is
// the original sender, not the forwarding hop) and the plane's receivers
// wake. The relay router uses it to hand unwrapped payloads to their inner
// plane. It reports whether a plane accepted the message.
func (d *Demux) Inject(kind uint8, msg Message) bool {
	d.mu.Lock()
	recv := d.onRecv
	plane := d.planes[kind]
	d.mu.Unlock()
	if recv != nil {
		recv(msg.From)
	}
	if plane == nil {
		return false
	}
	return plane.port.push(msg)
}

// Start launches the pump goroutine. It must be called exactly once, after
// every Plane and SetObservers call.
func (d *Demux) Start() {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.mu.Unlock()
	d.wg.Add(1)
	go d.pump()
}

// Close shuts the underlying interconnect down (unblocking the pump and
// every plane's receivers) and waits for the pump to exit.
func (d *Demux) Close() {
	d.mu.Lock()
	d.shutdown = true
	planes := make([]*demuxPlane, 0, len(d.planes))
	for _, p := range d.planes {
		planes = append(planes, p)
	}
	d.mu.Unlock()
	d.inner.Shutdown()
	for _, p := range planes {
		p.port.kill()
	}
	d.wg.Wait()
}

// pump moves messages from the shared endpoint into per-plane ports.
func (d *Demux) pump() {
	defer d.wg.Done()
	ep := d.inner.Endpoint(d.self)
	for {
		msg, err := ep.Recv()
		if err != nil {
			return // interconnect shut down
		}
		d.mu.Lock()
		recv := d.onRecv
		var plane *demuxPlane
		if wp, ok := msg.Payload.(WirePayload); ok {
			plane = d.planes[wp.WireKind()]
		}
		d.mu.Unlock()
		if recv != nil {
			recv(msg.From)
		}
		if plane != nil {
			plane.port.push(msg)
		}
	}
}

// demuxPlane is one logical interconnect: sends pass through to the shared
// mesh, receives come from the plane's own port fed by the pump. Shutdown
// kills only the plane's port — the shared mesh stays up for its siblings;
// tearing the whole mesh down is Demux.Close's job.
type demuxPlane struct {
	d    *Demux
	port *queuePort
}

func (p *demuxPlane) Size() int { return p.d.inner.Size() }

func (p *demuxPlane) Send(msg Message) error {
	p.d.mu.Lock()
	send := p.d.onSend
	p.d.mu.Unlock()
	if send != nil {
		send(msg.To)
	}
	if msg.To == p.d.self {
		// Local loopback would be consumed by the shared endpoint the pump
		// owns on some interconnects; route it straight into the plane port
		// so self-sends never depend on the backend's loopback path.
		if !p.port.push(msg) {
			return ErrDown
		}
		return nil
	}
	return p.d.inner.Send(msg)
}

func (p *demuxPlane) Endpoint(rank int) Port {
	if rank == p.d.self {
		return p.port
	}
	return downPort{rank: rank}
}

func (p *demuxPlane) Kill(rank int) {
	if rank == p.d.self {
		p.port.kill()
	}
}

func (p *demuxPlane) Shutdown()             { p.port.kill() }
func (p *demuxPlane) Stats() Stats          { return p.d.inner.Stats() }
func (p *demuxPlane) Scheduler() *Scheduler { return p.d.inner.Scheduler() }

var _ Interconnect = (*demuxPlane)(nil)

// queuePort is a minimal local receive queue (the demux analogue of the
// in-memory Endpoint and the TCP mesh's port).
type queuePort struct {
	rank int

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	killed bool
}

func newQueuePort(rank int) *queuePort {
	p := &queuePort{rank: rank}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *queuePort) Rank() int { return p.rank }

func (p *queuePort) push(msg Message) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.killed {
		return false
	}
	p.queue = append(p.queue, msg)
	p.cond.Signal()
	return true
}

func (p *queuePort) kill() {
	p.mu.Lock()
	p.killed = true
	p.queue = nil
	p.mu.Unlock()
	p.cond.Broadcast()
}

func (p *queuePort) Recv() (Message, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.queue) == 0 {
		if p.killed {
			return Message{}, ErrDown
		}
		p.cond.Wait()
	}
	msg := p.queue[0]
	p.queue = p.queue[1:]
	return msg, nil
}

func (p *queuePort) TryRecv() (Message, bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.killed {
		return Message{}, false, ErrDown
	}
	if len(p.queue) == 0 {
		return Message{}, false, nil
	}
	msg := p.queue[0]
	p.queue = p.queue[1:]
	return msg, true, nil
}

func (p *queuePort) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

func (p *queuePort) Killed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.killed
}

// downPort stands in for remote ranks: their receive sides live elsewhere.
type downPort struct{ rank int }

func (d downPort) Rank() int              { return d.rank }
func (d downPort) Recv() (Message, error) { return Message{}, ErrDown }
func (d downPort) TryRecv() (Message, bool, error) {
	return Message{}, false, ErrDown
}
func (d downPort) Pending() int { return 0 }
func (d downPort) Killed() bool { return true }
