package c3determinism_test

import (
	"testing"

	"c3/internal/lint/c3determinism"
	"c3/internal/lint/linttest"
)

// TestGoverned runs the fixture under a governed import path: wall-clock
// reads and global rand draws are findings, seeded generators and
// deterministic methods are not, and the justified allow is suppressed.
func TestGoverned(t *testing.T) {
	res := linttest.Run(t, "internal/lint/testdata/src/determinism", "c3/internal/sched",
		c3determinism.Analyzer)
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (the injectionFallback allow)", res.Suppressed)
	}
	if len(res.Dead) != 0 {
		t.Errorf("dead directives = %v, want none", res.Dead)
	}
}

// TestUngovernedExempt type-checks the same fixture under an import path
// outside the scheduler's jurisdiction: zero findings (and the allow
// directive, now matching nothing, surfaces as dead).
func TestUngovernedExempt(t *testing.T) {
	res := linttest.RunRaw(t, "internal/lint/testdata/src/determinism", "fixture/determinism",
		c3determinism.Analyzer)
	if len(res.Findings) != 0 {
		t.Errorf("ungoverned package produced findings: %v", res.Findings)
	}
	if len(res.Dead) != 1 {
		t.Errorf("dead directives = %d, want 1 (the now-unneeded allow)", len(res.Dead))
	}
}
