package apps

import (
	"c3/internal/cluster"
	"c3/internal/mpi"
)

// SMG2000 mirrors the ASCI Purple SMG2000 benchmark: a semicoarsening
// multigrid solver driven by a PCG iteration, characterized by many small
// messages per cycle across several grid levels. The paper places eight
// checkpoint locations in SMG2000 — "at the top of the while i loop in
// hypre_PCGSolve, at the top of the for i loop in hypre_SMGSolve," and
// several more in main — "a mixture of locations both inside and outside
// main computation loops"; this kernel mirrors that by putting pragmas at
// both nesting levels.
func init() {
	Register(&Kernel{
		Name:        "SMG2000",
		Description: "semicoarsening multigrid in a PCG loop: many small messages, nested pragmas",
		Defaults: func(c Class) Params {
			n, _ := sized(Params{Class: c}, map[Class]int{ClassS: 128, ClassW: 65536, ClassA: 262144}, nil)
			_, it := sized(Params{Class: c}, nil, map[Class]int{ClassS: 4, ClassW: 8, ClassA: 12})
			return Params{Class: c, N: n, Iters: it}
		},
		App: smgApp,
	})
}

func smgApp(p Params, out *Output) func(cluster.Env) error {
	return func(env cluster.Env) error {
		n, iters := sized(p,
			map[Class]int{ClassS: 128, ClassW: 65536, ClassA: 262144},
			map[Class]int{ClassS: 4, ClassW: 8, ClassA: 12})
		st := env.State()
		r, size := env.Rank(), env.Size()
		for n%(size*4) != 0 {
			n++
		}
		local := n / size
		levels := 3

		pcgIt := st.Int("pcgIt") // outer PCG iteration
		smgIt := st.Int("smgIt") // inner SMG cycle position
		x := st.Float64s("x", local).Data()
		res := st.Float64s("res", local).Data()

		restored, err := env.Restore()
		if err != nil {
			return err
		}
		w := env.World()

		if !restored && pcgIt.Get() == 0 && smgIt.Get() == 0 {
			for i := range x {
				x[i] = 0
				res[i] = float64((r*local+i)%9) * 0.25
			}
		}

		// exchange swaps one boundary value with each neighbor: the small,
		// frequent messages characteristic of SMG.
		exchange := func(g []float64, tag int) error {
			var sbuf, rbuf [8]byte
			if r > 0 {
				mpi.PutFloat64s(sbuf[:], g[:1])
				if _, err := w.Sendrecv(sbuf[:], 1, mpi.TypeFloat64, r-1, tag,
					rbuf[:], 1, mpi.TypeFloat64, r-1, tag+1); err != nil {
					return err
				}
				var v [1]float64
				mpi.GetFloat64s(v[:], rbuf[:])
				g[0] += 0.1 * v[0]
			}
			if r < size-1 {
				mpi.PutFloat64s(sbuf[:], g[len(g)-1:])
				if _, err := w.Sendrecv(sbuf[:], 1, mpi.TypeFloat64, r+1, tag+1,
					rbuf[:], 1, mpi.TypeFloat64, r+1, tag); err != nil {
					return err
				}
				var v [1]float64
				mpi.GetFloat64s(v[:], rbuf[:])
				g[len(g)-1] += 0.1 * v[0]
			}
			return nil
		}

		relax := func(g []float64) {
			for i := 1; i < len(g)-1; i++ {
				g[i] = 0.25*g[i-1] + 0.5*g[i] + 0.25*g[i+1]
			}
		}

		const cyclesPerPCG = 3
		for pcgIt.Get() < iters {
			// Inner SMG solve: several cycles, each touching all levels
			// with small halo messages; pragma at the top of the inner loop
			// (one of the paper's in-loop locations).
			for smgIt.Get() < cyclesPerPCG {
				if err := env.Checkpoint(); err != nil { // top of hypre_SMGSolve loop
					return err
				}
				for l := 0; l < levels; l++ {
					m := local >> l
					if m < 2 {
						break
					}
					sub := res[:m]
					if err := exchange(sub, 51+2*l); err != nil {
						return err
					}
					relax(sub)
				}
				smgIt.Add(1)
			}
			smgIt.Set(0)
			// PCG update: dot product + axpy.
			s := 0.0
			for i := range res {
				s += res[i] * res[i]
			}
			in := mpi.Float64Bytes([]float64{s})
			outb := make([]byte, 8)
			if err := w.Allreduce(in, outb, 1, mpi.TypeFloat64, mpi.OpSum); err != nil {
				return err
			}
			rho := mpi.BytesFloat64s(outb)[0]
			alpha := 1.0 / (1.0 + rho)
			for i := range x {
				x[i] += alpha * res[i]
				res[i] *= 1 - alpha
			}
			pcgIt.Add(1)
			if err := env.Checkpoint(); err != nil { // top of hypre_PCGSolve loop
				return err
			}
		}
		sum := 0.0
		for i, v := range x {
			sum += v * float64(i%5+1)
		}
		out.Report(r, sum)
		return nil
	}
}
