// Package trace is the repo's zero-dependency causal tracing plane: a
// flight recorder that every protocol layer writes lightweight span
// events into, plus the Lamport-clocked causal context that rides on
// wire frames so per-rank recordings can be stitched into one
// cross-rank happens-before timeline without synchronized clocks.
//
// The design splits into three pieces:
//
//   - Events and spans. An Event is a fixed-shape record (span id,
//     parent, rank, kind, phase, Lamport clock, timestamp, one numeric
//     argument). Begin/End pairs bracket protocol phases (serialize,
//     encode, ship, ack, suspect, agree, restore, ...); Send/Recv pairs
//     are the cross-rank edges. End events also feed per-kind
//     log-bucketed latency histograms, so the same instrumentation
//     serves both post-mortem timelines and live /metrics.
//
//   - The flight recorder. A fixed-size ring of atomic.Pointer slots:
//     the write path is one atomic counter increment plus one pointer
//     store, lock-free and race-detector-clean, so it can stay always
//     on inside commit and detection hot paths. The ring holds the last
//     N thousand events; Snapshot collects a consistent set for dumping.
//
//   - Causal context. Ctx{Span, Clock} piggybacks on transport
//     messages: the sender stamps its Lamport clock and a fresh edge
//     span id, the receiver merges max(local, remote)+1. A recv event
//     therefore always carries a Lamport clock strictly greater than
//     its send event — the invariant cmd/c3trace re-verifies when
//     merging dumps (a violation means a protocol or transport bug).
//
// Timestamps come from an injectable clock. Real worlds use wall time
// (never compared across ranks — only Lamport order is); worlds under
// the virtual transport.Scheduler install the scheduler's logical
// clock, which makes recorded traces byte-for-byte replay-deterministic.
package trace

import (
	"sync/atomic"
	"time"
)

// Kind classifies what protocol phase or edge an event belongs to.
type Kind uint8

const (
	// KindNone is an unclassified event (never recorded by this repo;
	// decodable for forward compatibility).
	KindNone Kind = iota
	// KindSend / KindRecv are the cross-rank message edges.
	KindSend
	KindRecv
	// Commit pipeline stages (ckpt + stable).
	KindCommit    // whole commit: enqueue -> durable
	KindSerialize // application/MPI state capture
	KindEncode    // erasure-codec shard encode
	KindShip      // fragment + marker transmission to one peer
	KindAck       // waiting for replication acks
	// Detector phases.
	KindSuspect // first local suspicion of a rank
	KindGossip  // suspicion gossip fan-out
	KindAgree   // two-phase epoch agreement (propose -> commit)
	KindEpoch   // committed epoch transition applied locally
	KindFence   // fencing transition (arg: 1=fenced, 0=unfenced)
	// Recovery and membership.
	KindRespawn    // launcher respawning a dead rank
	KindReassemble // rebuilding a lost rank's fragments from peers
	KindRestore    // recovery-line restore on one rank
	KindMember     // membership transition (join/drain) applied
	// Two-level topology (checkpoint groups).
	KindGroup // group event (arg: packed gid<<32|role — delegate changes, group suspicion)
	KindRelay // inter-group relay hop (arg: final destination rank)
	// KindCount is the number of kinds; keep it last.
	KindCount
)

var kindNames = [KindCount]string{
	KindNone:       "none",
	KindSend:       "send",
	KindRecv:       "recv",
	KindCommit:     "commit",
	KindSerialize:  "serialize",
	KindEncode:     "encode",
	KindShip:       "ship",
	KindAck:        "ack",
	KindSuspect:    "suspect",
	KindGossip:     "gossip",
	KindAgree:      "agree",
	KindEpoch:      "epoch",
	KindFence:      "fence",
	KindRespawn:    "respawn",
	KindReassemble: "reassemble",
	KindRestore:    "restore",
	KindMember:     "member",
	KindGroup:      "group",
	KindRelay:      "relay",
}

// String returns the kind's lowercase name ("commit", "suspect", ...).
func (k Kind) String() string {
	if k < KindCount {
		return kindNames[k]
	}
	return "invalid"
}

// ParseKind maps a kind name back to its Kind; KindNone if unknown.
func ParseKind(s string) Kind {
	for k, name := range kindNames {
		if name == s {
			return Kind(k)
		}
	}
	return KindNone
}

// Phase says which side of a span an event records.
type Phase uint8

const (
	// PhaseInstant is a point event (no duration).
	PhaseInstant Phase = iota
	// PhaseBegin / PhaseEnd bracket a duration span.
	PhaseBegin
	PhaseEnd
	// PhaseSend / PhaseRecv are message-edge endpoints.
	PhaseSend
	PhaseRecv
)

// String names the phase for timeline rendering.
func (p Phase) String() string {
	switch p {
	case PhaseInstant:
		return "instant"
	case PhaseBegin:
		return "begin"
	case PhaseEnd:
		return "end"
	case PhaseSend:
		return "send"
	case PhaseRecv:
		return "recv"
	}
	return "invalid"
}

// Event is one flight-recorder record. Events are fixed-shape so the
// dump codec is a flat array and the ring never chases variable-length
// payloads on the write path.
type Event struct {
	Seq    uint64 // recorder-local write sequence
	Span   uint64 // span id (rank-salted, unique across the world)
	Parent uint64 // enclosing span id, 0 if root
	Kind   Kind
	Phase  Phase
	Rank   int32  // rank that recorded the event
	Peer   int32  // other rank for send/recv edges, -1 otherwise
	Clock  uint64 // Lamport clock at record time
	Time   int64  // nanoseconds, wall or virtual (never cross-rank compared)
	Arg    uint64 // kind-specific payload: bytes, epoch, line id, ...
}

// Ctx is the causal context piggybacked on wire frames: the edge span
// id and the sender's Lamport clock at send time. The zero Ctx means
// "no context" (e.g. frames from a pre-trace build) and is ignored.
type Ctx struct {
	Span  uint64
	Clock uint64
}

// DefaultRing is the default per-process ring capacity (events).
const DefaultRing = 1 << 14

type clockFunc func() int64

// Recorder is one process's flight recorder. All methods are safe for
// concurrent use; the record path is lock-free.
type Recorder struct {
	seq      atomic.Uint64 // next write position (monotonic)
	lclock   atomic.Uint64 // Lamport clock
	spans    atomic.Uint64 // span id counter
	clock    atomic.Pointer[clockFunc]
	salt     atomic.Uint64 // rank salt folded into span ids
	disabled atomic.Bool   // kill switch; see SetEnabled
	hists    [KindCount]Hist
	slots    []atomic.Pointer[Event]
	mask     uint64
}

// New creates a Recorder with a ring of the given capacity, rounded up
// to a power of two (minimum 64). The clock defaults to wall time.
func New(capacity int) *Recorder {
	n := uint64(64)
	for int(n) < capacity {
		n <<= 1
	}
	r := &Recorder{slots: make([]atomic.Pointer[Event], n), mask: n - 1}
	fn := clockFunc(wallNow)
	r.clock.Store(&fn)
	return r
}

// wallNow is the default timestamp source. Scheduled (virtual) worlds
// replace it via SetClock with the scheduler's logical clock; real
// worlds keep wall time, which is only ever compared within one rank.
func wallNow() int64 {
	return time.Now().UnixNano()
}

// SetClock installs the timestamp source (nanoseconds). Worlds running
// under the virtual scheduler install its logical clock so recorded
// traces are replay-deterministic.
func (r *Recorder) SetClock(now func() int64) {
	if now == nil {
		fn := clockFunc(wallNow)
		r.clock.Store(&fn)
		return
	}
	fn := clockFunc(now)
	r.clock.Store(&fn)
}

// SetSalt folds a world-unique value (the rank, in one-process-per-rank
// worlds) into generated span ids so ids never collide across per-rank
// recorders that each start their counter at zero.
func (r *Recorder) SetSalt(salt uint64) { r.salt.Store(salt) }

// SetEnabled flips the recorder's kill switch. The flight recorder is on
// by default; disabling it reduces every record call to one atomic load,
// which is how the tracing overhead is measured A/B (c3bench -notrace)
// rather than estimated. Disabled recorders also stop ticking the
// Lamport clock and hand out zero contexts, so mixed worlds (some ranks
// tracing, some not) still merge cleanly: zero Ctx means "no context".
func (r *Recorder) SetEnabled(on bool) { r.disabled.Store(!on) }

// Enabled reports whether the recorder is recording.
func (r *Recorder) Enabled() bool { return !r.disabled.Load() }

func (r *Recorder) now() int64 { return (*r.clock.Load())() }

// tick advances the Lamport clock for a local event.
func (r *Recorder) tick() uint64 { return r.lclock.Add(1) }

// merge folds a received Lamport clock: clock = max(local, remote)+1.
func (r *Recorder) merge(remote uint64) uint64 {
	for {
		local := r.lclock.Load()
		next := local + 1
		if remote >= local {
			next = remote + 1
		}
		if r.lclock.CompareAndSwap(local, next) {
			return next
		}
	}
}

// Clock returns the current Lamport clock (diagnostics).
func (r *Recorder) Clock() uint64 { return r.lclock.Load() }

// NewSpan allocates a world-unique span id. The salt (set once per
// process) occupies the high bits; the counter the low 40.
func (r *Recorder) NewSpan() uint64 {
	return (r.salt.Load()+1)<<40 | (r.spans.Add(1) & (1<<40 - 1))
}

// record is the lock-free write path: reserve a slot with one atomic
// add, then publish an immutable event with one pointer store. A reader
// that races a wraparound sees either the old or the new event pointer,
// both internally consistent.
func (r *Recorder) record(ev Event) {
	ev.Seq = r.seq.Add(1) - 1
	r.slots[ev.Seq&r.mask].Store(&ev)
}

// Emit records an instant event.
func (r *Recorder) Emit(rank int32, kind Kind, parent uint64, arg uint64) {
	if r.disabled.Load() {
		return
	}
	r.record(Event{
		Span: r.NewSpan(), Parent: parent, Kind: kind, Phase: PhaseInstant,
		Rank: rank, Peer: -1, Clock: r.tick(), Time: r.now(), Arg: arg,
	})
}

// Span is an open Begin/End bracket returned by Begin.
type Span struct {
	r     *Recorder
	id    uint64
	kind  Kind
	rank  int32
	start int64
}

// Begin opens a span of the given kind and records its begin event. On a
// disabled recorder it returns the zero Span, whose End is a no-op.
func (r *Recorder) Begin(rank int32, kind Kind, parent uint64, arg uint64) Span {
	if r.disabled.Load() {
		return Span{}
	}
	now := r.now()
	id := r.NewSpan()
	r.record(Event{
		Span: id, Parent: parent, Kind: kind, Phase: PhaseBegin,
		Rank: rank, Peer: -1, Clock: r.tick(), Time: now, Arg: arg,
	})
	return Span{r: r, id: id, kind: kind, rank: rank, start: now}
}

// ID returns the span id, for parenting child spans.
func (s Span) ID() uint64 { return s.id }

// End closes the span: records the end event and feeds the span's
// duration into the per-kind latency histogram. A zero Span is a no-op,
// so callers can End unconditionally on early-return paths.
func (s Span) End(arg uint64) {
	if s.r == nil {
		return
	}
	now := s.r.now()
	s.r.record(Event{
		Span: s.id, Kind: s.kind, Phase: PhaseEnd,
		Rank: s.rank, Peer: -1, Clock: s.r.tick(), Time: now, Arg: arg,
	})
	if d := now - s.start; d >= 0 {
		s.r.hists[s.kind].Observe(d)
	}
}

// Observe feeds a duration into the per-kind histogram without
// recording ring events — for layers that already measure durations
// with their own injected clocks.
func (r *Recorder) Observe(kind Kind, d time.Duration) {
	if r.disabled.Load() {
		return
	}
	if kind < KindCount && d >= 0 {
		r.hists[kind].Observe(int64(d))
	}
}

// Histogram returns a snapshot of the latency histogram for kind.
func (r *Recorder) Histogram(kind Kind) HistSnapshot {
	if kind >= KindCount {
		return HistSnapshot{}
	}
	return r.hists[kind].Snapshot()
}

// Send records a message-edge send event and returns the causal context
// to piggyback on the frame. arg is a kind-specific payload (byte count
// or wire kind).
func (r *Recorder) Send(rank, peer int32, arg uint64) Ctx {
	if r.disabled.Load() {
		return Ctx{}
	}
	clock := r.tick()
	id := r.NewSpan()
	r.record(Event{
		Span: id, Kind: KindSend, Phase: PhaseSend,
		Rank: rank, Peer: peer, Clock: clock, Time: r.now(), Arg: arg,
	})
	return Ctx{Span: id, Clock: clock}
}

// Recv records the matching message-edge receive: it merges the
// sender's Lamport clock (guaranteeing recv.Clock > send.Clock) and
// records an event sharing the edge's span id. A zero Ctx (no context
// on the frame) still merges nothing but records the delivery.
func (r *Recorder) Recv(rank, peer int32, ctx Ctx, arg uint64) {
	if r.disabled.Load() {
		return
	}
	clock := r.merge(ctx.Clock)
	r.record(Event{
		Span: ctx.Span, Kind: KindRecv, Phase: PhaseRecv,
		Rank: rank, Peer: peer, Clock: clock, Time: r.now(), Arg: arg,
	})
}

// Len reports how many events have ever been recorded (not the ring
// occupancy).
func (r *Recorder) Len() uint64 { return r.seq.Load() }

// Snapshot collects the ring's current contents in write order. Under
// concurrent writes the snapshot is a consistent set of immutable
// events (each slot load sees one complete event), deduplicated and
// sorted by sequence; at most the ring capacity of trailing events.
func (r *Recorder) Snapshot() []Event {
	head := r.seq.Load()
	n := uint64(len(r.slots))
	lo := uint64(0)
	if head > n {
		lo = head - n
	}
	out := make([]Event, 0, head-lo)
	for s := lo; s < head; s++ {
		if ev := r.slots[s&r.mask].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	// Writers may have lapped the snapshot loop: drop duplicates and
	// restore write order.
	sortEvents(out)
	dedup := out[:0]
	var last uint64
	for i, ev := range out {
		if i > 0 && ev.Seq == last {
			continue
		}
		dedup = append(dedup, ev)
		last = ev.Seq
	}
	return dedup
}

func sortEvents(evs []Event) {
	// Insertion-friendly shell sort keeps this dependency-free and the
	// input is nearly sorted (ring read in slot order).
	n := len(evs)
	for gap := n / 2; gap > 0; gap /= 2 {
		for i := gap; i < n; i++ {
			ev := evs[i]
			j := i
			for ; j >= gap && evs[j-gap].Seq > ev.Seq; j -= gap {
				evs[j] = evs[j-gap]
			}
			evs[j] = ev
		}
	}
}

// std is the process-wide default recorder: the always-on flight
// recorder every layer writes into. In-process multi-rank worlds share
// it (events carry the rank); one-process-per-rank worlds salt it with
// their rank at startup.
var std = New(DefaultRing)

// Default returns the process-wide recorder.
func Default() *Recorder { return std }

// SetClock installs the timestamp source on the default recorder.
func SetClock(now func() int64) { std.SetClock(now) }

// SetSalt salts the default recorder's span ids (one-process-per-rank).
func SetSalt(salt uint64) { std.SetSalt(salt) }

// SetEnabled flips the default recorder's kill switch (overhead A/B).
func SetEnabled(on bool) { std.SetEnabled(on) }
