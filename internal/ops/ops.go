// Package ops is the per-node embedded operations control plane: a tiny
// HTTP server every self-healing node can expose (cmd/c3node -ops-base)
// that answers the questions an operator of a long-running elastic world
// asks — what epoch are you on, what membership do you believe in, what
// was your last committed recovery line — and accepts the three verbs that
// change the world: checkpoint now, drain a member, admit a new one.
//
// The server is deliberately dependency-free (net/http + encoding/json)
// and talks to the hosting node only through the Backend interface, so the
// package has no import of internal/cluster: the node implements Backend,
// ops serves it, and the import arrow points from cluster to ops.
//
// Surface:
//
//	GET  /status      full node status (JSON)
//	GET  /epoch       {"epoch":E}               — agreed recovery epoch
//	GET  /line        {"line":V}                — last locally committed line
//	GET  /membership  {"epoch":E,"members":[…]} — current membership
//	GET  /metrics     Prometheus text exposition (counters, gauges, and the
//	                  flight recorder's per-phase latency histograms)
//	GET  /trace       flight-recorder snapshot (JSON; see trace.go)
//	POST /checkpoint  force a recovery line at the next pragma
//	POST /drain       {"rank":R} or ?rank=R     — graceful membership shrink
//	POST /join        {"slot":S} or ?slot=S     — request a new member (S=-1:
//	                                              launcher picks a spare slot)
//	POST /trace/dump  write the flight recorder's ring to the trace dir
//
// Serve(addr, b, WithDebug()) additionally mounts /debug/pprof/ and the
// runtime/trace start/stop verbs (trace.go).
package ops

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"c3/internal/trace"
)

// Status is the full node status served at /status.
type Status struct {
	// Rank is the hosted slot; World the fixed compute world size (MPI
	// ranks running the application); Capacity the pre-allocated slot
	// count membership can grow into.
	Rank     int `json:"rank"`
	World    int `json:"world"`
	Capacity int `json:"capacity"`
	// Storage marks a storage-only member: a slot >= World that hosts
	// checkpoint shards and votes in agreements but runs no app rank.
	Storage bool `json:"storage"`
	// Attempt is the world launch currently running (-1 before the first).
	Attempt int `json:"attempt"`
	// Epoch is the agreed recovery epoch; MembershipEpoch the epoch that
	// installed the current membership (they coincide whenever the latest
	// agreement changed membership).
	Epoch           uint64 `json:"epoch"`
	MembershipEpoch uint64 `json:"membership_epoch"`
	Members         []int  `json:"members"`
	Dead            []int  `json:"dead"`
	Fenced          bool   `json:"fenced"`
	// GroupSize is the configured checkpoint-group width (0: flat world);
	// Groups the number of groups the current membership partitions into,
	// and Delegates the per-group report delegates (the lowest member of
	// each group) of the two-level topology. All three are omitted in a
	// flat world.
	GroupSize int   `json:"group_size,omitempty"`
	Groups    int   `json:"groups,omitempty"`
	Delegates []int `json:"delegates,omitempty"`
	// Line is the last locally committed recovery line (-1: none yet).
	Line int `json:"line"`
	// Checkpoints counts lines committed by this node's store since boot.
	Checkpoints int64 `json:"checkpoints"`
	// StoredBytes is this node's resident stable-storage footprint: own
	// copies plus replica shards held for peers.
	StoredBytes int64 `json:"stored_bytes"`
}

// Metrics is the counter snapshot rendered at /metrics.
type Metrics struct {
	Rank            int
	Attempt         int
	Commits         int64   // lines committed locally
	CommitSeconds   float64 // total wall time inside commit (latency sum)
	Detections      uint64  // committed epoch transitions observed
	DetectLastSecs  float64 // suspicion->agreement latency of the latest one
	Epoch           uint64
	MembershipEpoch uint64
	Members         int
	Groups          int // checkpoint groups in the current topology (1: flat)
	StoredBytes     int64
	ReplicatedBytes int64
	Reassemblies    int64
	Fenced          bool
}

// Backend is what the hosting node exposes to the control plane. All
// methods must be safe to call from HTTP handler goroutines.
type Backend interface {
	// Status snapshots the node's current view of the world.
	Status() Status
	// Metrics snapshots the node's counters.
	Metrics() Metrics
	// CheckpointNow asks the running attempt to take a recovery line at
	// its next pragma.
	CheckpointNow() error
	// Drain starts the membership agreement that removes rank gracefully.
	Drain(rank int) error
	// JoinHint asks the launcher to spawn a process for the given spare
	// slot (or any spare slot when slot is -1) and admit it.
	JoinHint(slot int) error
}

// Server is one node's running control-plane endpoint.
type Server struct {
	backend Backend
	ln      net.Listener
	srv     *http.Server
	rec     *trace.Recorder
	debug   bool

	rtMu   sync.Mutex
	rtFile *os.File // open runtime/trace capture (nil when none)
}

// Serve starts the control plane on addr ("host:port"; port 0 picks one).
func Serve(addr string, b Backend, opts ...Option) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ops: listen %s: %w", addr, err)
	}
	s := &Server{backend: b, ln: ln, rec: trace.Default()}
	for _, opt := range opts {
		opt(s)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/epoch", s.handleEpoch)
	mux.HandleFunc("/line", s.handleLine)
	mux.HandleFunc("/membership", s.handleMembership)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/drain", s.handleDrain)
	mux.HandleFunc("/join", s.handleJoin)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/trace/dump", s.handleTraceDump)
	if s.debug {
		s.registerDebug(mux)
	}
	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.backend.Status())
}

func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]uint64{"epoch": s.backend.Status().Epoch})
}

func (s *Server) handleLine(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]int{"line": s.backend.Status().Line})
}

func (s *Server) handleMembership(w http.ResponseWriter, r *http.Request) {
	st := s.backend.Status()
	m := map[string]any{"epoch": st.MembershipEpoch, "members": st.Members}
	if st.Groups > 0 {
		m["group_size"] = st.GroupSize
		m["groups"] = st.Groups
		m["delegates"] = st.Delegates
	}
	writeJSON(w, m)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	if err := s.backend.CheckpointNow(); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, map[string]string{"checkpoint": "requested"})
}

// intArg reads an integer request parameter from the query string or a
// JSON object body ({"name": N}), preferring the query.
func intArg(r *http.Request, name string, def int) (int, error) {
	if q := r.URL.Query().Get(name); q != "" {
		return strconv.Atoi(q)
	}
	if r.Body != nil {
		var body map[string]json.Number
		if err := json.NewDecoder(r.Body).Decode(&body); err == nil {
			if v, ok := body[name]; ok {
				n, err := v.Int64()
				return int(n), err
			}
		}
	}
	return def, nil
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	rank, err := intArg(r, "rank", -1)
	if err != nil || rank < 0 {
		http.Error(w, "drain needs a rank (?rank=R or {\"rank\":R})", http.StatusBadRequest)
		return
	}
	if err := s.backend.Drain(rank); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, map[string]any{"drain": rank})
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	slot, err := intArg(r, "slot", -1)
	if err != nil {
		http.Error(w, "bad slot", http.StatusBadRequest)
		return
	}
	if err := s.backend.JoinHint(slot); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, map[string]any{"join": slot})
}

// handleMetrics renders the Prometheus text exposition format (v0.0.4):
// HELP/TYPE headers followed by one sample per line, all labeled with the
// node's rank so a scrape across the world aggregates cleanly.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.backend.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	rank := fmt.Sprintf(`{rank="%d"}`, m.Rank)
	emit := func(name, kind, help string, value string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s%s %s\n", name, help, name, kind, name, rank, value)
	}
	count := func(name, help string, v int64) { emit(name, "counter", help, strconv.FormatInt(v, 10)) }
	gauge := func(name, help string, v float64) {
		emit(name, "gauge", help, strconv.FormatFloat(v, 'g', -1, 64))
	}
	count("c3_commits_total", "recovery lines committed by this node's store", m.Commits)
	emit("c3_commit_seconds_total", "counter", "total wall time spent committing lines (ratio to c3_commits_total = mean commit latency)",
		strconv.FormatFloat(m.CommitSeconds, 'g', -1, 64))
	count("c3_detections_total", "committed epoch transitions observed by the failure detector", int64(m.Detections))
	gauge("c3_detection_latency_seconds", "suspicion-to-agreement latency of the most recent epoch transition", m.DetectLastSecs)
	gauge("c3_epoch", "agreed recovery epoch", float64(m.Epoch))
	gauge("c3_membership_epoch", "epoch that installed the current membership", float64(m.MembershipEpoch))
	gauge("c3_members", "current membership size", float64(m.Members))
	if m.Groups > 1 {
		gauge("c3_groups", "checkpoint groups in the current topology", float64(m.Groups))
	}
	gauge("c3_attempt", "world launch currently running", float64(m.Attempt))
	gauge("c3_stored_bytes", "resident stable-storage footprint (own copies plus peer shards)", float64(m.StoredBytes))
	count("c3_replicated_bytes_total", "fragment bytes shipped to peer nodes", m.ReplicatedBytes)
	count("c3_reassemblies_total", "checkpoints rebuilt from peer fragments over the wire", m.Reassemblies)
	fenced := 0.0
	if m.Fenced {
		fenced = 1
	}
	gauge("c3_fenced", "1 while this node is on the minority side of a partition", fenced)

	// Build identity: the standard info-metric idiom (constant 1, identity
	// in the labels) so dashboards can join build metadata onto any series.
	fmt.Fprintf(&b, "# HELP c3_build_info build metadata of the serving binary (constant 1)\n# TYPE c3_build_info gauge\n")
	fmt.Fprintf(&b, "c3_build_info{rank=\"%d\",go=%q,module=\"c3\"} 1\n", m.Rank, runtime.Version())

	// The flight recorder's per-phase latency histograms. Buckets are the
	// recorder's log2-nanosecond buckets converted to seconds; families are
	// always present (empty histograms expose only HELP/TYPE, _sum and
	// _count) so scrapes see a stable schema from the first sample on.
	for _, hf := range []struct {
		kind trace.Kind
		name string
		help string
	}{
		{trace.KindCommit, "c3_commit_duration_seconds", "stable-store commit latency (Begin/WriteSection/Commit of one recovery line)"},
		{trace.KindSerialize, "c3_serialize_duration_seconds", "application-state capture latency (checkpoint serialization on the app thread)"},
		{trace.KindEncode, "c3_encode_duration_seconds", "fragment codec encode latency (replication sections to shards)"},
		{trace.KindShip, "c3_ship_duration_seconds", "fragment ship latency (replica send loop to ring neighbors)"},
		{trace.KindAck, "c3_ack_duration_seconds", "neighbor acknowledgment wait latency (commit barrier)"},
		{trace.KindRestore, "c3_restore_duration_seconds", "recovery-line restore latency (load, deserialize, resume)"},
		{trace.KindReassemble, "c3_reassemble_duration_seconds", "peer-fragment reassembly latency (rebuild a lost checkpoint over the wire)"},
		{trace.KindAgree, "c3_agree_duration_seconds", "epoch agreement latency (coordinator propose to commit)"},
		{trace.KindEpoch, "c3_detection_seconds", "failure detection latency (first local suspicion to committed epoch)"},
	} {
		writeHistogram(&b, hf.name, hf.help, m.Rank, s.rec.Histogram(hf.kind))
	}
	_, _ = w.Write([]byte(b.String()))
}

// writeHistogram renders one trace histogram as a Prometheus histogram
// family: cumulative _bucket samples up to the last occupied bucket, then
// +Inf, _sum and _count. Trailing empty buckets are elided — le boundaries
// are data, not schema, in the exposition format.
func writeHistogram(b *strings.Builder, name, help string, rank int, h trace.HistSnapshot) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	last := -1
	for i, c := range h.Buckets {
		if c != 0 {
			last = i
		}
	}
	cum := uint64(0)
	for i := 0; i <= last; i++ {
		cum += h.Buckets[i]
		le := float64(trace.BucketUpperNs(i)) / 1e9
		fmt.Fprintf(b, "%s_bucket{rank=\"%d\",le=\"%s\"} %d\n",
			name, rank, strconv.FormatFloat(le, 'g', -1, 64), cum)
	}
	fmt.Fprintf(b, "%s_bucket{rank=\"%d\",le=\"+Inf\"} %d\n", name, rank, h.Count)
	fmt.Fprintf(b, "%s_sum{rank=\"%d\"} %s\n", name, rank,
		strconv.FormatFloat(float64(h.Sum)/1e9, 'g', -1, 64))
	fmt.Fprintf(b, "%s_count{rank=\"%d\"} %d\n", name, rank, h.Count)
}
