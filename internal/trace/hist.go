package trace

import (
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the number of log2 latency buckets. Bucket i counts
// observations in [2^i, 2^(i+1)) nanoseconds; bucket 0 also absorbs
// sub-nanosecond (zero) observations and the last bucket absorbs
// everything from ~9.2 minutes up. Powers of two keep Observe at a
// single bits.Len64 plus one atomic add — cheap enough for commit and
// detection hot paths.
const HistBuckets = 40

// Hist is a lock-free log-bucketed latency histogram. The zero value
// is ready to use.
type Hist struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one duration in nanoseconds.
func (h *Hist) Observe(ns int64) {
	if ns < 0 {
		return
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// HistSnapshot is a point-in-time copy of a Hist.
type HistSnapshot struct {
	Buckets [HistBuckets]uint64
	Count   uint64
	Sum     int64 // nanoseconds
}

// Snapshot copies the histogram. Under concurrent Observe calls the
// copy may be torn by at most the in-flight observations — fine for
// metrics exposition.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// BucketUpperNs returns the exclusive upper bound of bucket i in
// nanoseconds (the last bucket reports the largest representable bound).
func BucketUpperNs(i int) int64 {
	if i < 0 {
		i = 0
	}
	if i >= HistBuckets-1 {
		return int64(1) << 62
	}
	return int64(1) << uint(i+1)
}

// Quantile estimates the q-quantile (0..1) in nanoseconds from the
// bucket counts, attributing each bucket to its upper bound (a
// conservative overestimate, consistent with Prometheus's convention).
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= target {
			return BucketUpperNs(i)
		}
	}
	return BucketUpperNs(HistBuckets - 1)
}

// MeanNs returns the mean observation in nanoseconds.
func (s HistSnapshot) MeanNs() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / int64(s.Count)
}
