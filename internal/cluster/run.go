package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"c3/internal/ckpt"
	"c3/internal/mpi"
	"c3/internal/stable"
	"c3/internal/statesave"
	"c3/internal/transport"
)

// ErrInjectedFailure marks a fail-stop failure produced by the failure
// injector. The runner treats it as a hardware fault: the world is torn
// down and all ranks restart from the last committed recovery line.
var ErrInjectedFailure = errors.New("cluster: injected fail-stop failure")

// FailureSpec schedules one fail-stop failure.
type FailureSpec struct {
	// Rank is the process to kill.
	Rank int
	// AtPragma kills the rank when its pragma-call count reaches this
	// value (1-based), before the pragma executes. Deterministic.
	AtPragma int
	// AfterCheckpoints additionally requires the rank to have started at
	// least this many checkpoints, so failures can be positioned inside
	// logging phases. 0 means no requirement.
	AfterCheckpoints int
	// Correlated lists additional ranks that die at the same instant as
	// Rank — a whole chassis, switch, or checkpoint group failing as one
	// fault domain. Their node-local checkpoint state is wiped and they
	// drop off the interconnect together with the primary victim (the
	// fault the cross-group parity shard exists to survive). In-process
	// runtime only; the multi-process runner's real-signal path ignores it.
	Correlated []int
}

// Config configures a run.
type Config struct {
	// Ranks is the world size.
	Ranks int
	// App is the application main, executed once per rank per attempt.
	App func(Env) error
	// Args is handed to the application via Env.Args.
	Args any
	// Store is the stable storage shared across restart attempts.
	// Defaults to an in-memory store.
	Store stable.Store
	// Policy controls pragma firing.
	Policy ckpt.Policy
	// Direct disables the protocol layer entirely (the "Original"
	// configuration in the paper's overhead tables).
	Direct bool
	// WideHeaders selects the full-epoch piggyback codec (ablation).
	WideHeaders bool
	// LogAllIntraSignatures logs every intra-epoch signature during
	// non-deterministic logging (the Figure 4 pseudo-code variant).
	LogAllIntraSignatures bool
	// FullCheckpointEvery enables incremental checkpointing: full
	// application-state snapshots every k-th line, content-changed sections
	// only in between. 0 or 1 means every checkpoint is full.
	FullCheckpointEvery int
	// Failures schedules fail-stop failures: Failures[i] fires during
	// attempt i. Attempts beyond the list run failure-free.
	Failures []FailureSpec
	// Partitions schedules network-partition episodes under the virtual
	// schedule engine: each spec fires in its Attempt at a seeded trigger
	// step, severing GroupA from the rest, and (optionally) heals after
	// HealAfterSteps. Requires Seed or Replay; ignored under real
	// scheduling.
	Partitions []PartitionSpec
	// AttemptFailures schedules multiple fail-stop failures per attempt:
	// every spec in AttemptFailures[i] can fire during attempt i, so two
	// ranks can die near-simultaneously in one world launch (whether both
	// actually fire depends on the schedule — the first death tears the
	// world down). When non-nil it takes precedence over Failures.
	AttemptFailures [][]FailureSpec
	// ForceRestore launches even the first attempt in restart mode, so a
	// run can resume from checkpoints a previous Run left in Store. The
	// restart-cost experiments (paper Tables 6 and 7) use this.
	ForceRestore bool
	// MaxAttempts bounds restart cycles; default len(Failures)+1.
	MaxAttempts int
	// TransportOptions configures the interconnect (latency models).
	TransportOptions []transport.Option
	// Seed, when nonzero, runs the world under the deterministic virtual
	// schedule engine (transport.Scheduler): rank interleaving, message
	// delivery order, pragma timing, failure injection points, and async
	// commit durability all become a pure function of the seed. Each
	// restart attempt runs under a sub-seed derived from (Seed, attempt).
	// Latency models are ignored in this mode; time is logical.
	Seed int64
	// Replay, when non-nil, re-executes a recorded schedule instead of
	// drawing decisions from Seed. Attempts beyond the recording fall back
	// to sub-seeds of Replay.Seed, so edited (shrunk) schedules still
	// yield a total, deterministic run.
	Replay *Schedule
	// failAction, when non-nil, replaces the in-process fail-stop injection
	// when a scheduled failure fires. The multi-process node runtime uses it
	// to announce itself as the victim and await a real SIGKILL.
	failAction func() error
	// onLayer, when non-nil, receives the protocol layer right after
	// bring-up. The multi-process node runtime uses it to expose the
	// running attempt's layer to the ops control plane (POST /checkpoint).
	onLayer func(*ckpt.Layer)
}

// Schedule is a recorded virtual-schedule execution: the decision trace of
// every restart attempt. Feeding it back through Config.Replay re-executes
// the run; internal/sched shrinks failing schedules to minimal form.
type Schedule struct {
	Seed     int64
	Attempts []*transport.Trace
}

// Clone returns a deep copy.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{Seed: s.Seed}
	for _, t := range s.Attempts {
		c.Attempts = append(c.Attempts, t.Clone())
	}
	return c
}

// attemptSeed derives the virtual scheduler's sub-seed for one restart
// attempt (splitmix64 over the run seed and attempt index).
func attemptSeed(seed int64, attempt int) int64 {
	z := uint64(seed) + uint64(attempt+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// RankStats captures one rank's protocol counters after the final attempt.
type RankStats struct {
	Rank  int
	Stats ckpt.Stats
}

// Result reports a completed run.
type Result struct {
	// Attempts is the number of world launches (1 = no failures).
	Attempts int
	// Elapsed is the total wall time across attempts.
	Elapsed time.Duration
	// LastAttemptElapsed is the wall time of the successful attempt.
	LastAttemptElapsed time.Duration
	// Stats holds per-rank protocol counters from the successful attempt
	// (empty in Direct mode).
	Stats []RankStats
	// Transport is the interconnect's counters from the successful attempt.
	Transport transport.Stats
	// Schedule is the recorded decision trace of every attempt when the
	// run used the virtual schedule engine (Config.Seed or Config.Replay);
	// nil under real scheduling.
	Schedule *Schedule
}

type rankOutcome struct {
	rank int
	err  error
}

// Run launches the world, runs the application on every rank, and — when an
// injected failure brings the world down — restarts all ranks from the last
// committed recovery line, repeating until the application completes.
func Run(cfg Config) (*Result, error) {
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("cluster: ranks must be positive")
	}
	if cfg.App == nil {
		return nil, fmt.Errorf("cluster: no application")
	}
	store := cfg.Store
	if store == nil {
		store = stable.NewMemStore()
	}
	maxAttempts := cfg.MaxAttempts
	if maxAttempts == 0 {
		if cfg.AttemptFailures != nil {
			maxAttempts = len(cfg.AttemptFailures) + 1
		} else {
			maxAttempts = len(cfg.Failures) + 1
		}
	}
	res := &Result{}
	virtual := cfg.Seed != 0 || cfg.Replay != nil
	if virtual {
		seed := cfg.Seed
		if cfg.Replay != nil {
			seed = cfg.Replay.Seed
		}
		res.Schedule = &Schedule{Seed: seed}
	}
	start := time.Now()
	for attempt := 0; attempt < maxAttempts; attempt++ {
		var failer *failureInjector
		if specs := cfg.attemptSpecs(attempt); len(specs) > 0 {
			failer = newFailureInjector(specs)
		}
		var sch *transport.Scheduler
		if virtual {
			if cfg.Replay != nil && attempt < len(cfg.Replay.Attempts) {
				sch = transport.NewReplayScheduler(cfg.Ranks, cfg.Replay.Attempts[attempt])
			} else {
				sch = transport.NewScheduler(cfg.Ranks, attemptSeed(res.Schedule.Seed, attempt))
			}
		}
		attemptStart := time.Now()
		outcome, stats, tstats, err := runAttempt(cfg, store, attempt > 0 || cfg.ForceRestore, failer, sch, attempt)
		if sch != nil {
			res.Schedule.Attempts = append(res.Schedule.Attempts, sch.Trace())
		}
		res.Attempts++
		if err != nil {
			return res, err
		}
		injected := false
		var firstErr error
		for _, o := range outcome {
			if errors.Is(o.err, ErrInjectedFailure) {
				injected = true
			} else if o.err != nil && !errors.Is(o.err, mpi.ErrDown) && firstErr == nil {
				firstErr = fmt.Errorf("rank %d: %w", o.rank, o.err)
			}
		}
		if firstErr != nil {
			return res, firstErr
		}
		if injected {
			continue // restart from the last committed line
		}
		// Ranks that returned ErrDown without an injected failure indicate
		// a real breakdown (should not happen).
		for _, o := range outcome {
			if o.err != nil {
				return res, fmt.Errorf("rank %d failed without injection: %w", o.rank, o.err)
			}
		}
		res.Elapsed = time.Since(start)
		res.LastAttemptElapsed = time.Since(attemptStart)
		res.Stats = stats
		res.Transport = tstats
		return res, nil
	}
	return res, fmt.Errorf("cluster: no successful attempt in %d tries", maxAttempts)
}

// attemptPartitionEvents expands the partition specs scheduled for one
// attempt into the scheduler's armed event list.
func (cfg *Config) attemptPartitionEvents(attempt int) []transport.SchedPartitionEvent {
	var events []transport.SchedPartitionEvent
	for _, spec := range cfg.Partitions {
		if spec.Attempt == attempt {
			events = append(events, spec.Events(cfg.Ranks)...)
		}
	}
	return events
}

func runAttempt(cfg Config, store stable.Store, restart bool, failer *failureInjector, sch *transport.Scheduler, attempt int) ([]rankOutcome, []RankStats, transport.Stats, error) {
	topts := cfg.TransportOptions
	if sch != nil {
		if events := cfg.attemptPartitionEvents(attempt); len(events) > 0 {
			topts = append(append([]transport.Option(nil), topts...), transport.WithPartitionPlan(events))
		}
	}
	wopts := []mpi.WorldOption{mpi.WithTransportOptions(topts...)}
	if sch != nil {
		wopts = append(wopts, mpi.WithScheduler(sch))
	}
	world := mpi.NewWorld(cfg.Ranks, wopts...)
	outcomes := make([]rankOutcome, cfg.Ranks)
	stats := make([]RankStats, cfg.Ranks)

	var wg sync.WaitGroup
	for r := 0; r < cfg.Ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if sch != nil {
				sch.Start(r)
				// Exit runs after the Shutdown below, so the teardown is
				// part of the schedule too.
				defer sch.Exit(r)
			}
			err, st := runRank(cfg, world, store, r, restart, failer)
			outcomes[r] = rankOutcome{rank: r, err: err}
			stats[r] = RankStats{Rank: r, Stats: st}
			if err != nil {
				// Fail-stop: bring the whole world down so blocked ranks
				// unblock, as a job scheduler would on node failure.
				world.Shutdown()
			}
		}(r)
	}
	wg.Wait()
	tstats := world.Network().Stats()
	world.Shutdown()
	return outcomes, stats, tstats, nil
}

func runRank(cfg Config, world *mpi.World, store stable.Store, rank int, restart bool, failer *failureInjector) (error, ckpt.Stats) {
	p := world.Proc(rank)
	if cfg.Direct {
		env := &directEnv{
			comm:  newDirectComm(p.CommWorld()),
			state: statesave.NewRegistry(),
			heap:  statesave.NewHeap(),
			args:  cfg.Args,
		}
		env.state.Register(env.heap.Section())
		return cfg.App(env), ckpt.Stats{}
	}
	heap := statesave.NewHeap()
	lcfg := ckpt.Config{
		Store:                 store,
		Heap:                  heap,
		Policy:                cfg.Policy,
		WideHeaders:           cfg.WideHeaders,
		LogAllIntraSignatures: cfg.LogAllIntraSignatures,
		FullCheckpointEvery:   cfg.FullCheckpointEvery,
	}
	if s := world.Scheduler(); s != nil {
		// Virtual schedule engine: logical time and an inline-driven commit
		// pipeline keep the protocol a pure function of the schedule.
		lcfg.Clock = s.Now
		lcfg.Deterministic = true
	}
	layer, err := ckpt.New(p, lcfg)
	if err != nil {
		return err, ckpt.Stats{}
	}
	if cfg.onLayer != nil {
		cfg.onLayer(layer)
	}
	env := &ckptEnv{
		layer:      layer,
		world:      layer.World(),
		heap:       heap,
		args:       cfg.Args,
		restart:    restart,
		failer:     failer,
		failAction: cfg.failAction,
		rank:       rank,
		proc:       p,
		mpiW:       world,
		store:      store,
	}
	err = cfg.App(env)
	// End-of-attempt pipeline teardown: a rank that fail-stopped discards
	// its in-flight async commits (the failure already aborted them);
	// every other rank drains so its final lines are durable before the
	// store is read again — even when the attempt ended with ErrDown
	// because some other rank was killed, since stable storage outlives
	// the interconnect.
	closeErr := layer.Close(errors.Is(err, ErrInjectedFailure))
	if err == nil {
		err = closeErr
	}
	return err, layer.Stats()
}

// attemptSpecs returns the failure specs scheduled for one attempt.
func (cfg *Config) attemptSpecs(attempt int) []FailureSpec {
	if cfg.AttemptFailures != nil {
		if attempt < len(cfg.AttemptFailures) {
			return cfg.AttemptFailures[attempt]
		}
		return nil
	}
	if attempt < len(cfg.Failures) {
		return []FailureSpec{cfg.Failures[attempt]}
	}
	return nil
}

// failureInjector fires the scheduled fail-stop failures of one attempt.
// Each victim rank counts its own pragmas; several ranks can be scheduled
// in the same attempt (near-simultaneous failures).
type failureInjector struct {
	mu    sync.Mutex
	specs map[int][]*failureState // victim rank -> its scheduled failures
}

type failureState struct {
	spec    FailureSpec
	pragmas int
	fired   bool
}

func newFailureInjector(specs []FailureSpec) *failureInjector {
	f := &failureInjector{specs: make(map[int][]*failureState)}
	for _, s := range specs {
		f.specs[s.Rank] = append(f.specs[s.Rank], &failureState{spec: s})
	}
	return f
}

// shouldFire is called by every rank at each pragma; it reports whether a
// failure scheduled for that rank fires here, and which other ranks die
// with it (FailureSpec.Correlated).
func (f *failureInjector) shouldFire(rank int, epoch uint64) (bool, []int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	states := f.specs[rank]
	if len(states) == 0 {
		return false, nil
	}
	for _, st := range states {
		st.pragmas++
	}
	for _, st := range states {
		if st.fired || st.pragmas < st.spec.AtPragma {
			continue
		}
		if uint64(st.spec.AfterCheckpoints) > epoch {
			continue
		}
		st.fired = true
		return true, st.spec.Correlated
	}
	return false, nil
}

// ckptEnv is the Env implementation backed by the protocol layer.
type ckptEnv struct {
	layer      *ckpt.Layer
	world      *ckpt.WComm
	heap       *statesave.Heap
	args       any
	restart    bool
	failer     *failureInjector
	failAction func() error
	rank       int
	proc       *mpi.Proc
	mpiW       *mpi.World
	store      stable.Store
}

// injectFailure models the fail-stop failure of this rank's node, in
// hardware order: the async commit pipeline stops mid-write (an
// uncommitted line is lost, never half-visible), node-local checkpoint
// memory is wiped for stores that live on the node, and the rank drops off
// the interconnect.
func (e *ckptEnv) injectFailure(correlated []int) error {
	e.layer.AbortCommits()
	if nf, ok := e.store.(stable.NodeFailer); ok {
		nf.FailNode(e.rank)
		for _, r := range correlated {
			nf.FailNode(r)
		}
	}
	// Correlated victims drop off the interconnect at the same instant —
	// their goroutines unwind on the next MPI operation, like hardware
	// taking a whole fault domain down at once.
	for _, r := range correlated {
		e.mpiW.Kill(r)
	}
	e.mpiW.Kill(e.rank)
	return ErrInjectedFailure
}

func (e *ckptEnv) Rank() int                  { return e.rank }
func (e *ckptEnv) Size() int                  { return e.proc.Size() }
func (e *ckptEnv) World() Comm                { return e.world }
func (e *ckptEnv) State() *statesave.Registry { return e.layer.State() }
func (e *ckptEnv) Heap() *statesave.Heap      { return e.heap }
func (e *ckptEnv) Args() any                  { return e.args }

func (e *ckptEnv) Restore() (bool, error) {
	if !e.restart {
		return false, nil
	}
	return e.layer.Restore()
}

// fireFailure runs the configured failure action: the in-process fail-stop
// injection by default, or failAction (await a real SIGKILL) in the
// multi-process runtime.
func (e *ckptEnv) fireFailure(correlated []int) error {
	if e.failAction != nil {
		return e.failAction()
	}
	return e.injectFailure(correlated)
}

func (e *ckptEnv) Checkpoint() error {
	if e.failer != nil {
		if fire, corr := e.failer.shouldFire(e.rank, e.layer.Epoch()); fire {
			return e.fireFailure(corr)
		}
	}
	return e.layer.Checkpoint(false)
}

func (e *ckptEnv) CheckpointNow() error {
	if e.failer != nil {
		if fire, corr := e.failer.shouldFire(e.rank, e.layer.Epoch()); fire {
			return e.fireFailure(corr)
		}
	}
	return e.layer.Checkpoint(true)
}

// Layer exposes the protocol layer for tests and tooling.
func (e *ckptEnv) Layer() *ckpt.Layer { return e.layer }

// LayerOf extracts the protocol layer from a checkpointed Env; it returns
// nil for direct environments.
func LayerOf(env Env) *ckpt.Layer {
	if ce, ok := env.(*ckptEnv); ok {
		return ce.layer
	}
	return nil
}
