package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// PrimKind enumerates primitive datatypes.
type PrimKind uint8

// Primitive kinds.
const (
	KByte PrimKind = iota
	KInt64
	KFloat64
	KComplex128
)

// Size returns the packed size in bytes of the primitive.
func (k PrimKind) Size() int {
	switch k {
	case KByte:
		return 1
	case KInt64, KFloat64:
		return 8
	case KComplex128:
		return 16
	default:
		panic(fmt.Sprintf("mpi: unknown primitive kind %d", k))
	}
}

func (k PrimKind) String() string {
	switch k {
	case KByte:
		return "byte"
	case KInt64:
		return "int64"
	case KFloat64:
		return "float64"
	case KComplex128:
		return "complex128"
	default:
		return fmt.Sprintf("prim(%d)", uint8(k))
	}
}

type typeKind uint8

const (
	tPrim typeKind = iota
	tContiguous
	tVector
	tIndexed
	tStruct
)

// Datatype describes the layout of a message element over a byte buffer,
// mirroring MPI derived datatypes. Datatypes form a hierarchy: constructors
// take base types, and the checkpoint layer records this hierarchy in its
// handle table so types can be reconstructed on recovery (paper Section 4.2).
//
// Size is the number of packed bytes one element contributes to a message;
// Extent is the number of buffer bytes one element spans (stride between
// consecutive elements of this type in a buffer).
type Datatype struct {
	kind   typeKind
	prim   PrimKind
	base   *Datatype
	count  int // contiguous, vector
	blkLen int // vector
	stride int // vector, in elements of base

	blockLens []int // indexed (elements of base), struct (elements of child)
	displs    []int // indexed: element displs; struct: byte displs
	children  []*Datatype

	size   int
	extent int
}

// Predefined primitive datatypes.
var (
	TypeByte       = &Datatype{kind: tPrim, prim: KByte, size: 1, extent: 1}
	TypeInt64      = &Datatype{kind: tPrim, prim: KInt64, size: 8, extent: 8}
	TypeFloat64    = &Datatype{kind: tPrim, prim: KFloat64, size: 8, extent: 8}
	TypeComplex128 = &Datatype{kind: tPrim, prim: KComplex128, size: 16, extent: 16}
)

// Size returns the packed byte size of one element.
func (d *Datatype) Size() int { return d.size }

// Extent returns the buffer span in bytes of one element.
func (d *Datatype) Extent() int { return d.extent }

// IsPrimitive reports whether the type is one of the predefined primitives,
// and returns its kind.
func (d *Datatype) IsPrimitive() (PrimKind, bool) {
	if d.kind == tPrim {
		return d.prim, true
	}
	return 0, false
}

// Contiguous is equivalent to count consecutive elements of base.
func Contiguous(count int, base *Datatype) (*Datatype, error) {
	if count < 0 || base == nil {
		return nil, fmt.Errorf("%w: contiguous(count=%d)", ErrInvalid, count)
	}
	return &Datatype{
		kind:   tContiguous,
		base:   base,
		count:  count,
		size:   count * base.size,
		extent: count * base.extent,
	}, nil
}

// Vector is count blocks of blockLen base elements, with consecutive blocks
// starting stride base-elements apart.
func Vector(count, blockLen, stride int, base *Datatype) (*Datatype, error) {
	if count < 0 || blockLen < 0 || base == nil {
		return nil, fmt.Errorf("%w: vector(count=%d, blockLen=%d)", ErrInvalid, count, blockLen)
	}
	if count > 0 && stride < blockLen {
		return nil, fmt.Errorf("%w: vector stride %d < blockLen %d would overlap", ErrInvalid, stride, blockLen)
	}
	ext := 0
	if count > 0 {
		ext = ((count-1)*stride + blockLen) * base.extent
	}
	return &Datatype{
		kind:   tVector,
		base:   base,
		count:  count,
		blkLen: blockLen,
		stride: stride,
		size:   count * blockLen * base.size,
		extent: ext,
	}, nil
}

// Indexed is blocks of base elements at arbitrary element displacements.
func Indexed(blockLens, displs []int, base *Datatype) (*Datatype, error) {
	if len(blockLens) != len(displs) || base == nil {
		return nil, fmt.Errorf("%w: indexed lengths mismatch (%d vs %d)", ErrInvalid, len(blockLens), len(displs))
	}
	size, ext := 0, 0
	for i := range blockLens {
		if blockLens[i] < 0 || displs[i] < 0 {
			return nil, fmt.Errorf("%w: indexed negative block/displacement", ErrInvalid)
		}
		size += blockLens[i] * base.size
		if end := (displs[i] + blockLens[i]) * base.extent; end > ext {
			ext = end
		}
	}
	return &Datatype{
		kind:      tIndexed,
		base:      base,
		blockLens: append([]int(nil), blockLens...),
		displs:    append([]int(nil), displs...),
		size:      size,
		extent:    ext,
	}, nil
}

// Struct combines blocks of differing child types at byte displacements.
func Struct(blockLens, byteDispls []int, types []*Datatype) (*Datatype, error) {
	if len(blockLens) != len(byteDispls) || len(blockLens) != len(types) {
		return nil, fmt.Errorf("%w: struct lengths mismatch", ErrInvalid)
	}
	size, ext := 0, 0
	for i := range blockLens {
		if blockLens[i] < 0 || byteDispls[i] < 0 || types[i] == nil {
			return nil, fmt.Errorf("%w: struct negative block/displacement or nil type", ErrInvalid)
		}
		size += blockLens[i] * types[i].size
		if end := byteDispls[i] + blockLens[i]*types[i].extent; end > ext {
			ext = end
		}
	}
	return &Datatype{
		kind:      tStruct,
		blockLens: append([]int(nil), blockLens...),
		displs:    append([]int(nil), byteDispls...),
		children:  append([]*Datatype(nil), types...),
		size:      size,
		extent:    ext,
	}, nil
}

// Pack serializes count elements laid out per d in src into a contiguous
// packed buffer and returns it. The traversal is the recursive walk the
// paper describes for logging non-contiguous message payloads.
func (d *Datatype) Pack(src []byte, count int) ([]byte, error) {
	if count < 0 {
		return nil, fmt.Errorf("%w: pack count %d", ErrInvalid, count)
	}
	need := d.bufferSpan(count)
	if need > len(src) {
		return nil, fmt.Errorf("%w: pack needs %d bytes, buffer has %d", ErrInvalid, need, len(src))
	}
	dst := make([]byte, 0, count*d.size)
	for i := 0; i < count; i++ {
		dst = d.packOne(dst, src[i*d.extent:])
	}
	return dst, nil
}

// bufferSpan returns the bytes of buffer that count elements span.
func (d *Datatype) bufferSpan(count int) int {
	if count == 0 {
		return 0
	}
	return (count-1)*d.extent + d.extent // tight span equals count*extent here
}

func (d *Datatype) packOne(dst []byte, src []byte) []byte {
	switch d.kind {
	case tPrim:
		return append(dst, src[:d.size]...)
	case tContiguous:
		for i := 0; i < d.count; i++ {
			dst = d.base.packOne(dst, src[i*d.base.extent:])
		}
		return dst
	case tVector:
		for b := 0; b < d.count; b++ {
			off := b * d.stride * d.base.extent
			for e := 0; e < d.blkLen; e++ {
				dst = d.base.packOne(dst, src[off+e*d.base.extent:])
			}
		}
		return dst
	case tIndexed:
		for i := range d.blockLens {
			off := d.displs[i] * d.base.extent
			for e := 0; e < d.blockLens[i]; e++ {
				dst = d.base.packOne(dst, src[off+e*d.base.extent:])
			}
		}
		return dst
	case tStruct:
		for i := range d.children {
			ch := d.children[i]
			off := d.displs[i]
			for e := 0; e < d.blockLens[i]; e++ {
				dst = ch.packOne(dst, src[off+e*ch.extent:])
			}
		}
		return dst
	default:
		panic("mpi: unknown datatype kind")
	}
}

// Unpack deserializes count elements from packed data into dst laid out per
// d. It returns the number of packed bytes consumed.
func (d *Datatype) Unpack(packed []byte, dst []byte, count int) (int, error) {
	if count < 0 {
		return 0, fmt.Errorf("%w: unpack count %d", ErrInvalid, count)
	}
	if count*d.size > len(packed) {
		return 0, fmt.Errorf("%w: unpack needs %d packed bytes, have %d", ErrTruncate, count*d.size, len(packed))
	}
	if d.bufferSpan(count) > len(dst) {
		return 0, fmt.Errorf("%w: unpack needs %d buffer bytes, have %d", ErrInvalid, d.bufferSpan(count), len(dst))
	}
	pos := 0
	for i := 0; i < count; i++ {
		pos = d.unpackOne(packed, pos, dst[i*d.extent:])
	}
	return pos, nil
}

func (d *Datatype) unpackOne(packed []byte, pos int, dst []byte) int {
	switch d.kind {
	case tPrim:
		copy(dst[:d.size], packed[pos:pos+d.size])
		return pos + d.size
	case tContiguous:
		for i := 0; i < d.count; i++ {
			pos = d.base.unpackOne(packed, pos, dst[i*d.base.extent:])
		}
		return pos
	case tVector:
		for b := 0; b < d.count; b++ {
			off := b * d.stride * d.base.extent
			for e := 0; e < d.blkLen; e++ {
				pos = d.base.unpackOne(packed, pos, dst[off+e*d.base.extent:])
			}
		}
		return pos
	case tIndexed:
		for i := range d.blockLens {
			off := d.displs[i] * d.base.extent
			for e := 0; e < d.blockLens[i]; e++ {
				pos = d.base.unpackOne(packed, pos, dst[off+e*d.base.extent:])
			}
		}
		return pos
	case tStruct:
		for i := range d.children {
			ch := d.children[i]
			off := d.displs[i]
			for e := 0; e < d.blockLens[i]; e++ {
				pos = ch.unpackOne(packed, pos, dst[off+e*ch.extent:])
			}
		}
		return pos
	default:
		panic("mpi: unknown datatype kind")
	}
}

// Conversion helpers between typed slices and the byte buffers the library
// exchanges. MPI applications pass typed buffers; here the packing boundary
// is explicit. All encodings are little-endian IEEE-754.

// PutFloat64s encodes vs into dst, which must hold 8*len(vs) bytes.
func PutFloat64s(dst []byte, vs []float64) {
	for i, v := range vs {
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(v))
	}
}

// GetFloat64s decodes len(dst) float64s from src.
func GetFloat64s(dst []float64, src []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
	}
}

// Float64Bytes returns a fresh byte encoding of vs.
func Float64Bytes(vs []float64) []byte {
	b := make([]byte, 8*len(vs))
	PutFloat64s(b, vs)
	return b
}

// BytesFloat64s decodes all float64s in b.
func BytesFloat64s(b []byte) []float64 {
	vs := make([]float64, len(b)/8)
	GetFloat64s(vs, b)
	return vs
}

// PutInt64s encodes vs into dst, which must hold 8*len(vs) bytes.
func PutInt64s(dst []byte, vs []int64) {
	for i, v := range vs {
		binary.LittleEndian.PutUint64(dst[i*8:], uint64(v))
	}
}

// GetInt64s decodes len(dst) int64s from src.
func GetInt64s(dst []int64, src []byte) {
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(src[i*8:]))
	}
}

// Int64Bytes returns a fresh byte encoding of vs.
func Int64Bytes(vs []int64) []byte {
	b := make([]byte, 8*len(vs))
	PutInt64s(b, vs)
	return b
}

// BytesInt64s decodes all int64s in b.
func BytesInt64s(b []byte) []int64 {
	vs := make([]int64, len(b)/8)
	GetInt64s(vs, b)
	return vs
}

// PutComplex128s encodes vs into dst, which must hold 16*len(vs) bytes.
func PutComplex128s(dst []byte, vs []complex128) {
	for i, v := range vs {
		binary.LittleEndian.PutUint64(dst[i*16:], math.Float64bits(real(v)))
		binary.LittleEndian.PutUint64(dst[i*16+8:], math.Float64bits(imag(v)))
	}
}

// GetComplex128s decodes len(dst) complex128s from src.
func GetComplex128s(dst []complex128, src []byte) {
	for i := range dst {
		re := math.Float64frombits(binary.LittleEndian.Uint64(src[i*16:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(src[i*16+8:]))
		dst[i] = complex(re, im)
	}
}
