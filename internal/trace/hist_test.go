package trace

import (
	"sync"
	"testing"
)

func TestHistBucketing(t *testing.T) {
	var h Hist
	// One observation per decade of interest: 1ns, 1µs-ish, 1ms-ish, 1s-ish.
	for _, ns := range []int64{1, 1024, 1 << 20, 1 << 30} {
		h.Observe(ns)
	}
	h.Observe(-5) // negative durations are dropped, not recorded
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4 (negative observation must be dropped)", s.Count)
	}
	if want := int64(1 + 1024 + 1<<20 + 1<<30); s.Sum != want {
		t.Fatalf("sum = %d, want %d", s.Sum, want)
	}
	for _, tc := range []struct {
		bucket int
		want   uint64
	}{
		{0, 1},  // [1, 2)
		{10, 1}, // [1024, 2048)
		{20, 1}, // [1Mi, 2Mi)
		{30, 1}, // [1Gi, 2Gi)
	} {
		if got := s.Buckets[tc.bucket]; got != tc.want {
			t.Errorf("bucket %d = %d, want %d", tc.bucket, got, tc.want)
		}
	}

	// Zero and huge observations clamp to the first and last bucket.
	var edge Hist
	edge.Observe(0)
	edge.Observe(int64(1) << 62)
	es := edge.Snapshot()
	if es.Buckets[0] != 1 || es.Buckets[HistBuckets-1] != 1 {
		t.Fatalf("edge buckets = first %d last %d, want 1/1", es.Buckets[0], es.Buckets[HistBuckets-1])
	}
}

func TestHistQuantileAndMean(t *testing.T) {
	var h Hist
	for i := 0; i < 99; i++ {
		h.Observe(1000) // bucket 9: [512, 1024), upper bound 1024
	}
	h.Observe(1 << 25) // one outlier
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 1024 {
		t.Fatalf("p50 = %d, want the 1024 bucket upper bound", q)
	}
	if q := s.Quantile(0.99); q != 1024 {
		t.Fatalf("p99 = %d, want 1024 (99 of 100 observations below)", q)
	}
	if q := s.Quantile(1); q != 1<<26 {
		t.Fatalf("p100 = %d, want the outlier's bucket upper bound %d", q, 1<<26)
	}
	wantMean := (int64(99*1000) + 1<<25) / 100
	if m := s.MeanNs(); m != wantMean {
		t.Fatalf("mean = %d, want %d", m, wantMean)
	}

	var empty HistSnapshot
	if empty.Quantile(0.99) != 0 || empty.MeanNs() != 0 {
		t.Fatal("empty histogram must report zero quantiles and mean")
	}
}

func TestBucketUpperMonotonic(t *testing.T) {
	prev := int64(0)
	for i := 0; i < HistBuckets; i++ {
		u := BucketUpperNs(i)
		if u <= prev {
			t.Fatalf("bucket %d upper %d not above previous %d", i, u, prev)
		}
		prev = u
	}
}

// TestHistConcurrent exercises the atomic counters under -race.
func TestHistConcurrent(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}
