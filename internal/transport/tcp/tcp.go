// Package tcp is the wire-level transport backend: a transport.Interconnect
// whose ranks are separate OS processes connected by TCP sockets.
//
// Each process owns one Mesh hosting exactly one local rank. The mesh
// listens on its own address, dials peers lazily on first send, and frames
// every message with a length prefix (internal/wire encoding). Delivery
// keeps the per-(source, destination) FIFO guarantee the MPI layer needs,
// because each ordered pair maps to one TCP connection and frames are
// written atomically under a per-connection lock.
//
// Failure model: a peer that dies takes its sockets with it. Sends toward
// it fail, are counted as dropped, and do not error the sender — exactly
// the in-memory Network's semantics for messages addressed to a killed
// endpoint. When the peer is re-executed and listens again on the same
// address, the next send re-dials, so long-lived meshes (the replicated
// stable store's) survive rank restarts. Short-lived meshes (one per MPI
// attempt) carry a generation number in every frame; frames from another
// generation are discarded, so a stale in-flight message from a dead
// attempt can never leak into its successor. Connection establishment
// performs a generation handshake so a dialer that reaches the previous
// generation's still-bound listener is refused and retries, rather than
// having its first frames silently discarded mid-transition.
package tcp

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"c3/internal/trace"
	"c3/internal/transport"
	"c3/internal/wire"
)

// maxFrame bounds one frame body, so a corrupt or hostile length prefix
// becomes an error instead of an enormous allocation.
const maxFrame = 1 << 28

// frameHeaderLen is gen(8) + from(4) + to(4) + class(1) + kind(1) +
// trace span(8) + trace lamport clock(8). The last 16 bytes are the
// causal tracing context (trace.Ctx): the receive path merges the
// sender's Lamport clock and records a recv event sharing the edge's
// span id, which is what lets cmd/c3trace stitch per-process flight
// recordings into one cross-rank happens-before timeline. All ranks of
// a world run the same build, so the header change needs no
// negotiation (cross-generation frames are already filtered).
const frameHeaderLen = 34

// Connection-establishment handshake. Every attempt's mesh binds the same
// per-rank address and relies on the generation tag to keep attempts apart,
// so during an attempt transition a dialer can reach a listener that is
// still serving the PREVIOUS generation. Without a handshake the first
// frames written there are silently discarded by the receiver's generation
// filter — fatal for fire-and-forget collective traffic (a lost bcast frame
// hangs the new attempt). The dialer therefore announces its generation
// up front and the acceptor acks only on an exact match; a refused dial is
// retried within the dial window until the peer's same-generation listener
// takes over the address.
const (
	hsMagic  = 0x43334853 // "C3HS"
	hsAccept = 0x06       // acceptor runs the same generation
	hsRefuse = 0x15       // generation mismatch: retry after the peer rebinds
	// hsTimeout bounds each side's wait for the other's handshake bytes so
	// a wedged or foreign peer cannot pin the connection forever.
	hsTimeout = 2 * time.Second
)

// Option configures a Mesh.
type Option func(*Mesh)

// WithGeneration tags every frame with gen; incoming frames from another
// generation are dropped. Per-attempt meshes use the attempt number so a
// restarted world never observes its predecessor's in-flight traffic.
func WithGeneration(gen uint64) Option {
	return func(m *Mesh) { m.gen = gen }
}

// WithDialWindow sets how long the first connection attempt to a peer keeps
// retrying (covers start-up ordering: a peer's listener may not be up yet).
// Re-dials after a connection loss use a much shorter window, so sends to a
// dead rank drop quickly instead of stalling the sender.
func WithDialWindow(d time.Duration) Option {
	return func(m *Mesh) { m.dialWindow = d }
}

// Mesh is one process's attachment to the world: the local rank's listener
// plus lazily dialed connections to every peer.
type Mesh struct {
	self       int
	n          int
	addrs      []string
	gen        uint64
	dialWindow time.Duration

	ln    net.Listener
	port  *port
	debug bool // C3_TCP_DEBUG: trace dials, probes and write failures

	mu      sync.Mutex
	peers   map[int]*peerConn
	inbound map[net.Conn]struct{}
	down    atomic.Bool

	// Partition fault model: directed (from, to) pairs currently severed.
	// In drop mode outbound frames whose pair matches vanish before they
	// reach the kernel and inbound frames are filtered too, so an
	// asymmetric rule set holds even against frames already in flight. In
	// hold mode matched outbound frames are buffered and delivered in
	// order at the next Heal — modeling a partition shorter than TCP's
	// retransmission patience, where established connections recover and
	// no data is lost.
	partMu      sync.Mutex
	partBlocked map[[2]int]bool
	partHold    bool
	partHeld    []heldFrame

	statMu sync.Mutex
	stats  transport.Stats

	wg sync.WaitGroup
}

// heldFrame is one outbound frame buffered by a hold-mode partition rule.
type heldFrame struct {
	to    int
	frame []byte
}

// peerConn is the outbound connection to one peer.
type peerConn struct {
	mu        sync.Mutex
	conn      net.Conn
	connected bool      // ever connected: re-dials use the short window
	downUntil time.Time // failed-dial backoff: drop sends without redialing
}

// redialBackoff is how long sends to a peer drop immediately after a
// failed (re)dial. Without it, every queued message toward a dead peer
// pays a full dial window while holding the peer's connection lock,
// serializing into multi-second stalls for everything else addressed to
// that rank (the failure detector's heartbeat queue, recovery queries).
// With it, the first send after a death pays one dial; the rest fail fast
// until the next probe window, which also bounds how long a restarted
// peer waits to be re-discovered.
const redialBackoff = 200 * time.Millisecond

// New creates a mesh for local rank self in a world whose rank addresses
// are addrs (len(addrs) ranks). addrs[self] may use port 0; Addr reports
// the actually bound address.
func New(self int, addrs []string, opts ...Option) (*Mesh, error) {
	if self < 0 || self >= len(addrs) {
		return nil, fmt.Errorf("tcp: rank %d out of range for %d addresses", self, len(addrs))
	}
	m := &Mesh{
		self:       self,
		n:          len(addrs),
		addrs:      append([]string(nil), addrs...),
		dialWindow: 10 * time.Second,
		peers:      make(map[int]*peerConn),
		inbound:    make(map[net.Conn]struct{}),
		port:       newPort(self),
		debug:      os.Getenv("C3_TCP_DEBUG") != "",
	}
	for _, o := range opts {
		o(m)
	}
	ln, err := net.Listen("tcp", addrs[self])
	if err != nil {
		return nil, fmt.Errorf("tcp: rank %d listen %s: %w", self, addrs[self], err)
	}
	m.ln = ln
	m.wg.Add(1)
	go m.acceptLoop()
	return m, nil
}

// Addr returns the mesh's bound listen address.
func (m *Mesh) Addr() string { return m.ln.Addr().String() }

// SetPartition installs directed partition rules, replacing any active
// rule set. With hold=false a matched (from, to) frame is dropped on the
// send side before reaching the kernel and filtered on the receive side
// (blackhole: a partition outlasting TCP's patience). With hold=true
// matched outbound frames are buffered instead and delivered in their
// original order at the next Heal (a short partition: the kernel's
// retransmissions win). The outbound connection of a blocked pair is
// closed at the next send, so no half-open socket lingers behind the
// rule. Frames already buffered by a previous hold rule set stay held.
func (m *Mesh) SetPartition(block [][2]int, hold bool) {
	blocked := make(map[[2]int]bool, len(block))
	for _, p := range block {
		blocked[p] = true
	}
	m.partMu.Lock()
	m.partBlocked = blocked
	m.partHold = hold
	m.partMu.Unlock()
}

// Heal clears the partition rules and flushes frames buffered by a hold
// rule set, in capture order, on a background drainer (the first write to
// a severed pair may pay a re-dial). Drop-mode pairs simply re-dial
// lazily on their next send — their frames are gone.
func (m *Mesh) Heal() {
	m.partMu.Lock()
	m.partBlocked = nil
	held := m.partHeld
	m.partHeld = nil
	m.partMu.Unlock()
	if len(held) == 0 || m.down.Load() {
		return
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for _, h := range held {
			if m.down.Load() {
				return
			}
			if !m.write(h.to, h.frame) {
				m.noteDropped()
			}
		}
	}()
}

// dropRule reports whether the directed pair is currently severed.
func (m *Mesh) dropRule(from, to int) bool {
	m.partMu.Lock()
	defer m.partMu.Unlock()
	return m.partBlocked[[2]int{from, to}]
}

// dropInbound reports whether an inbound frame on the pair should be
// filtered: only drop-mode rules apply (hold mode promises delivery, so
// frames already in flight pass).
func (m *Mesh) dropInbound(from, to int) bool {
	m.partMu.Lock()
	defer m.partMu.Unlock()
	return m.partBlocked[[2]int{from, to}] && !m.partHold
}

// holdIfActive buffers a frame if a hold-mode rule currently covers the
// pair, reporting whether it did.
func (m *Mesh) holdIfActive(to int, frame []byte) bool {
	m.partMu.Lock()
	defer m.partMu.Unlock()
	if !m.partBlocked[[2]int{m.self, to}] || !m.partHold {
		return false
	}
	m.partHeld = append(m.partHeld, heldFrame{to: to, frame: frame})
	return true
}

// openOutbound counts established outbound peer connections (leak checks).
func (m *Mesh) openOutbound() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	open := 0
	for _, p := range m.peers {
		p.mu.Lock()
		if p.conn != nil {
			open++
		}
		p.mu.Unlock()
	}
	return open
}

// Self returns the local rank.
func (m *Mesh) Self() int { return m.self }

// Size implements transport.Interconnect.
func (m *Mesh) Size() int { return m.n }

// Scheduler implements transport.Interconnect: a real-socket mesh never
// runs under the virtual schedule engine.
func (m *Mesh) Scheduler() *transport.Scheduler { return nil }

// Stats implements transport.Interconnect.
func (m *Mesh) Stats() transport.Stats {
	m.statMu.Lock()
	defer m.statMu.Unlock()
	return m.stats
}

// Endpoint implements transport.Interconnect. Only the local rank has a
// live port; remote ranks' receive sides live in their own processes.
func (m *Mesh) Endpoint(rank int) transport.Port {
	if rank == m.self {
		return m.port
	}
	return deadPort{rank: rank}
}

// Kill implements transport.Interconnect: the local rank's port is killed;
// killing a remote rank is the job scheduler's business (a real SIGKILL),
// so it is a no-op here.
func (m *Mesh) Kill(rank int) {
	if rank == m.self {
		m.port.kill()
	}
}

// Shutdown implements transport.Interconnect: close the listener and every
// connection and kill the local port, unblocking all receives.
func (m *Mesh) Shutdown() {
	if m.down.Swap(true) {
		return
	}
	_ = m.ln.Close()
	m.mu.Lock()
	for _, p := range m.peers {
		p.mu.Lock()
		if p.conn != nil {
			_ = p.conn.Close()
			p.conn = nil
		}
		p.mu.Unlock()
	}
	for c := range m.inbound {
		_ = c.Close()
	}
	m.mu.Unlock()
	m.port.kill()
}

// Close shuts the mesh down and waits for its background goroutines.
func (m *Mesh) Close() {
	m.Shutdown()
	m.wg.Wait()
}

// Send implements transport.Interconnect.
func (m *Mesh) Send(msg transport.Message) error {
	if m.down.Load() {
		return transport.ErrDown
	}
	if msg.To < 0 || msg.To >= m.n {
		return fmt.Errorf("tcp: destination %d out of range [0,%d)", msg.To, m.n)
	}
	size := 0
	if s, ok := msg.Payload.(transport.Sizer); ok {
		size = s.TransportSize()
	}
	m.statMu.Lock()
	m.stats.MessagesSent++
	if msg.Class == transport.Control {
		m.stats.ControlMessages++
	} else {
		m.stats.DataMessages++
	}
	m.stats.DeliveredPayload += uint64(size)
	m.statMu.Unlock()

	if msg.Trace.Span == 0 {
		msg.Trace = trace.Default().Send(int32(msg.From), int32(msg.To), uint64(size))
	}
	if msg.To == m.self {
		if !m.port.push(msg) {
			m.noteDropped()
		}
		return nil
	}
	if m.dropRule(m.self, msg.To) {
		// Partitioned pair: in hold mode the frame is buffered for the next
		// Heal; in drop mode it vanishes and the sender never errors (the
		// in-memory Network's semantics for a severed pair). write()
		// re-checks the rule after any dial, so a rule installed while a
		// send is mid-flight still cannot leak a frame or a connection.
		frame, err := encodeFrame(m.gen, msg)
		if err != nil {
			return err
		}
		if !m.holdIfActive(msg.To, frame) {
			m.noteDropped()
		}
		return nil
	}
	frame, err := encodeFrame(m.gen, msg)
	if err != nil {
		return err
	}
	if !m.write(msg.To, frame) {
		m.noteDropped()
	}
	return nil
}

func (m *Mesh) noteDropped() {
	m.statMu.Lock()
	m.stats.MessagesDropped++
	m.statMu.Unlock()
}

// encodeFrame serializes one message into a length-prefixed frame.
func encodeFrame(gen uint64, msg transport.Message) ([]byte, error) {
	wp, ok := msg.Payload.(transport.WirePayload)
	if !ok {
		return nil, fmt.Errorf("tcp: payload %T cannot cross a wire (no WirePayload)", msg.Payload)
	}
	body := wp.MarshalWire()
	if len(body) > maxFrame-frameHeaderLen {
		// The receiver treats an oversized length prefix as stream
		// corruption and drops the connection (losing queued frames behind
		// it); refuse on the send side instead.
		return nil, fmt.Errorf("tcp: %d-byte payload exceeds the %d-byte frame limit", len(body), maxFrame)
	}
	w := wire.NewWriter(4 + frameHeaderLen + len(body))
	w.U32(uint32(frameHeaderLen + len(body)))
	w.U64(gen)
	w.U32(uint32(msg.From))
	w.U32(uint32(msg.To))
	w.U8(uint8(msg.Class))
	w.U8(wp.WireKind())
	w.U64(msg.Trace.Span)
	w.U64(msg.Trace.Clock)
	buf := append(w.Bytes(), body...)
	return buf, nil
}

// peer returns (creating if needed) the connection slot for a rank.
func (m *Mesh) peer(rank int) *peerConn {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.peers[rank]
	if p == nil {
		p = &peerConn{}
		m.peers[rank] = p
	}
	return p
}

// connDead probes an outbound connection for a buffered FIN or RST with a
// non-blocking MSG_PEEK at the socket layer. Outbound connections are
// write-only in this design (replies travel on the peer's own outbound
// connection), so any readable event means the peer closed — in
// particular, a SIGKILLed peer's kernel sends FIN/RST that would otherwise
// go unnoticed until the SECOND write: TCP accepts the first write into a
// half-open connection without error, which would silently swallow one
// frame per dead connection. The peek bypasses the net poller (an expired
// read deadline would short-circuit before reporting the buffered EOF) and
// costs one syscall on the happy path.
func connDead(c net.Conn) bool {
	sc, ok := c.(syscall.Conn)
	if !ok {
		return false
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return false
	}
	dead := false
	if err := raw.Control(func(fd uintptr) {
		var buf [1]byte
		n, _, errno := syscall.Recvfrom(int(fd), buf[:], syscall.MSG_PEEK|syscall.MSG_DONTWAIT)
		switch {
		case errno == nil && n == 0:
			dead = true // orderly FIN buffered
		case errno == syscall.EAGAIN || errno == syscall.EWOULDBLOCK:
			// nothing buffered: healthy
		case errno != nil:
			dead = true // RST or another socket error
		}
	}); err != nil {
		return false
	}
	return dead
}

// write delivers one frame to a peer, dialing or re-dialing as needed. It
// reports false when the frame could not be handed to the kernel (the peer
// is down); the message is then dropped, never queued.
func (m *Mesh) write(rank int, frame []byte) bool {
	debug := m.debug
	p := m.peer(rank)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil && connDead(p.conn) {
		if debug {
			fmt.Fprintf(os.Stderr, "tcp[%d]: probe found dead conn to %d, redialing\n", m.self, rank)
		}
		_ = p.conn.Close()
		p.conn = nil
	}
	for attempt := 0; attempt < 2; attempt++ {
		if p.conn == nil {
			if time.Now().Before(p.downUntil) {
				return false // recent dial failure: drop without redialing
			}
			window := m.dialWindow
			if p.connected {
				// The peer was reachable before and vanished — likely dead.
				// Don't stall the sender; a restarted peer is retried on the
				// next send.
				window = 250 * time.Millisecond
			}
			// Dialing under p.mu is deliberate post-PR4: the lock is
			// per-peer, so a dead peer stalls only its own frames, and the
			// redial window after a loss is bounded to 250ms (the 30s-stall
			// bug was the unbounded window, not the lock itself).
			conn := m.dial(rank, window) //c3lint:allow lockblock per-peer lock; redial window bounded to 250ms
			if conn == nil {
				if debug {
					fmt.Fprintf(os.Stderr, "tcp[%d]: dial %d failed\n", m.self, rank)
				}
				p.downUntil = time.Now().Add(redialBackoff)
				return false
			}
			p.conn = conn
			p.connected = true
			p.downUntil = time.Time{}
		}
		if m.dropRule(m.self, rank) {
			// A partition rule landed between Send's fast-path check and the
			// (re)dial above: the frame must not cross, and the freshly
			// dialed probe connection must not linger half-open behind the
			// rule — close it here instead of leaking it in p.conn. Under a
			// hold rule the frame is re-queued for the Heal flush.
			_ = p.conn.Close()
			p.conn = nil
			return m.holdIfActive(rank, frame)
		}
		// Frames must hit the kernel atomically per connection to keep the
		// per-(src,dst) FIFO guarantee; p.mu is that per-peer write lock.
		if _, err := p.conn.Write(frame); err == nil { //c3lint:allow lockblock per-peer FIFO framing requires the write under the lock
			return true
		} else if debug {
			fmt.Fprintf(os.Stderr, "tcp[%d]: write to %d failed: %v\n", m.self, rank, err)
		}
		_ = p.conn.Close()
		p.conn = nil
	}
	return false
}

// dial connects to a peer and completes the generation handshake, retrying
// within the window. Retries cover both startup ordering (the peer's
// listener may not be up yet during world start or rank re-execution) and
// attempt transitions (the address is temporarily owned by the previous
// generation's listener, which refuses the handshake until the peer's new
// mesh rebinds).
func (m *Mesh) dial(rank int, window time.Duration) net.Conn {
	deadline := time.Now().Add(window)
	for {
		if m.down.Load() {
			return nil
		}
		conn, err := net.DialTimeout("tcp", m.addrs[rank], window)
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				_ = tc.SetNoDelay(true)
			}
			if m.handshake(conn) {
				return conn
			}
			_ = conn.Close()
		}
		if time.Now().After(deadline) {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// handshake announces this mesh's generation on a fresh outbound connection
// and waits for the acceptor's verdict. False means the far side is not (or
// not yet) running the same generation.
func (m *Mesh) handshake(conn net.Conn) bool {
	w := wire.NewWriter(12)
	w.U32(hsMagic)
	w.U64(m.gen)
	_ = conn.SetDeadline(time.Now().Add(hsTimeout))
	defer func() { _ = conn.SetDeadline(time.Time{}) }()
	if _, err := conn.Write(w.Bytes()); err != nil {
		return false
	}
	var reply [1]byte
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		return false
	}
	return reply[0] == hsAccept
}

// acceptLoop admits inbound connections from peers.
func (m *Mesh) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return // listener closed (Shutdown)
		}
		m.mu.Lock()
		m.inbound[conn] = struct{}{}
		m.mu.Unlock()
		m.wg.Add(1)
		go m.readLoop(conn)
	}
}

// readLoop decodes frames from one inbound connection into the local port.
func (m *Mesh) readLoop(conn net.Conn) {
	defer m.wg.Done()
	defer func() {
		_ = conn.Close()
		m.mu.Lock()
		delete(m.inbound, conn)
		m.mu.Unlock()
	}()
	// Generation handshake: refuse dialers from another generation so they
	// retry after this address changes hands, instead of writing frames the
	// generation filter below would silently discard.
	var pre [12]byte
	_ = conn.SetReadDeadline(time.Now().Add(hsTimeout))
	if _, err := io.ReadFull(conn, pre[:]); err != nil {
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	pr := wire.NewReader(pre[:])
	if magic, gen := pr.U32(), pr.U64(); magic != hsMagic {
		return // not a c3 peer; drop without replying
	} else if gen != m.gen {
		_, _ = conn.Write([]byte{hsRefuse})
		return
	}
	if _, err := conn.Write([]byte{hsAccept}); err != nil {
		return
	}
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n < frameHeaderLen || n > maxFrame {
			return // corrupt stream; drop the connection
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		r := wire.NewReader(body)
		gen := r.U64()
		from := int(r.U32())
		to := int(r.U32())
		class := transport.Class(r.U8())
		kind := r.U8()
		tctx := trace.Ctx{Span: r.U64(), Clock: r.U64()}
		if r.Err() != nil {
			return
		}
		if gen != m.gen || to != m.self || from < 0 || from >= m.n {
			continue // stale generation or misrouted frame
		}
		if m.dropInbound(from, m.self) {
			continue // blackholed pair: filter frames already in flight
		}
		payload, err := transport.DecodeWirePayload(kind, body[frameHeaderLen:])
		if err != nil {
			continue // unknown or corrupt payload: drop the frame, keep the conn
		}
		if !m.port.push(transport.Message{From: from, To: to, Class: class, Payload: payload, Trace: tctx}) {
			m.noteDropped()
		}
	}
}

var _ transport.Interconnect = (*Mesh)(nil)

// --- Local port ---

// port is the local rank's receive queue (the socket-backed analogue of the
// in-memory Endpoint).
type port struct {
	rank int

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []transport.Message
	killed bool
}

func newPort(rank int) *port {
	p := &port{rank: rank}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Rank implements transport.Port.
func (p *port) Rank() int { return p.rank }

func (p *port) push(msg transport.Message) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.killed {
		return false
	}
	p.queue = append(p.queue, msg)
	p.cond.Signal()
	return true
}

func (p *port) kill() {
	p.mu.Lock()
	p.killed = true
	p.queue = nil
	p.mu.Unlock()
	p.cond.Broadcast()
}

// traceRecv records the message-edge delivery on the local recorder.
func traceRecv(rank int, msg transport.Message) {
	size := 0
	if s, ok := msg.Payload.(transport.Sizer); ok {
		size = s.TransportSize()
	}
	trace.Default().Recv(int32(rank), int32(msg.From), msg.Trace, uint64(size))
}

// Recv implements transport.Port.
func (p *port) Recv() (transport.Message, error) {
	p.mu.Lock()
	for len(p.queue) == 0 {
		if p.killed {
			p.mu.Unlock()
			return transport.Message{}, transport.ErrDown
		}
		p.cond.Wait()
	}
	msg := p.queue[0]
	p.queue = p.queue[1:]
	p.mu.Unlock()
	traceRecv(p.rank, msg)
	return msg, nil
}

// TryRecv implements transport.Port.
func (p *port) TryRecv() (transport.Message, bool, error) {
	p.mu.Lock()
	if p.killed {
		p.mu.Unlock()
		return transport.Message{}, false, transport.ErrDown
	}
	if len(p.queue) == 0 {
		p.mu.Unlock()
		return transport.Message{}, false, nil
	}
	msg := p.queue[0]
	p.queue = p.queue[1:]
	p.mu.Unlock()
	traceRecv(p.rank, msg)
	return msg, true, nil
}

// Pending implements transport.Port.
func (p *port) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Killed implements transport.Port.
func (p *port) Killed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.killed
}

// deadPort stands in for ranks hosted by other processes: their receive
// sides do not exist here.
type deadPort struct{ rank int }

func (d deadPort) Rank() int { return d.rank }
func (d deadPort) Recv() (transport.Message, error) {
	return transport.Message{}, transport.ErrDown
}
func (d deadPort) TryRecv() (transport.Message, bool, error) {
	return transport.Message{}, false, transport.ErrDown
}
func (d deadPort) Pending() int { return 0 }
func (d deadPort) Killed() bool { return true }
