package cluster_test

// The multi-process end-to-end test: the test binary re-executes itself as
// per-rank worker processes (TestMain intercepts the worker role before
// any tests run), the launcher SIGKILLs one rank mid-run, and the world
// must recover over real TCP — the re-executed rank reassembling its
// checkpoints from its +1/+2 neighbors through the distributed replicated
// store — and converge to the failure-free checksums.

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"c3/internal/ckpt"
	"c3/internal/cluster"
	"c3/internal/sched"
)

const procWorkerEnv = "C3_TEST_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(procWorkerEnv) == "1" {
		runProcWorker()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// procIters is the stress workload length shared by workers and reference.
const procIters = 12

// runProcWorker is the body of a re-executed worker process.
func runProcWorker() {
	fs := flag.NewFlagSet("proc-worker", flag.ExitOnError)
	var (
		rank      = fs.Int("rank", 0, "")
		ranks     = fs.Int("ranks", 0, "")
		peers     = fs.String("peers", "", "")
		replPeers = fs.String("repl-peers", "", "")
		every     = fs.Int("every", 4, "")
		async     = fs.Bool("async", false, "")
		killRank  = fs.Int("kill-rank", -1, "")
		killRank2 = fs.Int("kill-rank2", -1, "")
		killAt    = fs.Int("kill-at", 0, "")
		killAfter = fs.Int("kill-after", 0, "")
		codec     = fs.String("codec", "", "")
		shards    = fs.Int("shards", 0, "")
		parity    = fs.Int("parity", 0, "")
		groupSz   = fs.Int("group-size", 0, "")
		selfHeal  = fs.Bool("self-heal", false, "")
		heartbeat = fs.Duration("heartbeat", 15*time.Millisecond, "")
		phi       = fs.Float64("phi", 6, "")
		ackTO     = fs.Duration("ack-timeout", 0, "")
		queryTO   = fs.Duration("query-timeout", 0, "")
		queryN    = fs.Int("query-retries", 0, "")
		capacity  = fs.Int("capacity", 0, "")
		opsAddr   = fs.String("ops-addr", "", "")
		traceDir  = fs.String("trace-dir", "", "")
		app       = fs.String("app", "stress", "")
		iters     = fs.Int("iters", procIters, "")
		pace      = fs.Duration("pace", 0, "")
	)
	_ = fs.Parse(os.Args[1:])

	var sums sync.Map
	workload := sched.StressApp(procIters, &sums)
	if *app == "elastic" {
		workload = elasticApp(*iters, *pace, &sums)
	}
	nc := cluster.NodeConfig{
		Rank:      *rank,
		Ranks:     *ranks,
		Capacity:  *capacity,
		OpsAddr:   *opsAddr,
		TraceDir:  *traceDir,
		MPIAddrs:  strings.Split(*peers, ","),
		ReplAddrs: strings.Split(*replPeers, ","),
		App:       workload,
		Policy:    ckpt.Policy{EveryNthPragma: *every, AsyncCommit: *async},
		In:        os.Stdin,
		Out:       os.Stdout,
		Result: func() string {
			v, ok := sums.Load(*rank)
			if !ok {
				return "?"
			}
			return strconv.Itoa(v.(int))
		},
	}
	if *selfHeal {
		nc.SelfHeal = &cluster.SelfHealConfig{
			HeartbeatInterval: *heartbeat,
			PhiThreshold:      *phi,
		}
	}
	nc.AckTimeout, nc.QueryTimeout, nc.QueryRetries = *ackTO, *queryTO, *queryN
	nc.Codec, nc.DataShards, nc.ParityShards = *codec, *shards, *parity
	nc.GroupSize = *groupSz
	if os.Getenv("C3_TEST_TRACE") != "" {
		start := time.Now()
		nc.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "worker[r%d t=%7dus] "+format+"\n",
				append([]any{*rank, time.Since(start).Microseconds()}, args...)...)
		}
	}
	if *killRank == *rank || *killRank2 == *rank {
		nc.Kill = &cluster.FailureSpec{Rank: *rank, AtPragma: *killAt, AfterCheckpoints: *killAfter}
	}
	if err := cluster.RunNode(nc); err != nil {
		fmt.Fprintf(os.Stderr, "proc worker rank %d: %v\n", *rank, err)
		os.Exit(1)
	}
}

// procReference computes the failure-free per-rank checksums in-process.
func procReference(t *testing.T, ranks int) map[int]int {
	t.Helper()
	var sums sync.Map
	if _, err := cluster.Run(cluster.Config{
		Ranks: ranks,
		App:   sched.StressApp(procIters, &sums),
		Seed:  1,
	}); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	ref := make(map[int]int, ranks)
	for r := 0; r < ranks; r++ {
		v, ok := sums.Load(r)
		if !ok {
			t.Fatalf("reference run produced no sum for rank %d", r)
		}
		ref[r] = v.(int)
	}
	return ref
}

func launchProcs(t *testing.T, ranks int, extra ...string) *cluster.LaunchResult {
	t.Helper()
	res, err := cluster.Launch(cluster.LaunchConfig{
		Ranks:   ranks,
		Exe:     os.Args[0],
		Env:     []string{procWorkerEnv + "=1", "GOTRACEBACK=all"},
		Timeout: 90 * time.Second,
		Args: func(rank int, mpiAddrs, replAddrs []string) []string {
			args := []string{
				"-rank", strconv.Itoa(rank),
				"-ranks", strconv.Itoa(ranks),
				"-peers", strings.Join(mpiAddrs, ","),
				"-repl-peers", strings.Join(replAddrs, ","),
			}
			return append(args, extra...)
		},
		Log: t.Logf,
	})
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	return res
}

func checkProcSums(t *testing.T, res *cluster.LaunchResult, ref map[int]int) {
	t.Helper()
	for r, want := range ref {
		got, err := strconv.Atoi(res.Results[r])
		if err != nil {
			t.Fatalf("rank %d reported %q: %v", r, res.Results[r], err)
		}
		if got != want {
			t.Errorf("rank %d checksum = %d, want %d (failure-free reference)", r, got, want)
		}
	}
}

// TestMultiProcessFailureFree runs a 4-process world over TCP with no
// failures and checks the checksums against the in-process reference.
func TestMultiProcessFailureFree(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test in -short mode")
	}
	ref := procReference(t, 4)
	res := launchProcs(t, 4)
	if res.Attempts != 1 || res.Restarts != 0 {
		t.Fatalf("attempts=%d restarts=%d, want 1/0", res.Attempts, res.Restarts)
	}
	checkProcSums(t, res, ref)
}

// TestMultiProcessSIGKILLRecovery is the headline acceptance scenario: a
// 4-process localhost world survives a real SIGKILL of one rank
// mid-logging-phase, re-executes it, reassembles its checkpoints from
// +1/+2 neighbors over TCP (diskless), and converges to the failure-free
// checksums.
func TestMultiProcessSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test in -short mode")
	}
	ref := procReference(t, 4)
	// every=4: line 2 starts at pragma 8; the victim freezes at pragma 9 —
	// inside or just past line 2's logging phase — and is SIGKILLed there.
	// Line 1, committed and replicated long before, guarantees a recovery
	// line exists whether or not line 2's commit raced the kill.
	res := launchProcs(t, 4, "-every", "4", "-kill-rank", "1", "-kill-at", "9", "-kill-after", "2")
	if res.Restarts != 1 {
		t.Fatalf("restarts=%d, want exactly 1 re-executed process", res.Restarts)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts=%d, want 2 (one failure, one recovery)", res.Attempts)
	}
	checkProcSums(t, res, ref)

	// Recovery provenance: every rank must have restored from the recovery
	// line (not re-run from scratch), and the re-executed rank must have
	// rebuilt at least one checkpoint from peer fragments over the wire.
	for r := 0; r < 4; r++ {
		stat := res.Stats[r]
		if !strings.Contains(stat, "restores=1") {
			t.Errorf("rank %d stat %q: world did not restore from the recovery line", r, stat)
		}
	}
	if stat := res.Stats[1]; !strings.Contains(stat, "reassemblies=") ||
		strings.Contains(stat, "reassemblies=0") {
		t.Errorf("re-executed rank reported %q: checkpoint was not reassembled from peers", stat)
	}
}

// TestMultiProcessSIGKILLRecoveryAsync drives the same scenario through
// the asynchronous commit pipeline.
func TestMultiProcessSIGKILLRecoveryAsync(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test in -short mode")
	}
	ref := procReference(t, 4)
	res := launchProcs(t, 4, "-every", "4", "-async", "-kill-rank", "2", "-kill-at", "9", "-kill-after", "2")
	if res.Restarts != 1 {
		t.Fatalf("restarts=%d, want 1", res.Restarts)
	}
	checkProcSums(t, res, ref)
}

// TestMultiProcessDualSIGKILLRS is the erasure-coding acceptance scenario:
// a 6-process world runs the diskless store under -codec=rs (k=3, m=2 —
// every line lives only as five shards on five distinct ring successors,
// no full copies anywhere), two ranks are SIGKILLed near-simultaneously at
// the same pragma, both are re-executed, reassemble their checkpoints from
// the surviving three-of-five shards over TCP, and the world converges to
// the failure-free checksums.
func TestMultiProcessDualSIGKILLRS(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test in -short mode")
	}
	ref := procReference(t, 6)
	res := launchProcs(t, 6,
		"-every", "4",
		"-codec", "rs", "-shards", "3", "-parity", "2",
		"-kill-rank", "1", "-kill-rank2", "3", "-kill-at", "9", "-kill-after", "2",
		"-query-retries", "3")
	if res.Restarts != 2 {
		t.Fatalf("restarts=%d, want 2 re-executed processes", res.Restarts)
	}
	checkProcSums(t, res, ref)
	// Both replacements must have rebuilt state from peer shards; with an
	// erasure codec even the survivors reassemble their own lines over the
	// wire (no full local copies exist).
	for _, r := range []int{1, 3} {
		stat := res.Stats[r]
		if !strings.Contains(stat, "restores=1") {
			t.Errorf("rank %d stat %q: did not restore from the recovery line", r, stat)
		}
		if !strings.Contains(stat, "reassemblies=") || strings.Contains(stat, "reassemblies=0") {
			t.Errorf("rank %d stat %q: checkpoint was not reassembled from shards", r, stat)
		}
	}
}

// TestMultiProcessSIGKILLRecoveryXOR drives the single-kill headline
// scenario through the xor codec (k=4 data + 1 parity on five distinct
// successors, tolerates exactly the one loss this test injects).
func TestMultiProcessSIGKILLRecoveryXOR(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test in -short mode")
	}
	ref := procReference(t, 6)
	res := launchProcs(t, 6,
		"-every", "4",
		"-codec", "xor", "-shards", "4",
		"-kill-rank", "2", "-kill-at", "9", "-kill-after", "2",
		"-query-retries", "3")
	if res.Restarts != 1 {
		t.Fatalf("restarts=%d, want 1", res.Restarts)
	}
	checkProcSums(t, res, ref)
}
