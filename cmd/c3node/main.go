// Command c3node runs the reproduction as a real multi-process cluster:
// one OS process per rank, TCP between ranks, and real SIGKILL as the
// failure injector. The same binary is both the launcher (default) and the
// per-rank worker (-worker, spawned by re-exec), mirroring how an MPI
// launcher re-executes its own image on every node.
//
// Usage:
//
//	c3node -ranks 4 -kernel CG -class S -every 3
//	    launch 4 worker processes over TCP with the diskless replicated
//	    store and run CG to completion
//
//	c3node -ranks 4 -kernel CG -class S -every 3 -kill rank=1,at=5,after=1
//	    additionally SIGKILL rank 1's process at its 5th pragma once it has
//	    started at least one checkpoint (mid-logging-phase); the dead rank
//	    is re-executed, reassembles its checkpoints from its +1/+2
//	    neighbors over TCP, and the world recovers from the last committed
//	    recovery line
//
//	c3node -ranks 4 -kernel CG -class S -every 3 -self-heal \
//	       -external-kill rank=1,after=2
//	    self-healing mode: the launcher is a dumb respawner with NO
//	    knowledge of the failure. It SIGKILLs rank 1 (acting as an outside
//	    operator) once that rank has committed 2 checkpoints; the
//	    survivors' failure detectors (heartbeats over the replication
//	    mesh) notice, agree on an epoch-numbered dead set, elect a
//	    coordinator, request a respawn, and recover on their own.
//	    Heartbeat cadence and suspicion threshold are tuned with
//	    -heartbeat and -phi; the store's recovery-query behavior with
//	    -ack-timeout, -query-timeout and -query-retries.
//
//	c3node -ranks 5 -kernel CG -class S -every 3 -self-heal \
//	       -partition a=3+4,after=2,heal=3s
//	    partition-tolerance demo: once ranks 3+4 have committed 2
//	    checkpoints, the launcher severs them from the rest (symmetric
//	    blackhole on every TCP mesh). The majority side commits an epoch
//	    declaring them dead and keeps computing; the severed minority
//	    fences — zero checkpoint commits while split, because the quorum
//	    rule proves it cannot hold a majority. 3s later the launcher heals
//	    the split; the fenced ranks learn the newer epoch from their rejoin
//	    pings, rejoin through the state-snapshot path, and the final
//	    checksums converge
//
//	c3node -ranks 4 -kernel CG -class S -self-heal -spare 2 -ops-base 9300
//	    elastic membership: two spare storage-member slots and an embedded
//	    ops/metrics HTTP server per rank (rank r on 127.0.0.1:9300+r).
//	    POST /join grows the world at the next recovery line (the launcher
//	    spawns a spare, the members admit it by a membership epoch
//	    agreement); POST /drain {"rank": N} shrinks it; POST /checkpoint
//	    forces a line; GET /status, /epoch, /line, /membership are JSON
//	    snapshots and GET /metrics is Prometheus text exposition
//
//	c3node -ranks 4 -kernel LU -store /tmp/ckpts ...
//	    use a shared-directory disk store instead of the diskless
//	    replicated store
//
// The launcher's final line, "checksums=[...]", is identical between a
// failure-free run and a run that survived a SIGKILL — the convergence
// check the CI smoke jobs perform. With -v, workers log to stderr with
// structured per-rank prefixes ("c3node[r2 t=...us]"), so interleaved
// multi-process detector logs stay attributable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"c3/internal/apps"
	"c3/internal/ckpt"
	"c3/internal/cluster"
	"c3/internal/stable"
)

func main() {
	if hasFlag("-worker") {
		workerMain()
		return
	}
	launcherMain()
}

func hasFlag(name string) bool {
	for _, a := range os.Args[1:] {
		if a == name || a == name+"=true" || strings.TrimPrefix(a, "-") == strings.TrimPrefix(name, "-") {
			return true
		}
	}
	return false
}

// parseKill parses "rank=R,at=P[,after=K]".
func parseKill(s string) (*cluster.FailureSpec, error) {
	if s == "" {
		return nil, nil
	}
	spec := &cluster.FailureSpec{AtPragma: 1}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("malformed kill spec component %q", part)
		}
		v, err := strconv.Atoi(kv[1])
		if err != nil {
			return nil, fmt.Errorf("kill spec %q: %w", part, err)
		}
		switch kv[0] {
		case "rank":
			spec.Rank = v
		case "at":
			spec.AtPragma = v
		case "after":
			spec.AfterCheckpoints = v
		default:
			return nil, fmt.Errorf("unknown kill spec key %q", kv[0])
		}
	}
	return spec, nil
}

// parseExternalKill parses "rank=R[,after=K][,joins=J]" (K = committed
// checkpoints observed before the operator's SIGKILL, 0 kills right after
// launch; J additionally waits for J spare-slot membership admissions, the
// elastic "kill in the resized world" demo).
func parseExternalKill(s string) (*cluster.ExternalKillSpec, error) {
	if s == "" {
		return nil, nil
	}
	spec := &cluster.ExternalKillSpec{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("malformed external-kill component %q", part)
		}
		v, err := strconv.Atoi(kv[1])
		if err != nil {
			return nil, fmt.Errorf("external-kill %q: %w", part, err)
		}
		switch kv[0] {
		case "rank":
			spec.Rank = v
		case "after":
			spec.AfterCheckpoints = v
		case "joins":
			spec.AfterJoins = v
		default:
			return nil, fmt.Errorf("unknown external-kill key %q (rank, after, joins)", kv[0])
		}
	}
	return spec, nil
}

func launcherMain() {
	var (
		ranks    = flag.Int("ranks", 4, "number of ranks (one process each)")
		kernel   = flag.String("kernel", "CG", "kernel to run (see c3run -list)")
		class    = flag.String("class", "S", "problem class: S, W, or A")
		every    = flag.Int("every", 3, "take a checkpoint every N pragmas")
		async    = flag.Bool("async", false, "asynchronous commit pipeline")
		kill     = flag.String("kill", "", "failure spec rank=R,at=P[,after=K]: SIGKILL that rank's process at that pragma")
		storeDir = flag.String("store", "", "shared checkpoint directory (default: diskless replicated store over TCP)")
		codec    = flag.String("codec", "dup", "diskless-store fragment codec: dup (full +1/+2 replication), xor (k+1 single parity), rs (Reed-Solomon k+m)")
		shards   = flag.Int("shards", 0, "codec data shards k (0 = per-codec default: dup 2, xor 4, rs 4)")
		parity   = flag.Int("parity", 0, "codec parity shards m (0 = default: rs 2; xor always 1; dup none)")
		groupSz  = flag.Int("group-size", 0, "two-level topology: partition ranks into checkpoint groups of this many slots (group-local shards + cross-group parity; with -self-heal also group heartbeat rings and delegate relays; 0 = flat)")
		selfHeal = flag.Bool("self-heal", false, "autonomous recovery: workers detect failures and coordinate; launcher only respawns")
		spare    = flag.Int("spare", 0, "spare storage-member slots beyond the compute world (elastic membership; requires -self-heal)")
		opsBase  = flag.Int("ops-base", 0, "embedded ops/metrics HTTP server base port: rank r serves on 127.0.0.1:(base+r); 0 disables (requires -self-heal)")
		opsDebug = flag.Bool("ops-debug", false, "expose net/http/pprof and runtime/trace start/stop verbs on the ops servers (requires -ops-base)")
		traceDir = flag.String("trace-dir", "", "flight-recorder dump directory: each rank writes rank<N>.c3tr on epoch/fence/restore/exit (merge with c3trace)")
		extKill  = flag.String("external-kill", "", "self-heal demo: operator SIGKILL rank=R[,after=K committed checkpoints][,joins=J spare admissions]")
		part     = flag.String("partition", "", "self-heal demo: network split a=R+R..[,after=K committed checkpoints][,heal=DURATION]")
		hb       = flag.Duration("heartbeat", 25*time.Millisecond, "self-heal: failure-detector heartbeat interval")
		phi      = flag.Float64("phi", 5, "self-heal: accrual suspicion threshold")
		ackTO    = flag.Duration("ack-timeout", 0, "replicated store: neighbor ack timeout (0 = default 5s)")
		queryTO  = flag.Duration("query-timeout", 0, "replicated store: recovery query timeout (0 = default 3s)")
		queryN   = flag.Int("query-retries", 0, "replicated store: recovery query sweeps (0 = default 1)")
		jsonOut  = flag.String("json", "", "additionally write the run summary to this file as JSON (CI artifacts)")
		verbose  = flag.Bool("v", false, "log launcher and worker progress to stderr (structured per-rank prefixes)")
	)
	flag.Parse()

	if _, ok := apps.Lookup(*kernel); !ok {
		fatalf("unknown kernel %q (use c3run -list)", *kernel)
	}
	killSpec, err := parseKill(*kill)
	if err != nil {
		fatalf("%v", err)
	}
	extKillSpec, err := parseExternalKill(*extKill)
	if err != nil {
		fatalf("%v", err)
	}
	if extKillSpec != nil && !*selfHeal {
		fatalf("-external-kill requires -self-heal (the legacy launcher cannot recover an uncoordinated kill)")
	}
	var partSpec *cluster.ExternalPartitionSpec
	if *part != "" {
		partSpec, err = cluster.ParsePartitionSpec(*part)
		if err != nil {
			fatalf("%v", err)
		}
		if !*selfHeal {
			fatalf("-partition requires -self-heal (only the quorum-fenced world survives a split)")
		}
	}
	if *selfHeal && *storeDir != "" {
		fatalf("-self-heal requires the diskless replicated store (drop -store)")
	}
	if *spare < 0 {
		fatalf("-spare must be non-negative")
	}
	if *spare > 0 && !*selfHeal {
		fatalf("-spare requires -self-heal (membership agreements live in the workers)")
	}
	if *opsBase != 0 && !*selfHeal {
		fatalf("-ops-base requires -self-heal (the ops plane queries the detector and membership)")
	}
	if *opsDebug && *opsBase == 0 {
		fatalf("-ops-debug requires -ops-base (the debug verbs live on the ops servers)")
	}
	if _, err := stable.NewCodec(*codec, *shards, *parity); err != nil {
		fatalf("%v", err)
	}
	if *codec != "dup" && *storeDir != "" {
		fatalf("-codec applies to the diskless replicated store (drop -store)")
	}
	if *groupSz < 0 {
		fatalf("-group-size must be non-negative")
	}
	if *groupSz > 0 && *storeDir != "" {
		fatalf("-group-size applies to the diskless replicated store (drop -store)")
	}

	capacity := *ranks + *spare
	cfg := cluster.LaunchConfig{
		Ranks:             *ranks,
		Capacity:          capacity,
		Disk:              *storeDir != "",
		SelfHeal:          *selfHeal,
		ExternalKill:      extKillSpec,
		ExternalPartition: partSpec,
		Args: func(rank int, mpiAddrs, replAddrs []string) []string {
			args := []string{
				"-worker",
				"-rank", strconv.Itoa(rank),
				"-ranks", strconv.Itoa(*ranks),
				"-capacity", strconv.Itoa(capacity),
				"-peers", strings.Join(mpiAddrs, ","),
				"-kernel", *kernel,
				"-class", *class,
				"-every", strconv.Itoa(*every),
			}
			if *opsBase != 0 {
				args = append(args, "-ops-addr", fmt.Sprintf("127.0.0.1:%d", *opsBase+rank))
			}
			if *opsDebug {
				args = append(args, "-ops-debug")
			}
			if *traceDir != "" {
				args = append(args, "-trace-dir", *traceDir)
			}
			if *async {
				args = append(args, "-async")
			}
			if *storeDir != "" {
				args = append(args, "-store", *storeDir)
			} else {
				args = append(args, "-repl-peers", strings.Join(replAddrs, ","),
					"-codec", *codec,
					"-shards", strconv.Itoa(*shards),
					"-parity", strconv.Itoa(*parity))
				if *groupSz > 0 {
					args = append(args, "-group-size", strconv.Itoa(*groupSz))
				}
			}
			if *selfHeal {
				args = append(args,
					"-self-heal",
					"-heartbeat", hb.String(),
					"-phi", strconv.FormatFloat(*phi, 'g', -1, 64))
			}
			if *ackTO > 0 {
				args = append(args, "-ack-timeout", ackTO.String())
			}
			if *queryTO > 0 {
				args = append(args, "-query-timeout", queryTO.String())
			}
			if *queryN > 0 {
				args = append(args, "-query-retries", strconv.Itoa(*queryN))
			}
			if killSpec != nil && killSpec.Rank == rank {
				args = append(args, "-kill", *kill)
			}
			if *verbose {
				args = append(args, "-v")
			}
			return args
		},
	}
	if *verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "c3node: "+format+"\n", args...)
		}
	}

	res, err := cluster.Launch(cfg)
	if err != nil {
		fatalf("launch: %v", err)
	}
	fmt.Printf("kernel %s class %s on %d processes: %d attempt(s), %d re-exec(s)\n",
		*kernel, *class, *ranks, res.Attempts, res.Restarts)
	if *spare > 0 {
		fmt.Printf("  membership: joins=%d drains=%d (compute %d, capacity %d)\n",
			res.Joins, res.Drains, *ranks, capacity)
	}
	if *selfHeal {
		printSelfHealSummary(res, *ranks)
	}
	if partSpec != nil {
		printPartitionSummary(res, partSpec)
	}
	sums := make([]string, *ranks)
	for r := 0; r < *ranks; r++ {
		sums[r] = res.Results[r]
		fmt.Printf("  rank %d checksum: %s\n", r, sums[r])
	}
	fmt.Printf("checksums=[%s]\n", strings.Join(sums, ","))
	if *jsonOut != "" {
		writeJSONSummary(*jsonOut, *kernel, *class, *ranks, capacity, res, sums)
	}
}

// runSummary is the -json artifact: the stat/latency summary the CI jobs
// archive (mirrors c3bench -json).
type runSummary struct {
	Kernel    string         `json:"kernel"`
	Class     string         `json:"class"`
	Ranks     int            `json:"ranks"`
	Capacity  int            `json:"capacity"`
	Attempts  int            `json:"attempts"`
	Restarts  int            `json:"restarts"`
	Joins     int            `json:"joins"`
	Drains    int            `json:"drains"`
	Stats     map[int]string `json:"stats,omitempty"`
	Checksums []string       `json:"checksums"`
}

func writeJSONSummary(path, kernel, class string, ranks, capacity int, res *cluster.LaunchResult, sums []string) {
	data, err := json.MarshalIndent(runSummary{
		Kernel:    kernel,
		Class:     class,
		Ranks:     ranks,
		Capacity:  capacity,
		Attempts:  res.Attempts,
		Restarts:  res.Restarts,
		Joins:     res.Joins,
		Drains:    res.Drains,
		Stats:     res.Stats,
		Checksums: sums,
	}, "", "  ")
	if err != nil {
		fatalf("encode json: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
}

// printSelfHealSummary reports the detection -> agreement -> restore-start
// latency decomposition measured by the workers (EXPERIMENTS.md table 8).
func printSelfHealSummary(res *cluster.LaunchResult, ranks int) {
	for r := 0; r < ranks; r++ {
		stat := res.Stats[r]
		if stat == "" {
			continue
		}
		fields := map[string]int64{}
		for _, f := range strings.Fields(stat) {
			if kv := strings.SplitN(f, "=", 2); len(kv) == 2 {
				if v, err := strconv.ParseInt(kv[1], 10, 64); err == nil {
					fields[kv[0]] = v
				}
			}
		}
		if fields["suspect_us"] == 0 {
			continue
		}
		line := fmt.Sprintf("  rank %d: detections=%d epochs=%d agree=+%dus restore-start=+%dus",
			r, fields["detections"], fields["epochs"], fields["agree_us"], fields["restore_us"])
		if !res.KillTime.IsZero() {
			detect := time.UnixMicro(fields["suspect_us"]).Sub(res.KillTime)
			line += fmt.Sprintf(" detect-latency=%v", detect.Round(time.Millisecond))
		}
		fmt.Println(line)
	}
}

// printPartitionSummary reports the split's timeline and the per-side
// checkpoint commits observed while the network was partitioned: the
// minority (GroupA) side must show zero — its ranks were fenced
// (EXPERIMENTS.md table 10).
func printPartitionSummary(res *cluster.LaunchResult, spec *cluster.ExternalPartitionSpec) {
	if res.PartTime.IsZero() {
		fmt.Println("  partition: never installed (run ended first)")
		return
	}
	inA := make(map[int]bool, len(spec.GroupA))
	for _, r := range spec.GroupA {
		inA[r] = true
	}
	var minority, majority int
	for r, n := range res.SplitCkpts {
		if inA[r] {
			minority += n
		} else {
			majority += n
		}
	}
	line := fmt.Sprintf("  partition: group %s severed; split-time commits minority=%d majority=%d",
		cluster.FormatGroup(spec.GroupA), minority, majority)
	if !res.HealTime.IsZero() {
		line += fmt.Sprintf(" healed-after=%v", res.HealTime.Sub(res.PartTime).Round(time.Millisecond))
	}
	fmt.Println(line)
}

func workerMain() {
	fs := flag.NewFlagSet("c3node-worker", flag.ExitOnError)
	var (
		_         = fs.Bool("worker", true, "worker mode (internal)")
		rank      = fs.Int("rank", 0, "this process's rank")
		ranks     = fs.Int("ranks", 1, "world size")
		capacity  = fs.Int("capacity", 0, "membership slot count (0 = ranks)")
		opsAddr   = fs.String("ops-addr", "", "embedded ops/metrics HTTP listen address")
		opsDebug  = fs.Bool("ops-debug", false, "expose pprof and runtime/trace verbs on the ops server")
		traceDir  = fs.String("trace-dir", "", "flight-recorder dump directory")
		peers     = fs.String("peers", "", "comma-separated MPI-plane addresses, one per rank")
		replPeers = fs.String("repl-peers", "", "comma-separated replication-plane addresses")
		kernel    = fs.String("kernel", "CG", "kernel to run")
		class     = fs.String("class", "S", "problem class")
		every     = fs.Int("every", 3, "checkpoint every N pragmas")
		async     = fs.Bool("async", false, "asynchronous commit pipeline")
		kill      = fs.String("kill", "", "failure spec for this rank")
		storeDir  = fs.String("store", "", "shared checkpoint directory")
		codec     = fs.String("codec", "dup", "diskless-store fragment codec")
		shards    = fs.Int("shards", 0, "codec data shards k")
		parity    = fs.Int("parity", 0, "codec parity shards m")
		groupSz   = fs.Int("group-size", 0, "checkpoint-group width (0 = flat world)")
		selfHeal  = fs.Bool("self-heal", false, "autonomous detection and recovery")
		hb        = fs.Duration("heartbeat", 25*time.Millisecond, "detector heartbeat interval")
		phi       = fs.Float64("phi", 5, "accrual suspicion threshold")
		ackTO     = fs.Duration("ack-timeout", 0, "store neighbor ack timeout")
		queryTO   = fs.Duration("query-timeout", 0, "store recovery query timeout")
		queryN    = fs.Int("query-retries", 0, "store recovery query sweeps")
		verbose   = fs.Bool("v", false, "structured per-rank stderr logging")
	)
	_ = fs.Parse(os.Args[1:])

	k, ok := apps.Lookup(*kernel)
	if !ok {
		fatalf("worker: unknown kernel %q", *kernel)
	}
	p := k.Defaults(apps.Class(*class))
	out := apps.NewOutput()
	killSpec, err := parseKill(*kill)
	if err != nil {
		fatalf("worker: %v", err)
	}

	nc := cluster.NodeConfig{
		Rank:         *rank,
		Ranks:        *ranks,
		Capacity:     *capacity,
		OpsAddr:      *opsAddr,
		OpsDebug:     *opsDebug,
		TraceDir:     *traceDir,
		MPIAddrs:     splitAddrs(*peers),
		App:          k.App(p, out),
		Policy:       ckpt.Policy{EveryNthPragma: *every, AsyncCommit: *async},
		Kill:         killSpec,
		AckTimeout:   *ackTO,
		QueryTimeout: *queryTO,
		QueryRetries: *queryN,
		In:           os.Stdin,
		Out:          os.Stdout,
		Result: func() string {
			v, ok := out.Checksum(*rank)
			if !ok {
				return "?"
			}
			return strconv.FormatFloat(v, 'x', -1, 64)
		},
	}
	if *selfHeal {
		nc.SelfHeal = &cluster.SelfHealConfig{
			HeartbeatInterval: *hb,
			PhiThreshold:      *phi,
		}
	}
	if *storeDir != "" {
		nc.StorePath = *storeDir
	} else {
		nc.ReplAddrs = splitAddrs(*replPeers)
		nc.Codec, nc.DataShards, nc.ParityShards = *codec, *shards, *parity
		nc.GroupSize = *groupSz
	}
	if *verbose || os.Getenv("C3NODE_TRACE") != "" {
		// Structured per-rank prefix with a microsecond timestamp, so the
		// interleaved stderr of many workers stays attributable and
		// ordering within one rank is visible.
		start := time.Now()
		nc.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "c3node[r%d t=%8dus] "+format+"\n",
				append([]any{*rank, time.Since(start).Microseconds()}, args...)...)
		}
	}
	if err := cluster.RunNode(nc); err != nil {
		fatalf("worker rank %d: %v", *rank, err)
	}
}

func splitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "c3node: "+format+"\n", args...)
	os.Exit(1)
}
