package apps

import (
	"math"
	"math/cmplx"

	"c3/internal/cluster"
	"c3/internal/mpi"
)

// FT mirrors the NAS FT benchmark: a distributed FFT computed as local row
// FFTs, a global transpose (all-to-all), local FFTs again, followed by a
// spectral evolution step each iteration. The all-to-all transpose of the
// complex grid is the dominant communication.
func init() {
	Register(&Kernel{
		Name:        "FT",
		Description: "transpose-based FFT: local row FFTs + alltoall transpose per step",
		Defaults: func(c Class) Params {
			n, _ := sized(Params{Class: c}, map[Class]int{ClassS: 32, ClassW: 128, ClassA: 256}, nil)
			_, it := sized(Params{Class: c}, nil, map[Class]int{ClassS: 4, ClassW: 8, ClassA: 12})
			return Params{Class: c, N: n, Iters: it}
		},
		App: ftApp,
	})
}

// fft computes an in-place radix-2 Cooley-Tukey FFT.
func fft(a []complex128, invert bool) {
	n := len(a)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if invert {
			ang = -ang
		}
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := a[i+j]
				v := a[i+j+length/2] * w
				a[i+j] = u + v
				a[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	if invert {
		inv := complex(1/float64(n), 0)
		for i := range a {
			a[i] *= inv
		}
	}
}

func ftApp(p Params, out *Output) func(cluster.Env) error {
	return func(env cluster.Env) error {
		n, iters := sized(p,
			map[Class]int{ClassS: 32, ClassW: 128, ClassA: 256},
			map[Class]int{ClassS: 4, ClassW: 8, ClassA: 12})
		st := env.State()
		r, size := env.Rank(), env.Size()
		// n must be a power of two and divisible by size.
		for n%size != 0 {
			n <<= 1
		}
		rows := n / size

		it := st.Int("it")
		// The complex grid is stored as interleaved float64 pairs.
		raw := st.Float64s("grid", 2*rows*n).Data()

		restored, err := env.Restore()
		if err != nil {
			return err
		}
		w := env.World()

		if !restored && it.Get() == 0 {
			for i := 0; i < rows; i++ {
				for j := 0; j < n; j++ {
					raw[2*(i*n+j)] = math.Sin(float64((r*rows+i)*n+j) * 0.01)
					raw[2*(i*n+j)+1] = 0
				}
			}
		}

		row := make([]complex128, n)
		sendBuf := make([]byte, 16*rows*n)
		recvBuf := make([]byte, 16*rows*n)
		scratch := make([]complex128, rows*n)

		localFFT := func(invert bool) {
			for i := 0; i < rows; i++ {
				for j := 0; j < n; j++ {
					row[j] = complex(raw[2*(i*n+j)], raw[2*(i*n+j)+1])
				}
				fft(row, invert)
				for j := 0; j < n; j++ {
					raw[2*(i*n+j)] = real(row[j])
					raw[2*(i*n+j)+1] = imag(row[j])
				}
			}
		}

		transpose := func() error {
			for q := 0; q < size; q++ {
				for i := 0; i < rows; i++ {
					for j := 0; j < rows; j++ {
						scratch[q*rows*rows+i*rows+j] = complex(
							raw[2*(i*n+q*rows+j)], raw[2*(i*n+q*rows+j)+1])
					}
				}
			}
			mpi.PutComplex128s(sendBuf, scratch)
			if err := w.Alltoall(sendBuf, rows*rows, mpi.TypeComplex128, recvBuf); err != nil {
				return err
			}
			mpi.GetComplex128s(scratch, recvBuf)
			for q := 0; q < size; q++ {
				blk := scratch[q*rows*rows : (q+1)*rows*rows]
				for i := 0; i < rows; i++ {
					for j := 0; j < rows; j++ {
						v := blk[i*rows+j]
						raw[2*(j*n+q*rows+i)] = real(v)
						raw[2*(j*n+q*rows+i)+1] = imag(v)
					}
				}
			}
			return nil
		}

		for it.Get() < iters {
			localFFT(false)
			if err := transpose(); err != nil {
				return err
			}
			localFFT(false)
			// Spectral evolution: damp high modes.
			for i := 0; i < rows; i++ {
				for j := 0; j < n; j++ {
					k := (r*rows + i + j) % n
					f := math.Exp(-1e-6 * float64(k*k))
					raw[2*(i*n+j)] *= f
					raw[2*(i*n+j)+1] *= f
				}
			}
			localFFT(true)
			if err := transpose(); err != nil {
				return err
			}
			localFFT(true)
			it.Add(1)
			if err := env.Checkpoint(); err != nil {
				return err
			}
		}
		sum := 0.0
		for i := 0; i < rows*n; i++ {
			sum += raw[2*i] * float64(i%11+1) * 1e-3
		}
		out.Report(r, sum)
		return nil
	}
}
