module c3

go 1.24
