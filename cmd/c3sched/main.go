// Command c3sched explores protocol interleavings under the deterministic
// virtual schedule engine.
//
// Usage:
//
//	c3sched sweep   [-scenario name|all] [-from N] [-seeds N] [-stop] [-out dir]
//	c3sched replay  [-scenario name] [-seed N | -in file]
//	c3sched shrink  [-scenario name] [-seed N | -in file] [-budget N] -out file
//	c3sched list
//
// sweep runs seeds [from, from+seeds) over a scenario (or all scenarios)
// and reports failing seeds; with -out, each failure's full decision trace
// is written as a replayable schedule file. replay re-executes a seed or a
// schedule file and reports the outcome — a failing seed reproduces
// byte-for-byte. shrink minimizes a failing schedule to the forced context
// switches the failure needs and writes the result; the minimized file can
// be committed as a regression test input.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"c3/internal/cluster"
	"c3/internal/sched"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "shrink":
		err = cmdShrink(os.Args[2:])
	case "list":
		err = cmdList()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "c3sched:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  c3sched sweep   [-scenario name|all] [-from N] [-seeds N] [-stop] [-out dir]
  c3sched replay  [-scenario name] [-seed N | -in file]
  c3sched shrink  [-scenario name] [-seed N | -in file] [-budget N] -out file
  c3sched list`)
}

func cmdList() error {
	for _, sc := range sched.Scenarios {
		fmt.Printf("%-22s ranks=%d iters=%d failures=%d policy.n=%d async=%v\n",
			sc.Name, sc.Ranks, sc.Iters, len(sc.Failures), sc.Policy.EveryNthPragma, sc.Policy.AsyncCommit)
	}
	return nil
}

func scenarioArg(name string) ([]sched.Scenario, error) {
	if name == "all" {
		return sched.Scenarios, nil
	}
	sc, ok := sched.ScenarioByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown scenario %q (see c3sched list)", name)
	}
	return []sched.Scenario{sc}, nil
}

// oneScenario is scenarioArg for subcommands that operate on exactly one
// scenario (replay, shrink) — "all" is sweep-only.
func oneScenario(name string) (sched.Scenario, error) {
	if name == "all" {
		return sched.Scenario{}, fmt.Errorf("-scenario all is only valid for sweep; name one scenario (see c3sched list)")
	}
	sc, ok := sched.ScenarioByName(name)
	if !ok {
		return sched.Scenario{}, fmt.Errorf("unknown scenario %q (see c3sched list)", name)
	}
	return sc, nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	scenario := fs.String("scenario", "all", "scenario name or all")
	from := fs.Int64("from", 1, "first seed")
	seeds := fs.Int64("seeds", 100, "number of seeds")
	stop := fs.Bool("stop", false, "stop at the first failure")
	out := fs.String("out", "", "directory for failing schedule files")
	shrinkBudget := fs.Int("shrink", 0, "ddmin replay budget for auto-shrinking failing schedules (0 = off)")
	_ = fs.Parse(args)

	scs, err := scenarioArg(*scenario)
	if err != nil {
		return err
	}
	exit := 0
	for _, sc := range scs {
		ref, err := sched.Reference(sc)
		if err != nil {
			return fmt.Errorf("scenario %s: reference: %w", sc.Name, err)
		}
		res := sched.Sweep(sc, ref, *from, *seeds, *stop)
		fmt.Printf("%-22s seeds [%d,%d): ran %d, failures %d\n",
			sc.Name, *from, *from+*seeds, res.Ran, len(res.Failures))
		for _, o := range res.Failures {
			fmt.Printf("  seed %-8d attempts=%d %s\n", o.Seed, o.Attempts, o.Reason)
			for r, gw := range o.Divergent {
				fmt.Printf("    rank %d: recovered %d, expected %d\n", r, gw[0], gw[1])
			}
			if *out != "" && o.Schedule != nil {
				path := filepath.Join(*out, fmt.Sprintf("%s-seed%d.sched", sc.Name, o.Seed))
				if err := os.WriteFile(path, sched.MarshalSchedule(o.Schedule), 0o644); err != nil {
					return err
				}
				fmt.Printf("    trace written to %s\n", path)
				if *shrinkBudget > 0 {
					// Auto-shrink the divergence to its minimal forced
					// decisions; the -min file is what gets committed
					// under a testdata/ directory as a regression input.
					min, used, err := sched.Shrink(sc, ref, o.Schedule, *shrinkBudget)
					if err != nil {
						fmt.Printf("    shrink failed after %d replays: %v\n", used, err)
					} else {
						minPath := filepath.Join(*out, fmt.Sprintf("%s-seed%d-min.sched", sc.Name, o.Seed))
						if err := os.WriteFile(minPath, sched.MarshalSchedule(min), 0o644); err != nil {
							return err
						}
						fmt.Printf("    minimized (%d replays) to %s\n", used, minPath)
					}
				}
			}
		}
		if len(res.Failures) > 0 {
			exit = 1
		}
	}
	if exit != 0 {
		os.Exit(1)
	}
	return nil
}

// loadOrRun resolves the -seed/-in pair into an outcome plus its schedule.
func loadRun(sc sched.Scenario, ref map[int]int, seed int64, in string) (sched.Outcome, error) {
	if in != "" {
		data, err := os.ReadFile(in)
		if err != nil {
			return sched.Outcome{}, err
		}
		s, err := sched.UnmarshalSchedule(data)
		if err != nil {
			return sched.Outcome{}, err
		}
		return sched.RunSchedule(sc, ref, s), nil
	}
	if seed == 0 {
		return sched.Outcome{}, fmt.Errorf("a nonzero -seed or an -in schedule file is required (seed 0 disables the virtual scheduler)")
	}
	return sched.RunSeed(sc, ref, seed), nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	scenario := fs.String("scenario", "two-failures", "scenario name")
	seed := fs.Int64("seed", 0, "seed to run")
	in := fs.String("in", "", "schedule file to replay")
	_ = fs.Parse(args)

	sc, err := oneScenario(*scenario)
	if err != nil {
		return err
	}
	ref, err := sched.Reference(sc)
	if err != nil {
		return fmt.Errorf("reference: %w", err)
	}
	o, err := loadRun(sc, ref, *seed, *in)
	if err != nil {
		return err
	}
	if !o.Failed {
		fmt.Printf("%s: PASS (attempts=%d)\n", sc.Name, o.Attempts)
		return nil
	}
	fmt.Printf("%s: FAIL: %s (attempts=%d)\n", sc.Name, o.Reason, o.Attempts)
	for r, gw := range o.Divergent {
		fmt.Printf("  rank %d: recovered %d, expected %d\n", r, gw[0], gw[1])
	}
	os.Exit(1)
	return nil
}

func cmdShrink(args []string) error {
	fs := flag.NewFlagSet("shrink", flag.ExitOnError)
	scenario := fs.String("scenario", "two-failures", "scenario name")
	seed := fs.Int64("seed", 0, "failing seed to shrink")
	in := fs.String("in", "", "failing schedule file to shrink")
	budget := fs.Int("budget", 600, "max replays")
	out := fs.String("out", "", "output schedule file (required)")
	_ = fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("shrink: -out is required")
	}

	sc, err := oneScenario(*scenario)
	if err != nil {
		return err
	}
	ref, err := sched.Reference(sc)
	if err != nil {
		return fmt.Errorf("reference: %w", err)
	}
	o, err := loadRun(sc, ref, *seed, *in)
	if err != nil {
		return err
	}
	if !o.Failed {
		return fmt.Errorf("shrink: input does not fail (%s seed %d)", sc.Name, o.Seed)
	}
	if o.Schedule == nil {
		return fmt.Errorf("shrink: no recorded schedule")
	}
	before := countDecisions(o.Schedule)
	min, used, err := sched.Shrink(sc, ref, o.Schedule, *budget)
	if err != nil {
		return err
	}
	after := countDecisions(min)
	if err := os.WriteFile(*out, sched.MarshalSchedule(min), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: shrunk %d -> %d decisions in %d replays; wrote %s\n",
		sc.Name, before, after, used, *out)
	return nil
}

func countDecisions(s *cluster.Schedule) int {
	n := 0
	for _, t := range s.Attempts {
		n += len(t.Decisions)
	}
	return n
}
