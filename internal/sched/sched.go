// Package sched is the schedule explorer for the deterministic virtual
// schedule engine (transport.Scheduler): it sweeps seeds over failure
// scenarios, detects recovery divergence, and shrinks a failing schedule to
// a minimal interleaving that can be committed as a regression test.
//
// The methodology follows the related C/R literature: in-flight message
// capture across a recovery line is the hard correctness case, and it is
// only tractable with controlled, reproducible replay. Every run here is a
// pure function of (scenario, seed) — a failing seed reproduces
// byte-for-byte, and its recorded decision trace can be edited down while
// preserving the failure.
package sched

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"c3/internal/ckpt"
	"c3/internal/cluster"
	"c3/internal/mpi"
	"c3/internal/stable"
)

// Scenario is one stress workload configuration explored under many seeds.
type Scenario struct {
	Name     string
	Ranks    int
	Iters    int
	Failures []cluster.FailureSpec
	// AttemptFailures schedules several failures inside one attempt (see
	// cluster.Config.AttemptFailures); takes precedence over Failures.
	AttemptFailures [][]cluster.FailureSpec
	// Partitions schedules network-partition episodes (seeded trigger step,
	// optional heal) on the virtual scheduler. Scenario specs use hold
	// semantics: the in-process world has no failure detector, so a dropped
	// MPI frame would stall it forever, while a held frame models a split
	// shorter than the transport's retransmission patience.
	Partitions []cluster.PartitionSpec
	Policy     ckpt.Policy
	// App builds the workload; nil means StressApp.
	App func(iters int, sums *sync.Map) func(cluster.Env) error
	// Store, when non-nil, builds a fresh stable store for every run
	// (including the reference); nil means the runner's flat in-memory
	// default. Scenarios that exercise group-structured redundancy —
	// whole-group loss surviving via the cross-group parity shard — need a
	// grouped replicated store, and each seed needs its own instance.
	Store func() stable.Store
}

// groupedStore is the Store factory the two-level-topology scenarios share:
// a diskless replicated store over n ranks in groups of g, group-local
// rs(2,1) shards plus one cross-group parity shard per line.
func groupedStore(n, g int) func() stable.Store {
	return func() stable.Store {
		rs, err := stable.NewCodec("rs", 2, 1)
		if err != nil {
			panic(err) // static codec parameters; cannot fail
		}
		return stable.NewReplicatedStore(n, stable.WithCodec(rs), stable.WithGroupSize(g))
	}
}

func (sc Scenario) app(sums *sync.Map) func(cluster.Env) error {
	if sc.App != nil {
		return sc.App(sc.Iters, sums)
	}
	return StressApp(sc.Iters, sums)
}

// Scenarios is the registry swept by cmd/c3sched. The first four mirror
// the cluster stress test; the async variants drive the virtual commit
// pipeline through the same interleavings.
var Scenarios = []Scenario{
	{Name: "one-failure-mid", Ranks: 5, Iters: 12,
		Failures: []cluster.FailureSpec{{Rank: 2, AtPragma: 7}},
		Policy:   ckpt.Policy{EveryNthPragma: 4}},
	{Name: "one-failure-early", Ranks: 5, Iters: 12,
		Failures: []cluster.FailureSpec{{Rank: 0, AtPragma: 2}},
		Policy:   ckpt.Policy{EveryNthPragma: 3}},
	{Name: "two-failures", Ranks: 5, Iters: 12,
		Failures: []cluster.FailureSpec{{Rank: 1, AtPragma: 5}, {Rank: 3, AtPragma: 4}},
		Policy:   ckpt.Policy{EveryNthPragma: 2}},
	{Name: "failure-every-rank", Ranks: 5, Iters: 12,
		Failures: []cluster.FailureSpec{
			{Rank: 0, AtPragma: 3}, {Rank: 1, AtPragma: 4}, {Rank: 2, AtPragma: 5},
			{Rank: 3, AtPragma: 9}, {Rank: 4, AtPragma: 11}},
		Policy: ckpt.Policy{EveryNthPragma: 3}},
	{Name: "two-failures-async", Ranks: 5, Iters: 12,
		Failures: []cluster.FailureSpec{{Rank: 1, AtPragma: 5}, {Rank: 3, AtPragma: 4}},
		Policy:   ckpt.Policy{EveryNthPragma: 2, AsyncCommit: true}},
	{Name: "every-rank-async", Ranks: 5, Iters: 12,
		Failures: []cluster.FailureSpec{
			{Rank: 0, AtPragma: 3}, {Rank: 1, AtPragma: 4}, {Rank: 2, AtPragma: 5},
			{Rank: 3, AtPragma: 9}, {Rank: 4, AtPragma: 11}},
		Policy: ckpt.Policy{EveryNthPragma: 3, AsyncCommit: true}},
	{Name: "straddle-sync", Ranks: 5, Iters: 12, App: StraddleApp,
		Failures: []cluster.FailureSpec{{Rank: 1, AtPragma: 5}, {Rank: 3, AtPragma: 4}},
		Policy:   ckpt.Policy{EveryNthPragma: 2}},
	{Name: "straddle-async", Ranks: 5, Iters: 12, App: StraddleApp,
		Failures: []cluster.FailureSpec{{Rank: 1, AtPragma: 5}, {Rank: 3, AtPragma: 4}},
		Policy:   ckpt.Policy{EveryNthPragma: 2, AsyncCommit: true}},
	{Name: "collective-straddle-sync", Ranks: 5, Iters: 12, App: CollectiveStraddleApp,
		Failures: []cluster.FailureSpec{{Rank: 2, AtPragma: 5}, {Rank: 4, AtPragma: 4}},
		Policy:   ckpt.Policy{EveryNthPragma: 2}},
	{Name: "collective-straddle-async", Ranks: 5, Iters: 12, App: CollectiveStraddleApp,
		Failures: []cluster.FailureSpec{{Rank: 2, AtPragma: 5}, {Rank: 4, AtPragma: 4}},
		Policy:   ckpt.Policy{EveryNthPragma: 2, AsyncCommit: true}},
	// Two near-simultaneous failures inside one attempt (the self-healing
	// detector's hardest agreement case, here driven through the virtual
	// scheduler): whichever victim's pragma the schedule reaches first
	// tears the world down; depending on the interleaving the second may
	// or may not also fire before teardown, and recovery must converge
	// either way. Non-adjacent victims keep both replicas of every line
	// alive.
	{Name: "dual-failure-sync", Ranks: 5, Iters: 12,
		AttemptFailures: [][]cluster.FailureSpec{{{Rank: 1, AtPragma: 5}, {Rank: 3, AtPragma: 5}}},
		Policy:          ckpt.Policy{EveryNthPragma: 2}},
	{Name: "dual-failure-async", Ranks: 5, Iters: 12,
		AttemptFailures: [][]cluster.FailureSpec{{{Rank: 1, AtPragma: 5}, {Rank: 3, AtPragma: 5}}},
		Policy:          ckpt.Policy{EveryNthPragma: 2, AsyncCommit: true}},
	// A failure at the very first pragma of the recovery attempt: the
	// second victim dies while parts of the world may still be replaying
	// the restored line (failure during recovery), forcing a rollback of
	// the rollback.
	{Name: "failure-in-restore-sync", Ranks: 5, Iters: 12,
		AttemptFailures: [][]cluster.FailureSpec{
			{{Rank: 2, AtPragma: 6}}, {{Rank: 4, AtPragma: 1}}},
		Policy: ckpt.Policy{EveryNthPragma: 2}},
	{Name: "failure-in-restore-async", Ranks: 5, Iters: 12,
		AttemptFailures: [][]cluster.FailureSpec{
			{{Rank: 2, AtPragma: 6}}, {{Rank: 4, AtPragma: 1}}},
		Policy: ckpt.Policy{EveryNthPragma: 2, AsyncCommit: true}},
	// Partition scenarios: a seeded network split severs {3,4} from the
	// rest mid-run and heals within the attempt (hold semantics — see
	// Scenario.Partitions). The trigger step is jittered per seed, so the
	// sweep lands the split at many different protocol points; the recorded
	// trace carries the partition/heal decisions, so a failing seed shrinks
	// like any other schedule.
	{Name: "partition-symmetric", Ranks: 5, Iters: 12,
		Partitions: []cluster.PartitionSpec{
			{GroupA: []int{3, 4}, Hold: true, AtStep: 120, Jitter: 250, HealAfterSteps: 300}},
		Policy: ckpt.Policy{EveryNthPragma: 3}},
	// The half-open split: A's frames are delivered, B's answers are held
	// until the heal — collectives and ack planes see one-way connectivity.
	{Name: "partition-asymmetric", Ranks: 5, Iters: 12,
		Partitions: []cluster.PartitionSpec{
			{GroupA: []int{3, 4}, Asymmetric: true, Hold: true, AtStep: 120, Jitter: 250, HealAfterSteps: 300}},
		Policy: ckpt.Policy{EveryNthPragma: 3}},
	// The split lands early in the recovery attempt, while the world is
	// still agreeing on (and replaying) the restored line: the restore
	// collective itself is cut by the partition and must complete at the
	// heal.
	{Name: "partition-during-agreement", Ranks: 5, Iters: 12,
		Failures: []cluster.FailureSpec{{Rank: 2, AtPragma: 5}},
		Partitions: []cluster.PartitionSpec{
			{GroupA: []int{3, 4}, Hold: true, AtStep: 40, Jitter: 150, HealAfterSteps: 250, Attempt: 1}},
		Policy: ckpt.Policy{EveryNthPragma: 2}},
	// Divergent views: an asymmetric split overlaps a fail-stop failure, so
	// the two sides observe the death and the teardown at different logical
	// times; after the heal-and-restart, recovery must still converge to
	// the reference checksums.
	{Name: "partition-heal-divergent", Ranks: 5, Iters: 12,
		Failures: []cluster.FailureSpec{{Rank: 1, AtPragma: 6}},
		Partitions: []cluster.PartitionSpec{
			{GroupA: []int{3, 4}, Asymmetric: true, Hold: true, AtStep: 100, Jitter: 250, HealAfterSteps: 250}},
		Policy: ckpt.Policy{EveryNthPragma: 2, AsyncCommit: true}},
	// Two-level topology scenarios: 12 ranks in three checkpoint groups of
	// 4 over a grouped replicated store. group-loss kills group 1 (ranks
	// 4..7) as one fault domain — every group-local shard of the victims
	// dies with them, so recovery must reconstruct their lines from the
	// cross-group parity shards held by groups 0 and 2. The interleaving of
	// the four simultaneous deaths against in-flight commits varies per
	// seed.
	{Name: "group-loss-sync", Ranks: 12, Iters: 12,
		Failures: []cluster.FailureSpec{{Rank: 5, AtPragma: 5, Correlated: []int{4, 6, 7}}},
		Policy:   ckpt.Policy{EveryNthPragma: 2},
		Store:    groupedStore(12, 4)},
	{Name: "group-loss-async", Ranks: 12, Iters: 12,
		Failures: []cluster.FailureSpec{{Rank: 5, AtPragma: 5, Correlated: []int{4, 6, 7}}},
		Policy:   ckpt.Policy{EveryNthPragma: 2, AsyncCommit: true},
		Store:    groupedStore(12, 4)},
	// An interior rank of group 1 dies first; then group 1's delegate
	// (rank 4, its lowest member) dies at the very first pragma of the
	// recovery attempt, while parts of the world are still agreeing on and
	// replaying the restored line — the two-level analogue of
	// failure-in-restore, with the second death hitting the rank that
	// anchors the group's shard ring.
	{Name: "delegate-death-during-agree", Ranks: 12, Iters: 12,
		AttemptFailures: [][]cluster.FailureSpec{
			{{Rank: 5, AtPragma: 5}}, {{Rank: 4, AtPragma: 1}}},
		Policy: ckpt.Policy{EveryNthPragma: 2},
		Store:  groupedStore(12, 4)},
}

// ScenarioByName looks a scenario up in the registry.
func ScenarioByName(name string) (Scenario, bool) {
	for _, sc := range Scenarios {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// StressApp is the deterministic pseudo-random communication workload the
// explorer (and the cluster stress test) runs: every iteration each rank
// exchanges payloads with two neighbors via Irecv/Send/Wait, folds received
// data into a running checksum, and every third iteration participates in
// an Allreduce; pragmas sit at the iteration boundary. All state that
// matters — iteration counter, checksum, RNG state — is registered, so
// recovery must reproduce the failure-free checksums exactly.
func StressApp(iters int, sums *sync.Map) func(cluster.Env) error {
	return func(env cluster.Env) error {
		st := env.State()
		it := st.Int("it")
		sum := st.Int("sum")
		rng := st.Int("rng")
		if rng.Get() == 0 {
			rng.Set(1000003*env.Rank() + 17)
		}
		if _, err := env.Restore(); err != nil {
			return err
		}
		w := env.World()
		r, n := env.Rank(), env.Size()
		next := func() int {
			v := rng.Get()
			v = (v*1103515245 + 12345) & 0x7fffffff
			rng.Set(v)
			return v
		}
		for it.Get() < iters {
			right := (r + 1) % n
			left := (r - 1 + n) % n
			right2 := (r + 2) % n
			left2 := (r - 2 + 2*n) % n
			size1 := 1 + next()%64
			size2 := 1 + next()%16
			out1 := make([]byte, size1)
			out2 := make([]byte, size2)
			for i := range out1 {
				out1[i] = byte(next())
			}
			for i := range out2 {
				out2[i] = byte(next())
			}
			in1 := make([]byte, 64)
			in2 := make([]byte, 16)
			rid1, err := w.Irecv(in1, 64, mpi.TypeByte, left, 11)
			if err != nil {
				return err
			}
			rid2, err := w.Irecv(in2, 16, mpi.TypeByte, left2, 12)
			if err != nil {
				return err
			}
			if err := w.SendBytes(out1, right, 11); err != nil {
				return err
			}
			if err := w.SendBytes(out2, right2, 12); err != nil {
				return err
			}
			st1, err := w.Wait(rid1)
			if err != nil {
				return err
			}
			st2, err := w.Wait(rid2)
			if err != nil {
				return err
			}
			acc := sum.Get()
			for i := 0; i < st1.Bytes; i++ {
				acc = acc*31 + int(in1[i])
			}
			for i := 0; i < st2.Bytes; i++ {
				acc = acc*37 + int(in2[i])
			}
			sum.Set(acc & 0xffffffff)

			if it.Get()%3 == 2 {
				in := mpi.Int64Bytes([]int64{int64(sum.Get())})
				out := make([]byte, 8)
				if err := w.Allreduce(in, out, 1, mpi.TypeInt64, mpi.OpBXor); err != nil {
					return err
				}
				sum.Set(int(mpi.BytesInt64s(out)[0]) & 0xffffffff)
			}
			it.Add(1)
			if err := env.Checkpoint(); err != nil {
				return err
			}
		}
		sums.Store(r, sum.Get())
		return nil
	}
}

// StraddleApp is the crossing-request workload: every iteration posts the
// neighbor receive first, passes a checkpoint pragma with the request still
// pending, then sends and completes it — so non-blocking requests routinely
// straddle recovery lines (the paper's Section 4.1 request-table case). The
// receive buffer and request ID live in registered state; on recovery the
// buffer is re-bound to the restored crossing request with
// ReattachRecvBuffer, mirroring how C3 relies on checkpointed buffers
// keeping their addresses.
func StraddleApp(iters int, sums *sync.Map) func(cluster.Env) error {
	return func(env cluster.Env) error {
		st := env.State()
		it := st.Int("it")
		sum := st.Int("sum")
		rid := st.Int("rid")
		inflight := st.Bool("inflight")
		buf := st.Bytes("buf")
		restored, err := env.Restore()
		if err != nil {
			return err
		}
		w := env.World()
		r, n := env.Rank(), env.Size()
		payloadFor := func(rank, iter int) []byte {
			out := make([]byte, 8+(rank*7+iter*13)%24)
			for i := range out {
				out[i] = byte(rank*31 + iter*17 + i)
			}
			return out
		}
		// A fired pragma always sits between Irecv and Wait, so a restored
		// line always has one crossing receive in flight.
		resume := restored && inflight.Get()
		if resume {
			if err := cluster.LayerOf(env).ReattachRecvBuffer(rid.Get(), buf.Data(), len(buf.Data()), mpi.TypeByte); err != nil {
				return err
			}
		}
		for it.Get() < iters {
			left, right := (r-1+n)%n, (r+1)%n
			if !resume {
				buf.SetData(make([]byte, 32))
				id, err := w.Irecv(buf.Data(), 32, mpi.TypeByte, left, 7)
				if err != nil {
					return err
				}
				rid.Set(id)
				inflight.Set(true)
				if err := env.Checkpoint(); err != nil {
					return err
				}
			}
			resume = false
			if err := w.SendBytes(payloadFor(r, it.Get()), right, 7); err != nil {
				return err
			}
			stt, err := w.Wait(rid.Get())
			if err != nil {
				return err
			}
			inflight.Set(false)
			data := buf.Data()
			acc := sum.Get()
			for i := 0; i < stt.Bytes; i++ {
				acc = acc*131 + int(data[i])
			}
			sum.Set(acc & 0xffffffff)
			it.Add(1)
		}
		sums.Store(r, sum.Get())
		return nil
	}
}

// CollectiveStraddleApp is the collective-plane straddle workload: each
// iteration does a rank-skewed amount of point-to-point chatter, passes the
// checkpoint pragma, and then immediately runs a train of collectives
// (Allreduce, Scan, and a rotating-root Bcast). Because ranks reach the
// pragma at different logical times, a checkpoint line routinely cuts
// through the collectives' internal message plane: a rank that has started
// the line receives collective-plane traffic from ranks that have not
// (late messages on the collective context), and the collective result log
// must carry straddling results across recovery. This covers the plane the
// Irecv-straddle workload cannot — its crossings live on the
// point-to-point context only.
func CollectiveStraddleApp(iters int, sums *sync.Map) func(cluster.Env) error {
	return func(env cluster.Env) error {
		st := env.State()
		it := st.Int("it")
		sum := st.Int("sum")
		inColl := st.Bool("inColl") // pragma passed, this iteration's collectives pending
		restored, err := env.Restore()
		if err != nil {
			return err
		}
		w := env.World()
		r, n := env.Rank(), env.Size()
		scratch8 := make([]byte, 8)
		// The pragma sits between an iteration's point-to-point phase and its
		// collective phase, so every recovery line restores to inColl=true:
		// the re-execution must skip the already-counted pre-pragma exchange
		// and resume directly at the collectives the line cut through.
		resume := restored && inColl.Get()
		for it.Get() < iters {
			i := it.Get()
			if !resume {
				// One matched neighbor exchange per iteration, then
				// rank-skewed self-traffic: each rank passes a different
				// number of scheduling points before the pragma, so lines
				// start at staggered points (self-messages are rank-local,
				// so the skew cannot deadlock).
				right, left := (r+1)%n, (r-1+n)%n
				out := mpi.Int64Bytes([]int64{int64(r*1000 + i*10)})
				in := make([]byte, 8)
				if _, err := w.Sendrecv(out, 1, mpi.TypeInt64, right, 21,
					in, 1, mpi.TypeInt64, left, 21); err != nil {
					return err
				}
				sum.Set((sum.Get()*31 + int(mpi.BytesInt64s(in)[0])) & 0xffffffff)
				for k := 0; k < (r+i)%3; k++ {
					if err := w.SendBytes([]byte{byte(k)}, r, 23); err != nil {
						return err
					}
					if _, err := w.RecvBytes(make([]byte, 1), r, 23); err != nil {
						return err
					}
				}
				inColl.Set(true)
				if err := env.Checkpoint(); err != nil {
					return err
				}
			}
			resume = false
			// The collective train right after the pragma: its messages
			// straddle the line whenever peers are still pre-pragma.
			in := mpi.Int64Bytes([]int64{int64(sum.Get())})
			if err := w.Allreduce(in, scratch8, 1, mpi.TypeInt64, mpi.OpBXor); err != nil {
				return err
			}
			allred := int(mpi.BytesInt64s(scratch8)[0])
			if err := w.Scan(in, scratch8, 1, mpi.TypeInt64, mpi.OpSum); err != nil {
				return err
			}
			scanned := int(mpi.BytesInt64s(scratch8)[0])
			root := i % n
			bcast := mpi.Int64Bytes([]int64{-1})
			if r == root {
				bcast = mpi.Int64Bytes([]int64{int64(root*7919 + i)}) // pure function of (root, i)
			}
			if err := w.Bcast(bcast, 1, mpi.TypeInt64, root); err != nil {
				return err
			}
			rooted := int(mpi.BytesInt64s(bcast)[0])
			sum.Set((sum.Get()*37 + allred*5 + scanned*3 + rooted) & 0xffffffff)
			inColl.Set(false)
			it.Add(1)
		}
		sums.Store(r, sum.Get())
		return nil
	}
}

// Reference computes the scenario's failure-free per-rank checksums. The
// workload is deterministic per rank, so the result is independent of the
// schedule; it runs once under a fixed seed.
func Reference(sc Scenario) (map[int]int, error) {
	var sums sync.Map
	cfg := cluster.Config{
		Ranks: sc.Ranks,
		App:   sc.app(&sums),
		Seed:  1,
	}
	if sc.Store != nil {
		cfg.Store = sc.Store()
		defer closeStore(cfg.Store)
	}
	if _, err := cluster.Run(cfg); err != nil {
		return nil, err
	}
	ref := make(map[int]int, sc.Ranks)
	for r := 0; r < sc.Ranks; r++ {
		v, ok := sums.Load(r)
		if !ok {
			return nil, fmt.Errorf("sched: reference run produced no result for rank %d", r)
		}
		ref[r] = v.(int)
	}
	return ref, nil
}

// Outcome reports one explored run.
type Outcome struct {
	Seed     int64
	Failed   bool
	Reason   string
	Attempts int
	// Divergent maps rank -> [recovered, expected] for checksum mismatches.
	Divergent map[int][2]int
	// Schedule is the recorded decision trace (replayable).
	Schedule *cluster.Schedule
}

// runTimeout bounds one virtual run. Stalls (every rank blocked) are
// detected by the engine itself and fail fast; this guard only catches
// app-level livelock (a rank spinning without ever blocking). Note that a
// timed-out run's goroutines are abandoned, not cancelled — cluster.Run
// has no stop hook — so each timeout leaks a spinning world for the rest
// of the process. Acceptable for a last-resort guard on a sweep binary;
// do not lower this far enough to trip on slow-but-live runs.
const runTimeout = 2 * time.Minute

// runConfig executes one scenario run (seeded or replayed) and classifies
// the outcome.
func runConfig(sc Scenario, ref map[int]int, cfg cluster.Config) Outcome {
	var sums sync.Map
	cfg.Ranks = sc.Ranks
	cfg.App = sc.app(&sums)
	cfg.Failures = sc.Failures
	cfg.AttemptFailures = sc.AttemptFailures
	cfg.Partitions = sc.Partitions
	cfg.Policy = sc.Policy
	if sc.Store != nil {
		cfg.Store = sc.Store()
	}

	out := Outcome{Seed: cfg.Seed}
	type done struct {
		res *cluster.Result
		err error
	}
	ch := make(chan done, 1)
	go func() {
		res, err := cluster.Run(cfg)
		ch <- done{res, err}
	}()
	select {
	case d := <-ch:
		// Per-scenario stores are released only on this path: a timed-out
		// run's goroutines are abandoned (see runTimeout) and may still
		// touch the store, so the timeout branch leaks it along with them.
		closeStore(cfg.Store)
		if d.res != nil {
			out.Attempts = d.res.Attempts
			out.Schedule = d.res.Schedule
		}
		if d.err != nil {
			out.Failed = true
			out.Reason = d.err.Error()
			return out
		}
	// Wall-clock watchdog around the whole virtual run: it detects
	// app-level livelock and is never part of the replayed schedule.
	case <-time.After(runTimeout): //c3lint:allow determinism harness watchdog outside the schedule
		out.Failed = true
		out.Reason = "timeout (app-level livelock?)"
		return out
	}
	out.Divergent = make(map[int][2]int)
	for r := 0; r < sc.Ranks; r++ {
		v, ok := sums.Load(r)
		if !ok {
			out.Failed = true
			out.Reason = fmt.Sprintf("rank %d produced no result", r)
			return out
		}
		if got := v.(int); got != ref[r] {
			out.Divergent[r] = [2]int{got, ref[r]}
		}
	}
	if len(out.Divergent) > 0 {
		out.Failed = true
		out.Reason = fmt.Sprintf("checksum divergence on %d ranks", len(out.Divergent))
	}
	return out
}

// RunSeed executes the scenario under one seed. Seed 0 is rejected: it is
// cluster.Config's "virtual engine off" value, and running it would
// silently fall back to nondeterministic OS scheduling where byte-for-byte
// reproduction is promised.
func RunSeed(sc Scenario, ref map[int]int, seed int64) Outcome {
	if seed == 0 {
		return Outcome{Seed: 0, Failed: true,
			Reason: "seed 0 is reserved (it disables the virtual scheduler); use a nonzero seed"}
	}
	o := runConfig(sc, ref, cluster.Config{Seed: seed})
	o.Seed = seed
	return o
}

// RunSchedule replays a recorded (possibly edited) schedule.
func RunSchedule(sc Scenario, ref map[int]int, s *cluster.Schedule) Outcome {
	o := runConfig(sc, ref, cluster.Config{Replay: s})
	o.Seed = s.Seed
	return o
}

// SweepResult summarizes a seed sweep.
type SweepResult struct {
	Ran      int
	Failures []Outcome
}

// Sweep runs seeds [from, from+n) and collects failing outcomes, skipping
// the reserved seed 0. With stopAtFirst it returns at the first failure.
func Sweep(sc Scenario, ref map[int]int, from, n int64, stopAtFirst bool) SweepResult {
	var res SweepResult
	for seed := from; seed < from+n; seed++ {
		if seed == 0 {
			continue
		}
		o := RunSeed(sc, ref, seed)
		res.Ran++
		if o.Failed {
			res.Failures = append(res.Failures, o)
			if stopAtFirst {
				break
			}
		}
	}
	return res
}

// closeStore releases a per-scenario store's background resources; nil and
// closerless stores are no-ops.
func closeStore(st stable.Store) {
	if c, ok := st.(interface{ Close() }); ok {
		c.Close()
	}
}

// ErrNotReproducible reports that a recorded schedule no longer fails when
// replayed (the defect is schedule-external, or already fixed).
var ErrNotReproducible = errors.New("sched: schedule does not reproduce the failure")
