// Command c3run executes one benchmark kernel under the C3 protocol layer,
// optionally injecting a fail-stop failure and recovering from the last
// committed recovery line.
//
// Usage:
//
//	c3run -kernel CG -ranks 8 -every 5
//	c3run -kernel LU -ranks 4 -fail-rank 2 -fail-pragma 7 -store /tmp/ckpts
//	c3run -kernel HPL -ranks 4 -direct        # no protocol layer (baseline)
//	c3run -list                               # show available kernels
package main

import (
	"flag"
	"fmt"
	"os"

	"c3/internal/apps"
	"c3/internal/bench"
	"c3/internal/ckpt"
	"c3/internal/cluster"
	"c3/internal/stable"
)

func main() {
	var (
		kernel     = flag.String("kernel", "CG", "kernel to run (see -list)")
		class      = flag.String("class", "W", "problem class: S, W, or A")
		ranks      = flag.Int("ranks", 4, "number of ranks")
		every      = flag.Int("every", 0, "take a checkpoint every N pragmas (0: never)")
		direct     = flag.Bool("direct", false, "run without the protocol layer")
		failRank   = flag.Int("fail-rank", -1, "rank to fail-stop (-1: no failure)")
		failPragma = flag.Int("fail-pragma", 1, "pragma count at which the failure fires")
		storeDir   = flag.String("store", "", "checkpoint directory (default: in-memory)")
		list       = flag.Bool("list", false, "list kernels and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range apps.Names() {
			k, _ := apps.Lookup(name)
			fmt.Printf("%-8s %s\n", name, k.Description)
		}
		return
	}

	k, ok := apps.Lookup(*kernel)
	if !ok {
		fatalf("unknown kernel %q (use -list)", *kernel)
	}
	p := k.Defaults(apps.Class(*class))

	var store stable.Store = stable.NewMemStore()
	if *storeDir != "" {
		var err error
		store, err = stable.NewDiskStore(*storeDir)
		if err != nil {
			fatalf("open store: %v", err)
		}
	}

	out := apps.NewOutput()
	cfg := cluster.Config{
		Ranks:  *ranks,
		App:    k.App(p, out),
		Store:  store,
		Direct: *direct,
		Policy: ckpt.Policy{EveryNthPragma: *every},
	}
	if *failRank >= 0 {
		cfg.Failures = []cluster.FailureSpec{{Rank: *failRank, AtPragma: *failPragma}}
	}

	res, err := cluster.Run(cfg)
	if err != nil {
		fatalf("run: %v", err)
	}

	fmt.Printf("kernel %s class %s on %d ranks: %v (%d attempt(s))\n",
		*kernel, *class, *ranks, res.LastAttemptElapsed, res.Attempts)
	for r := 0; r < *ranks; r++ {
		if v, ok := out.Checksum(r); ok {
			fmt.Printf("  rank %d checksum: %.6f\n", r, v)
		}
	}
	if !*direct {
		var s ckpt.Stats
		for _, rs := range res.Stats {
			s.Sends += rs.Stats.Sends
			s.PiggybackBytes += rs.Stats.PiggybackBytes
			s.CheckpointsTaken += rs.Stats.CheckpointsTaken
			s.CheckpointBytes += rs.Stats.CheckpointBytes
			s.LateLogged += rs.Stats.LateLogged
			s.EarlyRecorded += rs.Stats.EarlyRecorded
			s.ReplayedLate += rs.Stats.ReplayedLate
			s.SuppressedSends += rs.Stats.SuppressedSends
		}
		fmt.Printf("protocol: sends=%d piggyback=%dB checkpoints=%d (%s MB) late-logged=%d early-recorded=%d replayed=%d suppressed=%d\n",
			s.Sends, s.PiggybackBytes, s.CheckpointsTaken,
			fmtMB(s.CheckpointBytes), s.LateLogged, s.EarlyRecorded, s.ReplayedLate, s.SuppressedSends)
	}
	_ = bench.Options{} // keep the experiment harness linked for -table users
}

func fmtMB(b uint64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "c3run: "+format+"\n", args...)
	os.Exit(1)
}
