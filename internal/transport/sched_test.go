package transport

import (
	"errors"
	"sync"
	"testing"
)

// runPingRing runs n ranks passing a token around a ring under the given
// scheduler, with each rank recording the order it saw messages in. It
// returns a per-rank receive log usable as an execution fingerprint.
func runPingRing(t *testing.T, n, rounds int, s *Scheduler) [][]int {
	t.Helper()
	nw := NewNetwork(n, WithScheduler(s))
	logs := make([][]int, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s.Start(r)
			defer s.Exit(r)
			ep := nw.Endpoint(r)
			next := (r + 1) % n
			for i := 0; i < rounds; i++ {
				if err := nw.Send(Message{From: r, To: next, Payload: i*n + r}); err != nil {
					t.Errorf("rank %d send: %v", r, err)
					return
				}
				msg, err := ep.Recv()
				if err != nil {
					t.Errorf("rank %d recv: %v", r, err)
					return
				}
				logs[r] = append(logs[r], msg.Payload.(int))
			}
		}(r)
	}
	wg.Wait()
	return logs
}

func equalLogs(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestSchedulerDeterministicPerSeed(t *testing.T) {
	const n, rounds = 4, 20
	first := runPingRing(t, n, rounds, NewScheduler(n, 42))
	for i := 0; i < 3; i++ {
		again := runPingRing(t, n, rounds, NewScheduler(n, 42))
		if !equalLogs(first, again) {
			t.Fatalf("run %d under seed 42 differed from the first", i)
		}
	}
}

func TestSchedulerTraceReplayIsFaithful(t *testing.T) {
	const n, rounds = 4, 20
	s := NewScheduler(n, 7)
	orig := runPingRing(t, n, rounds, s)
	trace := s.Trace()
	if len(trace.Decisions) == 0 {
		t.Fatal("no decisions recorded")
	}

	rs := NewReplayScheduler(n, trace)
	replayed := runPingRing(t, n, rounds, rs)
	if !equalLogs(orig, replayed) {
		t.Fatal("replay produced a different execution")
	}
	if d := rs.Divergences(); d != 0 {
		t.Fatalf("faithful replay reported %d divergences", d)
	}
}

func TestSchedulerSeedsDiffer(t *testing.T) {
	const n, rounds = 4, 30
	s1 := NewScheduler(n, 1)
	runPingRing(t, n, rounds, s1)
	s2 := NewScheduler(n, 2)
	runPingRing(t, n, rounds, s2)
	t1, t2 := s1.Trace(), s2.Trace()
	if len(t1.Decisions) == len(t2.Decisions) {
		same := true
		for i := range t1.Decisions {
			if t1.Decisions[i] != t2.Decisions[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 1 and 2 produced identical decision traces")
		}
	}
}

func TestSchedulerEditedReplayStillTerminates(t *testing.T) {
	const n, rounds = 4, 20
	s := NewScheduler(n, 9)
	runPingRing(t, n, rounds, s)
	trace := s.Trace()
	// Drop every other decision; replay must still complete (default policy
	// fills the gaps) rather than wedge.
	var edited Trace
	edited.Seed = trace.Seed
	for i, d := range trace.Decisions {
		if i%2 == 0 {
			edited.Decisions = append(edited.Decisions, d)
		}
	}
	runPingRing(t, n, rounds, NewReplayScheduler(n, &edited))
}

func TestSchedulerDetectsStall(t *testing.T) {
	const n = 3
	s := NewScheduler(n, 5)
	nw := NewNetwork(n, WithScheduler(s))
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s.Start(r)
			defer s.Exit(r)
			// Nobody ever sends: a global deadlock the engine must turn
			// into ErrStalled instead of hanging the test binary.
			_, errs[r] = nw.Endpoint(r).Recv()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if !errors.Is(err, ErrStalled) {
			t.Fatalf("rank %d: got %v, want ErrStalled", r, err)
		}
	}
	if !s.Stalled() {
		t.Fatal("scheduler does not report the stall")
	}
}

func TestSchedulerLogicalClockAdvances(t *testing.T) {
	const n = 2
	s := NewScheduler(n, 3)
	runPingRing(t, n, 5, s)
	if s.Steps() == 0 {
		t.Fatal("logical time did not advance")
	}
	if !s.Now().After(NewScheduler(n, 3).Now()) {
		t.Fatal("Now() does not reflect elapsed steps")
	}
}
