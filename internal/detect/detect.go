// Package detect is the self-healing cluster's membership layer: a
// heartbeat failure detector plus an epoch-numbered recovery agreement,
// running on the long-lived replication mesh next to the distributed
// stable store.
//
// Each rank runs one Detector. It emits heartbeats to the ring predecessors
// that monitor it (piggybacking on any other traffic already flowing to
// them) and runs a phi-accrual Monitor over its ring successors. When a
// monitor's suspicion crosses the threshold the rank gossips the suspicion
// to the survivors; the coordinator — the lowest-ranked process not itself
// suspected — then drives a small two-phase agreement: it proposes
// (epoch+1, dead set) to every survivor, collects acknowledgments, and
// commits the transition. A committed epoch is the survivors' contract
// that the dead set is final for this recovery round: the runtime uses it
// to interrupt in-flight checkpoint commits, tear down the current MPI
// attempt, ask the respawner for replacement processes, and enter restore
// mode — all without an omniscient launcher.
//
// The protocol tolerates the failures that matter for fail-stop recovery:
// a suspected rank that is merely slow clears its suspicion the moment any
// message from it arrives (false-suspicion recovery); a coordinator that
// dies mid-agreement is itself suspected and the next-lowest survivor
// restarts the proposal with the union dead set; near-simultaneous deaths
// either merge into one proposal or commit as consecutive epochs. A
// replacement process rejoins by broadcasting hello: survivors mark the
// rank alive again, reset its monitor, and answer with the current
// (epoch, dead set) so the newcomer can adopt the world's state.
package detect

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"c3/internal/member"
	"c3/internal/trace"
	"c3/internal/transport"
)

// Options configures a Detector.
type Options struct {
	// Self is the local rank; Ranks the slot capacity: the number of
	// pre-allocated address slots this world can ever host (the elastic
	// membership can grow up to it). The launch-time membership is usually
	// smaller; see Members.
	Self, Ranks int
	// Members is the initial membership. Zero (Size 0) means the classic
	// fixed world: all Ranks slots are members at epoch 1. A spare slot
	// joining an existing world passes the membership it believes in
	// WITHOUT itself and calls JoinNew — it participates only once an
	// epoch agreement admits it.
	Members member.Set
	// Net is the detection plane (usually a transport.Demux plane sharing
	// the replication mesh).
	Net transport.Interconnect
	// HeartbeatInterval is the ping period (default 25ms).
	HeartbeatInterval time.Duration
	// PhiThreshold is the accrued suspicion level at which a peer is
	// declared suspect (default 5: the observed silence had probability
	// 1e-5 under the peer's arrival history).
	PhiThreshold float64
	// LeaseTimeout is the contact-lease horizon for the fencing rule: a
	// peer counts toward this rank's live view only while some message
	// from it arrived within the lease. The ring monitors cannot serve
	// here — a 2-rank minority monitors at most 3 distinct ranks, so it
	// could never prove the rest of the world unreachable. Instead every
	// rank sends low-rate lease pings to all peers outside its heartbeat
	// ring, and fencing is computed from actual receive evidence. Default
	// 10 heartbeat intervals.
	LeaseTimeout time.Duration
	// GroupSize enables the two-level topology: with g > 1 the membership
	// is partitioned into member.Topology groups of g consecutive ring
	// slots, heartbeats and lease pings stay inside the group, and one
	// runtime delegate per group carries cross-group liveness reports and
	// agreement relays (see group.go). 0 (or >= world) keeps the flat
	// protocol.
	GroupSize int
	// Relay, when non-nil in a grouped world, routes detector unicasts to
	// cross-group non-delegates through the destination group's delegate
	// (two hops), keeping the per-rank connection graph at O(g + world/g).
	// Without it every send is direct; the protocol is unaffected either
	// way.
	Relay *transport.Relay
	// Clock substitutes a time source (tests); default time.Now.
	Clock func() time.Time
	// OnEpoch fires after each committed epoch transition with the agreed
	// epoch, the membership that epoch installs, the full current dead
	// set, and the ranks newly declared dead. It is called from a detector
	// goroutine; receivers must not block for long (hand off to a channel).
	OnEpoch func(epoch uint64, members member.Set, dead, newDead []int)
	// OnEvicted fires if a committed epoch declares this very rank dead
	// while it is alive (a false suspicion that won agreement).
	OnEvicted func(epoch uint64)
	// OnDrained fires when a committed epoch removes this very rank from
	// the membership — a graceful shrink it (or an operator) requested.
	// The rank should stop participating and exit cleanly.
	OnDrained func(epoch uint64)
	// OnFence fires on fencing transitions: fenced=true when this rank can
	// no longer see a strict majority of the current membership (it is on
	// the minority side of a partition, or the world degraded past
	// quorum), fenced=false when majority contact returns. While fenced a
	// rank must refuse checkpoint commits and epoch advances — it could be
	// diverging from a majority that committed an epoch without it.
	OnFence func(fenced bool)
	// Logf, when non-nil, receives detector diagnostics.
	Logf func(format string, args ...any)
}

// Times reports the measured latency decomposition of the most recent
// committed epoch transition.
type Times struct {
	// SuspectAt is when the first suspicion of the transition was raised
	// locally (zero if this rank learned only through the commit).
	SuspectAt time.Time
	// AgreeAt is when the epoch commit was applied locally.
	AgreeAt time.Time
}

// proposal is the coordinator's in-flight two-phase agreement. It commits
// only once the coordinator's own vote plus the collected acks reach a
// strict majority of the current membership — a coordinator that cannot
// reach quorum (it sits on the minority side of a partition) stalls
// instead of committing, so two sides of a split can never fork the epoch
// sequence (the PBFT-style view-change discipline). Besides the dead set
// a proposal carries the member list the new epoch installs, so grows and
// shrinks commit through exactly the same two-phase path as deaths.
type proposal struct {
	epoch   uint64
	seq     uint64
	dead    []int        // full proposed dead set, sorted
	members []int        // proposed member list, sorted
	pending map[int]bool // participants that have not acked yet
	acked   map[int]bool // participants whose ack arrived
	sp      trace.Span   // agree span: proposal creation -> local commit
}

// Detector is one rank's failure-detection and membership endpoint.
type Detector struct {
	opts      Options
	self      int
	n         int
	net       transport.Interconnect
	interval  time.Duration
	threshold float64
	clock     func() time.Time

	groupSize int              // configured checkpoint-group size (0: flat)
	relay     *transport.Relay // optional two-hop router for cross-group sends

	mu           sync.Mutex
	epoch        uint64
	members      member.Set        // current membership (epoch-stamped)
	topo         member.Topology   // two-level view of members (flat if groupSize<=1)
	dead         map[int]bool      // dead members (still members: respawn slots)
	suspected    map[int]time.Time // rank -> when first suspected
	pendingJoin  map[int]bool      // non-member slots asking to join
	pendingLeave map[int]bool      // members asked to drain out
	monitors     map[int]*Monitor  // ring successors this rank watches
	lastSent     map[int]time.Time // piggyback: last outbound traffic per peer
	lastHeard    []time.Time       // contact lease: last inbound traffic per peer
	lease        time.Duration     // fencing contact-lease horizon
	prop         *proposal
	propSeq      uint64
	detections   uint64
	pendSuspect  time.Time // earliest suspicion since the last commit
	times        Times
	fenced       bool // live contact < strict majority of the membership
	closed       bool

	// Grouped-mode state (see group.go). Indexed by group id; re-derived
	// at every membership change.
	gHeard      []time.Time          // last report (or member contact) per remote group
	gCount      []int                // believed live count per group
	lastReport  time.Time            // when this delegate last sent its report
	wasDelegate bool                 // delegate role at the previous tick (trace edges)
	relayAgg    map[aggKey]*aggState // delegate's cumulative ack aggregation

	sendMu        sync.Mutex
	senders       map[int]chan outFrame
	sendersClosed bool

	done chan struct{}
	wg   sync.WaitGroup
}

// New creates the detector for Options.Self. Call Start to launch it.
func New(opts Options) (*Detector, error) {
	if opts.Ranks <= 0 || opts.Self < 0 || opts.Self >= opts.Ranks {
		return nil, fmt.Errorf("detect: rank %d of %d", opts.Self, opts.Ranks)
	}
	if opts.Net == nil {
		return nil, fmt.Errorf("detect: no interconnect")
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = 25 * time.Millisecond
	}
	if opts.PhiThreshold <= 0 {
		opts.PhiThreshold = 5
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.LeaseTimeout <= 0 {
		opts.LeaseTimeout = 10 * opts.HeartbeatInterval
	}
	if opts.Members.Size() == 0 {
		opts.Members = member.Launch(opts.Ranks)
	}
	if opts.Members.Max() >= opts.Ranks {
		return nil, fmt.Errorf("detect: member slot %d outside capacity %d", opts.Members.Max(), opts.Ranks)
	}
	if opts.GroupSize < 0 {
		opts.GroupSize = 0
	}
	d := &Detector{
		opts:         opts,
		self:         opts.Self,
		n:            opts.Ranks,
		net:          opts.Net,
		interval:     opts.HeartbeatInterval,
		threshold:    opts.PhiThreshold,
		clock:        opts.Clock,
		epoch:        opts.Members.Epoch(),
		members:      opts.Members,
		groupSize:    opts.GroupSize,
		relay:        opts.Relay,
		dead:         make(map[int]bool),
		suspected:    make(map[int]time.Time),
		pendingJoin:  make(map[int]bool),
		pendingLeave: make(map[int]bool),
		monitors:     make(map[int]*Monitor),
		lastSent:     make(map[int]time.Time),
		relayAgg:     make(map[aggKey]*aggState),
		senders:      make(map[int]chan outFrame),
		done:         make(chan struct{}),
	}
	if d.epoch < 1 {
		d.epoch = 1
	}
	d.lease = opts.LeaseTimeout
	now := d.clock()
	d.retopoLocked(now)
	for _, m := range d.monitorWantedLocked() {
		d.monitors[m] = newMonitor(d.interval, now)
	}
	// Startup grace: every peer begins with a fresh lease, so a world that
	// is still dialing does not fence itself at launch.
	d.lastHeard = make([]time.Time, d.n)
	for r := range d.lastHeard {
		d.lastHeard[r] = now
	}
	return d, nil
}

// The heartbeat neighborhood is the member ring's ±1/±2: each rank
// monitors its two ring successors (member.Set.Successors) and heartbeats
// toward the two predecessors that monitor it. With the launch membership
// 0..n-1 this is exactly the fixed-world (rank±d)%n ring the detector
// shipped with.

// Start launches the heartbeat/evaluation ticker and the receive loop.
func (d *Detector) Start() {
	d.wg.Add(2)
	go d.tickLoop()
	go d.recvLoop()
}

// Close stops the detector: the ticker exits, the local receive port is
// killed, and the per-peer send workers drain. The shared mesh is left
// untouched (the demux owns it).
func (d *Detector) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	close(d.done)
	d.net.Kill(d.self)
	d.wg.Wait()
	d.sendMu.Lock()
	d.sendersClosed = true
	for _, ch := range d.senders {
		close(ch)
	}
	d.sendMu.Unlock()
}

// Epoch returns the current committed epoch (1 before any failure).
func (d *Detector) Epoch() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epoch
}

// Dead returns the current dead set, sorted.
func (d *Detector) Dead() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return setToSlice(d.dead)
}

// Members returns the current committed membership.
func (d *Detector) Members() member.Set {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.members
}

// Topology returns the current two-level view of the membership (flat when
// grouping is disabled).
func (d *Detector) Topology() member.Topology {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.topo
}

// Detections returns how many rank deaths have been confirmed by committed
// epochs so far.
func (d *Detector) Detections() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.detections
}

// Times returns the latency decomposition of the latest epoch transition.
func (d *Detector) Times() Times {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.times
}

// Fenced reports whether this rank is fenced: the peers with a fresh
// contact lease (plus itself) no longer form a strict majority of the
// launch world, so it must assume a majority partition may be committing
// epochs without it.
func (d *Detector) Fenced() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fenced
}

// quorum is the number of votes an epoch commit needs: a strict majority
// of the current membership (not of the current survivors — otherwise two
// partition sides could each reach "majority of who I can see"). After a
// committed grow or shrink the majority is of the new member set, which
// is what makes resize safe against partitions: the old world's minority
// can never outvote the committed configuration. Callers hold d.mu.
func (d *Detector) quorum() int {
	return d.members.Quorum()
}

// refenceLocked recomputes the fencing state from the contact leases and
// returns the OnFence callback to fire (nil if no transition). A peer
// counts as reachable only on positive receive evidence within the lease —
// suspicion alone cannot drive fencing, because the ring monitors of a
// small minority never cover the whole far side of a split. Callers hold
// d.mu and must invoke the returned func, if any, after releasing it.
func (d *Detector) refenceLocked() func() {
	now := d.clock()
	live := 0
	if d.members.Contains(d.self) {
		live++ // self
	}
	if d.groupedLocked() {
		// Grouped worlds have no all-pairs lease pings: direct contact
		// evidence covers the group, and the rest of the world counts
		// through the per-group report lease — a remote group whose report
		// is fresh contributes its reported live strength.
		ownGid := d.topo.GroupOf(d.self)
		for _, r := range d.topo.GroupMembers(ownGid) {
			if r == d.self || d.dead[r] {
				continue
			}
			if now.Sub(d.lastHeard[r]) <= d.lease {
				live++
			}
		}
		for gid := 0; gid < d.topo.NumGroups(); gid++ {
			if gid == ownGid {
				continue
			}
			if now.Sub(d.gHeard[gid]) <= d.lease {
				live += d.gCount[gid]
			}
		}
	} else {
		for _, r := range d.members.Members() {
			if r == d.self || d.dead[r] {
				continue
			}
			if now.Sub(d.lastHeard[r]) <= d.lease {
				live++
			}
		}
	}
	size, quorum := d.members.Size(), d.quorum()
	fenced := live < quorum
	if fenced == d.fenced {
		return nil
	}
	d.fenced = fenced
	cb := d.opts.OnFence
	return func() {
		d.logf("rank %d: fencing -> %v (live view %d of %d members, quorum %d)",
			d.self, fenced, live, size, quorum)
		arg := uint64(0)
		if fenced {
			arg = 1
		}
		trace.Default().Emit(int32(d.self), trace.KindFence, 0, arg)
		if cb != nil {
			cb(fenced)
		}
	}
}

// Suspected returns the currently suspected (not yet agreed dead) ranks.
func (d *Detector) Suspected() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]int, 0, len(d.suspected))
	for r := range d.suspected {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// ObserveRecv records liveness evidence: a message from peer `from` arrived
// on any plane of the shared mesh. The demux calls this for every inbound
// message, so replication traffic doubles as heartbeats.
func (d *Detector) ObserveRecv(from int) {
	if from == d.self || from < 0 || from >= d.n {
		return
	}
	now := d.clock()
	d.mu.Lock()
	d.lastHeard[from] = now
	if d.groupedLocked() {
		// Direct contact from a remote group (a protest ping, a relay hop's
		// agreement traffic) renews that group's report lease: any member
		// speaking proves the group is not wholesale dead.
		if gid := d.topo.GroupOf(from); gid != d.topo.GroupOf(d.self) && gid < len(d.gHeard) {
			d.gHeard[gid] = now
		}
	}
	if m := d.monitors[from]; m != nil {
		m.Observe(now)
	}
	_, wasSuspected := d.suspected[from]
	if wasSuspected && !d.dead[from] {
		// The peer spoke: the suspicion was false. Clearing it here (and
		// re-observing) makes the coordinator rebuild any in-flight proposal
		// without the recovered rank.
		delete(d.suspected, from)
	}
	fence := d.refenceLocked()
	d.mu.Unlock()
	if fence != nil {
		fence()
	}
	if wasSuspected {
		d.logf("rank %d: false suspicion of rank %d cleared by traffic", d.self, from)
	}
}

// ObserveSend records outbound traffic toward a peer, letting the emitter
// skip the next explicit ping (heartbeat piggybacking).
func (d *Detector) ObserveSend(to int) {
	if to == d.self {
		return
	}
	now := d.clock()
	d.mu.Lock()
	d.lastSent[to] = now
	d.mu.Unlock()
}

// Join is called by a freshly respawned replacement process (its slot is
// still a member — death does not remove membership): it broadcasts hello
// until a survivor's state response raises the local epoch past the boot
// value, then returns the adopted epoch. Survivors react to the hello by
// marking this rank alive again and resetting its monitor.
func (d *Detector) Join(timeout time.Duration) (uint64, error) {
	boot := d.Epoch()
	return d.helloUntil(timeout, func() bool { return d.Epoch() > boot },
		"no survivor answered")
}

// JoinNew is called by a spare slot entering an existing world for the
// first time: it broadcasts hello (which survivors treat as a join
// request, because the sender is not a member) until an epoch agreement
// admits it to the membership, then returns the admitting epoch. The
// coordinator folds the join into its next proposal, so admission rides
// the same two-phase commit as a failure — a grow IS an epoch transition.
func (d *Detector) JoinNew(timeout time.Duration) (uint64, error) {
	return d.helloUntil(timeout, func() bool { return d.Members().Contains(d.self) },
		"membership never admitted us")
}

func (d *Detector) helloUntil(timeout time.Duration, admitted func() bool, what string) (uint64, error) {
	deadline := d.clock().Add(timeout)
	for {
		if admitted() {
			return d.Epoch(), nil
		}
		hello := encodeHello()
		for q := 0; q < d.n; q++ {
			if q != d.self {
				d.send(q, hello)
			}
		}
		if d.clock().After(deadline) {
			return 0, fmt.Errorf("detect: rank %d join timed out after %v (%s)", d.self, timeout, what)
		}
		select {
		case <-d.done:
			return 0, fmt.Errorf("detect: closed during join")
		case <-time.After(d.interval):
		}
	}
}

// Drain requests a graceful shrink: remove target from the membership at
// the next epoch agreement. The request is gossiped to the live members
// every tick until a commit settles it (or the target stops being a
// member some other way). Draining self is allowed — the OnDrained
// callback fires once the removal commits.
func (d *Detector) Drain(target int) error {
	d.mu.Lock()
	if !d.members.Contains(target) {
		cur := d.members
		d.mu.Unlock()
		return fmt.Errorf("detect: drain target %d is not a member (%s)", target, cur)
	}
	d.pendingLeave[target] = true
	d.mu.Unlock()
	d.driveProposal()
	return nil
}

func (d *Detector) logf(format string, args ...any) {
	if d.opts.Logf != nil {
		d.opts.Logf(format, args...)
	}
}

// --- Outbound path ---

// outFrame is one queued detector send: the payload and the intermediate
// hop it routes through (-1: direct).
type outFrame struct {
	p   payload
	via int
}

// send enqueues a payload toward a peer on its dedicated worker, so a dead
// peer's connection stalls never delay heartbeats to live peers. In a
// grouped world with a relay wired, sends to cross-group non-delegates
// route through the destination group's runtime delegate.
func (d *Detector) send(to int, p payload) {
	via := -1
	if d.relay != nil {
		d.mu.Lock()
		via = d.routeLocked(to)
		d.mu.Unlock()
	}
	d.sendMu.Lock()
	if d.sendersClosed {
		d.sendMu.Unlock()
		return
	}
	ch := d.senders[to]
	if ch == nil {
		ch = make(chan outFrame, 64)
		d.senders[to] = ch
		go d.sendWorker(to, ch)
	}
	d.sendMu.Unlock()
	select {
	case ch <- outFrame{p: p, via: via}:
	default: // worker stalled on a dead peer: drop, heartbeats are periodic
	}
}

func (d *Detector) sendWorker(to int, ch chan outFrame) {
	for f := range ch {
		if f.via >= 0 && d.relay != nil {
			_ = d.relay.Send(f.via, to, f.p)
			continue
		}
		_ = d.net.Send(transport.Message{From: d.self, To: to, Class: transport.Control, Payload: f.p})
	}
}

// --- Ticker: heartbeats, monitor evaluation, proposal driving ---

func (d *Detector) tickLoop() {
	defer d.wg.Done()
	ticker := time.NewTicker(d.interval)
	defer ticker.Stop()
	for {
		select {
		case <-d.done:
			return
		case <-ticker.C:
			d.tick()
		}
	}
}

func (d *Detector) tick() {
	now := d.clock()

	d.mu.Lock()
	if !d.members.Contains(d.self) {
		// Not (yet, or no longer) a member: no heartbeats, no suspicions,
		// no proposals. A joining slot only listens and hellos (JoinNew);
		// a drained slot is on its way out.
		d.mu.Unlock()
		return
	}
	epoch := d.epoch
	grouped := d.groupedLocked()
	// Heartbeats to the predecessors that monitor this rank (every
	// interval), and low-rate lease pings to every other live member so the
	// whole world keeps receiving positive contact evidence for the fencing
	// rule. Both are skipped when other traffic already reached the peer
	// within the window (piggybacking). In a grouped world both stay inside
	// the group — cross-group liveness travels in delegate reports instead,
	// which is what caps the steady-state send rate at O(g + world/g).
	isPred := make(map[int]bool, 2)
	for _, t := range d.hbTargetsLocked() {
		isPred[t] = true
	}
	pingPool := d.members.Members()
	if grouped {
		pingPool = d.topo.GroupMembers(d.topo.GroupOf(d.self))
	}
	var pings []int
	for _, t := range pingPool {
		if t == d.self || d.dead[t] {
			continue
		}
		if _, susp := d.suspected[t]; susp && !d.fenced {
			// A fenced rank keeps pinging the peers it suspects: they are
			// probably on the majority side of a partition, and these probes
			// are how it discovers the heal (the majority, which declared us
			// dead, no longer sends anything our way — the probe's epoch
			// reconciliation pulls their newer state over).
			continue
		}
		window := d.interval
		if !isPred[t] {
			window = d.lease / 3 // lease pings: a few per lease horizon
		}
		if last, ok := d.lastSent[t]; ok && now.Sub(last) < window {
			continue // piggybacked: recent traffic already proved liveness
		}
		d.lastSent[t] = now
		pings = append(pings, t)
	}

	// Monitor evaluation: accrued suspicion past the threshold raises a
	// suspicion and gossips it.
	var newSuspects []int
	for m, mon := range d.monitors {
		if d.dead[m] {
			continue
		}
		if _, already := d.suspected[m]; already {
			continue
		}
		if mon.Phi(now) >= d.threshold {
			d.suspectLocked(m, now)
			newSuspects = append(newSuspects, m)
		}
	}
	// Lease evaluation for the ranks outside this rank's monitor set. The
	// ±1/±2 ring cannot see into a contiguous far-side group — its interior
	// ranks are heartbeat-monitored only by their own severed neighbors —
	// but the contact lease covers every pair: a live peer keeps lease-
	// pinging us, so a peer silent past the full lease is as suspect as a
	// monitored one crossing the phi threshold. A false positive clears the
	// same way monitor suspicions do (ObserveRecv on the peer's next ping).
	// Grouped, the lease only covers the group (lease pings stay inside
	// it); remote groups are covered by report staleness at the delegates.
	leasePool := d.members.Members()
	if grouped {
		leasePool = pingPool
	}
	var leaseSuspects []int
	for _, r := range leasePool {
		if r == d.self || d.dead[r] || d.monitors[r] != nil {
			continue
		}
		if _, already := d.suspected[r]; already {
			continue
		}
		if now.Sub(d.lastHeard[r]) > d.lease {
			d.suspectLocked(r, now)
			leaseSuspects = append(leaseSuspects, r)
		}
	}
	// Grouped-mode duties: delegate role transitions, whole-group staleness
	// suspicion, and the periodic delegate report.
	report, reportTargets, groupSuspects := d.groupTickLocked(now)
	leaseSuspects = append(leaseSuspects, groupSuspects...)
	// Gossip every outstanding suspicion, not just the fresh ones: the send
	// path is lossy (full worker queue, redial backoff), and the would-be
	// coordinator may not monitor the victim itself — a one-shot gossip that
	// gets dropped would stall recovery forever. Suspicion windows are
	// short, so the per-tick retransmission is a handful of tiny frames.
	gossip := make([]int, 0, len(d.suspected))
	for s := range d.suspected {
		gossip = append(gossip, s)
	}
	sort.Ints(gossip)
	// Drain requests are re-gossiped each tick for the same reason the
	// suspicions are: the send path is lossy and the coordinator may not
	// have heard the request directly.
	drains := setToSlice(d.pendingLeave)
	// Flat: everyone live. Grouped: the live group plus the other groups'
	// delegates — the O(g + world/g) fan-out bound.
	gossipTargets := d.gossipTargetsLocked(gossip)
	fence := d.refenceLocked()
	d.mu.Unlock()
	if fence != nil {
		fence()
	}
	if report != nil {
		for _, t := range reportTargets {
			d.send(t, report)
		}
	}

	ping := encodePing(epoch)
	for _, t := range pings {
		d.send(t, ping)
	}
	for _, s := range newSuspects {
		d.logf("rank %d: suspects rank %d dead (phi >= %.1f)", d.self, s, d.threshold)
	}
	for _, s := range leaseSuspects {
		d.logf("rank %d: suspects rank %d dead (contact lease expired)", d.self, s)
	}
	if fresh := len(newSuspects) + len(leaseSuspects); fresh > 0 && len(gossip) > 0 {
		// One gossip event per fresh round, not per retransmission tick —
		// the per-tick re-gossip would otherwise dominate the ring.
		trace.Default().Emit(int32(d.self), trace.KindGossip, 0, uint64(len(gossip)))
	}
	for _, s := range gossip {
		g := encodeSuspect(epoch, s)
		for _, t := range gossipTargets {
			d.send(t, g)
		}
	}
	for _, s := range drains {
		g := encodeDrain(epoch, s)
		for _, t := range gossipTargets {
			d.send(t, g)
		}
	}

	d.driveProposal()
}

// suspectLocked records a (new) suspicion of rank r at time now. Callers
// hold d.mu.
func (d *Detector) suspectLocked(r int, now time.Time) {
	if _, ok := d.suspected[r]; ok {
		return
	}
	d.suspected[r] = now
	if d.pendSuspect.IsZero() {
		d.pendSuspect = now
	}
	trace.Default().Emit(int32(d.self), trace.KindSuspect, 0, uint64(r))
}

// dropProposalLocked abandons the in-flight proposal (if any), closing
// its agree span as uncommitted. Callers hold d.mu.
func (d *Detector) dropProposalLocked() {
	if d.prop != nil {
		d.prop.sp.End(0)
		d.prop = nil
	}
}

// liveExceptLocked returns every member that is not self, not dead, not
// suspected, and not in skip. Callers hold d.mu.
func (d *Detector) liveExceptLocked(skip []int) []int {
	skipSet := make(map[int]bool, len(skip))
	for _, s := range skip {
		skipSet[s] = true
	}
	var out []int
	for _, r := range d.members.Members() {
		if r == d.self || d.dead[r] || skipSet[r] {
			continue
		}
		if _, susp := d.suspected[r]; susp {
			continue
		}
		out = append(out, r)
	}
	return out
}

// driveProposal runs the coordinator's side of the agreement: start or
// rebuild the proposal when the candidate dead set or member list
// changes, retransmit to laggards, and commit once the votes (the
// coordinator's own plus the acks) reach a strict majority of the current
// membership. A proposal folds in everything outstanding: suspected
// deaths, pending joins, and pending drains all commit through the same
// epoch transition. Laggards that have not acked by then learn the result
// from the commit broadcast or a later state exchange.
func (d *Detector) driveProposal() {
	d.mu.Lock()
	if !d.members.Contains(d.self) {
		d.dropProposalLocked()
		d.mu.Unlock()
		return
	}
	// Pending membership changes that still mean something: joins of slots
	// not yet members, drains of slots still members.
	joins := make([]int, 0, len(d.pendingJoin))
	for r := range d.pendingJoin {
		if !d.members.Contains(r) {
			joins = append(joins, r)
		}
	}
	leaves := make([]int, 0, len(d.pendingLeave))
	for r := range d.pendingLeave {
		if d.members.Contains(r) {
			leaves = append(leaves, r)
		}
	}
	if len(d.suspected) == 0 && len(joins) == 0 && len(leaves) == 0 {
		d.dropProposalLocked()
		d.mu.Unlock()
		return
	}
	cand := make(map[int]bool, len(d.dead)+len(d.suspected))
	for r := range d.dead {
		cand[r] = true
	}
	for r := range d.suspected {
		cand[r] = true
	}
	// Coordinator: the lowest member that is neither dead nor suspected.
	coord := -1
	for _, r := range d.members.Members() {
		if !cand[r] {
			coord = r
			break
		}
	}
	if coord != d.self {
		d.dropProposalLocked() // not ours to drive (anymore)
		d.mu.Unlock()
		return
	}
	next := d.members.WithJoined(d.epoch+1, joins...).WithRemoved(d.epoch+1, leaves...)
	memberList := next.Members()
	// The dead set the new epoch carries: dead/suspected slots that remain
	// members (a drained slot leaves the dead set with its membership).
	deadSet := make([]int, 0, len(cand))
	for r := range cand {
		if next.Contains(r) {
			deadSet = append(deadSet, r)
		}
	}
	sort.Ints(deadSet)
	if d.prop == nil || !equalInts(d.prop.dead, deadSet) || !equalInts(d.prop.members, memberList) {
		d.propSeq++
		// Votes come from the current configuration: every current member
		// that is not a death candidate. Joining slots do not vote — they
		// are not members until this very proposal commits.
		pending := make(map[int]bool)
		for _, r := range d.members.Members() {
			if r != d.self && !cand[r] {
				pending[r] = true
			}
		}
		if d.prop != nil {
			d.prop.sp.End(0) // superseded before committing
		}
		d.prop = &proposal{epoch: d.epoch + 1, seq: d.propSeq, dead: deadSet,
			members: memberList, pending: pending, acked: make(map[int]bool),
			sp: trace.Default().Begin(int32(d.self), trace.KindAgree, 0, d.epoch+1)}
		d.logf("rank %d: proposing epoch %d dead=%v members=%v to %d survivors (seq %d)",
			d.self, d.prop.epoch, deadSet, memberList, len(pending), d.propSeq)
	}
	p := d.prop
	if 1+len(p.acked) >= d.quorum() {
		d.mu.Unlock()
		d.commitProposal(p)
		return
	}
	if len(p.pending) == 0 {
		// Everyone this coordinator can reach has acked, yet the votes fall
		// short of a strict majority of the membership: it is on the
		// minority side of a partition. Stall — committing here would fork
		// the epoch sequence against a majority-side commit.
		d.mu.Unlock()
		return
	}
	// Retransmission targets. Flat: every pending voter directly. Grouped:
	// own-group voters directly, every remote group through one relayed
	// propose to its runtime delegate — O(g + world/g) frames per round
	// instead of O(world). driveProposal runs every tick, so a delegate
	// dying mid-agreement just redirects the next round's relay to the
	// group's new runtime delegate.
	var direct []int
	relayVias := make(map[int]bool)
	if d.groupedLocked() {
		ownGid := d.topo.GroupOf(d.self)
		for r := range p.pending {
			gid := d.topo.GroupOf(r)
			if gid == ownGid {
				direct = append(direct, r)
				continue
			}
			via := d.delegateOfLocked(gid)
			if via < 0 || via == d.self {
				direct = append(direct, r)
				continue
			}
			relayVias[via] = true
		}
	} else {
		for r := range p.pending {
			direct = append(direct, r)
		}
	}
	d.mu.Unlock()
	msg := encodePropose(p.epoch, p.seq, p.dead, p.members)
	for _, t := range direct {
		d.send(t, msg)
	}
	if len(relayVias) > 0 {
		rly := encodeProposeRly(p.epoch, p.seq, d.self, 1, p.dead, p.members)
		for _, via := range setToSlice(relayVias) {
			d.send(via, rly)
		}
	}
}

// commitProposal finalizes an agreement: broadcast the commit and apply it
// locally. The broadcast covers the union of the old and new member sets,
// so a freshly admitted slot learns of its own admission and a drained
// slot learns it is out.
func (d *Detector) commitProposal(p *proposal) {
	d.mu.Lock()
	targets := make(map[int]bool, len(p.members)+d.members.Size())
	for _, r := range d.members.Members() {
		targets[r] = true
	}
	grouped := d.groupedLocked()
	d.mu.Unlock()
	for _, r := range p.members {
		targets[r] = true
	}
	for _, dr := range p.dead {
		delete(targets, dr)
	}
	delete(targets, d.self)
	msg := encodeCommit(p.epoch, p.dead, p.members)
	if !grouped {
		for _, r := range setToSlice(targets) {
			d.send(r, msg)
		}
		d.applyEpoch(p.epoch, p.dead, p.members, "agreement")
		return
	}
	// Grouped: direct commits to this rank's group and to slots leaving the
	// new membership; one relayed commit per remote group, addressed to its
	// lowest not-dead member under the topology the commit installs (which
	// re-broadcasts it group-locally, see handleCommitRly). A dropped relay
	// heals through the report/ping epoch reconciliation.
	next := member.NewTopology(member.New(p.epoch, p.members), d.groupSize)
	deadSet := make(map[int]bool, len(p.dead))
	for _, r := range p.dead {
		deadSet[r] = true
	}
	ownGid := next.GroupOf(d.self)
	var direct []int
	vias := make(map[int]bool)
	for _, r := range setToSlice(targets) {
		if next.Flat() || !next.Set().Contains(r) || next.GroupOf(r) == ownGid {
			direct = append(direct, r)
			continue
		}
		via := -1
		for _, m := range next.GroupMembers(next.GroupOf(r)) {
			if !deadSet[m] {
				via = m
				break
			}
		}
		if via < 0 {
			direct = append(direct, r)
			continue
		}
		vias[via] = true
	}
	rly := encodeCommitRly(p.epoch, p.dead, p.members)
	for _, r := range direct {
		d.send(r, msg)
	}
	for _, via := range setToSlice(vias) {
		d.send(via, rly)
	}
	d.applyEpoch(p.epoch, p.dead, p.members, "agreement")
}

// applyEpoch installs a committed epoch transition (from our own agreement,
// a peer's commit, or a state snapshot) — the new membership, the dead set
// — rebuilds the heartbeat ring for the new member set, and fires OnEpoch
// (or OnDrained/OnEvicted when the transition removes this very rank).
func (d *Detector) applyEpoch(epoch uint64, dead, members []int, via string) {
	now := d.clock()
	d.mu.Lock()
	if epoch <= d.epoch {
		d.mu.Unlock()
		return
	}
	newMembers := member.New(epoch, members)
	if newMembers.Size() == 0 {
		// Defensive: a commit with no member list keeps the current ring.
		newMembers = d.members.WithEpoch(epoch)
	}
	wasMember := d.members.Contains(d.self)
	isMember := newMembers.Contains(d.self)
	membersChanged := !equalInts(d.members.Members(), newMembers.Members())
	var newDead []int
	selfDead := false
	newSet := make(map[int]bool, len(dead))
	for _, r := range dead {
		if r == d.self {
			selfDead = true
		}
		if !newMembers.Contains(r) {
			continue // removed slots leave the dead set with their membership
		}
		newSet[r] = true
		if !d.dead[r] {
			newDead = append(newDead, r)
		}
	}
	// Slots entering the ring start with a fresh contact lease, so a grow
	// cannot fence or lease-suspect the newcomer before its first ping.
	for _, r := range newMembers.Members() {
		if !d.members.Contains(r) && r >= 0 && r < d.n {
			d.lastHeard[r] = now
		}
	}
	d.epoch = epoch
	d.members = newMembers
	d.dead = newSet
	d.detections += uint64(len(newDead))
	for r := range d.suspected {
		if newSet[r] || !newMembers.Contains(r) {
			delete(d.suspected, r)
		}
	}
	for r := range d.pendingJoin {
		if newMembers.Contains(r) {
			delete(d.pendingJoin, r)
		}
	}
	for r := range d.pendingLeave {
		if !newMembers.Contains(r) {
			delete(d.pendingLeave, r)
		}
	}
	// Re-derive the two-level topology for the new membership and reset the
	// per-group report leases; delegate ack aggregates for epochs at or
	// below the committed one are settled.
	d.retopoLocked(now)
	for k := range d.relayAgg {
		if k.epoch <= epoch {
			delete(d.relayAgg, k)
		}
	}
	// Rebuild the monitor ring for the new membership: keep the arrival
	// history of successors we already watched, start fresh monitors for
	// new ones, drop the rest.
	wanted := d.monitorWantedLocked()
	next := make(map[int]*Monitor, len(wanted))
	for _, m := range wanted {
		if mon := d.monitors[m]; mon != nil {
			next[m] = mon
		} else {
			next[m] = newMonitor(d.interval, now)
		}
	}
	d.monitors = next
	for r := range newSet {
		if m := d.monitors[r]; m != nil {
			m.Reset(now) // suspended while dead; fresh history on rejoin
		}
	}
	if d.prop != nil {
		d.prop.sp.End(epoch) // this coordinator's agreement committed
		d.prop = nil
	}
	d.times = Times{SuspectAt: d.pendSuspect, AgreeAt: now}
	rec := trace.Default()
	rec.Emit(int32(d.self), trace.KindEpoch, 0, epoch)
	if !d.pendSuspect.IsZero() {
		// Detection latency (first local suspicion -> committed epoch) feeds
		// the epoch kind's histogram: ops exposes it as c3_detection_seconds.
		rec.Observe(trace.KindEpoch, now.Sub(d.pendSuspect))
	}
	if membersChanged {
		rec.Emit(int32(d.self), trace.KindMember, 0, epoch)
	}
	d.pendSuspect = time.Time{}
	sort.Ints(newDead)
	allDead := setToSlice(newSet)
	onEpoch, onEvicted, onDrained := d.opts.OnEpoch, d.opts.OnEvicted, d.opts.OnDrained
	fence := d.refenceLocked()
	d.mu.Unlock()
	if fence != nil {
		fence() // fencing state first, so epoch callbacks see it settled
	}

	d.logf("rank %d: epoch %d committed via %s, members=%v dead=%v (new %v)",
		d.self, epoch, via, newMembers.Members(), allDead, newDead)
	if wasMember && !isMember {
		d.logf("rank %d: drained out of the membership by epoch %d", d.self, epoch)
		if onDrained != nil {
			onDrained(epoch)
		}
		return
	}
	if selfDead {
		d.logf("rank %d: DECLARED DEAD by epoch %d while alive", d.self, epoch)
		if onEvicted != nil {
			onEvicted(epoch)
		}
		return
	}
	if onEpoch != nil {
		onEpoch(epoch, newMembers, allDead, newDead)
	}
}

// --- Receive path ---

func (d *Detector) recvLoop() {
	defer d.wg.Done()
	ep := d.net.Endpoint(d.self)
	for {
		msg, err := ep.Recv()
		if err != nil {
			return
		}
		data, ok := msg.Payload.(payload)
		if !ok || len(data) == 0 || msg.From == d.self {
			continue
		}
		// Any detector message is itself liveness evidence. (When the mesh
		// runs under a demux, the demux observer already recorded it; a
		// second observation is harmless — the monitor mean is floored at
		// the heartbeat interval.)
		d.ObserveRecv(msg.From)
		d.handle(msg.From, data)
	}
}

func (d *Detector) handle(from int, data payload) {
	switch data[0] {
	case msgPing:
		epoch, err := decodePing(data)
		if err != nil {
			return
		}
		d.reconcileEpoch(from, epoch)
	case msgSuspect:
		epoch, target, err := decodeSuspect(data)
		if err != nil {
			return
		}
		if target == d.self {
			// Protest: we are alive. The ping clears the suspicion at the
			// gossiper via ObserveRecv.
			d.send(from, encodePing(d.Epoch()))
			return
		}
		now := d.clock()
		d.mu.Lock()
		if epoch < d.epoch {
			// Stale gossip: the suspicion predates an epoch we have already
			// committed. A rank cleared by that newer epoch (rejoin, or an
			// exoneration folded into the commit) must not be re-suspected
			// by a reordered old frame — drop it and re-seed the gossiper.
			cur, deadNow, membersNow := d.epoch, setToSlice(d.dead), d.members.Members()
			d.mu.Unlock()
			d.send(from, encodeState(cur, deadNow, membersNow))
			return
		}
		adopt := !d.dead[target] && d.members.Contains(target)
		if adopt && d.groupedLocked() &&
			d.topo.GroupOf(target) != d.topo.GroupOf(d.self) && !d.amDelegateLocked() {
			// Non-delegates hold no cross-group suspicions: the clearing
			// evidence (the target group's reports) only reaches delegates, so
			// adopting here could strand a stale suspicion forever. The
			// delegates — who do adopt it — drive the agreement if it is real.
			adopt = false
		}
		if adopt {
			d.suspectLocked(target, now)
		}
		fence := d.refenceLocked()
		d.mu.Unlock()
		if fence != nil {
			fence()
		}
		d.driveProposal()
	case msgPropose:
		epoch, seq, dead, members, err := decodePropose(data)
		if err != nil {
			return
		}
		d.handlePropose(from, epoch, seq, dead, members)
	case msgAck:
		epoch, seq, err := decodeAck(data)
		if err != nil {
			return
		}
		d.handleAck(from, epoch, seq)
	case msgCommit:
		epoch, dead, members, err := decodeCommit(data)
		if err != nil {
			return
		}
		d.applyEpoch(epoch, dead, members, fmt.Sprintf("commit from rank %d", from))
	case msgHello:
		d.handleHello(from)
	case msgDrain:
		_, target, err := decodeDrain(data)
		if err != nil {
			return
		}
		d.mu.Lock()
		isMember := d.members.Contains(target)
		if isMember {
			d.pendingLeave[target] = true
		}
		d.mu.Unlock()
		if isMember {
			d.driveProposal()
		}
	case msgReport:
		epoch, groups, live, err := decodeReport(data)
		if err != nil {
			return
		}
		d.handleReport(from, epoch, groups, live)
	case msgProposeRly:
		epoch, seq, origin, hops, dead, members, err := decodeProposeRly(data)
		if err != nil {
			return
		}
		d.handleProposeRly(from, epoch, seq, origin, hops, dead, members)
	case msgAckAgg:
		epoch, seq, ranks, err := decodeAckAgg(data)
		if err != nil {
			return
		}
		d.handleAckAgg(from, epoch, seq, ranks)
	case msgCommitRly:
		epoch, dead, members, err := decodeCommitRly(data)
		if err != nil {
			return
		}
		d.handleCommitRly(from, epoch, dead, members)
	case msgState:
		epoch, dead, members, err := decodeState(data)
		if err != nil {
			return
		}
		// Adopt a newer membership snapshot (join, or catch-up after a
		// missed commit).
		selfDead := false
		filtered := dead[:0:0]
		for _, r := range dead {
			if r == d.self {
				selfDead = true
				continue
			}
			filtered = append(filtered, r)
		}
		wasBehind := epoch > d.Epoch()
		d.applyEpoch(epoch, filtered, members, fmt.Sprintf("state from rank %d", from))
		if selfDead && wasBehind {
			// The snapshot declared this very rank dead: a majority
			// committed an epoch while we were fenced off. We adopted the
			// majority's view (minus ourselves); now broadcast hello so the
			// survivors mark us alive again and reset our monitors — the
			// heal half of the fencing state machine.
			hello := encodeHello()
			for q := 0; q < d.n; q++ {
				if q != d.self {
					d.send(q, hello)
				}
			}
			d.logf("rank %d: rejoining — epoch %d had declared us dead", d.self, epoch)
		}
	default:
		d.logf("rank %d: unknown detect message %s from rank %d", d.self, kindName(data[0]), from)
	}
}

// reconcileEpoch compares a peer's advertised epoch with ours and heals a
// divergence: a lagging peer gets our state, and if we lag we ask for
// theirs.
func (d *Detector) reconcileEpoch(from int, peerEpoch uint64) {
	d.mu.Lock()
	cur := d.epoch
	dead := setToSlice(d.dead)
	members := d.members.Members()
	d.mu.Unlock()
	switch {
	case peerEpoch < cur:
		d.send(from, encodeState(cur, dead, members))
	case peerEpoch > cur:
		d.send(from, encodeHello())
	}
}

func (d *Detector) handlePropose(from int, epoch, seq uint64, dead, members []int) {
	for _, r := range dead {
		if r == d.self {
			// Proposed dead while alive: protest instead of acking; the
			// proposer clears the suspicion when the ping arrives.
			d.send(from, encodePing(d.Epoch()))
			return
		}
	}
	if !d.adoptPropose(from, epoch, dead, members) {
		return
	}
	d.send(from, encodeAck(epoch, seq))
}

// adoptPropose validates a proposal against the local epoch and, when it is
// the expected next epoch, adopts its suspicions and pending membership
// changes so our own coordinator logic (should the proposer die
// mid-agreement) starts from the same dead set and member list. On a
// mismatch the reconciliation reply (state or hello) goes to origin — the
// coordinator — whether the proposal arrived directly or through a
// delegate relay. It reports whether the proposal is ack-worthy.
func (d *Detector) adoptPropose(origin int, epoch uint64, dead, members []int) bool {
	d.mu.Lock()
	cur := d.epoch
	if epoch != cur+1 {
		deadNow, membersNow := setToSlice(d.dead), d.members.Members()
		d.mu.Unlock()
		if epoch <= cur {
			d.send(origin, encodeState(cur, deadNow, membersNow)) // proposer lags a commit
		} else {
			d.send(origin, encodeHello()) // we lag; fetch the peer's state
		}
		return false
	}
	now := d.clock()
	for _, r := range dead {
		if !d.dead[r] && d.members.Contains(r) {
			d.suspectLocked(r, now)
		}
	}
	proposed := member.New(epoch, members)
	for _, r := range proposed.Members() {
		if !d.members.Contains(r) {
			d.pendingJoin[r] = true
		}
	}
	for _, r := range d.members.Members() {
		if !proposed.Contains(r) {
			d.pendingLeave[r] = true
		}
	}
	fence := d.refenceLocked()
	d.mu.Unlock()
	if fence != nil {
		fence()
	}
	return true
}

func (d *Detector) handleAck(from int, epoch, seq uint64) {
	d.mu.Lock()
	p := d.prop
	if p != nil && p.epoch == epoch && p.seq == seq && p.pending[from] {
		delete(p.pending, from)
		p.acked[from] = true
		ready := 1+len(p.acked) >= d.quorum()
		d.mu.Unlock()
		if ready {
			d.commitProposal(p)
		}
		return
	}
	// Delegate path: a group member's vote on a proposal this rank relayed
	// (handleProposeRly). Fold it into the aggregate and forward the
	// cumulative set — the coordinator dedups, so resends are harmless.
	agg := d.relayAgg[aggKey{epoch: epoch, seq: seq}]
	if agg == nil || agg.acked[from] {
		d.mu.Unlock()
		return
	}
	agg.acked[from] = true
	origin := agg.origin
	ranks := setToSlice(agg.acked)
	d.mu.Unlock()
	d.send(origin, encodeAckAgg(epoch, seq, ranks))
}

// handleHello marks a (re)joining member alive and answers with the
// current membership snapshot. A hello from a slot that is NOT a member
// is a join request: it is recorded for the coordinator to fold into the
// next epoch agreement, and answered with the snapshot so the newcomer
// can adopt the world's state while it waits for admission.
func (d *Detector) handleHello(from int) {
	now := d.clock()
	d.mu.Lock()
	wantJoin := false
	if !d.members.Contains(from) {
		if !d.pendingJoin[from] {
			d.logf("rank %d: slot %d asks to join (hello from non-member)", d.self, from)
		}
		d.pendingJoin[from] = true
		wantJoin = true
	}
	if d.dead[from] {
		delete(d.dead, from)
		d.logf("rank %d: rank %d rejoined (hello)", d.self, from)
	}
	delete(d.suspected, from)
	if m := d.monitors[from]; m != nil {
		m.Reset(now)
	}
	epoch := d.epoch
	dead := setToSlice(d.dead)
	members := d.members.Members()
	fence := d.refenceLocked()
	d.mu.Unlock()
	if fence != nil {
		fence()
	}
	d.send(from, encodeState(epoch, dead, members))
	if wantJoin {
		d.driveProposal()
	}
}

// --- Helpers ---

func setToSlice(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
