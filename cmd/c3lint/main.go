// Command c3lint runs the c3 invariant analyzers (c3determinism,
// c3wirecount, c3lockblock, c3commiterr) over package patterns.
//
// Standalone:
//
//	go run ./cmd/c3lint ./...
//	go run ./cmd/c3lint -list
//
// As a vet tool (separate compilation against gc export data, sharing
// go vet's build cache):
//
//	go build -o c3lint ./cmd/c3lint
//	go vet -vettool=$PWD/c3lint ./...
//
// Exit status: 0 when every finding is suppressed or absent, 1 when
// unsuppressed findings remain, 2 on operational errors. The summary line
// counts suppressions and lists dead //c3lint:allow directives so stale
// escapes never hide.
package main

import (
	"flag"
	"fmt"
	"os"

	"c3/internal/lint/analysis"
	"c3/internal/lint/c3commiterr"
	"c3/internal/lint/c3determinism"
	"c3/internal/lint/c3lockblock"
	"c3/internal/lint/c3wirecount"
	"c3/internal/lint/driver"
	"c3/internal/lint/load"
	"c3/internal/lint/unit"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		c3determinism.Analyzer,
		c3wirecount.Analyzer,
		c3lockblock.Analyzer,
		c3commiterr.Analyzer,
	}
}

func main() {
	// The `go vet -vettool` protocol (-V=full / -flags / unit.cfg) must be
	// recognized before normal flag parsing.
	unit.Maybe(os.Args[1:], analyzers())

	list := flag.Bool("list", false, "list analyzers and exit")
	quiet := flag.Bool("q", false, "suppress the summary line on success")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: c3lint [-list] [-q] [package patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := load.New(wd, patterns...)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Roots()
	if err != nil {
		fatal(err)
	}

	res := driver.Run(pkgs, analyzers())
	for _, e := range res.Errors {
		fmt.Fprintf(os.Stderr, "c3lint: %v\n", e)
	}
	for _, f := range res.Findings {
		fmt.Println(f)
	}
	for _, d := range res.Dead {
		fmt.Printf("%s: [c3lint] dead suppression: //c3lint:allow %s (%s) matched no finding; delete it\n",
			d.Pos, d.Analyzer, d.Reason)
	}
	switch {
	case len(res.Errors) > 0:
		os.Exit(2)
	case len(res.Findings) > 0:
		fmt.Printf("c3lint: %d finding(s), %d suppressed, %d dead suppression(s) across %d package(s)\n",
			len(res.Findings), res.Suppressed, len(res.Dead), len(pkgs))
		os.Exit(1)
	default:
		if !*quiet {
			fmt.Printf("c3lint: clean — 0 findings, %d suppressed (each justified in-line), %d dead suppression(s) across %d package(s)\n",
				res.Suppressed, len(res.Dead), len(pkgs))
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "c3lint: %v\n", err)
	os.Exit(2)
}
